package repro_test

import (
	"fmt"

	"repro"
)

// Assemble and run a tiny program on the timing simulator.
func ExampleRunProgram() {
	prog, err := repro.Assemble("hello.s", `
        .text
main:
        li  $t0, 40
        addi $t0, $t0, 2
        out $t0
        halt
`)
	if err != nil {
		panic(err)
	}
	res, err := repro.RunProgram(prog, repro.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Output[0], res.Committed)
	// Output: 42 4
}

// Look a benchmark up by its SPEC95 name and inspect its metadata.
func ExampleWorkloadByName() {
	w, err := repro.WorkloadByName("147.vortex")
	if err != nil {
		panic(err)
	}
	fmt.Println(w.Name, w.Kind)
	// Output: vortex int
}

// Parse the paper's (N+M) port notation.
func ExampleParseNM() {
	n, m, _ := repro.ParseNM("(3+2)")
	cfg := repro.DefaultConfig().WithPorts(n, m)
	fmt.Println(cfg.Name(), cfg.Decoupled())
	// Output: (3+2) true
}

// Compare the unified and decoupled memory systems on a workload.
func ExampleRun() {
	w, _ := repro.WorkloadByName("vortex")
	base, _ := repro.Run(w, 0.02, repro.DefaultConfig().WithPorts(2, 0))
	dec, _ := repro.Run(w, 0.02, repro.DefaultConfig().WithPorts(2, 2).WithOptimizations(2))
	fmt.Println(dec.Cycles < base.Cycles)
	// Output: true
}
