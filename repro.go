// Package repro is a from-scratch reproduction of "Decoupling Local
// Variable Accesses in a Wide-Issue Superscalar Processor" (Cho, Yew, Lee —
// ISCA 1999): a cycle-accurate out-of-order superscalar simulator with a
// data-decoupled memory system (LSQ + L1 data cache alongside an LVAQ +
// local variable cache), a small RISC ISA with assembler and functional
// emulator, a calibrated synthetic SPEC95-like workload suite, and an
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// This package is the public facade. Typical use:
//
//	w, _ := repro.WorkloadByName("vortex")
//	res, _ := repro.Run(w, 1.0, repro.DefaultConfig().WithPorts(2, 2))
//	fmt.Printf("IPC %.2f\n", res.IPC())
//
// or for a custom program:
//
//	prog, _ := repro.Assemble("mine.s", source)
//	res, _ := repro.RunProgram(prog, repro.DefaultConfig())
//
// The building blocks live in internal packages (isa, asm, emu, cache,
// core, workload, experiments) and are re-exported here by alias.
package repro

import (
	"context"
	"errors"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/profile"
	"repro/internal/simerr"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config is the simulated machine configuration (paper Table 1 defaults).
type Config = config.Config

// Result carries all statistics of one simulation run.
type Result = core.Result

// StreamResult is the per-memory-stream view of a run (one entry per
// stream in Result.Streams: the conventional LSQ/L1 stream and, when
// decoupled, the LVAQ/LVC stream).
type StreamResult = core.StreamResult

// Workload is one benchmark of the synthetic SPEC95-like suite.
type Workload = workload.Workload

// Program is a loadable program image produced by the assembler.
type Program = asm.Program

// Machine is the functional (architectural) emulator.
type Machine = emu.Machine

// Profile is a functional workload characterization (instruction mix,
// local-access fractions, frame sizes).
type Profile = profile.Profile

// Experiment is one reproducible paper table or figure.
type Experiment = experiments.Experiment

// Runner executes and caches experiment simulations.
type Runner = experiments.Runner

// Steering policies for classifying memory accesses into the two streams.
const (
	SteerHint   = config.SteerHint
	SteerSP     = config.SteerSP
	SteerOracle = config.SteerOracle
	SteerDual   = config.SteerDual
	SteerStatic = config.SteerStatic
	SteerSpec   = config.SteerSpec
)

// DefaultConfig returns the paper's base machine model in the (2+0)
// configuration; use WithPorts(n, m) for other points and
// WithOptimizations(k) to enable fast data forwarding and k-way access
// combining.
func DefaultConfig() Config { return config.Default() }

// ParseNM parses the paper's "(N+M)" port notation, e.g. "3+2".
func ParseNM(s string) (n, m int, err error) { return config.ParseNM(s) }

// Workloads returns the full 12-program suite in paper order.
func Workloads() []Workload { return workload.All() }

// WorkloadByName resolves a short name ("li") or paper name ("130.li").
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// Assemble assembles source text into a Program.
func Assemble(name, source string) (*Program, error) { return asm.Assemble(name, source) }

// NewMachine loads a program into a fresh functional emulator.
func NewMachine(prog *Program) *Machine { return emu.New(prog) }

// RunOptions bounds and instruments one simulation run: a cycle cap, a
// wall-clock deadline, the forward-progress watchdog window, and an
// optional fault injector. The zero value reproduces the unbounded
// historical behaviour bit-for-bit.
type RunOptions = core.RunOptions

// SimError is the typed failure of a simulation run: its Kind says why the
// run ended (watchdog, cycle cap, deadline, cancellation, contained panic)
// and its Snapshot captures the pipeline at the moment of failure — cycle,
// ROB head, per-stream queue heads, port and combining-window state.
type SimError = simerr.SimError

// SimSnapshot is the pipeline state carried by a SimError.
type SimSnapshot = simerr.Snapshot

// SimErrorKind classifies a SimError.
type SimErrorKind = simerr.Kind

// SimError kinds.
const (
	SimWatchdog  = simerr.KindWatchdog
	SimMaxCycles = simerr.KindMaxCycles
	SimDeadline  = simerr.KindDeadline
	SimCanceled  = simerr.KindCanceled
	SimBudget    = simerr.KindBudget
	SimPanic     = simerr.KindPanic
)

// AsSimError unwraps err to the *SimError in its chain, if any.
func AsSimError(err error) (*SimError, bool) {
	var se *SimError
	ok := errors.As(err, &se)
	return se, ok
}

// Run simulates a workload at the given scale (1.0 = full experiment
// size) on the timing model.
func Run(w Workload, scale float64, cfg Config) (*Result, error) {
	return RunProgram(w.Program(scale), cfg)
}

// RunProgram simulates an assembled program on the timing model.
func RunProgram(prog *Program, cfg Config) (*Result, error) {
	return RunProgramWith(context.Background(), prog, cfg, RunOptions{})
}

// RunWith simulates a workload bounded and instrumented by ctx and opts;
// abnormal ends (cancellation, cycle cap, watchdog, contained panics) are
// reported as a *SimError.
func RunWith(ctx context.Context, w Workload, scale float64, cfg Config, opts RunOptions) (*Result, error) {
	return RunProgramWith(ctx, w.Program(scale), cfg, opts)
}

// RunProgramWith simulates an assembled program bounded and instrumented
// by ctx and opts; abnormal ends (cancellation, cycle cap, watchdog,
// contained panics) are reported as a *SimError.
func RunProgramWith(ctx context.Context, prog *Program, cfg Config, opts RunOptions) (*Result, error) {
	c, err := core.New(prog, cfg)
	if err != nil {
		return nil, err
	}
	return c.RunWith(ctx, opts)
}

// ProfileWorkload runs a workload on the functional emulator and returns
// its characterization (Figures 2 and 3 of the paper).
func ProfileWorkload(w Workload, scale float64) (*Profile, error) {
	return profile.Run(w.Program(scale), 0)
}

// ProfileProgram characterizes an assembled program.
func ProfileProgram(prog *Program) (*Profile, error) { return profile.Run(prog, 0) }

// Experiments lists every reproducible table and figure.
func Experiments() []Experiment { return experiments.AllExperiments() }

// ExperimentByID looks up one experiment ("fig7", "table3", ...).
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// NewRunner creates an experiment runner at the given workload scale.
func NewRunner(scale float64) *Runner { return experiments.NewRunner(scale) }

// RunExperiment runs one experiment at the given scale and returns its
// rendered report.
func RunExperiment(id string, scale float64) (string, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	return e.Run(experiments.NewRunner(scale))
}

// TraceEvent is one instruction's pipeline timeline.
type TraceEvent = core.TraceEvent

// TraceRecorder collects pipeline trace events.
type TraceRecorder = trace.Recorder

// RunProgramTraced simulates prog while recording up to limit pipeline
// trace events (0 = all). Render the recording with RenderTrace and
// SummarizeTrace.
func RunProgramTraced(prog *Program, cfg Config, limit int) (*Result, *TraceRecorder, error) {
	c, err := core.New(prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	rec := trace.NewRecorder(limit)
	c.SetTracer(rec)
	res, err := c.Run()
	return res, rec, err
}

// RenderTrace draws a pipetrace (one row per instruction, one column per
// cycle).
func RenderTrace(events []TraceEvent) string { return trace.Render(events) }

// SummarizeTrace aggregates a trace into per-stage latency statistics.
func SummarizeTrace(events []TraceEvent) string { return trace.Summary(events) }
