package repro

import (
	"fmt"
	"testing"
)

// TestTimingCoreMatchesEmulatorEverywhere is the end-to-end functional
// guarantee: for every workload and a spread of machine configurations
// (unified, decoupled, optimized, differently steered, port-starved), the
// timing core must produce exactly the observable output of the
// functional emulator. Timing bugs that corrupt ordering or steering show
// up here.
func TestTimingCoreMatchesEmulatorEverywhere(t *testing.T) {
	const scale = 0.02
	cfgs := []Config{
		DefaultConfig().WithPorts(1, 0),
		DefaultConfig().WithPorts(2, 0),
		DefaultConfig().WithPorts(2, 2),
		DefaultConfig().WithPorts(3, 2).WithOptimizations(2),
		DefaultConfig().WithPorts(3, 1).WithOptimizations(4),
	}
	spCfg := DefaultConfig().WithPorts(2, 2).WithOptimizations(2)
	spCfg.Steering = SteerSP
	cfgs = append(cfgs, spCfg)

	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Program(scale)
			ref := NewMachine(prog)
			if _, err := ref.Run(0); err != nil {
				t.Fatalf("emulator: %v", err)
			}
			for _, cfg := range cfgs {
				res, err := RunProgram(prog, cfg)
				if err != nil {
					t.Fatalf("%s: %v", cfgName(cfg), err)
				}
				if res.Committed != ref.InstCount {
					t.Errorf("%s: committed %d, emulator ran %d",
						cfgName(cfg), res.Committed, ref.InstCount)
				}
				if len(res.Output) != len(ref.Output) {
					t.Fatalf("%s: %d outputs, want %d",
						cfgName(cfg), len(res.Output), len(ref.Output))
				}
				for i := range ref.Output {
					if res.Output[i] != ref.Output[i] {
						t.Fatalf("%s: output[%d] = %d, want %d",
							cfgName(cfg), i, res.Output[i], ref.Output[i])
					}
				}
				for i := range ref.FOutput {
					if res.FOutput[i] != ref.FOutput[i] {
						t.Fatalf("%s: foutput[%d] = %g, want %g",
							cfgName(cfg), i, res.FOutput[i], ref.FOutput[i])
					}
				}
			}
		})
	}
}

func cfgName(c Config) string {
	return fmt.Sprintf("%s ff=%v cw=%d steer=%v", c.Name(), c.FastForward, c.CombineWidth, c.Steering)
}

// TestDecoupledNeverLosesBadly: across the whole suite, the decoupled
// (2+2) configuration with optimizations must stay within a few percent
// of (2+0) in the worst case and win on the call-heavy programs — the
// paper's bottom-line claim (§4.4).
func TestDecoupledNeverLosesBadly(t *testing.T) {
	const scale = 0.03
	var wins int
	for _, w := range Workloads() {
		prog := w.Program(scale)
		base, err := RunProgram(prog, DefaultConfig().WithPorts(2, 0))
		if err != nil {
			t.Fatal(err)
		}
		dec, err := RunProgram(prog, DefaultConfig().WithPorts(2, 2).WithOptimizations(2))
		if err != nil {
			t.Fatal(err)
		}
		rel := float64(base.Cycles) / float64(dec.Cycles)
		if rel < 0.95 {
			t.Errorf("%s: (2+2) loses %.1f%% vs (2+0)", w.Name, 100*(1-rel))
		}
		if rel > 1.02 {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("decoupling won >2%% on only %d programs", wins)
	}
}

// TestSuiteQueueBalance: with decoupling on, both queues must carry
// meaningful traffic across the integer suite (the load-balancing
// requirement of §2.1).
func TestSuiteQueueBalance(t *testing.T) {
	const scale = 0.02
	for _, w := range Workloads() {
		if w.Kind.String() != "int" {
			continue
		}
		res, err := Run(w, scale, DefaultConfig().WithPorts(2, 2))
		if err != nil {
			t.Fatal(err)
		}
		total := res.LSQDispatched + res.LVAQDispatched
		if total == 0 {
			t.Fatalf("%s: no memory traffic", w.Name)
		}
		lvaqShare := float64(res.LVAQDispatched) / float64(total)
		// compress is calibrated to the paper's low end (~10% local at
		// full scale, nearly all of it in rare flush calls), so only
		// require non-zero traffic there.
		minShare := 0.02
		if w.Name == "compress" {
			minShare = 0.0005
		}
		if lvaqShare <= minShare {
			t.Errorf("%s: LVAQ carries only %.2f%% of refs", w.Name, 100*lvaqShare)
		}
	}
}
