package repro

import (
	"testing"

	"repro/internal/workload"
)

// benchScale keeps one full experiment regeneration within a benchmark
// iteration. The shapes at this scale match the full-size runs; use
// cmd/ddbench -scale 1.0 for the headline numbers.
const benchScale = 0.02

// benchExperiment runs one paper table/figure end to end per iteration,
// with a fresh result cache each time so the measurement is honest.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := RunExperiment(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation.

func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkFig2(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig5(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkL2Traffic(b *testing.B) { benchExperiment(b, "l2traffic") }

// Extension experiments (beyond the paper's figures).

func BenchmarkAblationSteering(b *testing.B) { benchExperiment(b, "ablation-steering") }
func BenchmarkAblationCombine(b *testing.B)  { benchExperiment(b, "ablation-combine") }
func BenchmarkAblationTLB(b *testing.B)      { benchExperiment(b, "ablation-tlb") }
func BenchmarkPortModels(b *testing.B)       { benchExperiment(b, "alt-portmodel") }
func BenchmarkInputSensitivity(b *testing.B) { benchExperiment(b, "ext-input-sensitivity") }

// Component micro-benchmarks: how fast the substrates themselves are.

func BenchmarkEmulator(b *testing.B) {
	w, err := WorkloadByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.Program(0.1)
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		m := NewMachine(prog)
		if _, err := m.Run(0); err != nil {
			b.Fatal(err)
		}
		insts += m.InstCount
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkTimingCoreUnified(b *testing.B) {
	benchTiming(b, "vortex", 2, 0, false)
}

func BenchmarkTimingCoreDecoupled(b *testing.B) {
	benchTiming(b, "vortex", 2, 2, true)
}

// Per-workload timing-core benchmarks in the paper's optimized decoupled
// configuration — the hot loop the memsys refactor must not slow down.

func BenchmarkRunLi(b *testing.B)     { benchTiming(b, "li", 2, 2, true) }
func BenchmarkRunVortex(b *testing.B) { benchTiming(b, "vortex", 3, 2, true) }
func BenchmarkRunGcc(b *testing.B)    { benchTiming(b, "gcc", 2, 2, true) }

func benchTiming(b *testing.B, name string, n, m int, opt bool) {
	b.Helper()
	w, err := WorkloadByName(name)
	if err != nil {
		b.Fatal(err)
	}
	prog := w.Program(0.1)
	cfg := DefaultConfig().WithPorts(n, m)
	if opt {
		cfg = cfg.WithOptimizations(2)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := RunProgram(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Committed
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkAssembler(b *testing.B) {
	w, err := WorkloadByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	src := w.Source(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble("gcc.s", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	all := workload.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range all {
			if len(w.Source(0.1)) == 0 {
				b.Fatal("empty source")
			}
		}
	}
}
