package repro

import (
	"context"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func TestFacadeAssembleAndRun(t *testing.T) {
	prog, err := Assemble("t.s", `
        .text
main:
        li  $t0, 7
        out $t0
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunProgram(prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 7 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(Workloads()) != 12 {
		t.Errorf("Workloads() = %d entries", len(Workloads()))
	}
	w, err := WorkloadByName("li")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, 0.02, DefaultConfig().WithPorts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 {
		t.Error("zero IPC")
	}
	if res.LVAQDispatched == 0 {
		t.Error("no LVAQ traffic in decoupled run")
	}
}

func TestFacadeEmulator(t *testing.T) {
	w, err := WorkloadByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(w.Program(0.02))
	halted, err := m.Run(0)
	if err != nil || !halted {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
}

func TestFacadeProfile(t *testing.T) {
	w, err := WorkloadByName("vortex")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileWorkload(w, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if p.LocalFraction() < 0.5 {
		t.Errorf("vortex local fraction %.2f", p.LocalFraction())
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 15 {
		t.Errorf("only %d experiments", len(Experiments()))
	}
	out, err := RunExperiment("table1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "issue width") {
		t.Errorf("table1 output:\n%s", out)
	}
	if _, err := RunExperiment("nope", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeParseNM(t *testing.T) {
	n, m, err := ParseNM("(3+2)")
	if err != nil || n != 3 || m != 2 {
		t.Errorf("ParseNM = %d,%d,%v", n, m, err)
	}
	if _, _, err := ParseNM("bogus"); err == nil {
		t.Error("bad notation accepted")
	}
}

func TestFacadeConfigHelpers(t *testing.T) {
	cfg := DefaultConfig().WithPorts(4, 3).WithOptimizations(2)
	if cfg.Name() != "(4+3)" {
		t.Errorf("Name = %s", cfg.Name())
	}
	if !cfg.FastForward || cfg.CombineWidth != 2 {
		t.Error("WithOptimizations did not apply")
	}
	if !cfg.Decoupled() {
		t.Error("4+3 not decoupled")
	}
	if DefaultConfig().Decoupled() {
		t.Error("default (2+0) claims decoupled")
	}
}

// TestFacadeSimErrorOnInvariantViolation drives a memory-subsystem
// head-only-commit violation (via a seeded commit-desync fault) through the
// public facade and checks it surfaces as a typed *SimError carrying the
// failure cycle and per-stream pipeline state, not as a process panic.
func TestFacadeSimErrorOnInvariantViolation(t *testing.T) {
	w, err := WorkloadByName("vortex")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig().WithPorts(2, 2)
	inj := faultinject.New(3, faultinject.Params{
		Faults:      faultinject.CommitDesync,
		DesyncAfter: 25,
	})
	_, err = RunProgramWith(context.Background(), w.Program(0.02), cfg,
		RunOptions{Injector: inj})
	if err == nil {
		t.Fatal("corrupted commit bookkeeping went undetected")
	}
	se, ok := AsSimError(err)
	if !ok {
		t.Fatalf("error %T is not a *SimError: %v", err, err)
	}
	if se.Kind != SimPanic {
		t.Fatalf("kind = %s, want %s", se.Kind, SimPanic)
	}
	if !strings.Contains(se.Reason, "memsys") {
		t.Errorf("reason %q does not name the violated memsys invariant", se.Reason)
	}
	if se.Snapshot.Cycle == 0 {
		t.Error("snapshot does not record the failure cycle")
	}
	if len(se.Snapshot.Streams) != 2 {
		t.Fatalf("snapshot has %d streams, want one per memory stream (2)", len(se.Snapshot.Streams))
	}
	for _, s := range se.Snapshot.Streams {
		if s.Name == "" {
			t.Error("snapshot stream has no name")
		}
	}
}
