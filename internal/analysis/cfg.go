package analysis

import (
	"encoding/binary"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
)

// block is one basic block of the text segment: instruction indexes
// [start, end), plus the control-flow successors of its terminator.
// A block ending in JAL/JALR has its fallthrough as the only successor
// (the call edge is modelled by the ABI register transfer, not followed);
// a block ending in an indirect jump (JR through anything but $ra) is
// marked indirect and conservatively reaches every block.
type block struct {
	start, end int
	succs      []int
	indirect   bool
}

// cfg is the whole-text control-flow graph plus the discovered function
// entry blocks.
type cfg struct {
	prog    *asm.Program
	blocks  []block
	blockOf []int // instruction index -> block index
	entries []int // candidate function entry block indexes, ascending
}

// textIndex converts an absolute byte address into an instruction index,
// or -1 if it is outside (or misaligned within) the text segment.
func textIndex(p *asm.Program, addr uint32) int {
	if addr < p.TextBase || (addr-p.TextBase)%isa.InstBytes != 0 {
		return -1
	}
	idx := int((addr - p.TextBase) / isa.InstBytes)
	if idx >= len(p.Text) {
		return -1
	}
	return idx
}

// buildCFG splits the text segment into basic blocks and collects function
// entry candidates: the program entry point, every JAL target, and every
// code address materialized as a constant (la of a text label) or stored
// in the data segment (jump/dispatch tables) — provided the address starts
// a post-terminator block, so that arbitrary data words rarely fake an
// entry.
func buildCFG(p *asm.Program) *cfg {
	n := len(p.Text)
	g := &cfg{prog: p}
	if n == 0 {
		return g
	}

	leader := make([]bool, n)
	leader[0] = true
	entrySet := map[int]bool{}
	if idx := textIndex(p, p.Entry); idx >= 0 {
		leader[idx] = true
		entrySet[idx] = true
	}

	// isEntryShaped reports whether index idx can plausibly start a
	// function: the first instruction, or one just past a terminator.
	isEntryShaped := func(idx int) bool {
		if idx == 0 {
			return true
		}
		prev := p.Text[idx-1]
		return prev.IsControl() || prev.Op == isa.HALT
	}

	for i, in := range p.Text {
		switch in.Op.Info().Fmt {
		case isa.FmtBr:
			if t := i + 1 + int(in.Imm); t >= 0 && t < n {
				leader[t] = true
			}
		case isa.FmtBrZ:
			if t := i + 1 + int(in.Imm); t >= 0 && t < n {
				leader[t] = true
			}
		case isa.FmtJ:
			if t := textIndex(p, uint32(in.Imm)); t >= 0 {
				leader[t] = true
				if in.Op == isa.JAL {
					entrySet[t] = true
				}
			}
		}
		if in.IsControl() || in.Op == isa.HALT {
			if i+1 < n {
				leader[i+1] = true
			}
		}
		// Code addresses built by la/li (ADDI from $zero).
		if in.Op == isa.ADDI && in.Rs == isa.RegZero {
			if t := textIndex(p, uint32(in.Imm)); t >= 0 && isEntryShaped(t) {
				leader[t] = true
				entrySet[t] = true
			}
		}
	}

	// Code addresses stored in the data segment (dispatch tables).
	for off := 0; off+4 <= len(p.Data); off += 4 {
		w := binary.LittleEndian.Uint32(p.Data[off:])
		if t := textIndex(p, w); t >= 0 && isEntryShaped(t) {
			leader[t] = true
			entrySet[t] = true
		}
	}

	// Split into blocks.
	g.blockOf = make([]int, n)
	for i := 0; i < n; {
		b := block{start: i}
		for {
			g.blockOf[i] = len(g.blocks)
			in := p.Text[i]
			i++
			if in.IsControl() || in.Op == isa.HALT || (i < n && leader[i]) {
				break
			}
			if i == n {
				break
			}
		}
		b.end = i
		g.blocks = append(g.blocks, b)
	}

	// Successors.
	for bi := range g.blocks {
		b := &g.blocks[bi]
		last := p.Text[b.end-1]
		add := func(instIdx int) {
			if instIdx >= 0 && instIdx < n {
				b.succs = append(b.succs, g.blockOf[instIdx])
			}
		}
		switch {
		case last.Op == isa.HALT:
			// no successors
		case last.Op == isa.J:
			add(textIndex(p, uint32(last.Imm)))
		case last.Op == isa.JAL, last.Op == isa.JALR:
			add(b.end) // call: control returns to the fallthrough
		case last.Op == isa.JR:
			if last.Rs != isa.RegRA {
				b.indirect = true // jump table: may reach any block
			}
			// JR $ra is a return: no intra-function successors.
		case last.Op.Info().Class == isa.ClassBranch:
			add(b.end) // not taken
			add(b.end - 1 + 1 + int(last.Imm))
		default:
			add(b.end) // plain fallthrough into the next leader
		}
		sort.Ints(b.succs)
		b.succs = dedupInts(b.succs)
	}

	g.entries = make([]int, 0, len(entrySet))
	for idx := range entrySet {
		g.entries = append(g.entries, g.blockOf[idx])
	}
	sort.Ints(g.entries)
	g.entries = dedupInts(g.entries)
	return g
}

// funcBlocks returns the blocks reachable from entry following
// intra-function edges, ascending. Indirect jumps conservatively reach
// every block of the program.
func (g *cfg) funcBlocks(entry int) []int {
	seen := make(map[int]bool)
	work := []int{entry}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[bi] {
			continue
		}
		seen[bi] = true
		b := &g.blocks[bi]
		if b.indirect {
			for s := range g.blocks {
				if !seen[s] {
					work = append(work, s)
				}
			}
			continue
		}
		for _, s := range b.succs {
			if !seen[s] {
				work = append(work, s)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for bi := range seen {
		out = append(out, bi)
	}
	sort.Ints(out)
	return out
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
