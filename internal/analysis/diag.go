package analysis

import "fmt"

// DiagKind is the typed category of a lint finding.
type DiagKind uint8

const (
	// DiagUnsoundLocalHint: the instruction carries a !local hint but the
	// analysis proves the access is outside the stack region. Under hint
	// steering this access is misrouted on every execution and pays the
	// squash-and-replay recovery penalty.
	DiagUnsoundLocalHint DiagKind = iota
	// DiagUnsoundNonLocalHint: a !nonlocal hint on an access the analysis
	// proves to be a stack (local) access.
	DiagUnsoundNonLocalHint
	// DiagUnbalancedSP: a function returns with a non-zero (or
	// path-dependent) $sp adjustment relative to its entry.
	DiagUnbalancedSP
	// DiagStackEscape: a stack-derived address is stored to non-stack
	// memory, after which loaded pointers can alias the stack and defeat
	// static classification.
	DiagStackEscape
	// DiagOutOfFrame: a statically-known frame offset lands outside the
	// current frame (at/above the function's incoming $sp, or below the
	// current $sp).
	DiagOutOfFrame
	// DiagMissedForwarding: a local load has a matching same-slot store
	// but the dependence analysis cannot prove it is the unique last
	// writer, so no static forwarding pair is claimed.
	DiagMissedForwarding
	// DiagNeverCombines: adjacent same-kind local accesses that never form
	// a static combining group (different lines for some reachable frame
	// alignment, or an unclassifiable access splits the run).
	DiagNeverCombines
	// DiagAmbiguousSlot: a stack-derived access whose frame offset is
	// path-dependent, blocking every dependence-pass proof involving it.
	DiagAmbiguousSlot
	// DiagAssignUnsound: a provably-local or provably-nonlocal hint
	// assigned by the Assign pass was contradicted by the emulated oracle
	// — an analyzer soundness bug, never acceptable.
	DiagAssignUnsound
	// DiagAssignMisspec: a speculate-local assignment that dynamically
	// accessed non-stack memory at least once; each occurrence pays the
	// misroute-recovery penalty under SteerSpec but never affects
	// architectural results.
	DiagAssignMisspec
	// DiagAssignMissedLocal: an access the Assign pass left to dynamic
	// steering although every emulated execution stayed inside the stack
	// region — a missed speculation opportunity.
	DiagAssignMissedLocal
)

var diagKindNames = [...]string{
	"unsound-local-hint",
	"unsound-nonlocal-hint",
	"unbalanced-sp",
	"stack-escape",
	"out-of-frame",
	"missed-forwarding",
	"never-combines",
	"ambiguous-slot",
	"assign-unsound",
	"assign-misspeculation",
	"assign-missed-local",
}

func (k DiagKind) String() string {
	if int(k) < len(diagKindNames) {
		return diagKindNames[k]
	}
	return fmt.Sprintf("diag%d", uint8(k))
}

// Pass names the analysis pass that produces findings of this kind:
// "region" for the access-region classifier, "depend" for the
// interprocedural dependence analysis, "assign" for the hint-assignment
// oracle cross-check.
func (k DiagKind) Pass() string {
	switch {
	case k >= DiagAssignUnsound:
		return "assign"
	case k >= DiagMissedForwarding:
		return "depend"
	default:
		return "region"
	}
}

// Severity grades a finding.
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// Diag is one lint finding, anchored at a text-segment address.
type Diag struct {
	Kind DiagKind
	Sev  Severity
	PC   uint32
	Fn   string // entry label of the enclosing function, if known
	Inst string // disassembly of the offending instruction
	Msg  string
}

func (d Diag) String() string {
	fn := d.Fn
	if fn != "" {
		fn = " in " + fn
	}
	return fmt.Sprintf("%08x: %s: [%s] %s: %s%s", d.PC, d.Sev, d.Kind, d.Inst, d.Msg, fn)
}

// diagJSON is the stable wire form used by ddlint -json.
type diagJSON struct {
	Pass     string `json:"pass"`
	Kind     string `json:"kind"`
	Severity string `json:"severity"`
	PC       string `json:"pc"`
	Function string `json:"function,omitempty"`
	Inst     string `json:"inst"`
	Msg      string `json:"msg"`
}

// JSONForm returns the JSON-marshalable representation of the finding.
func (d Diag) JSONForm() any {
	return diagJSON{
		Pass:     d.Kind.Pass(),
		Kind:     d.Kind.String(),
		Severity: d.Sev.String(),
		PC:       fmt.Sprintf("%#08x", d.PC),
		Function: d.Fn,
		Inst:     d.Inst,
		Msg:      d.Msg,
	}
}
