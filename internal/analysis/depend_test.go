package analysis

import (
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/asm"
)

func mustDependences(t *testing.T, src string) *DepResult {
	t.Helper()
	prog, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Dependences(prog, 32)
}

func pairSlots(r *DepResult) []int64 {
	var slots []int64
	for _, p := range r.Pairs {
		slots = append(slots, p.Slot)
	}
	return slots
}

func hasDiag(r *DepResult, kind DiagKind, msgPart string) bool {
	for _, d := range r.Diags {
		if d.Kind == kind && strings.Contains(d.Msg, msgPart) {
			return true
		}
	}
	return false
}

func TestPairStraightLine(t *testing.T) {
	r := mustDependences(t, `
		.text
	main:
		addi $sp, $sp, -32
		sw   $a0, 4($sp)
		lw   $t0, 4($sp)
		addi $sp, $sp, 32
		halt
	`)
	if len(r.Pairs) != 1 {
		t.Fatalf("pairs = %v, want exactly 1", r.Pairs)
	}
	p := r.Pairs[0]
	if p.Slot != -28 || p.Bytes != 4 || p.Fn != "main" {
		t.Errorf("pair = %+v, want slot -28, 4B in main", p)
	}
	if ft := r.ForwardTable(); ft[p.LoadPC] != p.StorePC {
		t.Errorf("ForwardTable()[%08x] = %08x, want %08x", p.LoadPC, ft[p.LoadPC], p.StorePC)
	}
}

// TestPairKilledByAmbiguousStore: a store through a stack-derived pointer
// with a path-dependent offset may alias any slot, so no pair survives and
// the access itself is flagged ambiguous-slot.
func TestPairKilledByAmbiguousStore(t *testing.T) {
	r := mustDependences(t, `
		.text
	main:
		addi $sp, $sp, -32
		sw   $a0, 4($sp)
		move $t1, $sp
		bnez $a1, skip
		addi $t1, $t1, 8
	skip:
		sw   $zero, 0($t1)
		lw   $t0, 4($sp)
		addi $sp, $sp, 32
		halt
	`)
	if len(r.Pairs) != 0 {
		t.Fatalf("pairs = %v, want none", r.Pairs)
	}
	if !hasDiag(r, DiagAmbiguousSlot, "path-dependent") {
		t.Errorf("missing ambiguous-slot diag; got %v", r.Diags)
	}
	if !hasDiag(r, DiagMissedForwarding, "unbounded stack address") {
		t.Errorf("missing missed-forwarding diag naming the killer; got %v", r.Diags)
	}
}

// TestPairAcrossSafeCall: a callee whose frame-write summary provably
// misses the caller's slot does not kill the forwarding pair.
func TestPairAcrossSafeCall(t *testing.T) {
	r := mustDependences(t, `
		.text
	main:
		addi $sp, $sp, -32
		sw   $a0, 4($sp)
		jal  leaf
		lw   $t0, 4($sp)
		addi $sp, $sp, 32
		halt
	leaf:
		addi $sp, $sp, -16
		sw   $ra, 0($sp)
		lw   $ra, 0($sp)
		addi $sp, $sp, 16
		jr   $ra
	`)
	if len(r.Pairs) != 2 {
		t.Fatalf("pairs = %v, want 2 (caller across call + callee internal)", r.Pairs)
	}
	got := pairSlots(r)
	want := map[int64]bool{-28: false, -16: false}
	for _, s := range got {
		if _, ok := want[s]; !ok {
			t.Fatalf("unexpected pair slot %d in %v", s, r.Pairs)
		}
		want[s] = true
	}
	for s, seen := range want {
		if !seen {
			t.Errorf("missing pair for slot %d; got %v", s, r.Pairs)
		}
	}
	// The leaf writes [-16,-12) relative to its own entry $sp.
	for _, f := range r.Funcs {
		if f.Name == "leaf" && (f.WritesUnknown || f.WriteLo != -16 || f.WriteHi != -12) {
			t.Errorf("leaf summary = %+v, want [-16,-12)", f)
		}
	}
}

// TestPairKilledByUnsafeCall: a callee that stores through an unknown
// pointer has an unbounded summary and kills every slot at the callsite.
func TestPairKilledByUnsafeCall(t *testing.T) {
	r := mustDependences(t, `
		.text
	main:
		addi $sp, $sp, -32
		sw   $a0, 4($sp)
		jal  wild
		lw   $t0, 4($sp)
		addi $sp, $sp, 32
		halt
	wild:
		sw   $zero, 0($a1)
		jr   $ra
	`)
	if len(r.Pairs) != 0 {
		t.Fatalf("pairs = %v, want none", r.Pairs)
	}
	if !hasDiag(r, DiagMissedForwarding, "wild") {
		t.Errorf("missing missed-forwarding diag naming the unsafe callee; got %v", r.Diags)
	}
	for _, f := range r.Funcs {
		if f.Name == "wild" && !f.WritesUnknown {
			t.Errorf("wild summary = %+v, want WritesUnknown", f)
		}
		if f.Name == "main" && !f.WritesUnknown {
			t.Errorf("main summary = %+v, want WritesUnknown (transitively)", f)
		}
	}
}

// TestPairKilledByIndirectCall: a jalr has no static callee, so it kills
// every slot; the address-taken callee is assumed enterable at any frame
// alignment.
func TestPairKilledByIndirectCall(t *testing.T) {
	r := mustDependences(t, `
		.text
	main:
		addi $sp, $sp, -32
		sw   $a0, 4($sp)
		la   $t1, leaf
		jalr $ra, $t1
		lw   $t0, 4($sp)
		addi $sp, $sp, 32
		halt
	leaf:
		jr   $ra
	`)
	for _, p := range r.Pairs {
		if p.Fn == "main" {
			t.Errorf("pair %v survived an indirect call", p)
		}
	}
	if !hasDiag(r, DiagMissedForwarding, "indirect call") {
		t.Errorf("missing missed-forwarding diag for the jalr kill; got %v", r.Diags)
	}
	for _, f := range r.Funcs {
		if f.Name == "leaf" && f.AlignMask != 1<<32-1 {
			t.Errorf("address-taken leaf align mask = %#x, want full", f.AlignMask)
		}
	}
}

// TestCombineGroupsAligned: a 32-byte frame in a function only entered at
// a line-aligned $sp yields provable same-line runs for both kinds.
func TestCombineGroupsAligned(t *testing.T) {
	r := mustDependences(t, `
		.text
	main:
		addi $sp, $sp, -32
		sw   $a0, 0($sp)
		sw   $a1, 4($sp)
		sw   $a2, 8($sp)
		lw   $t0, 0($sp)
		lw   $t1, 4($sp)
		addi $sp, $sp, 32
		halt
	`)
	if len(r.Groups) != 2 {
		t.Fatalf("groups = %v, want 2", r.Groups)
	}
	var stores, loads *CombineGroup
	for i := range r.Groups {
		if r.Groups[i].IsLoad {
			loads = &r.Groups[i]
		} else {
			stores = &r.Groups[i]
		}
	}
	if stores == nil || len(stores.PCs) != 3 {
		t.Errorf("store group = %v, want 3 members", stores)
	}
	if loads == nil || len(loads.PCs) != 2 {
		t.Errorf("load group = %v, want 2 members", loads)
	}
	ct := r.CombineTable()
	if len(ct) != 5 {
		t.Errorf("CombineTable has %d members, want 5", len(ct))
	}
	if stores != nil && loads != nil && ct[stores.PCs[0]] == ct[loads.PCs[0]] {
		t.Error("store and load groups share a group id")
	}
	// The two loads also form forwarding pairs with their stores.
	if len(r.Pairs) != 2 {
		t.Errorf("pairs = %v, want 2", r.Pairs)
	}
}

// TestNeverCombinesUnalignedFrame: when the frame can sit at a non-aligned
// residue the same-line proof must fail and explain itself.
func TestNeverCombinesUnalignedFrame(t *testing.T) {
	// f is entered at residue 4 mod 32 ($sp shifted -28 at the callsite),
	// so its slots at -4 and -8 land at addresses 0 and -4: different
	// 32-byte lines.
	r := mustDependences(t, `
		.text
	main:
		addi $sp, $sp, -28
		jal  f
		addi $sp, $sp, 28
		halt
	f:
		addi $sp, $sp, -8
		sw   $a0, 4($sp)
		sw   $a1, 0($sp)
		addi $sp, $sp, 8
		jr   $ra
	`)
	if len(r.Groups) != 0 {
		t.Fatalf("groups = %v, want none (slots straddle a line at residue 4)", r.Groups)
	}
	if !hasDiag(r, DiagNeverCombines, "different 32-byte LVC lines") {
		t.Errorf("missing never-combines diag; got %v", r.Diags)
	}
}

// TestFibExample pins the analysis on the shipped recursive example: all
// three saved-register slots forward across the recursive calls (the
// widened callee summary stays strictly below the caller's $sp), and the
// 12-byte frame prevents any combining group.
func TestFibExample(t *testing.T) {
	src, err := os.ReadFile("../../examples/asm/fib.s")
	if err != nil {
		t.Fatal(err)
	}
	r := mustDependences(t, string(src))
	if len(r.Pairs) != 3 {
		t.Fatalf("pairs = %v, want 3", r.Pairs)
	}
	for _, p := range r.Pairs {
		if p.Fn != "fib" {
			t.Errorf("pair %v outside fib", p)
		}
	}
	if len(r.Groups) != 0 {
		t.Errorf("groups = %v, want none (12-byte frames are not line-aligned)", r.Groups)
	}
	for _, f := range r.Funcs {
		if f.Name != "fib" {
			continue
		}
		if f.WritesUnknown {
			t.Errorf("fib summary unexpectedly unknown: %+v", f)
		}
		if f.WriteLo != math.MinInt64 {
			t.Errorf("fib WriteLo = %d, want widened to -inf (recursion)", f.WriteLo)
		}
		if f.WriteHi != 0 {
			t.Errorf("fib WriteHi = %d, want 0", f.WriteHi)
		}
	}
	if !hasDiag(r, DiagNeverCombines, "different 32-byte LVC lines") {
		t.Errorf("missing never-combines diags on the unaligned frame; got %v", r.Diags)
	}
}

// TestRecurseExample covers satellite coverage for call-transfer on
// recursive and indirect-call programs via examples/asm/recurse.s.
func TestRecurseExample(t *testing.T) {
	src, err := os.ReadFile("../../examples/asm/recurse.s")
	if err != nil {
		t.Fatal(err)
	}
	r := mustDependences(t, string(src))

	// count recurses with an 8-byte frame: its summary must widen to
	// [-inf, 0) rather than iterate one frame per fixpoint round.
	var count, bump *FuncSummary
	for i := range r.Funcs {
		switch r.Funcs[i].Name {
		case "count":
			count = &r.Funcs[i]
		case "bump":
			bump = &r.Funcs[i]
		}
	}
	if count == nil {
		t.Fatal("no summary for count")
	}
	if count.WritesUnknown || count.WriteLo != math.MinInt64 || count.WriteHi != 0 {
		t.Errorf("count summary = %+v, want widened [-inf, 0)", *count)
	}
	if bump == nil {
		t.Fatal("no summary for bump (address-taken entry not discovered)")
	}
	if bump.AlignMask != 1<<32-1 {
		t.Errorf("bump align mask = %#x, want full (address-taken)", bump.AlignMask)
	}

	// Both count slots forward across the recursion; main's slot does not
	// survive the jalr.
	var countPairs int
	for _, p := range r.Pairs {
		switch p.Fn {
		case "count":
			countPairs++
		case "main":
			t.Errorf("pair %v in main survived the indirect call", p)
		}
	}
	if countPairs != 2 {
		t.Errorf("count pairs = %d (%v), want 2", countPairs, r.Pairs)
	}
	if !hasDiag(r, DiagMissedForwarding, "indirect call") {
		t.Errorf("missing missed-forwarding diag for the jalr; got %v", r.Diags)
	}

	// count is entered at residues {0, 24, 16, 8} (8-byte frames), so its
	// two word slots at -4 and -8 always share a line: a store group and a
	// load group. main's aligned 32-byte frame combines too.
	if len(r.Groups) < 2 {
		t.Errorf("groups = %v, want at least the count store pair and one more", r.Groups)
	}
	for _, g := range r.Groups {
		if len(g.PCs) < 2 {
			t.Errorf("degenerate group %v", g)
		}
	}
}

// TestDepDiagsCarryPass pins the pass attribution used by ddlint -json.
func TestDepDiagsCarryPass(t *testing.T) {
	if DiagOutOfFrame.Pass() != "region" || DiagUnsoundLocalHint.Pass() != "region" {
		t.Error("region kinds misattributed")
	}
	for _, k := range []DiagKind{DiagMissedForwarding, DiagNeverCombines, DiagAmbiguousSlot} {
		if k.Pass() != "depend" {
			t.Errorf("%v.Pass() = %q, want depend", k, k.Pass())
		}
	}
}
