// Hint assignment: the compiler half of the paper's decoupling contract.
//
// The access-region dataflow (analysis.go) and the interprocedural
// dependence pass (depend.go) only *check* or *replace* hints the workload
// generator happens to emit. Assign closes the loop for arbitrary input
// assembly: it consumes the converged classification and produces, for
// every memory instruction, an explicit steering decision with a
// confidence class —
//
//   - ConfProvenLocal / ConfProvenNonLocal: the dataflow proof stands on
//     its own; the assigned hint bit is sound and SteerHint/SteerSpec may
//     trust it unconditionally;
//   - ConfSpecLocal: unprovable, but the base address is stack-derived, so
//     the access lands in the stack region unless the frame walks out of
//     it. SteerSpec steers these to the local stream and lets the
//     existing misroute-recovery machinery absorb the rare miss (the
//     compile-time/speculation split of "Compiler Support for Speculation
//     in Decoupled Access/Execute Architectures", arXiv 2501.13553);
//   - ConfDynamic: nothing useful is known; the hardware's 1-bit region
//     predictor keeps the job.
//
// The result is packaged as a serializable HintTable artifact (the
// per-PC hints plus the statically-proven forwarding pairs and combining
// groups), surfaced by `ddasm -assign` and `ddlint -assign -json`, and
// cross-checked against the emulated oracle by Verify, which reports every
// misclassification with the analyzer's reason chain.
package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
)

// ConfClass is the confidence class of one assigned hint.
type ConfClass uint8

const (
	// ConfDynamic: no static knowledge; leave the access to the
	// hardware's dynamic steering.
	ConfDynamic ConfClass = iota
	// ConfProvenLocal: the dataflow proves the access is a stack access.
	ConfProvenLocal
	// ConfProvenNonLocal: the dataflow proves the address range misses
	// the stack region.
	ConfProvenNonLocal
	// ConfSpecLocal: unprovable, but the base is stack-derived — steer
	// local speculatively and rely on misroute recovery.
	ConfSpecLocal
)

var confNames = [...]string{
	"leave-dynamic",
	"provably-local",
	"provably-nonlocal",
	"speculate-local",
}

func (c ConfClass) String() string {
	if int(c) < len(confNames) {
		return confNames[c]
	}
	return fmt.Sprintf("conf%d", uint8(c))
}

// ParseConfClass inverts String (used by the HintTable decoder).
func ParseConfClass(s string) (ConfClass, error) {
	for i, n := range confNames {
		if n == s {
			return ConfClass(i), nil
		}
	}
	return 0, fmt.Errorf("analysis: unknown confidence class %q", s)
}

// Hint is the ISA hint encoding the class justifies on its own: only the
// proven classes map to a hint bit; speculate-local is a steering-policy
// decision, not a soundness claim, and stays HintNone.
func (c ConfClass) Hint() isa.Hint {
	switch c {
	case ConfProvenLocal:
		return isa.HintLocal
	case ConfProvenNonLocal:
		return isa.HintNonLocal
	default:
		return isa.HintNone
	}
}

// Assigned is the assignment for one memory instruction.
type Assigned struct {
	PC     uint32
	Inst   string // disassembly, for the artifact
	Conf   ConfClass
	Reason string // the analyzer's reason chain
}

// HintTable is the serializable artifact of one Assign run: the complete
// per-PC steering decision plus the statically-proven forwarding pairs
// and combining groups of the dependence pass. It is what a compiler
// would hand the hardware alongside the binary.
type HintTable struct {
	Program   string
	LineBytes int
	Entries   []Assigned // one per memory instruction, sorted by PC
	Pairs     []FwdPair
	Groups    []CombineGroup
}

// At returns the assignment for the memory instruction at pc.
func (t *HintTable) At(pc uint32) (Assigned, bool) {
	i := sort.Search(len(t.Entries), func(i int) bool { return t.Entries[i].PC >= pc })
	if i < len(t.Entries) && t.Entries[i].PC == pc {
		return t.Entries[i], true
	}
	return Assigned{}, false
}

// AssignSummary tallies a table by confidence class.
type AssignSummary struct {
	Mem, ProvenLocal, ProvenNonLocal, SpecLocal, Dynamic int
}

// Summarize counts the entries per confidence class.
func (t *HintTable) Summarize() AssignSummary {
	var s AssignSummary
	for _, e := range t.Entries {
		s.Mem++
		switch e.Conf {
		case ConfProvenLocal:
			s.ProvenLocal++
		case ConfProvenNonLocal:
			s.ProvenNonLocal++
		case ConfSpecLocal:
			s.SpecLocal++
		default:
			s.Dynamic++
		}
	}
	return s
}

func (s AssignSummary) String() string {
	return fmt.Sprintf("%d memory instructions: %d provably-local, %d provably-nonlocal, %d speculate-local, %d leave-dynamic",
		s.Mem, s.ProvenLocal, s.ProvenNonLocal, s.SpecLocal, s.Dynamic)
}

// ---------------------------------------------------------- wire format

// The JSON wire format is versioned and field-stable: consumers (CI
// artifacts, the lint schema test) rely on these exact names.

type hintTableJSON struct {
	Schema    string         `json:"schema"`
	Program   string         `json:"program"`
	LineBytes int            `json:"line_bytes"`
	Entries   []assignedJSON `json:"entries"`
	Forward   []fwdPairJSON  `json:"forward_pairs"`
	Combine   []combineJSON  `json:"combine_groups"`
}

type assignedJSON struct {
	PC     string `json:"pc"`
	Inst   string `json:"inst"`
	Conf   string `json:"conf"`
	Hint   string `json:"hint"`
	Reason string `json:"reason"`
}

type fwdPairJSON struct {
	StorePC string `json:"store_pc"`
	LoadPC  string `json:"load_pc"`
	Slot    int64  `json:"slot"`
	Bytes   int64  `json:"bytes"`
	Fn      string `json:"fn"`
}

type combineJSON struct {
	PCs    []string `json:"pcs"`
	IsLoad bool     `json:"loads"`
	Fn     string   `json:"fn"`
}

// HintTableSchema is the wire-format version tag EncodeJSON emits and
// DecodeHintTable requires.
const HintTableSchema = "hinttable/v1"

func hexPC(pc uint32) string { return fmt.Sprintf("%#08x", pc) }

func parsePC(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("analysis: bad pc %q", s)
	}
	return uint32(v), nil
}

// EncodeJSON writes the table in its stable wire form.
func (t *HintTable) EncodeJSON(w io.Writer) error {
	out := hintTableJSON{
		Schema:    HintTableSchema,
		Program:   t.Program,
		LineBytes: t.LineBytes,
		Entries:   []assignedJSON{},
		Forward:   []fwdPairJSON{},
		Combine:   []combineJSON{},
	}
	for _, e := range t.Entries {
		out.Entries = append(out.Entries, assignedJSON{
			PC: hexPC(e.PC), Inst: e.Inst, Conf: e.Conf.String(),
			Hint: e.Conf.Hint().String(), Reason: e.Reason,
		})
	}
	for _, p := range t.Pairs {
		out.Forward = append(out.Forward, fwdPairJSON{
			StorePC: hexPC(p.StorePC), LoadPC: hexPC(p.LoadPC),
			Slot: p.Slot, Bytes: p.Bytes, Fn: p.Fn,
		})
	}
	for _, g := range t.Groups {
		gj := combineJSON{IsLoad: g.IsLoad, Fn: g.Fn, PCs: []string{}}
		for _, pc := range g.PCs {
			gj.PCs = append(gj.PCs, hexPC(pc))
		}
		out.Combine = append(out.Combine, gj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeHintTable reads a table back from its wire form.
func DecodeHintTable(r io.Reader) (*HintTable, error) {
	var in hintTableJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("analysis: decoding hint table: %w", err)
	}
	if in.Schema != HintTableSchema {
		return nil, fmt.Errorf("analysis: hint table schema %q, want %q", in.Schema, HintTableSchema)
	}
	t := &HintTable{Program: in.Program, LineBytes: in.LineBytes}
	for _, e := range in.Entries {
		pc, err := parsePC(e.PC)
		if err != nil {
			return nil, err
		}
		conf, err := ParseConfClass(e.Conf)
		if err != nil {
			return nil, err
		}
		t.Entries = append(t.Entries, Assigned{PC: pc, Inst: e.Inst, Conf: conf, Reason: e.Reason})
	}
	for _, p := range in.Forward {
		spc, err := parsePC(p.StorePC)
		if err != nil {
			return nil, err
		}
		lpc, err := parsePC(p.LoadPC)
		if err != nil {
			return nil, err
		}
		t.Pairs = append(t.Pairs, FwdPair{StorePC: spc, LoadPC: lpc, Slot: p.Slot, Bytes: p.Bytes, Fn: p.Fn})
	}
	for _, g := range in.Combine {
		cg := CombineGroup{IsLoad: g.IsLoad, Fn: g.Fn}
		for _, s := range g.PCs {
			pc, err := parsePC(s)
			if err != nil {
				return nil, err
			}
			cg.PCs = append(cg.PCs, pc)
		}
		t.Groups = append(t.Groups, cg)
	}
	return t, nil
}

// ------------------------------------------------------------- assigning

// AssignResult bundles the assignment with the analyses it was derived
// from (for reports and lint).
type AssignResult struct {
	Prog  *asm.Program
	An    *Analysis
	Dep   *DepResult
	Table *HintTable
}

// Assign runs the full compiler-side pipeline on prog — access-region
// dataflow, interprocedural dependence analysis, hint assignment — and
// returns the assignment. Any hint bits already present in prog are
// ignored: the assignment is derived from the analyses alone, so
// hand-written, fuzzed and hint-stripped programs are all first-class
// inputs.
func Assign(prog *asm.Program) *AssignResult {
	an := Analyze(prog)
	dep := Dependences(prog, 0)
	t := &HintTable{
		Program:   prog.Name,
		LineBytes: dep.LineBytes,
		Pairs:     dep.Pairs,
		Groups:    dep.Groups,
	}
	for i, in := range prog.Text {
		if !in.IsMem() {
			continue
		}
		ci := an.Classes[i]
		conf := ConfDynamic
		switch {
		case ci.Class == ClassLocal:
			conf = ConfProvenLocal
		case ci.Class == ClassNonLocal:
			conf = ConfProvenNonLocal
		case ci.Spec:
			conf = ConfSpecLocal
		}
		t.Entries = append(t.Entries, Assigned{
			PC:     prog.TextBase + uint32(i)*isa.InstBytes,
			Inst:   in.String(),
			Conf:   conf,
			Reason: ci.Reason,
		})
	}
	return &AssignResult{Prog: prog, An: an, Dep: dep, Table: t}
}

// Apply returns a copy of the program re-hinted from scratch: every memory
// instruction carries exactly the assigned hint bit (proven classes only —
// speculate-local is not a sound hint), and any pre-existing hints are
// discarded. The result is what "compile with hint assignment" produces,
// consumable by the unmodified SteerHint hardware policy.
func (r *AssignResult) Apply() *asm.Program {
	hints := make(map[uint32]isa.Hint)
	for _, e := range r.Table.Entries {
		if h := e.Conf.Hint(); h != isa.HintNone {
			hints[e.PC] = h
		}
	}
	return r.Prog.WithHints(hints)
}

// SteerTable returns the per-PC confidence classes consumed by the
// SteerSpec policy of the timing core; leave-dynamic entries are omitted
// (absent keys fall back to the region predictor).
func (r *AssignResult) SteerTable() map[uint32]ConfClass {
	t := make(map[uint32]ConfClass)
	for _, e := range r.Table.Entries {
		if e.Conf != ConfDynamic {
			t[e.PC] = e.Conf
		}
	}
	return t
}

// Report renders the assignment table for ddasm/ddlint -dump style output.
func (r *AssignResult) Report() string {
	out := make([]byte, 0, 64*len(r.Table.Entries))
	for _, e := range r.Table.Entries {
		out = append(out, fmt.Sprintf("%08x: %-17s %-28s %s\n", e.PC, e.Conf, e.Inst, e.Reason)...)
	}
	return string(out)
}

// ---------------------------------------------------------- verification

// DefaultVerifySteps bounds the oracle replay when the caller passes 0.
const DefaultVerifySteps = 2_000_000

// VerifyStats summarizes one oracle cross-check.
type VerifyStats struct {
	Steps    uint64 // emulated instructions
	Halted   bool   // the program ran to completion within the budget
	Executed int    // table entries that executed at least once
	// Per-severity misclassification counts (static, per PC).
	Unsound     int // proven class contradicted — analyzer soundness bug
	Misspec     int // speculate-local PCs with >=1 non-local execution
	MissedLocal int // leave-dynamic PCs that were local on every execution
	// Dynamic speculation accounting (per access instance).
	SpecAccesses uint64 // executions of speculate-local PCs
	SpecWrong    uint64 // of those, how many touched non-stack memory
}

// Verify replays the program on the functional emulator (the oracle) and
// cross-checks every assigned hint against the regions actually accessed,
// reporting each misclassification with the analyzer's reason chain:
// a contradicted proven class is an error (the soundness gate), a
// speculate-local entry that ever went non-local is informational (it
// costs recovery cycles under SteerSpec, never correctness), and a
// leave-dynamic entry that stayed local throughout is a missed
// opportunity. maxSteps bounds the replay (0 = DefaultVerifySteps).
func (r *AssignResult) Verify(maxSteps uint64) ([]Diag, VerifyStats) {
	if maxSteps == 0 {
		maxSteps = DefaultVerifySteps
	}
	prog := r.Prog
	nLocal := make(map[uint32]uint64, len(r.Table.Entries))
	nNonLocal := make(map[uint32]uint64, len(r.Table.Entries))
	m := emu.New(prog)
	var st VerifyStats
	for !m.Halted && st.Steps < maxSteps {
		ef, err := m.Step()
		if err != nil {
			break // a trapped program still yields a partial oracle
		}
		st.Steps++
		if !ef.Inst.IsMem() {
			continue
		}
		if isa.InStackRegion(ef.Addr) {
			nLocal[ef.PC]++
		} else {
			nNonLocal[ef.PC]++
		}
	}
	st.Halted = m.Halted

	var diags []Diag
	for _, e := range r.Table.Entries {
		loc, non := nLocal[e.PC], nNonLocal[e.PC]
		if loc == 0 && non == 0 {
			continue // never executed under this input
		}
		st.Executed++
		switch e.Conf {
		case ConfProvenLocal:
			if non > 0 {
				st.Unsound++
				diags = append(diags, Diag{DiagAssignUnsound, SevError, e.PC, "", e.Inst,
					fmt.Sprintf("assigned !local but %d/%d executions accessed non-stack memory; analyzer: %s",
						non, loc+non, e.Reason)})
			}
		case ConfProvenNonLocal:
			if loc > 0 {
				st.Unsound++
				diags = append(diags, Diag{DiagAssignUnsound, SevError, e.PC, "", e.Inst,
					fmt.Sprintf("assigned !nonlocal but %d/%d executions accessed the stack region; analyzer: %s",
						loc, loc+non, e.Reason)})
			}
		case ConfSpecLocal:
			st.SpecAccesses += loc + non
			st.SpecWrong += non
			if non > 0 {
				st.Misspec++
				diags = append(diags, Diag{DiagAssignMisspec, SevInfo, e.PC, "", e.Inst,
					fmt.Sprintf("speculate-local access went non-local on %d/%d executions (recovery cost, not a correctness issue); analyzer: %s",
						non, loc+non, e.Reason)})
			}
		default:
			if non == 0 {
				st.MissedLocal++
				diags = append(diags, Diag{DiagAssignMissedLocal, SevInfo, e.PC, "", e.Inst,
					fmt.Sprintf("left to dynamic steering but all %d executions stayed in the stack region; analyzer: %s",
						loc, e.Reason)})
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].PC != diags[j].PC {
			return diags[i].PC < diags[j].PC
		}
		return diags[i].Kind < diags[j].Kind
	})
	return diags, st
}
