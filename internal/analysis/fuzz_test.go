package analysis

import (
	"reflect"
	"testing"

	"repro/internal/asm"
)

// FuzzAnalyze feeds arbitrary source through the assembler and, when it
// assembles, checks that the analyzer neither panics nor classifies
// non-deterministically.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		"",
		"\t.text\nmain:\n\thalt\n",
		"\t.text\nmain:\n\tlw $t0, 4($sp) !local\n\thalt\n",
		"\t.data\nx:\t.word 1, 2, 3\n",
		"\t.text\nmain:\n\tadd $t0 $t1\n",
		"\t.text\nmain:\n\tli $t0, 99999999999999999999\n",
		"#comment only\n",
		"\t.text\nmain:\n\tsw $t0, x($gp)\n\t.data\nx: .word 0\n",
		// Analyzer-specific shapes: calls, loops, indirect jumps,
		// dispatch tables, unbalanced frames.
		"\t.text\nmain:\n\tjal f\n\thalt\nf:\n\taddi $sp, $sp, -8\n\tsw $ra, 4($sp)\n\tlw $ra, 4($sp)\n\taddi $sp, $sp, 8\n\tjr $ra\n",
		"\t.text\nmain:\n\tla $t0, arr\n\tli $t1, 10\nloop:\n\tlw $t2, 0($t0)\n\taddi $t0, $t0, 4\n\taddi $t1, $t1, -1\n\tbne $t1, $zero, loop\n\thalt\n\t.data\narr:\t.space 40\n",
		"\t.data\ntab:\t.word f\n\t.text\nmain:\n\tla $t0, tab\n\tlw $t3, 0($t0)\n\tjalr $ra, $t3\n\thalt\nf:\n\tjr $ra\n",
		"\t.text\nmain:\n\taddi $sp, $sp, -16\n\tbeq $a0, $zero, out\n\taddi $sp, $sp, 16\nout:\n\tjr $ra\n",
		"\t.text\nmain:\n\taddi $t0, $sp, 0\n\tla $t1, g\n\tsw $t0, 0($t1)\n\thalt\n\t.data\ng:\t.word 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := asm.Assemble("fuzz.s", src)
		if err != nil {
			return
		}
		r1 := Analyze(prog)
		r2 := Analyze(prog)
		if !reflect.DeepEqual(r1.Classes, r2.Classes) {
			t.Fatal("classification is not deterministic")
		}
		if !reflect.DeepEqual(r1.Diags, r2.Diags) {
			t.Fatal("diagnostics are not deterministic")
		}
		_ = r1.Summarize()
		_ = r1.Report()
		_ = r1.HintTable()
	})
}
