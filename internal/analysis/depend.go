// Interprocedural store→load dependence analysis: the static half of the
// paper's two LVAQ optimizations (§2.2.2). On top of the access-region
// dataflow this file builds a call graph with context-insensitive
// per-function summaries — the entry-$sp-relative byte interval a function
// (transitively) may store to, and the set of possible entry-$sp
// alignments modulo the LVC line size — and uses them to prove two
// properties the hardware otherwise discovers dynamically:
//
//   - forwarding pairs: a store and a load that provably access the same
//     entry-$sp+delta frame slot with the same width, such that on every
//     path from the function entry to the load the store is the last
//     write that may alias the slot (intervening calls are admitted when
//     the callee's transitive frame-write summary provably misses the
//     slot). Under config.ForwardStatic the fast data forwarding bypass
//     is restricted to these pairs.
//
//   - combining groups: maximal runs of consecutive memory instructions
//     in one basic block, all loads or all stores, all provably landing
//     in the same LVC line for every reachable entry-$sp alignment of
//     the enclosing function. Under config.CombineStatic the access
//     combining window only opens for (and admits) members of one group.
//
// Soundness stance: a pair is claimed only when the last-writer dataflow
// proves the singleton writer on all paths, calls included; a group is
// claimed only when the same-line property holds for every alignment the
// call-graph walk can reach. Indirect calls are assumed to target
// address-taken labels (the same assumption buildCFG makes when it forms
// entries from data words and la-materialized code addresses); both
// assumptions are checked against emulator ground truth by the soundness
// harness on all 12 workloads.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// DefaultLineBytes is the LVC line size assumed when the caller does not
// supply one (the paper's 32-byte lines).
const DefaultLineBytes = 32

// maxAlignBits bounds the line sizes the alignment mask can represent.
const maxAlignBits = 64

// FwdPair is one statically-proven store→load forwarding pair.
type FwdPair struct {
	StorePC, LoadPC uint32
	Slot            int64 // entry-$sp-relative byte offset of the shared slot
	Bytes           int64
	Fn              string
}

func (p FwdPair) String() string {
	return fmt.Sprintf("%08x → %08x (slot %+d, %dB) in %s",
		p.StorePC, p.LoadPC, p.Slot, p.Bytes, p.Fn)
}

// CombineGroup is one statically-proven run of same-line accesses.
type CombineGroup struct {
	PCs    []uint32 // members in program order
	IsLoad bool
	Fn     string
}

func (g CombineGroup) String() string {
	kind := "stores"
	if g.IsLoad {
		kind = "loads"
	}
	pcs := make([]string, len(g.PCs))
	for i, pc := range g.PCs {
		pcs[i] = fmt.Sprintf("%08x", pc)
	}
	return fmt.Sprintf("{%s} %s in %s", strings.Join(pcs, ", "), kind, g.Fn)
}

// FuncSummary is the exported context-insensitive summary of one function.
type FuncSummary struct {
	Entry uint32
	Name  string
	// WritesUnknown: the function (transitively) may store to stack
	// addresses the analysis cannot bound.
	WritesUnknown bool
	// [WriteLo, WriteHi) is the entry-$sp-relative byte interval the
	// function (transitively) may store to within the stack region, valid
	// when !WritesUnknown. WriteLo == math.MinInt64 after widening
	// (recursion); WriteLo >= WriteHi means no stack writes at all.
	WriteLo, WriteHi int64
	// AlignMask is the bitset of reachable entry-$sp residues modulo the
	// analyzed line size; 0 means the function was never seen called.
	AlignMask uint64
}

// DepResult is the output of the interprocedural dependence analysis.
type DepResult struct {
	Prog      *asm.Program
	LineBytes int
	Pairs     []FwdPair      // sorted by load PC
	Groups    []CombineGroup // sorted by first member PC
	Funcs     []FuncSummary  // sorted by entry PC
	// Diags are the dependence-pass findings (missed-forwarding,
	// never-combines, ambiguous-slot), all informational; they are kept
	// separate from Analysis.Diags so that the access-region lint contract
	// ("workloads lint clean") is unaffected.
	Diags []Diag
}

// ForwardTable returns the load-PC → store-PC map consumed by the timing
// core under config.ForwardStatic.
func (r *DepResult) ForwardTable() map[uint32]uint32 {
	t := make(map[uint32]uint32, len(r.Pairs))
	for _, p := range r.Pairs {
		t[p.LoadPC] = p.StorePC
	}
	return t
}

// CombineTable returns the member-PC → group-id map consumed by the timing
// core under config.CombineStatic.
func (r *DepResult) CombineTable() map[uint32]int {
	t := make(map[uint32]int)
	for id, g := range r.Groups {
		for _, pc := range g.PCs {
			t[pc] = id
		}
	}
	return t
}

// Report renders the proven pairs and groups for ddlint -dep.
func (r *DepResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d forwarding pairs, %d combining groups\n", len(r.Pairs), len(r.Groups))
	for _, p := range r.Pairs {
		fmt.Fprintf(&b, "  pair  %s\n", p)
	}
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "  group %s\n", g)
	}
	return b.String()
}

// ------------------------------------------------------------- events

type evKind uint8

const (
	evMem evKind = iota
	evCall
	evCallUnknown // JALR: target not statically resolvable
)

// depEvent is one dependence-relevant instruction of a function, with the
// abstract facts the dependence dataflow needs, precomputed from the
// converged register states.
type depEvent struct {
	idx  int // instruction index in prog.Text
	kind evKind

	// Memory access facts (kind == evMem).
	isLoad   bool
	slotOK   bool  // base is entry-$sp+delta with an exact offset
	eff      int64 // slot offset: delta + displacement (valid when slotOK)
	width    int64
	nonstack bool // address range provably misses the stack region
	// stackUnknown distinguishes "stack-derived, path-dependent offset"
	// from a fully unknown base, for the ambiguous-slot diagnostic.
	stackUnknown bool

	// Call facts (kind == evCall).
	target    int // callee entry block index
	spdeltaOK bool
	spdelta   int64
}

// fnInfo is the per-function working state of the dependence analysis.
type fnInfo struct {
	entry  int // entry block index
	pc     uint32
	name   string
	blocks []int
	states map[int]*blockState
	events map[int][]depEvent // per block, in instruction order

	// Summary fixpoint state.
	sumUnknown   bool
	sumLo, sumHi int64 // [lo, hi) stack-write interval, lo >= hi = empty
	sumChanges   int

	alignMask uint64
}

// depAnalyzer carries the whole-program state of the dependence pass.
type depAnalyzer struct {
	prog      *asm.Program
	a         *analyzer
	g         *cfg
	lineBytes int
	fns       map[int]*fnInfo // keyed by entry block index
	order     []int           // entry block indexes, ascending
}

// Dependences runs the interprocedural store→load dependence analysis on
// prog, assuming the given LVC line size for the combining-group proofs
// (0 selects DefaultLineBytes).
func Dependences(prog *asm.Program, lineBytes int) *DepResult {
	if lineBytes <= 0 {
		lineBytes = DefaultLineBytes
	}
	d := &depAnalyzer{
		prog:      prog,
		lineBytes: lineBytes,
		fns:       make(map[int]*fnInfo),
	}
	d.a = &analyzer{
		prog: prog,
		g:    buildCFG(prog),
		seen: make(map[string]bool),
	}
	d.g = d.a.g

	// Two phases: register every function first so that call events can
	// resolve forward references, then extract events.
	for _, entry := range d.g.entries {
		fn := &fnInfo{
			entry:  entry,
			pc:     d.a.pcOf(d.g.blocks[entry].start),
			blocks: d.g.funcBlocks(entry),
		}
		fn.name = d.a.fnName(fn.pc)
		fn.states = d.a.solve(entry, fn.blocks)
		d.fns[entry] = fn
		d.order = append(d.order, entry)
	}
	for _, entry := range d.order {
		fn := d.fns[entry]
		fn.events = make(map[int][]depEvent, len(fn.blocks))
		for _, bi := range fn.blocks {
			fn.events[bi] = d.blockEvents(fn, bi)
		}
	}

	d.solveSummaries()
	if lineBytes <= maxAlignBits {
		d.solveAlignment()
	}

	res := &DepResult{Prog: prog, LineBytes: lineBytes}
	d.claim(res)
	for _, entry := range d.order {
		fn := d.fns[entry]
		res.Funcs = append(res.Funcs, FuncSummary{
			Entry:         fn.pc,
			Name:          fn.name,
			WritesUnknown: fn.sumUnknown,
			WriteLo:       fn.sumLo,
			WriteHi:       fn.sumHi,
			AlignMask:     fn.alignMask,
		})
	}
	sort.Slice(res.Pairs, func(i, j int) bool { return res.Pairs[i].LoadPC < res.Pairs[j].LoadPC })
	sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].PCs[0] < res.Groups[j].PCs[0] })
	sort.SliceStable(res.Diags, func(i, j int) bool {
		if res.Diags[i].PC != res.Diags[j].PC {
			return res.Diags[i].PC < res.Diags[j].PC
		}
		return res.Diags[i].Kind < res.Diags[j].Kind
	})
	return res
}

// blockEvents walks one block from its converged entry state and extracts
// the dependence-relevant facts per instruction.
func (d *depAnalyzer) blockEvents(fn *fnInfo, bi int) []depEvent {
	bs := fn.states[bi]
	if bs == nil || !bs.seeded {
		return nil
	}
	st := bs.reg
	b := &d.g.blocks[bi]
	var evs []depEvent
	for i := b.start; i < b.end; i++ {
		in := d.prog.Text[i]
		pc := d.a.pcOf(i)
		switch {
		case in.IsMem():
			ev := depEvent{idx: i, kind: evMem, isLoad: in.IsLoad(), width: int64(in.MemBytes())}
			base := st.get(in.BaseReg())
			switch {
			case base.k == kStack && base.deltaOK:
				ev.slotOK = true
				ev.eff = int64(base.delta) + int64(in.Imm)
			case base.k == kStack:
				ev.stackUnknown = true
			default:
				if cls, _, _ := classify(base, in.Imm, ev.width); cls == ClassNonLocal {
					ev.nonstack = true
				}
			}
			evs = append(evs, ev)
		case in.Op == isa.JAL:
			ev := depEvent{idx: i, kind: evCall, target: -1}
			if t := textIndex(d.prog, uint32(in.Imm)); t >= 0 {
				ev.target = d.g.blockOf[t]
			}
			if sp := st.get(isa.RegSP); sp.k == kStack && sp.deltaOK {
				ev.spdeltaOK, ev.spdelta = true, int64(sp.delta)
			}
			if _, known := d.fns[ev.target]; !known {
				ev.kind = evCallUnknown
			}
			evs = append(evs, ev)
		case in.Op == isa.JALR:
			evs = append(evs, depEvent{idx: i, kind: evCallUnknown})
		}
		step(&st, pc, in)
	}
	return evs
}

// ------------------------------------------------- frame-write summaries

// satAdd is saturating int64 addition (summary bounds reach ±inf under
// widening).
func satAdd(a, b int64) int64 {
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return math.MaxInt64
	}
	if a < 0 && b < 0 && s >= 0 {
		return math.MinInt64
	}
	return s
}

// mergeInterval grows fn's stack-write interval; reports change.
func (fn *fnInfo) mergeInterval(lo, hi int64) bool {
	if lo >= hi {
		return false
	}
	if fn.sumLo >= fn.sumHi { // empty so far
		fn.sumLo, fn.sumHi = lo, hi
		return true
	}
	changed := false
	if lo < fn.sumLo {
		fn.sumLo = lo
		changed = true
	}
	if hi > fn.sumHi {
		fn.sumHi = hi
		changed = true
	}
	return changed
}

// summaryWidenLimit is how many times a function's interval may grow
// before its bounds are widened to ±inf (recursive frame chains otherwise
// descend one frame per iteration).
const summaryWidenLimit = 8

// solveSummaries computes, per function, the entry-$sp-relative byte
// interval it may (transitively) store to within the stack region.
func (d *depAnalyzer) solveSummaries() {
	// Local effects first.
	for _, entry := range d.order {
		fn := d.fns[entry]
		fn.sumLo, fn.sumHi = 0, 0 // empty
		for _, bi := range fn.blocks {
			for _, ev := range fn.events[bi] {
				switch ev.kind {
				case evMem:
					if ev.isLoad || ev.nonstack {
						continue
					}
					if ev.slotOK {
						fn.mergeInterval(ev.eff, ev.eff+ev.width)
					} else {
						// May store anywhere in the stack region.
						fn.sumUnknown = true
					}
				case evCallUnknown:
					fn.sumUnknown = true
				}
			}
		}
	}

	// Propagate callee effects to a fixpoint, widening slow-growing
	// intervals (recursion) so the iteration terminates.
	for changed := true; changed; {
		changed = false
		for _, entry := range d.order {
			fn := d.fns[entry]
			if fn.sumUnknown {
				continue
			}
			for _, bi := range fn.blocks {
				for _, ev := range fn.events[bi] {
					if ev.kind != evCall {
						continue
					}
					callee := d.fns[ev.target]
					if callee.sumUnknown || !ev.spdeltaOK {
						fn.sumUnknown = true
						changed = true
						break
					}
					if callee.sumLo >= callee.sumHi {
						continue
					}
					if fn.mergeInterval(satAdd(ev.spdelta, callee.sumLo), satAdd(ev.spdelta, callee.sumHi)) {
						fn.sumChanges++
						if fn.sumChanges > summaryWidenLimit {
							fn.sumLo = math.MinInt64
						}
						changed = true
					}
				}
				if fn.sumUnknown {
					break
				}
			}
		}
	}
}

// --------------------------------------------------- entry-$sp alignment

// solveAlignment computes, per function, the bitset of reachable
// entry-$sp residues modulo the line size: the program entry starts from
// the loader's $sp; JAL edges shift the caller's residues by the callsite
// $sp delta; address-taken functions (and targets of unknown-delta calls)
// may be entered at any residue.
func (d *depAnalyzer) solveAlignment() {
	L := int64(d.lineBytes)
	full := uint64(1)<<uint(L) - 1
	if d.lineBytes == maxAlignBits {
		full = ^uint64(0)
	}
	mod := func(x int64) uint { return uint(((x % L) + L) % L) }

	// Address-taken entries: code addresses materialized by la/li or
	// stored in the data segment (the buildCFG entry sources other than
	// JAL targets), assumed callable from anywhere at any alignment.
	jalTargets := make(map[int]bool)
	for _, in := range d.prog.Text {
		if in.Op == isa.JAL {
			if t := textIndex(d.prog, uint32(in.Imm)); t >= 0 {
				jalTargets[d.g.blockOf[t]] = true
			}
		}
	}
	progEntry := -1
	if idx := textIndex(d.prog, d.prog.Entry); idx >= 0 {
		progEntry = d.g.blockOf[idx]
	}
	for _, entry := range d.order {
		fn := d.fns[entry]
		if entry == progEntry {
			fn.alignMask |= 1 << mod(int64(isa.StackBase))
		}
		if !jalTargets[entry] && entry != progEntry {
			fn.alignMask = full // address-taken (la/data word) entry
		}
	}

	for changed := true; changed; {
		changed = false
		for _, entry := range d.order {
			fn := d.fns[entry]
			if fn.alignMask == 0 {
				continue
			}
			for _, bi := range fn.blocks {
				for _, ev := range fn.events[bi] {
					if ev.kind != evCall {
						continue
					}
					callee := d.fns[ev.target]
					var add uint64
					if !ev.spdeltaOK {
						add = full
					} else {
						sh := mod(ev.spdelta)
						for a := uint(0); a < uint(L); a++ {
							if fn.alignMask&(1<<a) != 0 {
								add |= 1 << ((a + sh) % uint(L))
							}
						}
					}
					if callee.alignMask|add != callee.alignMask {
						callee.alignMask |= add
						changed = true
					}
				}
			}
		}
	}
}

// sameLineAll reports whether two slot accesses land in the same line for
// every entry-$sp residue in mask, each access fully inside that line.
func sameLineAll(mask uint64, lineBytes int, aEff, aW, bEff, bW int64) bool {
	if mask == 0 {
		return false
	}
	L := int64(lineBytes)
	lineOf := func(x int64) int64 {
		q := x / L
		if x%L != 0 && x < 0 {
			q--
		}
		return q
	}
	for a := int64(0); a < L && a < maxAlignBits; a++ {
		if mask&(1<<uint(a)) == 0 {
			continue
		}
		la := lineOf(a + aEff)
		if lineOf(a+aEff+aW-1) != la || lineOf(a+bEff) != la || lineOf(a+bEff+bW-1) != la {
			return false
		}
	}
	return true
}

// ------------------------------------------------- last-writer dataflow

// Writer lattice values (>= 0 is the store's instruction index).
const (
	wUninit  = -1 // no store to the slot yet on this path
	wMulti   = -2 // different stores on different paths
	wUnknown = -3 // killed by a may-alias store or call
)

func joinWriter(a, b int) int {
	switch {
	case a == b:
		return a
	case a == wUnknown || b == wUnknown:
		return wUnknown
	default:
		return wMulti
	}
}

type slotKey struct {
	eff   int64
	width int64
}

// claimable reports whether a slot is eligible for pair/group claims: a
// proper local slot strictly below the function's incoming $sp.
func (k slotKey) claimable() bool { return k.eff < 0 && k.eff+k.width <= 0 }

type writerState struct {
	seeded bool
	w      []int // indexed like fnDep.slots
}

// fnDep is the per-function last-writer problem.
type fnDep struct {
	fn      *fnInfo
	slots   []slotKey
	slotIdx map[slotKey]int
	states  map[int]*writerState
	// killCause records, per slot, the most recent reason the dataflow
	// demoted it to wUnknown — the reason chain for missed-forwarding
	// diagnostics (informational, not path-precise).
	killCause map[int]string
}

func overlap(aLo, aHi, bLo, bHi int64) bool { return aLo < bHi && bLo < aHi }

func (d *depAnalyzer) newFnDep(fn *fnInfo) *fnDep {
	fd := &fnDep{fn: fn, slotIdx: make(map[slotKey]int), killCause: make(map[int]string)}
	for _, bi := range fn.blocks {
		for _, ev := range fn.events[bi] {
			if ev.kind != evMem || !ev.slotOK {
				continue
			}
			k := slotKey{ev.eff, ev.width}
			if !k.claimable() {
				continue
			}
			if _, ok := fd.slotIdx[k]; !ok {
				fd.slotIdx[k] = len(fd.slots)
				fd.slots = append(fd.slots, k)
			}
		}
	}
	fd.states = make(map[int]*writerState, len(fn.blocks))
	for _, bi := range fn.blocks {
		fd.states[bi] = &writerState{}
	}
	es := fd.states[fn.entry]
	es.seeded = true
	es.w = make([]int, len(fd.slots))
	for i := range es.w {
		es.w[i] = wUninit
	}
	return fd
}

// apply mutates w with one event's effect, recording kill causes in
// fd.killCause for the missed-forwarding reason chains.
func (d *depAnalyzer) apply(fd *fnDep, ev depEvent, w []int) {
	kill := func(i int, why string) {
		w[i] = wUnknown
		fd.killCause[i] = why
	}
	killAll := func(why string) {
		for i := range w {
			kill(i, why)
		}
	}
	pc := d.a.pcOf(ev.idx)
	switch ev.kind {
	case evMem:
		if ev.isLoad || ev.nonstack {
			return
		}
		if !ev.slotOK {
			killAll(fmt.Sprintf("may-alias store at %08x (unbounded stack address)", pc))
			return
		}
		for i, k := range fd.slots {
			if !overlap(ev.eff, ev.eff+ev.width, k.eff, k.eff+k.width) {
				continue
			}
			if k.eff == ev.eff && k.width == ev.width {
				w[i] = ev.idx
			} else {
				kill(i, fmt.Sprintf("partially overlapping store at %08x", pc))
			}
		}
	case evCall:
		callee := d.fns[ev.target]
		if callee.sumUnknown || !ev.spdeltaOK {
			killAll(fmt.Sprintf("call at %08x to %s (unbounded frame effects)", pc, callee.name))
			return
		}
		if callee.sumLo >= callee.sumHi {
			return
		}
		kLo, kHi := satAdd(ev.spdelta, callee.sumLo), satAdd(ev.spdelta, callee.sumHi)
		for i, k := range fd.slots {
			if overlap(kLo, kHi, k.eff, k.eff+k.width) {
				kill(i, fmt.Sprintf("call at %08x to %s (may write slots [%d,%d))", pc, callee.name, kLo, kHi))
			}
		}
	default: // evCallUnknown
		killAll(fmt.Sprintf("indirect call at %08x", pc))
	}
}

func mergeWriters(dst *writerState, src []int) bool {
	if !dst.seeded {
		dst.seeded = true
		dst.w = append([]int(nil), src...)
		return true
	}
	changed := false
	for i := range src {
		if nv := joinWriter(dst.w[i], src[i]); nv != dst.w[i] {
			dst.w[i] = nv
			changed = true
		}
	}
	return changed
}

// solveWriters runs the last-writer dataflow for one function.
func (d *depAnalyzer) solveWriters(fd *fnDep) {
	fn := fd.fn
	for changed := true; changed; {
		changed = false
		for _, bi := range fn.blocks {
			bs := fd.states[bi]
			if !bs.seeded {
				continue
			}
			out := append([]int(nil), bs.w...)
			for _, ev := range fn.events[bi] {
				d.apply(fd, ev, out)
			}
			b := &d.g.blocks[bi]
			for _, si := range b.succs {
				if mergeWriters(fd.states[si], out) {
					changed = true
				}
			}
			if b.indirect {
				for _, si := range fn.blocks {
					if si != bi && mergeWriters(fd.states[si], out) {
						changed = true
					}
				}
			}
		}
	}
}

// --------------------------------------------------------------- claims

// pairClaim and groupClaim track per-instruction claims across functions:
// an instruction reachable from several entries keeps a claim only when
// every analyzing function proves the identical one.
type pairClaim struct {
	store int
	ok    bool
}

func (d *depAnalyzer) claim(res *DepResult) {
	pairAt := make(map[int]*pairClaim) // load idx → claim
	groupSig := make(map[int]string)   // member idx → group signature
	groupBad := make(map[int]bool)     // member idx → conflicting claims
	groups := make(map[string]CombineGroup)
	memSeen := make(map[int]int) // mem idx → number of functions reaching it
	inGroup := make(map[int]int) // mem idx → times claimed in a group

	for _, entry := range d.order {
		fn := d.fns[entry]
		fd := d.newFnDep(fn)
		d.solveWriters(fd)

		for _, bi := range fn.blocks {
			bs := fd.states[bi]
			if bs == nil || !bs.seeded {
				continue
			}
			w := append([]int(nil), bs.w...)

			// Pairs + diagnostics walk.
			for _, ev := range fn.events[bi] {
				if ev.kind == evMem {
					memSeen[ev.idx]++
					d.diagnoseMem(res, fn, fd, ev, w)
					if ev.isLoad && ev.slotOK {
						k := slotKey{ev.eff, ev.width}
						if si, ok := fd.slotIdx[k]; ok && w[si] >= 0 {
							st := w[si]
							if pc, seen := pairAt[ev.idx]; seen {
								if pc.store != st {
									pc.ok = false
								}
							} else {
								pairAt[ev.idx] = &pairClaim{store: st, ok: true}
							}
						} else if pc, seen := pairAt[ev.idx]; seen {
							pc.ok = false // another function proves nothing
						}
					}
				}
				d.apply(fd, ev, w)
			}

			// Combining-group runs.
			d.claimRuns(res, fn, bi, groups, groupSig, groupBad, inGroup)
		}
	}

	// Drop pair claims not proven identically by every reaching function:
	// pairAt starts ok and is invalidated on conflict; a load reached by
	// a function that proved nothing was invalidated above, but a load
	// whose later functions never reached it at all keeps its claim (the
	// dataflow ran under every entry that can execute it).
	for idx, pc := range pairAt {
		if !pc.ok {
			continue
		}
		storeEff, storeW, fnName := d.slotOfStore(pc.store)
		res.Pairs = append(res.Pairs, FwdPair{
			StorePC: d.a.pcOf(pc.store),
			LoadPC:  d.a.pcOf(idx),
			Slot:    storeEff,
			Bytes:   storeW,
			Fn:      fnName,
		})
	}

	// Keep groups whose members were claimed identically on every visit.
	var sigs []string
	for sig := range groups {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		g := groups[sig]
		ok := true
		for _, pc := range g.PCs {
			idx := textIndex(d.prog, pc)
			if groupBad[idx] || inGroup[idx] != memSeen[idx] {
				ok = false
				break
			}
		}
		if ok {
			res.Groups = append(res.Groups, g)
		}
	}
}

// slotOfStore recovers the slot facts of a claimed store instruction.
func (d *depAnalyzer) slotOfStore(idx int) (eff, width int64, fnName string) {
	for _, entry := range d.order {
		fn := d.fns[entry]
		for _, bi := range fn.blocks {
			for _, ev := range fn.events[bi] {
				if ev.idx == idx && ev.kind == evMem && ev.slotOK {
					return ev.eff, ev.width, fn.name
				}
			}
		}
	}
	return 0, 0, "?"
}

// claimRuns finds maximal same-line runs of consecutive memory accesses in
// one block and records them as combining groups (length >= 2).
func (d *depAnalyzer) claimRuns(res *DepResult, fn *fnInfo, bi int,
	groups map[string]CombineGroup, groupSig map[int]string, groupBad map[int]bool, inGroup map[int]int) {

	var run []depEvent
	flush := func() {
		if len(run) >= 2 {
			sigParts := make([]string, len(run))
			pcs := make([]uint32, len(run))
			for i, ev := range run {
				sigParts[i] = fmt.Sprintf("%d", ev.idx)
				pcs[i] = d.a.pcOf(ev.idx)
			}
			sig := strings.Join(sigParts, ",")
			if _, ok := groups[sig]; !ok {
				groups[sig] = CombineGroup{PCs: pcs, IsLoad: run[0].isLoad, Fn: fn.name}
			}
			for _, ev := range run {
				inGroup[ev.idx]++
				if prev, seen := groupSig[ev.idx]; seen && prev != sig {
					groupBad[ev.idx] = true
				}
				groupSig[ev.idx] = sig
			}
		}
		run = run[:0]
	}

	eligible := func(ev depEvent) bool {
		return ev.slotOK && slotKey{ev.eff, ev.width}.claimable()
	}
	extends := func(ev depEvent) bool {
		if len(run) == 0 {
			return false
		}
		if ev.isLoad != run[0].isLoad {
			return false
		}
		first := run[0]
		return sameLineAll(fn.alignMask, d.lineBytes, first.eff, first.width, ev.eff, ev.width)
	}

	for _, ev := range fn.events[bi] {
		if ev.kind != evMem {
			if ev.kind == evCall || ev.kind == evCallUnknown {
				flush() // calls end the block anyway; belt and braces
			}
			continue
		}
		if !eligible(ev) {
			// A non-slot access occupies a queue position between the
			// members, breaking dispatch adjacency: end the run, and
			// report the near-miss.
			d.diagnoseRunBreak(res, fn, run, ev)
			flush()
			continue
		}
		if extends(ev) {
			run = append(run, ev)
			continue
		}
		if len(run) >= 1 && ev.isLoad == run[0].isLoad && len(run) == 1 {
			d.diagnoseNeverCombines(res, fn, run[0], ev)
		}
		flush()
		run = append(run, ev)
	}
	flush()
}

// ---------------------------------------------------------- diagnostics

func (d *depAnalyzer) addDiag(res *DepResult, dg Diag) {
	key := fmt.Sprintf("%d|%d|%x|%s", dg.Kind, dg.Sev, dg.PC, dg.Msg)
	if d.a.seen[key] {
		return
	}
	d.a.seen[key] = true
	res.Diags = append(res.Diags, dg)
}

// diagnoseMem emits ambiguous-slot and missed-forwarding findings for one
// memory access, given the last-writer state just before it.
func (d *depAnalyzer) diagnoseMem(res *DepResult, fn *fnInfo, fd *fnDep, ev depEvent, w []int) {
	pc := d.a.pcOf(ev.idx)
	in := d.prog.Text[ev.idx]
	if ev.stackUnknown {
		d.addDiag(res, Diag{DiagAmbiguousSlot, SevInfo, pc, fn.name, in.String(),
			"stack-derived base with a path-dependent frame offset blocks forwarding-pair and combining-group proofs"})
		return
	}
	if !ev.isLoad || !ev.slotOK {
		return
	}
	k := slotKey{ev.eff, ev.width}
	si, ok := fd.slotIdx[k]
	if !ok {
		return
	}
	switch w[si] {
	case wMulti:
		d.addDiag(res, Diag{DiagMissedForwarding, SevInfo, pc, fn.name, in.String(),
			fmt.Sprintf("slot %+d: different stores reach this load on different paths; no static forwarding pair", k.eff)})
	case wUnknown:
		why := "killed on an earlier path"
		if cause, ok := fd.killCause[si]; ok {
			why = cause
		}
		if d.hasSameSlotStore(fn, k) {
			d.addDiag(res, Diag{DiagMissedForwarding, SevInfo, pc, fn.name, in.String(),
				fmt.Sprintf("slot %+d has a matching store but the last writer is unprovable: %s", k.eff, why)})
		}
	}
}

// hasSameSlotStore reports whether fn contains a store to exactly slot k.
func (d *depAnalyzer) hasSameSlotStore(fn *fnInfo, k slotKey) bool {
	for _, bi := range fn.blocks {
		for _, ev := range fn.events[bi] {
			if ev.kind == evMem && !ev.isLoad && ev.slotOK && ev.eff == k.eff && ev.width == k.width {
				return true
			}
		}
	}
	return false
}

// diagnoseNeverCombines fires when two consecutive same-kind local
// accesses fail only the same-line proof.
func (d *depAnalyzer) diagnoseNeverCombines(res *DepResult, fn *fnInfo, prev, ev depEvent) {
	pc := d.a.pcOf(ev.idx)
	in := d.prog.Text[ev.idx]
	full := fn.alignMask == uint64(1)<<uint(d.lineBytes)-1 ||
		(d.lineBytes == maxAlignBits && fn.alignMask == ^uint64(0))
	why := fmt.Sprintf("slots %+d and %+d may fall in different %d-byte LVC lines for some reachable frame alignments",
		prev.eff, ev.eff, d.lineBytes)
	if fn.alignMask == 0 {
		why = "the enclosing function is never seen called, so its frame alignment is unknown"
	} else if full {
		why = "the entry-$sp alignment of the enclosing function is unconstrained (address-taken or called with an unknown frame offset)"
	}
	d.addDiag(res, Diag{DiagNeverCombines, SevInfo, pc, fn.name, in.String(),
		fmt.Sprintf("adjacent to the %s access at %08x but never combines: %s",
			kindName(prev.isLoad), d.a.pcOf(prev.idx), why)})
}

// diagnoseRunBreak notes a run interrupted by a non-slot access.
func (d *depAnalyzer) diagnoseRunBreak(res *DepResult, fn *fnInfo, run []depEvent, ev depEvent) {
	if len(run) == 0 || ev.nonstack {
		return // non-local traffic between locals is expected, not a miss
	}
	pc := d.a.pcOf(ev.idx)
	in := d.prog.Text[ev.idx]
	d.addDiag(res, Diag{DiagNeverCombines, SevInfo, pc, fn.name, in.String(),
		fmt.Sprintf("unclassifiable access splits a potential combining run starting at %08x", d.a.pcOf(run[0].idx))})
}

func kindName(isLoad bool) string {
	if isLoad {
		return "load"
	}
	return "store"
}
