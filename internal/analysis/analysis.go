// Package analysis is a static access-region analyzer for assembled
// programs: the compiler-side half of the paper's decoupling mechanism
// (§2.2.3). It builds a control-flow graph over the text segment, runs a
// forward dataflow (abstract interpretation) pass per discovered function
// that tracks which registers hold stack-derived pointers — seeded from
// $sp/$fp, propagated through addi/add/move/la, killed by loads and
// non-stack arithmetic — and classifies every memory instruction as Local
// (provably a stack access), NonLocal (provably outside the stack region)
// or Ambiguous, each with a human-readable reason chain.
//
// On top of the classification sit two consumers:
//
//   - a lint layer (the Diags field, surfaced by cmd/ddlint and
//     `ddasm -lint`) with typed findings: compiler hints contradicted by
//     the analysis, unbalanced $sp adjustments across paths, stack
//     addresses escaping into non-stack memory, and statically
//     out-of-frame accesses;
//   - the config.SteerStatic steering mode of internal/core, which feeds
//     HintTable into dispatch instead of trusting the per-instruction
//     hint bits.
//
// Soundness: a Local claim is made only for addresses provably below the
// enclosing function's incoming $sp (assuming frames fit in the 16 MB
// stack area), so a dynamically non-local access is never classified
// Local; a NonLocal claim is made only for address ranges that provably
// miss the stack region. Everything else — in particular any pointer that
// went through memory — stays Ambiguous.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Class is the static classification of one memory instruction.
type Class uint8

const (
	ClassAmbiguous Class = iota
	ClassLocal
	ClassNonLocal
)

func (c Class) String() string {
	switch c {
	case ClassLocal:
		return "local"
	case ClassNonLocal:
		return "nonlocal"
	default:
		return "ambiguous"
	}
}

// Hint converts the classification into the ISA's hint encoding (Ambiguous
// maps to HintNone).
func (c Class) Hint() isa.Hint {
	switch c {
	case ClassLocal:
		return isa.HintLocal
	case ClassNonLocal:
		return isa.HintNonLocal
	default:
		return isa.HintNone
	}
}

// ClassInfo is the classification of one instruction with its derivation.
type ClassInfo struct {
	Class  Class
	Reason string
	// Spec marks an Ambiguous access the dataflow still recommends
	// speculating local on: the base is stack-derived (so the address is
	// almost always inside the stack region at run time) but the frame
	// offset is path-dependent or not provably below the entry $sp. The
	// hint-assignment pass (Assign) turns this into ConfSpecLocal;
	// misroute recovery absorbs the rare miss.
	Spec bool
}

// Analysis is the result of analyzing one program.
type Analysis struct {
	Prog *asm.Program
	// Classes is indexed like Prog.Text; entries for non-memory
	// instructions are zero. Memory instructions never reached from any
	// discovered entry stay Ambiguous with an "unreachable" reason.
	Classes []ClassInfo
	// Diags are the lint findings, sorted by PC then kind.
	Diags []Diag
	// Funcs counts the analyzed function entries.
	Funcs int
}

// Summary aggregates the classification of all memory instructions.
type Summary struct {
	Mem, Local, NonLocal, Ambiguous, Unreached int
}

// AmbiguousFrac is the fraction of memory instructions left unclassified.
func (s Summary) AmbiguousFrac() float64 {
	if s.Mem == 0 {
		return 0
	}
	return float64(s.Ambiguous) / float64(s.Mem)
}

func (s Summary) String() string {
	return fmt.Sprintf("%d memory instructions: %d local, %d nonlocal, %d ambiguous (%.1f%%, %d unreachable)",
		s.Mem, s.Local, s.NonLocal, s.Ambiguous, 100*s.AmbiguousFrac(), s.Unreached)
}

// widenLimit is how many times a register may change at one join point
// before its value is widened.
const widenLimit = 3

// Analyze runs the static access-region analysis on prog.
func Analyze(prog *asm.Program) *Analysis {
	a := &analyzer{
		prog:    prog,
		g:       buildCFG(prog),
		classes: make([]ClassInfo, len(prog.Text)),
		reached: make([]bool, len(prog.Text)),
		seen:    make(map[string]bool),
	}
	for _, entry := range a.g.entries {
		a.analyzeFunc(entry)
	}
	res := &Analysis{
		Prog:    prog,
		Classes: a.classes,
		Diags:   a.diags,
		Funcs:   len(a.g.entries),
	}
	for i, in := range prog.Text {
		if in.IsMem() && !a.reached[i] {
			res.Classes[i] = ClassInfo{Class: ClassAmbiguous, Reason: "unreachable from any discovered entry"}
		}
	}
	sort.SliceStable(res.Diags, func(i, j int) bool {
		if res.Diags[i].PC != res.Diags[j].PC {
			return res.Diags[i].PC < res.Diags[j].PC
		}
		return res.Diags[i].Kind < res.Diags[j].Kind
	})
	return res
}

// At returns the classification of the instruction at pc.
func (r *Analysis) At(pc uint32) (ClassInfo, bool) {
	idx := textIndex(r.Prog, pc)
	if idx < 0 {
		return ClassInfo{}, false
	}
	return r.Classes[idx], true
}

// HintTable returns the per-PC classification table consumed by the
// SteerStatic mode of the timing core: only proven Local/NonLocal entries
// appear; everything else is steered by the hardware fallback.
func (r *Analysis) HintTable() map[uint32]isa.Hint {
	t := make(map[uint32]isa.Hint)
	for i, in := range r.Prog.Text {
		if !in.IsMem() {
			continue
		}
		if h := r.Classes[i].Class.Hint(); h != isa.HintNone {
			t[r.Prog.TextBase+uint32(i)*isa.InstBytes] = h
		}
	}
	return t
}

// Summarize tallies the classification over all memory instructions.
func (r *Analysis) Summarize() Summary {
	var s Summary
	for i, in := range r.Prog.Text {
		if !in.IsMem() {
			continue
		}
		s.Mem++
		switch r.Classes[i].Class {
		case ClassLocal:
			s.Local++
		case ClassNonLocal:
			s.NonLocal++
		default:
			s.Ambiguous++
			if strings.HasPrefix(r.Classes[i].Reason, "unreachable") {
				s.Unreached++
			}
		}
	}
	return s
}

// Errors returns only the error-severity findings.
func (r *Analysis) Errors() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Sev == SevError {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any error-severity finding exists.
func (r *Analysis) HasErrors() bool { return len(r.Errors()) > 0 }

// Report renders the per-instruction classification of every memory
// instruction, for debugging and the ddlint -dump flag.
func (r *Analysis) Report() string {
	var b strings.Builder
	for i, in := range r.Prog.Text {
		if !in.IsMem() {
			continue
		}
		ci := r.Classes[i]
		fmt.Fprintf(&b, "%08x: %-9s %-28s %s\n",
			r.Prog.TextBase+uint32(i)*isa.InstBytes, ci.Class, in, ci.Reason)
	}
	return b.String()
}

// ---------------------------------------------------------------- engine

type blockState struct {
	seeded bool
	reg    regState
	wid    [32]uint8
}

type analyzer struct {
	prog    *asm.Program
	g       *cfg
	classes []ClassInfo
	reached []bool
	diags   []Diag
	seen    map[string]bool // diag dedup across functions

	// gpWritten is computed lazily: whether any instruction in the
	// program writes $gp (if not, $gp is the data base everywhere).
	gpChecked, gpWritten bool
}

func (a *analyzer) pcOf(idx int) uint32 {
	return a.prog.TextBase + uint32(idx)*isa.InstBytes
}

// fnName resolves the label at addr, if any.
func (a *analyzer) fnName(addr uint32) string {
	var names []string
	for name, sym := range a.prog.Symbols {
		if sym == addr {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Sprintf("fn@%08x", addr)
	}
	sort.Strings(names)
	return names[0]
}

// gpPreserved reports whether $gp is never written anywhere in the
// program, making its load-time value (the data base) a global invariant.
func (a *analyzer) gpPreserved() bool {
	if !a.gpChecked {
		a.gpChecked = true
		for _, in := range a.prog.Text {
			if dest, ok := in.Dest(); ok && dest&31 == isa.RegGP && !dest.IsFP() {
				a.gpWritten = true
				break
			}
		}
	}
	return !a.gpWritten
}

// entryState is the abstract register file at a function entry: $sp is the
// (symbolic) incoming stack pointer, $fp some stack-derived pointer with
// unknown offset, $zero the constant zero, and $gp the data base when the
// program provably never changes it. For the program entry point the
// loader's exact register file is used instead.
func (a *analyzer) entryState(entryIdx int) regState {
	var st regState
	pc := a.pcOf(entryIdx)
	st.set(isa.RegSP, stackVal(0, 0))
	if a.gpPreserved() {
		st.set(isa.RegGP, constVal(int32(a.prog.DataBase), 0))
	}
	st[0] = constVal(0, 0)
	if pc == a.prog.Entry {
		// emu.New zeroes every register and points $fp at the stack base,
		// which is exactly the entry $sp.
		for i := 1; i < 32; i++ {
			st[i] = constVal(0, 0)
		}
		st.set(isa.RegSP, stackVal(0, 0))
		st.set(isa.RegFP, stackVal(0, 0))
		if a.gpPreserved() {
			st.set(isa.RegGP, constVal(int32(a.prog.DataBase), 0))
		}
	} else {
		st.set(isa.RegFP, stackAnyVal())
	}
	return st
}

// solve runs the forward dataflow over one function's blocks to a
// fixpoint and returns the converged abstract register state at every
// seeded block entry. Shared by the classification pass (analyzeFunc) and
// the interprocedural dependence pass (Dependences).
func (a *analyzer) solve(entry int, blocks []int) map[int]*blockState {
	states := make(map[int]*blockState, len(blocks))
	states[entry] = &blockState{seeded: true, reg: a.entryState(a.g.blocks[entry].start)}
	for _, bi := range blocks {
		if _, ok := states[bi]; !ok {
			states[bi] = &blockState{}
		}
	}

	// Round-robin to a fixpoint; widening bounds the number of changes
	// per (block, register), so this terminates.
	for changed := true; changed; {
		changed = false
		for _, bi := range blocks {
			bs := states[bi]
			if !bs.seeded {
				continue
			}
			out := bs.reg
			b := &a.g.blocks[bi]
			for i := b.start; i < b.end; i++ {
				step(&out, a.pcOf(i), a.prog.Text[i])
			}
			for _, si := range b.succs {
				if merge(states[si], out) {
					changed = true
				}
			}
			if b.indirect {
				for _, si := range blocks {
					if si != bi && merge(states[si], out) {
						changed = true
					}
				}
			}
		}
	}
	return states
}

func (a *analyzer) analyzeFunc(entry int) {
	blocks := a.g.funcBlocks(entry)
	states := a.solve(entry, blocks)

	// Final pass over the converged states: classify and lint.
	fn := a.fnName(a.pcOf(a.g.blocks[entry].start))
	for _, bi := range blocks {
		bs := states[bi]
		if !bs.seeded {
			continue
		}
		st := bs.reg
		b := &a.g.blocks[bi]
		for i := b.start; i < b.end; i++ {
			in := a.prog.Text[i]
			pc := a.pcOf(i)
			if in.IsMem() {
				a.reached[i] = true
				base := st.get(in.BaseReg())
				cls, reason, spec := classify(base, in.Imm, int64(in.MemBytes()))
				a.record(i, cls, reason, spec)
				a.lintMem(fn, pc, in, cls, base, &st)
			}
			if in.IsReturn() {
				a.lintReturn(fn, pc, in, &st)
			}
			step(&st, pc, in)
		}
	}
}

func merge(dst *blockState, src regState) bool {
	if !dst.seeded {
		dst.seeded = true
		dst.reg = src
		return true
	}
	changed := false
	for i := range src {
		nv := join(dst.reg[i], src[i])
		if nv.sameAbstract(dst.reg[i]) {
			continue
		}
		dst.wid[i]++
		if dst.wid[i] > widenLimit {
			nv = widen(nv)
		}
		if !nv.sameAbstract(dst.reg[i]) {
			dst.reg[i] = nv
			changed = true
		}
	}
	return changed
}

// classify decides the access region of one memory instruction from the
// abstract value of its base register. The third result is the
// speculation recommendation for Ambiguous accesses: true when the base
// is stack-derived, so steering the access to the local stream is right
// whenever the (unprovable) offset stays inside the stack region.
func classify(base absVal, imm int32, width int64) (Class, string, bool) {
	switch base.k {
	case kStack:
		if !base.deltaOK {
			return ClassAmbiguous, "base is stack-derived but its frame offset is path-dependent", true
		}
		eff := int64(base.delta) + int64(imm)
		if eff < 0 {
			return ClassLocal, fmt.Sprintf("base %s, displacement %+d → frame slot %d below the entry $sp", base, imm, eff), false
		}
		return ClassAmbiguous, fmt.Sprintf("base %s, displacement %+d lands at/above the entry $sp", base, imm), true
	case kRange:
		lo, hi := base.lo+int64(imm), base.hi+int64(imm)
		if lo < -1<<31 || hi+width-1 > 1<<31-1 {
			return ClassAmbiguous, fmt.Sprintf("base %s: address arithmetic may wrap", base), false
		}
		hi += width - 1
		sLo, sHi := int64(isa.StackLimit), int64(isa.StackBase)-1
		switch {
		case hi < sLo || lo > sHi:
			return ClassNonLocal, fmt.Sprintf("base %s, address range misses the stack region", base), false
		case lo >= sLo && hi <= sHi:
			return ClassLocal, fmt.Sprintf("base %s, address range inside the stack region", base), false
		default:
			return ClassAmbiguous, fmt.Sprintf("base %s, address range straddles the stack boundary", base), false
		}
	default:
		what := "base value is unknown"
		if base.def != 0 {
			what = fmt.Sprintf("base value is unknown (defined at %08x)", base.def)
		}
		return ClassAmbiguous, what, false
	}
}

// leansLocal reports whether a recorded classification is compatible with
// steering the access to the local stream: provably local, or ambiguous
// with a speculate-local recommendation.
func leansLocal(ci ClassInfo) bool {
	return ci.Class == ClassLocal || (ci.Class == ClassAmbiguous && ci.Spec)
}

// record joins a classification into the per-instruction table; the same
// instruction analyzed under several functions (shared code) must agree,
// otherwise it degrades to Ambiguous. The speculation recommendation
// survives a conflict only when every view of the instruction leans local.
func (a *analyzer) record(idx int, cls Class, reason string, spec bool) {
	if !a.reached[idx] {
		a.classes[idx] = ClassInfo{Class: cls, Reason: reason, Spec: spec}
		return
	}
	// reached[idx] is set just before record is called on the first
	// visit too, so use the stored reason to detect a real prior visit.
	prev := a.classes[idx]
	if prev.Reason == "" {
		a.classes[idx] = ClassInfo{Class: cls, Reason: reason, Spec: spec}
		return
	}
	next := ClassInfo{Class: cls, Reason: reason, Spec: spec}
	switch {
	case prev.Class != cls:
		a.classes[idx] = ClassInfo{
			Class:  ClassAmbiguous,
			Reason: "conflicting classifications across functions",
			Spec:   leansLocal(prev) && leansLocal(next),
		}
	case cls == ClassAmbiguous && prev.Spec != spec:
		// Same class, disagreeing recommendations: only speculate when
		// every analyzed context recommends it.
		prev.Spec = false
		a.classes[idx] = prev
	}
}

func (a *analyzer) addDiag(d Diag) {
	key := fmt.Sprintf("%d|%d|%x|%s", d.Kind, d.Sev, d.PC, d.Msg)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.diags = append(a.diags, d)
}

// lintMem checks one memory instruction: hint soundness, out-of-frame
// offsets, and stack-address escapes.
func (a *analyzer) lintMem(fn string, pc uint32, in isa.Inst, cls Class, base absVal, st *regState) {
	switch {
	case in.Hint == isa.HintLocal && cls == ClassNonLocal:
		a.addDiag(Diag{DiagUnsoundLocalHint, SevError, pc, fn, in.String(),
			"hinted !local but the access is provably outside the stack region; hint steering misroutes it every time"})
	case in.Hint == isa.HintNonLocal && cls == ClassLocal:
		a.addDiag(Diag{DiagUnsoundNonLocalHint, SevError, pc, fn, in.String(),
			"hinted !nonlocal but the access is provably a stack access; hint steering misroutes it every time"})
	}

	if base.k == kStack && base.deltaOK {
		eff := int64(base.delta) + int64(in.Imm)
		if eff >= 0 {
			a.addDiag(Diag{DiagOutOfFrame, SevWarning, pc, fn, in.String(),
				fmt.Sprintf("frame offset %+d is at/above the function's incoming $sp", eff)})
		} else if sp := st.get(isa.RegSP); sp.k == kStack && sp.deltaOK && eff < int64(sp.delta) {
			a.addDiag(Diag{DiagOutOfFrame, SevWarning, pc, fn, in.String(),
				fmt.Sprintf("frame offset %+d is below the current $sp (%+d)", eff, sp.delta)})
		}
	}

	// A GPR store whose value is a stack-derived pointer going anywhere
	// that is not provably the stack lets stack addresses leak into data
	// structures, defeating static classification of later loads.
	if (in.Op == isa.SB || in.Op == isa.SH || in.Op == isa.SW) && cls != ClassLocal {
		if v := st.get(in.Rt); v.k == kStack {
			a.addDiag(Diag{DiagStackEscape, SevWarning, pc, fn, in.String(),
				fmt.Sprintf("stores a stack-derived address (%s) to a %s target", v, cls)})
		}
	}
}

// lintReturn checks the frame balance at a JR $ra.
func (a *analyzer) lintReturn(fn string, pc uint32, in isa.Inst, st *regState) {
	sp := st.get(isa.RegSP)
	switch {
	case sp.k == kStack && sp.deltaOK && sp.delta == 0:
		// balanced
	case sp.k == kStack && sp.deltaOK:
		a.addDiag(Diag{DiagUnbalancedSP, SevError, pc, fn, in.String(),
			fmt.Sprintf("returns with $sp offset %+d relative to the function entry", sp.delta)})
	case sp.k == kStack:
		a.addDiag(Diag{DiagUnbalancedSP, SevError, pc, fn, in.String(),
			"returns with a path-dependent $sp adjustment (paths disagree on the frame size)"})
	default:
		a.addDiag(Diag{DiagUnbalancedSP, SevWarning, pc, fn, in.String(),
			"$sp is not stack-derived at this return"})
	}
}
