package analysis

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func mustAnalyze(t *testing.T, src string) *Analysis {
	t.Helper()
	prog, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Analyze(prog)
}

// classAt returns the classification of the idx-th memory instruction.
func classAt(t *testing.T, r *Analysis, memIdx int) ClassInfo {
	t.Helper()
	seen := 0
	for i, in := range r.Prog.Text {
		if !in.IsMem() {
			continue
		}
		if seen == memIdx {
			return r.Classes[i]
		}
		seen++
	}
	t.Fatalf("program has only %d memory instructions, wanted index %d", seen, memIdx)
	return ClassInfo{}
}

func TestPrologueStoresAreLocal(t *testing.T) {
	r := mustAnalyze(t, `
		.text
	main:
		addi $sp, $sp, -16
		sw   $ra, 12($sp)
		sw   $s0, 8($sp)
		lw   $s0, 8($sp)
		lw   $ra, 12($sp)
		addi $sp, $sp, 16
		halt
	`)
	for i := 0; i < 4; i++ {
		if ci := classAt(t, r, i); ci.Class != ClassLocal {
			t.Errorf("mem[%d] = %v (%s), want local", i, ci.Class, ci.Reason)
		}
	}
	if r.HasErrors() {
		t.Errorf("unexpected error diags: %v", r.Diags)
	}
}

func TestGlobalAccessIsNonLocal(t *testing.T) {
	r := mustAnalyze(t, `
		.data
	buf:	.space 64
		.text
	main:
		la   $t0, buf
		lw   $t1, 0($t0)
		sw   $t1, 60($t0)
		halt
	`)
	for i := 0; i < 2; i++ {
		if ci := classAt(t, r, i); ci.Class != ClassNonLocal {
			t.Errorf("mem[%d] = %v (%s), want nonlocal", i, ci.Class, ci.Reason)
		}
	}
}

func TestFramePointerCopyStaysLocal(t *testing.T) {
	// move $fp, $sp then access through $fp: still a provable stack slot.
	r := mustAnalyze(t, `
		.text
	main:
		addi $sp, $sp, -32
		move $fp, $sp
		sw   $zero, 4($fp)
		lw   $t0, 4($fp)
		addi $sp, $sp, 32
		halt
	`)
	for i := 0; i < 2; i++ {
		if ci := classAt(t, r, i); ci.Class != ClassLocal {
			t.Errorf("mem[%d] = %v (%s), want local", i, ci.Class, ci.Reason)
		}
	}
}

func TestLoadedPointerIsAmbiguous(t *testing.T) {
	// A pointer that went through memory can alias anything.
	r := mustAnalyze(t, `
		.data
	ptr:	.word 0
		.text
	main:
		la   $t0, ptr
		lw   $t1, 0($t0)
		lw   $t2, 0($t1)
		halt
	`)
	if ci := classAt(t, r, 1); ci.Class != ClassAmbiguous {
		t.Errorf("loaded-pointer access = %v (%s), want ambiguous", ci.Class, ci.Reason)
	}
}

func TestLoopWalkedGlobalPointerStaysNonLocal(t *testing.T) {
	// The classic widening test: a pointer stepping through a global
	// array in a loop must stay provably non-local after widening.
	r := mustAnalyze(t, `
		.data
	arr:	.space 400
		.text
	main:
		la   $t0, arr
		li   $t1, 100
	loop:
		lw   $t2, 0($t0)
		addi $t0, $t0, 4
		addi $t1, $t1, -1
		bne  $t1, $zero, loop
		halt
	`)
	if ci := classAt(t, r, 0); ci.Class != ClassNonLocal {
		t.Errorf("loop-walked global load = %v (%s), want nonlocal", ci.Class, ci.Reason)
	}
}

func TestCallClobbersTemporariesButNotSaved(t *testing.T) {
	r := mustAnalyze(t, `
		.text
	main:
		addi $sp, $sp, -16
		addi $s0, $sp, 4
		addi $t0, $sp, 8
		jal  f
		sw   $zero, 0($s0)
		sw   $zero, 0($t0)
		addi $sp, $sp, 16
		halt
	f:
		jr   $ra
	`)
	// Store through callee-saved $s0 survives the call...
	if ci := classAt(t, r, 0); ci.Class != ClassLocal {
		t.Errorf("store via $s0 after call = %v (%s), want local", ci.Class, ci.Reason)
	}
	// ...but the caller-saved $t0 is clobbered by the callee.
	if ci := classAt(t, r, 1); ci.Class != ClassAmbiguous {
		t.Errorf("store via $t0 after call = %v (%s), want ambiguous", ci.Class, ci.Reason)
	}
}

func TestUnsoundLocalHintIsFlagged(t *testing.T) {
	r := mustAnalyze(t, `
		.data
	g:	.word 7
		.text
	main:
		la   $t0, g
		lw   $t1, 0($t0) !local
		halt
	`)
	if !r.HasErrors() {
		t.Fatal("wrong !local hint on a global access produced no error diag")
	}
	d := r.Errors()[0]
	if d.Kind != DiagUnsoundLocalHint {
		t.Errorf("diag kind = %v, want %v", d.Kind, DiagUnsoundLocalHint)
	}
}

func TestUnsoundNonLocalHintIsFlagged(t *testing.T) {
	r := mustAnalyze(t, `
		.text
	main:
		addi $sp, $sp, -8
		sw   $zero, 0($sp) !nonlocal
		addi $sp, $sp, 8
		halt
	`)
	var found bool
	for _, d := range r.Diags {
		if d.Kind == DiagUnsoundNonLocalHint && d.Sev == SevError {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong !nonlocal hint on a stack access not flagged; diags: %v", r.Diags)
	}
}

func TestUnbalancedSPAcrossPaths(t *testing.T) {
	r := mustAnalyze(t, `
		.text
	main:
		jal  f
		halt
	f:
		addi $sp, $sp, -16
		beq  $a0, $zero, out
		addi $sp, $sp, 16
	out:
		jr   $ra
	`)
	var found bool
	for _, d := range r.Diags {
		if d.Kind == DiagUnbalancedSP {
			found = true
		}
	}
	if !found {
		t.Fatalf("unbalanced $sp across paths not flagged; diags: %v", r.Diags)
	}
}

func TestStackEscapeIsFlagged(t *testing.T) {
	r := mustAnalyze(t, `
		.data
	cell:	.word 0
		.text
	main:
		addi $sp, $sp, -8
		addi $t0, $sp, 0
		la   $t1, cell
		sw   $t0, 0($t1)
		addi $sp, $sp, 8
		halt
	`)
	var found bool
	for _, d := range r.Diags {
		if d.Kind == DiagStackEscape {
			found = true
		}
	}
	if !found {
		t.Fatalf("stack address stored to a global not flagged; diags: %v", r.Diags)
	}
}

func TestOutOfFrameIsFlagged(t *testing.T) {
	r := mustAnalyze(t, `
		.text
	main:
		jal  f
		halt
	f:
		addi $sp, $sp, -16
		sw   $zero, 20($sp)
		addi $sp, $sp, 16
		jr   $ra
	`)
	var found bool
	for _, d := range r.Diags {
		if d.Kind == DiagOutOfFrame {
			found = true
		}
	}
	if !found {
		t.Fatalf("access above the incoming $sp not flagged; diags: %v", r.Diags)
	}
}

func TestHintTableCoversOnlyProvenAccesses(t *testing.T) {
	prog := asm.MustAssemble("test", `
		.data
	g:	.word 0
		.text
	main:
		addi $sp, $sp, -8
		sw   $zero, 0($sp)
		la   $t0, g
		lw   $t1, 0($t0)
		lw   $t2, 0($t1)
		addi $sp, $sp, 8
		halt
	`)
	r := Analyze(prog)
	ht := r.HintTable()
	var local, nonlocal int
	for _, h := range ht {
		switch h {
		case isa.HintLocal:
			local++
		case isa.HintNonLocal:
			nonlocal++
		default:
			t.Errorf("HintTable contains HintNone entry")
		}
	}
	if local != 1 || nonlocal != 1 {
		t.Errorf("HintTable = %d local + %d nonlocal entries, want 1+1 (table: %v)", local, nonlocal, ht)
	}
}

func TestSummaryAndReport(t *testing.T) {
	r := mustAnalyze(t, `
		.text
	main:
		addi $sp, $sp, -8
		sw   $zero, 0($sp)
		addi $sp, $sp, 8
		halt
	`)
	s := r.Summarize()
	if s.Mem != 1 || s.Local != 1 {
		t.Errorf("summary = %+v, want 1 mem / 1 local", s)
	}
	if !strings.Contains(s.String(), "1 local") {
		t.Errorf("summary string %q", s.String())
	}
	if rep := r.Report(); !strings.Contains(rep, "local") {
		t.Errorf("report missing classification: %q", rep)
	}
}

func TestAnalyzeEmptyProgram(t *testing.T) {
	r := Analyze(&asm.Program{Name: "empty", TextBase: isa.TextBase, DataBase: isa.DataBase})
	if len(r.Classes) != 0 || r.HasErrors() {
		t.Errorf("empty program: %+v", r)
	}
}
