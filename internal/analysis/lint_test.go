package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/workload"
)

// TestWorkloadHintsAreClean lints every generated workload at several
// scales: the generator's !local/!nonlocal hints must never contradict the
// analysis, frames must balance, and no stack address may escape.
func TestWorkloadHintsAreClean(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, scale := range []float64{0.02, 0.1} {
				res := Analyze(w.Program(scale))
				for _, d := range res.Diags {
					t.Errorf("scale %v: %s", scale, d)
				}
			}
		})
	}
}

// TestExampleSourcesLint lints every .s file under examples/: all are
// clean except badhint.s, the linter's negative example, which must keep
// producing an unsound-local-hint error.
func TestExampleSourcesLint(t *testing.T) {
	files, err := filepath.Glob("../../examples/asm/*.s")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example sources found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := asm.Assemble(filepath.Base(path), string(src))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			res := Analyze(prog)
			if filepath.Base(path) == "badhint.s" {
				if !r1HasKind(res, DiagUnsoundLocalHint) {
					t.Fatalf("badhint.s must trip the unsound-local-hint lint; diags: %v", res.Diags)
				}
				return
			}
			for _, d := range res.Diags {
				t.Errorf("%s", d)
			}
		})
	}
}

func r1HasKind(r *Analysis, k DiagKind) bool {
	for _, d := range r.Diags {
		if d.Kind == k && d.Sev == SevError {
			return true
		}
	}
	return false
}
