package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/workload"
)

// exampleProgs assembles every checked-in example program.
func exampleProgs(t testing.TB) []*asm.Program {
	paths, err := filepath.Glob("../../examples/asm/*.s")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	var progs []*asm.Program
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := asm.Assemble(filepath.Base(p), string(src))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		progs = append(progs, prog)
	}
	return progs
}

// TestAssignSoundness is the assignment soundness gate: for every
// workload (with its generator hints stripped) and every example program,
// the hints produced by Assign must (a) never be contradicted by the
// emulated oracle — a contradicted proven class is an analyzer bug — and
// (b) produce zero architectural divergence when applied, since hints
// steer timing and must never change semantics.
func TestAssignSoundness(t *testing.T) {
	var progs []*asm.Program
	for _, w := range workload.All() {
		progs = append(progs, w.ProgramStripped(soundnessScale))
	}
	progs = append(progs, exampleProgs(t)...)

	for _, prog := range progs {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			res := Assign(prog)
			diags, st := res.Verify(soundnessMaxInsts)
			for _, d := range diags {
				if d.Kind == DiagAssignUnsound {
					t.Errorf("UNSOUND assignment: %v", d)
				}
			}
			if st.Unsound > 0 {
				t.Errorf("%d unsound assignments (stats disagree with diags: %d)", st.Unsound, len(diags))
			}

			// Architectural identity: the re-hinted program must execute
			// bit-identically to the unhinted one.
			base, hinted := emu.New(prog.StripHints()), emu.New(res.Apply())
			bHalt, bErr := base.Run(soundnessMaxInsts)
			hHalt, hErr := hinted.Run(soundnessMaxInsts)
			if bHalt != hHalt || (bErr == nil) != (hErr == nil) {
				t.Fatalf("divergent termination: unhinted (halt=%v err=%v) vs assigned (halt=%v err=%v)",
					bHalt, bErr, hHalt, hErr)
			}
			if !reflect.DeepEqual(base.Output, hinted.Output) || !reflect.DeepEqual(base.FOutput, hinted.FOutput) {
				t.Fatalf("architectural divergence between unhinted and assigned-hint runs")
			}
			if base.InstCount != hinted.InstCount {
				t.Fatalf("instruction count divergence: %d vs %d", base.InstCount, hinted.InstCount)
			}
			sum := res.Table.Summarize()
			t.Logf("%s: %s; oracle %d steps, %d executed, %d misspec, %d missed-local",
				prog.Name, sum, st.Steps, st.Executed, st.Misspec, st.MissedLocal)
		})
	}
}

// TestAssignProvenMatchesAnalyze: the assignment's proven hint bits must
// be exactly the analyzer's HintTable — Assign adds speculation on top,
// it never weakens or invents proofs.
func TestAssignProvenMatchesAnalyze(t *testing.T) {
	for _, w := range workload.All() {
		prog := w.ProgramStripped(soundnessScale)
		res := Assign(prog)
		want := Analyze(prog).HintTable()
		got := map[uint32]any{}
		for _, e := range res.Table.Entries {
			if h := e.Conf.Hint(); h != 0 {
				got[e.PC] = h
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d proven hints assigned, analyzer proves %d", w.Name, len(got), len(want))
		}
		for pc, h := range want {
			if got[pc] != h {
				t.Errorf("%s: pc %#x assigned %v, analyzer proves %v", w.Name, pc, got[pc], h)
			}
		}
	}
}

// TestHintTableRoundTrip: the serialized artifact must decode back to an
// identical table for every workload and example.
func TestHintTableRoundTrip(t *testing.T) {
	progs := exampleProgs(t)
	for _, w := range workload.All() {
		progs = append(progs, w.ProgramStripped(soundnessScale))
	}
	for _, prog := range progs {
		res := Assign(prog)
		var buf bytes.Buffer
		if err := res.Table.EncodeJSON(&buf); err != nil {
			t.Fatalf("%s: encode: %v", prog.Name, err)
		}
		back, err := DecodeHintTable(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", prog.Name, err)
		}
		norm := func(tt *HintTable) HintTable {
			c := *tt
			if c.Entries == nil {
				c.Entries = []Assigned{}
			}
			if c.Pairs == nil {
				c.Pairs = []FwdPair{}
			}
			if c.Groups == nil {
				c.Groups = []CombineGroup{}
			}
			return c
		}
		if g, w := norm(back), norm(res.Table); !reflect.DeepEqual(g, w) {
			t.Errorf("%s: round trip changed the table\ngot:  %+v\nwant: %+v", prog.Name, g, w)
		}
	}
}

// TestHintTableSchemaGate: decoding rejects foreign schemas.
func TestHintTableSchemaGate(t *testing.T) {
	if _, err := DecodeHintTable(bytes.NewBufferString(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("decoded a table with a foreign schema tag")
	}
}

// FuzzAssign feeds arbitrary source through the assembler and, when it
// assembles, checks that hint assignment is deterministic, that the
// artifact round-trips, that applying the hints never changes
// architectural results, and that the oracle never contradicts a proven
// assignment.
func FuzzAssign(f *testing.F) {
	seeds := []string{
		"",
		"\t.text\nmain:\n\thalt\n",
		"\t.text\nmain:\n\tlw $t0, 4($sp) !local\n\thalt\n",
		"\t.text\nmain:\n\tjal f\n\thalt\nf:\n\taddi $sp, $sp, -8\n\tsw $ra, 4($sp)\n\tlw $ra, 4($sp)\n\taddi $sp, $sp, 8\n\tjr $ra\n",
		"\t.text\nmain:\n\tla $t0, arr\n\tli $t1, 10\nloop:\n\tlw $t2, 0($t0)\n\taddi $t0, $t0, 4\n\taddi $t1, $t1, -1\n\tbne $t1, $zero, loop\n\thalt\n\t.data\narr:\t.space 40\n",
		"\t.data\ntab:\t.word f\n\t.text\nmain:\n\tla $t0, tab\n\tlw $t3, 0($t0)\n\tjalr $ra, $t3\n\thalt\nf:\n\tjr $ra\n",
		"\t.text\nmain:\n\taddi $t0, $sp, 0\n\tla $t1, g\n\tsw $t0, 0($t1)\n\thalt\n\t.data\ng:\t.word 0\n",
		// Path-dependent slot pointers: the speculate-local shapes.
		"\t.text\nmain:\n\taddi $sp, $sp, -16\n\tbeq $a0, $zero, a\n\taddi $t1, $sp, 0\n\tj b\na:\n\taddi $t1, $sp, 8\nb:\n\tsw $t2, 0($t1)\n\tlw $t3, 0($t1)\n\taddi $sp, $sp, 16\n\thalt\n",
		"\t.text\nmain:\n\tbeq $a0, $zero, a\n\taddi $t1, $sp, 16\n\tj b\na:\n\taddi $t1, $sp, -16\nb:\n\tsw $t2, 0($t1)\n\thalt\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	const fuzzSteps = 50_000
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := asm.Assemble("fuzz.s", src)
		if err != nil {
			return
		}
		r1, r2 := Assign(prog), Assign(prog)
		if !reflect.DeepEqual(r1.Table, r2.Table) {
			t.Fatal("hint assignment is not deterministic")
		}
		var buf bytes.Buffer
		if err := r1.Table.EncodeJSON(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if _, err := DecodeHintTable(&buf); err != nil {
			t.Fatalf("round trip: %v", err)
		}
		diags, st := r1.Verify(fuzzSteps)
		if st.Unsound > 0 {
			t.Fatalf("oracle contradicted a proven assignment: %v", diags)
		}
		base, hinted := emu.New(prog.StripHints()), emu.New(r1.Apply())
		base.Run(fuzzSteps)
		hinted.Run(fuzzSteps)
		if !reflect.DeepEqual(base.Output, hinted.Output) || base.InstCount != hinted.InstCount {
			t.Fatal("architectural divergence between unhinted and assigned-hint runs")
		}
	})
}
