package analysis

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// The abstract domain tracks, for every integer register, what is known
// about the value it holds:
//
//   - kRange: a pure number (or non-stack pointer) within known signed
//     32-bit bounds. A constant is a degenerate range (lo == hi).
//   - kStack: a stack-derived pointer, entry-$sp + delta for the current
//     function's incoming $sp. The delta is exact when deltaOK is set;
//     otherwise the value is known stack-derived but its offset differs
//     across paths (e.g. an incoming $fp, or a join of unequal $sp
//     adjustments).
//   - kUnknown: anything (in particular, every value produced by a load,
//     since a stack address may have been stored to memory earlier).
//
// Soundness stance: a Local classification is only made from kStack values
// with a known, negative frame offset (the address is strictly below the
// function's incoming $sp, hence inside the stack region as long as frames
// fit in the 16 MB stack area). A NonLocal classification is only made from
// kRange values whose entire address range misses the stack region; ranges
// are widened into the "safe zone" below StackLimit (with an immGuard
// margin for the ±32 K displacement field) so that pointers walked through
// loops keep a sound non-stack proof.
type kind uint8

const (
	kUnknown kind = iota
	kRange
	kStack
)

// immGuard is the margin kept between the widened non-stack zone and the
// stack region, covering any 16-bit signed displacement plus the widest
// access.
const immGuard = 1 << 16

// zoneMax is the top of the "safely non-stack" widening zone: any signed
// value v <= zoneMax satisfies uint32(v+imm) outside the stack region for
// every |imm| < immGuard (negative values map to addresses >= 2^31, which
// are above StackBase).
const zoneMax = int64(isa.StackLimit) - immGuard

type absVal struct {
	k       kind
	lo, hi  int64 // kRange bounds (signed 32-bit values)
	delta   int32 // kStack offset from the function's entry $sp
	deltaOK bool
	def     uint32 // pc of the defining instruction (0 = entry/merged)
}

func unknownVal() absVal { return absVal{} }

func constVal(c int32, def uint32) absVal {
	return absVal{k: kRange, lo: int64(c), hi: int64(c), def: def}
}

// rangeVal builds a kRange value, falling back to unknown when the bounds
// do not fit a signed 32-bit value (the emulator wraps, so a wrapped range
// is meaningless).
func rangeVal(lo, hi int64, def uint32) absVal {
	if lo > hi || lo < math.MinInt32 || hi > math.MaxInt32 {
		return absVal{}
	}
	return absVal{k: kRange, lo: lo, hi: hi, def: def}
}

func stackVal(delta int32, def uint32) absVal {
	return absVal{k: kStack, delta: delta, deltaOK: true, def: def}
}

// strideMax bounds the per-step increment under which the widened
// non-stack zone is absorbing: a pointer deep inside the zone that
// advances by at most ±4 KB per instruction is assumed not to march
// across the 64 KB guard into the stack region. NonLocal classifications
// are sound modulo this bounded-walk assumption; Local classifications
// never rely on it.
const strideMax = 1 << 12

// isZone reports whether v is exactly the widened non-stack zone.
func isZone(v absVal) bool {
	return v.k == kRange && v.lo == math.MinInt32 && v.hi == zoneMax
}

// smallStride reports whether v is a range within ±strideMax.
func smallStride(v absVal) bool {
	return v.k == kRange && v.lo >= -strideMax && v.hi <= strideMax
}

func stackAnyVal() absVal { return absVal{k: kStack} }

func (v absVal) isConst() bool { return v.k == kRange && v.lo == v.hi }

// sameAbstract reports whether two values are equal ignoring provenance.
func (v absVal) sameAbstract(o absVal) bool {
	v.def, o.def = 0, 0
	return v == o
}

// join is the lattice merge at control-flow joins.
func join(a, b absVal) absVal {
	if a.sameAbstract(b) {
		if a.def != b.def {
			a.def = 0
		}
		return a
	}
	switch {
	case a.k == kStack && b.k == kStack:
		return stackAnyVal() // stack-derived on both paths, offsets differ
	case a.k == kRange && b.k == kRange:
		return rangeVal(min(a.lo, b.lo), max(a.hi, b.hi), 0)
	default:
		return absVal{}
	}
}

// widen accelerates convergence for values that keep changing at a join
// point (loop-carried ranges): ranges inside the safe non-stack zone jump
// to the whole zone, everything else gives up its bounds.
func widen(v absVal) absVal {
	if v.k == kRange && v.hi <= zoneMax {
		return absVal{k: kRange, lo: math.MinInt32, hi: zoneMax}
	}
	if v.k == kStack {
		return stackAnyVal()
	}
	return absVal{}
}

func (v absVal) String() string {
	switch v.k {
	case kRange:
		if v.isConst() {
			if v.lo >= 0 && v.lo >= 1<<16 {
				return fmt.Sprintf("const %#x", uint32(int32(v.lo)))
			}
			return fmt.Sprintf("const %d", v.lo)
		}
		if v.lo == math.MinInt32 && v.hi == zoneMax {
			return "non-stack value"
		}
		if v.lo >= 1<<16 {
			return fmt.Sprintf("in [%#x, %#x]", uint64(v.lo), uint64(v.hi))
		}
		return fmt.Sprintf("in [%d, %d]", v.lo, v.hi)
	case kStack:
		if v.deltaOK {
			return fmt.Sprintf("entry-$sp%+d", v.delta)
		}
		return "stack-derived (path-dependent offset)"
	default:
		return "unknown"
	}
}

// regState is the abstract value of every integer register. Index i holds
// GPR i; writes mirror emu.setGPR exactly (including the &31 masking of
// out-of-range register numbers).
type regState [32]absVal

func (st *regState) get(r isa.Reg) absVal { return st[r&31] }

func (st *regState) set(r isa.Reg, v absVal) {
	if r != isa.RegZero { // mirrors emu.setGPR, masking included
		st[r&31] = v
	}
}

// calleeSaved reports whether GPR index i survives a procedure call under
// the MIPS o32-flavoured convention the workloads follow: $s0-$s7, $gp,
// $sp, $fp (and the hardwired zero).
func calleeSaved(i int) bool {
	return i == 0 || (i >= 16 && i <= 23) || i == 28 || i == 29 || i == 30
}

// clobberCall applies the ABI transfer for a procedure call: caller-saved
// registers become unknown, callee-saved registers (including $sp/$fp, the
// frame-balance assumption the linter checks separately) are preserved.
// $ra is left alone: the caller set it to the return address, and a
// returning callee must have preserved that value.
func clobberCall(st *regState) {
	for i := range st {
		if !calleeSaved(i) && i != int(isa.RegRA) {
			st[i] = absVal{}
		}
	}
}

// addVal models two's-complement addition. The widened non-stack zone is
// absorbing under small strides so that loop-carried pointer walks
// converge (see strideMax).
func addVal(a, b absVal, def uint32) absVal {
	switch {
	case isZone(a) && smallStride(b):
		return absVal{k: kRange, lo: a.lo, hi: a.hi, def: def}
	case isZone(b) && smallStride(a):
		return absVal{k: kRange, lo: b.lo, hi: b.hi, def: def}
	case a.k == kRange && b.k == kRange:
		return rangeVal(a.lo+b.lo, a.hi+b.hi, def)
	case a.k == kStack && b.isConst():
		return stackAdd(a, b.lo, def)
	case b.k == kStack && a.isConst():
		return stackAdd(b, a.lo, def)
	}
	return absVal{}
}

func subVal(a, b absVal, def uint32) absVal {
	switch {
	case isZone(a) && smallStride(b):
		return absVal{k: kRange, lo: a.lo, hi: a.hi, def: def}
	case a.k == kRange && b.k == kRange:
		return rangeVal(a.lo-b.hi, a.hi-b.lo, def)
	case a.k == kStack && b.isConst():
		return stackAdd(a, -b.lo, def)
	case a.k == kStack && b.k == kStack && a.deltaOK && b.deltaOK:
		return constVal(a.delta-b.delta, def) // frame-pointer difference
	}
	return absVal{}
}

func stackAdd(a absVal, c int64, def uint32) absVal {
	if !a.deltaOK {
		return absVal{k: kStack, def: def}
	}
	d := int64(a.delta) + c
	if d < math.MinInt32 || d > math.MaxInt32 {
		return absVal{} // wrapped pointer arithmetic: give up
	}
	return stackVal(int32(d), def)
}

// step applies one instruction's effect on the abstract register state,
// mirroring the destination-write behaviour of the emulator. Control flow
// and memory classification are handled by the caller.
func step(st *regState, pc uint32, in isa.Inst) {
	switch in.Op {
	case isa.ADDI:
		st.set(in.Rd, addVal(st.get(in.Rs), constVal(in.Imm, 0), pc))
	case isa.ADD:
		st.set(in.Rd, addVal(st.get(in.Rs), st.get(in.Rt), pc))
	case isa.SUB:
		st.set(in.Rd, subVal(st.get(in.Rs), st.get(in.Rt), pc))
	case isa.LUI:
		st.set(in.Rd, constVal(in.Imm<<16, pc))

	case isa.ANDI:
		rs := st.get(in.Rs)
		switch {
		case rs.isConst():
			st.set(in.Rd, constVal(int32(rs.lo)&in.Imm, pc))
		case in.Imm >= 0:
			st.set(in.Rd, rangeVal(0, int64(in.Imm), pc))
		default:
			st.set(in.Rd, unknownVal())
		}
	case isa.AND:
		rs, rt := st.get(in.Rs), st.get(in.Rt)
		switch {
		case rs.isConst() && rt.isConst():
			st.set(in.Rd, constVal(int32(rs.lo)&int32(rt.lo), pc))
		case rs.isConst() && rs.lo >= 0:
			st.set(in.Rd, rangeVal(0, rs.lo, pc))
		case rt.isConst() && rt.lo >= 0:
			st.set(in.Rd, rangeVal(0, rt.lo, pc))
		default:
			st.set(in.Rd, unknownVal())
		}
	case isa.ORI:
		st.set(in.Rd, foldConst2(st.get(in.Rs), constVal(in.Imm, 0), pc,
			func(a, b int32) int32 { return a | b }))
	case isa.XORI:
		st.set(in.Rd, foldConst2(st.get(in.Rs), constVal(in.Imm, 0), pc,
			func(a, b int32) int32 { return a ^ b }))
	case isa.OR:
		st.set(in.Rd, foldConst2(st.get(in.Rs), st.get(in.Rt), pc,
			func(a, b int32) int32 { return a | b }))
	case isa.XOR:
		st.set(in.Rd, foldConst2(st.get(in.Rs), st.get(in.Rt), pc,
			func(a, b int32) int32 { return a ^ b }))
	case isa.NOR:
		st.set(in.Rd, foldConst2(st.get(in.Rs), st.get(in.Rt), pc,
			func(a, b int32) int32 { return ^(a | b) }))

	case isa.SLLI, isa.SRLI, isa.SRAI:
		st.set(in.Rd, shiftVal(in.Op, st.get(in.Rs), uint32(in.Imm)&31, pc))
	case isa.SLL, isa.SRL, isa.SRA:
		if rt := st.get(in.Rt); rt.isConst() {
			var imm isa.Op
			switch in.Op {
			case isa.SLL:
				imm = isa.SLLI
			case isa.SRL:
				imm = isa.SRLI
			default:
				imm = isa.SRAI
			}
			st.set(in.Rd, shiftVal(imm, st.get(in.Rs), uint32(rt.lo)&31, pc))
		} else {
			st.set(in.Rd, unknownVal())
		}

	case isa.SLT, isa.SLTU, isa.SLTI, isa.FCLT, isa.FCLE, isa.FCEQ:
		st.set(in.Rd, rangeVal(0, 1, pc))

	case isa.MUL:
		st.set(in.Rd, foldConst2(st.get(in.Rs), st.get(in.Rt), pc,
			func(a, b int32) int32 { return a * b }))
	case isa.DIV:
		st.set(in.Rd, foldConst2(st.get(in.Rs), st.get(in.Rt), pc, func(a, b int32) int32 {
			if b == 0 || (a == math.MinInt32 && b == -1) {
				return 0
			}
			return a / b
		}))
	case isa.DIVU:
		st.set(in.Rd, foldConst2(st.get(in.Rs), st.get(in.Rt), pc, func(a, b int32) int32 {
			if b == 0 {
				return 0
			}
			return int32(uint32(a) / uint32(b))
		}))
	case isa.REM:
		st.set(in.Rd, remVal(st.get(in.Rs), st.get(in.Rt), pc))

	case isa.CVTFI:
		st.set(in.Rd, unknownVal()) // FP registers are not tracked

	case isa.LB:
		st.set(in.Rd, rangeVal(-128, 127, pc))
	case isa.LBU:
		st.set(in.Rd, rangeVal(0, 255, pc))
	case isa.LH:
		st.set(in.Rd, rangeVal(-32768, 32767, pc))
	case isa.LHU:
		st.set(in.Rd, rangeVal(0, 65535, pc))
	case isa.LW:
		st.set(in.Rd, unknownVal()) // a stored stack address may come back

	case isa.JAL:
		st.set(isa.RegRA, constVal(int32(pc+isa.InstBytes), pc))
		clobberCall(st)
	case isa.JALR:
		st.set(in.Rd, constVal(int32(pc+isa.InstBytes), pc))
		clobberCall(st)

		// FP arithmetic, FLW/FLD, stores, branches, J, JR, HALT, OUT,
		// FOUT, NOP: no integer register is written.
	}
}

// foldConst2 folds a binary op when both operands are exact constants.
func foldConst2(a, b absVal, def uint32, f func(a, b int32) int32) absVal {
	if a.isConst() && b.isConst() {
		return constVal(f(int32(a.lo), int32(b.lo)), def)
	}
	return absVal{}
}

// remVal models REM: with a constant positive divisor the result magnitude
// is bounded even when the dividend is unknown (the sign follows the
// dividend, and a zero divisor yields zero like the emulator).
func remVal(a, b absVal, def uint32) absVal {
	if a.isConst() && b.isConst() {
		return foldConst2(a, b, def, func(x, d int32) int32 {
			if d == 0 || (x == math.MinInt32 && d == -1) {
				return 0
			}
			return x % d
		})
	}
	if b.isConst() && b.lo > 0 {
		m := b.lo - 1
		if a.k == kRange && a.lo >= 0 {
			return rangeVal(0, min(a.hi, m), def)
		}
		return rangeVal(-m, m, def)
	}
	return absVal{}
}

func shiftVal(op isa.Op, rs absVal, sh uint32, def uint32) absVal {
	if rs.k != kRange {
		return absVal{}
	}
	switch op {
	case isa.SLLI:
		return rangeVal(rs.lo<<sh, rs.hi<<sh, def)
	case isa.SRAI:
		return rangeVal(rs.lo>>sh, rs.hi>>sh, def)
	case isa.SRLI:
		if sh == 0 {
			return rangeVal(rs.lo, rs.hi, def)
		}
		if rs.lo >= 0 {
			return rangeVal(rs.lo>>sh, rs.hi>>sh, def)
		}
		// Negative inputs convert to large unsigned values first.
		return rangeVal(0, int64(^uint32(0)>>sh), def)
	}
	return absVal{}
}
