package analysis

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/workload"
)

// storeInst is one dynamic store instance for the shadow memory.
type storeInst struct {
	pc    uint32
	addr  uint32
	bytes int
}

// groupRun tracks one combining group's in-flight dynamic run.
type groupRun struct {
	next int    // member index expected next (0 = run not open)
	line uint32 // line of the run's first member
}

// TestDependenceSoundness replays every workload through the emulator and
// checks the statically-claimed forwarding pairs and combining groups
// against dynamic ground truth:
//
//   - for each executed instance of a claimed load, a per-byte shadow
//     memory must show its bytes were last written by one instance of the
//     claimed store, at the same address and width (that is exactly the
//     condition under which the hardware bypass returns the right value);
//
//   - group members sit in one basic block, so each execution of the
//     first member must be followed by the remaining members in order,
//     all touching the first member's LVC line.
//
// Any contradiction is a hard failure: config.ForwardStatic and
// config.CombineStatic trust these claims without dynamic re-checks.
func TestDependenceSoundness(t *testing.T) {
	totalPairs, totalGroups := 0, 0
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Program(soundnessScale)
			dep := Dependences(prog, 32)
			totalPairs += len(dep.Pairs)
			totalGroups += len(dep.Groups)

			fwd := dep.ForwardTable() // load PC -> store PC
			type memberRef struct {
				group  int
				member int
			}
			members := make(map[uint32]memberRef)
			for gi, g := range dep.Groups {
				for mi, pc := range g.PCs {
					members[pc] = memberRef{gi, mi}
				}
			}
			runs := make([]groupRun, len(dep.Groups))

			shadow := make(map[uint32]int) // byte addr -> index into insts
			insts := []storeInst{}

			var pairChecks, groupChecks uint64
			m := emu.New(prog)
			var steps uint64
			for !m.Halted && steps < soundnessMaxInsts {
				ef, err := m.Step()
				if err != nil {
					t.Fatalf("emulate: %v", err)
				}
				steps++
				in := ef.Inst
				if !in.IsMem() {
					continue
				}
				nb := in.MemBytes()

				if in.IsLoad() {
					if storePC, claimed := fwd[ef.PC]; claimed {
						pairChecks++
						si := -1
						sound := true
						for b := 0; b < nb; b++ {
							id, written := shadow[ef.Addr+uint32(b)]
							if !written || (si >= 0 && id != si) {
								sound = false
								break
							}
							si = id
						}
						if sound {
							w := insts[si]
							sound = w.pc == storePC && w.addr == ef.Addr && w.bytes == nb
						}
						if !sound {
							t.Errorf("UNSOUND pair at load %08x (claimed store %08x): bytes [%08x,+%d) not last written by one matching store instance",
								ef.PC, storePC, ef.Addr, nb)
							delete(fwd, ef.PC) // report each unsound pair once
						}
					}
				} else {
					id := len(insts)
					insts = append(insts, storeInst{pc: ef.PC, addr: ef.Addr, bytes: nb})
					for b := 0; b < nb; b++ {
						shadow[ef.Addr+uint32(b)] = id
					}
				}

				if ref, ok := members[ef.PC]; ok {
					r := &runs[ref.group]
					line := ef.Addr / 32
					if ref.member == 0 {
						r.next, r.line = 1, line
					} else {
						groupChecks++
						if ref.member != r.next || line != r.line {
							t.Errorf("UNSOUND group %d at member %08x (#%d): expected member #%d on line %#x, got line %#x",
								ref.group, ef.PC, ref.member, r.next, r.line, line)
							delete(members, ef.PC)
						} else {
							r.next++
						}
					}
				}
			}
			t.Logf("%s: %d pairs (%d dynamic checks), %d groups (%d dynamic checks), %v insts",
				w.Name, len(dep.Pairs), pairChecks, len(dep.Groups), groupChecks, steps)
		})
	}
	// The harness is only meaningful if the analyzer actually claims
	// something on real programs.
	if totalPairs == 0 {
		t.Error("no forwarding pairs claimed on any workload: harness is vacuous")
	}
	if totalGroups == 0 {
		t.Error("no combining groups claimed on any workload: harness is vacuous")
	}
}
