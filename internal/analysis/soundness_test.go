package analysis

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/workload"
)

// soundnessScale keeps the emulated instruction counts small while still
// exercising every workload's access patterns.
const soundnessScale = 0.02

const soundnessMaxInsts = 2_000_000

// TestSoundnessAgainstEmulator runs every workload program through the
// emulator, records the actual region of each executed memory access, and
// checks the analyzer's Local/NonLocal claims against that ground truth.
// A dynamically-non-local access classified Local is a hard soundness
// failure; a dynamically-local access classified NonLocal violates the
// bounded-walk assumption and is also reported.
func TestSoundnessAgainstEmulator(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Program(soundnessScale)
			res := Analyze(prog)

			// dynLocal / dynNonLocal: per text index, whether any executed
			// access was inside / outside the stack region.
			dynLocal := make([]bool, len(prog.Text))
			dynNonLocal := make([]bool, len(prog.Text))
			m := emu.New(prog)
			var steps uint64
			for !m.Halted && steps < soundnessMaxInsts {
				ef, err := m.Step()
				if err != nil {
					t.Fatalf("emulate: %v", err)
				}
				steps++
				if !ef.Inst.IsMem() {
					continue
				}
				idx := int((ef.PC - prog.TextBase) / isa.InstBytes)
				if isa.InStackRegion(ef.Addr) {
					dynLocal[idx] = true
				} else {
					dynNonLocal[idx] = true
				}
			}

			var mem, local, nonlocal, ambiguous, executed int
			for i, in := range prog.Text {
				if !in.IsMem() {
					continue
				}
				mem++
				ci := res.Classes[i]
				switch ci.Class {
				case ClassLocal:
					local++
				case ClassNonLocal:
					nonlocal++
				default:
					ambiguous++
				}
				if !dynLocal[i] && !dynNonLocal[i] {
					continue // never executed at this scale
				}
				executed++
				pc := prog.TextBase + uint32(i)*isa.InstBytes
				if ci.Class == ClassLocal && dynNonLocal[i] {
					t.Errorf("UNSOUND Local at %08x: %v executed outside the stack region (reason: %s)",
						pc, in, ci.Reason)
				}
				if ci.Class == ClassNonLocal && dynLocal[i] {
					t.Errorf("unsound NonLocal at %08x: %v executed inside the stack region (reason: %s)",
						pc, in, ci.Reason)
				}
			}
			t.Logf("%s: %d mem insts (%d executed), %d local / %d nonlocal / %d ambiguous (%.1f%% ambiguous), %v emulated insts",
				w.Name, mem, executed, local, nonlocal, ambiguous,
				100*float64(ambiguous)/float64(max(mem, 1)), steps)
		})
	}
}
