// Package cache models the data memory hierarchy: lockup-free set
// associative write-back caches over a fixed-latency main memory.
//
// The model is a timing model, not a data store — the simulator keeps
// architectural data in package mem; caches only decide *when* an access
// completes. Each access is stamped with the current cycle and returns the
// cycle at which its data is available. Misses to a line that is already
// being filled merge with the outstanding fill (MSHR behaviour), and a
// cache refuses new misses while all its MSHRs are busy, which the core
// handles by retrying the access on a later cycle.
//
// Ports are *not* modelled here: following the paper (§4, "ideal" ports),
// an N-port cache can service any N requests per cycle, and the per-cycle
// port arbitration happens in the pipeline model.
package cache

import (
	"fmt"
	"math/bits"
)

// Level is a component of the memory hierarchy that can service block
// requests. Access returns the cycle at which the requested data is
// available and whether the request was accepted; a rejected request
// (MSHRs exhausted) must be retried on a later cycle.
type Level interface {
	Access(now uint64, addr uint32, write bool) (ready uint64, ok bool)
	LevelName() string
}

// MainMemory is the bottom of the hierarchy: a fixed-latency,
// fully-interleaved memory that accepts every request (paper Table 1:
// "50-cycle access time, fully interleaved").
type MainMemory struct {
	Name    string
	Latency uint64

	Reads  uint64
	Writes uint64
}

// Access implements Level.
func (m *MainMemory) Access(now uint64, _ uint32, write bool) (uint64, bool) {
	if write {
		m.Writes++
		// Writebacks retire through a write buffer and are off the load
		// critical path; they still count as memory traffic.
		return now, true
	}
	m.Reads++
	return now + m.Latency, true
}

// LevelName implements Level.
func (m *MainMemory) LevelName() string { return m.Name }

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Assoc      int // 1 (or 0) = direct-mapped
	HitLatency uint64
	// MSHRs bounds the number of outstanding line fills; 0 means the
	// package default (16).
	MSHRs int
}

// DefaultMSHRs is the number of outstanding misses a cache supports when
// the configuration does not say otherwise.
const DefaultMSHRs = 16

// Stats are the access counters of one cache.
type Stats struct {
	Reads       uint64
	Writes      uint64
	ReadMisses  uint64
	WriteMisses uint64
	// MergedMisses counts accesses that hit an in-flight fill (MSHR merge).
	MergedMisses uint64
	Writebacks   uint64
	// Rejected counts accesses refused because all MSHRs were busy.
	Rejected uint64
}

// Accesses returns the total demand accesses.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses returns the total demand misses.
func (s Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// MissRate returns misses per access (0 if idle).
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses()) / float64(a)
	}
	return 0
}

type line struct {
	tag     uint32
	valid   bool
	dirty   bool
	readyAt uint64 // cycle the fill completes; 0 for resident data
	lruTick uint64
}

// Cache is one level of the hierarchy. Create with New.
type Cache struct {
	cfg   Config
	lower Level

	sets      [][]line
	setShift  uint
	setMask   uint32
	lineShift uint

	tick     uint64 // LRU clock
	inflight []uint64
	mshrs    int

	Stats Stats
}

// New builds a cache over the given lower level. It panics on a malformed
// configuration (sizes not powers of two, size not divisible by
// line*assoc) since configurations are static.
func New(cfg Config, lower Level) *Cache {
	if cfg.Assoc <= 0 {
		cfg.Assoc = 1
	}
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets (size %d, line %d, assoc %d) not a power of two",
			cfg.Name, nSets, cfg.SizeBytes, cfg.LineBytes, cfg.Assoc))
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = DefaultMSHRs
	}
	c := &Cache{
		cfg:       cfg,
		lower:     lower,
		sets:      make([][]line, nSets),
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint32(nSets - 1),
		mshrs:     cfg.MSHRs,
	}
	c.setShift = c.lineShift
	backing := make([]line, nSets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LevelName implements Level.
func (c *Cache) LevelName() string { return c.cfg.Name }

// LineBytes returns the cache's line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint32) uint32 {
	return addr &^ (uint32(c.cfg.LineBytes) - 1)
}

// SameLine reports whether two addresses fall in the same cache line.
func (c *Cache) SameLine(a, b uint32) bool { return c.LineAddr(a) == c.LineAddr(b) }

func (c *Cache) pruneInflight(now uint64) {
	live := c.inflight[:0]
	for _, t := range c.inflight {
		if t > now {
			live = append(live, t)
		}
	}
	c.inflight = live
}

// Access implements Level. The returned ready cycle is when the data is
// usable by the requester (load-to-use). Writes hit-allocate; a write's
// ready cycle is when the line is available for the write to complete.
func (c *Cache) Access(now uint64, addr uint32, write bool) (uint64, bool) {
	set := c.sets[(addr>>c.setShift)&c.setMask]
	tag := addr >> c.lineShift

	c.tick++
	// Hit (including hits on in-flight fills).
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ready := now + c.cfg.HitLatency
			if ln.readyAt > now {
				// The line is still being filled: merge with the fill.
				c.Stats.MergedMisses++
				if ln.readyAt > ready {
					ready = ln.readyAt
				}
			}
			ln.lruTick = c.tick
			if write {
				c.Stats.Writes++
				ln.dirty = true
			} else {
				c.Stats.Reads++
			}
			return ready, true
		}
	}

	// Miss: need an MSHR.
	c.pruneInflight(now)
	if len(c.inflight) >= c.mshrs {
		c.Stats.Rejected++
		return 0, false
	}

	// Choose the LRU victim. A victim whose fill is still outstanding
	// cannot be replaced; fall back to rejecting the access.
	victim := -1
	for i := range set {
		ln := &set[i]
		if !ln.valid {
			victim = i
			break
		}
		if ln.readyAt > now {
			continue
		}
		if victim < 0 || ln.lruTick < set[victim].lruTick {
			victim = i
		}
	}
	if victim < 0 {
		c.Stats.Rejected++
		return 0, false
	}

	if write {
		c.Stats.Writes++
		c.Stats.WriteMisses++
	} else {
		c.Stats.Reads++
		c.Stats.ReadMisses++
	}

	ln := &set[victim]
	if ln.valid && ln.dirty {
		c.Stats.Writebacks++
		victimAddr := ln.tag << c.lineShift
		c.lower.Access(now, victimAddr, true)
	}

	lineAddr := c.LineAddr(addr)
	fillReady, _ := c.lower.Access(now+c.cfg.HitLatency, lineAddr, false)
	*ln = line{tag: tag, valid: true, dirty: write, readyAt: fillReady, lruTick: c.tick}
	c.inflight = append(c.inflight, fillReady)
	return fillReady, true
}

// NextFillDone returns the earliest cycle strictly after now at which an
// outstanding fill completes, or 0 when none is in flight. The
// event-driven engine registers it as a wake when an access is rejected
// with all MSHRs busy: the rejection can only resolve once a fill
// completes and frees one.
func (c *Cache) NextFillDone(now uint64) uint64 {
	var next uint64
	for _, t := range c.inflight {
		if t > now && (next == 0 || t < next) {
			next = t
		}
	}
	return next
}

// Probe reports whether addr is resident (valid tag match) without
// touching LRU state or statistics.
func (c *Cache) Probe(addr uint32) bool {
	set := c.sets[(addr>>c.setShift)&c.setMask]
	tag := addr >> c.lineShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line, counting writebacks for dirty ones.
func (c *Cache) Flush(now uint64) {
	for s := range c.sets {
		for i := range c.sets[s] {
			ln := &c.sets[s][i]
			if ln.valid && ln.dirty {
				c.Stats.Writebacks++
				c.lower.Access(now, ln.tag<<c.lineShift, true)
			}
			*ln = line{}
		}
	}
	c.inflight = c.inflight[:0]
}
