package cache

import (
	"testing"
	"testing/quick"
)

func newMem() *MainMemory { return &MainMemory{Name: "mem", Latency: 50} }

func small(lower Level) *Cache {
	return New(Config{Name: "L1", SizeBytes: 256, LineBytes: 32, Assoc: 2, HitLatency: 2}, lower)
}

func TestColdMissThenHit(t *testing.T) {
	mem := newMem()
	c := small(mem)
	ready, ok := c.Access(0, 0x1000, false)
	if !ok {
		t.Fatal("cold miss rejected")
	}
	if want := uint64(2 + 50); ready != want {
		t.Errorf("miss ready = %d, want %d", ready, want)
	}
	ready, ok = c.Access(100, 0x1004, false)
	if !ok || ready != 102 {
		t.Errorf("hit ready = %d,%v, want 102", ready, ok)
	}
	if c.Stats.Reads != 2 || c.Stats.ReadMisses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestMSHRMerge(t *testing.T) {
	mem := newMem()
	c := small(mem)
	r1, _ := c.Access(0, 0x1000, false)
	r2, ok := c.Access(1, 0x1008, false) // same line, fill in flight
	if !ok {
		t.Fatal("merged access rejected")
	}
	if r2 != r1 {
		t.Errorf("merged ready = %d, want %d", r2, r1)
	}
	if c.Stats.MergedMisses != 1 || c.Stats.ReadMisses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if mem.Reads != 1 {
		t.Errorf("memory reads = %d, want 1 (merge must not refetch)", mem.Reads)
	}
}

func TestMSHRExhaustion(t *testing.T) {
	mem := newMem()
	c := New(Config{Name: "L1", SizeBytes: 1024, LineBytes: 32, Assoc: 1, HitLatency: 2, MSHRs: 2}, mem)
	// Three different sets so the in-flight fills are not replacement
	// victims — only the MSHR limit can reject.
	if _, ok := c.Access(0, 0x0000, false); !ok {
		t.Fatal("miss 1 rejected")
	}
	if _, ok := c.Access(0, 0x0040, false); !ok {
		t.Fatal("miss 2 rejected")
	}
	if _, ok := c.Access(0, 0x0080, false); ok {
		t.Error("third concurrent miss accepted with 2 MSHRs")
	}
	if c.Stats.Rejected != 1 {
		t.Errorf("Rejected = %d", c.Stats.Rejected)
	}
	// After the fills complete the cache accepts misses again.
	if _, ok := c.Access(100, 0x0080, false); !ok {
		t.Error("miss after fills complete still rejected")
	}
}

func TestLRUReplacement(t *testing.T) {
	mem := newMem()
	// 2-way, 64-byte sets: two lines per set, 1 set of each index.
	c := New(Config{Name: "L1", SizeBytes: 64, LineBytes: 32, Assoc: 2, HitLatency: 1}, mem)
	// All three addresses map to set 0 (same index bits).
	a, b, d := uint32(0x0000), uint32(0x0040), uint32(0x0080)
	c.Access(0, a, false)
	c.Access(100, b, false)
	c.Access(200, a, false) // touch a: b becomes LRU
	c.Access(300, d, false) // evicts b
	if !c.Probe(a) {
		t.Error("a evicted though recently used")
	}
	if c.Probe(b) {
		t.Error("b survived though LRU")
	}
	if !c.Probe(d) {
		t.Error("d not installed")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	mem := newMem()
	c := New(Config{Name: "L1", SizeBytes: 32, LineBytes: 32, Assoc: 1, HitLatency: 1}, mem)
	c.Access(0, 0x0000, true)    // dirty line
	c.Access(100, 0x1000, false) // evicts it
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	if mem.Writes != 1 {
		t.Errorf("memory writes = %d, want 1", mem.Writes)
	}
	// Clean eviction must not write back.
	c.Access(200, 0x2000, false)
	if c.Stats.Writebacks != 1 {
		t.Errorf("clean eviction wrote back (wb=%d)", c.Stats.Writebacks)
	}
}

func TestWriteAllocate(t *testing.T) {
	mem := newMem()
	c := small(mem)
	c.Access(0, 0x1000, true)
	if c.Stats.WriteMisses != 1 {
		t.Errorf("write miss not counted: %+v", c.Stats)
	}
	ready, _ := c.Access(100, 0x1000, false)
	if ready != 102 {
		t.Errorf("read after write-allocate = %d, want hit at 102", ready)
	}
}

func TestTwoLevelHierarchy(t *testing.T) {
	mem := newMem()
	l2 := New(Config{Name: "L2", SizeBytes: 4096, LineBytes: 32, Assoc: 4, HitLatency: 12}, mem)
	l1 := New(Config{Name: "L1", SizeBytes: 256, LineBytes: 32, Assoc: 2, HitLatency: 2}, l2)

	// Cold: L1 miss + L2 miss -> 2 + 12 + 50.
	ready, _ := l1.Access(0, 0x1000, false)
	if want := uint64(2 + 12 + 50); ready != want {
		t.Errorf("cold access ready = %d, want %d", ready, want)
	}
	// Evict from L1 (direct conflict), keep in L2: L1 miss + L2 hit.
	// 256B/2-way/32B lines = 4 sets; 0x1000 and 0x1080 and 0x1100 share set 0.
	l1.Access(100, 0x1080, false)
	l1.Access(200, 0x1100, false) // 0x1000 now evicted from L1
	ready, _ = l1.Access(300, 0x1000, false)
	if want := uint64(300 + 2 + 12); ready != want {
		t.Errorf("L2 hit ready = %d, want %d", ready, want)
	}
	if l2.Stats.Reads != 4 {
		t.Errorf("L2 reads = %d, want 4", l2.Stats.Reads)
	}
}

func TestSharedL2SeesBothL1s(t *testing.T) {
	mem := newMem()
	l2 := New(Config{Name: "L2", SizeBytes: 4096, LineBytes: 32, Assoc: 4, HitLatency: 12}, mem)
	l1 := New(Config{Name: "L1", SizeBytes: 256, LineBytes: 32, Assoc: 2, HitLatency: 2}, l2)
	lvc := New(Config{Name: "LVC", SizeBytes: 128, LineBytes: 32, Assoc: 1, HitLatency: 1}, l2)
	l1.Access(0, 0x1000, false)
	lvc.Access(0, 0x7FFF0000, false)
	if l2.Stats.Reads != 2 {
		t.Errorf("shared L2 reads = %d, want 2", l2.Stats.Reads)
	}
}

func TestMissRate(t *testing.T) {
	mem := newMem()
	c := small(mem)
	for i := 0; i < 10; i++ {
		c.Access(uint64(i*100), 0x2000, false)
	}
	if got := c.Stats.MissRate(); got != 0.1 {
		t.Errorf("miss rate = %g, want 0.1", got)
	}
	var idle Stats
	if idle.MissRate() != 0 {
		t.Error("idle miss rate not 0")
	}
}

func TestLineAddrAndSameLine(t *testing.T) {
	c := small(newMem())
	if c.LineAddr(0x1234) != 0x1220 {
		t.Errorf("LineAddr = %#x", c.LineAddr(0x1234))
	}
	if !c.SameLine(0x1220, 0x123F) {
		t.Error("same-line addresses reported different")
	}
	if c.SameLine(0x123F, 0x1240) {
		t.Error("different lines reported same")
	}
}

func TestFlush(t *testing.T) {
	mem := newMem()
	c := small(mem)
	c.Access(0, 0x1000, true)
	c.Access(0, 0x2000, false)
	c.Flush(100)
	if c.Probe(0x1000) || c.Probe(0x2000) {
		t.Error("lines survive flush")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("flush writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	mem := newMem()
	// 2KB direct-mapped, 32B lines: the paper's LVC. Addresses 2KB apart
	// conflict.
	c := New(Config{Name: "LVC", SizeBytes: 2048, LineBytes: 32, Assoc: 1, HitLatency: 1}, mem)
	c.Access(0, 0x10000, false)
	c.Access(100, 0x10000+2048, false)
	c.Access(200, 0x10000, false)
	if c.Stats.ReadMisses != 3 {
		t.Errorf("conflict misses = %d, want 3", c.Stats.ReadMisses)
	}
}

func TestBadConfigPanics(t *testing.T) {
	bad := []Config{
		{Name: "x", SizeBytes: 100, LineBytes: 32, Assoc: 1, HitLatency: 1},
		{Name: "x", SizeBytes: 256, LineBytes: 33, Assoc: 1, HitLatency: 1},
		{Name: "x", SizeBytes: 16, LineBytes: 32, Assoc: 1, HitLatency: 1},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, newMem())
		}()
	}
}

func TestMainMemoryCounts(t *testing.T) {
	m := newMem()
	if r, ok := m.Access(10, 0, false); !ok || r != 60 {
		t.Errorf("read = %d,%v", r, ok)
	}
	if r, ok := m.Access(10, 0, true); !ok || r != 10 {
		t.Errorf("write = %d,%v (writes are buffered)", r, ok)
	}
	if m.Reads != 1 || m.Writes != 1 {
		t.Errorf("counts = %d,%d", m.Reads, m.Writes)
	}
}

// Property: a second access to any address at a later time is always a hit
// (never increases the miss count) as long as no conflicting access
// intervenes.
func TestRevisitIsHitProperty(t *testing.T) {
	mem := newMem()
	c := New(Config{Name: "L1", SizeBytes: 32768, LineBytes: 32, Assoc: 2, HitLatency: 2}, mem)
	now := uint64(0)
	prop := func(addr uint32, write bool) bool {
		now += 1000
		c.Access(now, addr, write)
		missesBefore := c.Stats.Misses()
		now += 1000
		c.Access(now, addr, false)
		return c.Stats.Misses() == missesBefore
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ready time never precedes the request time plus hit latency.
func TestReadyMonotoneProperty(t *testing.T) {
	mem := newMem()
	c := small(mem)
	now := uint64(0)
	prop := func(addr uint32, write bool) bool {
		now += 3
		ready, ok := c.Access(now, addr, write)
		return !ok || ready >= now+c.Config().HitLatency
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: total misses never exceed total accesses.
func TestMissesBoundedProperty(t *testing.T) {
	mem := newMem()
	c := small(mem)
	now := uint64(0)
	prop := func(addr uint32, write bool) bool {
		now += 7
		c.Access(now, addr%4096, write)
		return c.Stats.Misses() <= c.Stats.Accesses()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
