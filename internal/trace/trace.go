// Package trace records and renders per-instruction pipeline timelines
// from the timing core — the equivalent of SimpleScalar's pipetrace. It is
// the tool used to see *why* a configuration is slow: where loads wait for
// ports, how far stores are from their forwarding consumers, and what a
// misroute recovery costs.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Recorder collects trace events up to a limit (0 = unlimited). It
// implements core.Tracer.
type Recorder struct {
	// Limit bounds the number of retained events; once reached, further
	// events are counted but not stored.
	Limit   int
	Events  []core.TraceEvent
	Dropped uint64
}

// NewRecorder returns a Recorder keeping at most limit events.
func NewRecorder(limit int) *Recorder {
	return &Recorder{Limit: limit}
}

// Trace implements core.Tracer.
func (r *Recorder) Trace(ev core.TraceEvent) {
	if r.Limit > 0 && len(r.Events) >= r.Limit {
		r.Dropped++
		return
	}
	r.Events = append(r.Events, ev)
}

// Stage letters used in the rendered timeline.
const (
	markDispatch = 'D'
	markIssue    = 'I'
	markAddr     = 'A'
	markReady    = 'R'
	markCommit   = 'C'
	markBusy     = '.'
)

// Render draws a classic pipetrace: one row per instruction, one column
// per cycle, with stage letters at the cycles where the instruction
// dispatched (D), issued (I), finished address generation (A), produced
// its result (R) and committed (C).
func Render(events []core.TraceEvent) string {
	if len(events) == 0 {
		return "(no trace events)\n"
	}
	minCycle, maxCycle := events[0].DispatchedAt, uint64(0)
	for _, ev := range events {
		if ev.DispatchedAt < minCycle {
			minCycle = ev.DispatchedAt
		}
		last := ev.CommittedAt
		if last == 0 {
			last = ev.ReadyAt
		}
		if last > maxCycle {
			maxCycle = last
		}
	}
	width := int(maxCycle-minCycle) + 1
	if width > 200 {
		width = 200 // keep lines terminal-sized; later cycles clip
	}

	var b strings.Builder
	fmt.Fprintf(&b, "cycles %d..%d, one column per cycle\n", minCycle, maxCycle)
	for _, ev := range events {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = ' '
		}
		place := func(cycle uint64, mark byte) {
			if cycle < minCycle {
				return
			}
			if idx := int(cycle - minCycle); idx < width {
				lane[idx] = mark
			}
		}
		// Fill the dispatch→commit span with dots first, then stamps.
		if ev.CommittedAt >= ev.DispatchedAt && ev.CommittedAt > 0 {
			for cyc := ev.DispatchedAt; cyc <= ev.CommittedAt; cyc++ {
				place(cyc, markBusy)
			}
		}
		place(ev.DispatchedAt, markDispatch)
		if ev.IssuedAt > 0 {
			place(ev.IssuedAt, markIssue)
		}
		if ev.AddrAt > 0 {
			place(ev.AddrAt, markAddr)
		}
		if ev.ReadyAt > 0 {
			place(ev.ReadyAt, markReady)
		}
		if ev.CommittedAt > 0 {
			place(ev.CommittedAt, markCommit)
		}

		tag := " "
		switch {
		case ev.Squashed:
			tag = "x"
		case ev.FastForwarded:
			tag = "f"
		case ev.Forwarded:
			tag = "w"
		case ev.Combined:
			tag = "+"
		}
		queue := ev.Queue
		if queue == "" {
			queue = "-"
		}
		fmt.Fprintf(&b, "%6d %-4s %s %-28s |%s|\n", ev.Seq, queue, tag,
			clip(ev.Inst.String(), 28), string(lane))
	}
	b.WriteString("D dispatch, I issue, A agen, R result, C commit; " +
		"w forwarded, f fast-forwarded, + combined, x squashed\n")
	return b.String()
}

// Summary aggregates a trace into per-stage latency statistics.
func Summary(events []core.TraceEvent) string {
	if len(events) == 0 {
		return "(no trace events)\n"
	}
	var n, dispatchToIssue, issueToReady, readyToCommit uint64
	var forwards, fastForwards, combined, squashed uint64
	for _, ev := range events {
		if ev.Squashed {
			squashed++
			continue
		}
		if ev.CommittedAt == 0 || ev.IssuedAt < ev.DispatchedAt {
			continue
		}
		n++
		dispatchToIssue += ev.IssuedAt - ev.DispatchedAt
		if ev.ReadyAt >= ev.IssuedAt {
			issueToReady += ev.ReadyAt - ev.IssuedAt
		}
		if ev.CommittedAt >= ev.ReadyAt {
			readyToCommit += ev.CommittedAt - ev.ReadyAt
		}
		if ev.Forwarded {
			forwards++
		}
		if ev.FastForwarded {
			fastForwards++
		}
		if ev.Combined {
			combined++
		}
	}
	if n == 0 {
		return "(no committed events)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "instructions      %d (+%d squashed)\n", n, squashed)
	fmt.Fprintf(&b, "dispatch→issue    %.2f cycles avg\n", float64(dispatchToIssue)/float64(n))
	fmt.Fprintf(&b, "issue→result      %.2f cycles avg\n", float64(issueToReady)/float64(n))
	fmt.Fprintf(&b, "result→commit     %.2f cycles avg\n", float64(readyToCommit)/float64(n))
	fmt.Fprintf(&b, "forwarded         %d (fast %d), combined %d\n", forwards, fastForwards, combined)
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
