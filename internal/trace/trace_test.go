package trace

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/core"
)

func traceProgram(t *testing.T, src string, cfg config.Config, limit int) *Recorder {
	t.Helper()
	prog, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(limit)
	c.SetTracer(rec)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return rec
}

const tinyProgram = `
        .text
main:
        addi $sp, $sp, -8
        li   $t0, 5
        sw   $t0, 0($sp) !local
        lw   $t1, 0($sp) !local
        add  $t2, $t1, $t0
        addi $sp, $sp, 8
        out  $t2
        halt
`

func TestRecorderCapturesEveryInstruction(t *testing.T) {
	rec := traceProgram(t, tinyProgram, config.Default().WithPorts(2, 2), 0)
	if len(rec.Events) != 8 {
		t.Fatalf("captured %d events, want 8", len(rec.Events))
	}
	// Events arrive in commit order with monotone commit stamps.
	for i := 1; i < len(rec.Events); i++ {
		if rec.Events[i].CommittedAt < rec.Events[i-1].CommittedAt {
			t.Errorf("commit stamps not monotone at %d", i)
		}
	}
	// Pipeline ordering invariants per event.
	for _, ev := range rec.Events {
		if ev.IssuedAt <= ev.DispatchedAt {
			t.Errorf("seq %d issued (%d) not after dispatch (%d)", ev.Seq, ev.IssuedAt, ev.DispatchedAt)
		}
		if ev.CommittedAt < ev.ReadyAt {
			t.Errorf("seq %d committed before ready", ev.Seq)
		}
	}
}

func TestRecorderLimit(t *testing.T) {
	rec := traceProgram(t, tinyProgram, config.Default(), 3)
	if len(rec.Events) != 3 {
		t.Errorf("kept %d events with limit 3", len(rec.Events))
	}
	if rec.Dropped != 5 {
		t.Errorf("dropped %d, want 5", rec.Dropped)
	}
}

func TestTraceMarksQueuesAndForwarding(t *testing.T) {
	rec := traceProgram(t, tinyProgram, config.Default().WithPorts(2, 2), 0)
	var sawLVAQ, sawForward bool
	for _, ev := range rec.Events {
		if ev.Queue == "LVAQ" {
			sawLVAQ = true
		}
		if ev.Inst.IsLoad() && (ev.Forwarded || ev.FastForwarded) {
			sawForward = true
		}
	}
	if !sawLVAQ {
		t.Error("no LVAQ events in a decoupled run")
	}
	if !sawForward {
		t.Error("the store→load pair did not forward")
	}
}

func TestTraceMarksSquashes(t *testing.T) {
	src := `
        .text
main:
        la  $s0, g
        li  $t0, 1
        sw  $t0, 0($s0) !local
        lw  $t1, 0($s0) !local
        out $t1
        halt
        .data
g:      .word 0
`
	rec := traceProgram(t, src, config.Default().WithPorts(2, 2), 0)
	var squashes int
	for _, ev := range rec.Events {
		if ev.Squashed {
			squashes++
		}
	}
	if squashes == 0 {
		t.Error("misroute recovery produced no squashed events")
	}
}

func TestRenderContainsStages(t *testing.T) {
	rec := traceProgram(t, tinyProgram, config.Default().WithPorts(2, 2), 0)
	out := Render(rec.Events)
	for _, want := range []string{"D", "C", "lw $t1", "LVAQ", "cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if Render(nil) == "" {
		t.Error("empty render")
	}
}

func TestSummary(t *testing.T) {
	rec := traceProgram(t, tinyProgram, config.Default().WithPorts(2, 2), 0)
	out := Summary(rec.Events)
	for _, want := range []string{"instructions", "dispatch→issue", "forwarded"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(Summary(nil), "no trace events") {
		t.Error("empty summary")
	}
}
