// Package stats provides the statistics primitives shared by the simulator
// and the experiment harness: weighted histograms with percentile
// extraction, ratio helpers and fixed-width text tables that mirror the
// paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a weighted histogram over integer values (e.g. frame sizes
// in words, queue occupancies).
type Histogram struct {
	counts map[int]uint64
	total  uint64
	sum    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64)}
}

// Add records value with the given weight.
func (h *Histogram) Add(value int, weight uint64) {
	h.counts[value] += weight
	h.total += weight
	h.sum += float64(value) * float64(weight)
}

// Total returns the total recorded weight.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the weighted mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest recorded value (0 if empty).
func (h *Histogram) Max() int {
	max := 0
	for v := range h.counts {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the smallest value v such that at least p (0..1) of
// the weight is <= v.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	values := h.sortedValues()
	threshold := p * float64(h.total)
	var cum float64
	for _, v := range values {
		cum += float64(h.counts[v])
		if cum >= threshold {
			return v
		}
	}
	return values[len(values)-1]
}

// CumulativeAt returns the fraction of weight at values <= v.
func (h *Histogram) CumulativeAt(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var cum uint64
	for value, c := range h.counts {
		if value <= v {
			cum += c
		}
	}
	return float64(cum) / float64(h.total)
}

// Count returns the weight recorded at exactly v.
func (h *Histogram) Count(v int) uint64 { return h.counts[v] }

func (h *Histogram) sortedValues() []int {
	values := make([]int, 0, len(h.counts))
	for v := range h.counts {
		values = append(values, v)
	}
	sort.Ints(values)
	return values
}

// Buckets returns (value, weight) pairs in increasing value order.
func (h *Histogram) Buckets() (values []int, weights []uint64) {
	values = h.sortedValues()
	weights = make([]uint64, len(values))
	for i, v := range values {
		weights[i] = h.counts[v]
	}
	return values, weights
}

// Ratio returns a/b as a float (0 when b is 0).
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Pct returns a/b as a percentage (0 when b is 0).
func Pct(a, b uint64) float64 { return 100 * Ratio(a, b) }

// Speedup returns the relative performance of cycles vs baseCycles:
// baseCycles/cycles (1.0 = equal, >1 = faster than base).
func Speedup(baseCycles, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(baseCycles) / float64(cycles)
}

// GeoMean returns the geometric mean of xs (0 if empty or any x <= 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Table renders fixed-width text tables for the experiment reports.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v, and float64 cells
// with %.3f.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the formatted table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
