package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Total() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Error("empty histogram not all-zero")
	}
	h.Add(3, 2)
	h.Add(7, 2)
	if h.Total() != 4 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Mean() != 5 {
		t.Errorf("mean = %f", h.Mean())
	}
	if h.Max() != 7 {
		t.Errorf("max = %d", h.Max())
	}
	if h.Count(3) != 2 || h.Count(5) != 0 {
		t.Error("counts wrong")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 100; v++ {
		h.Add(v, 1)
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Errorf("p50 = %d", p)
	}
	if p := h.Percentile(0.99); p != 99 {
		t.Errorf("p99 = %d", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Errorf("p100 = %d", p)
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram()
	h.Add(1, 3)
	h.Add(10, 1)
	if c := h.CumulativeAt(1); c != 0.75 {
		t.Errorf("cum(1) = %f", c)
	}
	if c := h.CumulativeAt(10); c != 1 {
		t.Errorf("cum(10) = %f", c)
	}
	if c := h.CumulativeAt(0); c != 0 {
		t.Errorf("cum(0) = %f", c)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Add(5, 1)
	h.Add(2, 4)
	vals, weights := h.Buckets()
	if len(vals) != 2 || vals[0] != 2 || vals[1] != 5 || weights[0] != 4 || weights[1] != 1 {
		t.Errorf("buckets = %v %v", vals, weights)
	}
}

func TestHistogramMeanMatchesDefinitionProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		h := NewHistogram()
		var sum, n float64
		for _, v := range raw {
			h.Add(int(v), 1)
			sum += float64(v)
			n++
		}
		if n == 0 {
			return h.Mean() == 0
		}
		return math.Abs(h.Mean()-sum/n) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 2) != 0.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
	if Pct(1, 4) != 25 {
		t.Error("Pct wrong")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(100, 50) != 2 {
		t.Error("Speedup wrong")
	}
	if Speedup(100, 0) != 0 {
		t.Error("Speedup div0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %f", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("negative geomean")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("bee", 2.5)
	out := tb.Render()
	for _, want := range []string{"Title", "name", "value", "alpha", "2.500", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Columns align: every line has the same position for column 2.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d", len(lines))
	}
}
