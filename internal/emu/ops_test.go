package emu

import "testing"

// Coverage for the opcodes the main tests don't reach.

func TestRegisterShiftVariants(t *testing.T) {
	m := run(t, `
        .text
main:
        li  $t0, 1
        li  $t1, 4
        sll $t2, $t0, $t1
        out $t2
        li  $t3, -16
        srl $t4, $t3, $t1
        out $t4
        sra $t5, $t3, $t1
        out $t5
        li  $t6, 33
        sll $t7, $t0, $t6   # shift amounts wrap mod 32
        out $t7
        halt
`)
	wantOutput(t, m, 16, (1<<32-16)>>4, -1, 2)
}

func TestSetLessThan(t *testing.T) {
	m := run(t, `
        .text
main:
        li   $t0, -1
        li   $t1, 1
        slt  $t2, $t0, $t1
        out  $t2
        sltu $t3, $t0, $t1    # -1 is huge unsigned
        out  $t3
        slti $t4, $t0, 0
        out  $t4
        halt
`)
	wantOutput(t, m, 1, 0, 1)
}

func TestNorAndImmediates(t *testing.T) {
	m := run(t, `
        .text
main:
        li   $t0, 0x0F
        li   $t1, 0xF0
        nor  $t2, $t0, $t1
        out  $t2
        andi $t3, $t0, 0x3
        out  $t3
        ori  $t4, $t0, 0x30
        out  $t4
        xori $t5, $t0, 0xFF
        out  $t5
        halt
`)
	wantOutput(t, m, ^int64(0xFF)&0xFFFFFFFF|^int64(0xFFFFFFFF), 3, 0x3F, 0xF0)
}

func TestDIVU(t *testing.T) {
	m := run(t, `
        .text
main:
        li   $t0, -2        # 0xFFFFFFFE unsigned
        li   $t1, 2
        divu $t2, $t0, $t1
        out  $t2
        divu $t3, $t0, $zero
        out  $t3
        halt
`)
	wantOutput(t, m, 0x7FFFFFFF, 0)
}

func TestFPCompares(t *testing.T) {
	m := run(t, `
        .text
main:
        li    $t0, 2
        cvtif $f0, $t0
        li    $t1, 3
        cvtif $f1, $t1
        fcle  $t2, $f0, $f1
        out   $t2
        fcle  $t3, $f1, $f0
        out   $t3
        fceq  $t4, $f0, $f0
        out   $t4
        fceq  $t5, $f0, $f1
        out   $t5
        halt
`)
	wantOutput(t, m, 1, 0, 1, 0)
}

func TestFSUBAndChains(t *testing.T) {
	m := run(t, `
        .text
main:
        li    $t0, 10
        cvtif $f0, $t0
        li    $t1, 4
        cvtif $f1, $t1
        fsub  $f2, $f0, $f1
        cvtfi $t2, $f2
        out   $t2
        halt
`)
	wantOutput(t, m, 6)
}

func TestLHUNegativePattern(t *testing.T) {
	m := run(t, `
        .text
main:
        la  $t0, buf
        li  $t1, -1
        sh  $t1, 0($t0)
        lhu $t2, 0($t0)
        out $t2
        lh  $t3, 0($t0)
        out $t3
        halt
        .data
buf:    .space 8
`)
	wantOutput(t, m, 0xFFFF, -1)
}

func TestNopDoesNothing(t *testing.T) {
	m := run(t, "\t.text\nmain:\n\tnop\n\tnop\n\tout $zero\n\thalt\n")
	wantOutput(t, m, 0)
	if m.InstCount != 4 {
		t.Errorf("InstCount = %d", m.InstCount)
	}
}

func TestOutputIndependentOfConfig(t *testing.T) {
	// The same program produces identical output across fresh machines.
	src := `
        .text
main:
        li  $t0, 0
        li  $t1, 50
l:      add $t0, $t0, $t1
        addi $t1, $t1, -1
        bnez $t1, l
        out $t0
        halt
`
	m1 := run(t, src)
	m2 := run(t, src)
	if m1.Output[0] != m2.Output[0] {
		t.Error("nondeterministic output")
	}
	if m1.Output[0] != 1275 {
		t.Errorf("sum = %d, want 1275", m1.Output[0])
	}
}
