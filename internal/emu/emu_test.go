package emu

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(p)
	halted, err := m.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !halted {
		t.Fatal("program did not halt within budget")
	}
	return m
}

func wantOutput(t *testing.T, m *Machine, want ...int64) {
	t.Helper()
	if len(m.Output) != len(want) {
		t.Fatalf("output = %v, want %v", m.Output, want)
	}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, m.Output[i], want[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
        .text
main:
        li   $t0, 21
        li   $t1, 2
        mul  $t2, $t0, $t1
        out  $t2
        sub  $t3, $t2, $t0
        out  $t3
        div  $t4, $t2, $t1
        out  $t4
        rem  $t5, $t0, $t1
        out  $t5
        halt
`)
	wantOutput(t, m, 42, 21, 21, 1)
}

func TestDivideByZeroIsZero(t *testing.T) {
	m := run(t, `
        .text
main:
        li  $t0, 7
        div $t1, $t0, $zero
        out $t1
        rem $t2, $t0, $zero
        out $t2
        halt
`)
	wantOutput(t, m, 0, 0)
}

func TestLogicAndShifts(t *testing.T) {
	m := run(t, `
        .text
main:
        li   $t0, 0xF0
        li   $t1, 0x0F
        or   $t2, $t0, $t1
        out  $t2
        and  $t3, $t0, $t1
        out  $t3
        xor  $t4, $t0, $t1
        out  $t4
        slli $t5, $t1, 4
        out  $t5
        srli $t6, $t0, 4
        out  $t6
        li   $t7, -8
        srai $t7, $t7, 1
        out  $t7
        halt
`)
	wantOutput(t, m, 0xFF, 0, 0xFF, 0xF0, 0x0F, -4)
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := run(t, `
        .text
main:
        li  $zero, 99
        out $zero
        halt
`)
	wantOutput(t, m, 0)
}

func TestMemoryLoadsStores(t *testing.T) {
	m := run(t, `
        .text
main:
        la  $t0, buf
        li  $t1, -2
        sw  $t1, 0($t0)
        lw  $t2, 0($t0)
        out $t2
        lh  $t3, 0($t0)
        out $t3
        lhu $t4, 0($t0)
        out $t4
        lb  $t5, 0($t0)
        out $t5
        lbu $t6, 0($t0)
        out $t6
        li  $t1, 300
        sb  $t1, 4($t0)
        lbu $t2, 4($t0)
        out $t2
        sh  $t1, 8($t0)
        lh  $t2, 8($t0)
        out $t2
        halt
        .data
buf:    .space 16
`)
	wantOutput(t, m, -2, -2, 0xFFFE, -2, 0xFE, 300&0xFF, 300)
}

func TestStackPushPop(t *testing.T) {
	m := run(t, `
        .text
main:
        addi $sp, $sp, -8
        li   $t0, 123
        sw   $t0, 0($sp) !local
        sw   $t0, 4($sp) !local
        lw   $t1, 4($sp) !local
        out  $t1
        addi $sp, $sp, 8
        halt
`)
	wantOutput(t, m, 123)
	if uint32(m.GPR[isa.RegSP]) != isa.StackBase {
		t.Errorf("$sp = %#x, want %#x", uint32(m.GPR[isa.RegSP]), isa.StackBase)
	}
}

func TestCallReturn(t *testing.T) {
	m := run(t, `
        .text
main:
        li   $a0, 5
        jal  double
        out  $v0
        halt
double:
        add  $v0, $a0, $a0
        jr   $ra
`)
	wantOutput(t, m, 10)
}

func TestRecursiveFactorial(t *testing.T) {
	m := run(t, `
        .text
main:
        li   $a0, 6
        jal  fact
        out  $v0
        halt
fact:
        addi $sp, $sp, -8
        sw   $ra, 4($sp) !local
        sw   $a0, 0($sp) !local
        li   $v0, 1
        blez $a0, fact_done
        addi $a0, $a0, -1
        jal  fact
        lw   $a0, 0($sp) !local
        mul  $v0, $v0, $a0
fact_done:
        lw   $ra, 4($sp) !local
        addi $sp, $sp, 8
        jr   $ra
`)
	wantOutput(t, m, 720)
}

func TestLoopSum(t *testing.T) {
	m := run(t, `
        .text
main:
        li   $t0, 0      # sum
        li   $t1, 1      # i
        li   $t2, 100
loop:
        add  $t0, $t0, $t1
        addi $t1, $t1, 1
        ble_check:
        bge  $t2, $t1, loop
        out  $t0
        halt
`)
	wantOutput(t, m, 5050)
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
        .text
main:
        li    $t0, 3
        cvtif $f0, $t0
        li    $t1, 4
        cvtif $f1, $t1
        fmul  $f2, $f0, $f0
        fmul  $f3, $f1, $f1
        fadd  $f4, $f2, $f3
        fout  $f4
        fdiv  $f5, $f0, $f1
        fout  $f5
        fneg  $f6, $f5
        fout  $f6
        fabs  $f7, $f6
        fout  $f7
        cvtfi $t2, $f4
        out   $t2
        fclt  $t3, $f0, $f1
        out   $t3
        halt
`)
	wantF := []float64{25, 0.75, -0.75, 0.75}
	if len(m.FOutput) != len(wantF) {
		t.Fatalf("foutput = %v", m.FOutput)
	}
	for i, w := range wantF {
		if m.FOutput[i] != w {
			t.Errorf("foutput[%d] = %g, want %g", i, m.FOutput[i], w)
		}
	}
	wantOutput(t, m, 25, 1)
}

func TestFloatMemory(t *testing.T) {
	m := run(t, `
        .text
main:
        la   $t0, vals
        fld  $f0, 0($t0)
        fld  $f1, 8($t0)
        fadd $f2, $f0, $f1
        fout $f2
        fsd  $f2, 16($t0)
        fld  $f3, 16($t0)
        fout $f3
        flw  $f4, 24($t0)
        fout $f4
        fsw  $f4, 28($t0)
        flw  $f5, 28($t0)
        fout $f5
        halt
        .data
vals:   .double 1.5, 2.25
        .space 8
        .float 0.5, 0.0
`)
	want := []float64{3.75, 3.75, 0.5, 0.5}
	if len(m.FOutput) != len(want) {
		t.Fatalf("foutput = %v", m.FOutput)
	}
	for i, w := range want {
		if m.FOutput[i] != w {
			t.Errorf("foutput[%d] = %g, want %g", i, m.FOutput[i], w)
		}
	}
}

func TestBranchVariants(t *testing.T) {
	m := run(t, `
        .text
main:
        li   $t0, -1
        bltz $t0, l1
        out  $zero
l1:     bgez $t0, bad
        li   $t1, 1
        bgtz $t1, l2
        out  $zero
l2:     blez $t1, bad
        li   $t2, 5
        li   $t3, 5
        beq  $t2, $t3, l3
        out  $zero
l3:     bne  $t2, $t3, bad
        blt  $t0, $t1, l4
        out  $zero
l4:     bge  $t1, $t0, l5
        out  $zero
l5:     li   $v0, 77
        out  $v0
        halt
bad:    out  $zero
        halt
`)
	wantOutput(t, m, 77)
}

func TestEffectMetadata(t *testing.T) {
	p, err := asm.Assemble("fx.s", `
        .text
main:
        addi $sp, $sp, -8
        sw   $t0, 4($sp) !local
        lw   $t1, 4($sp) !local
        beq  $t1, $t0, skip
        nop
skip:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)

	ef, _ := m.Step() // addi
	if ef.Inst.Op != isa.ADDI || ef.NextPC != p.Entry+4 {
		t.Errorf("addi effect = %+v", ef)
	}
	ef, _ = m.Step() // sw
	wantAddr := isa.StackBase - 8 + 4
	if !ef.Inst.IsStore() || ef.Addr != wantAddr || ef.Bytes != 4 {
		t.Errorf("sw effect = %+v, want addr %#x", ef, wantAddr)
	}
	if !isa.InStackRegion(ef.Addr) {
		t.Error("stack store address not in stack region")
	}
	ef, _ = m.Step() // lw
	if !ef.Inst.IsLoad() || ef.Addr != wantAddr {
		t.Errorf("lw effect = %+v", ef)
	}
	ef, _ = m.Step() // beq taken (t0 == t1 == 0)
	if !ef.Taken {
		t.Error("equal beq not taken")
	}
	if ef.NextPC != m.Prog.Symbols["skip"] {
		t.Errorf("branch NextPC = %#x, want %#x", ef.NextPC, m.Prog.Symbols["skip"])
	}
}

func TestJalrAndJr(t *testing.T) {
	m := run(t, `
        .text
main:
        la   $t0, target
        jalr $ra, $t0
        out  $v0
        halt
target:
        li   $v0, 9
        jr   $ra
`)
	wantOutput(t, m, 9)
}

func TestLUI(t *testing.T) {
	m := run(t, `
        .text
main:
        lui $t0, 1
        out $t0
        halt
`)
	wantOutput(t, m, 65536)
}

func TestRunBudget(t *testing.T) {
	p, err := asm.Assemble("loop.s", "\t.text\nmain:\n\tb main\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	halted, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if halted {
		t.Error("infinite loop reported as halted")
	}
	if m.InstCount != 100 {
		t.Errorf("InstCount = %d, want 100", m.InstCount)
	}
}

func TestPCOutsideText(t *testing.T) {
	p, err := asm.Assemble("fall.s", "\t.text\nmain:\n\tnop\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if _, err := m.Step(); err != nil {
		t.Fatalf("first step: %v", err)
	}
	if _, err := m.Step(); err == nil {
		t.Error("fall off the end did not error")
	}
}

func TestStepAfterHalt(t *testing.T) {
	m := run(t, "\t.text\nmain:\n\thalt\n")
	if _, err := m.Step(); err == nil {
		t.Error("step after halt did not error")
	}
}

func TestCVTFISaturation(t *testing.T) {
	m := run(t, `
        .text
main:
        li    $t0, 1000000
        cvtif $f0, $t0
        fmul  $f0, $f0, $f0    # 1e12 > MaxInt32
        cvtfi $t1, $f0
        out   $t1
        fneg  $f1, $f0
        cvtfi $t2, $f1
        out   $t2
        halt
`)
	wantOutput(t, m, math.MaxInt32, math.MinInt32)
}

func TestGPInitialized(t *testing.T) {
	p, _ := asm.Assemble("gp.s", "\t.text\nmain:\n\thalt\n")
	m := New(p)
	if uint32(m.GPR[isa.RegGP]) != p.DataBase {
		t.Errorf("$gp = %#x, want %#x", uint32(m.GPR[isa.RegGP]), p.DataBase)
	}
}
