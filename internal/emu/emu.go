// Package emu implements the functional (architectural) emulator for the
// simulator's ISA.
//
// The emulator plays two roles. Standalone, it runs programs to completion
// for functional verification and for the paper's profiling experiments
// (instruction mix, frame sizes, LVC miss rates). Inside the timing core it
// is the oracle front end: with the paper's perfect I-cache and perfect
// branch prediction, the fetch stage follows exactly the architectural
// path, so the timing model executes instructions functionally as they are
// fetched and replays their dependences and latencies (the `sim-outorder`
// approach).
package emu

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// ErrNoInst is returned when the PC leaves the text segment.
var ErrNoInst = errors.New("emu: PC outside text segment")

// Effect records the architectural effect of one executed instruction. The
// timing core uses it to know the true next PC and the effective address
// of memory operations; profilers use the remaining fields.
type Effect struct {
	PC     uint32
	Inst   isa.Inst
	NextPC uint32
	// Addr and Bytes describe the data memory access, if Inst.IsMem().
	Addr  uint32
	Bytes uint8
	// Taken reports whether a conditional branch was taken.
	Taken bool
}

// Machine is the architectural state of a running program.
type Machine struct {
	Prog *asm.Program
	Mem  *mem.Memory

	PC  uint32
	GPR [32]int32
	FPR [32]float64

	// Output and FOutput collect the values emitted by OUT and FOUT, the
	// ISA's only observable side channel. Tests compare them across the
	// emulator and the timing core.
	Output  []int64
	FOutput []float64

	Halted    bool
	InstCount uint64
}

// New loads prog into a fresh machine: data segment at its base, $sp at the
// stack base, $gp at the data base, PC at the entry point.
func New(prog *asm.Program) *Machine {
	m := &Machine{
		Prog: prog,
		Mem:  mem.New(),
		PC:   prog.Entry,
	}
	if len(prog.Data) > 0 {
		m.Mem.Write(prog.DataBase, prog.Data)
	}
	m.GPR[isa.RegSP] = int32(isa.StackBase)
	m.GPR[isa.RegFP] = int32(isa.StackBase)
	m.GPR[isa.RegGP] = int32(prog.DataBase)
	return m
}

func (m *Machine) gpr(r isa.Reg) int32 {
	return m.GPR[r&31]
}

func (m *Machine) setGPR(r isa.Reg, v int32) {
	if r != isa.RegZero {
		m.GPR[r&31] = v
	}
}

func (m *Machine) fpr(r isa.Reg) float64 {
	return m.FPR[r&31]
}

func (m *Machine) setFPR(r isa.Reg, v float64) {
	m.FPR[r&31] = v
}

// Step executes the instruction at the current PC and advances the machine.
// It returns the instruction's architectural effect.
func (m *Machine) Step() (Effect, error) {
	if m.Halted {
		return Effect{}, errors.New("emu: machine is halted")
	}
	in, ok := m.Prog.InstAt(m.PC)
	if !ok {
		return Effect{}, fmt.Errorf("%w: pc=%#x", ErrNoInst, m.PC)
	}
	ef := Effect{PC: m.PC, Inst: in, NextPC: m.PC + isa.InstBytes}

	switch in.Op {
	case isa.NOP:

	case isa.ADD:
		m.setGPR(in.Rd, m.gpr(in.Rs)+m.gpr(in.Rt))
	case isa.SUB:
		m.setGPR(in.Rd, m.gpr(in.Rs)-m.gpr(in.Rt))
	case isa.AND:
		m.setGPR(in.Rd, m.gpr(in.Rs)&m.gpr(in.Rt))
	case isa.OR:
		m.setGPR(in.Rd, m.gpr(in.Rs)|m.gpr(in.Rt))
	case isa.XOR:
		m.setGPR(in.Rd, m.gpr(in.Rs)^m.gpr(in.Rt))
	case isa.NOR:
		m.setGPR(in.Rd, ^(m.gpr(in.Rs) | m.gpr(in.Rt)))
	case isa.SLL:
		m.setGPR(in.Rd, m.gpr(in.Rs)<<(uint32(m.gpr(in.Rt))&31))
	case isa.SRL:
		m.setGPR(in.Rd, int32(uint32(m.gpr(in.Rs))>>(uint32(m.gpr(in.Rt))&31)))
	case isa.SRA:
		m.setGPR(in.Rd, m.gpr(in.Rs)>>(uint32(m.gpr(in.Rt))&31))
	case isa.SLT:
		m.setGPR(in.Rd, b2i(m.gpr(in.Rs) < m.gpr(in.Rt)))
	case isa.SLTU:
		m.setGPR(in.Rd, b2i(uint32(m.gpr(in.Rs)) < uint32(m.gpr(in.Rt))))
	case isa.ADDI:
		m.setGPR(in.Rd, m.gpr(in.Rs)+in.Imm)
	case isa.ANDI:
		m.setGPR(in.Rd, m.gpr(in.Rs)&in.Imm)
	case isa.ORI:
		m.setGPR(in.Rd, m.gpr(in.Rs)|in.Imm)
	case isa.XORI:
		m.setGPR(in.Rd, m.gpr(in.Rs)^in.Imm)
	case isa.SLLI:
		m.setGPR(in.Rd, m.gpr(in.Rs)<<(uint32(in.Imm)&31))
	case isa.SRLI:
		m.setGPR(in.Rd, int32(uint32(m.gpr(in.Rs))>>(uint32(in.Imm)&31)))
	case isa.SRAI:
		m.setGPR(in.Rd, m.gpr(in.Rs)>>(uint32(in.Imm)&31))
	case isa.SLTI:
		m.setGPR(in.Rd, b2i(m.gpr(in.Rs) < in.Imm))
	case isa.LUI:
		m.setGPR(in.Rd, in.Imm<<16)

	case isa.MUL:
		m.setGPR(in.Rd, m.gpr(in.Rs)*m.gpr(in.Rt))
	case isa.DIV:
		// Division by zero and INT_MIN/-1 are defined to produce zero so
		// that generated workloads never fault.
		d := m.gpr(in.Rt)
		if d == 0 || (m.gpr(in.Rs) == math.MinInt32 && d == -1) {
			m.setGPR(in.Rd, 0)
		} else {
			m.setGPR(in.Rd, m.gpr(in.Rs)/d)
		}
	case isa.DIVU:
		if d := uint32(m.gpr(in.Rt)); d == 0 {
			m.setGPR(in.Rd, 0)
		} else {
			m.setGPR(in.Rd, int32(uint32(m.gpr(in.Rs))/d))
		}
	case isa.REM:
		d := m.gpr(in.Rt)
		if d == 0 || (m.gpr(in.Rs) == math.MinInt32 && d == -1) {
			m.setGPR(in.Rd, 0)
		} else {
			m.setGPR(in.Rd, m.gpr(in.Rs)%d)
		}

	case isa.FADD:
		m.setFPR(in.Rd, m.fpr(in.Rs)+m.fpr(in.Rt))
	case isa.FSUB:
		m.setFPR(in.Rd, m.fpr(in.Rs)-m.fpr(in.Rt))
	case isa.FMUL:
		m.setFPR(in.Rd, m.fpr(in.Rs)*m.fpr(in.Rt))
	case isa.FDIV:
		m.setFPR(in.Rd, m.fpr(in.Rs)/m.fpr(in.Rt))
	case isa.FNEG:
		m.setFPR(in.Rd, -m.fpr(in.Rs))
	case isa.FABS:
		m.setFPR(in.Rd, math.Abs(m.fpr(in.Rs)))
	case isa.FMOV:
		m.setFPR(in.Rd, m.fpr(in.Rs))
	case isa.CVTIF:
		m.setFPR(in.Rd, float64(m.gpr(in.Rs)))
	case isa.CVTFI:
		f := m.fpr(in.Rs)
		switch {
		case math.IsNaN(f):
			m.setGPR(in.Rd, 0)
		case f >= math.MaxInt32:
			m.setGPR(in.Rd, math.MaxInt32)
		case f <= math.MinInt32:
			m.setGPR(in.Rd, math.MinInt32)
		default:
			m.setGPR(in.Rd, int32(f))
		}
	case isa.FCLT:
		m.setGPR(in.Rd, b2i(m.fpr(in.Rs) < m.fpr(in.Rt)))
	case isa.FCLE:
		m.setGPR(in.Rd, b2i(m.fpr(in.Rs) <= m.fpr(in.Rt)))
	case isa.FCEQ:
		m.setGPR(in.Rd, b2i(m.fpr(in.Rs) == m.fpr(in.Rt)))

	case isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.FLW, isa.FLD:
		addr := uint32(m.gpr(in.Rs) + in.Imm)
		ef.Addr, ef.Bytes = addr, uint8(in.MemBytes())
		switch in.Op {
		case isa.LB:
			m.setGPR(in.Rd, int32(int8(m.Mem.LoadByte(addr))))
		case isa.LBU:
			m.setGPR(in.Rd, int32(m.Mem.LoadByte(addr)))
		case isa.LH:
			m.setGPR(in.Rd, int32(int16(m.Mem.ReadUint16(addr))))
		case isa.LHU:
			m.setGPR(in.Rd, int32(m.Mem.ReadUint16(addr)))
		case isa.LW:
			m.setGPR(in.Rd, int32(m.Mem.ReadUint32(addr)))
		case isa.FLW:
			m.setFPR(in.Rd, float64(math.Float32frombits(m.Mem.ReadUint32(addr))))
		case isa.FLD:
			m.setFPR(in.Rd, math.Float64frombits(m.Mem.ReadUint64(addr)))
		}

	case isa.SB, isa.SH, isa.SW, isa.FSW, isa.FSD:
		addr := uint32(m.gpr(in.Rs) + in.Imm)
		ef.Addr, ef.Bytes = addr, uint8(in.MemBytes())
		switch in.Op {
		case isa.SB:
			m.Mem.StoreByte(addr, byte(m.gpr(in.Rt)))
		case isa.SH:
			m.Mem.WriteUint16(addr, uint16(m.gpr(in.Rt)))
		case isa.SW:
			m.Mem.WriteUint32(addr, uint32(m.gpr(in.Rt)))
		case isa.FSW:
			m.Mem.WriteUint32(addr, math.Float32bits(float32(m.fpr(in.Rt))))
		case isa.FSD:
			m.Mem.WriteUint64(addr, math.Float64bits(m.fpr(in.Rt)))
		}

	case isa.BEQ:
		m.branch(&ef, m.gpr(in.Rs) == m.gpr(in.Rt))
	case isa.BNE:
		m.branch(&ef, m.gpr(in.Rs) != m.gpr(in.Rt))
	case isa.BLT:
		m.branch(&ef, m.gpr(in.Rs) < m.gpr(in.Rt))
	case isa.BGE:
		m.branch(&ef, m.gpr(in.Rs) >= m.gpr(in.Rt))
	case isa.BLEZ:
		m.branch(&ef, m.gpr(in.Rs) <= 0)
	case isa.BGTZ:
		m.branch(&ef, m.gpr(in.Rs) > 0)
	case isa.BLTZ:
		m.branch(&ef, m.gpr(in.Rs) < 0)
	case isa.BGEZ:
		m.branch(&ef, m.gpr(in.Rs) >= 0)

	case isa.J:
		ef.NextPC = uint32(in.Imm)
	case isa.JAL:
		m.setGPR(isa.RegRA, int32(m.PC+isa.InstBytes))
		ef.NextPC = uint32(in.Imm)
	case isa.JR:
		ef.NextPC = uint32(m.gpr(in.Rs))
	case isa.JALR:
		ret := int32(m.PC + isa.InstBytes)
		ef.NextPC = uint32(m.gpr(in.Rs))
		m.setGPR(in.Rd, ret)

	case isa.HALT:
		m.Halted = true
		ef.NextPC = m.PC
	case isa.OUT:
		m.Output = append(m.Output, int64(m.gpr(in.Rs)))
	case isa.FOUT:
		m.FOutput = append(m.FOutput, m.fpr(in.Rs))

	default:
		return Effect{}, fmt.Errorf("emu: unimplemented opcode %v at pc=%#x", in.Op, m.PC)
	}

	m.PC = ef.NextPC
	m.InstCount++
	return ef, nil
}

func (m *Machine) branch(ef *Effect, taken bool) {
	ef.Taken = taken
	if taken {
		ef.NextPC = ef.PC + isa.InstBytes + uint32(ef.Inst.Imm)*isa.InstBytes
	}
}

// Run executes until HALT or until maxInsts instructions have retired
// (maxInsts <= 0 means no limit). It reports whether the program halted.
func (m *Machine) Run(maxInsts uint64) (bool, error) {
	for !m.Halted {
		if maxInsts > 0 && m.InstCount >= maxInsts {
			return false, nil
		}
		if _, err := m.Step(); err != nil {
			return false, err
		}
	}
	return true, nil
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
