// Package mem implements the simulator's byte-addressable main memory as a
// sparse collection of fixed-size pages, so that the disjoint text, data,
// heap and stack regions of the 32-bit address space can be used without
// allocating the whole space.
package mem

import "encoding/binary"

// PageBytes is the allocation granularity of the sparse memory.
const PageBytes = 4096

type page [PageBytes]byte

// Memory is a sparse byte-addressable memory. The zero value is not ready
// to use; call New.
type Memory struct {
	pages map[uint32]*page
}

// New returns an empty memory. All addresses read as zero until written.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

func (m *Memory) pageFor(addr uint32, alloc bool) (*page, uint32) {
	base := addr &^ (PageBytes - 1)
	p := m.pages[base]
	if p == nil && alloc {
		p = new(page)
		m.pages[base] = p
	}
	return p, addr & (PageBytes - 1)
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint32) byte {
	p, off := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[off]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint32, b byte) {
	p, off := m.pageFor(addr, true)
	p[off] = b
}

// Read fills buf with the bytes starting at addr.
func (m *Memory) Read(addr uint32, buf []byte) {
	for len(buf) > 0 {
		p, off := m.pageFor(addr, false)
		n := PageBytes - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		if p == nil {
			clear(buf[:n])
		} else {
			copy(buf[:n], p[off:int(off)+n])
		}
		buf = buf[n:]
		addr += uint32(n)
	}
}

// Write stores buf starting at addr.
func (m *Memory) Write(addr uint32, buf []byte) {
	for len(buf) > 0 {
		p, off := m.pageFor(addr, true)
		n := copy(p[off:], buf)
		buf = buf[n:]
		addr += uint32(n)
	}
}

// fast path helpers: most accesses do not straddle a page boundary.

// ReadUint16 loads a little-endian 16-bit value.
func (m *Memory) ReadUint16(addr uint32) uint16 {
	if p, off := m.pageFor(addr, false); p != nil && off+2 <= PageBytes {
		return binary.LittleEndian.Uint16(p[off:])
	}
	var buf [2]byte
	m.Read(addr, buf[:])
	return binary.LittleEndian.Uint16(buf[:])
}

// ReadUint32 loads a little-endian 32-bit value.
func (m *Memory) ReadUint32(addr uint32) uint32 {
	if p, off := m.pageFor(addr, false); p != nil && off+4 <= PageBytes {
		return binary.LittleEndian.Uint32(p[off:])
	}
	var buf [4]byte
	m.Read(addr, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// ReadUint64 loads a little-endian 64-bit value.
func (m *Memory) ReadUint64(addr uint32) uint64 {
	if p, off := m.pageFor(addr, false); p != nil && off+8 <= PageBytes {
		return binary.LittleEndian.Uint64(p[off:])
	}
	var buf [8]byte
	m.Read(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteUint16 stores a little-endian 16-bit value.
func (m *Memory) WriteUint16(addr uint32, v uint16) {
	if p, off := m.pageFor(addr, true); off+2 <= PageBytes {
		binary.LittleEndian.PutUint16(p[off:], v)
		return
	}
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	m.Write(addr, buf[:])
}

// WriteUint32 stores a little-endian 32-bit value.
func (m *Memory) WriteUint32(addr uint32, v uint32) {
	if p, off := m.pageFor(addr, true); off+4 <= PageBytes {
		binary.LittleEndian.PutUint32(p[off:], v)
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	m.Write(addr, buf[:])
}

// WriteUint64 stores a little-endian 64-bit value.
func (m *Memory) WriteUint64(addr uint32, v uint64) {
	if p, off := m.pageFor(addr, true); off+8 <= PageBytes {
		binary.LittleEndian.PutUint64(p[off:], v)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.Write(addr, buf[:])
}

// PageCount returns the number of allocated pages (for tests and memory
// accounting).
func (m *Memory) PageCount() int { return len(m.pages) }
