package mem

import (
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := New()
	if got := m.ReadUint32(0x1234_5678); got != 0 {
		t.Errorf("unwritten word = %#x, want 0", got)
	}
	if m.PageCount() != 0 {
		t.Errorf("read allocated %d pages", m.PageCount())
	}
}

func TestByteRoundTrip(t *testing.T) {
	m := New()
	m.StoreByte(42, 0xAB)
	if got := m.LoadByte(42); got != 0xAB {
		t.Errorf("LoadByte = %#x", got)
	}
	if got := m.LoadByte(43); got != 0 {
		t.Errorf("neighbour byte = %#x, want 0", got)
	}
}

func TestWordRoundTrip(t *testing.T) {
	m := New()
	m.WriteUint32(0x1000, 0xDEADBEEF)
	if got := m.ReadUint32(0x1000); got != 0xDEADBEEF {
		t.Errorf("ReadUint32 = %#x", got)
	}
	// Little-endian layout.
	if got := m.LoadByte(0x1000); got != 0xEF {
		t.Errorf("low byte = %#x, want 0xEF", got)
	}
	if got := m.LoadByte(0x1003); got != 0xDE {
		t.Errorf("high byte = %#x, want 0xDE", got)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint32(PageBytes - 2) // straddles the first page boundary
	m.WriteUint32(addr, 0x11223344)
	if got := m.ReadUint32(addr); got != 0x11223344 {
		t.Errorf("cross-page word = %#x", got)
	}
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
	addr64 := uint32(3*PageBytes - 4)
	m.WriteUint64(addr64, 0x0102030405060708)
	if got := m.ReadUint64(addr64); got != 0x0102030405060708 {
		t.Errorf("cross-page dword = %#x", got)
	}
}

func TestBulkReadWrite(t *testing.T) {
	m := New()
	src := make([]byte, 3*PageBytes)
	for i := range src {
		src[i] = byte(i * 7)
	}
	m.Write(1000, src)
	dst := make([]byte, len(src))
	m.Read(1000, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d: got %#x, want %#x", i, dst[i], src[i])
		}
	}
}

func TestBulkReadUnwrittenTail(t *testing.T) {
	m := New()
	m.StoreByte(10, 0xFF)
	buf := []byte{1, 2, 3, 4}
	m.Read(9, buf)
	want := []byte{0, 0xFF, 0, 0}
	for i := range buf {
		if buf[i] != want[i] {
			t.Errorf("buf[%d] = %#x, want %#x", i, buf[i], want[i])
		}
	}
}

func TestUint16(t *testing.T) {
	m := New()
	m.WriteUint16(6, 0xBEEF)
	if got := m.ReadUint16(6); got != 0xBEEF {
		t.Errorf("ReadUint16 = %#x", got)
	}
}

func TestUint64RoundTripProperty(t *testing.T) {
	m := New()
	prop := func(addr uint32, v uint64) bool {
		m.WriteUint64(addr, v)
		return m.ReadUint64(addr) == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointRegionsIndependent(t *testing.T) {
	m := New()
	m.WriteUint32(0x1000_0000, 1)
	m.WriteUint32(0x7FFF_E000, 2)
	m.WriteUint32(0x0040_0000, 3)
	if m.ReadUint32(0x1000_0000) != 1 || m.ReadUint32(0x7FFF_E000) != 2 || m.ReadUint32(0x0040_0000) != 3 {
		t.Error("writes to disjoint regions interfere")
	}
}
