// Package simerr defines the typed failure taxonomy of the simulation
// harness. Every abnormal end of a timing-simulation run — a cancelled
// context, an exhausted cycle bound, a forward-progress watchdog trip, or a
// contained invariant-violation panic — is reported as a *SimError carrying
// a Snapshot of the pipeline at the moment of failure (cycle, ROB head,
// per-stream queue heads, port and combining-window state), so a hung or
// crashed run is diagnosable from the error value alone.
//
// The package is a leaf: it depends on nothing inside the repository, so
// the core, the experiment runner and the public facade can all share the
// same error type without import cycles.
package simerr

import (
	"fmt"
	"strings"
)

// Kind classifies why a simulation run ended abnormally.
type Kind uint8

const (
	// KindUnknown is the zero value; no SimError should ship with it.
	KindUnknown Kind = iota
	// KindWatchdog: the forward-progress watchdog found no committed
	// instruction for its whole window — a livelocked pipeline.
	KindWatchdog
	// KindMaxCycles: the RunOptions.MaxCycles bound was reached.
	KindMaxCycles
	// KindDeadline: the run's deadline (RunOptions.Deadline or the
	// context's) passed before the program halted.
	KindDeadline
	// KindCanceled: the run's context was cancelled.
	KindCanceled
	// KindBudget: the legacy IPC safety budget (cycles greatly exceeding
	// committed instructions) was exhausted.
	KindBudget
	// KindPanic: an invariant-violation panic inside the simulator was
	// contained and converted into an error.
	KindPanic
)

func (k Kind) String() string {
	switch k {
	case KindWatchdog:
		return "watchdog"
	case KindMaxCycles:
		return "max-cycles"
	case KindDeadline:
		return "deadline"
	case KindCanceled:
		return "canceled"
	case KindBudget:
		return "cycle-budget"
	case KindPanic:
		return "panic"
	default:
		return fmt.Sprintf("kind%d", uint8(k))
	}
}

// EntryState describes one in-flight instruction (a ROB or stream-queue
// head) at snapshot time.
type EntryState struct {
	Seq  uint64 // program-order sequence number
	PC   uint32
	Text string // disassembly
	// IsLoad/IsStore are both false for non-memory instructions.
	IsLoad  bool
	IsStore bool
	// Stream is the memory stream the core believes the access occupies
	// (meaningful only for memory instructions).
	Stream       int
	AddrKnown    bool
	Addr         uint32
	Issued       bool
	Completed    bool
	DispatchedAt uint64
}

func (e *EntryState) describe() string {
	if e == nil {
		return "-"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seq=%d pc=%#x %q", e.Seq, e.PC, e.Text)
	if e.IsLoad || e.IsStore {
		fmt.Fprintf(&b, " stream=%d", e.Stream)
		if e.AddrKnown {
			fmt.Fprintf(&b, " addr=%#x", e.Addr)
		} else {
			b.WriteString(" addr=?")
		}
	}
	fmt.Fprintf(&b, " dispatched@%d issued=%v completed=%v",
		e.DispatchedAt, e.Issued, e.Completed)
	return b.String()
}

// StreamState is one memory stream's queue, port and combining-window
// state at snapshot time.
type StreamState struct {
	Name string
	Len  int // queued accesses
	Cap  int // architectural queue size
	// Ports is the stream's port count; PortsInUse how many the current
	// cycle had consumed when the snapshot was taken.
	Ports      int
	PortsInUse int
	// Combining-window state (CombineLeft == 0 means closed).
	CombineLeft  int
	CombineLine  uint32
	CombineGroup int
	Head         *EntryState
}

// Snapshot is the pipeline state captured when a run fails. All fields are
// plain data so the snapshot survives the death of the Core it came from.
type Snapshot struct {
	Cycle     uint64
	Committed uint64
	// LastCommitCycle is the cycle of the most recent commit (0 when
	// nothing ever committed).
	LastCommitCycle uint64
	ROBLen          int
	ROBCap          int
	ROBHead         *EntryState
	Streams         []StreamState
}

// String renders the full multi-line snapshot block.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d, committed %d (last commit @%d)\n",
		s.Cycle, s.Committed, s.LastCommitCycle)
	fmt.Fprintf(&b, "ROB %d/%d head: %s\n", s.ROBLen, s.ROBCap, s.ROBHead.describe())
	for _, st := range s.Streams {
		fmt.Fprintf(&b, "stream %-6s %d/%d queued, ports %d/%d",
			st.Name, st.Len, st.Cap, st.PortsInUse, st.Ports)
		if st.CombineLeft > 0 {
			fmt.Fprintf(&b, ", combining line=%#x left=%d group=%d",
				st.CombineLine, st.CombineLeft, st.CombineGroup)
		}
		fmt.Fprintf(&b, "\n  head: %s\n", st.Head.describe())
	}
	return b.String()
}

// SimError is the typed failure of one simulation run.
type SimError struct {
	Kind Kind
	// Reason is a one-line human summary of what tripped.
	Reason string
	// PanicValue and Stack are set for KindPanic: the recovered value and
	// the goroutine stack at the panic site.
	PanicValue any
	Stack      string
	// Snapshot is the pipeline state at the moment of failure.
	Snapshot Snapshot
	// Err is the underlying cause, if any (a context error, the legacy
	// budget sentinel); it is exposed through Unwrap for errors.Is/As.
	Err error
}

// Error renders a one-line summary: kind, reason, and where the pipeline
// stood. The full snapshot is available via e.Snapshot.String().
func (e *SimError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s: %s (cycle %d, %d committed",
		e.Kind, e.Reason, e.Snapshot.Cycle, e.Snapshot.Committed)
	if h := e.Snapshot.ROBHead; h != nil {
		fmt.Fprintf(&b, ", ROB head seq=%d pc=%#x", h.Seq, h.PC)
	}
	b.WriteString(")")
	return b.String()
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *SimError) Unwrap() error { return e.Err }
