package workload

func init() {
	register(Workload{
		Name:       "swim",
		PaperName:  "102.swim",
		Kind:       FloatingPoint,
		PaperInsts: "473M",
		Description: "Shallow-water-model stand-in: finite-difference " +
			"updates over three 64x64 double grids (u, v, p; ~96 KB " +
			"working set). Long unrolled FP streams with essentially no " +
			"stack traffic in the steady state — the purest " +
			"bandwidth-bound FP profile, used in Figure 11 to show a " +
			"program where LVC ports barely matter but D-cache ports do.",
		build: buildSwim,
	})
}

func buildSwim(scale float64, seed uint64) string {
	g := newGen()
	steps := scaled(11, scale)
	const dim = 64
	const rowBytes = dim * 8

	g.D("gu:     .space %d", dim*dim*8)
	g.D("gv:     .space %d", dim*dim*8)
	g.D("gp:     .space %d", dim*dim*8)

	g.L("main")
	g.T("la   $s0, gu")
	g.T("la   $s1, gv")
	g.T("la   $s2, gp")
	// Seed all three grids.
	g.T("li   $t0, %d", dim*dim)
	g.T("move $t1, $s0")
	g.T("move $t2, $s1")
	g.T("move $t3, $s2")
	g.T("li   $t4, %d", 1+int32(seed%29)) // initial field values (input data)
	sl := g.label("seed")
	g.L(sl)
	g.T("andi $t5, $t4, 31")
	g.T("cvtif $f0, $t5")
	g.T("fsd  $f0, 0($t1) !nonlocal")
	g.T("addi $t5, $t5, 3")
	g.T("cvtif $f1, $t5")
	g.T("fsd  $f1, 0($t2) !nonlocal")
	g.T("fadd $f2, $f0, $f1")
	g.T("fsd  $f2, 0($t3) !nonlocal")
	g.T("addi $t1, $t1, 8")
	g.T("addi $t2, $t2, 8")
	g.T("addi $t3, $t3, 8")
	g.T("addi $t4, $t4, 7")
	g.T("addi $t0, $t0, -1")
	g.T("bnez $t0, %s", sl)

	// 0.5 constant in f10.
	g.T("li   $t5, 1")
	g.T("cvtif $f10, $t5")
	g.T("li   $t5, 2")
	g.T("cvtif $f11, $t5")
	g.T("fdiv $f10, $f10, $f11")

	g.loop("s3", steps, func() {
		g.T("jal  calc1")
		g.T("jal  calc2")
	})

	// Checksum over gp's diagonal.
	g.T("fsub $f4, $f4, $f4")
	g.T("li   $t0, 0")
	ck := g.label("ck")
	g.L(ck)
	g.T("li   $t1, %d", dim+1)
	g.T("mul  $t2, $t0, $t1")
	g.T("slli $t2, $t2, 3")
	g.T("add  $t2, $s2, $t2")
	g.T("fld  $f5, 0($t2) !nonlocal")
	g.T("fadd $f4, $f4, $f5")
	g.T("addi $t0, $t0, 1")
	g.T("li   $t1, %d", dim)
	g.T("bne  $t0, $t1, %s", ck)
	g.T("cvtfi $t3, $f4")
	g.T("out  $t3")
	g.T("halt")

	stencil := func(name string, dst, srcA, srcB string) {
		// dst[i][j] = 0.5*(srcA[i][j] + 0.5*(srcB[i-1][j]+srcB[i][j+1]))
		// over the interior, flattened into one pointer-walk loop with
		// 2x unrolling.
		g.fnBegin(name, 4, "ra")
		g.T("li   $t0, %d", dim*(dim-2)-2)
		g.T("srli $t0, $t0, 1") // pairs
		g.T("li   $t1, %d", rowBytes+8)
		g.T("add  $t2, %s, $t1", dst)
		g.T("add  $t3, %s, $t1", srcA)
		g.T("add  $t4, %s, $t1", srcB)
		l := g.label(name + "_l")
		g.L(l)
		for u := 0; u < 2; u++ {
			off := u * 8
			g.T("fld  $f1, %d($t3) !nonlocal", off)
			g.T("fld  $f2, %d($t4) !nonlocal", off-rowBytes)
			g.T("fld  $f3, %d($t4) !nonlocal", off+8)
			g.T("fadd $f5, $f2, $f3")
			g.T("fmul $f5, $f5, $f10")
			g.T("fadd $f5, $f5, $f1")
			g.T("fmul $f5, $f5, $f10")
			g.T("fsd  $f5, %d($t2) !nonlocal", off)
		}
		g.T("addi $t2, $t2, 16")
		g.T("addi $t3, $t3, 16")
		g.T("addi $t4, $t4, 16")
		g.T("addi $t0, $t0, -1")
		g.T("bnez $t0, %s", l)
		g.fnEnd(4, "ra")
	}
	stencil("calc1", "$s2", "$s0", "$s1") // p from u, v
	stencil("calc2", "$s0", "$s1", "$s2") // u from v, p

	return g.source()
}
