package workload

func init() {
	register(Workload{
		Name:       "li",
		PaperName:  "130.li",
		Kind:       Integer,
		PaperInsts: "434M",
		Description: "Lisp-interpreter stand-in: the ctak-style tak " +
			"recursion (the paper's input is ctak.lsp) plus recursive " +
			"list walks over heap cons cells. Calibrated for the most " +
			"call-intensive profile in the suite: small frames (3-7 " +
			"words), deep recursion, and a high local share of both " +
			"loads and stores, which makes it bandwidth-hungry on the " +
			"LVC ((2+2) gains >25% over (2+0), Figure 11).",
		build: buildLi,
	})
}

func buildLi(scale float64, seed uint64) string {
	g := newGen()
	takReps := scaled(12, scale)
	listReps := scaled(420, scale)
	// The list stays short enough that the recursion's stack footprint
	// (cells * 3-word frames) fits the 2 KB LVC — the paper reports a
	// >99% LVC hit rate for 130.li, so its live stack is shallow.
	cells := 120

	// Cons-cell heap: car at +0, cdr at +4.
	g.D("cons:   .space %d", cells*8)

	g.L("main")
	// Build a list 0..cells-1: cons[i] = (i, &cons[i+1]), last cdr = 0.
	g.T("la   $s0, cons")
	g.T("move $t0, $s0")
	g.T("li   $t1, %d", int32(seed%23)) // car value base (input data)
	g.T("li   $t2, %d", int32(seed%23)+int32(cells-1))
	bl := g.label("build")
	g.L(bl)
	g.T("sw   $t1, 0($t0) !nonlocal")
	g.T("addi $t3, $t0, 8")
	g.T("sw   $t3, 4($t0) !nonlocal")
	g.T("move $t0, $t3")
	g.T("addi $t1, $t1, 1")
	g.T("bne  $t1, $t2, %s", bl)
	g.T("sw   $t1, 0($t0) !nonlocal")
	g.T("sw   $zero, 4($t0) !nonlocal")

	// checksum in s7
	g.T("li   $s7, 0")

	// tak phase.
	g.loop("s1", takReps, func() {
		g.T("li   $a0, 12")
		g.T("li   $a1, 8")
		g.T("li   $a2, 4")
		g.T("jal  tak")
		g.T("add  $s7, $s7, $v0")
	})

	// list phase: sumlist + revwalk.
	g.loop("s1", listReps, func() {
		g.T("move $a0, $s0")
		g.T("jal  sumlist")
		g.T("add  $s7, $s7, $v0")
		g.T("move $a0, $s0")
		g.T("li   $a1, 0")
		g.T("jal  nthcdr_sum")
		g.T("xor  $s7, $s7, $v0")
	})

	g.T("out  $s7")
	g.T("halt")

	// tak(x,y,z) — the classic call-storm. Frame: 7 words, saves ra and
	// three callee-saved registers, spills two intermediate results to
	// the stack (dense local store→reload pairs).
	g.fnBegin("tak", 7, "ra", "s0", "s1", "s2")
	g.T("slt  $t0, $a1, $a0") // y < x ?
	rec := g.label("tak_rec")
	g.T("bnez $t0, %s", rec)
	g.T("move $v0, $a2")
	g.fnEnd(7, "ra", "s0", "s1", "s2")
	g.L(rec)
	g.T("move $s0, $a0")
	g.T("move $s1, $a1")
	g.T("move $s2, $a2")
	g.T("addi $a0, $s0, -1")
	g.T("move $a1, $s1")
	g.T("move $a2, $s2")
	g.T("jal  tak")
	g.T("sw   $v0, 0($sp) !local")
	g.T("addi $a0, $s1, -1")
	g.T("move $a1, $s2")
	g.T("move $a2, $s0")
	g.T("jal  tak")
	g.T("sw   $v0, 4($sp) !local")
	g.T("addi $a0, $s2, -1")
	g.T("move $a1, $s0")
	g.T("move $a2, $s1")
	g.T("jal  tak")
	g.T("move $a2, $v0")
	g.T("lw   $a0, 0($sp) !local")
	g.T("lw   $a1, 4($sp) !local")
	g.T("jal  tak")
	g.fnEnd(7, "ra", "s0", "s1", "s2")

	// sumlist(p): recursive sum of the cars — one heap load per cell,
	// one tiny frame per cell (3 words). The walk also marks each cell
	// (a GC-style touch), giving the interpreter its heap store traffic.
	g.fnBegin("sumlist", 3, "ra", "s0")
	done := g.label("sum_done")
	g.T("beqz $a0, %s", done)
	g.T("lw   $s0, 0($a0) !nonlocal") // car
	g.T("xori $t0, $s0, 1")
	g.T("sw   $t0, 0($a0) !nonlocal") // mark (flips a tag bit)
	g.T("lw   $a0, 4($a0) !nonlocal") // cdr
	g.T("jal  sumlist")
	g.T("add  $v0, $v0, $s0")
	g.fnEnd(3, "ra", "s0")
	g.L(done)
	g.T("li   $v0, 0")
	g.fnEnd(3, "ra", "s0")

	// nthcdr_sum(p, acc): iterative walk with an *unhinted* access
	// through a pointer into the stack — the ambiguous case of Figure 4:
	// a local passed by reference. (<1% of static memory instructions.)
	g.fnBegin("nthcdr_sum", 4, "ra")
	g.T("sw   $a1, 0($sp) !local") // acc lives in the frame
	g.T("addi $t9, $sp, 0")        // &acc
	walk := g.label("walk")
	wdone := g.label("walk_done")
	g.L(walk)
	g.T("beqz $a0, %s", wdone)
	g.T("lw   $t0, 0($a0) !nonlocal")
	g.T("lw   $t1, 0($t9)") // unhinted: pointer to a local (Figure 4)
	g.T("add  $t1, $t1, $t0")
	g.T("sw   $t1, 0($t9)") // unhinted
	g.T("lw   $a0, 4($a0) !nonlocal")
	g.T("b    %s", walk)
	g.L(wdone)
	g.T("lw   $v0, 0($sp) !local")
	g.fnEnd(4, "ra")

	return g.source()
}
