package workload

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
)

func TestPrngDeterministicAndVaried(t *testing.T) {
	a, b := newPrng(7), newPrng(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same-seed prngs diverge")
		}
	}
	c := newPrng(8)
	same := 0
	for i := 0; i < 100; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
	if p := newPrng(0); p.next() == 0 {
		t.Error("zero seed not remapped")
	}
}

func TestPrngRanges(t *testing.T) {
	p := newPrng(3)
	for i := 0; i < 1000; i++ {
		if v := p.intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn(7) = %d", v)
		}
		if v := p.rangeInt(5, 9); v < 5 || v > 9 {
			t.Fatalf("rangeInt(5,9) = %d", v)
		}
	}
}

func TestGenFunctionFrames(t *testing.T) {
	g := newGen()
	g.L("main")
	g.T("jal  f")
	g.T("out  $v0")
	g.T("halt")
	g.fnBegin("f", 4, "ra", "s0")
	g.T("li   $s0, 9")
	g.T("move $v0, $s0")
	g.fnEnd(4, "ra", "s0")

	prog, err := asm.Assemble("gen.s", g.source())
	if err != nil {
		t.Fatalf("generated source does not assemble: %v\n%s", err, g.source())
	}
	m := emu.New(prog)
	if halted, err := m.Run(1000); err != nil || !halted {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	if len(m.Output) != 1 || m.Output[0] != 9 {
		t.Errorf("output = %v", m.Output)
	}
	// $s0 must be restored (callee-saved) and $sp balanced.
	if m.GPR[16] != 0 {
		t.Errorf("$s0 = %d after return, want 0", m.GPR[16])
	}
}

func TestGenFnBeginPanicsOnOverfullSaveArea(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 3 saves in a 2-word frame")
		}
	}()
	g := newGen()
	g.fnBegin("bad", 2, "ra", "s0", "s1")
}

func TestGenLoop(t *testing.T) {
	g := newGen()
	g.L("main")
	g.T("li   $t0, 0")
	g.loop("s0", 10, func() {
		g.T("addi $t0, $t0, 2")
	})
	g.T("out  $t0")
	g.T("halt")
	prog := asm.MustAssemble("loop.s", g.source())
	m := emu.New(prog)
	m.Run(0)
	if len(m.Output) != 1 || m.Output[0] != 20 {
		t.Errorf("output = %v, want [20]", m.Output)
	}
}

func TestGenLabelsUnique(t *testing.T) {
	g := newGen()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		l := g.label("x")
		if seen[l] {
			t.Fatalf("duplicate label %q", l)
		}
		seen[l] = true
	}
}

func TestGenSourceSections(t *testing.T) {
	g := newGen()
	g.L("main")
	g.T("halt")
	g.D("buf: .space 4")
	src := g.source()
	if !strings.Contains(src, ".text") || !strings.Contains(src, ".data") {
		t.Errorf("source missing sections:\n%s", src)
	}
	ti, di := strings.Index(src, ".text"), strings.Index(src, ".data")
	if ti > di {
		t.Error(".data precedes .text")
	}
}

func TestScaled(t *testing.T) {
	if scaled(100, 0.5) != 50 {
		t.Error("scaled(100, .5)")
	}
	if scaled(3, 0.0001) != 1 {
		t.Error("scaled floor is 1")
	}
	if scaled(10, 2) != 20 {
		t.Error("scaled(10, 2)")
	}
}
