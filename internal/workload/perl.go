package workload

import "fmt"

func init() {
	register(Workload{
		Name:       "perl",
		PaperName:  "134.perl",
		Kind:       Integer,
		PaperInsts: "525M",
		Description: "Script-interpreter stand-in (the paper runs " +
			"scrabbl.pl): string hashing into an associative array, a " +
			"recursive wildcard matcher, and an in-place insertion sort " +
			"over a stack-resident word list. Calibrated for a mixed " +
			"profile: byte-grained global loads, frequent small-frame " +
			"calls, and a moderate local share.",
		build: buildPerl,
	})
}

func buildPerl(scale float64, seed uint64) string {
	g := newGen()
	// The string pool is the program's input text: reseed it per input.
	rng := newPrng(134 ^ seed*0x9E3779B97F4A7C15)
	iters := scaled(2600, scale)
	const nStrings = 32
	const strLen = 24

	// String pool: fixed-length pseudo-words.
	g.D("spool:")
	for i := 0; i < nStrings; i++ {
		bytes := ""
		for j := 0; j < strLen; j++ {
			if j > 0 {
				bytes += ", "
			}
			bytes += fmt.Sprint(97 + rng.intn(26))
		}
		g.D("        .byte %s", bytes)
	}
	g.D("        .align 4")
	g.D("htab:   .space 4096")
	g.D("huse:   .space 8192")

	g.L("main")
	g.T("la   $s0, spool")
	g.T("la   $s1, htab")
	g.T("li   $s7, 0")
	g.loop("s2", iters, func() {
		// Pick a string: idx = iter*7 mod 32.
		g.T("li   $t0, 7")
		g.T("mul  $t0, $s2, $t0")
		g.T("andi $t0, $t0, %d", nStrings-1)
		g.T("li   $t1, %d", strLen)
		g.T("mul  $t1, $t0, $t1")
		g.T("add  $a0, $s0, $t1")
		g.T("jal  hash")
		// Insert into the table and bump the bucket's use counters (the
		// associative-array bookkeeping a scripting runtime does).
		g.T("andi $t2, $v0, 1023")
		g.T("slli $t2, $t2, 2")
		g.T("add  $t2, $s1, $t2")
		g.T("lw   $t3, 0($t2) !nonlocal")
		g.T("add  $t3, $t3, $v0")
		g.T("sw   $t3, 0($t2) !nonlocal")
		g.T("la   $t5, huse")
		g.T("add  $t5, $t5, $t2")
		g.T("sub  $t5, $t5, $s1")
		g.T("lw   $t6, 0($t5) !nonlocal")
		g.T("addi $t6, $t6, 1")
		g.T("sw   $t6, 0($t5) !nonlocal")
		g.T("sw   $v0, 4($t5) !nonlocal")
		g.T("add  $s7, $s7, $v0")
		// Recursive match of the string against itself shifted.
		g.T("move $a1, $a0")
		g.T("li   $a2, %d", strLen-8)
		g.T("jal  match")
		g.T("add  $s7, $s7, $v0")
		// Every 64 iterations sort a scratch list on the stack.
		skip := g.label("nosort")
		g.T("andi $t4, $s2, 63")
		g.T("bnez $t4, %s", skip)
		g.T("move $a0, $s7")
		g.T("jal  sortburst")
		g.T("xor  $s7, $s7, $v0")
		g.L(skip)
	})
	g.T("out  $s7")
	g.T("halt")

	// hash(p): h = h*31 + byte over strLen bytes. Leaf, tiny frame.
	g.fnBegin("hash", 2, "ra")
	g.T("li   $v0, 17")
	g.T("li   $t0, %d", strLen)
	g.T("move $t1, $a0")
	hl := g.label("hl")
	g.L(hl)
	g.T("lbu  $t2, 0($t1) !nonlocal")
	g.T("slli $t3, $v0, 5")
	g.T("sub  $t3, $t3, $v0")
	g.T("add  $v0, $t3, $t2")
	g.T("addi $t1, $t1, 1")
	g.T("addi $t0, $t0, -1")
	g.T("bnez $t0, %s", hl)
	g.fnEnd(2, "ra")

	// match(a, b, n): recursive comparator — one frame per character
	// pair, saving the pointers in the frame (local store/reload).
	g.fnBegin("match", 5, "ra")
	mok := g.label("m_base")
	g.T("blez $a2, %s", mok)
	g.T("sw   $a0, 0($sp) !local")
	g.T("sw   $a1, 4($sp) !local")
	g.T("lbu  $t0, 0($a0) !nonlocal")
	g.T("lbu  $t1, 1($a1) !nonlocal")
	g.T("sub  $t2, $t0, $t1")
	g.T("lw   $a0, 0($sp) !local")
	g.T("lw   $a1, 4($sp) !local")
	g.T("addi $a0, $a0, 1")
	g.T("addi $a1, $a1, 1")
	g.T("addi $a2, $a2, -1")
	g.T("sw   $t2, 8($sp) !local")
	g.T("jal  match")
	g.T("lw   $t2, 8($sp) !local")
	g.T("add  $v0, $v0, $t2")
	g.fnEnd(5, "ra")
	g.L(mok)
	g.T("li   $v0, 0")
	g.fnEnd(5, "ra")

	// sortburst(seed): fills a 12-word list in its frame and insertion-
	// sorts it — dense local traffic with data-dependent reuse.
	g.fnBegin("sortburst", 16, "ra")
	g.T("move $t0, $a0")
	for i := 0; i < 12; i++ {
		g.T("li   $t9, 2654435761")
		g.T("mul  $t0, $t0, $t9")
		g.T("addi $t0, $t0, %d", i+1)
		g.T("srli $t1, $t0, 20")
		g.T("sw   $t1, %d($sp) !local", 4*i)
	}
	// Insertion sort over the 12 slots (runtime loops, $sp-indexed via a
	// moving pointer — these are the <5% of stack references not indexed
	// directly by $sp, §2.2.3).
	g.T("li   $t2, 1") // i
	oi := g.label("sort_i")
	oj := g.label("sort_j")
	ojend := g.label("sort_jend")
	oiend := g.label("sort_iend")
	g.L(oi)
	g.T("li   $t9, 12")
	g.T("bge  $t2, $t9, %s", oiend)
	g.T("slli $t3, $t2, 2")
	g.T("add  $t3, $sp, $t3") // &list[i]
	g.T("lw   $t4, 0($t3) !local")
	g.T("move $t5, $t3")
	g.L(oj)
	g.T("beq  $t5, $sp, %s", ojend)
	g.T("lw   $t6, -4($t5) !local")
	g.T("bge  $t4, $t6, %s", ojend)
	g.T("sw   $t6, 0($t5) !local")
	g.T("addi $t5, $t5, -4")
	g.T("b    %s", oj)
	g.L(ojend)
	g.T("sw   $t4, 0($t5) !local")
	g.T("addi $t2, $t2, 1")
	g.T("b    %s", oi)
	g.L(oiend)
	g.T("lw   $v0, 0($sp) !local")
	g.T("lw   $t7, 44($sp) !local")
	g.T("add  $v0, $v0, $t7")
	g.fnEnd(16, "ra")

	return g.source()
}
