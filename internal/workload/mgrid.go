package workload

func init() {
	register(Workload{
		Name:       "mgrid",
		PaperName:  "107.mgrid",
		Kind:       FloatingPoint,
		PaperInsts: "684M",
		Description: "Multigrid-solver stand-in: 7-point relaxation and " +
			"restriction over a 24x24x24 double-precision grid (~110 KB " +
			"per array). The most load-dominated, least call-intensive " +
			"profile in the suite — essentially no stack traffic, so an " +
			"LVC is pure overhead-free idle silicon for it.",
		build: buildMgrid,
	})
}

func buildMgrid(scale float64, seed uint64) string {
	g := newGen()
	cycles := scaled(6, scale)
	const dim = 24
	const plane = dim * dim
	const planeBytes = plane * 8
	const rowBytes = dim * 8

	g.D("mu:     .space %d", dim*dim*dim*8)
	g.D("mr:     .space %d", dim*dim*dim*8)

	g.L("main")
	g.T("la   $s0, mu")
	g.T("la   $s1, mr")
	// Seed mu.
	g.T("li   $t0, %d", dim*dim*dim)
	g.T("move $t1, $s0")
	g.T("li   $t2, %d", 2+int32(seed%37)) // grid seed (input data)
	sl := g.label("seed")
	g.L(sl)
	g.T("andi $t3, $t2, 15")
	g.T("cvtif $f0, $t3")
	g.T("fsd  $f0, 0($t1) !nonlocal")
	g.T("addi $t1, $t1, 8")
	g.T("addi $t2, $t2, 11")
	g.T("addi $t0, $t0, -1")
	g.T("bnez $t0, %s", sl)

	// 1/8 in f10, 1/2 in f12.
	g.T("li   $t5, 1")
	g.T("cvtif $f10, $t5")
	g.T("li   $t5, 8")
	g.T("cvtif $f11, $t5")
	g.T("fdiv $f10, $f10, $f11")
	g.T("li   $t5, 2")
	g.T("cvtif $f12, $t5")
	g.T("fdiv $f12, $f10, $f12")
	g.T("fmul $f12, $f12, $f11") // 0.5

	g.loop("s3", cycles, func() {
		g.T("jal  relax")   // mr <- smooth(mu)
		g.T("jal  correct") // mu <- mu/2 + mr/2
	})

	// Checksum along the main space diagonal.
	g.T("fsub $f4, $f4, $f4")
	g.T("li   $t0, 1")
	ck := g.label("ck")
	g.L(ck)
	g.T("li   $t1, %d", plane+dim+1)
	g.T("mul  $t2, $t0, $t1")
	g.T("slli $t2, $t2, 3")
	g.T("add  $t2, $s0, $t2")
	g.T("fld  $f5, 0($t2) !nonlocal")
	g.T("fadd $f4, $f4, $f5")
	g.T("addi $t0, $t0, 1")
	g.T("li   $t1, %d", dim-1)
	g.T("bne  $t0, $t1, %s", ck)
	g.T("cvtfi $t3, $f4")
	g.T("out  $t3")
	g.T("halt")

	// relax: mr[c] = (mu[c] + neighbours)/8 over the interior, walking a
	// flat cursor (boundary cells read stale data harmlessly — the
	// traffic pattern, not the numerics, is what matters here, but the
	// result is still deterministic).
	g.fnBegin("relax", 3, "ra")
	g.T("li   $t0, %d", plane*(dim-2))
	g.T("li   $t1, %d", planeBytes)
	g.T("add  $t2, $s0, $t1")
	g.T("add  $t3, $s1, $t1")
	rl := g.label("rl")
	g.L(rl)
	g.T("fld  $f0, 0($t2) !nonlocal")
	g.T("fld  $f1, %d($t2) !nonlocal", -planeBytes)
	g.T("fld  $f2, %d($t2) !nonlocal", planeBytes)
	g.T("fld  $f3, %d($t2) !nonlocal", -rowBytes)
	g.T("fld  $f5, %d($t2) !nonlocal", rowBytes)
	g.T("fld  $f6, -8($t2) !nonlocal")
	g.T("fld  $f7, 8($t2) !nonlocal")
	g.T("fadd $f8, $f1, $f2")
	g.T("fadd $f9, $f3, $f5")
	g.T("fadd $f8, $f8, $f9")
	g.T("fadd $f9, $f6, $f7")
	g.T("fadd $f8, $f8, $f9")
	g.T("fadd $f8, $f8, $f0")
	g.T("fmul $f8, $f8, $f10")
	g.T("fsd  $f8, 0($t3) !nonlocal")
	g.T("addi $t2, $t2, 8")
	g.T("addi $t3, $t3, 8")
	g.T("addi $t0, $t0, -1")
	g.T("bnez $t0, %s", rl)
	g.fnEnd(3, "ra")

	// correct: mu = (mu + mr) / 2 over everything.
	g.fnBegin("correct", 3, "ra")
	g.T("li   $t0, %d", dim*dim*dim)
	g.T("move $t1, $s0")
	g.T("move $t2, $s1")
	cl := g.label("cl")
	g.L(cl)
	g.T("fld  $f0, 0($t1) !nonlocal")
	g.T("fld  $f1, 0($t2) !nonlocal")
	g.T("fadd $f0, $f0, $f1")
	g.T("fmul $f0, $f0, $f12") // average: keeps magnitudes stable
	g.T("fsd  $f0, 0($t1) !nonlocal")
	g.T("addi $t1, $t1, 8")
	g.T("addi $t2, $t2, 8")
	g.T("addi $t0, $t0, -1")
	g.T("bnez $t0, %s", cl)
	g.fnEnd(3, "ra")

	return g.source()
}
