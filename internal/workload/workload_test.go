package workload

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/profile"
)

// testScale keeps workload unit tests fast.
const testScale = 0.05

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d workloads, want 12", len(all))
	}
	if len(Integers()) != 8 {
		t.Errorf("%d integer programs, want 8", len(Integers()))
	}
	if len(Floats()) != 4 {
		t.Errorf("%d fp programs, want 4", len(Floats()))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if w.Name == "" || w.PaperName == "" || w.Description == "" || w.PaperInsts == "" {
			t.Errorf("workload %q has missing metadata", w.Name)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestByName(t *testing.T) {
	if w, err := ByName("li"); err != nil || w.PaperName != "130.li" {
		t.Errorf("ByName(li) = %v, %v", w.PaperName, err)
	}
	if w, err := ByName("147.vortex"); err != nil || w.Name != "vortex" {
		t.Errorf("ByName(147.vortex) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestAllProgramsAssembleAndHalt(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Program(testScale)
			m := emu.New(prog)
			halted, err := m.Run(80_000_000)
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if !halted {
				t.Fatalf("%s did not halt (%d insts)", w.Name, m.InstCount)
			}
			if len(m.Output) == 0 {
				t.Errorf("%s produced no output checksum", w.Name)
			}
			if m.InstCount < 1000 {
				t.Errorf("%s ran only %d instructions", w.Name, m.InstCount)
			}
		})
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for _, w := range All() {
		if w.Source(0.1) != w.Source(0.1) {
			t.Errorf("%s: generation is not deterministic", w.Name)
		}
	}
	// And execution is too.
	w, _ := ByName("compress")
	m1 := emu.New(w.Program(testScale))
	m2 := emu.New(w.Program(testScale))
	m1.Run(0)
	m2.Run(0)
	if len(m1.Output) == 0 || m1.Output[0] != m2.Output[0] {
		t.Error("compress output not reproducible")
	}
}

func TestScaleControlsInstructionCount(t *testing.T) {
	w, _ := ByName("vortex")
	small := emu.New(w.Program(0.02))
	big := emu.New(w.Program(0.08))
	small.Run(0)
	big.Run(0)
	if big.InstCount < 2*small.InstCount {
		t.Errorf("scale 0.08 (%d insts) not ≥2x scale 0.02 (%d insts)",
			big.InstCount, small.InstCount)
	}
}

// profiles caches per-workload profiles for the calibration tests.
var profCache = map[string]*profile.Profile{}

func prof(t *testing.T, name string) *profile.Profile {
	t.Helper()
	if p, ok := profCache[name]; ok {
		return p
	}
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.Run(w.Program(testScale), 0)
	if err != nil {
		t.Fatalf("profile %s: %v", name, err)
	}
	profCache[name] = p
	return p
}

// Calibration: the paper's headline workload characteristics (§2.2.1).

func TestCalibrationVortexIsMostLocal(t *testing.T) {
	v := prof(t, "vortex")
	if f := v.LocalFraction(); f < 0.55 {
		t.Errorf("vortex local fraction = %.2f, want > 0.55 (paper: 71%%)", f)
	}
	for _, name := range []string{"compress", "tomcatv", "swim", "mgrid"} {
		if o := prof(t, name); o.LocalFraction() >= v.LocalFraction() {
			t.Errorf("%s local fraction %.2f >= vortex %.2f", name,
				o.LocalFraction(), v.LocalFraction())
		}
	}
}

func TestCalibrationCompressHasLowLocalShare(t *testing.T) {
	p := prof(t, "compress")
	if f := p.LocalFraction(); f > 0.20 {
		t.Errorf("compress local fraction = %.2f, want <= 0.20 (paper: ~10%%)", f)
	}
}

func TestCalibrationFPProgramsHaveLowLocalShare(t *testing.T) {
	for _, name := range []string{"tomcatv", "swim", "mgrid"} {
		p := prof(t, name)
		if f := p.LocalFraction(); f > 0.25 {
			t.Errorf("%s local fraction = %.2f, want small", name, f)
		}
	}
	// su2cor is the best-interleaved FP program: more local than the rest.
	su := prof(t, "su2cor").LocalFraction()
	if su <= prof(t, "mgrid").LocalFraction() {
		t.Errorf("su2cor (%.2f) should have more local traffic than mgrid", su)
	}
}

func TestCalibrationMemoryFrequencies(t *testing.T) {
	// Loads should be roughly 15-35% of instructions, stores 4-20%
	// (Figure 2's range), for every program.
	for _, w := range All() {
		p := prof(t, w.Name)
		if lf := p.LoadFreq(); lf < 0.10 || lf > 0.42 {
			t.Errorf("%s load frequency = %.2f, outside Figure 2 range", w.Name, lf)
		}
		if sf := p.StoreFreq(); sf < 0.02 || sf > 0.30 {
			t.Errorf("%s store frequency = %.2f, outside Figure 2 range", w.Name, sf)
		}
	}
}

func TestCalibrationLiIsCallHeavy(t *testing.T) {
	li := prof(t, "li")
	liRate := float64(li.Calls) / float64(li.Insts)
	for _, name := range []string{"compress", "tomcatv", "mgrid"} {
		o := prof(t, name)
		rate := float64(o.Calls) / float64(o.Insts)
		if rate >= liRate {
			t.Errorf("%s call rate %.4f >= li %.4f", name, rate, liRate)
		}
	}
	if li.MaxCallDepth < 8 {
		t.Errorf("li max call depth = %d, want deep recursion", li.MaxCallDepth)
	}
}

func TestCalibrationFrameSizes(t *testing.T) {
	// Integer-suite dynamic frames: small on average (paper: ~3 words;
	// we accept < 16), static mean below 32 with a large outlier.
	for _, w := range Integers() {
		p := prof(t, w.Name)
		if p.DynFrames.Total() == 0 {
			t.Errorf("%s allocated no frames", w.Name)
			continue
		}
		// ijpeg's 8x8 kernel legitimately carries a 70-word block
		// buffer; gcc has the widest frame spread in the suite with its
		// 282-word giant on every statement's chain.
		limit := 16.0
		switch w.Name {
		case "ijpeg":
			limit = 80
		case "gcc":
			limit = 48
		}
		if mean := p.DynFrames.Mean(); mean > limit {
			t.Errorf("%s dynamic mean frame = %.1f words, want <= %.0f", w.Name, mean, limit)
		}
	}
	if max := prof(t, "gcc").StaticFrames().Max(); max != 282 {
		t.Errorf("gcc largest static frame = %d words, want the paper's 282", max)
	}
	if max := prof(t, "m88ksim").StaticFrames().Max(); max < 11000 {
		t.Errorf("m88ksim giant frame = %d words, want ~11K (§2.2.3)", max)
	}
}

func TestCalibrationSPIndexedShare(t *testing.T) {
	// Paper: <5% of stack references are not $sp/$fp-indexed. Our suite
	// has a few (ijpeg's buffer walks, perl's sort), but the share must
	// stay small overall.
	var sp, local uint64
	for _, w := range All() {
		p := prof(t, w.Name)
		sp += p.SPIndexedLocal
		local += p.LocalRefs()
	}
	if local == 0 {
		t.Fatal("no local refs at all")
	}
	if frac := float64(sp) / float64(local); frac < 0.80 {
		t.Errorf("sp-indexed share = %.2f of local refs, want > 0.80", frac)
	}
}

func TestCalibrationAmbiguousAccessesRare(t *testing.T) {
	// Paper §2.2.3: <1% of static memory instructions ambiguous; we
	// allow a little more but they must be rare.
	for _, w := range All() {
		p := prof(t, w.Name)
		total := p.HintedMemPCs + p.UnhintedMemPCs
		if total == 0 {
			continue
		}
		if frac := float64(p.UnhintedMemPCs) / float64(total); frac > 0.06 {
			t.Errorf("%s: %.1f%% of static memory instructions unhinted", w.Name, 100*frac)
		}
	}
}

func TestInputSeedsChangeDataNotStructure(t *testing.T) {
	// Different input seeds must change the program's *output* (the data
	// really differs) but not its text segment length or its frame
	// layout — inputs are data, structure is the program.
	for _, name := range []string{"compress", "li", "vortex", "gcc"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pa := w.ProgramSeeded(testScale, 1)
		pb := w.ProgramSeeded(testScale, 7)
		if len(pa.Text) != len(pb.Text) {
			t.Errorf("%s: input seed changed the text segment (%d vs %d insts)",
				name, len(pa.Text), len(pb.Text))
		}
		ma, mb := emu.New(pa), emu.New(pb)
		ma.Run(0)
		mb.Run(0)
		if len(ma.Output) > 0 && len(mb.Output) > 0 && ma.Output[0] == mb.Output[0] {
			t.Errorf("%s: outputs identical across inputs (%d)", name, ma.Output[0])
		}
	}
}

func TestLVCHitRateInputInsensitive(t *testing.T) {
	// Paper §4.2.1: the LVC hit rate is relatively insensitive to input
	// data. Spread across three inputs must stay under 1 percentage
	// point for every integer program.
	for _, w := range Integers() {
		lo, hi := 100.0, 0.0
		for _, seed := range []uint64{1, 7, 23} {
			res, err := profile.SimulateLVC(w.ProgramSeeded(0.15, seed), 2048, 32, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			mr := 100 * res.Stats.MissRate()
			if mr < lo {
				lo = mr
			}
			if mr > hi {
				hi = mr
			}
		}
		if hi-lo > 1.0 {
			t.Errorf("%s: LVC miss rate spread %.2fpp across inputs", w.Name, hi-lo)
		}
	}
}

func TestCalibrationLVCHitRates(t *testing.T) {
	// Figure 6: a 2 KB direct-mapped LVC reaches >99% hit rate for
	// everything except gcc, and gcc must be the worst integer program.
	// Use a larger scale here: one-shot startup work (e.g. m88ksim's
	// loadcore) must amortize as it does at full size.
	worst, worstName := 0.0, ""
	for _, w := range Integers() {
		res, err := profile.SimulateLVC(w.Program(0.3), 2048, 32, 1, 0)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if res.LocalRefs == 0 {
			t.Errorf("%s: no local refs reached the LVC", w.Name)
			continue
		}
		mr := res.Stats.MissRate()
		if mr > worst {
			worst, worstName = mr, w.Name
		}
		if w.Name != "gcc" && mr > 0.01 {
			t.Errorf("%s: 2KB LVC miss rate %.3f%%, want < 1%%", w.Name, 100*mr)
		}
	}
	if worstName != "gcc" {
		t.Errorf("worst 2KB LVC miss rate is %s (%.3f%%), paper says 126.gcc", worstName, 100*worst)
	}
}
