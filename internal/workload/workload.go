// Package workload provides the benchmark programs used to reproduce the
// paper's evaluation.
//
// SPEC95 binaries (compiled with EGCS 1.1b -O3, Table 2) are not
// obtainable, so each of the twelve programs is replaced by a synthetic
// program written for the simulator's ISA and calibrated to the
// characteristics the paper reports for it, because those characteristics —
// not the program semantics — drive the results:
//
//   - the load/store instruction frequencies and the fraction of them that
//     reference the run-time stack (Figure 2),
//   - the dynamic frame-size distribution (Figure 3; dynamic mean ≈ 3
//     words, static mean ≈ 7 words, a 282-word outlier, and m88ksim's two
//     11K-word giants),
//   - call depth and call frequency (bursty save/restore traffic),
//   - data working-set sizes (L1/L2 miss behaviour), and
//   - how well local and non-local accesses interleave (the FP programs
//     interleave poorly, which is why (2+2) ≈ (2+0) for them, §4.3).
//
// Every program is deterministic, halts, and emits a checksum through OUT
// so the timing core can be verified against the functional emulator.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/asm"
)

// Kind distinguishes the integer and floating-point suites.
type Kind uint8

const (
	Integer Kind = iota
	FloatingPoint
)

func (k Kind) String() string {
	if k == FloatingPoint {
		return "fp"
	}
	return "int"
}

// Workload is one benchmark program generator.
type Workload struct {
	// Name is the short name ("go", "li", ...).
	Name string
	// PaperName is the SPEC95 program it stands in for ("099.go", ...).
	PaperName string
	Kind      Kind
	// Description summarizes the synthetic program and what it is
	// calibrated to.
	Description string
	// PaperInsts is the dynamic instruction count the paper reports
	// (Table 2), for the Table 2 reproduction.
	PaperInsts string
	// build generates the program; scale multiplies the dynamic
	// instruction count (1.0 ≈ full experiment size) and seed varies the
	// *input data* (never the program structure — frames, call graph and
	// instruction mix are part of the program, like a SPEC binary).
	build func(scale float64, seed uint64) string
}

// DefaultSeed is the input used by Program (the paper's Table 2 input).
const DefaultSeed = 1

// Program assembles the workload at the given scale with the default
// input. Generation is deterministic.
func (w Workload) Program(scale float64) *asm.Program {
	return w.ProgramSeeded(scale, DefaultSeed)
}

// ProgramSeeded assembles the workload with an alternative input seed:
// the data values change, the program structure does not (used by the
// §4.2.1 input-sensitivity experiment).
func (w Workload) ProgramSeeded(scale float64, seed uint64) *asm.Program {
	if scale <= 0 {
		scale = 1
	}
	return asm.MustAssemble(w.Name+".s", w.build(scale, seed))
}

// ProgramStripped assembles the workload and then discards every
// generator-emitted access-region hint, yielding the program a
// hint-unaware compiler would produce. It is the input the
// analysis.Assign pass re-hints from scratch (the "close the compiler
// loop" ablation).
func (w Workload) ProgramStripped(scale float64) *asm.Program {
	return w.Program(scale).StripHints()
}

// Source returns the generated assembly text at the given scale.
func (w Workload) Source(scale float64) string {
	if scale <= 0 {
		scale = 1
	}
	return w.build(scale, DefaultSeed)
}

var registry []Workload

func register(w Workload) {
	registry = append(registry, w)
}

// All returns every workload: the eight integer programs followed by the
// four floating-point programs, in the paper's order.
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].PaperName < out[j].PaperName
	})
	return out
}

// Integers returns the integer suite in paper order.
func Integers() []Workload { return filter(Integer) }

// Floats returns the floating-point suite in paper order.
func Floats() []Workload { return filter(FloatingPoint) }

func filter(k Kind) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Kind == k {
			out = append(out, w)
		}
	}
	return out
}

// ByName looks a workload up by short name or paper name.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name || w.PaperName == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the short names in paper order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// scaled returns max(1, round(n*scale)).
func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}
