package workload

func init() {
	register(Workload{
		Name:       "tomcatv",
		PaperName:  "101.tomcatv",
		Kind:       FloatingPoint,
		PaperInsts: "549M",
		Description: "Vectorized mesh-generation stand-in: Jacobi-style " +
			"5-point relaxation sweeps over two 64x64 double-precision " +
			"grids (64 KB working set, larger than the L1). Calibrated " +
			"like the paper's FP codes: long stretches of pure global " +
			"FP traffic with stack activity only at (rare) row-function " +
			"boundaries, so local and non-local accesses interleave " +
			"poorly and (2+2) buys little over (2+0) (§4.3).",
		build: buildTomcatv,
	})
}

func buildTomcatv(scale float64, seed uint64) string {
	g := newGen()
	sweeps := scaled(10, scale)
	const dim = 64
	const rowBytes = dim * 8

	g.D("gx:     .space %d", dim*dim*8)
	g.D("gy:     .space %d", dim*dim*8)

	g.L("main")
	// Seed gy with a smooth ramp: gy[i][j] = i + 2*j (as doubles).
	g.T("la   $s0, gx")
	g.T("la   $s1, gy")
	g.T("li   $t0, 0") // i
	seedI := g.label("seed_i")
	seedJ := g.label("seed_j")
	g.L(seedI)
	g.T("li   $t1, 0") // j
	g.L(seedJ)
	g.T("li   $t2, %d", dim)
	g.T("mul  $t3, $t0, $t2")
	g.T("add  $t3, $t3, $t1")
	g.T("slli $t3, $t3, 3")
	g.T("add  $t3, $s1, $t3")
	g.T("slli $t4, $t1, 1")
	g.T("add  $t4, $t4, $t0")
	g.T("addi $t4, $t4, %d", int32(seed%17)) // boundary values (input data)
	g.T("cvtif $f0, $t4")
	g.T("fsd  $f0, 0($t3) !nonlocal")
	g.T("addi $t1, $t1, 1")
	g.T("li   $t2, %d", dim)
	g.T("bne  $t1, $t2, %s", seedJ)
	g.T("addi $t0, $t0, 1")
	g.T("li   $t2, %d", dim)
	g.T("bne  $t0, $t2, %s", seedI)

	// 0.25 constant.
	g.T("li   $t5, 1")
	g.T("cvtif $f10, $t5")
	g.T("li   $t5, 4")
	g.T("cvtif $f11, $t5")
	g.T("fdiv $f10, $f10, $f11") // 0.25

	g.loop("s2", sweeps, func() {
		// One sweep: for each interior row call relaxrow(i), then swap
		// roles by copying back.
		g.T("li   $s3, 1")
		rs := g.label("rows")
		g.L(rs)
		g.T("move $a0, $s3")
		g.T("jal  relaxrow")
		g.T("addi $s3, $s3, 1")
		g.T("li   $t0, %d", dim-1)
		g.T("bne  $s3, $t0, %s", rs)
		g.T("jal  copyback")
	})

	// Checksum: sum of a diagonal stripe.
	g.T("li   $t0, 0")
	g.T("fsub $f4, $f4, $f4") // 0.0
	ck := g.label("ck")
	g.L(ck)
	g.T("li   $t1, %d", dim+1)
	g.T("mul  $t2, $t0, $t1")
	g.T("slli $t2, $t2, 3")
	g.T("add  $t2, $s1, $t2")
	g.T("fld  $f5, 0($t2) !nonlocal")
	g.T("fadd $f4, $f4, $f5")
	g.T("addi $t0, $t0, 1")
	g.T("li   $t1, %d", dim)
	g.T("bne  $t0, $t1, %s", ck)
	g.T("cvtfi $t3, $f4")
	g.T("out  $t3")
	g.T("halt")

	// relaxrow(i): gx[i][j] = 0.25*(gy[i-1][j]+gy[i+1][j]+gy[i][j-1]+
	// gy[i][j+1]) for interior j. Frame 6 words with one FP spill slot
	// (the only stack traffic in the hot phase).
	g.fnBegin("relaxrow", 6, "ra", "s4")
	g.T("li   $t0, %d", dim)
	g.T("mul  $t1, $a0, $t0")
	g.T("slli $t1, $t1, 3")
	g.T("add  $s4, $s1, $t1") // &gy[i][0]
	g.T("add  $t9, $s0, $t1") // &gx[i][0]
	g.T("fsub $f7, $f7, $f7") // row residual
	g.T("li   $t2, 1")        // j
	jl := g.label("relax_j")
	g.L(jl)
	g.T("slli $t3, $t2, 3")
	g.T("add  $t4, $s4, $t3")
	g.T("fld  $f1, %d($t4) !nonlocal", -rowBytes) // north
	g.T("fld  $f2, %d($t4) !nonlocal", rowBytes)  // south
	g.T("fld  $f3, -8($t4) !nonlocal")            // west
	g.T("fld  $f5, 8($t4) !nonlocal")             // east
	g.T("fadd $f6, $f1, $f2")
	g.T("fadd $f8, $f3, $f5")
	g.T("fadd $f6, $f6, $f8")
	g.T("fmul $f6, $f6, $f10")
	g.T("add  $t6, $t9, $t3")
	g.T("fsd  $f6, 0($t6) !nonlocal")
	g.T("fadd $f7, $f7, $f6")
	g.T("addi $t2, $t2, 1")
	g.T("li   $t7, %d", dim-1)
	g.T("bne  $t2, $t7, %s", jl)
	g.T("fsd  $f7, 0($sp) !local") // spill residual
	g.T("fld  $f7, 0($sp) !local")
	g.fnEnd(6, "ra", "s4")

	// copyback: gy <- gx over the interior.
	g.fnBegin("copyback", 3, "ra")
	g.T("li   $t0, %d", dim)
	g.T("li   $t1, %d", dim*(dim-1))
	g.T("slli $t2, $t0, 3")
	g.T("add  $t3, $s0, $t2") // src cursor (skip row 0)
	g.T("add  $t4, $s1, $t2")
	cbl := g.label("cb")
	g.L(cbl)
	g.T("fld  $f0, 0($t3) !nonlocal")
	g.T("fsd  $f0, 0($t4) !nonlocal")
	g.T("addi $t3, $t3, 8")
	g.T("addi $t4, $t4, 8")
	g.T("addi $t1, $t1, -1")
	g.T("bnez $t1, %s", cbl)
	g.fnEnd(3, "ra")

	return g.source()
}
