package workload

import (
	"fmt"
	"strings"
)

// prng is a tiny deterministic xorshift64 generator used to give the
// synthetic programs varied-but-reproducible structure (frame sizes, call
// graphs, data). It is seeded per program, never from the environment.
type prng uint64

func newPrng(seed uint64) *prng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	p := prng(seed)
	return &p
}

func (p *prng) next() uint64 {
	x := uint64(*p)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*p = prng(x)
	return x
}

// intn returns a value in [0, n).
func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}

// rangeInt returns a value in [lo, hi].
func (p *prng) rangeInt(lo, hi int) int {
	return lo + p.intn(hi-lo+1)
}

// gen accumulates an assembly source file.
type gen struct {
	text strings.Builder
	data strings.Builder
	n    int
}

func newGen() *gen { return &gen{} }

// T emits one text-section line.
func (g *gen) T(format string, args ...any) {
	fmt.Fprintf(&g.text, "        "+format+"\n", args...)
}

// L emits a text label.
func (g *gen) L(name string) {
	fmt.Fprintf(&g.text, "%s:\n", name)
}

// D emits one data-section line.
func (g *gen) D(format string, args ...any) {
	fmt.Fprintf(&g.data, format+"\n", args...)
}

// label returns a fresh unique label with the given prefix.
func (g *gen) label(prefix string) string {
	g.n++
	return fmt.Sprintf("%s_%d", prefix, g.n)
}

// source assembles the final program text.
func (g *gen) source() string {
	var b strings.Builder
	b.WriteString("        .text\n        .global main\n")
	b.WriteString(g.text.String())
	if g.data.Len() > 0 {
		b.WriteString("        .data\n")
		b.WriteString(g.data.String())
	}
	return b.String()
}

// fnBegin emits a function label and a standard prologue: allocate
// frameWords words of stack and save the named registers (e.g. "ra", "s0")
// into the top slots, all hinted local. It returns the save-slot offsets
// so fnEnd can mirror them.
func (g *gen) fnBegin(name string, frameWords int, save ...string) {
	if len(save) > frameWords {
		panic(fmt.Sprintf("workload: function %s saves %d regs in %d words", name, len(save), frameWords))
	}
	g.L(name)
	g.T("addi $sp, $sp, %d", -4*frameWords)
	for i, r := range save {
		g.T("sw   $%s, %d($sp) !local", r, 4*(frameWords-1-i))
	}
}

// fnEnd emits the matching epilogue: restore the saved registers, release
// the frame, and return.
func (g *gen) fnEnd(frameWords int, save ...string) {
	for i := len(save) - 1; i >= 0; i-- {
		g.T("lw   $%s, %d($sp) !local", save[i], 4*(frameWords-1-i))
	}
	g.T("addi $sp, $sp, %d", 4*frameWords)
	g.T("ret")
}

// loop emits a counted loop header running body() count times using reg as
// the induction register (counting down to zero). reg must not be
// clobbered by the body.
func (g *gen) loop(reg string, count int, body func()) {
	top := g.label("loop")
	g.T("li   $%s, %d", reg, count)
	g.L(top)
	body()
	g.T("addi $%s, $%s, -1", reg, reg)
	g.T("bnez $%s, %s", reg, top)
}
