package workload

func init() {
	register(Workload{
		Name:       "m88ksim",
		PaperName:  "124.m88ksim",
		Kind:       Integer,
		PaperInsts: "250M",
		Description: "Microprocessor-simulator stand-in: a " +
			"fetch/decode/dispatch interpreter loop over a synthetic " +
			"guest program, with per-opcode handler functions and a " +
			"guest register file in global memory. Includes a " +
			"loadcore()-style startup function with an 11K-word stack " +
			"frame — the paper found exactly two such giants in this " +
			"program (§2.2.3 footnote). Calibrated for a modest local " +
			"share and almost no reuse of LVAQ values (Table 3: 0% " +
			"fast-forwarding gain).",
		build: buildM88ksim,
	})
}

func buildM88ksim(scale float64, seed uint64) string {
	g := newGen()
	steps := scaled(24000, scale)
	const guestInsts = 1024

	g.D("gprog:  .space %d", guestInsts*4) // guest instruction memory
	g.D("gregs:  .space 128")              // 32 guest registers
	g.D("handlers:")
	for i := 0; i < 8; i++ {
		g.D("        .word handler%d", i)
	}

	g.L("main")
	// loadcore: the giant-frame startup (11K words, run once).
	g.T("jal  loadcore")
	// Fill guest program with pseudo-instructions.
	g.T("la   $s0, gprog")
	g.T("move $t0, $s0")
	g.T("li   $t1, %d", guestInsts)
	g.T("li   $t2, %d", 0x1234+int32(seed%89)*257) // guest program seed (input)
	fl := g.label("gfill")
	g.L(fl)
	g.T("li   $t4, 2654435761")
	g.T("mul  $t2, $t2, $t4")
	g.T("addi $t2, $t2, 97")
	g.T("sw   $t2, 0($t0) !nonlocal")
	g.T("addi $t0, $t0, 4")
	g.T("addi $t1, $t1, -1")
	g.T("bnez $t1, %s", fl)

	// Interpreter loop: s1 = guest pc index, s2 = handler table,
	// s3 = guest regfile, s7 = checksum.
	g.T("la   $s2, handlers")
	g.T("la   $s3, gregs")
	g.T("li   $s1, 0")
	g.T("li   $s7, 0")
	g.loop("s4", steps, func() {
		g.T("andi $t0, $s1, %d", guestInsts-1)
		g.T("slli $t0, $t0, 2")
		g.T("add  $t0, $s0, $t0")
		g.T("lw   $t1, 0($t0) !nonlocal") // fetch
		g.T("srli $t2, $t1, 8")
		g.T("andi $t2, $t2, 7") // decode opcode
		g.T("slli $t2, $t2, 2")
		g.T("add  $t2, $s2, $t2")
		g.T("lw   $t3, 0($t2) !nonlocal") // handler pointer
		g.T("move $a0, $t1")
		g.T("jalr $ra, $t3") // dispatch
		g.T("add  $s7, $s7, $v0")
		g.T("addi $s1, $s1, 1")
	})
	g.T("out  $s7")
	g.T("halt")

	// Eight handlers: guest ALU/load/store emulation on the guest
	// register file. Small frames; handlers 0-3 are leaves without
	// frames at all (frame 1 word), 4-7 save a register.
	for i := 0; i < 8; i++ {
		name := "handler" + itoaW(i)
		if i < 4 {
			g.fnBegin(name, 1, "ra")
			g.T("andi $t0, $a0, 124") // guest rd (word aligned)
			g.T("add  $t0, $s3, $t0")
			g.T("lw   $t1, 0($t0) !nonlocal")
			g.T("srli $t2, $a0, %d", 3+i)
			g.T("add  $t1, $t1, $t2")
			g.T("sw   $t1, 0($t0) !nonlocal")
			g.T("move $v0, $t1")
			g.fnEnd(1, "ra")
		} else {
			g.fnBegin(name, 3, "ra", "s5")
			g.T("andi $t0, $a0, 124")
			g.T("add  $t0, $s3, $t0")
			g.T("lw   $s5, 0($t0) !nonlocal")
			g.T("srli $t1, $a0, 16")
			g.T("andi $t1, $t1, 124")
			g.T("add  $t1, $s3, $t1")
			g.T("lw   $t2, 0($t1) !nonlocal")
			g.T("xor  $s5, $s5, $t2")
			g.T("sw   $s5, 0($t1) !nonlocal")
			g.T("move $v0, $s5")
			g.fnEnd(3, "ra", "s5")
		}
	}

	// loadcore: allocates an 11264-word frame (45 KB) and initializes a
	// stripe of it — the Figure 3 outlier. Accesses indexed from $sp.
	const giant = 11264
	g.fnBegin("loadcore", giant, "ra")
	g.T("li   $t0, 0")
	g.T("li   $t1, 256")
	lc := g.label("lc")
	g.L(lc)
	g.T("slli $t2, $t0, 4") // every 16th word
	g.T("add  $t3, $sp, $t2")
	g.T("sw   $t0, 0($t3) !local")
	g.T("lw   $t4, 0($t3) !local")
	g.T("addi $t0, $t0, 1")
	g.T("bne  $t0, $t1, %s", lc)
	g.T("li   $v0, 0")
	g.fnEnd(giant, "ra")

	return g.source()
}
