package workload

func init() {
	register(Workload{
		Name:       "vortex",
		PaperName:  "147.vortex",
		Kind:       Integer,
		PaperInsts: "284M",
		Description: "Object-database stand-in: each transaction runs " +
			"through a stack of layered small procedures (validate → " +
			"lookup → update → log), each saving and restoring many " +
			"registers and passing arguments through the stack. " +
			"Calibrated to the paper's extreme: >60% of loads and >80% " +
			"of stores are local (71% of all references), with bursty " +
			"contiguous save/restore runs — the program that gains most " +
			"from access combining (26% under (3+1), Figure 8).",
		build: buildVortex,
	})
}

func buildVortex(scale float64, seed uint64) string {
	g := newGen()
	transactions := scaled(5500, scale)
	const records = 2048 // 16-word records = 128 KB

	g.D("db:     .space %d", records*64)
	g.D("txlog:  .space 16384")

	g.L("main")
	g.T("la   $s6, db")
	g.T("la   $s5, txlog")
	g.T("li   $s7, %d", int32(seed%1021)) // checksum baseline (input data)
	g.loop("s4", transactions, func() {
		g.T("move $a0, $s4")
		g.T("jal  transaction")
		g.T("add  $s7, $s7, $v0")
	})
	g.T("out  $s7")
	g.T("halt")

	// transaction(id): the top of the call stack. Saves 7 registers —
	// a contiguous burst of local stores at entry and local loads at
	// exit.
	g.fnBegin("transaction", 12, "ra", "s0", "s1", "s2", "s3", "s4", "s5")
	g.T("andi $s0, $a0, %d", records-1) // slot
	g.T("slli $t0, $s0, 6")
	g.T("add  $s1, $s6, $t0") // record address
	// Pass the record pointer and id through the stack (offsets 0 and 4
	// are below the save area).
	g.T("sw   $s1, 0($sp) !local")
	g.T("sw   $a0, 4($sp) !local")
	g.T("move $a0, $s1")
	g.T("jal  validate")
	g.T("move $s2, $v0")
	g.T("lw   $a0, 0($sp) !local")
	g.T("jal  update")
	g.T("add  $s2, $s2, $v0")
	g.T("lw   $a0, 4($sp) !local")
	g.T("move $a1, $s2")
	g.T("jal  logtx")
	g.T("move $v0, $s2")
	g.fnEnd(12, "ra", "s0", "s1", "s2", "s3", "s4", "s5")

	// validate(rec): checks four fields, delegating the checksum of the
	// first two to a leaf.
	g.fnBegin("validate", 10, "ra", "s0", "s1", "s2", "s3")
	g.T("move $s0, $a0")
	g.T("lw   $s1, 0($a0) !nonlocal")
	g.T("lw   $s2, 4($a0) !nonlocal")
	g.T("sw   $s1, 0($sp) !local") // scratch spills
	g.T("sw   $s2, 4($sp) !local")
	g.T("jal  fieldsum")
	g.T("lw   $t0, 0($sp) !local")
	g.T("lw   $t1, 4($sp) !local")
	g.T("add  $v0, $v0, $t0")
	g.T("add  $v0, $v0, $t1")
	g.fnEnd(10, "ra", "s0", "s1", "s2", "s3")

	// fieldsum(rec): leaf with a tiny frame — the most frequent dynamic
	// frame size must stay small (Figure 3).
	g.fnBegin("fieldsum", 2, "ra")
	g.T("lw   $t0, 8($a0) !nonlocal")
	g.T("lw   $t1, 12($a0) !nonlocal")
	g.T("lw   $t2, 16($a0) !nonlocal")
	g.T("lw   $t3, 20($a0) !nonlocal")
	g.T("add  $t0, $t0, $t1")
	g.T("add  $t2, $t2, $t3")
	g.T("add  $v0, $t0, $t2")
	g.fnEnd(2, "ra")

	// update(rec): read-modify-write six fields with intermediate spills.
	g.fnBegin("update", 12, "ra", "s0", "s1", "s2", "s3", "s4")
	g.T("move $s0, $a0")
	for i := 0; i < 6; i++ {
		g.T("lw   $t0, %d($s0) !nonlocal", 4*i)
		g.T("addi $t0, $t0, %d", i+1)
		g.T("sw   $t0, %d($sp) !local", 4*i) // spill
	}
	g.T("li   $s1, 0")
	for i := 0; i < 6; i++ {
		g.T("lw   $t1, %d($sp) !local", 4*i) // reload
		g.T("sw   $t1, %d($s0) !nonlocal", 4*i)
		g.T("add  $s1, $s1, $t1")
	}
	g.T("move $v0, $s1")
	g.fnEnd(12, "ra", "s0", "s1", "s2", "s3", "s4")

	// logtx(id, value): append four words to a circular log.
	g.fnBegin("logtx", 8, "ra", "s0", "s1")
	g.T("andi $t0, $a0, 1023")
	g.T("slli $t0, $t0, 4")
	g.T("add  $t0, $s5, $t0")
	g.T("sw   $a0, 0($t0) !nonlocal")
	g.T("sw   $a1, 4($t0) !nonlocal")
	g.T("sw   $a0, 8($t0) !nonlocal")
	g.T("sw   $a1, 12($t0) !nonlocal")
	g.fnEnd(8, "ra", "s0", "s1")

	return g.source()
}
