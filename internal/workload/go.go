package workload

func init() {
	register(Workload{
		Name:       "go",
		PaperName:  "099.go",
		Kind:       Integer,
		PaperInsts: "541M",
		Description: "Game-tree searcher over a 19x19 board: recursive " +
			"minimax-style search with a leaf evaluator that scans " +
			"neighbourhoods. Calibrated for a compute-heavy mix " +
			"(relatively few memory references), moderate frames and a " +
			"call depth of 4-5 — the profile where an extra cycle of " +
			"cache latency hurts most (Figure 10: 099.go degrades 13.4%).",
		build: buildGo,
	})
}

func buildGo(scale float64, seed uint64) string {
	g := newGen()
	positions := scaled(160, scale)
	const boardWords = 19 * 19

	g.D("board:  .space %d", boardWords*4)
	g.D("hist:   .space 4096") // move history ring (global store traffic)

	g.L("main")
	// Seed the board.
	g.T("la   $s0, board")
	g.T("move $t0, $s0")
	g.T("li   $t1, %d", boardWords)
	g.T("li   $t2, %d", 7+int32(seed%41)) // board seed (input data)
	init := g.label("init")
	g.L(init)
	g.T("andi $t3, $t2, 3")
	g.T("sw   $t3, 0($t0) !nonlocal")
	g.T("addi $t0, $t0, 4")
	g.T("addi $t2, $t2, 13")
	g.T("addi $t1, $t1, -1")
	g.T("bnez $t1, %s", init)

	g.T("li   $s7, 0")
	g.loop("s1", positions, func() {
		g.T("li   $a0, 4")   // search depth
		g.T("move $a1, $s1") // position seed
		g.T("jal  search")
		g.T("add  $s7, $s7, $v0")
	})
	g.T("out  $s7")
	g.T("halt")

	// search(depth, seed): tries 6 moves, evaluates each, recurses on the
	// two best-looking. Frame 9 words with a local move buffer.
	g.fnBegin("search", 9, "ra", "s0", "s1", "s2")
	leaf := g.label("search_leaf")
	g.T("blez $a0, %s", leaf)
	g.T("move $s0, $a0") // depth
	g.T("move $s1, $a1") // seed
	g.T("li   $s2, 0")   // best
	// Try 6 candidate squares; store their scores into the local buffer.
	for i := 0; i < 6; i++ {
		g.T("li   $t0, %d", 37*i+11)
		g.T("mul  $t1, $s1, $t0")
		g.T("addi $t1, $t1, %d", i)
		g.T("li   $t2, %d", boardWords)
		g.T("rem  $t1, $t1, $t2")
		g.T("bgez $t1, search_pos_%d", g.n)
		g.T("add  $t1, $t1, $t2")
		g.L("search_pos_" + itoaW(g.n))
		g.T("move $a0, $t1")
		g.T("jal  evaluate")
		g.T("sw   $v0, %d($sp) !local", 4*i)
		g.T("add  $s2, $s2, $v0")
		// Log the candidate move to the global history ring, as a real
		// searcher would (global store traffic).
		g.T("la   $t4, hist")
		g.T("andi $t5, $s2, 1020")
		g.T("add  $t4, $t4, $t5")
		g.T("sw   $t1, 0($t4) !nonlocal")
		g.n++
	}
	// Recurse twice with reduced depth.
	g.T("addi $a0, $s0, -1")
	g.T("lw   $t0, 0($sp) !local")
	g.T("add  $a1, $s1, $t0")
	g.T("jal  search")
	g.T("add  $s2, $s2, $v0")
	g.T("addi $a0, $s0, -1")
	g.T("lw   $t0, 4($sp) !local")
	g.T("xor  $a1, $s1, $t0")
	g.T("jal  search")
	g.T("add  $v0, $s2, $v0")
	g.fnEnd(9, "ra", "s0", "s1", "s2")
	g.L(leaf)
	g.T("andi $v0, $a1, 255")
	g.fnEnd(9, "ra", "s0", "s1", "s2")

	// evaluate(square): leaf scan of a 5-cell neighbourhood. Tiny frame.
	g.fnBegin("evaluate", 2, "ra")
	g.T("la   $t9, board")
	g.T("slli $t0, $a0, 2")
	g.T("add  $t0, $t9, $t0")
	g.T("lw   $v0, 0($t0) !nonlocal")
	for _, off := range []int{4, -4, 76, -76} { // E, W, S, N neighbours
		skip := g.label("ev_skip")
		addr := 4 * (boardWords - 20) // stay in bounds: clamp via branch
		_ = addr
		g.T("addi $t1, $a0, %d", off/4)
		g.T("bltz $t1, %s", skip)
		g.T("li   $t2, %d", boardWords)
		g.T("bge  $t1, $t2, %s", skip)
		g.T("slli $t1, $t1, 2")
		g.T("add  $t1, $t9, $t1")
		g.T("lw   $t3, 0($t1) !nonlocal")
		g.T("add  $v0, $v0, $t3")
		g.L(skip)
	}
	g.fnEnd(2, "ra")

	return g.source()
}

func itoaW(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
