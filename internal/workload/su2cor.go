package workload

func init() {
	register(Workload{
		Name:       "su2cor",
		PaperName:  "103.su2cor",
		Kind:       FloatingPoint,
		PaperInsts: "676M",
		Description: "Quantum-physics stand-in: blocked complex " +
			"matrix-vector products where every 4-element block goes " +
			"through a real function call that spills FP intermediates " +
			"to its frame. Calibrated as the FP program with the best " +
			"local/non-local interleaving (~20% local) — the one where " +
			"the paper observed the (2+2) configuration slightly *lose* " +
			"to (2+0) from LSQ-forwarding displacement (§4.3).",
		build: buildSu2cor,
	})
}

func buildSu2cor(scale float64, seed uint64) string {
	g := newGen()
	iters := scaled(55, scale)
	const n = 48 // 48x48 complex matrix = 36 KB, vectors 768 B

	g.D("mat:    .space %d", n*n*16) // interleaved re/im doubles
	g.D("vec:    .space %d", n*16)
	g.D("res:    .space %d", n*16)

	g.L("main")
	g.T("la   $s0, mat")
	g.T("la   $s1, vec")
	g.T("la   $s2, res")
	// Seed matrix and vector.
	g.T("li   $t0, %d", n*n)
	g.T("move $t1, $s0")
	g.T("li   $t2, %d", 1+int32(seed%19)) // matrix seed (input data)
	ml := g.label("minit")
	g.L(ml)
	g.T("andi $t3, $t2, 15")
	g.T("cvtif $f0, $t3")
	g.T("fsd  $f0, 0($t1) !nonlocal")
	g.T("addi $t3, $t3, 1")
	g.T("cvtif $f1, $t3")
	g.T("fsd  $f1, 8($t1) !nonlocal")
	g.T("addi $t1, $t1, 16")
	g.T("addi $t2, $t2, 5")
	g.T("addi $t0, $t0, -1")
	g.T("bnez $t0, %s", ml)
	g.T("li   $t0, %d", n)
	g.T("move $t1, $s1")
	g.T("li   $t2, 3")
	vl := g.label("vinit")
	g.L(vl)
	g.T("andi $t3, $t2, 7")
	g.T("cvtif $f0, $t3")
	g.T("fsd  $f0, 0($t1) !nonlocal")
	g.T("fsd  $f0, 8($t1) !nonlocal")
	g.T("addi $t1, $t1, 16")
	g.T("addi $t2, $t2, 3")
	g.T("addi $t0, $t0, -1")
	g.T("bnez $t0, %s", vl)

	// Scale factor 1/(16n) keeps the iterated vector bounded (elements
	// stay O(10) across iterations).
	g.T("li   $t4, 1")
	g.T("cvtif $f12, $t4")
	g.T("li   $t4, %d", n*16)
	g.T("cvtif $f13, $t4")
	g.T("fdiv $f12, $f12, $f13")

	g.loop("s3", iters, func() {
		// res = (mat * vec) / n, row by row with blocked leaf calls.
		g.T("li   $s4, 0") // row
		rl := g.label("row")
		g.L(rl)
		g.T("move $a0, $s4")
		g.T("jal  rowdot")
		g.T("addi $s4, $s4, 1")
		g.T("li   $t0, %d", n)
		g.T("bne  $s4, $t0, %s", rl)
		// vec <- res (normalized), keeping the iteration bounded.
		g.T("li   $t0, %d", n*2)
		g.T("move $t1, $s1")
		g.T("move $t2, $s2")
		cp := g.label("cp")
		g.L(cp)
		g.T("fld  $f0, 0($t2) !nonlocal")
		g.T("fmul $f0, $f0, $f12")
		g.T("fsd  $f0, 0($t1) !nonlocal")
		g.T("addi $t1, $t1, 8")
		g.T("addi $t2, $t2, 8")
		g.T("addi $t0, $t0, -1")
		g.T("bnez $t0, %s", cp)
	})

	// Checksum.
	g.T("fld  $f4, 0($s1) !nonlocal")
	g.T("fld  $f5, 8($s1) !nonlocal")
	g.T("fadd $f4, $f4, $f5")
	g.T("cvtfi $t3, $f4")
	g.T("out  $t3")
	g.T("halt")

	// rowdot(i): complex dot product of matrix row i with vec, processed
	// in 4-element blocks through blockmac, accumulating in the frame
	// (FP spills: fsd/fld local — interleaved with the global stream).
	g.fnBegin("rowdot", 8, "ra", "s5", "s6")
	g.T("li   $t0, %d", n*16)
	g.T("mul  $t1, $a0, $t0")
	g.T("add  $s5, $s0, $t1") // row base
	g.T("slli $t2, $a0, 4")
	g.T("add  $s6, $s2, $t2") // &res[i]
	g.T("fsub $f6, $f6, $f6") // acc re
	g.T("fsub $f7, $f7, $f7") // acc im
	g.T("fsd  $f6, 0($sp) !local")
	g.T("fsd  $f7, 8($sp) !local")
	g.T("li   $t3, %d", n/4) // blocks
	g.T("move $t4, $s5")
	g.T("move $t5, $s1")
	bl := g.label("blk")
	g.L(bl)
	g.T("move $a0, $t4")
	g.T("move $a1, $t5")
	g.T("sw   $t3, 16($sp) !local")
	g.T("sw   $t4, 20($sp) !local") // hmm: pointers preserved in frame
	g.T("jal  blockmac")
	g.T("lw   $t3, 16($sp) !local")
	g.T("lw   $t4, 20($sp) !local")
	g.T("lw   $t5, 20($sp) !local") // recompute vec cursor below
	g.T("fld  $f6, 0($sp) !local")
	g.T("fadd $f6, $f6, $f0")
	g.T("fsd  $f6, 0($sp) !local")
	g.T("fld  $f7, 8($sp) !local")
	g.T("fadd $f7, $f7, $f1")
	g.T("fsd  $f7, 8($sp) !local")
	g.T("sub  $t6, $t4, $s5") // progress in bytes
	g.T("addi $t4, $t4, 64")
	g.T("add  $t5, $s1, $t6")
	g.T("addi $t5, $t5, 64")
	g.T("addi $t3, $t3, -1")
	g.T("bnez $t3, %s", bl)
	g.T("fld  $f6, 0($sp) !local")
	g.T("fld  $f7, 8($sp) !local")
	g.T("fsd  $f6, 0($s6) !nonlocal")
	g.T("fsd  $f7, 8($s6) !nonlocal")
	g.fnEnd(8, "ra", "s5", "s6")

	// blockmac(rowPtr, vecPtr): multiply-accumulate 4 complex elements;
	// returns acc re in f0, im in f1. Leaf, tiny frame.
	g.fnBegin("blockmac", 2, "ra")
	g.T("fsub $f0, $f0, $f0")
	g.T("fsub $f1, $f1, $f1")
	for e := 0; e < 4; e++ {
		off := e * 16
		g.T("fld  $f2, %d($a0) !nonlocal", off)   // a.re
		g.T("fld  $f3, %d($a0) !nonlocal", off+8) // a.im
		g.T("fld  $f4, %d($a1) !nonlocal", off)   // b.re
		g.T("fld  $f5, %d($a1) !nonlocal", off+8) // b.im
		g.T("fmul $f6, $f2, $f4")
		g.T("fmul $f7, $f3, $f5")
		g.T("fsub $f6, $f6, $f7")
		g.T("fadd $f0, $f0, $f6")
		g.T("fmul $f8, $f2, $f5")
		g.T("fmul $f9, $f3, $f4")
		g.T("fadd $f8, $f8, $f9")
		g.T("fadd $f1, $f1, $f8")
	}
	g.fnEnd(2, "ra")

	return g.source()
}
