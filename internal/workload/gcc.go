package workload

import "fmt"

func init() {
	register(Workload{
		Name:       "gcc",
		PaperName:  "126.gcc",
		Kind:       Integer,
		PaperInsts: "220M",
		Description: "Compiler stand-in: a driver iterates over " +
			"\"statements\", each descending a many-function call chain " +
			"(parse → analyze → transform passes) over heap tree nodes. " +
			"Forty generated functions with the suite's widest frame-size " +
			"spread (2..282 words) and the deepest active stack footprint " +
			"— calibrated so gcc has the highest LVC miss rate in the " +
			"suite (Figure 6) and is the one program whose L2 traffic " +
			"grows slightly when the LVC is added (§4.2.1).",
		build: buildGCC,
	})
}

func buildGCC(scale float64, seed uint64) string {
	g := newGen()
	rng := newPrng(126)
	statements := scaled(200, scale)
	const nodes = 8192 // 4-word tree nodes = 128 KB
	const nFuncs = 40

	g.D("tree:   .space %d", nodes*16)

	// Frame-size distribution: mostly small, a long tail, one 282-word
	// outlier (the paper's largest observed frame).
	frames := make([]int, nFuncs)
	for i := range frames {
		switch r := rng.intn(10); {
		case r < 6:
			frames[i] = rng.rangeInt(5, 12)
		case r < 9:
			frames[i] = rng.rangeInt(12, 40)
		default:
			frames[i] = rng.rangeInt(48, 96)
		}
	}
	frames[nFuncs-3] = 282

	g.L("main")
	// Seed the tree: node i holds (value, left=i*2 idx, right=i*2+1 idx,
	// flags).
	g.T("la   $s0, tree")
	g.T("move $t0, $s0")
	g.T("li   $t1, %d", nodes)
	g.T("li   $t2, %d", 3+int32(seed%31)) // tree value seed (input data)
	tl := g.label("tinit")
	g.L(tl)
	g.T("sw   $t2, 0($t0) !nonlocal")
	g.T("sw   $t2, 12($t0) !nonlocal")
	g.T("addi $t0, $t0, 16")
	g.T("addi $t2, $t2, 29")
	g.T("addi $t1, $t1, -1")
	g.T("bnez $t1, %s", tl)

	g.T("li   $s7, 0")
	g.loop("s1", statements, func() {
		g.T("move $a0, $s1")
		g.T("jal  fn0")
		g.T("add  $s7, $s7, $v0")
		g.T("move $a0, $s7")
		g.T("li   $a1, 9") // parse-tree recursion depth
		g.T("jal  walk")
		g.T("xor  $s7, $s7, $v0")
	})
	g.T("out  $s7")
	g.T("halt")

	// Generated pass functions: fn_i does local work, touches tree
	// nodes, and calls 1-2 later functions. The call graph is a DAG
	// (callee index strictly greater), and the total dynamic call count
	// from fn0 is bounded at generation time so the DAG cannot explode.
	callees := make([][]int, nFuncs)
	for i := 0; i < nFuncs-2; i++ {
		// Short forward jumps make the chains deep (~15-20 frames), so
		// the live stack extent regularly exceeds the 2 KB LVC and the
		// direct-mapped cache wraps — the source of gcc's
		// worst-in-suite LVC miss rate (Figure 6).
		jump := func() int {
			span := nFuncs - 1 - i
			if span > 3 {
				span = 3
			}
			return i + 1 + rng.intn(span)
		}
		callees[i] = append(callees[i], jump())
		if rng.intn(10) < 3 {
			callees[i] = append(callees[i], jump())
		}
	}
	// The 282-word giant sits near the bottom of the chain, pushing the
	// deepest frames past the LVC's reach.
	callees[nFuncs-6] = []int{nFuncs - 3}
	callees[nFuncs-3] = []int{nFuncs - 2}
	callCount := func() []int {
		cnt := make([]int, nFuncs)
		for i := nFuncs - 1; i >= 0; i-- {
			cnt[i] = 1
			for _, j := range callees[i] {
				cnt[i] += cnt[j]
			}
		}
		return cnt
	}
	// Trim second callees until one statement costs at most ~300 calls.
	for callCount()[0] > 300 {
		trimmed := false
		for i := 0; i < nFuncs && !trimmed; i++ {
			if len(callees[i]) > 1 {
				callees[i] = callees[i][:1]
				trimmed = true
			}
		}
		if !trimmed {
			break
		}
	}

	for i := 0; i < nFuncs; i++ {
		name := fmt.Sprintf("fn%d", i)
		fw := frames[i]
		g.fnBegin(name, fw, "ra", "s2", "s3")
		g.T("move $s2, $a0")
		// Touch a few local slots (declarations/spills).
		touches := rng.rangeInt(2, 5)
		for t := 0; t < touches; t++ {
			slot := 4 * rng.intn(fw-4)
			g.T("sw   $s2, %d($sp) !local", slot)
			g.T("lw   $t0, %d($sp) !local", slot)
			g.T("add  $s2, $s2, $t0")
		}
		// The giant frame sweeps a stripe of its 282 words — wide local
		// footprint that displaces the LVC.
		if fw == 282 {
			for s := 0; s < fw-8; s += 8 {
				g.T("sw   $s2, %d($sp) !local", 4*s)
			}
			for s := 0; s < fw-8; s += 8 {
				g.T("lw   $t0, %d($sp) !local", 4*s)
				g.T("add  $s2, $s2, $t0")
			}
		}
		// Tree accesses: read the node, follow a child link, update both
		// (a compiler pass reads and rewrites the IR).
		g.T("andi $t1, $s2, %d", nodes-1)
		g.T("slli $t1, $t1, 4")
		g.T("add  $t1, $s0, $t1")
		g.T("lw   $t2, 0($t1) !nonlocal")
		g.T("lw   $t3, 4($t1) !nonlocal")
		g.T("andi $t3, $t3, %d", nodes-1)
		g.T("slli $t3, $t3, 4")
		g.T("add  $t3, $s0, $t3")
		g.T("lw   $t4, 0($t3) !nonlocal")
		g.T("add  $s3, $s2, $t2")
		g.T("add  $s3, $s3, $t4")
		g.T("sw   $s3, 12($t1) !nonlocal")
		g.T("sw   $t2, 8($t3) !nonlocal")
		for cidx, callee := range callees[i] {
			g.T("addi $a0, $s3, %d", cidx)
			g.T("jal  fn%d", callee)
			g.T("add  $s3, $s3, $v0")
		}
		g.T("move $v0, $s3")
		g.fnEnd(fw, "ra", "s2", "s3")
	}

	// walk(seed, depth): binary parse-tree recursion; small frame.
	g.fnBegin("walk", 4, "ra", "s4")
	wdone := g.label("wdone")
	g.T("blez $a1, %s", wdone)
	g.T("move $s4, $a1")
	g.T("andi $t0, $a0, %d", nodes-1)
	g.T("slli $t0, $t0, 4")
	g.T("add  $t0, $s0, $t0")
	g.T("lw   $t1, 0($t0) !nonlocal")
	g.T("sw   $a0, 0($sp) !local")
	g.T("add  $a0, $a0, $t1")
	g.T("addi $a1, $s4, -1")
	g.T("jal  walk")
	g.T("lw   $t2, 0($sp) !local")
	g.T("xor  $a0, $t2, $v0")
	g.T("addi $a1, $s4, -2")
	g.T("jal  walk")
	g.T("addi $v0, $v0, 1")
	g.fnEnd(4, "ra", "s4")
	g.L(wdone)
	g.T("li   $v0, 1")
	g.fnEnd(4, "ra", "s4")

	return g.source()
}
