package workload

func init() {
	register(Workload{
		Name:       "compress",
		PaperName:  "129.compress",
		Kind:       Integer,
		PaperInsts: "293M",
		Description: "LZW-style hash-probe compression loop over a " +
			"pseudo-random input buffer. Calibrated for the lowest local " +
			"share in the suite (~10% of memory references): almost all " +
			"traffic is data-dependent global loads/stores into a 128 KB " +
			"hash table, with only an occasional small-frame flush call.",
		build: buildCompress,
	})
}

func buildCompress(scale float64, seed uint64) string {
	g := newGen()
	iters := scaled(28000, scale)
	// The input buffer scales with the run so that the fill loop never
	// dominates the instruction mix at small scales.
	bufWords := 1024
	for bufWords < int(16384*scale) && bufWords < 16384 {
		bufWords *= 2
	}
	bufBytes := bufWords * 4

	// Data: input buffer, 32K-entry (128 KB) hash table, both
	// zero-initialized and filled at run time.
	g.D("inbuf:  .space 65536")
	g.D("htab:   .space 131072")

	g.L("main")
	// Fill the input buffer with an LCG so byte values are varied.
	g.T("la   $s0, inbuf")
	g.T("li   $s1, %d", bufWords)
	g.T("li   $s2, %d", 12345+int32(seed%97)*1000003) // LCG state (input data)
	g.T("li   $s3, 1103515245")
	fill := g.label("fill")
	g.T("move $t0, $s0")
	g.L(fill)
	g.T("mul  $s2, $s2, $s3")
	g.T("addi $s2, $s2, 12345")
	g.T("sw   $s2, 0($t0) !nonlocal")
	g.T("addi $t0, $t0, 4")
	g.T("addi $s1, $s1, -1")
	g.T("bnez $s1, %s", fill)

	// Compression loop. s4 = hash state/checksum, s5 = iteration counter,
	// s6 = position scrambler, s7 = hash table base.
	g.T("li   $s4, 5381")
	g.T("la   $s7, htab")
	g.T("li   $s5, %d", iters)
	g.T("li   $s6, 0")
	top := g.label("comp")
	g.L(top)
	// pos = (s6 * 131 + 7) mod 65536; c = inbuf[pos]
	g.T("li   $t0, 131")
	g.T("mul  $t1, $s6, $t0")
	g.T("addi $t1, $t1, 7")
	g.T("andi $t1, $t1, %d", bufBytes-1)
	g.T("add  $t2, $s0, $t1")
	g.T("lbu  $t3, 0($t2) !nonlocal")
	g.T("lbu  $t8, 2($t2) !nonlocal") // lookahead byte
	// h = ((h << 5) + h + c) & 32767
	g.T("slli $t4, $s4, 5")
	g.T("add  $t4, $t4, $s4")
	g.T("add  $t4, $t4, $t3")
	g.T("andi $s4, $t4, 32767")
	// probe htab[h], then the collision slot
	g.T("slli $t5, $s4, 2")
	g.T("add  $t5, $s7, $t5")
	g.T("lw   $t6, 0($t5) !nonlocal")
	hit := g.label("hit")
	g.T("beq  $t6, $t3, %s", hit)
	g.T("lw   $t9, 4($t5) !nonlocal")
	g.T("add  $t3, $t3, $t8")
	g.T("add  $t3, $t3, $t9")
	g.T("sw   $t3, 0($t5) !nonlocal")
	g.L(hit)
	// Every 256 iterations flush a table stripe through a real call.
	skip := g.label("skip")
	g.T("andi $t7, $s5, 255")
	g.T("bnez $t7, %s", skip)
	g.T("move $a0, $s4")
	g.T("jal  flush")
	g.T("xor  $s4, $s4, $v0")
	g.L(skip)
	g.T("addi $s6, $s6, 1")
	g.T("addi $s5, $s5, -1")
	g.T("bnez $s5, %s", top)

	g.T("out  $s4")
	g.T("halt")

	// flush: scan 64 hash entries starting at (a0 & 16383), return their
	// xor. Small frame: 3 words (dynamic frames must stay small on
	// average, Figure 3).
	g.fnBegin("flush", 3, "ra", "s0")
	g.T("la   $t0, htab")
	g.T("andi $t1, $a0, 16383")
	g.T("slli $t1, $t1, 2")
	g.T("add  $t0, $t0, $t1")
	g.T("li   $s0, 0")
	g.T("li   $t2, 64")
	floop := g.label("floop")
	g.L(floop)
	g.T("lw   $t3, 0($t0) !nonlocal")
	g.T("xor  $s0, $s0, $t3")
	g.T("addi $t0, $t0, 4")
	g.T("addi $t2, $t2, -1")
	g.T("bnez $t2, %s", floop)
	g.T("move $v0, $s0")
	g.fnEnd(3, "ra", "s0")

	return g.source()
}
