package workload

func init() {
	register(Workload{
		Name:       "ijpeg",
		PaperName:  "132.ijpeg",
		Kind:       Integer,
		PaperInsts: "621M",
		Description: "Image-compression stand-in: 8x8 block transforms. " +
			"Each block is copied from the global image into a 64-word " +
			"local array on the stack, run through two butterfly passes, " +
			"quantized and written back. Calibrated for dense, " +
			"well-interleaved local/global traffic: one of the programs " +
			"where the LVC fast path buys performance no extra D-cache " +
			"port can (§4.4).",
		build: buildIjpeg,
	})
}

func buildIjpeg(scale float64, seed uint64) string {
	g := newGen()
	passes := scaled(16, scale)
	const dim = 96 // 96x96 bytes
	const blocks = dim / 8

	g.D("image:  .space %d", dim*dim)

	g.L("main")
	// Seed the image bytes.
	g.T("la   $s0, image")
	g.T("move $t0, $s0")
	g.T("li   $t1, %d", dim*dim)
	g.T("li   $t2, %d", 11+int32(seed%53)) // pixel seed (input data)
	il := g.label("iinit")
	g.L(il)
	g.T("sb   $t2, 0($t0) !nonlocal")
	g.T("addi $t0, $t0, 1")
	g.T("addi $t2, $t2, 7")
	g.T("addi $t1, $t1, -1")
	g.T("bnez $t1, %s", il)

	g.T("li   $s7, 0")
	g.loop("s1", passes, func() {
		// For every 8x8 block: dct(blockIndex).
		g.T("li   $s2, %d", blocks*blocks)
		bt := g.label("blk")
		g.L(bt)
		g.T("addi $a0, $s2, -1")
		g.T("jal  dct")
		g.T("add  $s7, $s7, $v0")
		g.T("addi $s2, $s2, -1")
		g.T("bnez $s2, %s", bt)
	})
	g.T("out  $s7")
	g.T("halt")

	// dct(blockIndex): 70-word frame holding the 64-word block buffer.
	// The transform is fully unrolled, as a compiler would emit an 8x8
	// kernel, so every local access is a static $sp offset. Phase 1
	// copies the block in (global loads → local stores), phase 2 runs
	// row and column butterflies on the local buffer, phase 3 quantizes
	// and writes back.
	g.fnBegin("dct", 70, "ra", "s3", "s4", "s5")
	g.T("li   $t0, %d", blocks)
	g.T("rem  $t1, $a0, $t0") // bx
	g.T("div  $t2, $a0, $t0") // by
	g.T("slli $t1, $t1, 3")
	g.T("slli $t2, $t2, 3")
	g.T("li   $t3, %d", dim)
	g.T("mul  $t2, $t2, $t3")
	g.T("add  $t4, $t2, $t1")
	g.T("add  $s3, $s0, $t4") // top-left corner of the block

	// Copy in: 8 rows x 8 bytes, unrolled.
	for r := 0; r < 8; r++ {
		for cidx := 0; cidx < 8; cidx++ {
			g.T("lbu  $t8, %d($s3) !nonlocal", r*dim+cidx)
			g.T("sw   $t8, %d($sp) !local", 32*r+4*cidx)
		}
	}

	// Row butterflies with fixed-point scaling, as a real integer DCT
	// does (the arithmetic keeps the instruction mix compute-weighted,
	// like the paper's Figure 2 profile for 132.ijpeg).
	butterfly := func(a, b int) {
		g.T("lw   $t0, %d($sp) !local", a)
		g.T("lw   $t1, %d($sp) !local", b)
		g.T("add  $t2, $t0, $t1")
		g.T("sub  $t3, $t0, $t1")
		g.T("slli $t4, $t2, 2")
		g.T("add  $t2, $t2, $t4")
		g.T("srai $t2, $t2, 2")
		g.T("slli $t5, $t3, 1")
		g.T("add  $t3, $t3, $t5")
		g.T("srai $t3, $t3, 1")
		g.T("xor  $t6, $t2, $t3")
		g.T("andi $t6, $t6, 1")
		g.T("add  $t2, $t2, $t6")
		g.T("sw   $t2, %d($sp) !local", a)
		g.T("sw   $t3, %d($sp) !local", b)
	}
	for r := 0; r < 8; r++ {
		for p := 0; p < 4; p++ {
			butterfly(32*r+4*p, 32*r+4*(7-p))
		}
	}

	// Column butterflies.
	for col := 0; col < 8; col++ {
		for p := 0; p < 4; p++ {
			butterfly(32*p+4*col, 32*(7-p)+4*col)
		}
	}

	// Quantize + write back + checksum.
	g.T("li   $s4, 0")
	for r := 0; r < 8; r++ {
		for cidx := 0; cidx < 8; cidx++ {
			g.T("lw   $t8, %d($sp) !local", 32*r+4*cidx)
			g.T("srai $t8, $t8, 3")
			g.T("add  $s4, $s4, $t8")
			g.T("sb   $t8, %d($s3) !nonlocal", r*dim+cidx)
		}
	}
	g.T("move $v0, $s4")
	g.fnEnd(70, "ra", "s3", "s4", "s5")

	return g.source()
}
