package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestMissThenHit(t *testing.T) {
	tl := New(4, 20)
	local, ready := tl.Lookup(100, isa.StackBase-64)
	if !local {
		t.Error("stack address not local")
	}
	if ready != 120 {
		t.Errorf("miss ready = %d, want 120", ready)
	}
	local, ready = tl.Lookup(130, isa.StackBase-100) // same page
	if !local || ready != 130 {
		t.Errorf("hit = %v,%d", local, ready)
	}
	if tl.Hits != 1 || tl.Misses != 1 {
		t.Errorf("counters = %d/%d", tl.Hits, tl.Misses)
	}
}

func TestAnnotationMatchesRegion(t *testing.T) {
	tl := New(64, 20)
	prop := func(addr uint32) bool {
		local, _ := tl.Lookup(0, addr)
		return local == isa.InStackRegion(addr)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEviction(t *testing.T) {
	tl := New(2, 10)
	a := uint32(0x1000_0000)
	b := uint32(0x2000_0000)
	c := uint32(0x3000_0000)
	tl.Lookup(0, a)
	tl.Lookup(1, b)
	tl.Lookup(2, a) // touch a; b is now LRU
	tl.Lookup(3, c) // evicts b
	misses := tl.Misses
	tl.Lookup(4, a)
	if tl.Misses != misses {
		t.Error("a evicted though recently used")
	}
	tl.Lookup(5, b)
	if tl.Misses != misses+1 {
		t.Error("b not evicted")
	}
}

func TestHitRate(t *testing.T) {
	tl := New(4, 10)
	if tl.HitRate() != 0 {
		t.Error("idle hit rate")
	}
	tl.Lookup(0, 0x1000)
	tl.Lookup(1, 0x1000)
	tl.Lookup(2, 0x1000)
	if got := tl.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("hit rate = %f", got)
	}
}

func TestMinimumCapacity(t *testing.T) {
	tl := New(0, 5)
	tl.Lookup(0, 0x1000)
	tl.Lookup(1, 0x2000)
	tl.Lookup(2, 0x1000)
	if tl.Misses != 3 {
		t.Errorf("1-entry TLB misses = %d, want 3", tl.Misses)
	}
}
