// Package tlb models the run-time verification mechanism the paper
// sketches in §2.1: each TLB entry carries an access-region annotation bit
// (stack vs non-stack), maintained by the run-time system when pages are
// allocated. The verification logic attached to each memory pipeline uses
// the bit to check that an instruction was steered into the correct memory
// access queue; a TLB miss delays the verification (and hence the access)
// by the fill latency.
//
// Since the simulator's address space maps regions by address range, the
// "page table walk" that refills an entry derives the annotation from the
// address itself — exactly what a run-time system that annotates pages at
// allocation would produce.
package tlb

import "repro/internal/isa"

// PageBits is the annotation granularity (4 KB pages).
const PageBits = 12

// TLB is a fully-associative, true-LRU annotation TLB.
type TLB struct {
	entries     []entry
	capacity    int
	missLatency uint64
	tick        uint64

	Hits   uint64
	Misses uint64
}

type entry struct {
	page    uint32
	local   bool
	lruTick uint64
}

// New returns a TLB with the given number of entries and miss (fill)
// latency in cycles.
func New(entries int, missLatency uint64) *TLB {
	if entries < 1 {
		entries = 1
	}
	return &TLB{
		entries:     make([]entry, 0, entries),
		capacity:    entries,
		missLatency: missLatency,
	}
}

// Lookup returns the region annotation for addr and the cycle at which it
// is available (now on a hit, now+missLatency on a miss).
func (t *TLB) Lookup(now uint64, addr uint32) (local bool, ready uint64) {
	page := addr >> PageBits
	t.tick++
	for i := range t.entries {
		if t.entries[i].page == page {
			t.entries[i].lruTick = t.tick
			t.Hits++
			return t.entries[i].local, now
		}
	}
	t.Misses++
	local = isa.InStackRegion(addr)
	e := entry{page: page, local: local, lruTick: t.tick}
	if len(t.entries) < t.capacity {
		t.entries = append(t.entries, e)
	} else {
		victim := 0
		for i := 1; i < len(t.entries); i++ {
			if t.entries[i].lruTick < t.entries[victim].lruTick {
				victim = i
			}
		}
		t.entries[victim] = e
	}
	return local, now + t.missLatency
}

// HitRate returns hits / lookups (0 when idle).
func (t *TLB) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}
