package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
        .text
        .global main
main:
        addi $sp, $sp, -16
        sw   $ra, 12($sp) !local
        li   $t0, 42
        lw   $ra, 12($sp) !local
        addi $sp, $sp, 16
        halt
`)
	if p.Entry != isa.TextBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, isa.TextBase)
	}
	if len(p.Text) != 6 {
		t.Fatalf("text length = %d, want 6", len(p.Text))
	}
	if p.Text[0].Op != isa.ADDI || p.Text[0].Imm != -16 || p.Text[0].Rd != isa.RegSP {
		t.Errorf("inst 0 = %v", p.Text[0])
	}
	if p.Text[1].Op != isa.SW || p.Text[1].Hint != isa.HintLocal || p.Text[1].Rt != isa.RegRA {
		t.Errorf("inst 1 = %v (hint %v)", p.Text[1], p.Text[1].Hint)
	}
	if p.Text[2].Op != isa.ADDI || p.Text[2].Imm != 42 || p.Text[2].Rs != isa.RegZero {
		t.Errorf("li expansion = %v", p.Text[2])
	}
	if p.Text[5].Op != isa.HALT {
		t.Errorf("inst 5 = %v", p.Text[5])
	}
}

func TestBranchOffsets(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:
loop:
        addi $t0, $t0, 1
        bne  $t0, $t1, loop
        beq  $t0, $t1, done
        nop
done:
        halt
`)
	// bne at slot 1 targets slot 0: offset = 0 - 2 = -2.
	if p.Text[1].Imm != -2 {
		t.Errorf("backward branch imm = %d, want -2", p.Text[1].Imm)
	}
	// beq at slot 2 targets slot 4: offset = 4 - 3 = 1.
	if p.Text[2].Imm != 1 {
		t.Errorf("forward branch imm = %d, want 1", p.Text[2].Imm)
	}
}

func TestJumpAbsolute(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:
        jal  f
        halt
f:
        jr   $ra
`)
	fAddr := isa.TextBase + 2*isa.InstBytes
	if uint32(p.Text[0].Imm) != fAddr {
		t.Errorf("jal target = %#x, want %#x", uint32(p.Text[0].Imm), fAddr)
	}
	if got := p.Symbols["f"]; got != fAddr {
		t.Errorf("symbol f = %#x, want %#x", got, fAddr)
	}
}

func TestDataSegment(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   halt
        .data
a:      .word 1, 2, 3
b:      .byte 7
        .align 4
c:      .word a
d:      .space 8
e:      .half 258
        .align 8
pi:     .double 3.5
`)
	if got := p.Symbols["a"]; got != isa.DataBase {
		t.Errorf("a = %#x", got)
	}
	if got := p.Symbols["b"]; got != isa.DataBase+12 {
		t.Errorf("b = %#x", got)
	}
	if got := p.Symbols["c"]; got != isa.DataBase+16 {
		t.Errorf("c = %#x (alignment)", got)
	}
	if got := p.Symbols["d"]; got != isa.DataBase+20 {
		t.Errorf("d = %#x", got)
	}
	if got := p.Symbols["e"]; got != isa.DataBase+28 {
		t.Errorf("e = %#x", got)
	}
	// .word a stores the address of a.
	off := p.Symbols["c"] - isa.DataBase
	v := uint32(p.Data[off]) | uint32(p.Data[off+1])<<8 | uint32(p.Data[off+2])<<16 | uint32(p.Data[off+3])<<24
	if v != isa.DataBase {
		t.Errorf(".word a = %#x, want %#x", v, isa.DataBase)
	}
	// .double 3.5 = 0x400C000000000000.
	off = p.Symbols["pi"] - isa.DataBase
	if p.Data[off+7] != 0x40 || p.Data[off+6] != 0x0C {
		t.Errorf(".double bytes = % x", p.Data[off:off+8])
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:
        move $t0, $t1
        move $f0, $f1
        b    end
        beqz $t0, end
        bnez $t0, end
        subi $sp, $sp, 8
        ret
end:    halt
`)
	if p.Text[0].Op != isa.ADDI || p.Text[0].Rs != isa.GPR(9) {
		t.Errorf("move gpr = %v", p.Text[0])
	}
	if p.Text[1].Op != isa.FMOV {
		t.Errorf("move fpr = %v", p.Text[1])
	}
	if p.Text[2].Op != isa.BEQ || p.Text[2].Rs != isa.RegZero || p.Text[2].Rt != isa.RegZero {
		t.Errorf("b = %v", p.Text[2])
	}
	if p.Text[3].Op != isa.BEQ || p.Text[3].Rt != isa.RegZero {
		t.Errorf("beqz = %v", p.Text[3])
	}
	if p.Text[4].Op != isa.BNE {
		t.Errorf("bnez = %v", p.Text[4])
	}
	if p.Text[5].Op != isa.ADDI || p.Text[5].Imm != -8 {
		t.Errorf("subi = %v", p.Text[5])
	}
	if p.Text[6].Op != isa.JR || p.Text[6].Rs != isa.RegRA {
		t.Errorf("ret = %v", p.Text[6])
	}
}

func TestLaResolvesLabels(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:
        la $t0, buf
        halt
        .data
        .space 16
buf:    .word 0
`)
	if uint32(p.Text[0].Imm) != isa.DataBase+16 {
		t.Errorf("la imm = %#x, want %#x", uint32(p.Text[0].Imm), isa.DataBase+16)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "\t.text\nmain:\n\tfrob $t0, $t1\n",
		"unknown register":  "\t.text\nmain:\n\tadd $t0, $q1, $t2\n",
		"operand count":     "\t.text\nmain:\n\tadd $t0, $t1\n",
		"undefined branch":  "\t.text\nmain:\n\tbeq $t0, $t1, nowhere\n",
		"duplicate label":   "\t.text\nmain:\nmain:\n\thalt\n",
		"bad directive":     "\t.text\n\t.frobnicate 3\n",
		"data outside":      "\t.text\n\t.word 3\n",
		"inst outside text": "\t.data\n\tadd $t0, $t1, $t2\n",
		"bad mem operand":   "\t.text\nmain:\n\tlw $t0, $t1\n",
		"undefined symbol":  "\t.text\nmain:\n\tla $t0, missing\n",
	}
	for name, src := range cases {
		if _, err := Assemble("bad.s", src); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("lines.s", "\t.text\nmain:\n\thalt\n\tfrob $t0\n")
	if err == nil || !strings.Contains(err.Error(), "lines.s:4") {
		t.Errorf("error %v does not name line 4", err)
	}
}

func TestComments(t *testing.T) {
	p := mustAssemble(t, `
        .text   # section
main:   halt    # stop here
        # full-line comment
`)
	if len(p.Text) != 1 {
		t.Errorf("text length = %d, want 1", len(p.Text))
	}
}

func TestInstAt(t *testing.T) {
	p := mustAssemble(t, "\t.text\nmain:\n\tnop\n\thalt\n")
	if in, ok := p.InstAt(isa.TextBase); !ok || in.Op != isa.NOP {
		t.Errorf("InstAt(base) = %v,%v", in, ok)
	}
	if in, ok := p.InstAt(isa.TextBase + 4); !ok || in.Op != isa.HALT {
		t.Errorf("InstAt(base+4) = %v,%v", in, ok)
	}
	if _, ok := p.InstAt(isa.TextBase + 8); ok {
		t.Error("InstAt past end succeeded")
	}
	if _, ok := p.InstAt(isa.TextBase + 2); ok {
		t.Error("InstAt misaligned succeeded")
	}
	if _, ok := p.InstAt(isa.TextBase - 4); ok {
		t.Error("InstAt below base succeeded")
	}
}

func TestGlobalEntry(t *testing.T) {
	p := mustAssemble(t, `
        .text
        .global start
helper: jr $ra
start:  halt
`)
	if p.Entry != isa.TextBase+isa.InstBytes {
		t.Errorf("entry = %#x, want start", p.Entry)
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	p := mustAssemble(t, "\t.text\nmain:\n\tnop\nf:\n\thalt\n")
	dis := p.Disassemble()
	if !strings.Contains(dis, "main:") || !strings.Contains(dis, "f:") || !strings.Contains(dis, "halt") {
		t.Errorf("disassembly missing pieces:\n%s", dis)
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	p := mustAssemble(t, "\t.text\na: b: c:\n\thalt\n")
	if p.Symbols["a"] != p.Symbols["b"] || p.Symbols["b"] != p.Symbols["c"] {
		t.Error("stacked labels differ")
	}
}

func TestHexAndNegativeImmediates(t *testing.T) {
	p := mustAssemble(t, "\t.text\nmain:\n\tli $t0, 0xFF\n\tli $t1, -2147483648\n\thalt\n")
	if p.Text[0].Imm != 255 {
		t.Errorf("hex imm = %d", p.Text[0].Imm)
	}
	if p.Text[1].Imm != -2147483648 {
		t.Errorf("min imm = %d", p.Text[1].Imm)
	}
}

func TestSymbolLookup(t *testing.T) {
	p := mustAssemble(t, "\t.text\nmain:\n\thalt\n")
	if _, err := p.Symbol("main"); err != nil {
		t.Errorf("Symbol(main): %v", err)
	}
	if _, err := p.Symbol("nope"); err == nil {
		t.Error("Symbol(nope) succeeded")
	}
}
