package asm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble assembles source into a Program. name is used in error messages
// and stored in the Program.
func Assemble(name, source string) (*Program, error) {
	a := &assembler{
		name:    name,
		symbols: make(map[string]uint32),
	}
	lines := strings.Split(source, "\n")

	// Pass 1: parse every line, expand pseudo-instructions structurally,
	// assign addresses to labels.
	for i, raw := range lines {
		if err := a.scanLine(i+1, raw); err != nil {
			a.errs = append(a.errs, err)
		}
	}
	// Pass 2: encode instructions and data now that all labels are known.
	for _, st := range a.stmts {
		if err := a.emit(st); err != nil {
			a.errs = append(a.errs, err)
		}
	}
	if len(a.errs) > 0 {
		return nil, errors.Join(a.errs...)
	}

	p := &Program{
		Name:     name,
		TextBase: isa.TextBase,
		Text:     a.text,
		DataBase: isa.DataBase,
		Data:     a.data,
		Symbols:  a.symbols,
	}
	entry := isa.TextBase
	if addr, ok := a.symbols[a.global]; ok && a.global != "" {
		entry = addr
	} else if addr, ok := a.symbols["main"]; ok {
		entry = addr
	}
	p.Entry = entry
	return p, nil
}

// MustAssemble is Assemble for known-good (generated) sources; it panics
// on error.
func MustAssemble(name, source string) *Program {
	p, err := Assemble(name, source)
	if err != nil {
		panic(fmt.Sprintf("asm: %s: %v", name, err))
	}
	return p
}

type section uint8

const (
	secText section = iota
	secData
)

// stmt is one parsed source statement carried from pass 1 to pass 2.
type stmt struct {
	line      int
	mnemonic  string   // lowercase opcode or pseudo-op name ("" for data)
	operands  []string // comma-split operand fields
	hint      isa.Hint
	addr      uint32 // assigned address (text) or data offset (data)
	directive string // nonempty for data-emitting directives
	args      []string
}

type assembler struct {
	name    string
	errs    []error
	symbols map[string]uint32
	global  string

	sec     section
	textPos uint32 // next instruction slot index
	dataPos uint32 // next data offset in bytes

	stmts []stmt
	text  []isa.Inst
	data  []byte
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", a.name, line, fmt.Sprintf(format, args...))
}

// scanLine handles pass 1 for a single source line.
func (a *assembler) scanLine(line int, raw string) error {
	if i := strings.IndexByte(raw, '#'); i >= 0 {
		raw = raw[:i]
	}
	raw = strings.TrimSpace(raw)

	// Leading labels (possibly several on one line).
	for {
		i := strings.IndexByte(raw, ':')
		if i < 0 {
			break
		}
		label := strings.TrimSpace(raw[:i])
		if !isIdent(label) {
			break
		}
		if _, dup := a.symbols[label]; dup {
			return a.errf(line, "duplicate label %q", label)
		}
		a.symbols[label] = a.here()
		raw = strings.TrimSpace(raw[i+1:])
	}
	if raw == "" {
		return nil
	}

	if strings.HasPrefix(raw, ".") {
		return a.scanDirective(line, raw)
	}
	if a.sec != secText {
		return a.errf(line, "instruction outside .text: %q", raw)
	}

	mnemonic, rest, _ := strings.Cut(raw, " ")
	mnemonic = strings.ToLower(mnemonic)
	hint := isa.HintNone
	rest = strings.TrimSpace(rest)
	if cut, ok := strings.CutSuffix(rest, "!local"); ok {
		hint, rest = isa.HintLocal, strings.TrimSpace(cut)
	} else if cut, ok := strings.CutSuffix(rest, "!nonlocal"); ok {
		hint, rest = isa.HintNonLocal, strings.TrimSpace(cut)
	}
	var operands []string
	if rest != "" {
		operands = strings.Split(rest, ",")
		for i := range operands {
			operands[i] = strings.TrimSpace(operands[i])
		}
	}

	st := stmt{line: line, mnemonic: mnemonic, operands: operands, hint: hint,
		addr: isa.TextBase + a.textPos*isa.InstBytes}
	a.stmts = append(a.stmts, st)
	a.textPos++ // every instruction (incl. pseudo) occupies exactly one slot
	return nil
}

// here returns the address a label defined at the current position binds to.
func (a *assembler) here() uint32 {
	if a.sec == secText {
		return isa.TextBase + a.textPos*isa.InstBytes
	}
	return isa.DataBase + a.dataPos
}

func (a *assembler) scanDirective(line int, raw string) error {
	name, rest, _ := strings.Cut(raw, " ")
	rest = strings.TrimSpace(rest)
	var args []string
	if rest != "" {
		args = strings.Split(rest, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}
	switch name {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".global", ".globl":
		if len(args) != 1 {
			return a.errf(line, "%s needs one symbol", name)
		}
		a.global = args[0]
	case ".align":
		if a.sec != secData || len(args) != 1 {
			return a.errf(line, ".align needs one argument and a .data section")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return a.errf(line, ".align argument must be a positive power of two")
		}
		a.dataPos = (a.dataPos + uint32(n) - 1) &^ (uint32(n) - 1)
	case ".space":
		if a.sec != secData || len(args) != 1 {
			return a.errf(line, ".space needs one argument and a .data section")
		}
		n, err := strconv.ParseUint(args[0], 0, 32)
		if err != nil {
			return a.errf(line, "bad .space size %q", args[0])
		}
		a.stmts = append(a.stmts, stmt{line: line, directive: ".space", args: args, addr: a.dataPos})
		a.dataPos += uint32(n)
	case ".byte", ".half", ".word", ".float", ".double":
		if a.sec != secData {
			return a.errf(line, "%s outside .data", name)
		}
		// Data is emitted packed: no implicit alignment, so that labels
		// (which bind before the directive is seen) always match the data
		// position. Use an explicit .align directive where needed.
		size := map[string]uint32{".byte": 1, ".half": 2, ".word": 4, ".float": 4, ".double": 8}[name]
		a.stmts = append(a.stmts, stmt{line: line, directive: name, args: args, addr: a.dataPos})
		a.dataPos += size * uint32(len(args))
	default:
		return a.errf(line, "unknown directive %s", name)
	}
	return nil
}

// emit handles pass 2 for a single statement.
func (a *assembler) emit(st stmt) error {
	if st.directive != "" {
		return a.emitData(st)
	}
	in, err := a.encodeInst(st)
	if err != nil {
		return err
	}
	in.Hint = st.hint
	a.text = append(a.text, in)
	return nil
}

func (a *assembler) emitData(st stmt) error {
	// Pad with zeros up to the statement's assigned offset (alignment).
	for uint32(len(a.data)) < st.addr {
		a.data = append(a.data, 0)
	}
	switch st.directive {
	case ".space":
		n, _ := strconv.ParseUint(st.args[0], 0, 32)
		a.data = append(a.data, make([]byte, n)...)
	case ".byte", ".half", ".word":
		size := map[string]int{".byte": 1, ".half": 2, ".word": 4}[st.directive]
		for _, arg := range st.args {
			v, err := a.resolveValue(st.line, arg)
			if err != nil {
				return err
			}
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(v))
			a.data = append(a.data, buf[:size]...)
		}
	case ".float":
		for _, arg := range st.args {
			f, err := strconv.ParseFloat(arg, 32)
			if err != nil {
				return a.errf(st.line, "bad float %q", arg)
			}
			a.data = binary.LittleEndian.AppendUint32(a.data, math.Float32bits(float32(f)))
		}
	case ".double":
		for _, arg := range st.args {
			f, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return a.errf(st.line, "bad double %q", arg)
			}
			a.data = binary.LittleEndian.AppendUint64(a.data, math.Float64bits(f))
		}
	}
	return nil
}

// resolveValue resolves an integer literal or label reference.
func (a *assembler) resolveValue(line int, s string) (int32, error) {
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		if v < math.MinInt32 || v > math.MaxUint32 {
			return 0, a.errf(line, "value %s out of 32-bit range", s)
		}
		return int32(uint32(v)), nil
	}
	if addr, ok := a.symbols[s]; ok {
		return int32(addr), nil
	}
	return 0, a.errf(line, "undefined symbol or bad value %q", s)
}

func (a *assembler) reg(line int, s string) (isa.Reg, error) {
	name, ok := strings.CutPrefix(s, "$")
	if !ok {
		return 0, a.errf(line, "expected register, got %q", s)
	}
	r, ok := isa.RegByName(name)
	if !ok {
		return 0, a.errf(line, "unknown register %q", s)
	}
	return r, nil
}

// memOperand parses "imm(reg)".
func (a *assembler) memOperand(line int, s string) (int32, isa.Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf(line, "expected imm(reg), got %q", s)
	}
	imm := int32(0)
	if offs := strings.TrimSpace(s[:open]); offs != "" {
		v, err := a.resolveValue(line, offs)
		if err != nil {
			return 0, 0, err
		}
		imm = v
	}
	r, err := a.reg(line, strings.TrimSpace(s[open+1:len(s)-1]))
	return imm, r, err
}

func (a *assembler) branchOffset(line int, target string, pc uint32) (int32, error) {
	addr, ok := a.symbols[target]
	if !ok {
		v, err := strconv.ParseInt(target, 0, 32)
		if err != nil {
			return 0, a.errf(line, "undefined branch target %q", target)
		}
		return int32(v), nil // raw slot offset, mostly for tests
	}
	return (int32(addr) - int32(pc+isa.InstBytes)) / isa.InstBytes, nil
}

func (a *assembler) wantOperands(st stmt, n int) error {
	if len(st.operands) != n {
		return a.errf(st.line, "%s expects %d operands, got %d", st.mnemonic, n, len(st.operands))
	}
	return nil
}

func (a *assembler) encodeInst(st stmt) (isa.Inst, error) {
	// Pseudo-instructions first.
	switch st.mnemonic {
	case "li", "la":
		if err := a.wantOperands(st, 2); err != nil {
			return isa.Inst{}, err
		}
		rd, err := a.reg(st.line, st.operands[0])
		if err != nil {
			return isa.Inst{}, err
		}
		v, err := a.resolveValue(st.line, st.operands[1])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.ADDI, Rd: rd, Rs: isa.RegZero, Imm: v}, nil
	case "move":
		if err := a.wantOperands(st, 2); err != nil {
			return isa.Inst{}, err
		}
		rd, err := a.reg(st.line, st.operands[0])
		if err != nil {
			return isa.Inst{}, err
		}
		rs, err := a.reg(st.line, st.operands[1])
		if err != nil {
			return isa.Inst{}, err
		}
		if rd.IsFP() || rs.IsFP() {
			return isa.Inst{Op: isa.FMOV, Rd: rd, Rs: rs}, nil
		}
		return isa.Inst{Op: isa.ADDI, Rd: rd, Rs: rs, Imm: 0}, nil
	case "b":
		if err := a.wantOperands(st, 1); err != nil {
			return isa.Inst{}, err
		}
		st.mnemonic, st.operands = "beq", []string{"$zero", "$zero", st.operands[0]}
	case "beqz":
		if err := a.wantOperands(st, 2); err != nil {
			return isa.Inst{}, err
		}
		st.mnemonic, st.operands = "beq", []string{st.operands[0], "$zero", st.operands[1]}
	case "bnez":
		if err := a.wantOperands(st, 2); err != nil {
			return isa.Inst{}, err
		}
		st.mnemonic, st.operands = "bne", []string{st.operands[0], "$zero", st.operands[1]}
	case "ret":
		st.mnemonic, st.operands = "jr", []string{"$ra"}
	case "subi":
		if err := a.wantOperands(st, 3); err != nil {
			return isa.Inst{}, err
		}
		v, err := a.resolveValue(st.line, st.operands[2])
		if err != nil {
			return isa.Inst{}, err
		}
		st.mnemonic = "addi"
		st.operands[2] = strconv.FormatInt(int64(-v), 10)
	}

	op, ok := isa.OpByName(st.mnemonic)
	if !ok {
		return isa.Inst{}, a.errf(st.line, "unknown mnemonic %q", st.mnemonic)
	}
	info := op.Info()
	in := isa.Inst{Op: op}
	var err error
	switch info.Fmt {
	case isa.FmtNone:
		err = a.wantOperands(st, 0)
	case isa.FmtR:
		if err = a.wantOperands(st, 3); err == nil {
			if in.Rd, err = a.reg(st.line, st.operands[0]); err == nil {
				if in.Rs, err = a.reg(st.line, st.operands[1]); err == nil {
					in.Rt, err = a.reg(st.line, st.operands[2])
				}
			}
		}
	case isa.FmtR2, isa.FmtJALR:
		if err = a.wantOperands(st, 2); err == nil {
			if in.Rd, err = a.reg(st.line, st.operands[0]); err == nil {
				in.Rs, err = a.reg(st.line, st.operands[1])
			}
		}
	case isa.FmtI:
		if err = a.wantOperands(st, 3); err == nil {
			if in.Rd, err = a.reg(st.line, st.operands[0]); err == nil {
				if in.Rs, err = a.reg(st.line, st.operands[1]); err == nil {
					in.Imm, err = a.resolveValue(st.line, st.operands[2])
				}
			}
		}
	case isa.FmtLUI:
		if err = a.wantOperands(st, 2); err == nil {
			if in.Rd, err = a.reg(st.line, st.operands[0]); err == nil {
				in.Imm, err = a.resolveValue(st.line, st.operands[1])
			}
		}
	case isa.FmtMem:
		if err = a.wantOperands(st, 2); err == nil {
			if in.Rd, err = a.reg(st.line, st.operands[0]); err == nil {
				in.Imm, in.Rs, err = a.memOperand(st.line, st.operands[1])
			}
		}
	case isa.FmtMemS:
		if err = a.wantOperands(st, 2); err == nil {
			if in.Rt, err = a.reg(st.line, st.operands[0]); err == nil {
				in.Imm, in.Rs, err = a.memOperand(st.line, st.operands[1])
			}
		}
	case isa.FmtBr:
		if err = a.wantOperands(st, 3); err == nil {
			if in.Rs, err = a.reg(st.line, st.operands[0]); err == nil {
				if in.Rt, err = a.reg(st.line, st.operands[1]); err == nil {
					in.Imm, err = a.branchOffset(st.line, st.operands[2], st.addr)
				}
			}
		}
	case isa.FmtBrZ:
		if err = a.wantOperands(st, 2); err == nil {
			if in.Rs, err = a.reg(st.line, st.operands[0]); err == nil {
				in.Imm, err = a.branchOffset(st.line, st.operands[1], st.addr)
			}
		}
	case isa.FmtJ:
		if err = a.wantOperands(st, 1); err == nil {
			in.Imm, err = a.resolveValue(st.line, st.operands[0])
		}
	case isa.FmtJR, isa.FmtOut:
		if err = a.wantOperands(st, 1); err == nil {
			in.Rs, err = a.reg(st.line, st.operands[0])
		}
	default:
		err = a.errf(st.line, "unhandled format for %s", st.mnemonic)
	}
	return in, err
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
