// Package asm implements a two-pass assembler for the simulator's ISA and
// the loadable Program image it produces.
//
// Source syntax (MIPS-flavoured):
//
//	        .text
//	        .global main
//	main:   addi  $sp, $sp, -16
//	        sw    $ra, 12($sp) !local
//	        li    $t0, 42
//	        la    $t1, table
//	        lw    $t2, 0($t1) !nonlocal
//	        jal   helper
//	        lw    $ra, 12($sp) !local
//	        addi  $sp, $sp, 16
//	        jr    $ra
//	        .data
//	table:  .word 1, 2, 3, end
//	buf:    .space 64
//	pi:     .double 3.14159
//
// `#` starts a comment. A trailing `!local` / `!nonlocal` on a memory
// instruction sets the compiler access-region hint (paper §2.2.3).
package asm

import (
	"fmt"
	"repro/internal/isa"
)

// Program is a loadable program image: an assembled text segment, an
// initialized data segment and the symbol table.
type Program struct {
	// Name identifies the program (for reports).
	Name string
	// Entry is the address execution starts at.
	Entry uint32
	// TextBase is the address of Text[0]; instruction i lives at
	// TextBase + i*isa.InstBytes.
	TextBase uint32
	// Text is the decoded text segment.
	Text []isa.Inst
	// DataBase is the load address of Data.
	DataBase uint32
	// Data is the initialized data segment image.
	Data []byte
	// BSSBytes is the size of the zero-initialized region that follows
	// Data in memory.
	BSSBytes uint32
	// Symbols maps every label to its resolved address.
	Symbols map[string]uint32
}

// InstAt returns the instruction at byte address pc.
func (p *Program) InstAt(pc uint32) (isa.Inst, bool) {
	if pc < p.TextBase || (pc-p.TextBase)%isa.InstBytes != 0 {
		return isa.Inst{}, false
	}
	idx := (pc - p.TextBase) / isa.InstBytes
	if int(idx) >= len(p.Text) {
		return isa.Inst{}, false
	}
	return p.Text[idx], true
}

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint32 {
	return p.TextBase + uint32(len(p.Text))*isa.InstBytes
}

// Symbol returns the address of a label.
func (p *Program) Symbol(name string) (uint32, error) {
	addr, ok := p.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("asm: undefined symbol %q", name)
	}
	return addr, nil
}

// StripHints returns a copy of the program with every compiler
// access-region hint cleared (isa.HintNone), as if the source had been
// written with no !local/!nonlocal annotations. The data segment and
// symbol table are shared with the receiver; only the text is copied.
func (p *Program) StripHints() *Program {
	return p.WithHints(nil)
}

// WithHints returns a copy of the program whose memory instructions carry
// exactly the hints in table (PC → hint); memory instructions absent from
// the table — and every instruction when table is nil — get HintNone.
// Existing hints never survive: the table is the complete assignment.
func (p *Program) WithHints(table map[uint32]isa.Hint) *Program {
	q := *p
	q.Text = make([]isa.Inst, len(p.Text))
	copy(q.Text, p.Text)
	for i := range q.Text {
		if !q.Text[i].IsMem() {
			continue
		}
		q.Text[i].Hint = table[p.TextBase+uint32(i)*isa.InstBytes]
	}
	return &q
}

// Disassemble renders the text segment with addresses and labels.
func (p *Program) Disassemble() string {
	byAddr := make(map[uint32]string, len(p.Symbols))
	for name, addr := range p.Symbols {
		if addr >= p.TextBase && addr < p.TextEnd() {
			byAddr[addr] = name
		}
	}
	out := make([]byte, 0, 32*len(p.Text))
	for i, in := range p.Text {
		addr := p.TextBase + uint32(i)*isa.InstBytes
		if name, ok := byAddr[addr]; ok {
			out = append(out, fmt.Sprintf("%s:\n", name)...)
		}
		out = append(out, fmt.Sprintf("  %08x: %s\n", addr, in)...)
	}
	return string(out)
}
