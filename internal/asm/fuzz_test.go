package asm

import "testing"

// FuzzAssemble checks that the assembler never panics and either returns
// a program or an error for arbitrary source text.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"\t.text\nmain:\n\thalt\n",
		"\t.text\nmain:\n\tlw $t0, 4($sp) !local\n\thalt\n",
		"\t.data\nx:\t.word 1, 2, 3\n",
		"\t.text\nl: l:\n",
		"\t.text\nmain:\n\tbeq $t0, $t1, nowhere\n",
		"\t.text\nmain:\n\tadd $t0 $t1\n",
		"\t.data\n\t.space -1\n",
		"\t.text\nmain:\n\tli $t0, 99999999999999999999\n",
		"#comment only\n",
		"\t.data\n\t.align 3\n",
		"\t.text\nmain:\n\tsw $t0, x($gp)\n\t.data\nx: .word 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble("fuzz.s", src)
		if err == nil && prog == nil {
			t.Fatal("nil program without error")
		}
		if prog != nil {
			// A successful assembly must disassemble without panicking.
			_ = prog.Disassemble()
		}
	})
}
