package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
)

// randInst draws a random instruction whose disassembly is valid
// assembler input (branch/jump targets rendered numerically are accepted
// by the assembler as raw offsets/addresses).
func randInst(rng *rand.Rand) isa.Inst {
	for {
		in := isa.Inst{
			Op:   isa.Op(rng.Intn(isa.NumOps)),
			Imm:  int32(rng.Uint32()),
			Hint: isa.Hint(rng.Intn(3)),
		}
		info := in.Op.Info()
		// Register fields must match the operand kinds the format
		// implies, or the textual form would not survive a roundtrip.
		gpr := func() isa.Reg { return isa.GPR(rng.Intn(32)) }
		fpr := func() isa.Reg { return isa.FPR(rng.Intn(32)) }
		anyReg := func() isa.Reg {
			if rng.Intn(2) == 0 {
				return fpr()
			}
			return gpr()
		}
		switch info.Fmt {
		case isa.FmtNone:
		case isa.FmtR, isa.FmtR2:
			in.Rd, in.Rs, in.Rt = anyReg(), anyReg(), anyReg()
		case isa.FmtI, isa.FmtLUI:
			in.Rd, in.Rs = gpr(), gpr()
		case isa.FmtMem:
			if in.Op == isa.FLW || in.Op == isa.FLD {
				in.Rd = fpr()
			} else {
				in.Rd = gpr()
			}
			in.Rs = gpr()
		case isa.FmtMemS:
			if in.Op == isa.FSW || in.Op == isa.FSD {
				in.Rt = fpr()
			} else {
				in.Rt = gpr()
			}
			in.Rs = gpr()
		case isa.FmtBr, isa.FmtBrZ:
			in.Rs, in.Rt = gpr(), gpr()
			// Branch offsets print as slot counts; keep them in a range
			// the assembler reparses exactly.
			in.Imm = int32(rng.Intn(2000) - 1000)
		case isa.FmtJ:
			in.Imm = int32(isa.TextBase + uint32(rng.Intn(1<<20))*4)
		case isa.FmtJR, isa.FmtJALR, isa.FmtOut:
			in.Rd, in.Rs = gpr(), gpr()
			if in.Op == isa.FOUT {
				in.Rs = fpr()
			}
		}
		// Hints only appear on memory instructions in textual form.
		if !in.IsMem() {
			in.Hint = isa.HintNone
		}
		return in
	}
}

// normalizeForCompare zeroes fields the textual form does not carry.
func normalizeForCompare(in isa.Inst) isa.Inst {
	info := in.Op.Info()
	switch info.Fmt {
	case isa.FmtNone:
		return isa.Inst{Op: in.Op}
	case isa.FmtR2:
		in.Rt = 0
		in.Imm = 0
	case isa.FmtR:
		in.Imm = 0
	case isa.FmtLUI:
		in.Rs, in.Rt = 0, 0
	case isa.FmtI:
		in.Rt = 0
	case isa.FmtMem:
		in.Rt = 0
	case isa.FmtMemS:
		in.Rd = 0
	case isa.FmtBr:
		in.Rd = 0
	case isa.FmtBrZ:
		in.Rd, in.Rt = 0, 0
	case isa.FmtJ:
		in.Rd, in.Rs, in.Rt = 0, 0, 0
	case isa.FmtJR, isa.FmtOut:
		in.Rd, in.Rt = 0, 0
		in.Imm = 0
	case isa.FmtJALR:
		in.Rt = 0
		in.Imm = 0
	}
	return in
}

// TestDisassembleAssembleRoundTrip: assembling an instruction's String()
// form reproduces the instruction. This pins the assembler and
// disassembler to each other.
func TestDisassembleAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3000; trial++ {
		want := normalizeForCompare(randInst(rng))
		src := fmt.Sprintf("\t.text\nmain:\n\t%s\n", want)
		prog, err := Assemble("rt.s", src)
		if err != nil {
			t.Fatalf("trial %d: %v\nsource: %s", trial, err, src)
		}
		if len(prog.Text) != 1 {
			t.Fatalf("trial %d: %d instructions from %q", trial, len(prog.Text), src)
		}
		got := prog.Text[0]
		// Branch targets assemble relative to the instruction's address;
		// the printed value is already the raw slot offset, which the
		// assembler passes through numerically.
		if got != want {
			t.Fatalf("trial %d roundtrip mismatch:\n  text: %s\n  want: %#v\n  got:  %#v",
				trial, want, want, got)
		}
	}
}

// TestWorkloadSourcesReassemble: the disassembly of an assembled program
// has the same instruction count (labels resolve, nothing is lost).
func TestDisassemblyIsComplete(t *testing.T) {
	src := `
        .text
main:
        addi $sp, $sp, -16
        sw   $ra, 12($sp) !local
        jal  f
        lw   $ra, 12($sp) !local
        addi $sp, $sp, 16
        halt
f:      jr   $ra
`
	prog, err := Assemble("d.s", src)
	if err != nil {
		t.Fatal(err)
	}
	dis := prog.Disassemble()
	lines := 0
	for _, l := range strings.Split(dis, "\n") {
		if strings.Contains(l, ": ") {
			lines++
		}
	}
	if lines != len(prog.Text) {
		t.Errorf("disassembly has %d instruction lines, want %d:\n%s", lines, len(prog.Text), dis)
	}
}
