package config

import (
	"testing"

	"repro/internal/isa"
)

func TestDefaultMatchesPaperTable1(t *testing.T) {
	c := Default()
	if c.IssueWidth != 16 {
		t.Errorf("issue width %d, want 16", c.IssueWidth)
	}
	if c.ROBSize != 128 || c.LSQSize != 64 || c.LVAQSize != 64 {
		t.Errorf("ROB/LSQ/LVAQ = %d/%d/%d, want 128/64/64", c.ROBSize, c.LSQSize, c.LVAQSize)
	}
	if c.IntALUs != 16 || c.FPALUs != 16 || c.IntMulDiv != 4 || c.FPMulDiv != 4 {
		t.Errorf("FUs = %d/%d/%d/%d", c.IntALUs, c.FPALUs, c.IntMulDiv, c.FPMulDiv)
	}
	if c.L1.SizeBytes != 32*1024 || c.L1.Assoc != 2 || c.L1.HitLatency != 2 {
		t.Errorf("L1 = %+v", c.L1)
	}
	if c.L2.SizeBytes != 512*1024 || c.L2.Assoc != 4 || c.L2.HitLatency != 12 {
		t.Errorf("L2 = %+v", c.L2)
	}
	if c.LVC.SizeBytes != 2*1024 || c.LVC.Assoc != 1 || c.LVC.HitLatency != 1 {
		t.Errorf("LVC = %+v", c.LVC)
	}
	if c.MemLatency != 50 {
		t.Errorf("memory latency %d, want 50", c.MemLatency)
	}
	if c.L1.LineBytes != 32 || c.LVC.LineBytes != 32 {
		t.Errorf("line sizes %d/%d, want 32", c.L1.LineBytes, c.LVC.LineBytes)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestWithPorts(t *testing.T) {
	c := Default().WithPorts(3, 2)
	if c.DCachePorts != 3 || c.LVCPorts != 2 {
		t.Errorf("ports = %d,%d", c.DCachePorts, c.LVCPorts)
	}
	if c.Name() != "(3+2)" {
		t.Errorf("Name = %q", c.Name())
	}
	if !c.Decoupled() {
		t.Error("3+2 not decoupled")
	}
	if Default().WithPorts(4, 0).Decoupled() {
		t.Error("4+0 claims decoupled")
	}
}

func TestWithOptimizations(t *testing.T) {
	c := Default().WithOptimizations(4)
	if !c.FastForward || c.CombineWidth != 4 {
		t.Errorf("optimizations = %v/%d", c.FastForward, c.CombineWidth)
	}
	if c.ForwardStatic || c.CombineStatic {
		t.Error("dynamic optimizations set static restriction flags")
	}
	s := Default().WithPorts(3, 2).WithStaticOptimizations(4)
	if !s.FastForward || s.CombineWidth != 4 || !s.ForwardStatic || !s.CombineStatic {
		t.Errorf("static optimizations = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("static-optimized config invalid: %v", err)
	}
	if s1 := Default().WithStaticOptimizations(1); s1.CombineStatic {
		t.Error("CombineStatic set with combining disabled")
	}
}

func TestParseNM(t *testing.T) {
	cases := map[string][2]int{
		"2+0": {2, 0}, "(3+2)": {3, 2}, " 4+16 ": {4, 16}, "(16+0)": {16, 0},
	}
	for in, want := range cases {
		n, m, err := ParseNM(in)
		if err != nil || n != want[0] || m != want[1] {
			t.Errorf("ParseNM(%q) = %d,%d,%v", in, n, m, err)
		}
	}
	for _, bad := range []string{"", "3", "3-2", "x+y", "0+2", "2+-1"} {
		if _, _, err := ParseNM(bad); err == nil {
			t.Errorf("ParseNM(%q) accepted", bad)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.ROBSize = -1 },
		func(c *Config) { c.LSQSize = 0 },
		func(c *Config) { c.DCachePorts = 0 },
		func(c *Config) { c.LVCPorts = -1 },
		func(c *Config) { c.CombineWidth = 0 },
		func(c *Config) { c.IntALUs = 0 },
		func(c *Config) { c.L1.HitLatency = 0 },
		func(c *Config) { c.LVCPorts = 2; c.LVAQSize = 0 },
		func(c *Config) { c.LVCPorts = 2; c.LVC.HitLatency = 0 },
		func(c *Config) { c.ForwardStatic = true },
		func(c *Config) { c.CombineStatic = true },
	}
	for i, f := range mut {
		c := Default()
		f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, c)
		}
	}
}

func TestLatenciesMatchR10000(t *testing.T) {
	want := map[isa.Class]uint64{
		isa.ClassIntALU: 1, isa.ClassIntMul: 6, isa.ClassIntDiv: 35,
		isa.ClassFPALU: 2, isa.ClassFPMul: 2, isa.ClassFPDiv: 19,
		isa.ClassBranch: 1, isa.ClassJump: 1, isa.ClassSys: 1, isa.ClassNop: 1,
	}
	for class, lat := range want {
		if got := Latency(class); got != lat {
			t.Errorf("Latency(%v) = %d, want %d", class, got, lat)
		}
	}
}

// TestKeyDistinguishesEveryField perturbs each field that feeds the
// simulation and demands a distinct cache key: a collision would silently
// return a cached result for a different configuration.
func TestKeyDistinguishesEveryField(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.IssueWidth++ },
		func(c *Config) { c.ROBSize++ },
		func(c *Config) { c.LSQSize++ },
		func(c *Config) { c.LVAQSize++ },
		func(c *Config) { c.IntALUs++ },
		func(c *Config) { c.FPALUs++ },
		func(c *Config) { c.IntMulDiv++ },
		func(c *Config) { c.FPMulDiv++ },
		func(c *Config) { c.DCachePorts++ },
		func(c *Config) { c.LVCPorts++ },
		func(c *Config) { c.DCachePortModel = PortsBanked },
		func(c *Config) { c.LVCPortModel = PortsReplicated },
		func(c *Config) { c.L1.SizeBytes *= 2 },
		func(c *Config) { c.L1.LineBytes *= 2 },
		func(c *Config) { c.L1.Assoc *= 2 },
		func(c *Config) { c.L1.HitLatency++ },
		func(c *Config) { c.L2.SizeBytes *= 2 },
		func(c *Config) { c.L2.LineBytes *= 2 },
		func(c *Config) { c.L2.Assoc *= 2 },
		func(c *Config) { c.L2.HitLatency++ },
		func(c *Config) { c.LVC.SizeBytes *= 2 },
		func(c *Config) { c.LVC.LineBytes *= 2 },
		func(c *Config) { c.LVC.Assoc *= 2 },
		func(c *Config) { c.LVC.HitLatency++ },
		func(c *Config) { c.MemLatency++ },
		func(c *Config) { c.Steering = SteerOracle },
		func(c *Config) { c.TLBEntries++ },
		func(c *Config) { c.TLBMissLatency++ },
		func(c *Config) { c.RecoveryPenalty++ },
		func(c *Config) { c.FastForward = !c.FastForward },
		func(c *Config) { c.CombineWidth++ },
		func(c *Config) { c.ForwardStatic = !c.ForwardStatic },
		func(c *Config) { c.CombineStatic = !c.CombineStatic },
		func(c *Config) { c.MaxInsts++ },
	}
	base := Default()
	seen := map[string]int{base.Key(): -1}
	for i, f := range mut {
		c := Default()
		f(&c)
		k := c.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %d collides with %d: key %q", i, prev, k)
		}
		seen[k] = i
	}
	// Equal configurations must produce equal keys.
	if Default().Key() != base.Key() {
		t.Error("equal configs produced different keys")
	}
	a := Default().WithPorts(3, 2).WithOptimizations(4)
	b := Default().WithPorts(3, 2).WithOptimizations(4)
	if a.Key() != b.Key() {
		t.Error("identically-derived configs produced different keys")
	}
}

// TestStreams checks the canonical per-stream view of a configuration.
func TestStreams(t *testing.T) {
	uni := Default().WithPorts(4, 0)
	specs := uni.Streams()
	if len(specs) != 1 {
		t.Fatalf("unified Streams() = %d specs, want 1", len(specs))
	}
	if specs[0].Local || specs[0].Name != "LSQ" || specs[0].QueueSize != uni.LSQSize ||
		specs[0].Ports != 4 || specs[0].Cache != uni.L1 {
		t.Errorf("unified spec = %+v", specs[0])
	}

	dec := Default().WithPorts(2, 2).WithOptimizations(4)
	specs = dec.Streams()
	if len(specs) != 2 {
		t.Fatalf("decoupled Streams() = %d specs, want 2", len(specs))
	}
	lsq, lvaq := specs[0], specs[1]
	if lsq.Local || lsq.FastForward || lsq.CombineWidth != 1 {
		t.Errorf("LSQ spec = %+v", lsq)
	}
	if !lvaq.Local || lvaq.Name != "LVAQ" || lvaq.QueueSize != dec.LVAQSize ||
		lvaq.Ports != 2 || lvaq.Cache != dec.LVC ||
		!lvaq.FastForward || lvaq.CombineWidth != 4 || lvaq.CombineStatic {
		t.Errorf("LVAQ spec = %+v", lvaq)
	}

	stat := Default().WithPorts(2, 2).WithStaticOptimizations(4).Streams()
	if !stat[1].CombineStatic || stat[0].CombineStatic {
		t.Errorf("static Streams() = %+v", stat)
	}
}

func TestSteeringPolicyString(t *testing.T) {
	if SteerHint.String() != "hint" || SteerSP.String() != "sp" || SteerOracle.String() != "oracle" {
		t.Error("policy names wrong")
	}
	if SteerDual.String() != "dual" || SteerStatic.String() != "static" {
		t.Error("policy names wrong")
	}
}
