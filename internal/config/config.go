// Package config defines the simulated machine configuration. The defaults
// reproduce Table 1 of the paper: a 16-issue out-of-order processor with a
// 128-entry ROB, a 64-entry LSQ (plus a 64-entry LVAQ when data decoupling
// is enabled), MIPS R10000 instruction latencies, a 32 KB 2-way L1 data
// cache with 2-cycle hits, a 512 KB 4-way L2 with 12-cycle access, 50-cycle
// main memory, and a 2 KB direct-mapped LVC with 1-cycle hits.
package config

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// SteeringPolicy selects how memory instructions are classified into the
// LSQ or LVAQ streams at dispatch (paper §2.1, §2.2.3).
type SteeringPolicy uint8

const (
	// SteerHint trusts the compiler hint bits and falls back to a 1-bit
	// per-PC region predictor for unhinted (ambiguous) accesses.
	SteerHint SteeringPolicy = iota
	// SteerSP classifies an access as local iff its base register is $sp
	// or $fp (the hardware-only heuristic of §2.2.3).
	SteerSP
	// SteerOracle uses the true effective-address region; it never
	// misclassifies. Used for limit studies.
	SteerOracle
	// SteerDual trusts hints, but inserts unhinted (ambiguous) accesses
	// into BOTH queues; the wrongly-placed copy is killed when the
	// address resolves (paper §2.1 footnote: "it can copy a reference
	// into both the memory access queues to eliminate any communication
	// between them"). No misprediction recovery is ever needed, at the
	// cost of queue occupancy and conservative ordering in both streams.
	SteerDual
	// SteerStatic consumes the per-PC classification table computed by
	// the internal/analysis dataflow pass instead of the instruction hint
	// bits: provably-local accesses go to the LVAQ, provably-non-local
	// ones to the LSQ, and ambiguous ones fall back to the 1-bit region
	// predictor. It models a compiler doing the §2.2.3 classification
	// without any ISA hint encoding.
	SteerStatic
	// SteerSpec consumes the analysis.Assign confidence table: provably
	// local/non-local accesses are steered by their proof, speculate-local
	// accesses are steered to the LVAQ *speculatively* (misses recover via
	// the ordinary misroute squash-and-replay path and are tallied in the
	// per-stream misspeculation counters), and leave-dynamic accesses fall
	// back to the 1-bit region predictor. It models the prove-what-you-can
	// / speculate-on-the-rest compiler contract of arXiv 2501.13553.
	SteerSpec
)

func (s SteeringPolicy) String() string {
	switch s {
	case SteerHint:
		return "hint"
	case SteerSP:
		return "sp"
	case SteerOracle:
		return "oracle"
	case SteerDual:
		return "dual"
	case SteerStatic:
		return "static"
	case SteerSpec:
		return "spec"
	default:
		return fmt.Sprintf("steer%d", uint8(s))
	}
}

// ParseSteering parses a steering-policy name as accepted by the CLIs and
// the service job schema (the inverse of SteeringPolicy.String).
func ParseSteering(s string) (SteeringPolicy, error) {
	switch s {
	case "", "hint":
		return SteerHint, nil
	case "sp":
		return SteerSP, nil
	case "oracle":
		return SteerOracle, nil
	case "dual":
		return SteerDual, nil
	case "static":
		return SteerStatic, nil
	case "spec":
		return SteerSpec, nil
	default:
		return 0, fmt.Errorf("config: unknown steering policy %q", s)
	}
}

// PortModel selects how a cache provides its ports (paper §1 discusses
// the alternatives and their drawbacks).
type PortModel uint8

const (
	// PortsIdeal is the paper's evaluation assumption: an N-port cache
	// services any N requests per cycle.
	PortsIdeal PortModel = iota
	// PortsBanked models an N-way line-interleaved cache of single-ported
	// banks: two same-cycle accesses to the same bank conflict.
	PortsBanked
	// PortsReplicated models N replicated copies: loads may use any copy,
	// but a store must broadcast to all copies and consumes every port
	// that cycle.
	PortsReplicated
)

func (p PortModel) String() string {
	switch p {
	case PortsBanked:
		return "banked"
	case PortsReplicated:
		return "replicated"
	default:
		return "ideal"
	}
}

// CacheParams configures one cache of the hierarchy.
type CacheParams struct {
	SizeBytes  int
	LineBytes  int
	Assoc      int
	HitLatency uint64
}

// Config is the full machine configuration.
type Config struct {
	// Pipeline widths. Decode and commit widths equal the issue width
	// (Table 1).
	IssueWidth int
	ROBSize    int
	LSQSize    int
	LVAQSize   int

	// Functional units (Table 1: 16 integer + 16 FP ALUs, 4 integer + 4 FP
	// MULT/DIV units).
	IntALUs   int
	FPALUs    int
	IntMulDiv int
	FPMulDiv  int

	// DCachePorts is N and LVCPorts is M in the paper's "(N+M)" notation.
	// LVCPorts == 0 disables data decoupling entirely (no LVAQ/LVC).
	DCachePorts int
	LVCPorts    int
	// DCachePortModel and LVCPortModel select how the ports are built
	// (ideal multi-porting, interleaved banks, or replication — §1).
	DCachePortModel PortModel
	LVCPortModel    PortModel

	L1         CacheParams
	L2         CacheParams
	LVC        CacheParams
	MemLatency uint64

	// Steering selects the dispatch-time stream classifier.
	Steering SteeringPolicy
	// TLBEntries enables the §2.1 annotation-TLB verification model when
	// positive: steering verification (and thus the cache access) waits
	// for the annotation on a TLB miss. 0 models perfect (free)
	// verification, the paper's default.
	TLBEntries int
	// TLBMissLatency is the annotation fill latency in cycles.
	TLBMissLatency uint64
	// RecoveryPenalty is the dispatch stall charged when a memory access
	// is found in the wrong queue and must be re-steered (handled "like a
	// branch misprediction", §2.1).
	RecoveryPenalty uint64

	// FastForward enables offset-based store→load forwarding in the LVAQ
	// before effective addresses are known (§2.2.2).
	FastForward bool
	// CombineWidth is the access-combining degree for the LVC: an LVC
	// port grant covers up to CombineWidth consecutive same-line LVAQ
	// accesses. 1 disables combining.
	CombineWidth int
	// ForwardStatic restricts fast data forwarding to the store→load
	// pairs proven by the internal/analysis interprocedural dependence
	// pass. Requires FastForward.
	ForwardStatic bool
	// CombineStatic restricts access combining to the same-line groups
	// proven by the dependence pass: the combining window only opens for
	// (and only admits) members of one static group. Requires
	// CombineWidth > 1.
	CombineStatic bool

	// MaxInsts bounds the number of committed instructions (0 = run to
	// HALT).
	MaxInsts uint64
}

// StreamSpec is the canonical description of one memory access stream:
// the queue in front of a cache, that cache's parameters, its port
// arbitration, and the stream-local optimizations. The legacy flat Config
// fields map onto a slice of these via Streams(); internal/memsys builds
// one Stream per spec.
type StreamSpec struct {
	// Name labels the stream in statistics and traces ("LSQ", "LVAQ").
	Name string
	// Local marks the stream that receives accesses classified as local
	// (stack-region) by the steering policy.
	Local bool

	QueueSize int
	Ports     int
	PortModel PortModel
	Cache     CacheParams

	// FastForward enables the §2.2.2 offset-based store→load bypass in
	// this stream's queue.
	FastForward bool
	// CombineWidth is the access-combining degree on this stream's cache
	// port (1 disables combining).
	CombineWidth int
	// CombineStatic restricts the combining window to members of one
	// statically-proven same-line group.
	CombineStatic bool
}

// Streams returns the canonical per-stream view of the configuration: the
// conventional LSQ/L1 stream, plus the LVAQ/LVC stream when decoupling is
// enabled. The paper's "two streams" is exactly len(Streams()) == 2;
// every Config field relevant to the memory system maps onto one spec.
func (c Config) Streams() []StreamSpec {
	ss := []StreamSpec{{
		Name:         "LSQ",
		QueueSize:    c.LSQSize,
		Ports:        c.DCachePorts,
		PortModel:    c.DCachePortModel,
		Cache:        c.L1,
		CombineWidth: 1,
	}}
	if c.Decoupled() {
		ss = append(ss, StreamSpec{
			Name:          "LVAQ",
			Local:         true,
			QueueSize:     c.LVAQSize,
			Ports:         c.LVCPorts,
			PortModel:     c.LVCPortModel,
			Cache:         c.LVC,
			FastForward:   c.FastForward,
			CombineWidth:  c.CombineWidth,
			CombineStatic: c.CombineStatic,
		})
	}
	return ss
}

// Default returns the paper's base machine model (Table 1) in the (2+0)
// configuration; use WithPorts to select other (N+M) points.
func Default() Config {
	return Config{
		IssueWidth: 16,
		ROBSize:    128,
		LSQSize:    64,
		LVAQSize:   64,
		IntALUs:    16,
		FPALUs:     16,
		IntMulDiv:  4,
		FPMulDiv:   4,

		DCachePorts: 2,
		LVCPorts:    0,

		L1:         CacheParams{SizeBytes: 32 * 1024, LineBytes: 32, Assoc: 2, HitLatency: 2},
		L2:         CacheParams{SizeBytes: 512 * 1024, LineBytes: 32, Assoc: 4, HitLatency: 12},
		LVC:        CacheParams{SizeBytes: 2 * 1024, LineBytes: 32, Assoc: 1, HitLatency: 1},
		MemLatency: 50,

		Steering:        SteerHint,
		RecoveryPenalty: 8,
		FastForward:     false,
		CombineWidth:    1,
	}
}

// WithPorts returns a copy of the configuration with an N-port data cache
// and an M-port LVC — the paper's "(N+M)" notation.
func (c Config) WithPorts(n, m int) Config {
	c.DCachePorts = n
	c.LVCPorts = m
	return c
}

// WithOptimizations returns a copy with fast data forwarding and the given
// access-combining degree enabled.
func (c Config) WithOptimizations(combine int) Config {
	c.FastForward = true
	c.CombineWidth = combine
	return c
}

// WithStaticOptimizations returns a copy with both LVAQ optimizations
// enabled but restricted to the pairs/groups proven by the static
// dependence analysis.
func (c Config) WithStaticOptimizations(combine int) Config {
	c = c.WithOptimizations(combine)
	c.ForwardStatic = true
	c.CombineStatic = combine > 1
	return c
}

// Decoupled reports whether the configuration uses the LVAQ/LVC.
func (c Config) Decoupled() bool { return c.LVCPorts > 0 }

// Name returns the paper's "(N+M)" name for the configuration.
func (c Config) Name() string {
	return fmt.Sprintf("(%d+%d)", c.DCachePorts, c.LVCPorts)
}

// Key returns a canonical, field-order-stable identity string for the
// configuration, suitable as a cache key: equal configurations always
// produce equal keys, and any change to any field changes the key. Unlike
// fmt.Sprintf("%+v", c) it does not depend on struct declaration order or
// on the default formatting of nested values, so it cannot silently alias
// two configurations (or split one) when fields are added or reordered.
func (c Config) Key() string {
	var b strings.Builder
	b.Grow(160)
	f := func(tag string, v uint64) {
		b.WriteString(tag)
		b.WriteString(strconv.FormatUint(v, 10))
		b.WriteByte('|')
	}
	cp := func(tag string, p CacheParams) {
		b.WriteString(tag)
		b.WriteByte('{')
		f("sz", uint64(p.SizeBytes))
		f("ln", uint64(p.LineBytes))
		f("as", uint64(p.Assoc))
		f("hl", p.HitLatency)
		b.WriteString("}|")
	}
	f("iw", uint64(c.IssueWidth))
	f("rob", uint64(c.ROBSize))
	f("lsq", uint64(c.LSQSize))
	f("lvaq", uint64(c.LVAQSize))
	f("ialu", uint64(c.IntALUs))
	f("falu", uint64(c.FPALUs))
	f("imd", uint64(c.IntMulDiv))
	f("fmd", uint64(c.FPMulDiv))
	f("dp", uint64(c.DCachePorts))
	f("lp", uint64(c.LVCPorts))
	f("dpm", uint64(c.DCachePortModel))
	f("lpm", uint64(c.LVCPortModel))
	cp("l1", c.L1)
	cp("l2", c.L2)
	cp("lvc", c.LVC)
	f("mem", c.MemLatency)
	f("st", uint64(c.Steering))
	f("tlb", uint64(c.TLBEntries))
	f("tlbml", c.TLBMissLatency)
	f("rp", c.RecoveryPenalty)
	bit := func(tag string, v bool) {
		if v {
			f(tag, 1)
		} else {
			f(tag, 0)
		}
	}
	bit("ff", c.FastForward)
	f("cw", uint64(c.CombineWidth))
	bit("ffs", c.ForwardStatic)
	bit("cs", c.CombineStatic)
	f("mi", c.MaxInsts)
	return b.String()
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.IssueWidth <= 0:
		return fmt.Errorf("config: issue width %d", c.IssueWidth)
	case c.ROBSize <= 0:
		return fmt.Errorf("config: ROB size %d", c.ROBSize)
	case c.LSQSize <= 0:
		return fmt.Errorf("config: LSQ size %d", c.LSQSize)
	case c.Decoupled() && c.LVAQSize <= 0:
		return fmt.Errorf("config: LVAQ size %d with decoupling enabled", c.LVAQSize)
	case c.IntALUs <= 0 || c.FPALUs <= 0 || c.IntMulDiv <= 0 || c.FPMulDiv <= 0:
		return fmt.Errorf("config: functional unit counts must be positive")
	case c.DCachePorts <= 0:
		return fmt.Errorf("config: %d data cache ports", c.DCachePorts)
	case c.LVCPorts < 0:
		return fmt.Errorf("config: %d LVC ports", c.LVCPorts)
	case c.CombineWidth < 1:
		return fmt.Errorf("config: combine width %d", c.CombineWidth)
	case c.L1.HitLatency == 0 || c.L2.HitLatency == 0:
		return fmt.Errorf("config: zero cache hit latency")
	case c.Decoupled() && c.LVC.HitLatency == 0:
		return fmt.Errorf("config: zero LVC hit latency")
	case c.ForwardStatic && !c.FastForward:
		return fmt.Errorf("config: ForwardStatic requires FastForward")
	case c.CombineStatic && c.CombineWidth < 2:
		return fmt.Errorf("config: CombineStatic requires CombineWidth > 1")
	}
	return nil
}

// ParseNM parses the paper's "(N+M)" or "N+M" configuration notation.
func ParseNM(s string) (n, m int, err error) {
	t := strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(s), "("), ")")
	a, b, ok := strings.Cut(t, "+")
	if !ok {
		return 0, 0, fmt.Errorf("config: %q is not of the form N+M", s)
	}
	if n, err = strconv.Atoi(strings.TrimSpace(a)); err != nil {
		return 0, 0, fmt.Errorf("config: bad N in %q", s)
	}
	if m, err = strconv.Atoi(strings.TrimSpace(b)); err != nil {
		return 0, 0, fmt.Errorf("config: bad M in %q", s)
	}
	if n < 1 || m < 0 {
		return 0, 0, fmt.Errorf("config: out-of-range ports in %q", s)
	}
	return n, m, nil
}

// Latency returns the execution latency in cycles of a non-memory
// instruction class — the MIPS R10000 values the paper uses (Table 1).
// Loads and stores are timed by the memory model, not this table.
func Latency(class isa.Class) uint64 {
	switch class {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump, isa.ClassSys, isa.ClassNop:
		return 1
	case isa.ClassIntMul:
		return 6
	case isa.ClassIntDiv:
		return 35
	case isa.ClassFPALU:
		return 2
	case isa.ClassFPMul:
		return 2
	case isa.ClassFPDiv:
		return 19
	default:
		return 1
	}
}
