package faultinject

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/simerr"
	"repro/internal/workload"
)

// The soak sweeps a seed matrix over all 12 workloads. Every seeded run
// must end in one of exactly two ways, and within a hard cycle/time bound:
//
//   - recoverable campaign: success, with the functional outputs and
//     committed-instruction count of the fault-free run (architecturally
//     correct recovery, no silent stat corruption);
//   - campaign including CommitDesync: a typed *simerr.SimError of
//     KindPanic (contained invariant violation).
//
// Hangs are impossible by construction (MaxCycles + watchdog + the test
// binary's own -timeout); a run that needs those bounds fails the test.
//
// FAULT_SOAK_SEEDS and FAULT_SOAK_SCALE override the matrix size; on
// failure, a JSON report naming the workload, seed, parameters and
// SimError snapshot is written under FAULT_SOAK_REPORT_DIR (when set) so
// CI can upload the reproducer as an artifact.

const (
	defaultSoakSeeds = 25
	defaultSoakScale = 0.02
	// desyncEvery selects which seeds additionally arm CommitDesync.
	desyncEvery = 5
)

func soakEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func soakEnvFloat(name string, def float64) float64 {
	if v := os.Getenv(name); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return def
}

// soakParams derives one seed's campaign deterministically: rotate through
// single faults and combinations, and arm the unrecoverable desync on
// every desyncEvery-th seed.
func soakParams(seed int) Params {
	combos := []Fault{
		DropGrant,
		BurstStall,
		FlipSteer,
		QueuePressure,
		DropGrant | FlipSteer,
		BurstStall | QueuePressure,
		Recoverable,
	}
	p := Params{Faults: combos[seed%len(combos)]}
	if seed > 0 && seed%desyncEvery == 0 {
		p.Faults |= CommitDesync
		p.DesyncAfter = uint64(20 + 37*seed%200)
	}
	return p
}

type soakReport struct {
	Workload string `json:"workload"`
	Seed     int    `json:"seed"`
	Faults   string `json:"faults"`
	Params   Params `json:"params"`
	Failure  string `json:"failure"`
	Error    string `json:"error,omitempty"`
	Snapshot string `json:"snapshot,omitempty"`
}

var reportMu sync.Mutex

// writeSoakReport appends the failing seed's reproducer to the artifact
// file CI uploads. Best-effort: report errors surface in the test log only.
func writeSoakReport(t *testing.T, rep soakReport) {
	dir := os.Getenv("FAULT_SOAK_REPORT_DIR")
	if dir == "" {
		return
	}
	reportMu.Lock()
	defer reportMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("soak report: %v", err)
		return
	}
	f, err := os.OpenFile(filepath.Join(dir, "fault-soak-failures.json"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("soak report: %v", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(rep); err != nil {
		t.Logf("soak report: %v", err)
	}
}

func TestFaultInjectionSoak(t *testing.T) {
	seeds := soakEnvInt("FAULT_SOAK_SEEDS", defaultSoakSeeds)
	scale := soakEnvFloat("FAULT_SOAK_SCALE", defaultSoakScale)
	if testing.Short() {
		seeds = 4
	}
	cfg := testConfig()

	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Program(scale)

			baseCore, err := core.New(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			base, err := baseCore.Run()
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}

			fail := func(seed int, p Params, failure string, runErr error) {
				rep := soakReport{
					Workload: w.Name, Seed: seed,
					Faults: p.Faults.String(), Params: p, Failure: failure,
				}
				if runErr != nil {
					rep.Error = runErr.Error()
					var se *simerr.SimError
					if errors.As(runErr, &se) {
						rep.Snapshot = se.Snapshot.String()
					}
				}
				writeSoakReport(t, rep)
				t.Errorf("seed %d (%s): %s (err: %v)", seed, p.Faults, failure, runErr)
			}

			for seed := 0; seed < seeds; seed++ {
				p := soakParams(seed)
				inj := New(int64(seed), p)
				c, err := core.New(prog, cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.RunWith(context.Background(), core.RunOptions{
					// Generous but hard bounds: a run that hits either is
					// a livelock the recovery machinery failed to resolve.
					MaxCycles:      50*base.Cycles + 2_000_000,
					WatchdogCycles: 250_000,
					Injector:       inj,
				})

				if p.Faults&CommitDesync != 0 {
					var se *simerr.SimError
					switch {
					case err == nil:
						// Legal only if the desync never fired (run too
						// short to reach DesyncAfter commits).
						if inj.Stats().Desyncs != 0 {
							fail(seed, p, "desync fired but run succeeded", nil)
						}
					case !errors.As(err, &se):
						fail(seed, p, fmt.Sprintf("untyped error %T", err), err)
					case se.Kind != simerr.KindPanic:
						fail(seed, p, fmt.Sprintf("kind %s, want %s", se.Kind, simerr.KindPanic), err)
					}
					continue
				}

				if err != nil {
					fail(seed, p, "recoverable campaign errored", err)
					continue
				}
				if !inj.Delivered() {
					fail(seed, p, "campaign delivered no faults", nil)
					continue
				}
				if res.Committed != base.Committed {
					fail(seed, p, fmt.Sprintf("committed %d, want %d", res.Committed, base.Committed), nil)
					continue
				}
				if !outputsEqual(res.Output, base.Output) || !foutputsEqual(res.FOutput, base.FOutput) {
					fail(seed, p, "architectural outputs diverged from the fault-free run", nil)
				}
			}
		})
	}
}

func outputsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func foutputsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
