// Package faultinject deterministically perturbs the memory subsystem of a
// running simulation to prove the harness's robustness properties: every
// injected fault must end in either architecturally-correct recovery (the
// perturbations below are timing-only, so the functional outputs and
// committed-instruction count must match the fault-free run exactly) or a
// typed *simerr.SimError — never a hang, a process crash, or silent stat
// corruption.
//
// An Injector implements core.FaultInjector. All randomness comes from one
// seeded source consumed at the core's (deterministic) hook points, so a
// seed fully reproduces a fault campaign: rerunning the same seed on the
// same workload and configuration replays the identical faults and the
// identical cycle count.
//
// Fault kinds:
//
//   - DropGrant: each cache-port grant is independently denied with
//     probability DropRate. The access stalls and retries, exactly like a
//     structural port conflict.
//   - BurstStall: periodically denies every port grant for BurstLen
//     consecutive cycles (a delayed-grant blackout), stretching queue
//     residency and exercising the watchdog's tolerance of long stalls.
//   - FlipSteer: corrupts the dispatch-time local/non-local classification
//     with probability FlipRate per access, forcing the steering
//     verification and misroute-recovery (squash + replay) machinery to
//     absorb wrong-queue placements.
//   - QueuePressure: periodically collapses a stream's effective queue
//     capacity to PressureCap entries for PressureLen cycles, exercising
//     dispatch back-pressure.
//   - CommitDesync: corrupts the core's stream bookkeeping for one memory
//     access at its commit point — a deliberate invariant violation that
//     the memory subsystem's head-only-commit checks must catch and the
//     run must contain into a KindPanic SimError. Unlike the other kinds
//     this fault is not recoverable by design; it proves the containment
//     path.
//
// One Injector instruments one run: it is stateful (cycle phase, RNG,
// fired-fault bookkeeping) and not safe for concurrent use.
package faultinject

import (
	"fmt"
	"math/rand"
	"strings"
)

// Fault is a bitmask of fault kinds to arm.
type Fault uint8

const (
	// DropGrant denies individual port grants at random.
	DropGrant Fault = 1 << iota
	// BurstStall periodically denies all port grants for a burst of cycles.
	BurstStall
	// FlipSteer corrupts dispatch-time steering classifications at random.
	FlipSteer
	// QueuePressure periodically collapses effective queue capacity.
	QueuePressure
	// CommitDesync corrupts one access's stream bookkeeping at commit,
	// violating the head-only-commit invariant on purpose.
	CommitDesync
)

// Recoverable is the set of timing-only faults: a run injected with any
// subset of these must still produce the fault-free architectural result.
const Recoverable = DropGrant | BurstStall | FlipSteer | QueuePressure

func (f Fault) String() string {
	if f == 0 {
		return "none"
	}
	var parts []string
	add := func(bit Fault, name string) {
		if f&bit != 0 {
			parts = append(parts, name)
		}
	}
	add(DropGrant, "drop-grant")
	add(BurstStall, "burst-stall")
	add(FlipSteer, "flip-steer")
	add(QueuePressure, "queue-pressure")
	add(CommitDesync, "commit-desync")
	return strings.Join(parts, "+")
}

// Params tunes the armed fault kinds. Zero fields select the defaults
// filled in by New.
type Params struct {
	Faults Fault

	// DropRate is the per-grant denial probability under DropGrant.
	DropRate float64
	// BurstPeriod/BurstLen shape the BurstStall blackouts: every
	// BurstPeriod cycles, all grants are denied for BurstLen cycles.
	BurstPeriod uint64
	BurstLen    uint64
	// FlipRate is the per-access classification-corruption probability
	// under FlipSteer.
	FlipRate float64
	// PressurePeriod/PressureLen/PressureCap shape the QueuePressure
	// windows: every PressurePeriod cycles, every stream's effective
	// capacity drops to PressureCap entries for PressureLen cycles.
	PressurePeriod uint64
	PressureLen    uint64
	PressureCap    int
	// DesyncAfter is how many commit-head encounters of memory
	// instructions to let pass before CommitDesync corrupts one.
	DesyncAfter uint64
}

// Stats counts the faults an Injector actually delivered.
type Stats struct {
	GrantsDropped  uint64 // DropGrant denials
	BurstDenials   uint64 // BurstStall denials
	SteersFlipped  uint64 // FlipSteer corruptions
	PressureCycles uint64 // cycles spent inside a QueuePressure window
	Desyncs        uint64 // CommitDesync corruptions (0 or 1)
}

// Injector is a deterministic fault campaign over one simulation run. It
// implements core.FaultInjector.
type Injector struct {
	seed int64
	p    Params
	rng  *rand.Rand

	inBurst    bool
	inPressure bool

	desyncSeen  uint64
	desyncFired bool

	stats Stats
}

// New builds an injector for one run from a seed and parameters. Zero
// Params fields take moderate defaults chosen so that any Recoverable
// subset perturbs timing heavily without livelocking the pipeline.
func New(seed int64, p Params) *Injector {
	if p.DropRate == 0 {
		p.DropRate = 0.10
	}
	if p.BurstPeriod == 0 {
		p.BurstPeriod = 1024
	}
	if p.BurstLen == 0 {
		p.BurstLen = 64
	}
	if p.FlipRate == 0 {
		p.FlipRate = 0.01
	}
	if p.PressurePeriod == 0 {
		p.PressurePeriod = 2048
	}
	if p.PressureLen == 0 {
		p.PressureLen = 128
	}
	if p.PressureCap == 0 {
		p.PressureCap = 2
	}
	if p.DesyncAfter == 0 {
		p.DesyncAfter = 100
	}
	return &Injector{seed: seed, p: p, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the campaign's seed (for failure reports).
func (in *Injector) Seed() int64 { return in.seed }

// Params returns the campaign's resolved parameters.
func (in *Injector) Params() Params { return in.p }

// Stats returns the faults delivered so far.
func (in *Injector) Stats() Stats { return in.stats }

// Delivered reports whether the campaign injected at least one fault.
func (in *Injector) Delivered() bool {
	s := in.stats
	return s.GrantsDropped+s.BurstDenials+s.SteersFlipped+s.PressureCycles+s.Desyncs > 0
}

func (in *Injector) String() string {
	return fmt.Sprintf("faultinject{seed=%d faults=%s}", in.seed, in.p.Faults)
}

// BeginCycle implements core.FaultInjector: it resolves which periodic
// windows (burst blackout, queue pressure) cover the new cycle.
func (in *Injector) BeginCycle(now uint64) {
	in.inBurst = in.p.Faults&BurstStall != 0 && now%in.p.BurstPeriod < in.p.BurstLen
	in.inPressure = in.p.Faults&QueuePressure != 0 && now%in.p.PressurePeriod < in.p.PressureLen
	if in.inPressure {
		in.stats.PressureCycles++
	}
}

// FlipSteer implements core.FaultInjector.
func (in *Injector) FlipSteer(pc uint32, local bool) bool {
	if in.p.Faults&FlipSteer != 0 && in.rng.Float64() < in.p.FlipRate {
		in.stats.SteersFlipped++
		return !local
	}
	return local
}

// QueueCap implements core.FaultInjector.
func (in *Injector) QueueCap(id, arch int) int {
	if in.inPressure && in.p.PressureCap < arch {
		return in.p.PressureCap
	}
	return arch
}

// AllowGrant implements core.FaultInjector.
func (in *Injector) AllowGrant(id int, addr uint32, isLoad bool) bool {
	if in.inBurst {
		in.stats.BurstDenials++
		return false
	}
	if in.p.Faults&DropGrant != 0 && in.rng.Float64() < in.p.DropRate {
		in.stats.GrantsDropped++
		return false
	}
	return true
}

// CommitDesync implements core.FaultInjector: it corrupts exactly one
// memory access's stream bookkeeping, after DesyncAfter commit-head
// encounters.
func (in *Injector) CommitDesync(seq uint64) bool {
	if in.p.Faults&CommitDesync == 0 || in.desyncFired {
		return false
	}
	in.desyncSeen++
	if in.desyncSeen <= in.p.DesyncAfter {
		return false
	}
	in.desyncFired = true
	in.stats.Desyncs++
	return true
}
