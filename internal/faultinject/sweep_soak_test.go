package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// The sweep soak drives the ddsweep coordinator the way a flaky fleet
// would: three real in-process ddserve backends, a seeded killer that
// severs one backend's connections and restarts it on a schedule, a
// deterministic fault campaign that watchdog-fails a share of first
// run attempts server-side, a mid-sweep coordinator cancel followed by
// a checkpointed -resume, and a corrupted checkpoint that must self-heal
// into a counted full re-run. The claims under test:
//
//   - the final figure JSON is byte-identical to a serial single-backend
//     no-fault reference, regardless of kills, sheds, hedges, retries,
//     resume, or checkpoint healing;
//   - every failed attempt lands in a typed outcome (census), never in a
//     hang or an untyped error;
//   - a defective checkpoint is a counted, logged self-healing reset —
//     a full re-run, not a crash;
//   - after the storm, coordinator and backends drain cleanly and leak
//     no goroutines.
//
// Set SWEEP_SOAK_REPORT_DIR to persist the census dump (CI uploads it
// as an artifact on failure).

// cleanSweepRunOpts is the fault-free run envelope; retried attempts and
// the reference backend both use it, so every successful run — and
// therefore every figure byte — comes from an identical simulation.
func cleanSweepRunOpts() core.RunOptions {
	return core.RunOptions{MaxCycles: 20_000_000, WatchdogCycles: 100_000}
}

// sweepSoakRunOpts arms the deterministic server-side fault campaign:
// roughly half the job keys watchdog-fail their first attempt (a tight
// forward-progress window that trips immediately), and a slice of those
// fail the first retry too, so both the one-retry and the deep-retry
// paths stay hot. Retries past the campaign run clean, and only clean
// runs ever produce a result — injected timing faults would perturb
// cycle counts and break the byte-identical figure claim, so this soak
// uses none.
func sweepSoakRunOpts(key string, attempt int) core.RunOptions {
	opts := cleanSweepRunOpts()
	h := fnv.New64a()
	io.WriteString(h, key)
	sum := h.Sum64()
	switch {
	case sum%4 == 0 && attempt <= 1:
		opts.WatchdogCycles = 16
	case sum%2 == 1 && attempt == 0:
		opts.WatchdogCycles = 16
	}
	return opts
}

// chaosBackend is one real ddserve instance behind killable middleware.
// A kill models a crashed process at the transport layer: new requests
// panic with http.ErrAbortHandler (the connection is severed, the client
// sees a transport error, never a status) and every established client
// connection is closed, aborting in-flight requests. A restart simply
// readmits traffic — the server process itself never dies, which is
// exactly what a supervisor-restarted backend looks like to a client.
type chaosBackend struct {
	name string
	srv  *serve.Server
	ts   *httptest.Server
	down atomic.Bool
}

func newChaosBackend(t *testing.T, name string, runOpts func(string, int) core.RunOptions) *chaosBackend {
	t.Helper()
	srv, err := serve.New(serve.Options{
		Workers:      2,
		QueueDepth:   8,
		MaxPerClient: 8,
		MaxRetries:   2,
		RetryBase:    2 * time.Millisecond,
		RetryCap:     20 * time.Millisecond,
		JobTimeout:   30 * time.Second,
		MaxScale:     0.1,
		CacheDir:     t.TempDir(),
		JobRunOpts:   runOpts,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := &chaosBackend{name: name, srv: srv}
	h := srv.Handler()
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if b.down.Load() {
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	}))
	return b
}

func (b *chaosBackend) kill() {
	b.down.Store(true)
	b.ts.CloseClientConnections()
}

func (b *chaosBackend) restart() { b.down.Store(false) }

func (b *chaosBackend) close(t *testing.T) {
	t.Helper()
	b.restart()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.srv.Shutdown(ctx); err != nil {
		t.Errorf("backend %s: drain was forced: %v", b.name, err)
	}
	b.ts.Close()
}

func sweepSoakSpec() *sweep.Spec {
	return &sweep.Spec{
		Schema:    sweep.SpecSchema,
		Name:      "sweep-soak",
		Workloads: []string{"li", "go", "compress", "perl", "swim"},
		Ports:     []string{"2+0", "3+2"},
		Modes:     []string{"base", "opt"},
		Scale:     0.02,
	}
}

func sweepFigureBytes(t *testing.T, f *sweep.Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSweepSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a multi-backend sweep storm")
	}
	baseline := runtime.NumGoroutine()
	spec := sweepSoakSpec()

	// Reference: one healthy backend, serial dispatch, no faults, no
	// checkpoint. These bytes are the ground truth every chaos figure
	// must reproduce exactly.
	ref := newChaosBackend(t, "ref", func(string, int) core.RunOptions { return cleanSweepRunOpts() })
	refCo, err := sweep.New(spec, sweep.Options{
		Backends:      []string{ref.ts.URL},
		Parallel:      1,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	refFig, refCen, err := refCo.Run(context.Background())
	if err != nil {
		t.Fatalf("reference sweep failed: %v", err)
	}
	if refCen.Completed != len(refFig.Points) || len(refFig.Points) == 0 {
		t.Fatalf("reference sweep incomplete: %d points, census %+v", len(refFig.Points), refCen)
	}
	refBytes := sweepFigureBytes(t, refFig)
	ref.close(t)

	// The chaos fleet: three backends with the fault campaign armed.
	backends := make([]*chaosBackend, 3)
	urls := make([]string, len(backends))
	for i := range backends {
		backends[i] = newChaosBackend(t, fmt.Sprintf("b%d", i), sweepSoakRunOpts)
		urls[i] = backends[i].ts.URL
	}

	// Seeded killer: one backend at a time is severed for a short window,
	// then restarted, for as long as the chaos phases run.
	killerStop := make(chan struct{})
	var killerDone sync.WaitGroup
	var kills atomic.Uint64
	killerDone.Add(1)
	go func() {
		defer killerDone.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-killerStop:
				return
			case <-time.After(time.Duration(30+rng.Intn(50)) * time.Millisecond):
			}
			b := backends[rng.Intn(len(backends))]
			b.kill()
			kills.Add(1)
			select {
			case <-killerStop:
				b.restart()
				return
			case <-time.After(time.Duration(40+rng.Intn(60)) * time.Millisecond):
			}
			b.restart()
		}
	}()
	stopKiller := func() {
		select {
		case <-killerStop:
		default:
			close(killerStop)
			killerDone.Wait()
			for _, b := range backends {
				b.restart()
			}
		}
	}
	defer stopKiller()

	ckptPath := filepath.Join(t.TempDir(), "soak.sweepckpt")
	chaosOpts := func() sweep.Options {
		return sweep.Options{
			Backends:         urls,
			Parallel:         4,
			MaxAttempts:      10,
			RetryBase:        2 * time.Millisecond,
			RetryCap:         50 * time.Millisecond,
			Hedge:            40 * time.Millisecond,
			ProbeInterval:    20 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  150 * time.Millisecond,
			DispatchWait:     15 * time.Second,
			Checkpoint:       ckptPath,
		}
	}

	// Phase 1: kill the coordinator mid-sweep — cancel its context after
	// a handful of points have completed and checkpointed.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	var phase1OK atomic.Int64
	opts1 := chaosOpts()
	opts1.OnPoint = func(key, outcome string) {
		if outcome == "ok" && phase1OK.Add(1) == 4 {
			cancel1()
		}
	}
	co1, err := sweep.New(spec, opts1)
	if err != nil {
		t.Fatal(err)
	}
	_, cen1, err1 := co1.Run(ctx1)
	if err1 == nil {
		t.Fatal("phase 1 sweep was not interrupted")
	}
	if phase1OK.Load() < 4 {
		t.Fatalf("phase 1 completed %d points before interruption, want >= 4", phase1OK.Load())
	}

	// Phase 2: coordinator restart with -resume under continuing chaos.
	// The checkpointed points must be skipped, and the final figure must
	// be byte-identical to the reference. If the storm exhausts a point's
	// retry budget the failure is typed and one more resume — the
	// operator's move — finishes the sweep.
	opts2 := chaosOpts()
	opts2.Resume = true
	co2, err := sweep.New(spec, opts2)
	if err != nil {
		t.Fatal(err)
	}
	fig2, cen2, err2 := co2.Run(context.Background())
	if cen2.Resumed < 4 {
		t.Errorf("phase 2 resumed %d points, want >= 4", cen2.Resumed)
	}
	if cen2.CheckpointResets != 0 {
		t.Errorf("phase 2 reset a healthy checkpoint: %+v", cen2)
	}
	stopKiller()
	finalFig, finalCen := fig2, cen2
	if err2 != nil {
		t.Logf("phase 2 under chaos: %v (outcomes %v); resuming clean", err2, cen2.Outcomes)
		opts2b := chaosOpts()
		opts2b.Resume = true
		co2b, err := sweep.New(spec, opts2b)
		if err != nil {
			t.Fatal(err)
		}
		fig2b, cen2b, err2b := co2b.Run(context.Background())
		if err2b != nil {
			t.Fatalf("clean resume still failed: %v (census %+v)", err2b, cen2b)
		}
		finalFig, finalCen = fig2b, cen2b
	}
	finalBytes := sweepFigureBytes(t, finalFig)
	if !bytes.Equal(finalBytes, refBytes) {
		t.Errorf("chaos figure differs from serial single-backend reference:\n-- reference --\n%s\n-- chaos --\n%s",
			refBytes, finalBytes)
	}
	if len(finalCen.Failed) != 0 {
		t.Errorf("final sweep left failed points: %v", finalCen.Failed)
	}

	// Every attempt the storm broke must have landed in a typed outcome.
	for _, cen := range []*sweep.Census{cen1, cen2, finalCen} {
		for outcome, n := range cen.Outcomes {
			if outcome == "" || n <= 0 {
				t.Errorf("untyped or empty outcome bucket %q=%d", outcome, n)
			}
		}
	}

	// The server-side fault campaign must have bitten: the backends
	// retried watchdog-failed attempts internally.
	var serverRetries uint64
	for _, b := range backends {
		z := fetchStatz(t, b.ts.URL)
		serverRetries += z.Retries
	}
	if serverRetries == 0 {
		t.Error("fault campaign never fired: zero server-side retries across the fleet")
	}
	t.Logf("phase1: ok=%d outcomes=%v", phase1OK.Load(), cen1.Outcomes)
	t.Logf("phase2: resumed=%d outcomes=%v err=%v", cen2.Resumed, cen2.Outcomes, err2)
	t.Logf("kills=%d server_retries=%d backends=%+v", kills.Load(), serverRetries, finalCen.Backends)

	// Phase 3: corrupt the checkpoint and resume. The defect must heal
	// into a counted empty checkpoint and a full re-run whose figure is
	// still byte-identical — never a crash, never a silent partial run.
	if err := os.WriteFile(ckptPath, []byte("{torn mid-"), 0o644); err != nil {
		t.Fatal(err)
	}
	var healLog bytes.Buffer
	opts3 := chaosOpts()
	opts3.Resume = true
	opts3.Log = &healLog
	co3, err := sweep.New(spec, opts3)
	if err != nil {
		t.Fatal(err)
	}
	fig3, cen3, err3 := co3.Run(context.Background())
	if err3 != nil {
		t.Fatalf("re-run after checkpoint corruption failed: %v (census %+v)", err3, cen3)
	}
	if cen3.CheckpointResets != 1 {
		t.Errorf("corrupt checkpoint: got %d resets, want 1", cen3.CheckpointResets)
	}
	if cen3.Resumed != 0 {
		t.Errorf("corrupt checkpoint resumed %d points, want 0 (full re-run)", cen3.Resumed)
	}
	if !bytes.Contains(healLog.Bytes(), []byte("treating as empty")) {
		t.Errorf("checkpoint healing was not logged:\n%s", healLog.String())
	}
	if got := sweepFigureBytes(t, fig3); !bytes.Equal(got, refBytes) {
		t.Errorf("post-heal figure differs from reference:\n-- reference --\n%s\n-- healed --\n%s", refBytes, got)
	}

	// Clean drain and no goroutine leak: coordinators join their probe
	// and worker goroutines before returning, backends drain their pools.
	for _, b := range backends {
		b.close(t)
	}
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d at baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	writeSweepSoakReport(t, refBytes, finalBytes, []*sweep.Census{cen1, cen2, finalCen, cen3})
}

// writeSweepSoakReport persists the per-phase censuses (and, on failure,
// the reference and final figure bytes) for CI artifact upload.
func writeSweepSoakReport(t *testing.T, refBytes, finalBytes []byte, censuses []*sweep.Census) {
	dir := os.Getenv("SWEEP_SOAK_REPORT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("sweep soak report: %v", err)
		return
	}
	if data, err := json.MarshalIndent(censuses, "", "  "); err == nil {
		os.WriteFile(filepath.Join(dir, "sweep-soak-census.json"), data, 0o644)
	}
	if t.Failed() {
		os.WriteFile(filepath.Join(dir, "sweep-soak-figure-reference.json"), refBytes, 0o644)
		os.WriteFile(filepath.Join(dir, "sweep-soak-figure-final.json"), finalBytes, 0o644)
	}
}
