package faultinject

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/simerr"
	"repro/internal/workload"
)

// TestEngineIdentityUnderFaults sweeps the soak's seed matrix with both run
// engines. An armed injector pins the event engine to tick behaviour by
// construction (BeginCycle must run every cycle for a campaign to replay),
// so each (workload, seed) pair must produce identical outcomes: the same
// Result bit-for-bit on success, or the same error kind and abort cycle on
// a contained invariant violation.
func TestEngineIdentityUnderFaults(t *testing.T) {
	seeds := soakEnvInt("FAULT_SOAK_SEEDS", defaultSoakSeeds)
	scale := soakEnvFloat("FAULT_SOAK_SCALE", defaultSoakScale)
	if testing.Short() {
		seeds = 4
	}
	cfg := testConfig()

	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Program(scale)
			for seed := 0; seed < seeds; seed++ {
				p := soakParams(seed)
				var results [2]*core.Result
				var errs [2]error
				for i, e := range []core.Engine{core.EngineTick, core.EngineEvent} {
					c, err := core.New(prog, cfg)
					if err != nil {
						t.Fatal(err)
					}
					results[i], errs[i] = c.RunWith(context.Background(), core.RunOptions{
						MaxCycles:      10_000_000,
						WatchdogCycles: 250_000,
						Injector:       New(int64(seed), p),
						Engine:         e,
					})
				}
				switch {
				case (errs[0] == nil) != (errs[1] == nil):
					t.Errorf("seed %d (%s): outcomes differ: tick err=%v, event err=%v",
						seed, p.Faults, errs[0], errs[1])
				case errs[0] != nil:
					var st, se *simerr.SimError
					if !errors.As(errs[0], &st) || !errors.As(errs[1], &se) {
						t.Errorf("seed %d (%s): untyped errors: %v / %v", seed, p.Faults, errs[0], errs[1])
					} else if st.Kind != se.Kind || st.Snapshot.Cycle != se.Snapshot.Cycle {
						t.Errorf("seed %d (%s): aborts differ: tick %s@%d, event %s@%d",
							seed, p.Faults, st.Kind, st.Snapshot.Cycle, se.Kind, se.Snapshot.Cycle)
					}
				case !reflect.DeepEqual(results[0], results[1]):
					t.Errorf("seed %d (%s): results diverge between engines:\n tick:  %+v\n event: %+v",
						seed, p.Faults, results[0].Stats, results[1].Stats)
				}
			}
		})
	}
}
