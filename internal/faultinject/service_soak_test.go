package faultinject

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// The service soak drives the full HTTP service the way a hostile fleet
// would: concurrent clients mixing honest jobs, duplicates, malformed
// requests, slow request bodies, and cancel storms, while seeded fault
// campaigns perturb a share of the underlying runs and a background
// corruptor scribbles over the persistent cache. The claims under test
// are the service layer's robustness properties, not simulator fidelity
// (the run-level soaks own that):
//
//   - every HTTP response lands in the documented status set with a
//     well-formed typed body — no hung requests, no undocumented states;
//   - CommitDesync campaigns surface as contained panic errors (500 with
//     a pipeline snapshot), never as a crashed or wedged service;
//   - cache corruption degrades to recomputation, never to a failure;
//   - after the storm, the server drains cleanly within its deadline and
//     leaks no goroutines.
//
// Set SERVICE_SOAK_REPORT_DIR to persist the final /statz dump and the
// response census (CI uploads them as artifacts).

// soakStatuses is the complete documented response-status surface of
// POST /jobs; any other status is a soak failure.
var soakStatuses = map[int]bool{
	http.StatusOK:                    true,
	http.StatusBadRequest:            true,
	http.StatusRequestTimeout:        true,
	http.StatusRequestEntityTooLarge: true,
	http.StatusUnprocessableEntity:   true,
	http.StatusTooManyRequests:       true,
	http.StatusInternalServerError:   true,
	http.StatusServiceUnavailable:    true,
	http.StatusGatewayTimeout:        true,
}

const soakProgram = `	.text
	.global main
main:
	addi $sp, $sp, -8
	li   $t0, 7
	sw   $t0, 0($sp) !local
	lw   $t1, 0($sp) !local
	out  $t1
	addi $sp, $sp, 8
	halt
`

// soakJobRunOpts arms a deterministic per-run fault campaign keyed on the
// job's cache key: ~half the first attempts run clean, the rest carry a
// seeded injector — mostly Recoverable subsets, a slice with CommitDesync
// so the containment path stays hot. Retries always run clean, modelling
// a transient fault that has passed.
func soakJobRunOpts(key string, attempt int) core.RunOptions {
	opts := core.RunOptions{MaxCycles: 20_000_000, WatchdogCycles: 100_000}
	if attempt > 0 {
		return opts
	}
	h := fnv.New64a()
	io.WriteString(h, key)
	sum := h.Sum64()
	seed := int64(sum >> 1)
	switch sum % 8 {
	case 0, 1, 2, 3: // clean
	case 4, 5:
		opts.Injector = New(seed, Params{Faults: Recoverable})
	case 6:
		opts.Injector = New(seed, Params{Faults: DropGrant | FlipSteer})
	case 7:
		opts.Injector = New(seed, Params{Faults: Recoverable | CommitDesync})
	}
	return opts
}

// soakResponse is one request's observed terminal state, kept for the
// failure artifact.
type soakResponse struct {
	Client     string `json:"client"`
	Seq        int    `json:"seq"`
	Body       string `json:"request"`
	Status     int    `json:"status"`
	Kind       string `json:"kind,omitempty"`
	ClientErr  string `json:"client_error,omitempty"`
	CancelStor bool   `json:"cancel_storm,omitempty"`
}

func TestServiceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a full service storm")
	}
	baseline := runtime.NumGoroutine()

	cacheDir := t.TempDir()
	srv, err := serve.New(serve.Options{
		Workers:      4,
		QueueDepth:   32,
		MaxPerClient: 6,
		MaxRetries:   2,
		RetryBase:    5 * time.Millisecond,
		RetryCap:     40 * time.Millisecond,
		JobTimeout:   20 * time.Second,
		MaxScale:     0.1,
		CacheDir:     cacheDir,
		JobRunOpts:   soakJobRunOpts,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Background cache corruptor: scribbles garbage over or truncates
	// random persisted entries while the storm reads them.
	corruptorStop := make(chan struct{})
	var corruptorDone sync.WaitGroup
	var filesCorrupted atomic.Uint64
	corruptorDone.Add(1)
	go func() {
		defer corruptorDone.Done()
		rng := rand.New(rand.NewSource(1))
		tick := time.NewTicker(3 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-corruptorStop:
				return
			case <-tick.C:
			}
			filepath.WalkDir(cacheDir, func(path string, d os.DirEntry, err error) error {
				if err != nil || d.IsDir() || rng.Intn(4) != 0 {
					return nil
				}
				if rng.Intn(2) == 0 {
					os.Truncate(path, 17)
				} else {
					os.WriteFile(path, []byte("\x00garbage, not an entry"), 0o644)
				}
				filesCorrupted.Add(1)
				return nil
			})
		}
	}()

	workloads := []string{"li", "gcc", "compress", "perl", "go", "swim"}
	portCfgs := []string{"2+0", "3+2", "4+1"}

	var mu sync.Mutex
	var responses []soakResponse
	census := map[string]int{}
	record := func(r soakResponse, bucket string) {
		mu.Lock()
		responses = append(responses, r)
		census[bucket]++
		mu.Unlock()
	}

	const (
		clients    = 6
		perClient  = 22
		stormSlice = 5 // every 5th request is a cancel storm
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("soak-%d", c)
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := 0; i < perClient; i++ {
				var body string
				switch {
				case i%11 == 3:
					body = `{"workload":"no-such-workload"}` // deterministic 400
				case i%11 == 7:
					body = `{"workload":` // malformed JSON, 400
				case i%3 == 0:
					// A popular duplicate: exercises result sharing and the
					// persistent cache under corruption.
					body = `{"workload":"li","scale":0.02,"ports":"3+2","opt":true}`
				case i%7 == 1:
					body = fmt.Sprintf(`{"program":%q,"ports":%q}`,
						soakProgram, portCfgs[rng.Intn(len(portCfgs))])
				default:
					body = fmt.Sprintf(`{"workload":%q,"scale":0.02,"ports":%q,"opt":%v,"maxinsts":%d}`,
						workloads[rng.Intn(len(workloads))],
						portCfgs[rng.Intn(len(portCfgs))],
						rng.Intn(2) == 0,
						2000+rng.Intn(4)*1000)
				}

				storm := i%stormSlice == 4
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if storm {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(15))*time.Millisecond)
				}

				var reqBody io.Reader = strings.NewReader(body)
				if !storm && i%9 == 5 {
					// Slow client: dribble the body so the handler's read
					// path sees a stalling peer.
					pr, pw := io.Pipe()
					go func(chunks []string) {
						for _, ch := range chunks {
							io.WriteString(pw, ch)
							time.Sleep(2 * time.Millisecond)
						}
						pw.Close()
					}([]string{body[:len(body)/2], body[len(body)/2:]})
					reqBody = pr
				}

				req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/jobs", reqBody)
				if err != nil {
					cancel()
					t.Errorf("%s/%d: building request: %v", client, i, err)
					continue
				}
				req.Header.Set("X-Client", client)
				resp, err := ts.Client().Do(req)
				cancel()
				if err != nil {
					// Only a cancel storm may kill the request client-side.
					if !storm {
						t.Errorf("%s/%d: transport error outside a cancel storm: %v", client, i, err)
					}
					record(soakResponse{Client: client, Seq: i, Body: body,
						ClientErr: err.Error(), CancelStor: storm}, "client-canceled")
					continue
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()

				r := soakResponse{Client: client, Seq: i, Body: body,
					Status: resp.StatusCode, CancelStor: storm}
				if !soakStatuses[resp.StatusCode] {
					t.Errorf("%s/%d: undocumented status %d:\n%s", client, i, resp.StatusCode, data)
				}
				if resp.StatusCode == http.StatusOK {
					var res serve.JobResult
					if err := json.Unmarshal(data, &res); err != nil || res.Schema != serve.ResultSchema {
						t.Errorf("%s/%d: malformed result (err %v):\n%s", client, i, err, data)
					}
					record(r, "ok")
				} else {
					var eb serve.ErrorBody
					if err := json.Unmarshal(data, &eb); err != nil || eb.Kind == "" {
						t.Errorf("%s/%d: untyped error body (err %v):\n%s", client, i, err, data)
					}
					if eb.Kind == "panic" && eb.Snapshot == "" {
						t.Errorf("%s/%d: contained panic without a pipeline snapshot", client, i)
					}
					r.Kind = eb.Kind
					record(r, "error:"+eb.Kind)
				}
			}
		}(c)
	}
	wg.Wait()
	close(corruptorStop)
	corruptorDone.Wait()

	// Cancel-storm jobs may still be running server-side; the queue and
	// pool must go quiet on their own before the drain.
	var z serve.Statz
	deadline := time.Now().Add(30 * time.Second)
	for {
		z = fetchStatz(t, ts.URL)
		if z.InFlight == 0 && z.QueueDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never went quiet: %+v", z)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every admitted job reached a typed terminal state.
	if z.Completed == 0 {
		t.Error("soak completed zero jobs")
	}
	if got := census["ok"]; got == 0 {
		t.Error("no OK responses recorded")
	}
	if census["error:bad-request"] == 0 || census["error:bad-json"] == 0 {
		t.Errorf("malformed-request paths not exercised: %v", census)
	}
	if z.Cache.Writes == 0 {
		t.Error("persistent cache never written")
	}
	t.Logf("census: %v", census)
	t.Logf("statz: completed=%d failed=%d canceled=%d retries=%d shed=[%d %d %d] cache=%+v corrupted_files=%d",
		z.Completed, z.Failed, z.Canceled, z.Retries,
		z.ShedQueueFull, z.ShedClientLimit, z.ShedDraining, z.Cache, filesCorrupted.Load())

	// Graceful drain under a generous deadline must be clean (nil error),
	// and the goroutine count must return to the pre-soak baseline.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := srv.Shutdown(dctx); err != nil {
		t.Fatalf("drain was forced: %v", err)
	}
	ts.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d at baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	writeServiceSoakReport(t, z, census, responses)
}

func fetchStatz(t *testing.T, base string) serve.Statz {
	t.Helper()
	resp, err := http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var z serve.Statz
	if err := json.NewDecoder(resp.Body).Decode(&z); err != nil {
		t.Fatal(err)
	}
	return z
}

// writeSoakReport persists the /statz dump and the response census (plus,
// on failure, every observed response) for CI artifact upload.
func writeServiceSoakReport(t *testing.T, z serve.Statz, census map[string]int, responses []soakResponse) {
	dir := os.Getenv("SERVICE_SOAK_REPORT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("soak report: %v", err)
		return
	}
	dump := struct {
		Statz  serve.Statz    `json:"statz"`
		Census map[string]int `json:"census"`
	}{z, census}
	if data, err := json.MarshalIndent(dump, "", "  "); err == nil {
		os.WriteFile(filepath.Join(dir, "service-soak-statz.json"), data, 0o644)
	}
	if t.Failed() {
		if data, err := json.MarshalIndent(responses, "", "  "); err == nil {
			os.WriteFile(filepath.Join(dir, "service-soak-responses.json"), data, 0o644)
		}
	}
}
