package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/simerr"
	"repro/internal/workload"
)

func testConfig() config.Config {
	return config.Default().WithPorts(2, 2).WithOptimizations(2)
}

func run(t *testing.T, wname string, scale float64, inj *Injector, opts core.RunOptions) (*core.Result, error) {
	t.Helper()
	w, err := workload.ByName(wname)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(w.Program(scale), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		opts.Injector = inj
	}
	return c.RunWith(context.Background(), opts)
}

func TestFaultString(t *testing.T) {
	if got := (DropGrant | FlipSteer).String(); got != "drop-grant+flip-steer" {
		t.Errorf("String() = %q", got)
	}
	if got := Fault(0).String(); got != "none" {
		t.Errorf("String() = %q", got)
	}
}

// Equal seeds must replay the identical fault campaign: same delivered
// fault counts, same cycle count, bit for bit.
func TestInjectorDeterminism(t *testing.T) {
	var cycles [2]uint64
	var stats [2]Stats
	for i := range cycles {
		inj := New(42, Params{Faults: Recoverable})
		res, err := run(t, "li", 0.02, inj, core.RunOptions{})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		cycles[i], stats[i] = res.Cycles, inj.Stats()
	}
	if cycles[0] != cycles[1] {
		t.Errorf("cycle counts differ across identical seeds: %d vs %d", cycles[0], cycles[1])
	}
	if stats[0] != stats[1] {
		t.Errorf("fault stats differ across identical seeds:\n%+v\n%+v", stats[0], stats[1])
	}

	inj := New(43, Params{Faults: Recoverable})
	res, err := run(t, "li", 0.02, inj, core.RunOptions{})
	if err != nil {
		t.Fatalf("seed 43: %v", err)
	}
	if res.Cycles == cycles[0] && inj.Stats() == stats[0] {
		t.Error("different seed delivered the identical campaign (suspicious)")
	}
}

// Each recoverable fault kind alone must perturb the run (deliver faults,
// change the cycle count) without changing the architectural result.
func TestRecoverableFaultsPreserveArchitecture(t *testing.T) {
	base, err := run(t, "compress", 0.02, nil, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Fault{DropGrant, BurstStall, FlipSteer, QueuePressure, Recoverable} {
		t.Run(f.String(), func(t *testing.T) {
			inj := New(7, Params{Faults: f})
			res, err := run(t, "compress", 0.02, inj, core.RunOptions{})
			if err != nil {
				t.Fatalf("run under %s: %v", f, err)
			}
			if !inj.Delivered() {
				t.Fatalf("campaign %s delivered no faults: %+v", f, inj.Stats())
			}
			if res.Committed != base.Committed {
				t.Errorf("committed %d, want %d", res.Committed, base.Committed)
			}
			if len(res.Output) != len(base.Output) {
				t.Fatalf("output length %d, want %d", len(res.Output), len(base.Output))
			}
			for i := range base.Output {
				if res.Output[i] != base.Output[i] {
					t.Fatalf("output[%d] = %d, want %d", i, res.Output[i], base.Output[i])
				}
			}
			for i := range base.FOutput {
				if res.FOutput[i] != base.FOutput[i] {
					t.Fatalf("foutput[%d] = %g, want %g", i, res.FOutput[i], base.FOutput[i])
				}
			}
			if res.Cycles == base.Cycles {
				t.Errorf("cycle count unchanged under %s (faults did not bite)", f)
			}
		})
	}
}

// CommitDesync is the unrecoverable fault: it must end in a contained
// KindPanic SimError naming the memsys invariant, never a process crash.
func TestCommitDesyncIsContained(t *testing.T) {
	inj := New(3, Params{Faults: CommitDesync, DesyncAfter: 25})
	_, err := run(t, "vortex", 0.02, inj, core.RunOptions{})
	if err == nil {
		t.Fatal("desync run succeeded, want a contained panic")
	}
	var se *simerr.SimError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not a *simerr.SimError: %v", err, err)
	}
	if se.Kind != simerr.KindPanic {
		t.Fatalf("kind = %s, want %s", se.Kind, simerr.KindPanic)
	}
	if !strings.Contains(se.Reason, "memsys") {
		t.Errorf("reason %q does not name the memsys invariant", se.Reason)
	}
	if inj.Stats().Desyncs != 1 {
		t.Errorf("Desyncs = %d, want 1", inj.Stats().Desyncs)
	}
}
