package faultinject

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestSpecSteeringSoak: the SteerSpec policy speculates on unproven
// local accesses and leans on the misroute recovery path, so it is the
// steering mode most exposed to steering faults. Sweep every workload
// with its generator hints stripped (so the speculation table is the
// only steering knowledge) under seeded fault campaigns that corrupt
// steering decisions, and require bit-identical architectural results
// against the fault-free speculative run — misspeculation and injected
// misroutes may cost cycles, never correctness.
func TestSpecSteeringSoak(t *testing.T) {
	seeds := soakEnvInt("SPEC_SOAK_SEEDS", 8)
	scale := soakEnvFloat("FAULT_SOAK_SCALE", defaultSoakScale)
	if testing.Short() {
		seeds = 2
	}
	cfg := testConfig()
	cfg.Steering = config.SteerSpec

	campaigns := []Fault{
		FlipSteer,
		FlipSteer | BurstStall,
		FlipSteer | QueuePressure,
		DropGrant | FlipSteer,
	}

	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.ProgramStripped(scale)

			baseCore, err := core.New(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			base, err := baseCore.Run()
			if err != nil {
				t.Fatalf("fault-free speculative run: %v", err)
			}

			for seed := 0; seed < seeds; seed++ {
				p := Params{Faults: campaigns[seed%len(campaigns)]}
				inj := New(int64(1000+seed), p)
				c, err := core.New(prog, cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.RunWith(context.Background(), core.RunOptions{
					MaxCycles:      50*base.Cycles + 2_000_000,
					WatchdogCycles: 250_000,
					Injector:       inj,
				})
				if err != nil {
					t.Errorf("seed %d (%s): %v", seed, p.Faults, err)
					continue
				}
				if res.Committed != base.Committed {
					t.Errorf("seed %d (%s): committed %d, want %d", seed, p.Faults, res.Committed, base.Committed)
					continue
				}
				if !outputsEqual(res.Output, base.Output) || !foutputsEqual(res.FOutput, base.FOutput) {
					t.Errorf("seed %d (%s): architectural outputs diverged", seed, p.Faults)
				}
			}
		})
	}
}
