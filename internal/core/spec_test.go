package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// specProgram selects a frame slot through a branch, so the slot pointer
// joins to a path-dependent stack offset: unprovable, but stack-derived.
// The i%8 == 0 path points above main's entry $sp (the top of the stack
// region), so the speculate-local assignment is wrong one iteration in
// eight — the misroute-recovery path must absorb exactly those.
const specProgram = `
        .text
main:
        li   $s0, 0
        li   $s1, 64
        li   $v0, 0
loop:
        andi $t0, $s0, 7
        bnez $t0, below
        addi $t1, $sp, 16
        j    join
below:
        addi $t1, $sp, -16
join:
        sw   $s0, 0($t1)
        lw   $t2, 0($t1)
        add  $v0, $v0, $t2
        addi $s0, $s0, 1
        slt  $t0, $s0, $s1
        bnez $t0, loop
        out  $v0
        halt
`

// TestSpecSteeringRecoversMisspeculation: SteerSpec must (a) steer the
// ambiguous accesses speculatively (SpecSteers > 0), (b) pay a misroute
// for exactly the dynamically non-local executions (SpecMisroutes > 0,
// all of them accounted inside Misroutes), and (c) never change the
// architectural results.
func TestSpecSteeringRecoversMisspeculation(t *testing.T) {
	prog := compile(t, specProgram)
	cfg := config.Default().WithPorts(3, 2)
	cfg.Steering = config.SteerSpec
	res := simulate(t, prog, cfg)
	checkFunctional(t, prog, res)

	if res.SpecSteers == 0 {
		t.Fatal("no speculative steers on a program built around speculate-local accesses")
	}
	if res.SpecMisroutes == 0 {
		t.Error("no misspeculations on a program with dynamically non-local spec accesses")
	}
	if res.SpecMisroutes > res.Misroutes {
		t.Errorf("SpecMisroutes %d exceeds total Misroutes %d", res.SpecMisroutes, res.Misroutes)
	}
	if res.SpecMisroutes > res.SpecSteers {
		t.Errorf("SpecMisroutes %d exceeds SpecSteers %d", res.SpecMisroutes, res.SpecSteers)
	}
	// 2 spec accesses × 64 iterations, wrong on the 8 i%8==0 iterations.
	if got, want := res.SpecMisroutes, uint64(16); got != want {
		t.Errorf("SpecMisroutes = %d, want %d (2 accesses × 8 wrong iterations)", got, want)
	}
	t.Logf("spec: %d cycles, %d spec steers, %d misspeculated, %d total misroutes",
		res.Cycles, res.SpecSteers, res.SpecMisroutes, res.Misroutes)
}

// TestSpecSteeringBeatsHintFallback: on the ambiguous program the
// speculate-local decision must beat hint steering's predictor fallback
// (fewer misroutes, no more cycles), and both must agree architecturally.
func TestSpecSteeringBeatsHintFallback(t *testing.T) {
	prog := compile(t, specProgram)
	hint := config.Default().WithPorts(3, 2)
	hint.Steering = config.SteerHint
	hintRes := simulate(t, prog, hint)

	spec := config.Default().WithPorts(3, 2)
	spec.Steering = config.SteerSpec
	specRes := simulate(t, prog, spec)

	if hintRes.Committed != specRes.Committed {
		t.Fatalf("instruction counts differ: hint %d vs spec %d", hintRes.Committed, specRes.Committed)
	}
	for i, v := range hintRes.Output {
		if specRes.Output[i] != v {
			t.Fatalf("out[%d]: hint %d vs spec %d", i, v, specRes.Output[i])
		}
	}
	if specRes.Misroutes >= hintRes.Misroutes {
		t.Errorf("spec misroutes %d not below hint misroutes %d", specRes.Misroutes, hintRes.Misroutes)
	}
	if specRes.Cycles > hintRes.Cycles {
		t.Errorf("spec steering slower than hint fallback: %d vs %d cycles", specRes.Cycles, hintRes.Cycles)
	}
	t.Logf("hint %d cycles (%d misroutes) vs spec %d cycles (%d misroutes, %d misspeculated)",
		hintRes.Cycles, hintRes.Misroutes, specRes.Cycles, specRes.Misroutes, specRes.SpecMisroutes)
}

// TestSpecSteeringOnStrippedWorkload: on a real workload with all
// generator hints stripped, SteerSpec must remain architecturally
// identical to oracle steering and dispatch a substantial local stream.
func TestSpecSteeringOnStrippedWorkload(t *testing.T) {
	w, err := workload.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.ProgramStripped(0.02)

	spec := config.Default().WithPorts(2, 2).WithOptimizations(2)
	spec.Steering = config.SteerSpec
	specRes := simulate(t, prog, spec)
	checkFunctional(t, prog, specRes)

	oracle := config.Default().WithPorts(2, 2).WithOptimizations(2)
	oracle.Steering = config.SteerOracle
	oracleRes := simulate(t, prog, oracle)

	if specRes.Committed != oracleRes.Committed {
		t.Fatalf("instruction counts differ: spec %d vs oracle %d", specRes.Committed, oracleRes.Committed)
	}
	for i, v := range oracleRes.Output {
		if specRes.Output[i] != v {
			t.Fatalf("out[%d]: oracle %d vs spec %d", i, v, specRes.Output[i])
		}
	}
	if specRes.LVAQDispatched == 0 {
		t.Error("spec steering sent nothing to the LVAQ on a stripped workload")
	}
	t.Logf("li@0.02 stripped: spec %d cycles (%d misroutes, %d spec steers, %d misspec) vs oracle %d cycles",
		specRes.Cycles, specRes.Misroutes, specRes.SpecSteers, specRes.SpecMisroutes, oracleRes.Cycles)
}
