package core

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/memsys"
	"repro/internal/stats"
)

// Stats are the raw counters collected while simulating. The per-stream
// counters (dispatch counts, forwarding, port/MSHR stalls, occupancy) are
// collected by the streams themselves (memsys.Stats) and aggregated into
// the legacy LSQ/LVAQ-named fields when the result is built.
type Stats struct {
	Cycles    uint64
	Committed uint64
	Issued    uint64

	Loads       uint64
	Stores      uint64
	LocalLoads  uint64 // ground truth: effective address in the stack region
	LocalStores uint64

	LSQDispatched  uint64
	LVAQDispatched uint64

	// Forwarding.
	FwdLoads     uint64 // store→load forwards after address resolution
	LVAQFwdLoads uint64 // subset of FwdLoads that happened in the LVAQ
	FastFwdLoads uint64 // offset-based forwards before address resolution

	// Access combining.
	CombinedAccesses uint64 // LVC accesses that shared a port grant

	// Steering.
	Misroutes           uint64
	SpecSteers          uint64 // accesses steered local on a speculate-local assignment
	SpecMisroutes       uint64 // subset of Misroutes caused by that speculation
	PredictedSteers     uint64
	DualInserted        uint64 // ambiguous accesses copied into both queues
	DualMisguessed      uint64 // dual accesses whose primary guess was wrong
	Squashed            uint64 // instructions squashed by misroute recovery
	RecoveryStallCycles uint64

	// TLBMissStalls counts memory operations delayed by an annotation
	// TLB miss.
	TLBMissStalls uint64

	// Stall accounting (events, not unique instructions).
	ROBFullStalls        uint64
	QueueFullStalls      uint64
	FUStalls             uint64
	LoadPortStalls       uint64
	StorePortStalls      uint64
	LoadMSHRStalls       uint64
	StoreMSHRStalls      uint64
	LoadOrderStalls      uint64
	PartialOverlapStalls uint64

	// Occupancy integrals (divide by Cycles for averages).
	ROBOccupancy  uint64
	LSQOccupancy  uint64
	LVAQOccupancy uint64

	FetchError error
}

// StreamResult is the per-stream view of a run: the stream's own counters
// plus its cache behaviour.
type StreamResult struct {
	Name  string
	Local bool
	Stats memsys.Stats
	Cache cache.Stats
}

// Result is everything a simulation run produces.
type Result struct {
	Stats

	Config string // the "(N+M)" name

	// Streams holds one entry per memory stream, in steering order
	// (conventional stream first in the paper's configuration).
	Streams []StreamResult

	L1  cache.Stats
	LVC cache.Stats
	L2  cache.Stats

	MemReads  uint64
	MemWrites uint64

	// Annotation-TLB behaviour (zero when the TLB model is off).
	TLBHits   uint64
	TLBMisses uint64

	// Functional outputs, for cross-checking against the emulator.
	Output  []int64
	FOutput []float64
}

// IPC returns committed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// MemRefs returns the total number of data memory references.
func (r *Result) MemRefs() uint64 { return r.Loads + r.Stores }

// LocalFraction returns the fraction of memory references to the stack
// region.
func (r *Result) LocalFraction() float64 {
	return stats.Ratio(r.LocalLoads+r.LocalStores, r.MemRefs())
}

// String renders the full statistics block.
func (r *Result) String() string {
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }
	p("config            %s\n", r.Config)
	p("cycles            %d\n", r.Cycles)
	p("committed         %d\n", r.Committed)
	p("IPC               %.3f\n", r.IPC())
	p("loads             %d (%.1f%% local)\n", r.Loads, stats.Pct(r.LocalLoads, r.Loads))
	p("stores            %d (%.1f%% local)\n", r.Stores, stats.Pct(r.LocalStores, r.Stores))
	p("LSQ/LVAQ dispatch %d / %d\n", r.LSQDispatched, r.LVAQDispatched)
	p("fwd loads         %d (fast %d)\n", r.FwdLoads, r.FastFwdLoads)
	p("combined accesses %d\n", r.CombinedAccesses)
	p("misroutes         %d (recovery stall %d cycles)\n", r.Misroutes, r.RecoveryStallCycles)
	if r.SpecSteers > 0 {
		p("spec steers       %d (%d misrouted, %.2f%%)\n",
			r.SpecSteers, r.SpecMisroutes, 100*stats.Ratio(r.SpecMisroutes, r.SpecSteers))
	}
	p("L1D               %d acc, %d miss (%.2f%%), %d wb\n",
		r.L1.Accesses(), r.L1.Misses(), 100*r.L1.MissRate(), r.L1.Writebacks)
	if r.LVC.Accesses() > 0 {
		p("LVC               %d acc, %d miss (%.2f%%), %d wb\n",
			r.LVC.Accesses(), r.LVC.Misses(), 100*r.LVC.MissRate(), r.LVC.Writebacks)
	}
	p("L2                %d acc, %d miss (%.2f%%)\n",
		r.L2.Accesses(), r.L2.Misses(), 100*r.L2.MissRate())
	p("memory            %d reads, %d writes\n", r.MemReads, r.MemWrites)
	p("avg occupancy     ROB %.1f  LSQ %.1f  LVAQ %.1f\n",
		stats.Ratio(r.ROBOccupancy, r.Cycles),
		stats.Ratio(r.LSQOccupancy, r.Cycles),
		stats.Ratio(r.LVAQOccupancy, r.Cycles))
	p("stalls            rob %d, queue %d, fu %d, ldport %d, stport %d, order %d\n",
		r.ROBFullStalls, r.QueueFullStalls, r.FUStalls,
		r.LoadPortStalls, r.StorePortStalls, r.LoadOrderStalls)
	for _, s := range r.Streams {
		p("stream %-11s %d dispatched, fwd %d (fast %d), combined %d, avg occ %.1f\n",
			s.Name, s.Stats.Dispatched, s.Stats.FwdLoads, s.Stats.FastFwdLoads,
			s.Stats.Combined, stats.Ratio(s.Stats.Occupancy, r.Cycles))
	}
	return b.String()
}

func (c *Core) result() *Result {
	// Occupancy integrals are accumulated lazily (only when a queue length
	// changes); fold the final constant-length tail through the last cycle.
	c.flushROBOcc()
	for _, s := range c.streams {
		s.FlushOccupancy(c.now)
	}
	r := &Result{
		Stats:     c.stats,
		Config:    c.cfg.Name(),
		L2:        c.l2.Stats,
		MemReads:  c.mem.Reads,
		MemWrites: c.mem.Writes,
		Output:    c.emu.Output,
		FOutput:   c.emu.FOutput,
	}
	for _, s := range c.streams {
		st := s.Stats
		r.Streams = append(r.Streams, StreamResult{
			Name: s.Spec.Name, Local: s.Spec.Local, Stats: st, Cache: s.Cache.Stats,
		})
		r.SpecSteers += st.SpecSteered
		r.SpecMisroutes += st.SpecMisrouted
		r.FwdLoads += st.FwdLoads
		r.FastFwdLoads += st.FastFwdLoads
		r.CombinedAccesses += st.Combined
		r.LoadPortStalls += st.LoadPortStalls
		r.StorePortStalls += st.StorePortStalls
		r.LoadMSHRStalls += st.LoadMSHRStalls
		r.StoreMSHRStalls += st.StoreMSHRStalls
		if s.Spec.Local {
			r.LVAQDispatched += st.Dispatched
			r.LVAQFwdLoads += st.FwdLoads
			r.LVAQOccupancy += st.Occupancy
			r.LVC = s.Cache.Stats
		} else {
			r.LSQDispatched += st.Dispatched
			r.LSQOccupancy += st.Occupancy
			r.L1 = s.Cache.Stats
		}
	}
	if c.annotTLB != nil {
		r.TLBHits = c.annotTLB.Hits
		r.TLBMisses = c.annotTLB.Misses
	}
	return r
}
