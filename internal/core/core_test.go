package core

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/emu"
)

func compile(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func simulate(t *testing.T, prog *asm.Program, cfg config.Config) *Result {
	t.Helper()
	c, err := New(prog, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// checkFunctional verifies that the timing core produced exactly the same
// observable output as the reference emulator.
func checkFunctional(t *testing.T, prog *asm.Program, res *Result) {
	t.Helper()
	ref := emu.New(prog)
	if _, err := ref.Run(50_000_000); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(res.Output) != len(ref.Output) {
		t.Fatalf("output length %d, want %d", len(res.Output), len(ref.Output))
	}
	for i := range ref.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("output[%d] = %d, want %d", i, res.Output[i], ref.Output[i])
		}
	}
	for i := range ref.FOutput {
		if res.FOutput[i] != ref.FOutput[i] {
			t.Fatalf("foutput[%d] = %g, want %g", i, res.FOutput[i], ref.FOutput[i])
		}
	}
}

const fibProgram = `
        .text
main:
        li   $a0, 15
        jal  fib
        out  $v0
        halt
fib:
        addi $sp, $sp, -12
        sw   $ra, 8($sp) !local
        sw   $s0, 4($sp) !local
        sw   $a0, 0($sp) !local
        li   $v0, 1
        slti $t0, $a0, 2
        bnez $t0, fib_done
        addi $a0, $a0, -1
        jal  fib
        move $s0, $v0
        lw   $a0, 0($sp) !local
        addi $a0, $a0, -2
        jal  fib
        add  $v0, $v0, $s0
fib_done:
        lw   $s0, 4($sp) !local
        lw   $ra, 8($sp) !local
        addi $sp, $sp, 12
        jr   $ra
`

func TestFunctionalEquivalenceUnified(t *testing.T) {
	prog := compile(t, fibProgram)
	res := simulate(t, prog, config.Default().WithPorts(2, 0))
	checkFunctional(t, prog, res)
	if res.Committed == 0 || res.Cycles == 0 {
		t.Fatalf("empty run: %+v", res.Stats)
	}
}

func TestFunctionalEquivalenceDecoupled(t *testing.T) {
	prog := compile(t, fibProgram)
	res := simulate(t, prog, config.Default().WithPorts(2, 2).WithOptimizations(2))
	checkFunctional(t, prog, res)
	if res.LVAQDispatched == 0 {
		t.Error("no accesses steered to the LVAQ")
	}
	if res.LVC.Accesses() == 0 {
		t.Error("LVC never accessed")
	}
}

func TestIndependentALUOpsReachHighIPC(t *testing.T) {
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n")
	for i := 0; i < 2000; i++ {
		// 8 independent chains.
		b.WriteString("\taddi $t0, $t0, 1\n\taddi $t1, $t1, 1\n\taddi $t2, $t2, 1\n\taddi $t3, $t3, 1\n")
		b.WriteString("\taddi $t4, $t4, 1\n\taddi $t5, $t5, 1\n\taddi $t6, $t6, 1\n\taddi $t7, $t7, 1\n")
	}
	b.WriteString("\thalt\n")
	res := simulate(t, compile(t, b.String()), config.Default().WithPorts(2, 0))
	if ipc := res.IPC(); ipc < 6 {
		t.Errorf("independent ALU IPC = %.2f, want >= 6", ipc)
	}
}

func TestDependentChainIPCNearOne(t *testing.T) {
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n")
	for i := 0; i < 5000; i++ {
		b.WriteString("\taddi $t0, $t0, 1\n")
	}
	b.WriteString("\thalt\n")
	res := simulate(t, compile(t, b.String()), config.Default().WithPorts(2, 0))
	if ipc := res.IPC(); ipc > 1.2 {
		t.Errorf("dependent chain IPC = %.2f, want ~1", ipc)
	}
}

// loadHeavy builds a program issuing many independent global-array loads.
func loadHeavy(t *testing.T, n int) *asm.Program {
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n\tla $s0, arr\n")
	for i := 0; i < n; i++ {
		off := (i * 4) % 1024
		reg := i % 8
		b.WriteString("\tlw $t" + string(rune('0'+reg)) + ", " +
			itoa(off) + "($s0) !nonlocal\n")
	}
	b.WriteString("\thalt\n\t.data\narr:\t.space 1024\n")
	return compile(t, b.String())
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	return string(d)
}

func TestMorePortsHelpLoadHeavyCode(t *testing.T) {
	prog := loadHeavy(t, 4000)
	one := simulate(t, prog, config.Default().WithPorts(1, 0))
	four := simulate(t, prog, config.Default().WithPorts(4, 0))
	if four.Cycles >= one.Cycles {
		t.Errorf("4 ports (%d cycles) not faster than 1 port (%d cycles)", four.Cycles, one.Cycles)
	}
	// With 1 port, at most ~1 load/cycle: cycles >= loads.
	if one.Cycles < one.Loads {
		t.Errorf("1-port run at %d cycles beat its %d-load port bound", one.Cycles, one.Loads)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	src := `
        .text
main:
        la  $s0, arr
        li  $t0, 7
        sw  $t0, 0($s0) !nonlocal
        lw  $t1, 0($s0) !nonlocal
        out $t1
        halt
        .data
arr:    .space 32
`
	prog := compile(t, src)
	res := simulate(t, prog, config.Default().WithPorts(2, 0))
	checkFunctional(t, prog, res)
	if res.FwdLoads != 1 {
		t.Errorf("FwdLoads = %d, want 1", res.FwdLoads)
	}
}

func TestPartialOverlapDoesNotForward(t *testing.T) {
	src := `
        .text
main:
        la  $s0, arr
        li  $t0, 0x01020304
        sw  $t0, 0($s0) !nonlocal
        lb  $t1, 1($s0) !nonlocal
        out $t1
        halt
        .data
arr:    .space 32
`
	prog := compile(t, src)
	res := simulate(t, prog, config.Default().WithPorts(2, 0))
	checkFunctional(t, prog, res)
	if res.FwdLoads != 0 {
		t.Errorf("partial overlap forwarded (FwdLoads=%d)", res.FwdLoads)
	}
	if res.Output[0] != 3 {
		t.Errorf("lb result = %d, want 3", res.Output[0])
	}
}

// spillProgram has dense same-frame store→reload pairs, the pattern fast
// data forwarding targets.
const spillProgram = `
        .text
main:
        li   $s0, 0
        li   $s1, 400
loop:
        addi $sp, $sp, -32
        sw   $s0, 0($sp) !local
        sw   $s0, 4($sp) !local
        sw   $s0, 8($sp) !local
        lw   $t0, 0($sp) !local
        lw   $t1, 4($sp) !local
        lw   $t2, 8($sp) !local
        add  $t3, $t0, $t1
        add  $t3, $t3, $t2
        addi $sp, $sp, 32
        addi $s0, $s0, 1
        bne  $s0, $s1, loop
        out  $t3
        halt
`

func TestFastForwardingFiresOnSpillCode(t *testing.T) {
	prog := compile(t, spillProgram)
	cfg := config.Default().WithPorts(3, 2)
	cfg.FastForward = true
	res := simulate(t, prog, cfg)
	checkFunctional(t, prog, res)
	if res.FastFwdLoads == 0 {
		t.Error("fast forwarding never fired on spill code")
	}

	cfg.FastForward = false
	base := simulate(t, prog, cfg)
	if base.FastFwdLoads != 0 {
		t.Error("fast forwards counted while disabled")
	}
	if res.Cycles > base.Cycles {
		t.Errorf("fast forwarding slowed the run: %d > %d cycles", res.Cycles, base.Cycles)
	}
}

func TestFastForwardingRespectsFrameGenerations(t *testing.T) {
	// The caller stores to its frame, the callee loads the same *offset*
	// in its own (different) frame: fast forwarding must not match.
	src := `
        .text
main:
        addi $sp, $sp, -16
        li   $t0, 99
        sw   $t0, 0($sp) !local
        jal  child
        out  $v0
        addi $sp, $sp, 16
        halt
child:
        addi $sp, $sp, -16
        sw   $zero, 0($sp) !local
        lw   $v0, 0($sp) !local
        addi $sp, $sp, 16
        jr   $ra
`
	prog := compile(t, src)
	cfg := config.Default().WithPorts(2, 2)
	cfg.FastForward = true
	res := simulate(t, prog, cfg)
	checkFunctional(t, prog, res)
	if res.Output[0] != 0 {
		t.Fatalf("child read %d, want 0", res.Output[0])
	}
}

// burstProgram saves/restores many registers per call: contiguous stack
// accesses that access combining targets.
const burstProgram = `
        .text
main:
        li   $s0, 0
        li   $s1, 300
loop:
        jal  leaf
        addi $s0, $s0, 1
        bne  $s0, $s1, loop
        out  $s0
        halt
leaf:
        addi $sp, $sp, -32
        sw   $s0, 0($sp) !local
        sw   $s1, 4($sp) !local
        sw   $s2, 8($sp) !local
        sw   $s3, 12($sp) !local
        sw   $s4, 16($sp) !local
        sw   $s5, 20($sp) !local
        sw   $s6, 24($sp) !local
        sw   $s7, 28($sp) !local
        lw   $s0, 0($sp) !local
        lw   $s1, 4($sp) !local
        lw   $s2, 8($sp) !local
        lw   $s3, 12($sp) !local
        lw   $s4, 16($sp) !local
        lw   $s5, 20($sp) !local
        lw   $s6, 24($sp) !local
        lw   $s7, 28($sp) !local
        addi $sp, $sp, 32
        jr   $ra
`

func TestAccessCombining(t *testing.T) {
	prog := compile(t, burstProgram)
	cfg := config.Default().WithPorts(3, 1)
	none := simulate(t, prog, cfg)
	if none.CombinedAccesses != 0 {
		t.Errorf("combining fired while disabled: %d", none.CombinedAccesses)
	}

	cfg.CombineWidth = 2
	two := simulate(t, prog, cfg)
	checkFunctional(t, prog, two)
	if two.CombinedAccesses == 0 {
		t.Error("2-way combining never fired on bursty stack code")
	}
	if two.Cycles > none.Cycles {
		t.Errorf("combining slowed the run: %d > %d cycles", two.Cycles, none.Cycles)
	}

	cfg.CombineWidth = 4
	four := simulate(t, prog, cfg)
	if four.CombinedAccesses < two.CombinedAccesses {
		t.Errorf("4-way combined fewer accesses (%d) than 2-way (%d)",
			four.CombinedAccesses, two.CombinedAccesses)
	}
}

func TestSteeringByHints(t *testing.T) {
	prog := compile(t, fibProgram)
	res := simulate(t, prog, config.Default().WithPorts(2, 2))
	if res.Misroutes != 0 {
		t.Errorf("accurate hints misrouted %d accesses", res.Misroutes)
	}
	// All hinted-local accesses are truly stack accesses in fib.
	if res.LVAQDispatched != res.LocalLoads+res.LocalStores {
		t.Errorf("LVAQ got %d accesses, ground truth says %d local",
			res.LVAQDispatched, res.LocalLoads+res.LocalStores)
	}
}

func TestSteeringOracleNeverMisroutes(t *testing.T) {
	// Strip the hints so the oracle has to work from addresses alone.
	src := strings.ReplaceAll(fibProgram, " !local", "")
	prog := compile(t, src)
	cfg := config.Default().WithPorts(2, 2)
	cfg.Steering = config.SteerOracle
	res := simulate(t, prog, cfg)
	if res.Misroutes != 0 {
		t.Errorf("oracle misrouted %d", res.Misroutes)
	}
	if res.LVAQDispatched == 0 {
		t.Error("oracle steered nothing to the LVAQ")
	}
}

func TestSteeringSPHeuristic(t *testing.T) {
	src := strings.ReplaceAll(fibProgram, " !local", "")
	prog := compile(t, src)
	cfg := config.Default().WithPorts(2, 2)
	cfg.Steering = config.SteerSP
	res := simulate(t, prog, cfg)
	checkFunctional(t, prog, res)
	// In fib every local access is $sp-based, so no misroutes either.
	if res.Misroutes != 0 {
		t.Errorf("sp heuristic misrouted %d", res.Misroutes)
	}
	if res.LVAQDispatched == 0 {
		t.Error("sp heuristic steered nothing to the LVAQ")
	}
}

func TestMisrouteRecovery(t *testing.T) {
	// A global access deliberately hinted "local" must be detected at
	// address resolution, re-steered, and charged a recovery stall.
	src := `
        .text
main:
        la  $s0, g
        li  $t0, 5
        sw  $t0, 0($s0) !local
        lw  $t1, 0($s0) !local
        out $t1
        halt
        .data
g:      .word 0
`
	prog := compile(t, src)
	res := simulate(t, prog, config.Default().WithPorts(2, 2))
	checkFunctional(t, prog, res)
	if res.Misroutes != 2 {
		t.Errorf("misroutes = %d, want 2", res.Misroutes)
	}
	if res.RecoveryStallCycles == 0 {
		t.Error("no recovery stall charged")
	}
	// After recovery the accesses must have gone to the L1, not the LVC.
	if res.LVC.Accesses() != 0 {
		t.Errorf("misrouted access reached the LVC (%d accesses)", res.LVC.Accesses())
	}
}

func TestPredictorLearnsAmbiguousAccess(t *testing.T) {
	// An unhinted global access through a non-$sp register: the default
	// guess (non-local) is right, so no misroute. Then an unhinted STACK
	// access through a copied pointer: default guess non-local is wrong;
	// the predictor learns, and the second execution steers correctly.
	src := `
        .text
main:
        move $s0, $sp
        addi $sp, $sp, -8
        li   $s1, 0
        li   $s2, 3
loop:
        sw   $s1, -4($s0)
        lw   $t0, -4($s0)
        addi $s1, $s1, 1
        bne  $s1, $s2, loop
        addi $sp, $sp, 8
        out  $t0
        halt
`
	prog := compile(t, src)
	res := simulate(t, prog, config.Default().WithPorts(2, 2))
	checkFunctional(t, prog, res)
	if res.Misroutes == 0 {
		t.Error("expected at least one misroute before the predictor learns")
	}
	// 2 static accesses * 3 iterations = 6 dynamic; only the first
	// encounter of each should misroute.
	if res.Misroutes > 2 {
		t.Errorf("misroutes = %d, predictor did not learn", res.Misroutes)
	}
}

func TestNoLVCMeansNoLVAQTraffic(t *testing.T) {
	prog := compile(t, fibProgram)
	res := simulate(t, prog, config.Default().WithPorts(4, 0))
	if res.LVAQDispatched != 0 || res.LVC.Accesses() != 0 {
		t.Errorf("(4+0) used the LVAQ/LVC: %d/%d", res.LVAQDispatched, res.LVC.Accesses())
	}
	if res.LSQDispatched != res.Loads+res.Stores {
		t.Errorf("LSQ %d != refs %d", res.LSQDispatched, res.Loads+res.Stores)
	}
}

func TestMaxInstsBudget(t *testing.T) {
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n")
	for i := 0; i < 100; i++ {
		b.WriteString("\taddi $t0, $t0, 1\n")
	}
	b.WriteString("\thalt\n")
	cfg := config.Default().WithPorts(2, 0)
	cfg.MaxInsts = 50
	res := simulate(t, compile(t, b.String()), cfg)
	if res.Committed != 50 {
		t.Errorf("committed %d, want 50", res.Committed)
	}
}

func TestLocalCountsMatchGroundTruth(t *testing.T) {
	prog := compile(t, fibProgram)
	res := simulate(t, prog, config.Default().WithPorts(2, 0))
	// fib: every sw/lw in the program is $sp-based.
	if res.LocalLoads != res.Loads || res.LocalStores != res.Stores {
		t.Errorf("local %d/%d, total %d/%d — fib only has stack accesses",
			res.LocalLoads, res.LocalStores, res.Loads, res.Stores)
	}
	if res.LocalFraction() != 1.0 {
		t.Errorf("local fraction = %f, want 1", res.LocalFraction())
	}
}

func TestWiderLVCPortsNotSlower(t *testing.T) {
	prog := compile(t, burstProgram)
	m1 := simulate(t, prog, config.Default().WithPorts(2, 1))
	m2 := simulate(t, prog, config.Default().WithPorts(2, 2))
	m3 := simulate(t, prog, config.Default().WithPorts(2, 3))
	if m2.Cycles > m1.Cycles {
		t.Errorf("(2+2) %d cycles slower than (2+1) %d", m2.Cycles, m1.Cycles)
	}
	if m3.Cycles > m2.Cycles {
		t.Errorf("(2+3) %d cycles slower than (2+2) %d", m3.Cycles, m2.Cycles)
	}
}

func TestResultStringRenders(t *testing.T) {
	prog := compile(t, fibProgram)
	res := simulate(t, prog, config.Default().WithPorts(2, 2))
	s := res.String()
	for _, want := range []string{"IPC", "LVC", "loads", "misroutes"} {
		if !strings.Contains(s, want) {
			t.Errorf("result string missing %q:\n%s", want, s)
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	prog := compile(t, fibProgram)
	cfg := config.Default()
	cfg.DCachePorts = 0
	if _, err := New(prog, cfg); err == nil {
		t.Error("zero-port config accepted")
	}
}

func TestInfiniteLoopHitsCycleBudget(t *testing.T) {
	prog := compile(t, "\t.text\nmain:\n\tb main\n")
	cfg := config.Default().WithPorts(2, 0)
	cfg.MaxInsts = 200_000_000 // won't be reached: it never commits past budget
	c, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An infinite loop of branches commits fine, so this program *does*
	// make progress; cap it tightly instead.
	c.cfg.MaxInsts = 10_000
	res, err := c.Run()
	if err != nil {
		t.Fatalf("bounded run failed: %v", err)
	}
	if res.Committed != 10_000 {
		t.Errorf("committed %d", res.Committed)
	}
}
