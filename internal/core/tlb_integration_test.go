package core

import (
	"testing"

	"repro/internal/config"
)

func TestAnnotationTLBDelaysColdAccesses(t *testing.T) {
	prog := compile(t, fibProgram)
	base := config.Default().WithPorts(2, 2)

	perfect := simulate(t, prog, base)

	withTLB := base
	withTLB.TLBEntries = 64
	withTLB.TLBMissLatency = 30
	res := simulate(t, prog, withTLB)
	checkFunctional(t, prog, res)

	if res.TLBHits+res.TLBMisses == 0 {
		t.Fatal("TLB never consulted")
	}
	if res.TLBMisses == 0 {
		t.Error("no cold TLB misses")
	}
	// fib touches very few pages: the TLB must be warm essentially
	// always, so the slowdown is tiny.
	if res.TLBHits < 100*res.TLBMisses {
		t.Errorf("TLB hit rate too low: %d hits / %d misses", res.TLBHits, res.TLBMisses)
	}
	if float64(res.Cycles) > 1.05*float64(perfect.Cycles) {
		t.Errorf("warm TLB cost %.1f%%, want < 5%%",
			100*(float64(res.Cycles)/float64(perfect.Cycles)-1))
	}
	if res.TLBMissStalls == 0 {
		t.Error("misses never stalled an access")
	}
}

func TestTinyTLBHurts(t *testing.T) {
	// A one-entry TLB thrashing between stack and global pages must cost
	// cycles relative to a big one.
	src := `
        .text
main:
        la   $s0, arr
        addi $sp, $sp, -16
        li   $s1, 2000
loop:
        sw   $s1, 0($sp) !local
        sw   $s1, 0($s0) !nonlocal
        lw   $t0, 0($sp) !local
        lw   $t1, 0($s0) !nonlocal
        addi $s1, $s1, -1
        bnez $s1, loop
        addi $sp, $sp, 16
        out  $t0
        halt
        .data
arr:    .space 64
`
	prog := compile(t, src)
	big := config.Default().WithPorts(2, 2)
	big.TLBEntries = 64
	big.TLBMissLatency = 30
	small := big
	small.TLBEntries = 1

	rb := simulate(t, prog, big)
	rs := simulate(t, prog, small)
	if rs.TLBMisses <= rb.TLBMisses {
		t.Errorf("1-entry TLB misses (%d) not more than 64-entry (%d)",
			rs.TLBMisses, rb.TLBMisses)
	}
	if rs.Cycles <= rb.Cycles {
		t.Errorf("thrashing TLB (%d cycles) not slower than warm (%d)",
			rs.Cycles, rb.Cycles)
	}
}

func TestTLBOffByDefault(t *testing.T) {
	prog := compile(t, fibProgram)
	res := simulate(t, prog, config.Default().WithPorts(2, 2))
	if res.TLBHits != 0 || res.TLBMisses != 0 || res.TLBMissStalls != 0 {
		t.Error("TLB consulted though disabled")
	}
}
