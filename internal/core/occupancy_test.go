package core

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestLazyOccupancyMatchesPerCycleSampling is the regression for replacing
// the per-stream-per-cycle TickOccupancy walk with lazy interval
// accumulation. The golden integrals below were captured from the
// per-cycle implementation (sampling every stream and the ROB every cycle)
// at scale 0.05 on the (3+2) machine, before the accumulation was made
// lazy; the lazy version must reproduce them exactly, on both engines.
func TestLazyOccupancyMatchesPerCycleSampling(t *testing.T) {
	base := config.Default().WithPorts(3, 2)
	opt := base.WithOptimizations(2)
	golden := []struct {
		name      string
		cfg       config.Config
		cycles    uint64
		committed uint64
		rob       uint64
		lsq       uint64
		lvaq      uint64
	}{
		{"li/base", base, 21611, 87141, 2751893, 547507, 841960},
		{"li/opt", opt, 20421, 87141, 2601544, 548463, 770211},
		{"swim/base", base, 152933, 141251, 19572663, 4559902, 335},
		{"swim/opt", opt, 152933, 141251, 19572663, 4559902, 335},
		{"go/base", base, 14368, 45992, 1837527, 186466, 139332},
		{"go/opt", opt, 14250, 45992, 1822354, 185423, 136371},
		{"compress/base", base, 27588, 41428, 3524252, 705911, 1232},
		{"compress/opt", opt, 27588, 41428, 3524252, 705911, 1232},
	}
	for _, g := range golden {
		for _, e := range []Engine{EngineTick, EngineEvent} {
			name := g.name[:indexByte(g.name, '/')]
			r, err := runEngine(t, name, 0.05, g.cfg, e)
			if err != nil {
				t.Fatalf("%s (%v): %v", g.name, e, err)
			}
			if r.Cycles != g.cycles || r.Committed != g.committed {
				t.Errorf("%s (%v): cycles/committed = %d/%d, want %d/%d",
					g.name, e, r.Cycles, r.Committed, g.cycles, g.committed)
			}
			if r.ROBOccupancy != g.rob {
				t.Errorf("%s (%v): ROBOccupancy = %d, want %d", g.name, e, r.ROBOccupancy, g.rob)
			}
			if r.LSQOccupancy != g.lsq {
				t.Errorf("%s (%v): LSQOccupancy = %d, want %d", g.name, e, r.LSQOccupancy, g.lsq)
			}
			if r.LVAQOccupancy != g.lvaq {
				t.Errorf("%s (%v): LVAQOccupancy = %d, want %d", g.name, e, r.LVAQOccupancy, g.lvaq)
			}
		}
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return len(s)
}

// TestSteadyStateZeroAllocs is the allocation gate for the hot loop: after
// a warm-up run has populated the uop pool and the rings, simulating the
// same program again must allocate nothing per committed instruction. The
// budget below is a small fixed number of objects for the *entire* run
// (result construction allocates the Result and its stream slice), which
// amortizes to zero per instruction; steady-state cycle() itself must not
// allocate at all.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement, skipped in -short")
	}
	w, err := workload.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Program(0.05)
	cfg := config.Default().WithPorts(3, 2).WithOptimizations(2)

	for _, e := range []Engine{EngineEvent, EngineTick} {
		c, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Warm up: fill the pool and size the rings, then measure a pure
		// cycle-loop window on a fresh core (same config ⇒ same shapes).
		if _, err := c.RunWith(context.Background(), RunOptions{Engine: e}); err != nil {
			t.Fatalf("warm-up (%v): %v", e, err)
		}

		c2, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Run the first quarter to reach steady state (pool populated, maps
		// in the steering predictor warmed), then measure.
		for i := 0; i < 5000 && !c2.done(); i++ {
			c2.cycle()
		}
		allocs := testing.AllocsPerRun(1, func() {
			for i := 0; i < 5000 && !c2.done(); i++ {
				c2.cycle()
			}
		})
		if allocs > 0 {
			t.Errorf("engine %v: steady-state cycle loop allocated %.1f objects per 5000 cycles; want 0", e, allocs)
		}
	}
}
