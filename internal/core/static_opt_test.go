package core

import (
	"strings"
	"testing"

	"repro/internal/config"
)

// TestStaticForwardingRestrictsToProvenPairs: under ForwardStatic the
// fast-forward bypass fires only for the analyzer's pairs — on fib, where
// all saved-register reloads are proven, it still fires; it can never
// fire more often than the unrestricted dynamic mechanism.
func TestStaticForwardingRestrictsToProvenPairs(t *testing.T) {
	prog := compile(t, fibProgram)
	cfg := config.Default().WithPorts(3, 2).WithOptimizations(1)
	dyn := simulate(t, prog, cfg)
	if dyn.FastFwdLoads == 0 {
		t.Fatal("dynamic fast forwarding never fired on fib")
	}

	cfg.ForwardStatic = true
	stat := simulate(t, prog, cfg)
	checkFunctional(t, prog, stat)
	if stat.FastFwdLoads == 0 {
		t.Error("static fast forwarding never fired despite proven pairs")
	}
	if stat.FastFwdLoads > dyn.FastFwdLoads {
		t.Errorf("static forwarded more loads (%d) than dynamic (%d)",
			stat.FastFwdLoads, dyn.FastFwdLoads)
	}
}

// TestStaticForwardingSkipsUnprovenPairs: a load reached by different
// stores on different paths has no static pair, so ForwardStatic must not
// bypass it even though the dynamic mechanism (seeing only the executed
// path in the queue) would.
func TestStaticForwardingSkipsUnprovenPairs(t *testing.T) {
	src := `
        .text
main:
        li   $s0, 0
        li   $s1, 40
        li   $a1, 1
loop:
        addi $sp, $sp, -16
        bnez $a1, alt
        sw   $zero, 0($sp) !local
        j    join
alt:
        sw   $a1, 0($sp) !local
join:
        lw   $v0, 0($sp) !local
        addi $sp, $sp, 16
        addi $s0, $s0, 1
        bne  $s0, $s1, loop
        out  $v0
        halt
`
	prog := compile(t, src)
	cfg := config.Default().WithPorts(3, 2).WithOptimizations(1)
	dyn := simulate(t, prog, cfg)
	if dyn.FastFwdLoads == 0 {
		t.Fatal("dynamic fast forwarding never fired on the diamond")
	}

	cfg.ForwardStatic = true
	stat := simulate(t, prog, cfg)
	checkFunctional(t, prog, stat)
	if stat.FastFwdLoads != 0 {
		t.Errorf("static mode forwarded %d loads with no proven pair", stat.FastFwdLoads)
	}
}

// TestStaticCombiningRestrictsToProvenGroups: on the aligned burst
// program every run is proven, so static combining still fires; it never
// exceeds the dynamic count.
func TestStaticCombiningRestrictsToProvenGroups(t *testing.T) {
	prog := compile(t, burstProgram)
	cfg := config.Default().WithPorts(3, 1)
	cfg.CombineWidth = 4
	dyn := simulate(t, prog, cfg)
	if dyn.CombinedAccesses == 0 {
		t.Fatal("dynamic combining never fired on bursty stack code")
	}

	cfg.CombineStatic = true
	stat := simulate(t, prog, cfg)
	checkFunctional(t, prog, stat)
	if stat.CombinedAccesses == 0 {
		t.Error("static combining never fired despite proven groups")
	}
	if stat.CombinedAccesses > dyn.CombinedAccesses {
		t.Errorf("static combined more accesses (%d) than dynamic (%d)",
			stat.CombinedAccesses, dyn.CombinedAccesses)
	}
}

// TestStaticCombiningSkipsUnprovenGroups: a leaf only reachable through a
// jalr has an unconstrained static frame alignment, so no group is proven
// — even though every dynamic entry happens to be line-aligned and the
// dynamic window combines freely.
func TestStaticCombiningSkipsUnprovenGroups(t *testing.T) {
	src := `
        .text
main:
        li   $s0, 0
        li   $s1, 50
        la   $t9, leaf
loop:
        jalr $ra, $t9
        addi $s0, $s0, 1
        bne  $s0, $s1, loop
        out  $s0
        halt
leaf:
        addi $sp, $sp, -32
        sw   $s0, 0($sp) !local
        sw   $s1, 4($sp) !local
        lw   $s0, 0($sp) !local
        lw   $s1, 4($sp) !local
        addi $sp, $sp, 32
        jr   $ra
`
	prog := compile(t, src)
	cfg := config.Default().WithPorts(3, 1)
	cfg.CombineWidth = 4
	dyn := simulate(t, prog, cfg)
	if dyn.CombinedAccesses == 0 {
		t.Fatal("dynamic combining never fired through the indirect call")
	}

	cfg.CombineStatic = true
	stat := simulate(t, prog, cfg)
	checkFunctional(t, prog, stat)
	if stat.CombinedAccesses != 0 {
		t.Errorf("static mode combined %d accesses with no proven group", stat.CombinedAccesses)
	}
}

// TestWithStaticOptimizationsEndToEnd runs the full static configuration
// (forwarding + combining) and checks the per-stream counters surface in
// the stat block.
func TestWithStaticOptimizationsEndToEnd(t *testing.T) {
	prog := compile(t, burstProgram)
	res := simulate(t, prog, config.Default().WithPorts(3, 2).WithStaticOptimizations(4))
	checkFunctional(t, prog, res)
	if res.FastFwdLoads == 0 {
		t.Error("no static fast forwards on save/restore code")
	}
	if res.CombinedAccesses == 0 {
		t.Error("no static combines on save/restore code")
	}
	var lvaq *StreamResult
	for i := range res.Streams {
		if res.Streams[i].Local {
			lvaq = &res.Streams[i]
		}
	}
	if lvaq == nil {
		t.Fatal("no local stream in result")
	}
	if lvaq.Stats.FastFwdLoads != res.FastFwdLoads || lvaq.Stats.Combined != res.CombinedAccesses {
		t.Errorf("per-stream counters (%d fwd, %d combined) disagree with aggregates (%d, %d)",
			lvaq.Stats.FastFwdLoads, lvaq.Stats.Combined, res.FastFwdLoads, res.CombinedAccesses)
	}
	// The stat block must carry the per-stream forwarded/combined counts.
	out := res.String()
	if !strings.Contains(out, "fwd") || !strings.Contains(out, "combined") {
		t.Errorf("stat block missing per-stream forward/combine counts:\n%s", out)
	}
}
