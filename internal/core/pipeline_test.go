package core

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/config"
)

// Targeted micro-architecture tests: each pins one pipeline mechanism.

func TestROBFullStalls(t *testing.T) {
	// A long dependent divide chain backs up the ROB: with 128 entries
	// and 35-cycle divides, dispatch must hit the ROB-full condition.
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n\tli $t1, 3\n")
	for i := 0; i < 600; i++ {
		b.WriteString("\tdiv $t0, $t0, $t1\n")
	}
	b.WriteString("\thalt\n")
	res := simulate(t, compile(t, b.String()), config.Default().WithPorts(2, 0))
	if res.ROBFullStalls == 0 {
		t.Error("divide chain never filled the ROB")
	}
}

func TestQueueFullStalls(t *testing.T) {
	// More outstanding loads than LSQ entries, all missing to memory.
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n\tla $s0, arr\n")
	for i := 0; i < 300; i++ {
		b.WriteString("\tlw $t0, " + itoa(i*4096%65536) + "($s0) !nonlocal\n")
	}
	b.WriteString("\thalt\n\t.data\narr:\t.space 65536\n")
	cfg := config.Default().WithPorts(1, 0)
	cfg.LSQSize = 8
	res := simulate(t, compile(t, b.String()), cfg)
	if res.QueueFullStalls == 0 {
		t.Error("tiny LSQ never filled")
	}
}

func TestFUContentionOnDivides(t *testing.T) {
	// 8 independent divide chains vs 1 divider: FU stalls must appear
	// and the 4-divider default must be faster.
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n\tli $s1, 3\n")
	for i := 0; i < 200; i++ {
		for r := 0; r < 8; r++ {
			b.WriteString("\tdiv $t" + itoa(r) + ", $t" + itoa(r) + ", $s1\n")
		}
	}
	b.WriteString("\thalt\n")
	prog := compile(t, b.String())

	one := config.Default().WithPorts(2, 0)
	one.IntMulDiv = 1
	r1 := simulate(t, prog, one)
	r4 := simulate(t, prog, config.Default().WithPorts(2, 0))
	if r1.FUStalls == 0 {
		t.Error("single divider never contended")
	}
	if r4.Cycles >= r1.Cycles {
		t.Errorf("4 dividers (%d cycles) not faster than 1 (%d)", r4.Cycles, r1.Cycles)
	}
}

func TestLoadWaitsForOlderStoreAddress(t *testing.T) {
	// A store whose base register comes off a divide chain delays every
	// younger load in the same queue (order stalls).
	src := `
        .text
main:
        la   $s0, arr
        li   $t1, 3
        div  $t2, $t1, $t1
        div  $t2, $t2, $t1
        add  $t3, $s0, $t2
        sw   $t1, 0($t3) !nonlocal
        lw   $t4, 64($s0) !nonlocal
        out  $t4
        halt
        .data
arr:    .space 128
`
	prog := compile(t, src)
	res := simulate(t, prog, config.Default().WithPorts(2, 0))
	checkFunctional(t, prog, res)
	if res.LoadOrderStalls == 0 {
		t.Error("load never waited for the unresolved store address")
	}
}

func TestRecoveryPenaltyConfigurable(t *testing.T) {
	src := `
        .text
main:
        la  $s0, g
        li  $s1, 0
loop:
        sw  $s1, 0($s0) !local
        addi $s1, $s1, 1
        slti $t0, $s1, 40
        bnez $t0, loop
        out $s1
        halt
        .data
g:      .word 0
`
	prog := compile(t, src)
	cheap := config.Default().WithPorts(2, 2)
	cheap.RecoveryPenalty = 1
	costly := cheap
	costly.RecoveryPenalty = 60
	rc := simulate(t, prog, cheap)
	rx := simulate(t, prog, costly)
	if rc.Misroutes == 0 {
		t.Fatal("mishinted store never misrouted")
	}
	if rx.Cycles <= rc.Cycles {
		t.Errorf("60-cycle recovery (%d cycles) not slower than 1-cycle (%d)",
			rx.Cycles, rc.Cycles)
	}
}

func TestFastForwardWidthMismatchBlocksBypass(t *testing.T) {
	// Store a word, load a byte at the same offset: fast forwarding must
	// decline (width mismatch) and the value still be correct.
	src := `
        .text
main:
        addi $sp, $sp, -8
        li   $t0, 0x0102
        sw   $t0, 0($sp) !local
        lb   $t1, 0($sp) !local
        out  $t1
        addi $sp, $sp, 8
        halt
`
	prog := compile(t, src)
	cfg := config.Default().WithPorts(2, 2)
	cfg.FastForward = true
	res := simulate(t, prog, cfg)
	checkFunctional(t, prog, res)
	if res.FastFwdLoads != 0 {
		t.Error("width-mismatched pair fast-forwarded")
	}
	if res.Output[0] != 2 {
		t.Errorf("lb got %d, want 2", res.Output[0])
	}
}

func TestFastForwardBlockedByNonSPStore(t *testing.T) {
	// An intervening store through a derived pointer could alias: fast
	// forwarding must stop scanning at it. Here it *does* alias.
	src := `
        .text
main:
        addi $sp, $sp, -8
        li   $t0, 1
        sw   $t0, 0($sp) !local
        move $t1, $sp
        li   $t2, 2
        sw   $t2, 0($t1) !local
        lw   $t3, 0($sp) !local
        out  $t3
        addi $sp, $sp, 8
        halt
`
	prog := compile(t, src)
	cfg := config.Default().WithPorts(2, 2)
	cfg.FastForward = true
	res := simulate(t, prog, cfg)
	checkFunctional(t, prog, res)
	if res.Output[0] != 2 {
		t.Fatalf("load got %d, want the aliased store's 2", res.Output[0])
	}
	if res.FastFwdLoads != 0 {
		t.Error("fast forwarding bypassed a potentially aliasing store")
	}
}

func TestCombiningRespectsWindow(t *testing.T) {
	// Two same-line stores separated by more than CombineWidth LVAQ
	// entries must not combine; adjacent ones must.
	mk := func(gap int) *asm.Program {
		var b strings.Builder
		b.WriteString("\t.text\nmain:\n\taddi $sp, $sp, -64\n\tli $s0, 200\nloop:\n")
		b.WriteString("\tsw $t0, 0($sp) !local\n")
		for i := 0; i < gap; i++ {
			b.WriteString("\tlw $t1, 60($sp) !local\n")
		}
		b.WriteString("\tsw $t0, 4($sp) !local\n")
		b.WriteString("\taddi $s0, $s0, -1\n\tbnez $s0, loop\n")
		b.WriteString("\taddi $sp, $sp, 64\n\thalt\n")
		return compileHelper(b.String())
	}
	cfg := config.Default().WithPorts(3, 1)
	cfg.CombineWidth = 2

	adjacent, err := New(mk(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	resAdj, err := adjacent.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resAdj.CombinedAccesses == 0 {
		t.Error("adjacent same-line stores never combined")
	}
}

// compileHelper mirrors compile but without a *testing.T (used by table
// constructors).
func compileHelper(src string) *asm.Program {
	p, err := asm.Assemble("h.s", src)
	if err != nil {
		panic(err)
	}
	return p
}

func TestStorePortStallsUnderOnePort(t *testing.T) {
	// Bursty local stores against a single LVC port: store commits must
	// contend for the port.
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n\taddi $sp, $sp, -256\n\tli $s0, 100\nloop:\n")
	for i := 0; i < 16; i++ {
		b.WriteString("\tsw $t0, " + itoa(i*36%256) + "($sp) !local\n")
	}
	b.WriteString("\taddi $s0, $s0, -1\n\tbnez $s0, loop\n\taddi $sp, $sp, 256\n\thalt\n")
	prog := compile(t, b.String())
	res := simulate(t, prog, config.Default().WithPorts(3, 1))
	if res.StorePortStalls == 0 {
		t.Error("16 stores/iteration never stalled on 1 LVC port")
	}
}

func TestMemRefsAndLocalFraction(t *testing.T) {
	prog := compile(t, fibProgram)
	res := simulate(t, prog, config.Default())
	if res.MemRefs() != res.Loads+res.Stores {
		t.Error("MemRefs mismatch")
	}
	if res.LocalFraction() != 1 {
		t.Errorf("fib local fraction = %f", res.LocalFraction())
	}
}
