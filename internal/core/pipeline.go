package core

import (
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
)

// cycle advances the machine one clock. Stages run back to front so that an
// instruction never flows through more than one stage per cycle: commit,
// then the memory pipelines, then issue, then fetch/dispatch.
func (c *Core) cycle() {
	c.now++
	c.l1Ports.reset()
	c.lvcPorts.reset()
	c.combineLeft = 0

	c.commitStage()
	c.memoryStage()
	c.issueStage()
	c.dispatchStage()

	c.stats.Cycles = c.now
	c.stats.ROBOccupancy += uint64(len(c.rob))
}

// ---------------------------------------------------------------- commit

func (c *Core) commitStage() {
	for n := 0; n < c.cfg.IssueWidth && len(c.rob) > 0; n++ {
		u := c.rob[0]
		if !u.completed || u.readyAt > c.now {
			break
		}
		if u.isMem && !u.isLoad {
			// Stores write the data cache at commit and need a port
			// (paper §3.1); LVC store commits participate in access
			// combining.
			pos := c.queueIndex(u)
			if !c.grantAccess(u, pos) {
				c.stats.StorePortStalls++
				break
			}
			if _, ok := c.cacheFor(u.queue).Access(c.now, u.ef.Addr, true); !ok {
				// All MSHRs busy: retry next cycle. The port stays
				// consumed, as it would in hardware.
				c.stats.StoreMSHRStalls++
				break
			}
		}
		c.rob = c.rob[1:]
		if u.isMem {
			c.removeFromQueue(u)
		}
		c.emitTrace(u, c.now, false)
		c.stats.Committed++
		if c.cfg.MaxInsts > 0 && c.stats.Committed >= c.cfg.MaxInsts {
			c.fetchDone = true
			c.rob = c.rob[:0]
			c.lsq = c.lsq[:0]
			c.lvaq = c.lvaq[:0]
			return
		}
	}
}

func (c *Core) queueIndex(u *uop) int {
	q := c.queueSlice(u.queue)
	for i, v := range q {
		if v == u {
			return i
		}
	}
	return -1
}

func (c *Core) removeFromQueue(u *uop) {
	q := c.queueSlice(u.queue)
	i := c.queueIndex(u)
	if i < 0 {
		return
	}
	q = append(q[:i], q[i+1:]...)
	if u.queue == qLVAQ {
		c.lvaq = q
	} else {
		c.lsq = q
	}
}

// ---------------------------------------------------------------- memory

func (c *Core) memoryStage() {
	c.processQueue(qLSQ)
	if c.cfg.Decoupled() {
		c.processQueue(qLVAQ)
	}
	c.stats.LSQOccupancy += uint64(len(c.lsq))
	c.stats.LVAQOccupancy += uint64(len(c.lvaq))
}

func (c *Core) processQueue(q queueID) {
	queue := c.queueSlice(q)
	for i, u := range queue {
		if !u.isLoad {
			c.updateStore(u)
			continue
		}
		if u.accessDone {
			continue
		}
		c.processLoad(queue, i, u)
	}
}

// updateStore tracks a store's operand readiness; a store is "completed"
// (eligible to commit) once both its address and its data are known.
func (c *Core) updateStore(u *uop) {
	if u.completed {
		return
	}
	if !u.valueKnown {
		d := u.dep[1]
		if d == nil {
			u.valueKnown, u.valueAt = true, u.dispatchedAt
		} else if d.completed && d.readyAt <= c.now {
			u.valueKnown, u.valueAt = true, d.readyAt
		}
	}
	if u.valueKnown && u.addrKnown && u.addrAt <= c.now {
		u.completed = true
		u.readyAt = max(u.addrAt, u.valueAt)
	}
}

func (c *Core) processLoad(queue []*uop, i int, u *uop) {
	// Fast data forwarding (§2.2.2): in the LVAQ, a store→load pair with
	// the same base register, stack generation and offset can bypass
	// before either effective address is computed.
	if u.queue == qLVAQ && c.cfg.FastForward && c.tryFastForward(queue, i, u) {
		return
	}
	if !u.addrKnown || u.addrAt > c.now {
		return
	}

	// A load may proceed only when the addresses of all previous stores
	// in its queue are known (paper §3.1, applied per queue §2.1).
	var match *uop
	for j := i - 1; j >= 0; j-- {
		s := queue[j]
		if s.isLoad {
			continue
		}
		if !s.addrKnown || s.addrAt > c.now {
			c.stats.LoadOrderStalls++
			return
		}
		if u.overlaps(s) {
			match = s
			break
		}
	}
	if match != nil {
		if match.sameAccess(u) {
			// Store-to-load forwarding inside the queue: 1 cycle, no
			// cache access, no port.
			if match.valueKnown && match.valueAt <= c.now {
				u.readyAt = c.now + 1
				u.completed, u.accessDone = true, true
				u.fwdFrom = match
				c.stats.FwdLoads++
				if u.queue == qLVAQ {
					c.stats.LVAQFwdLoads++
				}
			}
			return
		}
		// Partially overlapping store: wait until it commits and drains
		// from the queue, then access the cache.
		c.stats.PartialOverlapStalls++
		return
	}

	if !c.grantAccess(u, i) {
		c.stats.LoadPortStalls++
		return
	}
	ready, ok := c.cacheFor(u.queue).Access(c.now, u.ef.Addr, false)
	if !ok {
		c.stats.LoadMSHRStalls++
		return
	}
	u.readyAt = ready
	u.completed, u.accessDone = true, true
}

// tryFastForward implements the offset-based LVAQ bypass. The scan walks
// older LVAQ entries; it stops (and the load falls back to the normal
// path) at any frame-generation boundary or at any store whose offset is
// unknown (non-$sp/$fp base), because such a store might alias the load.
func (c *Core) tryFastForward(queue []*uop, i int, u *uop) bool {
	if u.accessDone {
		return true
	}
	if u.dual || (u.baseReg != isa.RegSP && u.baseReg != isa.RegFP) {
		return false
	}
	for j := i - 1; j >= 0; j-- {
		s := queue[j]
		if s.isLoad {
			continue
		}
		if s.dual {
			// Unresolved ambiguous store: might alias anything.
			return false
		}
		if s.spGen != u.spGen {
			return false
		}
		if s.baseReg != isa.RegSP && s.baseReg != isa.RegFP {
			return false
		}
		if s.baseReg == u.baseReg && s.ef.Inst.Imm == u.ef.Inst.Imm {
			if s.ef.Bytes != u.ef.Bytes {
				return false
			}
			if s.valueKnown && s.valueAt <= c.now {
				u.readyAt = c.now + 1
				u.completed, u.accessDone = true, true
				u.fwdFrom = s
				u.fastForwarded = true
				c.stats.FastFwdLoads++
				return true
			}
			return false // right store, data not yet ready
		}
	}
	return false
}

// grantAccess arbitrates a cache port for one access this cycle. On the
// LVC, a granted access opens a combining window: up to CombineWidth-1
// further same-kind accesses to the same line from nearby LVAQ entries
// ride along without consuming another port (§2.2.2).
func (c *Core) grantAccess(u *uop, pos int) bool {
	if u.queue == qLVAQ && c.combineLeft > 0 && c.combineIsLoad == u.isLoad &&
		c.lvc.SameLine(c.combineLine, u.ef.Addr) &&
		pos >= 0 && pos-c.combineAnchor < c.cfg.CombineWidth {
		c.combineLeft--
		u.combined = true
		c.stats.CombinedAccesses++
		return true
	}
	if !c.portsFor(u.queue).grant(u.ef.Addr, !u.isLoad) {
		return false
	}
	if u.queue == qLVAQ && c.cfg.CombineWidth > 1 {
		c.combineLine = u.ef.Addr
		c.combineLeft = c.cfg.CombineWidth - 1
		c.combineIsLoad = u.isLoad
		c.combineAnchor = pos
	}
	return true
}

// ---------------------------------------------------------------- issue

func (c *Core) issueStage() {
	budget := c.cfg.IssueWidth
	intALU, fpALU := c.cfg.IntALUs, c.cfg.FPALUs
	intMD, fpMD := c.cfg.IntMulDiv, c.cfg.FPMulDiv

	for _, u := range c.rob {
		if budget == 0 {
			break
		}
		if u.issued || u.completed || u.dispatchedAt >= c.now {
			continue
		}
		if u.isMem {
			// Address generation: needs the base register operand.
			if d := u.dep[0]; d != nil && (!d.completed || d.readyAt > c.now) {
				continue
			}
			u.issued = true
			u.issuedAt = c.now
			budget--
			u.addrKnown = true
			u.addrAt = c.now + 1
			if c.annotTLB != nil {
				// Verification must wait for the annotation (§2.1).
				if _, ready := c.annotTLB.Lookup(c.now, u.ef.Addr); ready > c.now {
					u.addrAt = ready + 1
					c.stats.TLBMissStalls++
				}
			}
			if c.checkSteering(u); u.misrouted {
				// The squash invalidated the window we are iterating.
				break
			}
			continue
		}
		if !u.depsReady(c.now) {
			continue
		}
		var fu *int
		switch u.class {
		case isa.ClassIntMul, isa.ClassIntDiv:
			fu = &intMD
		case isa.ClassFPALU:
			fu = &fpALU
		case isa.ClassFPMul, isa.ClassFPDiv:
			fu = &fpMD
		default: // integer ALU, branches, jumps, sys, nop
			fu = &intALU
		}
		if *fu == 0 {
			c.stats.FUStalls++
			continue
		}
		*fu--
		budget--
		u.issued = true
		u.issuedAt = c.now
		u.completed = true
		u.readyAt = c.now + config.Latency(u.class)
		c.stats.Issued++
	}
}

// ------------------------------------------------------------- dispatch

func (c *Core) dispatchStage() {
	if c.now < c.dispatchStallUntil {
		c.stats.RecoveryStallCycles++
		return
	}
	for n := 0; n < c.cfg.IssueWidth && !c.fetchDone; n++ {
		if len(c.rob) >= c.cfg.ROBSize {
			c.stats.ROBFullStalls++
			return
		}
		ef, ok := c.nextEffect()
		if !ok {
			return
		}
		in := ef.Inst

		var q queueID
		var dual bool
		if in.IsMem() {
			q, dual = c.steer(ef)
			full := func(qq queueID) bool {
				limit := c.cfg.LSQSize
				if qq == qLVAQ {
					limit = c.cfg.LVAQSize
				}
				return len(c.queueSlice(qq)) >= limit
			}
			if full(q) || (dual && full(otherQueue(q))) {
				// Hold the effect for the next cycle.
				c.pending = &ef
				c.stats.QueueFullStalls++
				return
			}
		}

		u := &uop{
			seq:          c.seq,
			ef:           ef,
			class:        in.Op.Info().Class,
			dispatchedAt: c.now,
		}
		c.seq++

		// Rename the source operands.
		if in.IsMem() {
			u.isMem = true
			u.isLoad = in.IsLoad()
			u.queue = q
			u.dual = dual
			u.baseReg = in.BaseReg()
			u.spGen = c.spGen
			u.dep[0] = c.producer(in.BaseReg())
			if !u.isLoad {
				u.dep[1] = c.producer(in.Rt)
			}
		} else {
			a, b, na := in.Srcs()
			if na >= 1 {
				u.dep[0] = c.producer(a)
			}
			if na >= 2 {
				u.dep[1] = c.producer(b)
			}
		}

		// Rename the destination and advance the stack generation when
		// $sp or $fp is redefined.
		if dest, hasDest := in.Dest(); hasDest {
			c.renameTable[dest] = u
			if dest == isa.RegSP || dest == isa.RegFP {
				c.spGen++
			}
		}
		u.spGenAfter = c.spGen

		c.rob = append(c.rob, u)
		if u.isMem {
			if u.isLoad {
				c.stats.Loads++
			} else {
				c.stats.Stores++
			}
			if isa.InStackRegion(ef.Addr) {
				if u.isLoad {
					c.stats.LocalLoads++
				} else {
					c.stats.LocalStores++
				}
			}
			if q == qLVAQ {
				c.lvaq = append(c.lvaq, u)
				c.stats.LVAQDispatched++
			} else {
				c.lsq = append(c.lsq, u)
				c.stats.LSQDispatched++
			}
			if dual {
				// The shadow copy occupies the other queue until the
				// address resolves.
				if q == qLVAQ {
					c.lsq = append(c.lsq, u)
				} else {
					c.lvaq = append(c.lvaq, u)
				}
				c.stats.DualInserted++
			}
		}

		// Fetch is finished only when the emulator has halted AND no
		// squashed effects remain to replay.
		if c.emu.Halted && len(c.replay) == 0 && c.pending == nil {
			c.fetchDone = true
		}
		if c.cfg.MaxInsts > 0 && c.seq >= c.cfg.MaxInsts {
			c.fetchDone = true
		}
	}
}

// producer returns the in-flight producer of r, or nil when the
// architectural value is already available. Reads of the hardwired zero
// register are always ready.
func (c *Core) producer(r isa.Reg) *uop {
	if r == isa.RegZero {
		return nil
	}
	p := c.renameTable[r]
	if p == nil || (p.completed && p.readyAt <= c.now) {
		return nil
	}
	return p
}

// nextEffect returns the next architectural effect to dispatch: a squashed
// effect awaiting replay, the one buffered by a queue-full stall, or a
// fresh emulator step.
func (c *Core) nextEffect() (emu.Effect, bool) {
	if len(c.replay) > 0 {
		ef := c.replay[0]
		c.replay = c.replay[1:]
		return ef, true
	}
	if c.pending != nil {
		ef := *c.pending
		c.pending = nil
		return ef, true
	}
	if c.emu.Halted {
		c.fetchDone = true
		return emu.Effect{}, false
	}
	ef, err := c.emu.Step()
	if err != nil {
		c.fetchDone = true
		c.stats.FetchError = err
		return emu.Effect{}, false
	}
	return ef, true
}

// ------------------------------------------------------------- steering

// steer classifies a memory access into a queue at dispatch (paper §2.1).
// Under SteerDual, an unhinted access additionally reports dual=true: it
// is inserted into both queues and the wrong copy is killed at address
// resolution (§2.1 footnote 3).
func (c *Core) steer(ef emu.Effect) (q queueID, dual bool) {
	if !c.cfg.Decoupled() {
		return qLSQ, false
	}
	var local bool
	switch c.cfg.Steering {
	case config.SteerOracle:
		local = isa.InStackRegion(ef.Addr)
	case config.SteerSP:
		local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
	case config.SteerDual:
		switch ef.Inst.Hint {
		case isa.HintLocal:
			local = true
		case isa.HintNonLocal:
			local = false
		default:
			// Ambiguous: occupy both queues, primary by base register.
			local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			dual = true
		}
	case config.SteerStatic:
		// The analyzer's classification table replaces the hint bits;
		// ambiguous accesses fall back to the region predictor.
		switch c.staticClass[ef.PC] {
		case isa.HintLocal:
			local = true
		case isa.HintNonLocal:
			local = false
		default:
			if pred, ok := c.regionPredictor[ef.PC]; ok {
				local = pred
			} else {
				local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			}
			c.stats.PredictedSteers++
		}
	default: // SteerHint
		switch ef.Inst.Hint {
		case isa.HintLocal:
			local = true
		case isa.HintNonLocal:
			local = false
		default:
			if pred, ok := c.regionPredictor[ef.PC]; ok {
				local = pred
			} else {
				local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			}
			c.stats.PredictedSteers++
		}
	}
	if local {
		return qLVAQ, dual
	}
	return qLSQ, dual
}

// checkSteering verifies the queue assignment once the effective address
// is known. A wrong-queue access is removed, re-inserted into the correct
// queue (in program order) and the front end stalls for the recovery
// penalty, as for a branch misprediction (§2.1).
func (c *Core) checkSteering(u *uop) {
	if !c.cfg.Decoupled() {
		return
	}
	local := isa.InStackRegion(u.ef.Addr)
	switch {
	case c.cfg.Steering == config.SteerHint && u.ef.Inst.Hint == isa.HintNone:
		c.regionPredictor[u.ef.PC] = local
	case c.cfg.Steering == config.SteerStatic && c.staticClass[u.ef.PC] == isa.HintNone:
		c.regionPredictor[u.ef.PC] = local
	}
	if u.dual {
		// Kill the copy in the wrong queue; no recovery is needed
		// because the right copy is already in place (§2.1 footnote 3).
		right := qLSQ
		if local {
			right = qLVAQ
		}
		if u.queue != right {
			c.stats.DualMisguessed++
			if u.queue == qLVAQ {
				c.stats.LVAQDispatched--
				c.stats.LSQDispatched++
			} else {
				c.stats.LSQDispatched--
				c.stats.LVAQDispatched++
			}
		}
		wrong := otherQueue(right)
		u.queue = wrong // removeFromQueue removes from u.queue's list
		c.removeFromQueue(u)
		u.queue = right
		u.dual = false
		return
	}
	if (u.queue == qLVAQ) == local {
		return
	}
	c.stats.Misroutes++
	u.misrouted = true
	// Recovery "like a branch misprediction" (§2.1): squash everything
	// younger, re-steer this access into the correct queue, and stall the
	// front end for the refill penalty. The squashed instructions replay
	// from their recorded effects.
	c.squashYounger(u)
	c.removeFromQueue(u)
	if u.queue == qLVAQ {
		u.queue = qLSQ
		c.lsq = append(c.lsq, u)
		c.stats.LVAQDispatched--
		c.stats.LSQDispatched++
	} else {
		u.queue = qLVAQ
		c.lvaq = append(c.lvaq, u)
		c.stats.LSQDispatched--
		c.stats.LVAQDispatched++
	}
	if until := c.now + c.cfg.RecoveryPenalty; until > c.dispatchStallUntil {
		c.dispatchStallUntil = until
	}
}

// squashYounger removes every instruction younger than u from the pipeline
// and schedules its effect for re-dispatch.
func (c *Core) squashYounger(u *uop) {
	idx := -1
	for i, v := range c.rob {
		if v == u {
			idx = i
			break
		}
	}
	if idx < 0 || idx == len(c.rob)-1 {
		// u is the youngest (or already gone): nothing to squash, but a
		// queue-full pending effect is younger and stays pending.
		return
	}
	squashed := c.rob[idx+1:]
	effs := make([]emu.Effect, 0, len(squashed)+1+len(c.replay))
	for _, v := range squashed {
		if v.isMem {
			if v.isLoad {
				c.stats.Loads--
			} else {
				c.stats.Stores--
			}
			if isa.InStackRegion(v.ef.Addr) {
				if v.isLoad {
					c.stats.LocalLoads--
				} else {
					c.stats.LocalStores--
				}
			}
			if v.queue == qLVAQ {
				c.stats.LVAQDispatched--
			} else {
				c.stats.LSQDispatched--
			}
		}
		effs = append(effs, v.ef)
		c.emitTrace(v, 0, true)
		c.stats.Squashed++
	}
	c.rob = c.rob[:idx+1]
	c.lsq = filterOlder(c.lsq, u.seq)
	c.lvaq = filterOlder(c.lvaq, u.seq)

	// Rebuild the rename table from the surviving window.
	for i := range c.renameTable {
		c.renameTable[i] = nil
	}
	for _, v := range c.rob {
		if dest, ok := v.ef.Inst.Dest(); ok {
			c.renameTable[dest] = v
		}
	}
	c.spGen = u.spGenAfter

	// Re-dispatch order must be program order: the squashed window is
	// older than a queue-full pending effect, which in turn is older
	// than any effects still waiting in the replay buffer (nextEffect
	// drains replay first, so pending always came from the front).
	if c.pending != nil {
		effs = append(effs, *c.pending)
		c.pending = nil
	}
	c.replay = append(effs, c.replay...)
	c.fetchDone = false // the replayed effects still need dispatching
}

func otherQueue(q queueID) queueID {
	if q == qLVAQ {
		return qLSQ
	}
	return qLVAQ
}

// filterOlder keeps only entries with seq <= maxSeq.
func filterOlder(q []*uop, maxSeq uint64) []*uop {
	out := q[:0]
	for _, v := range q {
		if v.seq <= maxSeq {
			out = append(out, v)
		}
	}
	return out
}
