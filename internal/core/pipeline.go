package core

import (
	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/memsys"
)

// cycle advances the machine one clock. Stages run back to front so that an
// instruction never flows through more than one stage per cycle: commit,
// then the memory pipelines, then issue, then fetch/dispatch.
func (c *Core) cycle() {
	c.now++
	if c.fi != nil {
		c.fi.BeginCycle(c.now)
	}
	for _, s := range c.streams {
		s.Reset()
	}

	c.commitStage()
	c.memoryStage()
	c.issueStage()
	c.dispatchStage()

	c.stats.Cycles = c.now
	c.stats.ROBOccupancy += uint64(len(c.rob))
}

// ---------------------------------------------------------------- commit

func (c *Core) commitStage() {
	for n := 0; n < c.cfg.IssueWidth && len(c.rob) > 0; n++ {
		u := c.rob[0]
		if !u.completed || u.readyAt > c.now {
			break
		}
		if u.isMem && c.fi != nil && len(c.streams) > 1 && c.fi.CommitDesync(u.seq) {
			// Injected fault: corrupt the core's record of which stream
			// the access occupies without moving the queue entry. The
			// CommitStore/Retire head-only invariants below must catch
			// the lie and panic; RunWith contains it into a SimError.
			u.stream = (u.stream + 1) % len(c.streams)
		}
		if u.isMem && !u.isLoad {
			// Stores write their stream's cache at commit and need a
			// port (paper §3.1); commits on a combining stream
			// participate in access combining. CommitStore requires the
			// store to be its stream's oldest entry — commit order is
			// program order, so anything else would be a pipeline bug.
			status, combined := c.streams[u.stream].CommitStore(c.now, u, u.ef.Addr, u.combineGroup)
			if status != memsys.CommitOK {
				// Port or MSHR stall: retry next cycle. On an MSHR
				// stall the port stays consumed, as it would in
				// hardware.
				break
			}
			u.combined = u.combined || combined
		}
		c.rob = c.rob[1:]
		if u.isMem {
			c.streams[u.stream].Retire(u)
		}
		c.emitTrace(u, c.now, false)
		c.stats.Committed++
		if c.cfg.MaxInsts > 0 && c.stats.Committed >= c.cfg.MaxInsts {
			c.fetchDone = true
			c.rob = c.rob[:0]
			for _, s := range c.streams {
				s.Drain()
			}
			return
		}
	}
}

// ---------------------------------------------------------------- memory

func (c *Core) memoryStage() {
	for _, s := range c.streams {
		c.processStream(s)
	}
	for _, s := range c.streams {
		s.TickOccupancy()
	}
}

func (c *Core) processStream(s *memsys.Stream) {
	s.Process(func(pos int, e memsys.Entry) {
		u := e.(*uop)
		if !u.isLoad {
			c.updateStore(u)
			return
		}
		if u.accessDone {
			return
		}
		c.processLoad(s, pos, u)
	})
}

// updateStore tracks a store's operand readiness; a store is "completed"
// (eligible to commit) once both its address and its data are known.
func (c *Core) updateStore(u *uop) {
	if u.completed {
		return
	}
	if !u.valueKnown {
		d := u.dep[1]
		if d == nil {
			u.valueKnown, u.valueAt = true, u.dispatchedAt
		} else if d.completed && d.readyAt <= c.now {
			u.valueKnown, u.valueAt = true, d.readyAt
		}
	}
	if u.valueKnown && u.addrKnown && u.addrAt <= c.now {
		u.completed = true
		u.readyAt = max(u.addrAt, u.valueAt)
	}
}

func (c *Core) processLoad(s *memsys.Stream, pos int, u *uop) {
	// Fast data forwarding (§2.2.2): on a fast-forwarding stream, a
	// store→load pair with the same base register, stack generation and
	// offset can bypass before either effective address is computed.
	if s.Spec.FastForward && c.tryFastForward(s, pos, u) {
		return
	}
	if !u.addrKnown || u.addrAt > c.now {
		return
	}

	// A load may proceed only when the addresses of all previous stores
	// in its stream are known (paper §3.1, applied per stream §2.1).
	var match *uop
	for j := pos - 1; j >= 0; j-- {
		st := s.Queue.At(j).(*uop)
		if st.isLoad {
			continue
		}
		if !st.addrKnown || st.addrAt > c.now {
			c.stats.LoadOrderStalls++
			return
		}
		if u.overlaps(st) {
			match = st
			break
		}
	}
	if match != nil {
		if match.sameAccess(u) {
			// Store-to-load forwarding inside the stream: 1 cycle, no
			// cache access, no port.
			if match.valueKnown && match.valueAt <= c.now {
				u.readyAt = c.now + 1
				u.completed, u.accessDone = true, true
				u.fwdFrom = match
				s.Stats.FwdLoads++
			}
			return
		}
		// Partially overlapping store: wait until it commits and drains
		// from the stream, then access the cache.
		c.stats.PartialOverlapStalls++
		return
	}

	granted, combined := s.Grant(pos, u.ef.Addr, true, u.combineGroup)
	if !granted {
		s.Stats.LoadPortStalls++
		return
	}
	u.combined = u.combined || combined
	ready, ok := s.Cache.Access(c.now, u.ef.Addr, false)
	if !ok {
		s.Stats.LoadMSHRStalls++
		return
	}
	u.readyAt = ready
	u.completed, u.accessDone = true, true
}

// tryFastForward implements the offset-based bypass on a fast-forwarding
// stream. The scan walks older entries; it stops (and the load falls back
// to the normal path) at any frame-generation boundary or at any store
// whose offset is unknown (non-$sp/$fp base), because such a store might
// alias the load.
func (c *Core) tryFastForward(s *memsys.Stream, pos int, u *uop) bool {
	if u.accessDone {
		return true
	}
	if u.dual || (u.baseReg != isa.RegSP && u.baseReg != isa.RegFP) {
		return false
	}
	// Under ForwardStatic the bypass only fires for loads with a
	// statically-proven pair, and only from that pair's store.
	var wantStore uint32
	if c.cfg.ForwardStatic {
		var claimed bool
		if wantStore, claimed = c.fwdPairs[u.ef.PC]; !claimed {
			return false
		}
	}
	for j := pos - 1; j >= 0; j-- {
		st := s.Queue.At(j).(*uop)
		if st.isLoad {
			continue
		}
		if st.dual {
			// Unresolved ambiguous store: might alias anything.
			return false
		}
		if st.spGen != u.spGen {
			return false
		}
		if st.baseReg != isa.RegSP && st.baseReg != isa.RegFP {
			return false
		}
		if st.baseReg == u.baseReg && st.ef.Inst.Imm == u.ef.Inst.Imm {
			if st.ef.Bytes != u.ef.Bytes {
				return false
			}
			if c.cfg.ForwardStatic && st.ef.PC != wantStore {
				return false
			}
			if st.valueKnown && st.valueAt <= c.now {
				u.readyAt = c.now + 1
				u.completed, u.accessDone = true, true
				u.fwdFrom = st
				u.fastForwarded = true
				s.Stats.FastFwdLoads++
				return true
			}
			return false // right store, data not yet ready
		}
	}
	return false
}

// ---------------------------------------------------------------- issue

func (c *Core) issueStage() {
	budget := c.cfg.IssueWidth
	intALU, fpALU := c.cfg.IntALUs, c.cfg.FPALUs
	intMD, fpMD := c.cfg.IntMulDiv, c.cfg.FPMulDiv

	for _, u := range c.rob {
		if budget == 0 {
			break
		}
		if u.issued || u.completed || u.dispatchedAt >= c.now {
			continue
		}
		if u.isMem {
			// Address generation: needs the base register operand.
			if d := u.dep[0]; d != nil && (!d.completed || d.readyAt > c.now) {
				continue
			}
			u.issued = true
			u.issuedAt = c.now
			budget--
			u.addrKnown = true
			u.addrAt = c.now + 1
			if c.annotTLB != nil {
				// Verification must wait for the annotation (§2.1).
				if _, ready := c.annotTLB.Lookup(c.now, u.ef.Addr); ready > c.now {
					u.addrAt = ready + 1
					c.stats.TLBMissStalls++
				}
			}
			if c.checkSteering(u); u.misrouted {
				// The squash invalidated the window we are iterating.
				break
			}
			continue
		}
		if !u.depsReady(c.now) {
			continue
		}
		var fu *int
		switch u.class {
		case isa.ClassIntMul, isa.ClassIntDiv:
			fu = &intMD
		case isa.ClassFPALU:
			fu = &fpALU
		case isa.ClassFPMul, isa.ClassFPDiv:
			fu = &fpMD
		default: // integer ALU, branches, jumps, sys, nop
			fu = &intALU
		}
		if *fu == 0 {
			c.stats.FUStalls++
			continue
		}
		*fu--
		budget--
		u.issued = true
		u.issuedAt = c.now
		u.completed = true
		u.readyAt = c.now + config.Latency(u.class)
		c.stats.Issued++
	}
}

// ------------------------------------------------------------- dispatch

func (c *Core) dispatchStage() {
	if c.now < c.dispatchStallUntil {
		c.stats.RecoveryStallCycles++
		return
	}
	for n := 0; n < c.cfg.IssueWidth && !c.fetchDone; n++ {
		if len(c.rob) >= c.cfg.ROBSize {
			c.stats.ROBFullStalls++
			return
		}
		ef, ok := c.nextEffect()
		if !ok {
			return
		}
		in := ef.Inst

		var local, dual, spec bool
		var target int
		if in.IsMem() {
			local, dual, spec = c.steer(ef)
			if c.fi != nil && c.cfg.Decoupled() {
				// Injected fault: a corrupted steering hint. The
				// verification path (checkSteering) recovers misroutes,
				// so the lie costs cycles, never correctness.
				local = c.fi.FlipSteer(ef.PC, local)
				spec = spec && local
			}
			target = c.route(local)
			if c.streamFull(target) || (dual && c.streamFull(c.route(!local))) {
				// Hold the effect for the next cycle.
				c.pending = &ef
				c.stats.QueueFullStalls++
				return
			}
		}

		u := &uop{
			seq:          c.seq,
			ef:           ef,
			class:        in.Op.Info().Class,
			dispatchedAt: c.now,
		}
		c.seq++

		// Rename the source operands.
		if in.IsMem() {
			u.isMem = true
			u.isLoad = in.IsLoad()
			u.stream = target
			u.dual = dual
			u.spec = spec
			if spec {
				// Event counter, like Misroutes: a squashed-and-replayed
				// spec access counts again on re-dispatch.
				c.streams[target].Stats.SpecSteered++
			}
			u.baseReg = in.BaseReg()
			u.spGen = c.spGen
			u.combineGroup = memsys.GroupNone
			if g, ok := c.combineGroups[ef.PC]; ok {
				u.combineGroup = g
			}
			u.dep[0] = c.producer(in.BaseReg())
			if !u.isLoad {
				u.dep[1] = c.producer(in.Rt)
			}
		} else {
			a, b, na := in.Srcs()
			if na >= 1 {
				u.dep[0] = c.producer(a)
			}
			if na >= 2 {
				u.dep[1] = c.producer(b)
			}
		}

		// Rename the destination and advance the stack generation when
		// $sp or $fp is redefined.
		if dest, hasDest := in.Dest(); hasDest {
			c.renameTable[dest] = u
			if dest == isa.RegSP || dest == isa.RegFP {
				c.spGen++
			}
		}
		u.spGenAfter = c.spGen

		c.rob = append(c.rob, u)
		if u.isMem {
			if u.isLoad {
				c.stats.Loads++
			} else {
				c.stats.Stores++
			}
			if isa.InStackRegion(ef.Addr) {
				if u.isLoad {
					c.stats.LocalLoads++
				} else {
					c.stats.LocalStores++
				}
			}
			c.streams[target].Dispatch(u)
			if dual {
				// The shadow copy occupies the other stream until the
				// address resolves.
				c.streams[c.route(!local)].Insert(u)
				c.stats.DualInserted++
			}
		}

		// Fetch is finished only when the emulator has halted AND no
		// squashed effects remain to replay.
		if c.emu.Halted && len(c.replay) == 0 && c.pending == nil {
			c.fetchDone = true
		}
		if c.cfg.MaxInsts > 0 && c.seq >= c.cfg.MaxInsts {
			c.fetchDone = true
		}
	}
}

// streamFull reports whether stream id cannot accept another access this
// cycle: its architectural size is reached, or an injected queue-pressure
// fault has transiently shrunk its effective capacity.
func (c *Core) streamFull(id int) bool {
	s := c.streams[id]
	if c.fi != nil && s.Occupancy() >= c.fi.QueueCap(id, s.Spec.QueueSize) {
		return true
	}
	return s.Full()
}

// producer returns the in-flight producer of r, or nil when the
// architectural value is already available. Reads of the hardwired zero
// register are always ready.
func (c *Core) producer(r isa.Reg) *uop {
	if r == isa.RegZero {
		return nil
	}
	p := c.renameTable[r]
	if p == nil || (p.completed && p.readyAt <= c.now) {
		return nil
	}
	return p
}

// nextEffect returns the next architectural effect to dispatch: the one
// buffered by a queue-full stall, a squashed effect awaiting replay, or a
// fresh emulator step.
//
// pending must drain before replay. A queue-full stall can park the front
// replay entry in pending; everything still in replay is then younger than
// it. Popping replay first would dispatch out of program order — and, if
// the popped effect stalled too, overwrite pending and silently drop the
// older effect.
func (c *Core) nextEffect() (emu.Effect, bool) {
	if c.pending != nil {
		ef := *c.pending
		c.pending = nil
		return ef, true
	}
	if len(c.replay) > 0 {
		ef := c.replay[0]
		c.replay = c.replay[1:]
		return ef, true
	}
	if c.emu.Halted {
		c.fetchDone = true
		return emu.Effect{}, false
	}
	ef, err := c.emu.Step()
	if err != nil {
		c.fetchDone = true
		c.stats.FetchError = err
		return emu.Effect{}, false
	}
	return ef, true
}

// ------------------------------------------------------------- steering

// steer classifies a memory access at dispatch (paper §2.1): local
// accesses go to the local stream, everything else to the conventional
// one. Under SteerDual, an unhinted access additionally reports dual=true:
// it is inserted into both streams and the wrong copy is killed at address
// resolution (§2.1 footnote 3). Under SteerSpec, a speculate-local access
// reports spec=true: it is steered local on an unproven assignment and a
// later misroute of it is accounted as a misspeculation.
func (c *Core) steer(ef emu.Effect) (local, dual, spec bool) {
	if !c.cfg.Decoupled() {
		return false, false, false
	}
	switch c.cfg.Steering {
	case config.SteerOracle:
		local = isa.InStackRegion(ef.Addr)
	case config.SteerSP:
		local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
	case config.SteerDual:
		switch ef.Inst.Hint {
		case isa.HintLocal:
			local = true
		case isa.HintNonLocal:
			local = false
		default:
			// Ambiguous: occupy both streams, primary by base register.
			local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			dual = true
		}
	case config.SteerStatic:
		// The analyzer's classification table replaces the hint bits;
		// ambiguous accesses fall back to the region predictor.
		switch c.staticClass[ef.PC] {
		case isa.HintLocal:
			local = true
		case isa.HintNonLocal:
			local = false
		default:
			if pred, ok := c.regionPredictor[ef.PC]; ok {
				local = pred
			} else {
				local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			}
			c.stats.PredictedSteers++
		}
	case config.SteerSpec:
		// The Assign pass's confidence table: proofs are trusted,
		// speculate-local is steered local on faith (misroute recovery
		// absorbs the misses), leave-dynamic falls back to the predictor.
		switch c.specClass[ef.PC] {
		case analysis.ConfProvenLocal:
			local = true
		case analysis.ConfProvenNonLocal:
			local = false
		case analysis.ConfSpecLocal:
			local = true
			spec = true
		default:
			if pred, ok := c.regionPredictor[ef.PC]; ok {
				local = pred
			} else {
				local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			}
			c.stats.PredictedSteers++
		}
	default: // SteerHint
		switch ef.Inst.Hint {
		case isa.HintLocal:
			local = true
		case isa.HintNonLocal:
			local = false
		default:
			if pred, ok := c.regionPredictor[ef.PC]; ok {
				local = pred
			} else {
				local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			}
			c.stats.PredictedSteers++
		}
	}
	return local, dual, spec
}

// checkSteering verifies the stream assignment once the effective address
// is known. A wrongly-steered access is removed, re-inserted into the
// correct stream (in program order) and the front end stalls for the
// recovery penalty, as for a branch misprediction (§2.1).
func (c *Core) checkSteering(u *uop) {
	if !c.cfg.Decoupled() {
		return
	}
	local := isa.InStackRegion(u.ef.Addr)
	switch {
	case c.cfg.Steering == config.SteerHint && u.ef.Inst.Hint == isa.HintNone:
		c.regionPredictor[u.ef.PC] = local
	case c.cfg.Steering == config.SteerStatic && c.staticClass[u.ef.PC] == isa.HintNone:
		c.regionPredictor[u.ef.PC] = local
	case c.cfg.Steering == config.SteerSpec && c.specClass[u.ef.PC] == analysis.ConfDynamic:
		c.regionPredictor[u.ef.PC] = local
	}
	right := c.route(local)
	if u.dual {
		// Kill the copy in the wrong stream; no recovery is needed
		// because the right copy is already in place (§2.1 footnote 3).
		if u.stream != right {
			c.stats.DualMisguessed++
			c.streams[u.stream].Stats.Dispatched--
			c.streams[right].Stats.Dispatched++
		}
		c.streams[c.route(!local)].Remove(u)
		u.stream = right
		u.dual = false
		return
	}
	if u.stream == right {
		return
	}
	c.stats.Misroutes++
	u.misrouted = true
	if u.spec {
		// A speculate-local assignment resolved non-local: the recovery
		// below is the misspeculation cost (never a correctness event).
		c.streams[u.stream].Stats.SpecMisrouted++
	}
	// Recovery "like a branch misprediction" (§2.1): squash everything
	// younger, re-steer this access into the correct stream, and stall the
	// front end for the refill penalty. The squashed instructions replay
	// from their recorded effects.
	c.squashYounger(u)
	memsys.Transfer(c.streams[u.stream], c.streams[right], u)
	u.stream = right
	if until := c.now + c.cfg.RecoveryPenalty; until > c.dispatchStallUntil {
		c.dispatchStallUntil = until
	}
}

// squashYounger removes every instruction younger than u from the pipeline
// and schedules its effect for re-dispatch.
func (c *Core) squashYounger(u *uop) {
	idx := -1
	for i, v := range c.rob {
		if v == u {
			idx = i
			break
		}
	}
	if idx < 0 || idx == len(c.rob)-1 {
		// u is the youngest (or already gone): nothing to squash, but a
		// queue-full pending effect is younger and stays pending.
		return
	}
	squashed := c.rob[idx+1:]
	effs := make([]emu.Effect, 0, len(squashed)+1+len(c.replay))
	for _, v := range squashed {
		if v.isMem {
			if v.isLoad {
				c.stats.Loads--
			} else {
				c.stats.Stores--
			}
			if isa.InStackRegion(v.ef.Addr) {
				if v.isLoad {
					c.stats.LocalLoads--
				} else {
					c.stats.LocalStores--
				}
			}
			c.streams[v.stream].Stats.Dispatched--
		}
		effs = append(effs, v.ef)
		c.emitTrace(v, 0, true)
		c.stats.Squashed++
	}
	c.rob = c.rob[:idx+1]
	for _, s := range c.streams {
		s.Squash(u.seq)
	}

	// Rebuild the rename table from the surviving window.
	for i := range c.renameTable {
		c.renameTable[i] = nil
	}
	for _, v := range c.rob {
		if dest, ok := v.ef.Inst.Dest(); ok {
			c.renameTable[dest] = v
		}
	}
	c.spGen = u.spGenAfter

	// Re-dispatch order must be program order: the squashed window is
	// older than a queue-full pending effect, which in turn is older
	// than any effects still waiting in the replay buffer (pending is
	// either a fresh fetch buffered while replay was empty, or the
	// former front of the replay buffer).
	if c.pending != nil {
		effs = append(effs, *c.pending)
		c.pending = nil
	}
	c.replay = append(effs, c.replay...)
	c.fetchDone = false // the replayed effects still need dispatching
}
