package core

import (
	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/memsys"
)

// cycle advances the machine one clock. Stages run back to front so that an
// instruction never flows through more than one stage per cycle: commit,
// then the memory pipelines, then issue, then fetch/dispatch.
//
// Every state *transition* (a commit, an issue, a dispatch, a load
// completing, an effect leaving the emulator or the replay buffer, a
// squash) sets c.progressed; a cycle that ends with it clear changed
// nothing but per-cycle stall counters, and the event-driven engine in
// run.go may then jump the clock to the next registered wake (the
// quiescence invariant, DESIGN.md §12). Whenever a stage creates a
// timestamp more than one cycle in the future (a cache fill, a TLB fill, a
// multi-cycle functional-unit latency, a recovery stall), it registers a
// wake; events exactly one cycle ahead need none, because a skip only
// begins after two consecutive quiescent cycles.
//
//ddvet:hotpath
func (c *Core) cycle() {
	c.now++
	if c.fi != nil {
		c.fi.BeginCycle(c.now)
	}
	for _, s := range c.streams {
		s.Reset()
	}

	c.commitStage()
	c.memoryStage()
	c.issueStage()
	c.dispatchStage()

	// Drop wakes the clock has reached. Next is the scheduler's only
	// shrink path; without this, busy phases (which never ask for the next
	// event) would accumulate stale wakes without bound.
	c.sched.Next(c.now)

	c.stats.Cycles = c.now
}

// addWake registers a wake for the given cycle if it is far enough away to
// need one: cycles at now+1 always execute (a skip requires two quiescent
// cycles first), so only timestamps beyond that are registered.
func (c *Core) addWake(cycle uint64) {
	if cycle > c.now+1 {
		c.sched.Add(cycle)
	}
}

// ---------------------------------------------------------------- commit

// commitStage retires up to IssueWidth completed ROB heads, driving store
// commits through their stream's cache ports.
//
//ddvet:hotpath
func (c *Core) commitStage() {
	for n := 0; n < c.cfg.IssueWidth && c.robN > 0; n++ {
		u := c.robAt(0)
		if !u.completed || u.readyAt > c.now {
			if u.completed {
				c.addWake(u.readyAt)
			}
			break
		}
		if u.isMem && c.fi != nil && len(c.streams) > 1 && c.fi.CommitDesync(u.seq) {
			// Injected fault: corrupt the core's record of which stream
			// the access occupies without moving the queue entry. The
			// CommitStore/Retire head-only invariants below must catch
			// the lie and panic; RunWith contains it into a SimError.
			u.stream = (u.stream + 1) % len(c.streams)
		}
		if u.isMem && !u.isLoad {
			// Stores write their stream's cache at commit and need a
			// port (paper §3.1); commits on a combining stream
			// participate in access combining. CommitStore requires the
			// store to be its stream's oldest entry — commit order is
			// program order, so anything else would be a pipeline bug.
			status, combined := c.streams[u.stream].CommitStore(c.now, u, u.ef.Addr, u.combineGroup)
			if status != memsys.CommitOK {
				// Port or MSHR stall: retry next cycle. On an MSHR
				// stall the port stays consumed, as it would in
				// hardware — and the stall holds until a fill frees an
				// MSHR, so that completion is the next wake.
				if status == memsys.CommitMSHRStall {
					if w := c.streams[u.stream].NextWake(c.now); w > 0 {
						c.addWake(w)
					}
				}
				break
			}
			u.combined = u.combined || combined
		}
		c.progressed = true
		c.robPopHead()
		if u.isMem {
			c.streams[u.stream].Retire(c.now, u)
		}
		// The committed value is architectural now; producer() would
		// answer nil anyway, so drop the rename-table self reference to
		// let the entry recycle.
		if dest, ok := u.ef.Inst.Dest(); ok && c.renameTable[dest] == u {
			c.renameTable[dest] = nil
		}
		// Release any producers still held (a fast-forwarded load
		// completes without ever issuing, so its base-register dep is
		// still in place).
		for j, d := range u.dep {
			if d != nil {
				u.dep[j] = nil
				c.releaseDep(d)
			}
		}
		c.emitTrace(u, c.now, false)
		c.recycleUop(u)
		c.stats.Committed++
		if c.cfg.MaxInsts > 0 && c.stats.Committed >= c.cfg.MaxInsts {
			c.fetchDone = true
			c.robTruncate(0)
			for _, s := range c.streams {
				s.Drain(c.now)
				c.pendHead[s.ID], c.pendTail[s.ID] = nil, nil
			}
			c.issueHead, c.issueTail = nil, nil
			// Every outstanding wake belonged to the drained pipeline.
			c.sched.Reset()
			return
		}
	}
}

// ---------------------------------------------------------------- memory

// memoryStage drives every stream's pending accesses one cycle.
//
//ddvet:hotpath
func (c *Core) memoryStage() {
	for _, s := range c.streams {
		c.processStream(s)
	}
}

// processStream walks one stream's pending-access list: exactly the
// queued entries with memory-stage work left (stores not yet completed,
// loads not yet past the cache), in program order. An entry whose access
// is done is inert in this stage — skipping it changes nothing — and the
// §3.1 order scans below still inspect the full queue window through the
// ring, so the abbreviated walk is observation-equivalent to visiting
// every entry.
//
//ddvet:hotpath
func (c *Core) processStream(s *memsys.Stream) {
	for u := c.pendHead[s.ID]; u != nil; {
		// Processing u can only unlink u itself, so the successor is
		// stable across the body.
		next := u.pendNext[s.ID]
		if u.memWake > c.now {
			u = next
			continue
		}
		if u.isLoad {
			c.processLoad(s, u)
		} else {
			c.updateStore(u)
		}
		u = next
	}
}

// updateStore tracks a store's operand readiness; a store is "completed"
// (eligible to commit) once both its address and its data are known.
func (c *Core) updateStore(u *uop) {
	if u.completed {
		return
	}
	if !u.valueKnown {
		d := u.dep[1]
		if d == nil {
			u.valueKnown, u.valueAt = true, u.dispatchedAt
			c.progressed = true
			c.wakeFwdWaiters(u)
		} else if d.completed && d.readyAt <= c.now {
			u.valueKnown, u.valueAt = true, d.readyAt
			u.dep[1] = nil
			c.releaseDep(d)
			c.progressed = true
			c.wakeFwdWaiters(u)
		} else if d.completed {
			// Arrival bound known from the producer's immutable readyAt:
			// sleep until then.
			u.memWake = d.readyAt
			return
		} else {
			// In-flight producer: its completion push (wrSlotStoreValue,
			// registered at dispatch) rewrites the bound.
			u.memWake = memSleepPush
			return
		}
	}
	if u.addrKnown && u.addrAt <= c.now {
		u.completed = true
		u.readyAt = max(u.addrAt, u.valueAt)
		c.progressed = true
		c.pendDrop(u)
		return
	}
	// Value in hand, address pending: sleep until the store's own issue
	// computes it (memSleepAgen is rewritten to addrAt there).
	if u.addrKnown {
		u.memWake = u.addrAt
	} else {
		u.memWake = memSleepAgen
	}
}

func (c *Core) processLoad(s *memsys.Stream, u *uop) {
	// Fast data forwarding (§2.2.2): on a fast-forwarding stream, a
	// store→load pair with the same base register, stack generation and
	// offset can bypass before either effective address is computed.
	if s.Spec.FastForward && c.tryFastForward(s, u) {
		return
	}
	if !u.addrKnown || u.addrAt > c.now {
		// Pre-address, every visit is this same no-op unless the bypass
		// above could fire. With no bypass upside — fast forwarding off,
		// or a generation-valid "no bypass" verdict — sleep until the
		// address arrives (the load's own issue sets the bound).
		if !s.Spec.FastForward || u.ffState == ffBlocked {
			if u.addrKnown {
				u.memWake = u.addrAt
			} else {
				u.memWake = memSleepAgen
			}
		}
		return
	}

	// Memoized verdict of the last §3.1 order scan, valid while the
	// stream's structure generation is unchanged. Every verdict hinges on
	// facts that are sticky for a fixed queue prefix — a store's address,
	// once known, stays known; overlap is a function of known addresses —
	// plus at most one store's evolving readiness, which is rechecked
	// live. Rerunning the scan could therefore only repeat the verdict.
	if u.osState != osNone && u.osGen == c.qGen[u.stream] {
		switch u.osState {
		case osStallAddr:
			if st := u.osCand; !st.addrKnown || st.addrAt > c.now {
				c.stats.LoadOrderStalls++
				return
			}
			// The blocking store resolved: rescan from scratch.
		case osFwdWait:
			if st := u.osCand; st.valueKnown && st.valueAt <= c.now {
				c.forwardLoad(s, u, st)
			} else {
				// The registration from the memo set is still pending
				// (it drains exactly at the transition we are waiting
				// for), so sleeping until its delivery is safe.
				u.memWake = memSleepPush
			}
			return
		case osPartial:
			if s.Queue.Contains(u.osCand) {
				c.stats.PartialOverlapStalls++
				return
			}
			// The overlapping store drained at commit: rescan. (The
			// liveness probe is safe against recycling — a retired store
			// leaves the queue before its uop can recycle, and re-entry
			// into this queue cannot happen before the dispatch stage,
			// which runs after this one.)
		case osClear:
			c.loadAccess(s, s.Queue.IndexOf(u), u)
			return
		}
	}

	// A load may proceed only when the addresses of all previous stores
	// in its stream are known (paper §3.1, applied per stream §2.1).
	// Only the scan paths need the queue position, so it is resolved
	// this late: the memoized waits above get by without it.
	pos := s.Queue.IndexOf(u)
	var match *uop
	for j := pos - 1; j >= 0; j-- {
		st := s.Queue.At(j).(*uop)
		if st.isLoad {
			continue
		}
		if !st.addrKnown || st.addrAt > c.now {
			u.osState, u.osGen, u.osCand = osStallAddr, c.qGen[u.stream], st
			c.stats.LoadOrderStalls++
			return
		}
		if u.overlaps(st) {
			match = st
			break
		}
	}
	if match != nil {
		if match.sameAccess(u) {
			// Store-to-load forwarding inside the stream: 1 cycle, no
			// cache access, no port.
			u.osState, u.osGen, u.osCand = osFwdWait, c.qGen[u.stream], match
			if match.valueKnown && match.valueAt <= c.now {
				c.forwardLoad(s, u, match)
			} else {
				// Sleep until the match's value transition: the match is
				// older, hence earlier in this walk, so the wake lands
				// the same cycle a poll would have forwarded.
				c.watchFwdValue(u, match)
				u.memWake = memSleepPush
			}
			return
		}
		// Partially overlapping store: wait until it commits and drains
		// from the stream, then access the cache.
		u.osState, u.osGen, u.osCand = osPartial, c.qGen[u.stream], match
		c.stats.PartialOverlapStalls++
		return
	}
	u.osState, u.osGen = osClear, c.qGen[u.stream]
	c.loadAccess(s, pos, u)
}

// forwardLoad completes a load by in-stream store-to-load forwarding
// from match (paper §3.1): 1 cycle, no cache access, no port.
func (c *Core) forwardLoad(s *memsys.Stream, u, match *uop) {
	u.readyAt = c.now + 1
	u.completed, u.accessDone = true, true
	u.fwdFrom = match
	s.Stats.FwdLoads++
	c.progressed = true
	c.pendDrop(u)
	c.pushReady(u)
}

// loadAccess sends an order-clear load to its stream's port arbiter and
// cache. Port and MSHR stalls retry here every cycle — arbitration and
// combining are per-cycle state, so only the scan above is memoizable.
func (c *Core) loadAccess(s *memsys.Stream, pos int, u *uop) {
	granted, combined := s.Grant(pos, u.ef.Addr, true, u.combineGroup)
	if !granted {
		s.Stats.LoadPortStalls++
		return
	}
	if combined && !u.combined {
		u.combined = true
		c.progressed = true
	}
	ready, ok := s.Cache.Access(c.now, u.ef.Addr, false)
	if !ok {
		s.Stats.LoadMSHRStalls++
		if w := s.NextWake(c.now); w > 0 {
			c.addWake(w)
		}
		return
	}
	u.readyAt = ready
	u.completed, u.accessDone = true, true
	c.progressed = true
	c.pendDrop(u)
	c.pushReady(u)
	c.addWake(ready)
}

// tryFastForward implements the offset-based bypass on a fast-forwarding
// stream. The scan walks older entries; it stops (and the load falls back
// to the normal path) at any frame-generation boundary or at any store
// whose offset is unknown (non-$sp/$fp base), because such a store might
// alias the load.
func (c *Core) tryFastForward(s *memsys.Stream, u *uop) bool {
	if u.accessDone {
		return true
	}
	// Memoized outcome of the last full scan, valid while the stream's
	// structure is unchanged. Everything the scan inspects besides the
	// matched store's value readiness is immutable for a fixed queue
	// prefix (base registers, offsets, stack generations; a store's dual
	// flag and the prefix itself are covered by the generation bump), so
	// re-running the walk can only repeat the cached verdict.
	if u.ffState != ffNone && u.ffGen == c.qGen[u.stream] {
		if u.ffState == ffBlocked {
			return false
		}
		if st := u.ffCand; st.valueKnown && st.valueAt <= c.now {
			c.fastForward(s, u, st)
			return true
		}
		// Pre-address there is nothing to poll for beyond the candidate's
		// value (registered at memo set — still pending, or we would have
		// forwarded above) and the load's own address generation.
		if !u.addrKnown {
			u.memWake = memSleepAgen
		}
		return false
	}
	u.ffState, u.ffCand = ffNone, nil
	if u.dual || (u.baseReg != isa.RegSP && u.baseReg != isa.RegFP) {
		u.ffState, u.ffGen = ffBlocked, c.qGen[u.stream]
		return false
	}
	// Under ForwardStatic the bypass only fires for loads with a
	// statically-proven pair, and only from that pair's store.
	var wantStore uint32
	if c.cfg.ForwardStatic {
		var claimed bool
		if wantStore, claimed = c.fwdPairs[u.ef.PC]; !claimed {
			u.ffState, u.ffGen = ffBlocked, c.qGen[u.stream]
			return false
		}
	}
	for j := s.Queue.IndexOf(u) - 1; j >= 0; j-- {
		st := s.Queue.At(j).(*uop)
		if st.isLoad {
			continue
		}
		if st.dual {
			// Unresolved ambiguous store: might alias anything.
			u.ffState, u.ffGen = ffBlocked, c.qGen[u.stream]
			return false
		}
		if st.spGen != u.spGen {
			u.ffState, u.ffGen = ffBlocked, c.qGen[u.stream]
			return false
		}
		if st.baseReg != isa.RegSP && st.baseReg != isa.RegFP {
			u.ffState, u.ffGen = ffBlocked, c.qGen[u.stream]
			return false
		}
		if st.baseReg == u.baseReg && st.ef.Inst.Imm == u.ef.Inst.Imm {
			if st.ef.Bytes != u.ef.Bytes {
				u.ffState, u.ffGen = ffBlocked, c.qGen[u.stream]
				return false
			}
			if c.cfg.ForwardStatic && st.ef.PC != wantStore {
				u.ffState, u.ffGen = ffBlocked, c.qGen[u.stream]
				return false
			}
			if st.valueKnown && st.valueAt <= c.now {
				c.fastForward(s, u, st)
				return true
			}
			// Right store, data not yet ready: recheck just it until the
			// queue changes shape. The store's value transition wakes us,
			// so a pre-address load can sleep meanwhile (once the address
			// is known the normal path below may have work every cycle).
			u.ffState, u.ffGen, u.ffCand = ffWaiting, c.qGen[u.stream], st
			c.watchFwdValue(u, st)
			if !u.addrKnown {
				u.memWake = memSleepAgen
			}
			return false
		}
	}
	u.ffState, u.ffGen = ffBlocked, c.qGen[u.stream]
	return false
}

// fastForward completes a load via the §2.2.2 offset bypass from store st.
func (c *Core) fastForward(s *memsys.Stream, u, st *uop) {
	u.readyAt = c.now + 1
	u.completed, u.accessDone = true, true
	u.fwdFrom = st
	u.fastForwarded = true
	s.Stats.FastFwdLoads++
	c.progressed = true
	c.issueUnlink(u)
	c.pendDrop(u)
	c.pushReady(u)
}

// ---------------------------------------------------------------- issue

// issueStage walks the not-yet-issued list in program order, issuing up to
// IssueWidth operand-ready entries into free functional units.
//
//ddvet:hotpath
func (c *Core) issueStage() {
	budget := c.cfg.IssueWidth
	intALU, fpALU := c.cfg.IntALUs, c.cfg.FPALUs
	intMD, fpMD := c.cfg.IntMulDiv, c.cfg.FPMulDiv

	// The list holds exactly the ROB entries that are neither issued nor
	// completed (both sticky until an entry leaves the ROB), in program
	// order — the same candidates, in the same priority, as a scan of the
	// whole ring.
	for u := c.issueHead; u != nil; {
		if budget == 0 {
			break
		}
		next := u.issueNext
		// The list is in dispatch order, so dispatchedAt is nondecreasing
		// along it: the first entry dispatched this cycle ends the walk —
		// everything younger was dispatched this cycle too.
		if u.dispatchedAt >= c.now {
			break
		}
		// The wakeup push keeps depsPending/issueWake current, so a
		// waiting entry costs one line of its own struct here instead of
		// a walk of its producers: depsPending == 0 with issueWake in
		// the past is exactly "every operand observed ready".
		if u.depsPending > 0 || u.issueWake > c.now {
			u = next
			continue
		}
		if u.isMem {
			// Address generation: the base register operand (the only
			// issue-gating dep of a memory access) has arrived.
			if d := u.dep[0]; d != nil {
				u.dep[0] = nil
				c.releaseDep(d)
			}
			u.issued = true
			u.issuedAt = c.now
			c.issueUnlink(u)
			budget--
			u.addrKnown = true
			u.addrAt = c.now + 1
			c.progressed = true
			if c.annotTLB != nil {
				// Verification must wait for the annotation (§2.1).
				if _, ready := c.annotTLB.Lookup(c.now, u.ef.Addr); ready > c.now {
					u.addrAt = ready + 1
					c.stats.TLBMissStalls++
					c.addWake(u.addrAt)
				}
			}
			if u.memWake == memSleepAgen {
				// The memory stage put this load to sleep pending its own
				// address generation; the concrete bound exists now.
				u.memWake = u.addrAt
			}
			if c.checkSteering(u); u.misrouted {
				// The squash invalidated the window we are iterating.
				break
			}
			u = next
			continue
		}
		for i, d := range u.dep {
			if d != nil {
				u.dep[i] = nil
				c.releaseDep(d)
			}
		}
		var fu *int
		switch u.class {
		case isa.ClassIntMul, isa.ClassIntDiv:
			fu = &intMD
		case isa.ClassFPALU:
			fu = &fpALU
		case isa.ClassFPMul, isa.ClassFPDiv:
			fu = &fpMD
		default: // integer ALU, branches, jumps, sys, nop
			fu = &intALU
		}
		if *fu == 0 {
			c.stats.FUStalls++
			u = next
			continue
		}
		*fu--
		budget--
		u.issued = true
		u.issuedAt = c.now
		c.issueUnlink(u)
		u.completed = true
		u.readyAt = c.now + config.Latency(u.class)
		c.progressed = true
		c.pushReady(u)
		c.addWake(u.readyAt)
		c.stats.Issued++
		u = next
	}
}

// ------------------------------------------------------------- dispatch

func (c *Core) dispatchStage() {
	if c.now < c.dispatchStallUntil {
		c.stats.RecoveryStallCycles++
		return
	}
	for n := 0; n < c.cfg.IssueWidth && !c.fetchDone; n++ {
		if c.robN >= c.cfg.ROBSize {
			c.stats.ROBFullStalls++
			return
		}
		ef, ok := c.nextEffect()
		if !ok {
			return
		}
		in := ef.Inst

		var local, dual, spec bool
		var target int
		if in.IsMem() {
			local, dual, spec = c.steer(ef)
			if c.fi != nil && c.cfg.Decoupled() {
				// Injected fault: a corrupted steering hint. The
				// verification path (checkSteering) recovers misroutes,
				// so the lie costs cycles, never correctness.
				local = c.fi.FlipSteer(ef.PC, local)
				spec = spec && local
			}
			target = c.route(local)
			if c.streamFull(target) || (dual && c.streamFull(c.route(!local))) {
				// Hold the effect for the next cycle.
				c.pending, c.hasPending = ef, true
				c.stats.QueueFullStalls++
				return
			}
		}

		u := c.allocUop()
		u.seq = c.seq
		u.ef = ef
		u.class = in.Op.Info().Class
		u.dispatchedAt = c.now
		c.seq++
		c.progressed = true

		// Rename the source operands.
		if in.IsMem() {
			u.isMem = true
			u.isLoad = in.IsLoad()
			u.stream = target
			u.dual = dual
			u.spec = spec
			if spec {
				// Event counter, like Misroutes: a squashed-and-replayed
				// spec access counts again on re-dispatch.
				c.streams[target].Stats.SpecSteered++
			}
			u.baseReg = in.BaseReg()
			u.spGen = c.spGen
			u.combineGroup = memsys.GroupNone
			if g, ok := c.combineGroups[ef.PC]; ok {
				u.combineGroup = g
			}
			u.dep[0] = c.producer(in.BaseReg())
			if !u.isLoad {
				u.dep[1] = c.producer(in.Rt)
			}
		} else {
			a, b, na := in.Srcs()
			if na >= 1 {
				u.dep[0] = c.producer(a)
			}
			if na >= 2 {
				u.dep[1] = c.producer(b)
			}
		}

		// Register the issue-gating waits: the base register for a
		// memory access, both operands otherwise. A store's data operand
		// (dep[1]) does not gate issue — the memory stage polls it.
		c.watch(u, 0)
		if !u.isMem {
			c.watch(u, 1)
		} else if !u.isLoad {
			// A store's data operand never gates issue, but its arrival
			// bound lets the memory stage sleep instead of polling.
			c.watchStoreValue(u)
		}

		// Rename the destination and advance the stack generation when
		// $sp or $fp is redefined.
		if dest, hasDest := in.Dest(); hasDest {
			c.renameTable[dest] = u
			if dest == isa.RegSP || dest == isa.RegFP {
				c.spGen++
			}
		}
		u.spGenAfter = c.spGen

		c.robPush(u)
		c.issuePush(u)
		if u.isMem {
			if u.isLoad {
				c.stats.Loads++
			} else {
				c.stats.Stores++
			}
			if isa.InStackRegion(ef.Addr) {
				if u.isLoad {
					c.stats.LocalLoads++
				} else {
					c.stats.LocalStores++
				}
			}
			c.streams[target].Dispatch(c.now, u)
			c.pendPush(target, u)
			if dual {
				// The shadow copy occupies the other stream until the
				// address resolves.
				c.streams[c.route(!local)].Insert(c.now, u)
				c.pendPush(c.route(!local), u)
				c.stats.DualInserted++
			}
		}

		// Fetch is finished only when the emulator has halted AND no
		// squashed effects remain to replay.
		if c.emu.Halted && c.replayN == 0 && !c.hasPending {
			c.fetchDone = true
		}
		if c.cfg.MaxInsts > 0 && c.seq >= c.cfg.MaxInsts {
			c.fetchDone = true
		}
	}
}

// streamFull reports whether stream id cannot accept another access this
// cycle: its architectural size is reached, or an injected queue-pressure
// fault has transiently shrunk its effective capacity.
func (c *Core) streamFull(id int) bool {
	s := c.streams[id]
	if c.fi != nil && s.Occupancy() >= c.fi.QueueCap(id, s.Spec.QueueSize) {
		return true
	}
	return s.Full()
}

// producer returns the in-flight producer of r, or nil when the
// architectural value is already available. Reads of the hardwired zero
// register are always ready. A non-nil producer is reference-counted: the
// consumer must release it (releaseDep) when it drops the dep slot.
func (c *Core) producer(r isa.Reg) *uop {
	if r == isa.RegZero {
		return nil
	}
	p := c.renameTable[r]
	if p == nil || (p.completed && p.readyAt <= c.now) {
		return nil
	}
	p.refs++
	return p
}

// nextEffect returns the next architectural effect to dispatch: the one
// buffered by a queue-full stall, a squashed effect awaiting replay, or a
// fresh emulator step.
//
// pending must drain before replay. A queue-full stall can park the front
// replay entry in pending; everything still in replay is then younger than
// it. Popping replay first would dispatch out of program order — and, if
// the popped effect stalled too, overwrite pending and silently drop the
// older effect.
//
// Progress accounting: re-examining the parked pending effect moves no
// state (a re-park leaves the machine exactly as it was), but popping the
// replay buffer, stepping the emulator, or discovering the end of fetch
// all transition state and mark the cycle non-quiescent.
func (c *Core) nextEffect() (emu.Effect, bool) {
	if c.hasPending {
		c.hasPending = false
		return c.pending, true
	}
	if c.replayN > 0 {
		c.progressed = true
		return c.replayPopFront(), true
	}
	if c.emu.Halted {
		if !c.fetchDone {
			c.progressed = true
		}
		c.fetchDone = true
		return emu.Effect{}, false
	}
	ef, err := c.emu.Step()
	c.progressed = true
	if err != nil {
		c.fetchDone = true
		c.stats.FetchError = err
		return emu.Effect{}, false
	}
	return ef, true
}

// ------------------------------------------------------------- steering

// steer classifies a memory access at dispatch (paper §2.1): local
// accesses go to the local stream, everything else to the conventional
// one. Under SteerDual, an unhinted access additionally reports dual=true:
// it is inserted into both streams and the wrong copy is killed at address
// resolution (§2.1 footnote 3). Under SteerSpec, a speculate-local access
// reports spec=true: it is steered local on an unproven assignment and a
// later misroute of it is accounted as a misspeculation.
func (c *Core) steer(ef emu.Effect) (local, dual, spec bool) {
	if !c.cfg.Decoupled() {
		return false, false, false
	}
	switch c.cfg.Steering {
	case config.SteerOracle:
		local = isa.InStackRegion(ef.Addr)
	case config.SteerSP:
		local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
	case config.SteerDual:
		switch ef.Inst.Hint {
		case isa.HintLocal:
			local = true
		case isa.HintNonLocal:
			local = false
		default:
			// Ambiguous: occupy both streams, primary by base register.
			local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			dual = true
		}
	case config.SteerStatic:
		// The analyzer's classification table replaces the hint bits;
		// ambiguous accesses fall back to the region predictor.
		switch c.staticClass[ef.PC] {
		case isa.HintLocal:
			local = true
		case isa.HintNonLocal:
			local = false
		default:
			if pred, ok := c.regionPredictor[ef.PC]; ok {
				local = pred
			} else {
				local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			}
			c.stats.PredictedSteers++
		}
	case config.SteerSpec:
		// The Assign pass's confidence table: proofs are trusted,
		// speculate-local is steered local on faith (misroute recovery
		// absorbs the misses), leave-dynamic falls back to the predictor.
		switch c.specClass[ef.PC] {
		case analysis.ConfProvenLocal:
			local = true
		case analysis.ConfProvenNonLocal:
			local = false
		case analysis.ConfSpecLocal:
			local = true
			spec = true
		default:
			if pred, ok := c.regionPredictor[ef.PC]; ok {
				local = pred
			} else {
				local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			}
			c.stats.PredictedSteers++
		}
	default: // SteerHint
		switch ef.Inst.Hint {
		case isa.HintLocal:
			local = true
		case isa.HintNonLocal:
			local = false
		default:
			if pred, ok := c.regionPredictor[ef.PC]; ok {
				local = pred
			} else {
				local = ef.Inst.BaseReg() == isa.RegSP || ef.Inst.BaseReg() == isa.RegFP
			}
			c.stats.PredictedSteers++
		}
	}
	return local, dual, spec
}

// checkSteering verifies the stream assignment once the effective address
// is known. A wrongly-steered access is removed, re-inserted into the
// correct stream (in program order) and the front end stalls for the
// recovery penalty, as for a branch misprediction (§2.1).
func (c *Core) checkSteering(u *uop) {
	if !c.cfg.Decoupled() {
		return
	}
	local := isa.InStackRegion(u.ef.Addr)
	switch {
	case c.cfg.Steering == config.SteerHint && u.ef.Inst.Hint == isa.HintNone:
		c.regionPredictor[u.ef.PC] = local
	case c.cfg.Steering == config.SteerStatic && c.staticClass[u.ef.PC] == isa.HintNone:
		c.regionPredictor[u.ef.PC] = local
	case c.cfg.Steering == config.SteerSpec && c.specClass[u.ef.PC] == analysis.ConfDynamic:
		c.regionPredictor[u.ef.PC] = local
	}
	right := c.route(local)
	if u.dual {
		// Kill the copy in the wrong stream; no recovery is needed
		// because the right copy is already in place (§2.1 footnote 3).
		if u.stream != right {
			c.stats.DualMisguessed++
			c.streams[u.stream].Stats.Dispatched--
			c.streams[right].Stats.Dispatched++
		}
		wrong := c.route(!local)
		c.pendUnlink(wrong, u)
		c.streams[wrong].Remove(c.now, u)
		c.qGen[wrong]++
		c.qGen[right]++
		c.wakeStream(wrong)
		c.wakeStream(right)
		u.stream = right
		u.dual = false
		return
	}
	if u.stream == right {
		return
	}
	c.stats.Misroutes++
	u.misrouted = true
	if u.spec {
		// A speculate-local assignment resolved non-local: the recovery
		// below is the misspeculation cost (never a correctness event).
		c.streams[u.stream].Stats.SpecMisrouted++
	}
	// Recovery "like a branch misprediction" (§2.1): squash everything
	// younger, re-steer this access into the correct stream, and stall the
	// front end for the refill penalty. The squashed instructions replay
	// from their recorded effects.
	c.squashYounger(u)
	if u.pendingAccess() {
		// squashYounger just removed everything younger than u, so u is
		// the youngest access in the machine: the tail append keeps the
		// destination list in program order.
		c.pendUnlink(u.stream, u)
		c.pendPush(right, u)
	}
	memsys.Transfer(c.now, c.streams[u.stream], c.streams[right], u)
	c.qGen[u.stream]++
	c.qGen[right]++
	c.wakeStream(u.stream)
	c.wakeStream(right)
	u.stream = right
	if until := c.now + c.cfg.RecoveryPenalty; until > c.dispatchStallUntil {
		c.dispatchStallUntil = until
		c.addWake(until)
	}
}

// squashYounger removes every instruction younger than u from the pipeline
// and schedules its effect for re-dispatch.
func (c *Core) squashYounger(u *uop) {
	idx := -1
	for i := 0; i < c.robN; i++ {
		if c.robAt(i) == u {
			idx = i
			break
		}
	}
	if idx < 0 || idx == c.robN-1 {
		// u is the youngest (or already gone): nothing to squash, but a
		// queue-full pending effect is younger and stays pending.
		return
	}
	c.progressed = true
	for i := idx + 1; i < c.robN; i++ {
		v := c.robAt(i)
		if v.isMem {
			if v.pendingAccess() {
				c.pendDrop(v)
			}
			if v.isLoad {
				c.stats.Loads--
			} else {
				c.stats.Stores--
			}
			if isa.InStackRegion(v.ef.Addr) {
				if v.isLoad {
					c.stats.LocalLoads--
				} else {
					c.stats.LocalStores--
				}
			}
			c.streams[v.stream].Stats.Dispatched--
		}
		c.emitTrace(v, 0, true)
		c.stats.Squashed++
	}

	// Re-dispatch order must be program order: the squashed window is
	// older than a queue-full pending effect, which in turn is older
	// than any effects still waiting in the replay buffer (pending is
	// either a fresh fetch buffered while replay was empty, or the
	// former front of the replay buffer). Build that order by pushing
	// onto the front of the deque in reverse.
	if c.hasPending {
		c.replayPushFront(c.pending)
		c.hasPending = false
	}
	for i := c.robN - 1; i > idx; i-- {
		c.replayPushFront(c.robAt(i).ef)
	}

	for _, s := range c.streams {
		s.Squash(c.now, u.seq)
		c.qGen[s.ID]++
		c.wakeStream(s.ID)
	}

	// Recycle the squashed entries: first release every dep they hold (a
	// squashed producer may be referenced by younger squashed consumers),
	// then return them to the pool.
	for i := idx + 1; i < c.robN; i++ {
		v := c.robAt(i)
		for j, d := range v.dep {
			if d != nil {
				v.dep[j] = nil
				c.releaseDep(d)
			}
		}
	}
	for i := idx + 1; i < c.robN; i++ {
		c.recycleUop(c.robAt(i))
	}
	c.robTruncate(idx + 1)

	// Rebuild the rename table from the surviving window.
	for i := range c.renameTable {
		c.renameTable[i] = nil
	}
	for i := 0; i < c.robN; i++ {
		v := c.robAt(i)
		if dest, ok := v.ef.Inst.Dest(); ok {
			c.renameTable[dest] = v
		}
	}
	c.spGen = u.spGenAfter
	c.fetchDone = false // the replayed effects still need dispatching
}
