package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/simerr"
)

// DefaultWatchdogCycles is the forward-progress watchdog window used when
// RunOptions.WatchdogCycles is zero: a pipeline that commits nothing for
// this many consecutive cycles is declared livelocked. The value is far
// above any legitimate stall (the longest architectural delay is a few
// hundred cycles of memory latency and MSHR contention), so a fault-free
// run can never trip it.
const DefaultWatchdogCycles = 1_000_000

// ctxCheckInterval is how often (in cycles) the run loop polls the context
// for cancellation; a power of two so the check compiles to a mask.
const ctxCheckInterval = 1 << 10

// RunOptions bounds and instruments one simulation run. The zero value
// reproduces the historical Run() behaviour (no cycle cap, no deadline,
// default watchdog, no fault injection) bit-for-bit.
type RunOptions struct {
	// MaxCycles aborts the run with a KindMaxCycles SimError once the
	// cycle counter reaches it (0 = unbounded).
	MaxCycles uint64
	// Deadline aborts the run with a KindDeadline SimError once wall-clock
	// time passes it (zero = none). It composes with the context passed to
	// RunWith: whichever expires first wins.
	Deadline time.Time
	// WatchdogCycles is the forward-progress window: a run that commits no
	// instruction for this many consecutive cycles is aborted with a
	// KindWatchdog SimError carrying a pipeline snapshot. 0 selects
	// DefaultWatchdogCycles; use DisableWatchdog to turn the check off.
	WatchdogCycles uint64
	// DisableWatchdog turns the forward-progress check off entirely.
	DisableWatchdog bool
	// Injector, when non-nil, perturbs the run deterministically (see
	// internal/faultinject). Nil injects nothing and costs nothing.
	Injector FaultInjector
}

// FaultInjector is the hook surface a fault-injection campaign drives.
// Implementations must be deterministic functions of their own seed and the
// call sequence: the core calls them at fixed points of its (deterministic)
// cycle loop, so equal seeds replay equal faults. The no-fault answers are:
// FlipSteer returns local unchanged, QueueCap returns arch, AllowGrant
// returns true, CommitDesync returns false.
type FaultInjector interface {
	// BeginCycle is called once at the top of every cycle.
	BeginCycle(now uint64)
	// FlipSteer may corrupt the dispatch-time local/non-local
	// classification of the memory access at pc (a corrupted steering
	// hint); the steering-verification and misroute-recovery machinery
	// must absorb the lie.
	FlipSteer(pc uint32, local bool) bool
	// QueueCap returns the effective capacity of stream id this cycle;
	// returning less than arch models transient queue pressure.
	QueueCap(id, arch int) int
	// AllowGrant reports whether stream id may win a cache port for the
	// given access this cycle; false models a dropped/delayed port grant.
	AllowGrant(id int, addr uint32, isLoad bool) bool
	// CommitDesync, consulted when a memory instruction reaches the
	// commit head, reports whether the core's stream bookkeeping for it
	// should be corrupted — a deliberate invariant violation that must be
	// caught by the memory subsystem's head-only-commit checks and
	// contained into a typed error.
	CommitDesync(seq uint64) bool
}

// SetFaultInjector installs (or with nil removes) a fault injector. It must
// be called before Run/RunWith.
func (c *Core) SetFaultInjector(fi FaultInjector) {
	c.fi = fi
	for _, s := range c.streams {
		if fi == nil {
			s.GrantHook = nil
		} else {
			s.GrantHook = fi.AllowGrant
		}
	}
}

// Run simulates until the program halts and the pipeline drains (or until
// the committed-instruction budget in the configuration is reached), then
// returns the collected statistics. Equivalent to RunWith with a background
// context and zero options.
func (c *Core) Run() (*Result, error) {
	return c.RunWith(context.Background(), RunOptions{})
}

// RunWith simulates like Run, bounded and instrumented by ctx and opts:
// the run ends early — with a *simerr.SimError carrying a pipeline
// snapshot — when the context is cancelled, a deadline passes, the cycle
// cap is reached, or the forward-progress watchdog finds a livelocked
// pipeline. Any invariant-violation panic raised inside the simulator is
// contained and returned as the same error type. When nothing trips, the
// result is bit-identical to Run's.
func (c *Core) RunWith(ctx context.Context, opts RunOptions) (res *Result, err error) {
	if opts.Injector != nil {
		c.SetFaultInjector(opts.Injector)
	}
	if !opts.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, opts.Deadline)
		defer cancel()
	}
	watchdog := opts.WatchdogCycles
	if watchdog == 0 {
		watchdog = DefaultWatchdogCycles
	}

	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &simerr.SimError{
				Kind:       simerr.KindPanic,
				Reason:     fmt.Sprint(p),
				PanicValue: p,
				Stack:      string(debug.Stack()),
				Snapshot:   c.snapshot(),
			}
		}
	}()

	// Legacy safety net: no workload should ever run below 1/100 IPC.
	const cycleSlack = 1_000_000
	lastCommitted, lastProgress := c.stats.Committed, c.now
	for !c.done() {
		c.cycle()
		if c.stats.Committed != lastCommitted {
			lastCommitted, lastProgress = c.stats.Committed, c.now
			c.lastCommitCycle = c.now
		} else if !opts.DisableWatchdog && c.now-lastProgress >= watchdog {
			return nil, c.abort(simerr.KindWatchdog,
				fmt.Sprintf("no instruction committed for %d cycles", watchdog), nil)
		}
		if opts.MaxCycles > 0 && c.now >= opts.MaxCycles {
			return nil, c.abort(simerr.KindMaxCycles,
				fmt.Sprintf("cycle cap %d reached", opts.MaxCycles), nil)
		}
		if c.now%ctxCheckInterval == 0 {
			if cerr := ctx.Err(); cerr != nil {
				kind := simerr.KindCanceled
				reason := "run canceled"
				if errors.Is(cerr, context.DeadlineExceeded) {
					kind, reason = simerr.KindDeadline, "deadline exceeded"
				}
				return nil, c.abort(kind, reason, cerr)
			}
		}
		if c.now > 100*c.stats.Committed+cycleSlack {
			return nil, c.abort(simerr.KindBudget,
				"cycle budget exhausted", ErrBudget)
		}
	}
	return c.result(), nil
}

// abort builds the typed error for an abnormal end of the run.
func (c *Core) abort(kind simerr.Kind, reason string, cause error) *simerr.SimError {
	return &simerr.SimError{
		Kind:     kind,
		Reason:   reason,
		Snapshot: c.snapshot(),
		Err:      cause,
	}
}

// snapshot captures the pipeline state for a SimError. It only reads, so it
// is safe to call even from the panic-recovery path where the machine state
// may be mid-cycle.
func (c *Core) snapshot() simerr.Snapshot {
	s := simerr.Snapshot{
		Cycle:           c.now,
		Committed:       c.stats.Committed,
		LastCommitCycle: c.lastCommitCycle,
		ROBLen:          len(c.rob),
		ROBCap:          c.cfg.ROBSize,
	}
	if len(c.rob) > 0 {
		s.ROBHead = entryState(c.rob[0])
	}
	for _, st := range c.streams {
		left, line, group := st.CombineWindow()
		ss := simerr.StreamState{
			Name:         st.Spec.Name,
			Len:          st.Occupancy(),
			Cap:          st.Spec.QueueSize,
			Ports:        st.Ports.Limit(),
			PortsInUse:   st.Ports.InUse(),
			CombineLeft:  left,
			CombineLine:  line,
			CombineGroup: group,
		}
		if st.Occupancy() > 0 {
			ss.Head = entryState(st.Queue.Head().(*uop))
		}
		s.Streams = append(s.Streams, ss)
	}
	return s
}

func entryState(u *uop) *simerr.EntryState {
	return &simerr.EntryState{
		Seq:          u.seq,
		PC:           u.ef.PC,
		Text:         u.ef.Inst.String(),
		IsLoad:       u.isMem && u.isLoad,
		IsStore:      u.isMem && !u.isLoad,
		Stream:       u.stream,
		AddrKnown:    u.addrKnown,
		Addr:         u.ef.Addr,
		Issued:       u.issued,
		Completed:    u.completed,
		DispatchedAt: u.dispatchedAt,
	}
}
