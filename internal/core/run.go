package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/memsys"
	"repro/internal/simerr"
)

// DefaultWatchdogCycles is the forward-progress watchdog window used when
// RunOptions.WatchdogCycles is zero: a pipeline that commits nothing for
// this many consecutive cycles is declared livelocked. The value is far
// above any legitimate stall (the longest architectural delay is a few
// hundred cycles of memory latency and MSHR contention), so a fault-free
// run can never trip it.
const DefaultWatchdogCycles = 1_000_000

// ctxCheckInterval is how often the run loop polls the context for
// cancellation; a power of two so the check compiles to a mask. The tick
// engine counts cycles, the event engine counts loop iterations (a skipped
// gap consumes no wall-clock time, so iterations are the right unit there).
const ctxCheckInterval = 1 << 10

// cycleSlack is the legacy cycle safety budget: no workload should ever run
// below 1/100 IPC, so a run is aborted once now > 100*committed + slack.
const cycleSlack = 1_000_000

// maxSkipChunk bounds one clock jump of the event engine so that a pipeline
// with no registered wake (e.g. watchdog disabled and livelocked) still
// returns to the loop to poll the context.
const maxSkipChunk = 1 << 20

// Engine selects the run loop.
type Engine uint8

const (
	// EngineEvent (the default) is the next-event engine: when two
	// consecutive cycles make no state transition, the clock jumps to the
	// next registered wake and the per-cycle stall counters are replayed
	// across the gap. Results are bit-identical to EngineTick (the
	// quiescence invariant, DESIGN.md §12; asserted by the differential
	// tests), only faster on stall-dominated workloads.
	EngineEvent Engine = iota
	// EngineTick is the classic loop: one cycle() per clock, no skipping.
	EngineTick
)

// String returns the flag spelling of e.
func (e Engine) String() string {
	if e == EngineTick {
		return "tick"
	}
	return "event"
}

// ErrUnknownEngine: the -engine value names no run-loop engine.
var ErrUnknownEngine = errors.New("core: unknown engine (want tick or event)")

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "event", "":
		return EngineEvent, nil
	case "tick":
		return EngineTick, nil
	}
	return EngineEvent, fmt.Errorf("%w: %q", ErrUnknownEngine, s)
}

// RunOptions bounds and instruments one simulation run. The zero value
// reproduces the historical Run() behaviour (no cycle cap, no deadline,
// default watchdog, no fault injection) bit-for-bit.
type RunOptions struct {
	// MaxCycles aborts the run with a KindMaxCycles SimError once the
	// cycle counter reaches it (0 = unbounded).
	MaxCycles uint64
	// Deadline aborts the run with a KindDeadline SimError once wall-clock
	// time passes it (zero = none). It composes with the context passed to
	// RunWith: whichever expires first wins.
	Deadline time.Time
	// WatchdogCycles is the forward-progress window: a run that commits no
	// instruction for this many consecutive cycles is aborted with a
	// KindWatchdog SimError carrying a pipeline snapshot. 0 selects
	// DefaultWatchdogCycles; use DisableWatchdog to turn the check off.
	WatchdogCycles uint64
	// DisableWatchdog turns the forward-progress check off entirely.
	DisableWatchdog bool
	// Injector, when non-nil, perturbs the run deterministically (see
	// internal/faultinject). Nil injects nothing and costs nothing. An
	// armed injector also pins the engine to tick-equivalent behaviour:
	// BeginCycle must be called once per cycle for a campaign to replay
	// deterministically, so the event engine never skips while it is set.
	Injector FaultInjector
	// Engine selects the run loop; the zero value is EngineEvent.
	Engine Engine
}

// FaultInjector is the hook surface a fault-injection campaign drives.
// Implementations must be deterministic functions of their own seed and the
// call sequence: the core calls them at fixed points of its (deterministic)
// cycle loop, so equal seeds replay equal faults. The no-fault answers are:
// FlipSteer returns local unchanged, QueueCap returns arch, AllowGrant
// returns true, CommitDesync returns false.
type FaultInjector interface {
	// BeginCycle is called once at the top of every cycle.
	BeginCycle(now uint64)
	// FlipSteer may corrupt the dispatch-time local/non-local
	// classification of the memory access at pc (a corrupted steering
	// hint); the steering-verification and misroute-recovery machinery
	// must absorb the lie.
	FlipSteer(pc uint32, local bool) bool
	// QueueCap returns the effective capacity of stream id this cycle;
	// returning less than arch models transient queue pressure.
	QueueCap(id, arch int) int
	// AllowGrant reports whether stream id may win a cache port for the
	// given access this cycle; false models a dropped/delayed port grant.
	AllowGrant(id int, addr uint32, isLoad bool) bool
	// CommitDesync, consulted when a memory instruction reaches the
	// commit head, reports whether the core's stream bookkeeping for it
	// should be corrupted — a deliberate invariant violation that must be
	// caught by the memory subsystem's head-only-commit checks and
	// contained into a typed error.
	CommitDesync(seq uint64) bool
}

// SetFaultInjector installs (or with nil removes) a fault injector. It must
// be called before Run/RunWith.
func (c *Core) SetFaultInjector(fi FaultInjector) {
	c.fi = fi
	for _, s := range c.streams {
		if fi == nil {
			s.GrantHook = nil
		} else {
			s.GrantHook = fi.AllowGrant
		}
	}
}

// Run simulates until the program halts and the pipeline drains (or until
// the committed-instruction budget in the configuration is reached), then
// returns the collected statistics. Equivalent to RunWith with a background
// context and zero options.
func (c *Core) Run() (*Result, error) {
	return c.RunWith(context.Background(), RunOptions{})
}

// RunWith simulates like Run, bounded and instrumented by ctx and opts:
// the run ends early — with a *simerr.SimError carrying a pipeline
// snapshot — when the context is cancelled, a deadline passes, the cycle
// cap is reached, or the forward-progress watchdog finds a livelocked
// pipeline. Any invariant-violation panic raised inside the simulator is
// contained and returned as the same error type. When nothing trips, the
// result is bit-identical to Run's.
func (c *Core) RunWith(ctx context.Context, opts RunOptions) (res *Result, err error) {
	if opts.Injector != nil {
		c.SetFaultInjector(opts.Injector)
	}
	if !opts.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, opts.Deadline)
		defer cancel()
	}
	watchdog := opts.WatchdogCycles
	if watchdog == 0 {
		watchdog = DefaultWatchdogCycles
	}

	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &simerr.SimError{
				Kind:       simerr.KindPanic,
				Reason:     fmt.Sprint(p),
				PanicValue: p,
				Stack:      string(debug.Stack()),
				Snapshot:   c.snapshot(),
			}
		}
	}()

	if opts.Engine == EngineTick {
		return c.runTick(ctx, opts, watchdog)
	}
	return c.runEvent(ctx, opts, watchdog)
}

// runTick is the classic run loop: one cycle per clock tick, preserved
// verbatim as the reference the event engine is differentially tested
// against.
func (c *Core) runTick(ctx context.Context, opts RunOptions, watchdog uint64) (*Result, error) {
	lastCommitted, lastProgress := c.stats.Committed, c.now
	for !c.done() {
		c.cycle()
		if c.stats.Committed != lastCommitted {
			lastCommitted, lastProgress = c.stats.Committed, c.now
			c.lastCommitCycle = c.now
		} else if !opts.DisableWatchdog && c.now-lastProgress >= watchdog {
			return nil, c.abort(simerr.KindWatchdog,
				fmt.Sprintf("no instruction committed for %d cycles", watchdog), nil)
		}
		if opts.MaxCycles > 0 && c.now >= opts.MaxCycles {
			return nil, c.abort(simerr.KindMaxCycles,
				fmt.Sprintf("cycle cap %d reached", opts.MaxCycles), nil)
		}
		if c.now%ctxCheckInterval == 0 {
			if cerr := ctx.Err(); cerr != nil {
				kind := simerr.KindCanceled
				reason := "run canceled"
				if errors.Is(cerr, context.DeadlineExceeded) {
					kind, reason = simerr.KindDeadline, "deadline exceeded"
				}
				return nil, c.abort(kind, reason, cerr)
			}
		}
		if c.now > 100*c.stats.Committed+cycleSlack {
			return nil, c.abort(simerr.KindBudget,
				"cycle budget exhausted", ErrBudget)
		}
	}
	return c.result(), nil
}

// runEvent is the next-event run loop. It executes cycles exactly like
// runTick until it has seen two consecutive quiescent cycles — cycles in
// which no state transition happened (c.progressed stayed false), only
// per-cycle stall counters moved. The second such cycle is the
// *representative* cycle: by the quiescence invariant (DESIGN.md §12),
// every following cycle up to (exclusive) the earliest registered wake is
// its exact repetition. The engine therefore jumps the clock to one cycle
// before the next wake and multiplies the representative cycle's counter
// deltas across the gap; the wake cycle itself executes for real.
//
// Every abort boundary clamps the jump to land one cycle *before* it, so
// the boundary cycle also executes for real and the abort fires with the
// same cycle number, counters and pipeline snapshot the tick engine would
// produce. With a fault injector armed the engine never skips (BeginCycle
// must run every cycle for deterministic replay), making it tick-identical
// by construction.
func (c *Core) runEvent(ctx context.Context, opts RunOptions, watchdog uint64) (*Result, error) {
	lastCommitted, lastProgress := c.stats.Committed, c.now
	prevQuiet := false
	var iters uint64
	for !c.done() {
		canSkip := prevQuiet && c.fi == nil
		if canSkip {
			c.snapStallCounters()
		}
		c.progressed = false
		c.cycle()
		quiet := !c.progressed
		if c.stats.Committed != lastCommitted {
			lastCommitted, lastProgress = c.stats.Committed, c.now
			c.lastCommitCycle = c.now
		} else if !opts.DisableWatchdog && c.now-lastProgress >= watchdog {
			return nil, c.abort(simerr.KindWatchdog,
				fmt.Sprintf("no instruction committed for %d cycles", watchdog), nil)
		}
		if opts.MaxCycles > 0 && c.now >= opts.MaxCycles {
			return nil, c.abort(simerr.KindMaxCycles,
				fmt.Sprintf("cycle cap %d reached", opts.MaxCycles), nil)
		}
		iters++
		if iters%ctxCheckInterval == 0 {
			if cerr := ctx.Err(); cerr != nil {
				kind := simerr.KindCanceled
				reason := "run canceled"
				if errors.Is(cerr, context.DeadlineExceeded) {
					kind, reason = simerr.KindDeadline, "deadline exceeded"
				}
				return nil, c.abort(kind, reason, cerr)
			}
		}
		if c.now > 100*c.stats.Committed+cycleSlack {
			return nil, c.abort(simerr.KindBudget,
				"cycle budget exhausted", ErrBudget)
		}

		if quiet && canSkip {
			// Land one cycle before the earliest of: the next wake, the
			// watchdog boundary, the cycle cap, the budget boundary, or
			// the chunk bound (which keeps the ctx poll live when nothing
			// else binds).
			target := c.now + maxSkipChunk
			if w, ok := c.sched.Next(c.now); ok && w-1 < target {
				target = w - 1
			}
			if !opts.DisableWatchdog {
				if b := lastProgress + watchdog - 1; b < target {
					target = b
				}
			}
			if opts.MaxCycles > 0 {
				if b := opts.MaxCycles - 1; b < target {
					target = b
				}
			}
			// The budget aborts at the first cycle strictly greater than
			// 100*committed+slack; landing exactly on the bound makes the
			// next real cycle the aborting one.
			if b := 100*c.stats.Committed + cycleSlack; b < target {
				target = b
			}
			if target > c.now {
				c.skipTo(target)
			}
		}
		prevQuiet = quiet
	}
	return c.result(), nil
}

// stallSnapshot holds the counters that a quiescent cycle may still
// increment. Everything else the simulator counts only moves on a state
// transition (which sets c.progressed and forbids skipping), so this set —
// and only this set — must be replayed across a skipped gap.
type stallSnapshot struct {
	loadOrder, partialOverlap, fu, robFull, queueFull, recovery uint64
	streams                                                     [memsys.MaxStreams]streamStallSnap
}

type streamStallSnap struct {
	loadPort, storePort, loadMSHR, storeMSHR, combined, rejected uint64
}

// snapStallCounters records the pre-cycle values of the quiescent-cycle
// counters so skipTo can compute what one representative cycle added.
func (c *Core) snapStallCounters() {
	s := &c.stallSnap
	s.loadOrder = c.stats.LoadOrderStalls
	s.partialOverlap = c.stats.PartialOverlapStalls
	s.fu = c.stats.FUStalls
	s.robFull = c.stats.ROBFullStalls
	s.queueFull = c.stats.QueueFullStalls
	s.recovery = c.stats.RecoveryStallCycles
	for i, st := range c.streams {
		ss := &s.streams[i]
		ss.loadPort = st.Stats.LoadPortStalls
		ss.storePort = st.Stats.StorePortStalls
		ss.loadMSHR = st.Stats.LoadMSHRStalls
		ss.storeMSHR = st.Stats.StoreMSHRStalls
		ss.combined = st.Stats.Combined
		ss.rejected = st.Cache.Stats.Rejected
	}
}

// skipTo advances the clock from the just-executed representative cycle to
// target without executing the cycles in between: each would have repeated
// the representative cycle exactly, so its counter deltas (current value
// minus the pre-cycle snapshot) are multiplied across the gap. Occupancy
// integrals need nothing here — they accumulate lazily off the clock and
// fold the gap in at the next queue mutation.
func (c *Core) skipTo(target uint64) {
	span := target - c.now
	s := &c.stallSnap
	c.stats.LoadOrderStalls += span * (c.stats.LoadOrderStalls - s.loadOrder)
	c.stats.PartialOverlapStalls += span * (c.stats.PartialOverlapStalls - s.partialOverlap)
	c.stats.FUStalls += span * (c.stats.FUStalls - s.fu)
	c.stats.ROBFullStalls += span * (c.stats.ROBFullStalls - s.robFull)
	c.stats.QueueFullStalls += span * (c.stats.QueueFullStalls - s.queueFull)
	c.stats.RecoveryStallCycles += span * (c.stats.RecoveryStallCycles - s.recovery)
	for i, st := range c.streams {
		ss := &s.streams[i]
		st.Stats.LoadPortStalls += span * (st.Stats.LoadPortStalls - ss.loadPort)
		st.Stats.StorePortStalls += span * (st.Stats.StorePortStalls - ss.storePort)
		st.Stats.LoadMSHRStalls += span * (st.Stats.LoadMSHRStalls - ss.loadMSHR)
		st.Stats.StoreMSHRStalls += span * (st.Stats.StoreMSHRStalls - ss.storeMSHR)
		st.Stats.Combined += span * (st.Stats.Combined - ss.combined)
		st.Cache.Stats.Rejected += span * (st.Cache.Stats.Rejected - ss.rejected)
	}
	c.now = target
	c.stats.Cycles = target
}

// abort builds the typed error for an abnormal end of the run.
func (c *Core) abort(kind simerr.Kind, reason string, cause error) *simerr.SimError {
	return &simerr.SimError{
		Kind:     kind,
		Reason:   reason,
		Snapshot: c.snapshot(),
		Err:      cause,
	}
}

// snapshot captures the pipeline state for a SimError. It only reads, so it
// is safe to call even from the panic-recovery path where the machine state
// may be mid-cycle.
func (c *Core) snapshot() simerr.Snapshot {
	s := simerr.Snapshot{
		Cycle:           c.now,
		Committed:       c.stats.Committed,
		LastCommitCycle: c.lastCommitCycle,
		ROBLen:          c.robN,
		ROBCap:          c.cfg.ROBSize,
	}
	if c.robN > 0 {
		s.ROBHead = entryState(c.robAt(0))
	}
	for _, st := range c.streams {
		left, line, group := st.CombineWindow()
		ss := simerr.StreamState{
			Name:         st.Spec.Name,
			Len:          st.Occupancy(),
			Cap:          st.Spec.QueueSize,
			Ports:        st.Ports.Limit(),
			PortsInUse:   st.Ports.InUse(),
			CombineLeft:  left,
			CombineLine:  line,
			CombineGroup: group,
		}
		if st.Occupancy() > 0 {
			ss.Head = entryState(st.Queue.Head().(*uop))
		}
		s.Streams = append(s.Streams, ss)
	}
	return s
}

func entryState(u *uop) *simerr.EntryState {
	return &simerr.EntryState{
		Seq:          u.seq,
		PC:           u.ef.PC,
		Text:         u.ef.Inst.String(),
		IsLoad:       u.isMem && u.isLoad,
		IsStore:      u.isMem && !u.isLoad,
		Stream:       u.stream,
		AddrKnown:    u.addrKnown,
		Addr:         u.ef.Addr,
		Issued:       u.issued,
		Completed:    u.completed,
		DispatchedAt: u.dispatchedAt,
	}
}
