package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/emu"
)

// genRandomProgram emits a random but well-formed, halting program: a
// bounded outer loop whose body mixes ALU chains, stack pushes/pops,
// global array traffic, FP arithmetic and calls to a random leaf. The
// generator only uses constructs that terminate, so every program halts.
func genRandomProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("\t.text\n\t.global main\nmain:\n")
	iters := 20 + rng.Intn(200)
	fmt.Fprintf(&b, "\tla   $s6, arr\n")
	fmt.Fprintf(&b, "\tli   $s0, %d\n", iters)
	b.WriteString("outer:\n")

	nOps := 5 + rng.Intn(30)
	frame := 4 * (2 + rng.Intn(8))
	pushed := false
	if rng.Intn(2) == 0 {
		pushed = true
		fmt.Fprintf(&b, "\taddi $sp, $sp, %d\n", -frame)
	}
	for i := 0; i < nOps; i++ {
		r1, r2, r3 := 8+rng.Intn(8), 8+rng.Intn(8), 8+rng.Intn(8)
		switch rng.Intn(10) {
		case 0, 1, 2:
			ops := []string{"add", "sub", "and", "or", "xor", "mul"}
			fmt.Fprintf(&b, "\t%s $t%d, $t%d, $t%d\n", ops[rng.Intn(len(ops))], r1-8, r2-8, r3-8)
		case 3:
			fmt.Fprintf(&b, "\taddi $t%d, $t%d, %d\n", r1-8, r2-8, rng.Intn(1000)-500)
		case 4:
			if pushed {
				off := 4 * rng.Intn(frame/4)
				fmt.Fprintf(&b, "\tsw   $t%d, %d($sp) !local\n", r1-8, off)
				fmt.Fprintf(&b, "\tlw   $t%d, %d($sp) !local\n", r2-8, off)
			}
		case 5:
			off := 4 * rng.Intn(64)
			fmt.Fprintf(&b, "\tsw   $t%d, %d($s6) !nonlocal\n", r1-8, off)
		case 6:
			off := 4 * rng.Intn(64)
			fmt.Fprintf(&b, "\tlw   $t%d, %d($s6) !nonlocal\n", r1-8, off)
		case 7:
			fmt.Fprintf(&b, "\tcvtif $f%d, $t%d\n", rng.Intn(8), r1-8)
			fmt.Fprintf(&b, "\tfadd $f%d, $f%d, $f%d\n", rng.Intn(8), rng.Intn(8), rng.Intn(8))
		case 8:
			fmt.Fprintf(&b, "\tjal  leaf%d\n", rng.Intn(3))
		case 9:
			fmt.Fprintf(&b, "\tslli $t%d, $t%d, %d\n", r1-8, r2-8, rng.Intn(8))
		}
	}
	if pushed {
		fmt.Fprintf(&b, "\taddi $sp, $sp, %d\n", frame)
	}
	b.WriteString("\taddi $s0, $s0, -1\n\tbnez $s0, outer\n")
	b.WriteString("\tadd  $t0, $t0, $t1\n\tout  $t0\n\tout  $t7\n\thalt\n")

	for l := 0; l < 3; l++ {
		fmt.Fprintf(&b, "leaf%d:\n", l)
		fmt.Fprintf(&b, "\taddi $sp, $sp, -8\n")
		fmt.Fprintf(&b, "\tsw   $ra, 4($sp) !local\n")
		fmt.Fprintf(&b, "\tsw   $t0, 0($sp) !local\n")
		fmt.Fprintf(&b, "\taddi $t0, $t0, %d\n", l+1)
		fmt.Fprintf(&b, "\tlw   $t0, 0($sp) !local\n")
		fmt.Fprintf(&b, "\tlw   $ra, 4($sp) !local\n")
		fmt.Fprintf(&b, "\taddi $sp, $sp, 8\n\tjr $ra\n")
	}
	b.WriteString("\t.data\narr:\t.space 256\n")
	return b.String()
}

// TestRandomProgramsMatchEmulator is the core's property test: for many
// random programs and random configurations, the timing model must commit
// exactly what the emulator executes and produce identical output.
func TestRandomProgramsMatchEmulator(t *testing.T) {
	rng := rand.New(rand.NewSource(990217))
	trials := 60
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		src := genRandomProgram(rng)
		prog, err := asm.Assemble(fmt.Sprintf("rand%d.s", trial), src)
		if err != nil {
			t.Fatalf("trial %d: assemble: %v\n%s", trial, err, src)
		}
		ref := emu.New(prog)
		if _, err := ref.Run(10_000_000); err != nil {
			t.Fatalf("trial %d: emulate: %v", trial, err)
		}

		cfg := config.Default().WithPorts(1+rng.Intn(4), rng.Intn(4))
		if rng.Intn(2) == 0 {
			cfg = cfg.WithOptimizations(1 + rng.Intn(4))
		}
		switch rng.Intn(4) {
		case 1:
			cfg.Steering = config.SteerSP
		case 2:
			cfg.Steering = config.SteerOracle
		case 3:
			cfg.Steering = config.SteerDual
		}

		c, err := New(prog, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, cfg.Name(), err)
		}
		if res.Committed != ref.InstCount {
			t.Fatalf("trial %d (%s): committed %d, want %d",
				trial, cfg.Name(), res.Committed, ref.InstCount)
		}
		if len(res.Output) != len(ref.Output) {
			t.Fatalf("trial %d: outputs %d vs %d", trial, len(res.Output), len(ref.Output))
		}
		for i := range ref.Output {
			if res.Output[i] != ref.Output[i] {
				t.Fatalf("trial %d: output[%d] = %d, want %d",
					trial, i, res.Output[i], ref.Output[i])
			}
		}
		// Timing invariants.
		if res.Cycles == 0 || res.Cycles < res.Committed/uint64(cfg.IssueWidth) {
			t.Fatalf("trial %d: impossible cycle count %d for %d insts",
				trial, res.Cycles, res.Committed)
		}
		assertStreamsDrained(t, c, fmt.Sprintf("trial %d (%s)", trial, cfg.Name()))
	}
}

// assertStreamsDrained checks the post-run stream invariant: a cleanly
// finished pipeline leaves every access queue empty — no leaked dual
// shadow copies, no misroute-recovery residue.
func assertStreamsDrained(t *testing.T, c *Core, ctx string) {
	t.Helper()
	for _, s := range c.streams {
		if occ := s.Occupancy(); occ != 0 {
			t.Fatalf("%s: stream %s finished with occupancy %d, want 0",
				ctx, s.Spec.Name, occ)
		}
		if left := s.Drain(c.now); left != 0 {
			t.Fatalf("%s: stream %s drained %d residual entries, want 0",
				ctx, s.Spec.Name, left)
		}
	}
}

// corruptHints flips steering hints at random so SteerHint misroutes.
func corruptHints(src string, rng *rand.Rand) string {
	lines := strings.Split(src, "\n")
	for i, ln := range lines {
		if rng.Intn(2) != 0 {
			continue
		}
		if strings.Contains(ln, "!nonlocal") {
			lines[i] = strings.Replace(ln, "!nonlocal", "!local", 1)
		} else if strings.Contains(ln, "!local") {
			lines[i] = strings.Replace(ln, "!local", "!nonlocal", 1)
		}
	}
	return strings.Join(lines, "\n")
}

// stripHints removes all steering hints, making every access ambiguous
// (dual-inserted under SteerDual).
func stripHints(src string) string {
	src = strings.ReplaceAll(src, "!nonlocal", "")
	return strings.ReplaceAll(src, "!local", "")
}

// injectAliasedStackAccesses adds, to every loop iteration, accesses
// through a non-$sp alias of the stack pointer: the base-register guess
// classifies them non-local while they resolve local, so dual steering
// misguesses and must kill its primary (not shadow) copy.
func injectAliasedStackAccesses(src string) string {
	snippet := "\taddi $sp, $sp, -8\n" +
		"\taddi $s7, $sp, 0\n" +
		"\tsw   $t0, 0($s7)\n" +
		"\tlw   $t1, 0($s7)\n" +
		"\tsw   $t2, 4($s7)\n" +
		"\tlw   $t3, 4($s7)\n" +
		"\taddi $sp, $sp, 8\n"
	return strings.Replace(src, "outer:\n", "outer:\n"+snippet, 1)
}

// TestMisrouteAndDualLeaveNoResidue stresses the two recovery paths that
// move entries between streams mid-flight: misroute recovery (squash and
// re-steer) under corrupted hints, and dual insertion (shadow-copy kill)
// with no hints at all. Both must still commit exactly the emulated
// instruction stream and leave the streams empty.
func TestMisrouteAndDualLeaveNoResidue(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 20
	if testing.Short() {
		trials = 6
	}
	var misroutes, duals, dualWrong uint64
	for trial := 0; trial < trials; trial++ {
		src := genRandomProgram(rng)
		for _, tc := range []struct {
			name     string
			src      string
			steering config.SteeringPolicy
		}{
			{"misroute", corruptHints(src, rng), config.SteerHint},
			{"dual", injectAliasedStackAccesses(stripHints(src)), config.SteerDual},
		} {
			prog, err := asm.Assemble(fmt.Sprintf("%s%d.s", tc.name, trial), tc.src)
			if err != nil {
				t.Fatalf("trial %d %s: assemble: %v", trial, tc.name, err)
			}
			ref := emu.New(prog)
			if _, err := ref.Run(10_000_000); err != nil {
				t.Fatalf("trial %d %s: emulate: %v", trial, tc.name, err)
			}
			cfg := config.Default().WithPorts(2, 2)
			cfg.Steering = tc.steering
			c, err := New(prog, cfg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, tc.name, err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, tc.name, err)
			}
			if res.Committed != ref.InstCount {
				t.Fatalf("trial %d %s: committed %d, want %d",
					trial, tc.name, res.Committed, ref.InstCount)
			}
			for i := range ref.Output {
				if res.Output[i] != ref.Output[i] {
					t.Fatalf("trial %d %s: output[%d] = %d, want %d",
						trial, tc.name, i, res.Output[i], ref.Output[i])
				}
			}
			assertStreamsDrained(t, c, fmt.Sprintf("trial %d %s", trial, tc.name))
			misroutes += res.Misroutes
			duals += res.DualInserted
			dualWrong += res.DualMisguessed
		}
	}
	// The stress must actually exercise the recovery paths.
	if misroutes == 0 {
		t.Error("corrupted hints produced no misroutes")
	}
	if duals == 0 {
		t.Error("hint-free programs produced no dual insertions")
	}
	if dualWrong == 0 {
		t.Error("dual steering never misguessed; wrong-copy kill untested")
	}
}
