package core

import (
	"testing"

	"repro/internal/config"
)

// dualProgram repeatedly performs unhinted stack accesses through a
// copied pointer (the Figure 4 ambiguity) plus unhinted global accesses.
const dualProgram = `
        .text
main:
        move $s0, $sp
        addi $sp, $sp, -8
        la   $s2, g
        li   $s1, 0
        li   $s3, 60
loop:
        sw   $s1, -4($s0)
        lw   $t0, -4($s0)
        sw   $t0, 0($s2)
        lw   $t1, 0($s2)
        addi $s1, $s1, 1
        bne  $s1, $s3, loop
        addi $sp, $sp, 8
        out  $t1
        halt
        .data
g:      .word 0
`

func TestDualSteeringNeverMisroutes(t *testing.T) {
	prog := compile(t, dualProgram)
	cfg := config.Default().WithPorts(2, 2)
	cfg.Steering = config.SteerDual
	res := simulate(t, prog, cfg)
	checkFunctional(t, prog, res)

	if res.Misroutes != 0 || res.Squashed != 0 {
		t.Errorf("dual steering recovered: %d misroutes, %d squashed",
			res.Misroutes, res.Squashed)
	}
	if res.DualInserted == 0 {
		t.Error("no dual insertions for ambiguous accesses")
	}
	// The pointer-based stack accesses guess non-local (non-$sp base)
	// and resolve local: misguesses must be counted, recovery-free.
	if res.DualMisguessed == 0 {
		t.Error("no dual misguesses recorded")
	}
}

func TestDualSteeringBeatsRecoveryOnAmbiguousCode(t *testing.T) {
	prog := compile(t, dualProgram)

	sp := config.Default().WithPorts(2, 2)
	sp.Steering = config.SteerSP // misroutes the global accesses? no — sp
	// heuristic sends pointer-based stack refs to the LSQ: misroute on
	// every iteration is avoided only by... measure against dual.
	spRes := simulate(t, prog, sp)

	dual := config.Default().WithPorts(2, 2)
	dual.Steering = config.SteerDual
	dualRes := simulate(t, prog, dual)

	// SteerSP permanently misroutes the pointer-based stack accesses
	// (recovery every iteration); dual insertion avoids all of it.
	if spRes.Misroutes == 0 {
		t.Skip("sp heuristic unexpectedly routed everything correctly")
	}
	if dualRes.Cycles >= spRes.Cycles {
		t.Errorf("dual (%d cycles) not faster than recovery-heavy sp (%d)",
			dualRes.Cycles, spRes.Cycles)
	}
}

func TestDualStoreBlocksBothQueuesConservatively(t *testing.T) {
	// An unresolved dual store must delay younger loads in both queues
	// until its address resolves — never let them bypass it.
	src := `
        .text
main:
        move $t9, $sp
        addi $sp, $sp, -8
        li   $t0, 42
        sw   $t0, -4($t9)
        lw   $t1, -4($t9)
        out  $t1
        addi $sp, $sp, 8
        halt
`
	prog := compile(t, src)
	cfg := config.Default().WithPorts(2, 2).WithOptimizations(2)
	cfg.Steering = config.SteerDual
	res := simulate(t, prog, cfg)
	checkFunctional(t, prog, res)
	if res.Output[0] != 42 {
		t.Fatalf("load got %d, want 42", res.Output[0])
	}
}

func TestDualRespectsQueueCapacity(t *testing.T) {
	cfg := config.Default().WithPorts(2, 2)
	cfg.Steering = config.SteerDual
	cfg.LVAQSize = 4
	cfg.LSQSize = 4
	prog := compile(t, dualProgram)
	res := simulate(t, prog, cfg)
	checkFunctional(t, prog, res)
	if res.QueueFullStalls == 0 {
		t.Error("tiny queues never filled under dual insertion")
	}
}
