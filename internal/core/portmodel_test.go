package core

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/config"
)

// storeHeavy emits many independent global stores per iteration.
func storeHeavy(t *testing.T) *asm.Program {
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n\tla $s1, arr\n\tli $s0, 400\nloop:\n")
	for i := 0; i < 8; i++ {
		b.WriteString("\tsw $t0, " + itoa(i*4) + "($s1) !nonlocal\n")
	}
	b.WriteString("\taddi $s0, $s0, -1\n\tbnez $s0, loop\n\thalt\n\t.data\narr:\t.space 64\n")
	return compile(t, b.String())
}

func TestReplicatedPortsThrottleStores(t *testing.T) {
	prog := storeHeavy(t)
	ideal := config.Default().WithPorts(2, 0)
	repl := ideal
	repl.DCachePortModel = config.PortsReplicated

	ri := simulate(t, prog, ideal)
	rr := simulate(t, prog, repl)
	checkFunctional(t, prog, rr)
	// Replication broadcasts stores to both copies: store bandwidth is
	// one per cycle, so the store-heavy loop must slow down.
	if rr.Cycles <= ri.Cycles {
		t.Errorf("replicated (%d cycles) not slower than ideal (%d) on stores",
			rr.Cycles, ri.Cycles)
	}
}

func TestBankedPortsConflictOnSameBank(t *testing.T) {
	// All accesses in one cache line = one bank: a 2-banked cache
	// degrades to one access per cycle while ideal 2-port does two.
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n\tla $s1, arr\n\tli $s0, 500\nloop:\n")
	for i := 0; i < 4; i++ {
		b.WriteString("\tlw $t" + itoa(i) + ", " + itoa(i*4) + "($s1) !nonlocal\n")
	}
	b.WriteString("\taddi $s0, $s0, -1\n\tbnez $s0, loop\n\thalt\n\t.data\narr:\t.space 64\n")
	prog := compile(t, b.String())

	ideal := config.Default().WithPorts(2, 0)
	banked := ideal
	banked.DCachePortModel = config.PortsBanked

	ri := simulate(t, prog, ideal)
	rb := simulate(t, prog, banked)
	checkFunctional(t, prog, rb)
	if rb.Cycles <= ri.Cycles {
		t.Errorf("banked same-bank loads (%d cycles) not slower than ideal (%d)",
			rb.Cycles, ri.Cycles)
	}
}

func TestBankedPortsParallelOnDifferentBanks(t *testing.T) {
	// Accesses spread across lines hit different banks: banked ≈ ideal.
	var b strings.Builder
	b.WriteString("\t.text\nmain:\n\tla $s1, arr\n\tli $s0, 500\nloop:\n")
	for i := 0; i < 4; i++ {
		b.WriteString("\tlw $t" + itoa(i) + ", " + itoa(i*32) + "($s1) !nonlocal\n")
	}
	b.WriteString("\taddi $s0, $s0, -1\n\tbnez $s0, loop\n\thalt\n\t.data\narr:\t.space 256\n")
	prog := compile(t, b.String())

	ideal := config.Default().WithPorts(2, 0)
	banked := ideal
	banked.DCachePortModel = config.PortsBanked

	ri := simulate(t, prog, ideal)
	rb := simulate(t, prog, banked)
	ratio := float64(rb.Cycles) / float64(ri.Cycles)
	if ratio > 1.10 {
		t.Errorf("conflict-free banked run %.2fx slower than ideal", ratio)
	}
}

func TestPortModelStrings(t *testing.T) {
	if config.PortsIdeal.String() != "ideal" ||
		config.PortsBanked.String() != "banked" ||
		config.PortsReplicated.String() != "replicated" {
		t.Error("port model names wrong")
	}
}
