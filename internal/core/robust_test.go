package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/simerr"
)

// stubInjector is a minimal FaultInjector for targeted robustness tests.
type stubInjector struct {
	denyAll  bool   // deny every port grant (livelocks the first load)
	desyncAt uint64 // corrupt the n-th memory commit-head encounter (0 = never)
	seen     uint64
	fired    bool
}

func (s *stubInjector) BeginCycle(uint64)                   {}
func (s *stubInjector) FlipSteer(_ uint32, local bool) bool { return local }
func (s *stubInjector) QueueCap(_, arch int) int            { return arch }
func (s *stubInjector) AllowGrant(int, uint32, bool) bool   { return !s.denyAll }

func (s *stubInjector) CommitDesync(uint64) bool {
	if s.desyncAt == 0 || s.fired {
		return false
	}
	s.seen++
	if s.seen < s.desyncAt {
		return false
	}
	s.fired = true
	return true
}

func runWith(t *testing.T, src string, cfg config.Config, opts RunOptions) (*Result, error) {
	t.Helper()
	c, err := New(compile(t, src), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.SetFaultInjector(opts.Injector)
	return c.RunWith(context.Background(), opts)
}

func asSimError(t *testing.T, err error, want simerr.Kind) *simerr.SimError {
	t.Helper()
	if err == nil {
		t.Fatalf("run succeeded, want a %s SimError", want)
	}
	var se *simerr.SimError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T) is not a *simerr.SimError", err, err)
	}
	if se.Kind != want {
		t.Fatalf("SimError kind = %s, want %s (err: %v)", se.Kind, want, se)
	}
	return se
}

// RunWith with zero options must be the same simulation as Run,
// cycle for cycle.
func TestRunWithZeroOptionsBitIdentical(t *testing.T) {
	cfg := config.Default().WithPorts(2, 2).WithOptimizations(2)
	base := simulate(t, compile(t, fibProgram), cfg)

	c, err := New(compile(t, fibProgram), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := c.RunWith(context.Background(), RunOptions{})
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	if res.Cycles != base.Cycles || res.Committed != base.Committed {
		t.Errorf("RunWith = %d cycles / %d committed, Run = %d / %d",
			res.Cycles, res.Committed, base.Cycles, base.Committed)
	}
}

func TestMaxCyclesBoundsRun(t *testing.T) {
	const src = "\t.text\nmain:\nloop:\n\tj loop\n"
	_, err := runWith(t, src, config.Default(), RunOptions{MaxCycles: 5000})
	se := asSimError(t, err, simerr.KindMaxCycles)
	if se.Snapshot.Cycle != 5000 {
		t.Errorf("aborted at cycle %d, want 5000", se.Snapshot.Cycle)
	}
}

func TestContextCancelAbortsRun(t *testing.T) {
	const src = "\t.text\nmain:\nloop:\n\tj loop\n"
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := New(compile(t, src), config.Default())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, err = c.RunWith(ctx, RunOptions{})
	se := asSimError(t, err, simerr.KindCanceled)
	if !errors.Is(se, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false, err = %v", se)
	}
}

func TestDeadlineAbortsRun(t *testing.T) {
	const src = "\t.text\nmain:\nloop:\n\tj loop\n"
	_, err := runWith(t, src, config.Default(),
		RunOptions{Deadline: time.Now().Add(-time.Second)})
	se := asSimError(t, err, simerr.KindDeadline)
	if !errors.Is(se, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false, err = %v", se)
	}
}

// A pipeline whose head load can never win a cache port commits nothing;
// the forward-progress watchdog must abort it with a snapshot instead of
// letting it spin to the cycle budget.
func TestWatchdogTripsOnLivelock(t *testing.T) {
	const src = `
        .text
main:
        lw  $t0, 0($sp)
        out $t0
        halt
`
	_, err := runWith(t, src, config.Default(),
		RunOptions{WatchdogCycles: 2000, Injector: &stubInjector{denyAll: true}})
	se := asSimError(t, err, simerr.KindWatchdog)
	snap := se.Snapshot
	if snap.ROBHead == nil || !snap.ROBHead.IsLoad {
		t.Fatalf("snapshot ROB head = %+v, want the stuck load", snap.ROBHead)
	}
	if len(snap.Streams) == 0 || snap.Streams[0].Len == 0 {
		t.Fatalf("snapshot streams = %+v, want the load queued in stream 0", snap.Streams)
	}
	if !strings.Contains(se.Error(), "watchdog") {
		t.Errorf("Error() = %q, want it to name the watchdog", se.Error())
	}
	if s := snap.String(); !strings.Contains(s, "ROB") || !strings.Contains(s, "LSQ") {
		t.Errorf("snapshot render missing ROB/stream lines:\n%s", s)
	}
}

// The watchdog can be disabled; the legacy IPC budget then catches the
// livelock instead (still as a typed error).
func TestDisabledWatchdogFallsBackToBudget(t *testing.T) {
	const src = `
        .text
main:
        lw  $t0, 0($sp)
        halt
`
	_, err := runWith(t, src, config.Default(),
		RunOptions{DisableWatchdog: true, Injector: &stubInjector{denyAll: true}})
	se := asSimError(t, err, simerr.KindBudget)
	if !errors.Is(se, ErrBudget) {
		t.Errorf("errors.Is(err, ErrBudget) = false, err = %v", se)
	}
}

// An injected stream-bookkeeping corruption must be caught by the memsys
// head-only invariants and contained into a KindPanic SimError instead of
// crashing the process.
func TestPanicContainmentOnCommitDesync(t *testing.T) {
	cfg := config.Default().WithPorts(2, 2)
	_, err := runWith(t, fibProgram, cfg,
		RunOptions{Injector: &stubInjector{desyncAt: 1}})
	se := asSimError(t, err, simerr.KindPanic)
	if !strings.Contains(se.Reason, "memsys") {
		t.Errorf("panic reason %q does not name the memsys invariant", se.Reason)
	}
	if se.Stack == "" {
		t.Error("contained panic carries no stack trace")
	}
	if len(se.Snapshot.Streams) != 2 {
		t.Errorf("snapshot has %d streams, want 2", len(se.Snapshot.Streams))
	}
	if se.Snapshot.Cycle == 0 {
		t.Error("snapshot cycle is zero")
	}
}
