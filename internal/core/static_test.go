package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// staticProgram mixes provable stack accesses (no hints at all), provable
// global accesses, and a pointer-copied stack access the analyzer also
// proves local — the shapes SteerStatic must classify without hint bits.
const staticProgram = `
        .text
main:
        addi $sp, $sp, -16
        move $s0, $sp
        la   $s2, g
        li   $s1, 0
        li   $s3, 60
loop:
        sw   $s1, 4($s0)
        lw   $t0, 4($s0)
        sw   $t0, 0($s2)
        lw   $t1, 0($s2)
        addi $s1, $s1, 1
        bne  $s1, $s3, loop
        addi $sp, $sp, 16
        out  $t1
        halt
        .data
g:      .word 0
`

func TestStaticSteeringRunsWithoutHints(t *testing.T) {
	prog := compile(t, staticProgram)
	cfg := config.Default().WithPorts(2, 2)
	cfg.Steering = config.SteerStatic
	res := simulate(t, prog, cfg)
	checkFunctional(t, prog, res)

	// Every access in this program is provable, so nothing should hit
	// the predictor fallback or misroute.
	if res.PredictedSteers != 0 {
		t.Errorf("%d predicted steers, want 0 (all accesses provable)", res.PredictedSteers)
	}
	if res.Misroutes != 0 {
		t.Errorf("%d misroutes under static steering, want 0", res.Misroutes)
	}
	if res.LVAQDispatched == 0 || res.LSQDispatched == 0 {
		t.Errorf("expected traffic in both streams, got LVAQ=%d LSQ=%d",
			res.LVAQDispatched, res.LSQDispatched)
	}
}

// TestStaticSteeringComparableToHints runs a real workload under hint
// steering and static steering: results must be functionally identical
// and the cycle counts comparable (the analyzer re-derives most of what
// the hints encode; the predictor covers the ambiguous remainder).
func TestStaticSteeringComparableToHints(t *testing.T) {
	w, err := workload.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Program(0.02)

	hint := config.Default().WithPorts(2, 2).WithOptimizations(2)
	hint.Steering = config.SteerHint
	hintRes := simulate(t, prog, hint)

	static := config.Default().WithPorts(2, 2).WithOptimizations(2)
	static.Steering = config.SteerStatic
	staticRes := simulate(t, prog, static)

	if hintRes.Committed != staticRes.Committed {
		t.Fatalf("instruction counts differ: hint %d vs static %d",
			hintRes.Committed, staticRes.Committed)
	}
	for i, v := range hintRes.Output {
		if staticRes.Output[i] != v {
			t.Fatalf("out[%d]: hint %d vs static %d", i, v, staticRes.Output[i])
		}
	}
	// Static steering must route a substantial local stream and stay
	// within 25% of hint steering's cycle count on this workload.
	if staticRes.LVAQDispatched == 0 {
		t.Error("static steering sent nothing to the LVAQ")
	}
	lo, hi := hintRes.Cycles*3/4, hintRes.Cycles*5/4
	if staticRes.Cycles < lo || staticRes.Cycles > hi {
		t.Errorf("static steering cycles %d outside [%d, %d] (hint: %d)",
			staticRes.Cycles, lo, hi, hintRes.Cycles)
	}
	t.Logf("li@0.02: hint %d cycles (%d misroutes), static %d cycles (%d misroutes, %d predicted)",
		hintRes.Cycles, hintRes.Misroutes, staticRes.Cycles, staticRes.Misroutes, staticRes.PredictedSteers)
}
