package core

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/simerr"
	"repro/internal/workload"
)

// runEngine builds a fresh core for (workload, cfg) and runs it on the
// given engine. Each engine gets its own core: the comparison is between
// two complete simulations of the same machine.
func runEngine(t *testing.T, name string, scale float64, cfg config.Config, e Engine) (*Result, error) {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("workload %s: %v", name, err)
	}
	c, err := New(w.Program(scale), cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return c.RunWith(context.Background(), RunOptions{Engine: e})
}

// TestEngineIdentityAllWorkloads is the differential harness for the
// event-driven engine: on every workload, for a spread of machine
// configurations (unified, decoupled, decoupled with both §2.2.2
// optimizations), the event engine must produce a Result that is
// bit-identical to the tick engine's — cycles, every stall counter, every
// occupancy integral, every cache statistic.
func TestEngineIdentityAllWorkloads(t *testing.T) {
	configs := []struct {
		name string
		cfg  config.Config
	}{
		{"unified(4+0)", config.Default().WithPorts(4, 0)},
		{"decoupled(3+2)", config.Default().WithPorts(3, 2)},
		{"optimized(3+2)", config.Default().WithPorts(3, 2).WithOptimizations(2)},
	}
	scale := 0.02
	for _, w := range workload.All() {
		for _, tc := range configs {
			t.Run(w.Name+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				tick, terr := runEngine(t, w.Name, scale, tc.cfg, EngineTick)
				event, eerr := runEngine(t, w.Name, scale, tc.cfg, EngineEvent)
				if terr != nil || eerr != nil {
					t.Fatalf("run errors: tick=%v event=%v", terr, eerr)
				}
				assertResultsIdentical(t, tick, event)
			})
		}
	}
}

// TestEngineIdentitySteeringVariants covers the recovery-heavy paths
// (misroute squash/replay, dual-steering kill, speculative steering) where
// wake bookkeeping is hardest to get right.
func TestEngineIdentitySteeringVariants(t *testing.T) {
	for _, steering := range []config.SteeringPolicy{
		config.SteerSP, config.SteerDual, config.SteerStatic, config.SteerSpec,
	} {
		cfg := config.Default().WithPorts(3, 2).WithOptimizations(2)
		cfg.Steering = steering
		t.Run(steering.String(), func(t *testing.T) {
			t.Parallel()
			for _, name := range []string{"li", "go", "swim"} {
				tick, terr := runEngine(t, name, 0.02, cfg, EngineTick)
				event, eerr := runEngine(t, name, 0.02, cfg, EngineEvent)
				if terr != nil || eerr != nil {
					t.Fatalf("%s: run errors: tick=%v event=%v", name, terr, eerr)
				}
				assertResultsIdentical(t, tick, event)
			}
		})
	}
}

// TestEngineIdentityExamples runs every shipped examples/asm program
// (including the deliberately-broken badhint.s — a bad hint still
// simulates, it just misroutes) under both engines on the paper's
// optimized machine and on a unified one.
func TestEngineIdentityExamples(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "asm")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	configs := []config.Config{
		config.Default().WithPorts(4, 0),
		config.Default().WithPorts(3, 2).WithOptimizations(2),
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".s" {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		t.Run(ent.Name(), func(t *testing.T) {
			t.Parallel()
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := asm.Assemble(ent.Name(), string(src))
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range configs {
				var results [2]*Result
				for i, e := range []Engine{EngineTick, EngineEvent} {
					c, err := New(prog, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if results[i], err = c.RunWith(context.Background(), RunOptions{Engine: e}); err != nil {
						t.Fatalf("%s engine %v: %v", cfg.Name(), e, err)
					}
				}
				assertResultsIdentical(t, results[0], results[1])
			}
		})
	}
}

func assertResultsIdentical(t *testing.T, tick, event *Result) {
	t.Helper()
	if reflect.DeepEqual(tick, event) {
		return
	}
	// Pinpoint the divergence for the failure message.
	if tick.Cycles != event.Cycles {
		t.Errorf("cycles: tick=%d event=%d", tick.Cycles, event.Cycles)
	}
	if tick.Stats != event.Stats {
		t.Errorf("stats diverge:\n tick:  %+v\n event: %+v", tick.Stats, event.Stats)
	}
	for i := range tick.Streams {
		if i < len(event.Streams) && !reflect.DeepEqual(tick.Streams[i], event.Streams[i]) {
			t.Errorf("stream %d diverges:\n tick:  %+v\n event: %+v",
				i, tick.Streams[i], event.Streams[i])
		}
	}
	t.Fatalf("results diverge (L2/mem/TLB/output section):\n tick:  %+v %+v %d/%d\n event: %+v %+v %d/%d",
		tick.L2, tick.MemReads, tick.TLBHits, tick.TLBMisses,
		event.L2, event.MemReads, event.TLBHits, event.TLBMisses)
}

// TestEngineIdentityUnderMaxCycles: an abort boundary must fire on the
// same cycle with the same snapshot under both engines — the event engine
// clamps its jumps to land one cycle before the cap so the capped cycle
// executes for real.
func TestEngineIdentityUnderMaxCycles(t *testing.T) {
	cfg := config.Default().WithPorts(3, 2)
	for _, cap := range []uint64{100, 1000, 5000} {
		var snaps [2]simerr.Snapshot
		for i, e := range []Engine{EngineTick, EngineEvent} {
			w, _ := workload.ByName("swim")
			c, err := New(w.Program(0.05), cfg)
			if err != nil {
				t.Fatal(err)
			}
			_, rerr := c.RunWith(context.Background(), RunOptions{MaxCycles: cap, Engine: e})
			se, ok := rerr.(*simerr.SimError)
			if !ok || se.Kind != simerr.KindMaxCycles {
				t.Fatalf("cap %d engine %v: err = %v, want KindMaxCycles", cap, e, rerr)
			}
			snaps[i] = se.Snapshot
		}
		if !reflect.DeepEqual(snaps[0], snaps[1]) {
			t.Errorf("cap %d: abort snapshots diverge:\n tick:  %+v\n event: %+v",
				cap, snaps[0], snaps[1])
		}
	}
}

// TestWatchdogFiresAcrossSkippedGap: a livelocked pipeline (watchdog
// window far below any real wake) must abort on exactly the same cycle
// under both engines even when the event engine's jump would overshoot the
// watchdog boundary — the clamp lands it one cycle short.
func TestWatchdogFiresAcrossSkippedGap(t *testing.T) {
	cfg := config.Default().WithPorts(3, 2)
	// A tiny watchdog window turns ordinary memory-latency stalls into
	// "livelock": with MemLatency 50 and MSHR pileups, a 40-cycle window
	// trips on real workloads, and the event engine skips straight at it.
	const window = 40
	var cycles [2]uint64
	for i, e := range []Engine{EngineTick, EngineEvent} {
		w, _ := workload.ByName("swim")
		c, err := New(w.Program(0.05), cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := c.RunWith(context.Background(), RunOptions{WatchdogCycles: window, Engine: e})
		se, ok := rerr.(*simerr.SimError)
		if !ok || se.Kind != simerr.KindWatchdog {
			t.Fatalf("engine %v: err = %v, want KindWatchdog", e, rerr)
		}
		cycles[i] = se.Snapshot.Cycle
	}
	if cycles[0] != cycles[1] {
		t.Fatalf("watchdog fired on different cycles: tick=%d event=%d", cycles[0], cycles[1])
	}
}

// TestEngineParse pins the flag grammar.
func TestEngineParse(t *testing.T) {
	if e, err := ParseEngine("tick"); err != nil || e != EngineTick {
		t.Fatalf("ParseEngine(tick) = %v, %v", e, err)
	}
	if e, err := ParseEngine("event"); err != nil || e != EngineEvent {
		t.Fatalf("ParseEngine(event) = %v, %v", e, err)
	}
	if e, err := ParseEngine(""); err != nil || e != EngineEvent {
		t.Fatalf("ParseEngine(\"\") = %v, %v", e, err)
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Fatal("ParseEngine(warp) did not fail")
	}
	if EngineEvent.String() != "event" || EngineTick.String() != "tick" {
		t.Fatal("Engine.String round-trip broken")
	}
}
