// Package core implements the paper's primary contribution: a
// cycle-accurate, execution-driven out-of-order superscalar processor model
// with a data-decoupled memory system.
//
// The pipeline follows the Register Update Unit (RUU) organization of
// SimpleScalar's sim-outorder, with the six stages of the paper's machine
// model (fetch, dispatch, issue, execute, writeback, commit). The front end
// is perfect (perfect I-cache, oracle branch prediction), so fetch follows
// the architectural path supplied by the functional emulator and
// instructions execute functionally at dispatch; the timing model replays
// their register and memory dependences and latencies.
//
// Data decoupling (paper §2): at dispatch, memory instructions are steered
// into one of N independent memory streams (internal/memsys) — in the
// paper's configuration the conventional load/store queue (LSQ) in front
// of the L1 data cache, and the local variable access queue (LVAQ) in
// front of the small local variable cache (LVC). Load/store ordering is
// enforced within each stream only. The two LVAQ optimizations of §2.2.2
// are implemented: fast data forwarding (offset-based store→load bypass
// before address generation) and access combining (one LVC port grant
// serves up to N consecutive same-line accesses).
package core

import (
	"errors"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/tlb"
)

// uop is one in-flight instruction (an RUU entry).
type uop struct {
	seq   uint64
	ef    emu.Effect
	class isa.Class

	// dep are the producers of the source operands (nil when the operand
	// was ready at dispatch). For memory instructions dep[0] is the base
	// address register producer; for stores dep[1] produces the stored
	// value.
	dep [2]*uop

	dispatchedAt uint64
	issued       bool // has consumed its issue slot (agen for memory ops)
	completed    bool // result computed / store ready to commit
	readyAt      uint64

	// Memory state.
	isMem, isLoad bool
	stream        int // primary stream index (memsys)
	qnode         memsys.Node
	addrKnown     bool
	addrAt        uint64 // cycle the effective address becomes available
	valueKnown    bool   // stores: data operand ready
	valueAt       uint64
	accessDone    bool // load has obtained its data (cache or forward)
	fwdFrom       *uop

	// Fast-forwarding key (§2.2.2): base register identity, the
	// stack-generation tag current at dispatch, and the offset field.
	baseReg isa.Reg
	spGen   uint64
	// combineGroup is the static combining-group id of this PC
	// (memsys.GroupNone when the dependence analysis proved none).
	combineGroup int
	// spGenAfter is the core's stack generation after this instruction
	// dispatched (used to restore it on a squash).
	spGenAfter uint64

	misrouted bool // address resolved to the wrong stream; recovery done
	// dual marks an ambiguous access inserted into both streams
	// (SteerDual); cleared when the address resolves and the wrong copy
	// is killed.
	dual bool
	// spec marks an access steered to the local stream on a
	// speculate-local assignment (SteerSpec) rather than a proof; a
	// misroute of such a uop is a misspeculation, tallied separately.
	spec bool

	issuedAt      uint64
	combined      bool
	fastForwarded bool
}

// QueueNode implements memsys.Entry.
func (u *uop) QueueNode() *memsys.Node { return &u.qnode }

// OrderSeq implements memsys.Entry.
func (u *uop) OrderSeq() uint64 { return u.seq }

// TraceEvent is the per-instruction pipeline timeline delivered to a
// Tracer. All cycle stamps are absolute; zero means "did not happen".
type TraceEvent struct {
	Seq   uint64
	PC    uint32
	Inst  isa.Inst
	Queue string // stream name ("LSQ", "LVAQ") or "" for non-memory ops
	Addr  uint32 // effective address for memory instructions

	DispatchedAt uint64
	IssuedAt     uint64
	AddrAt       uint64 // address generation done (memory ops)
	ReadyAt      uint64 // result available
	CommittedAt  uint64

	Squashed      bool // re-dispatched later by misroute recovery
	Misrouted     bool
	Forwarded     bool // value came from an older store in the queue
	FastForwarded bool
	Combined      bool // access rode a shared port grant
}

// Tracer observes retired (and squashed) instructions. Implementations
// must be fast; Trace is called once per instruction.
type Tracer interface {
	Trace(ev TraceEvent)
}

// SetTracer installs a pipeline tracer (nil disables tracing).
func (c *Core) SetTracer(t Tracer) { c.tracer = t }

func (c *Core) emitTrace(u *uop, committedAt uint64, squashed bool) {
	if c.tracer == nil {
		return
	}
	ev := TraceEvent{
		Seq:           u.seq,
		PC:            u.ef.PC,
		Inst:          u.ef.Inst,
		Addr:          u.ef.Addr,
		DispatchedAt:  u.dispatchedAt,
		IssuedAt:      u.issuedAt,
		ReadyAt:       u.readyAt,
		CommittedAt:   committedAt,
		Squashed:      squashed,
		Misrouted:     u.misrouted,
		Forwarded:     u.fwdFrom != nil && !u.accessedFast(),
		FastForwarded: u.accessedFast(),
		Combined:      u.combined,
	}
	if u.isMem {
		ev.Queue = c.streams[u.stream].Spec.Name
		ev.AddrAt = u.addrAt
	}
	c.tracer.Trace(ev)
}

// accessedFast reports whether the uop's value came via the offset-based
// fast path (before address generation).
func (u *uop) accessedFast() bool {
	return u.fwdFrom != nil && u.fastForwarded
}

func (u *uop) depsReady(now uint64) bool {
	for _, d := range u.dep {
		if d != nil && (!d.completed || d.readyAt > now) {
			return false
		}
	}
	return true
}

func (u *uop) overlaps(v *uop) bool {
	a0, a1 := u.ef.Addr, u.ef.Addr+uint32(u.ef.Bytes)
	b0, b1 := v.ef.Addr, v.ef.Addr+uint32(v.ef.Bytes)
	return a0 < b1 && b0 < a1
}

func (u *uop) sameAccess(v *uop) bool {
	return u.ef.Addr == v.ef.Addr && u.ef.Bytes == v.ef.Bytes
}

// Core is one simulated processor running one program.
type Core struct {
	cfg config.Config
	emu *emu.Machine

	// streams are the memory access streams (memsys); stream 0 is the
	// conventional LSQ/L1 stream. localIdx and nonlocalIdx name the
	// steering targets for local and non-local classifications.
	streams     []*memsys.Stream
	localIdx    int
	nonlocalIdx int

	l2  *cache.Cache
	mem *cache.MainMemory

	now uint64
	seq uint64

	rob []*uop // in program order; rob[0] is the commit head

	// renameTable maps each architectural register to its most recent
	// in-flight producer.
	renameTable [isa.NumRegs]*uop

	// spGen is bumped whenever an instruction writing $sp or $fp
	// dispatches; it delimits stack frames for fast data forwarding.
	spGen uint64

	// regionPredictor is the 1-bit per-PC predictor used for unhinted
	// accesses under SteerHint (paper §2.2.3).
	regionPredictor map[uint32]bool // true = local

	// staticClass is the per-PC classification table produced by the
	// internal/analysis dataflow pass, consulted under SteerStatic.
	// Absent entries are ambiguous and fall back to the predictor.
	staticClass map[uint32]isa.Hint

	// specClass is the per-PC confidence table produced by the
	// analysis.Assign pass, consulted under SteerSpec. Absent entries are
	// leave-dynamic and fall back to the predictor.
	specClass map[uint32]analysis.ConfClass

	// fwdPairs (load PC → store PC) and combineGroups (member PC → group
	// id) are the statically-proven tables from the interprocedural
	// dependence analysis, populated under ForwardStatic/CombineStatic.
	fwdPairs      map[uint32]uint32
	combineGroups map[uint32]int

	// annotTLB, when non-nil, is the §2.1 annotation TLB: steering
	// verification waits for its fill on a miss.
	annotTLB *tlb.TLB

	tracer Tracer

	// fi, when non-nil, perturbs the run at the FaultInjector hook points
	// (see run.go); lastCommitCycle feeds the failure snapshot.
	fi              FaultInjector
	lastCommitCycle uint64

	dispatchStallUntil uint64
	fetchDone          bool        // emulator halted or instruction budget reached
	pending            *emu.Effect // dispatch held back by a full queue
	// replay holds the effects of squashed (wrong-stream recovery)
	// instructions awaiting re-dispatch; the emulator is never re-run.
	replay []emu.Effect

	stats Stats
}

// New builds a core for the given program and configuration.
func New(prog *asm.Program, cfg config.Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:             cfg,
		emu:             emu.New(prog),
		mem:             &cache.MainMemory{Name: "mem", Latency: cfg.MemLatency},
		regionPredictor: make(map[uint32]bool),
	}
	c.l2 = cache.New(cache.Config{
		Name: "L2", SizeBytes: cfg.L2.SizeBytes, LineBytes: cfg.L2.LineBytes,
		Assoc: cfg.L2.Assoc, HitLatency: cfg.L2.HitLatency, MSHRs: 64,
	}, c.mem)
	for id, spec := range cfg.Streams() {
		sc := cache.New(cache.Config{
			Name: streamCacheName(spec), SizeBytes: spec.Cache.SizeBytes,
			LineBytes: spec.Cache.LineBytes, Assoc: spec.Cache.Assoc,
			HitLatency: spec.Cache.HitLatency,
		}, c.l2)
		c.streams = append(c.streams, memsys.NewStream(id, spec, sc))
		if spec.Local {
			c.localIdx = id
		} else {
			c.nonlocalIdx = id
		}
	}
	if !cfg.Decoupled() {
		// A unified memory system has a single stream; both
		// classifications route to it.
		c.localIdx = c.nonlocalIdx
	}
	if cfg.Decoupled() && cfg.TLBEntries > 0 {
		c.annotTLB = tlb.New(cfg.TLBEntries, cfg.TLBMissLatency)
	}
	if cfg.Decoupled() && cfg.Steering == config.SteerStatic {
		c.staticClass = analysis.Analyze(prog).HintTable()
	}
	if cfg.Decoupled() && cfg.Steering == config.SteerSpec {
		c.specClass = analysis.Assign(prog).SteerTable()
	}
	if cfg.Decoupled() && (cfg.ForwardStatic || cfg.CombineStatic) {
		dep := analysis.Dependences(prog, cfg.LVC.LineBytes)
		if cfg.ForwardStatic {
			c.fwdPairs = dep.ForwardTable()
		}
		if cfg.CombineStatic {
			c.combineGroups = dep.CombineTable()
		}
	}
	return c, nil
}

// streamCacheName keeps the historical cache names in the stat block.
func streamCacheName(spec config.StreamSpec) string {
	if spec.Local {
		return "LVC"
	}
	return "L1D"
}

// route returns the stream index accesses with the given classification
// are steered to.
func (c *Core) route(local bool) int {
	if local {
		return c.localIdx
	}
	return c.nonlocalIdx
}

// ErrBudget is reported (wrapped, inside a *simerr.SimError) by Run when
// the cycle safety budget is exhausted before the program halts — almost
// always a sign of a workload that does not terminate.
var ErrBudget = errors.New("core: cycle budget exhausted")

func (c *Core) done() bool {
	return c.fetchDone && len(c.rob) == 0
}
