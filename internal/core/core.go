// Package core implements the paper's primary contribution: a
// cycle-accurate, execution-driven out-of-order superscalar processor model
// with a data-decoupled memory system.
//
// The pipeline follows the Register Update Unit (RUU) organization of
// SimpleScalar's sim-outorder, with the six stages of the paper's machine
// model (fetch, dispatch, issue, execute, writeback, commit). The front end
// is perfect (perfect I-cache, oracle branch prediction), so fetch follows
// the architectural path supplied by the functional emulator and
// instructions execute functionally at dispatch; the timing model replays
// their register and memory dependences and latencies.
//
// Data decoupling (paper §2): at dispatch, memory instructions are steered
// into one of N independent memory streams (internal/memsys) — in the
// paper's configuration the conventional load/store queue (LSQ) in front
// of the L1 data cache, and the local variable access queue (LVAQ) in
// front of the small local variable cache (LVC). Load/store ordering is
// enforced within each stream only. The two LVAQ optimizations of §2.2.2
// are implemented: fast data forwarding (offset-based store→load bypass
// before address generation) and access combining (one LVC port grant
// serves up to N consecutive same-line accesses).
package core

import (
	"errors"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/sched"
	"repro/internal/tlb"
)

// uop is one in-flight instruction (an RUU entry).
type uop struct {
	// The issue walk's gate quartet leads the struct so that skipping a
	// not-yet-eligible entry touches a single cache line: the list link,
	// the dispatch cycle, the count of in-flight producers, and the
	// operand-arrival bound (see the wakeup-push block below).
	issueNext    *uop
	dispatchedAt uint64
	depsPending  int8
	issueWake    uint64

	seq   uint64
	ef    emu.Effect
	class isa.Class

	// dep are the producers of the source operands (nil when the operand
	// was ready at dispatch). For memory instructions dep[0] is the base
	// address register producer; for stores dep[1] produces the stored
	// value.
	dep [2]*uop

	// refs counts consumers still holding this uop in their dep slots;
	// dead marks a committed (or squashed) uop whose recycling into the
	// free pool is deferred until the last consumer releases it.
	refs int32
	dead bool

	issued    bool // has consumed its issue slot (agen for memory ops)
	completed bool // result computed / store ready to commit
	readyAt   uint64

	// Memory state.
	isMem, isLoad bool
	stream        int // primary stream index (memsys)
	qnode         memsys.Node
	addrKnown     bool
	addrAt        uint64 // cycle the effective address becomes available
	valueKnown    bool   // stores: data operand ready
	valueAt       uint64
	accessDone    bool // load has obtained its data (cache or forward)
	fwdFrom       *uop

	// Fast-forwarding key (§2.2.2): base register identity, the
	// stack-generation tag current at dispatch, and the offset field.
	baseReg isa.Reg
	spGen   uint64
	// combineGroup is the static combining-group id of this PC
	// (memsys.GroupNone when the dependence analysis proved none).
	combineGroup int
	// spGenAfter is the core's stack generation after this instruction
	// dispatched (used to restore it on a squash).
	spGenAfter uint64

	misrouted bool // address resolved to the wrong stream; recovery done
	// dual marks an ambiguous access inserted into both streams
	// (SteerDual); cleared when the address resolves and the wrong copy
	// is killed.
	dual bool
	// spec marks an access steered to the local stream on a
	// speculate-local assignment (SteerSpec) rather than a proof; a
	// misroute of such a uop is a misspeculation, tallied separately.
	spec bool

	issuedAt      uint64
	combined      bool
	fastForwarded bool

	// Fast-forward scan memo (tryFastForward): ffState caches the last
	// scan's outcome, valid while the stream's structure generation
	// (Core.qGen) still equals ffGen. ffCand is the matched store whose
	// value the load is waiting on in the ffWaiting state.
	ffState uint8
	ffGen   uint64
	ffCand  *uop

	// Order-scan memo (processLoad): the §3.1 scan's verdict, valid under
	// the same generation guard. osCand is the store the verdict hinges
	// on — the unresolved store blocking the load (osStallAddr), the
	// matched store whose value is awaited (osFwdWait), or the partially
	// overlapping store being waited out (osPartial).
	osState uint8
	osGen   uint64
	osCand  *uop

	// Backward link and membership flag of the not-yet-issued list
	// (issueStage); the forward link leads the struct. The list holds
	// every ROB entry that is neither issued nor completed, in program
	// order.
	issuePrev *uop
	inIssueQ  bool

	// Intrusive links of the per-stream pending-access lists
	// (processStream): for each stream whose queue holds this entry and
	// for which pendingAccess is still true, the neighbours in program
	// order. A dual-steered access is linked in both its streams.
	pendNext, pendPrev [coreStreams]*uop
	inPend             [coreStreams]bool

	// memWake lets the pending-access walk skip a load whose every
	// memory-stage visit is provably a no-op until this cycle: a
	// pre-address load with no bypass upside (fast forwarding disabled,
	// or a generation-valid ffBlocked memo) does nothing until its own
	// address generation. Zero means awake; memSleepAgen means asleep
	// until the entry's own issue rewrites the bound to addrAt. Every
	// structure-generation bump wakes the whole stream (wakeStream),
	// because the bound was derived from a memo the bump invalidates.
	memWake uint64

	// Dependence wakeup (issueStage): rather than re-polling its
	// producers every cycle, a consumer counts the incomplete producers
	// gating its issue (depsPending) and carries the latest known
	// operand-arrival bound (issueWake); each producer records its
	// waiting consumers and pushes its readyAt once, at completion.
	// Stale records — a squashed consumer's slot, a recycled entry — are
	// filtered at push time by the (allocGen, dep-slot) validity check,
	// so squash paths never have to edit waiter lists.
	waiters  []waitRef
	allocGen uint32
}

// waitRef names one registered wait: consumer w's dep slot, valid only
// while w is still the same allocation and the slot still holds the
// producer.
type waitRef struct {
	w    *uop
	gen  uint32
	slot uint8
}

// coreStreams is the most streams a core ever builds: the conventional
// LSQ plus, on a decoupled machine, the LVAQ (config.Streams). Hot
// per-uop and per-core arrays are sized by it rather than the roomier
// memsys.MaxStreams so the dispatch-rate uop reset and the per-cycle
// walks touch less memory; core.New enforces the bound.
const coreStreams = 2

// Fast-forward memo states.
const (
	ffNone    uint8 = iota // no cached scan; do the full walk
	ffBlocked              // scan concluded "no bypass" for structural reasons
	ffWaiting              // matched store found; waiting for its value
)

// memSleepAgen is the memWake bound of an entry asleep until its own
// address generation: no fixed cycle is known yet, so the entry's issue
// (which computes addrAt) rewrites the bound. memSleepPush marks an
// entry asleep until an external delivery — a producer's completion
// push or a forwarding store's value transition — clears or rewrites
// the bound.
const (
	memSleepAgen = ^uint64(0)
	memSleepPush = ^uint64(0) - 1
)

// wrSlotStoreValue marks a waitRef registered by a store against its
// data producer: delivery rewrites the store's memory-stage sleep bound
// (memWake) instead of the issue gate, because a store's data operand
// never gates its issue — only its completion.
const wrSlotStoreValue = 2

// wrSlotFwdValue marks a waitRef registered by a load against the store
// it would forward from (ffWaiting / osFwdWait): the store's value-known
// transition clears the load's sleep bound. The store is older than the
// load and therefore earlier in the same stream's pending walk, so the
// wake always lands in the same cycle a per-cycle poll would have fired.
const wrSlotFwdValue = 3

// Order-scan memo states.
const (
	osNone      uint8 = iota // no cached scan; do the full walk
	osStallAddr              // blocked on osCand's unknown address
	osFwdWait                // forwarding from osCand once its value is ready
	osPartial                // waiting for partially-overlapping osCand to drain
	osClear                  // scan passed: go straight to the port/cache
)

// pendingAccess reports whether the entry still has memory-stage work:
// a store whose operands are not yet complete, or a load that has not
// obtained its data. Entries for which this is false are inert in
// processStream's walk.
func (u *uop) pendingAccess() bool {
	if u.isLoad {
		return !u.accessDone
	}
	return !u.completed
}

// QueueNode implements memsys.Entry.
func (u *uop) QueueNode() *memsys.Node { return &u.qnode }

// OrderSeq implements memsys.Entry.
func (u *uop) OrderSeq() uint64 { return u.seq }

// TraceEvent is the per-instruction pipeline timeline delivered to a
// Tracer. All cycle stamps are absolute; zero means "did not happen".
type TraceEvent struct {
	Seq   uint64
	PC    uint32
	Inst  isa.Inst
	Queue string // stream name ("LSQ", "LVAQ") or "" for non-memory ops
	Addr  uint32 // effective address for memory instructions

	DispatchedAt uint64
	IssuedAt     uint64
	AddrAt       uint64 // address generation done (memory ops)
	ReadyAt      uint64 // result available
	CommittedAt  uint64

	Squashed      bool // re-dispatched later by misroute recovery
	Misrouted     bool
	Forwarded     bool // value came from an older store in the queue
	FastForwarded bool
	Combined      bool // access rode a shared port grant
}

// Tracer observes retired (and squashed) instructions. Implementations
// must be fast; Trace is called once per instruction.
type Tracer interface {
	Trace(ev TraceEvent)
}

// SetTracer installs a pipeline tracer (nil disables tracing).
func (c *Core) SetTracer(t Tracer) { c.tracer = t }

func (c *Core) emitTrace(u *uop, committedAt uint64, squashed bool) {
	if c.tracer == nil {
		return
	}
	ev := TraceEvent{
		Seq:           u.seq,
		PC:            u.ef.PC,
		Inst:          u.ef.Inst,
		Addr:          u.ef.Addr,
		DispatchedAt:  u.dispatchedAt,
		IssuedAt:      u.issuedAt,
		ReadyAt:       u.readyAt,
		CommittedAt:   committedAt,
		Squashed:      squashed,
		Misrouted:     u.misrouted,
		Forwarded:     u.fwdFrom != nil && !u.accessedFast(),
		FastForwarded: u.accessedFast(),
		Combined:      u.combined,
	}
	if u.isMem {
		ev.Queue = c.streams[u.stream].Spec.Name
		ev.AddrAt = u.addrAt
	}
	c.tracer.Trace(ev)
}

// accessedFast reports whether the uop's value came via the offset-based
// fast path (before address generation).
func (u *uop) accessedFast() bool {
	return u.fwdFrom != nil && u.fastForwarded
}

func (u *uop) overlaps(v *uop) bool {
	a0, a1 := u.ef.Addr, u.ef.Addr+uint32(u.ef.Bytes)
	b0, b1 := v.ef.Addr, v.ef.Addr+uint32(v.ef.Bytes)
	return a0 < b1 && b0 < a1
}

func (u *uop) sameAccess(v *uop) bool {
	return u.ef.Addr == v.ef.Addr && u.ef.Bytes == v.ef.Bytes
}

// Core is one simulated processor running one program.
type Core struct {
	cfg config.Config
	emu *emu.Machine

	// streams are the memory access streams (memsys); stream 0 is the
	// conventional LSQ/L1 stream. localIdx and nonlocalIdx name the
	// steering targets for local and non-local classifications.
	streams     []*memsys.Stream
	localIdx    int
	nonlocalIdx int

	l2  *cache.Cache
	mem *cache.MainMemory

	now uint64
	seq uint64

	// rob is the reorder buffer as a preallocated power-of-two ring;
	// position 0 (robAt(0)) is the commit head. A ring rather than a
	// sliding slice so the steady-state hot loop never reallocates.
	rob     []*uop
	robHead int
	robN    int

	// robOccSynced is the last cycle folded into stats.ROBOccupancy (lazy
	// interval accumulation; the legacy sample point is the end of the
	// cycle, so mutations sync through now-1 and the result flushes
	// through the final cycle).
	robOccSynced uint64

	// freeUops recycles retired RUU entries; together with the rings it
	// keeps the steady-state dispatch/replay path allocation-free.
	freeUops []*uop

	// issueHead/issueTail hold the not-yet-issued ROB entries in program
	// order (an intrusive doubly-linked list), so issueStage walks only
	// the entries that can still consume an issue slot instead of the
	// whole ROB ring.
	issueHead, issueTail *uop

	// qGen is a per-stream structure generation: bumped on any queue
	// mutation that can change a cached scan verdict (squash, mid-queue
	// remove/transfer, dual resolution). A uop's cached scan results
	// (ffState, osState) are valid only while its stream's generation is
	// unchanged. Head retires deliberately do NOT bump it: removing the
	// oldest entry can only delete potential blockers or matches below a
	// scan's stopping point, never add one, so a negative verdict stays
	// negative — and the two positive-wait verdicts are retire-proof
	// (an unresolved or value-less store cannot commit, and a forwarding
	// match completes no earlier than the cycle its consumer load
	// forwards from it). The one verdict that waits FOR a retire,
	// osPartial, carries an explicit queue-liveness check instead.
	qGen [coreStreams]uint64

	// pendHead/pendTail hold, per stream, the queued entries with
	// memory-stage work left (pendingAccess), in program order.
	// processStream walks only these — an entry with its access done is
	// inert in the memory stage by construction.
	pendHead, pendTail [coreStreams]*uop

	// sched collects future wake cycles (fill completions, agen latency,
	// recovery-stall expiry, MSHR frees) for the event-driven engine;
	// progressed is set by any state transition during the current cycle
	// and cleared by the run loop. A cycle that ends with progressed false
	// changed nothing but per-cycle stall counters, which is what licenses
	// skipping ahead (DESIGN.md §12).
	sched      sched.Sched
	progressed bool
	stallSnap  stallSnapshot

	// renameTable maps each architectural register to its most recent
	// in-flight producer.
	renameTable [isa.NumRegs]*uop

	// spGen is bumped whenever an instruction writing $sp or $fp
	// dispatches; it delimits stack frames for fast data forwarding.
	spGen uint64

	// regionPredictor is the 1-bit per-PC predictor used for unhinted
	// accesses under SteerHint (paper §2.2.3).
	regionPredictor map[uint32]bool // true = local

	// staticClass is the per-PC classification table produced by the
	// internal/analysis dataflow pass, consulted under SteerStatic.
	// Absent entries are ambiguous and fall back to the predictor.
	staticClass map[uint32]isa.Hint

	// specClass is the per-PC confidence table produced by the
	// analysis.Assign pass, consulted under SteerSpec. Absent entries are
	// leave-dynamic and fall back to the predictor.
	specClass map[uint32]analysis.ConfClass

	// fwdPairs (load PC → store PC) and combineGroups (member PC → group
	// id) are the statically-proven tables from the interprocedural
	// dependence analysis, populated under ForwardStatic/CombineStatic.
	fwdPairs      map[uint32]uint32
	combineGroups map[uint32]int

	// annotTLB, when non-nil, is the §2.1 annotation TLB: steering
	// verification waits for its fill on a miss.
	annotTLB *tlb.TLB

	tracer Tracer

	// fi, when non-nil, perturbs the run at the FaultInjector hook points
	// (see run.go); lastCommitCycle feeds the failure snapshot.
	fi              FaultInjector
	lastCommitCycle uint64

	dispatchStallUntil uint64
	fetchDone          bool // emulator halted or instruction budget reached
	// pending is the effect held back by a full queue (hasPending gates
	// it; a value rather than a pointer so re-parking never allocates).
	pending    emu.Effect
	hasPending bool
	// replay holds the effects of squashed (wrong-stream recovery)
	// instructions awaiting re-dispatch, as a ring deque (squash prepends
	// a batch, dispatch pops the front); the emulator is never re-run.
	replay     []emu.Effect
	replayHead int
	replayN    int

	stats Stats
}

// ---------------------------------------------------------- ROB ring

func (c *Core) robLen() int { return c.robN }

func (c *Core) robAt(i int) *uop { return c.rob[(c.robHead+i)&(len(c.rob)-1)] }

func (c *Core) robPush(u *uop) {
	c.syncROBOcc()
	if c.robN == len(c.rob) {
		// Dispatch is bounded by ROBSize, so a full ring should be
		// unreachable; guard anyway rather than corrupt the window.
		nb := make([]*uop, 2*len(c.rob))
		for i := 0; i < c.robN; i++ {
			nb[i] = c.robAt(i)
		}
		c.rob, c.robHead = nb, 0
	}
	c.rob[(c.robHead+c.robN)&(len(c.rob)-1)] = u
	c.robN++
}

func (c *Core) robPopHead() *uop {
	c.syncROBOcc()
	u := c.rob[c.robHead]
	c.rob[c.robHead] = nil
	c.robHead = (c.robHead + 1) & (len(c.rob) - 1)
	c.robN--
	return u
}

// robTruncate drops every entry at position >= n (the squashed suffix).
func (c *Core) robTruncate(n int) {
	c.syncROBOcc()
	mask := len(c.rob) - 1
	for i := n; i < c.robN; i++ {
		c.rob[(c.robHead+i)&mask] = nil
	}
	c.robN = n
}

// syncROBOcc folds the cycles since the last ROB length change into the
// occupancy integral. The legacy per-cycle sample point is the end of the
// cycle, so a mutation during cycle now accumulates through now-1 at the
// old length; the current cycle itself is folded in by the next mutation
// (or the final flush) at the post-mutation length.
func (c *Core) syncROBOcc() {
	if c.now > 0 && c.now-1 > c.robOccSynced {
		c.stats.ROBOccupancy += (c.now - 1 - c.robOccSynced) * uint64(c.robN)
		c.robOccSynced = c.now - 1
	}
}

// flushROBOcc completes the integral through the final cycle; called once
// when the result is built.
func (c *Core) flushROBOcc() {
	if c.now > c.robOccSynced {
		c.stats.ROBOccupancy += (c.now - c.robOccSynced) * uint64(c.robN)
		c.robOccSynced = c.now
	}
}

// ------------------------------------------------------- replay deque

func (c *Core) replayPopFront() emu.Effect {
	ef := c.replay[c.replayHead]
	c.replayHead = (c.replayHead + 1) & (len(c.replay) - 1)
	c.replayN--
	return ef
}

func (c *Core) replayPushFront(ef emu.Effect) {
	if c.replayN == len(c.replay) {
		c.growReplay()
	}
	c.replayHead = (c.replayHead - 1) & (len(c.replay) - 1)
	c.replay[c.replayHead] = ef
	c.replayN++
}

func (c *Core) growReplay() {
	nb := make([]emu.Effect, 2*len(c.replay))
	for i := 0; i < c.replayN; i++ {
		nb[i] = c.replay[(c.replayHead+i)&(len(c.replay)-1)]
	}
	c.replay, c.replayHead = nb, 0
}

// --------------------------------------------------------- uop pool

// allocUop returns a zeroed RUU entry, recycling retired ones. The
// allocation generation survives (incremented) so waitRefs against the
// previous life are recognizably stale, and the waiter slab is kept to
// stay allocation-free in steady state.
func (c *Core) allocUop() *uop {
	if n := len(c.freeUops); n > 0 {
		u := c.freeUops[n-1]
		c.freeUops = c.freeUops[:n-1]
		gen, w := u.allocGen, u.waiters
		*u = uop{}
		u.allocGen, u.waiters = gen+1, w[:0]
		return u
	}
	return new(uop)
}

// watch registers u's interest in dep slot's producer for issue gating.
// A producer that has already completed contributes only its (immutable)
// readyAt bound; an in-flight one gets a waiter record and will push the
// bound at its completion transition.
func (c *Core) watch(u *uop, slot int) {
	d := u.dep[slot]
	if d == nil {
		return
	}
	if d.completed {
		if d.readyAt > u.issueWake {
			u.issueWake = d.readyAt
		}
		return
	}
	d.waiters = append(d.waiters, waitRef{u, u.allocGen, uint8(slot)})
	u.depsPending++
}

// watchStoreValue registers store u's interest in its data producer for
// the memory-stage sleep bound: an in-flight producer will push its
// readyAt at completion (wrSlotStoreValue), letting updateStore sleep
// instead of polling. A producer already complete needs no record — the
// poll reads its immutable readyAt as a bound directly.
func (c *Core) watchStoreValue(u *uop) {
	if d := u.dep[1]; d != nil && !d.completed {
		d.waiters = append(d.waiters, waitRef{u, u.allocGen, wrSlotStoreValue})
	}
}

// watchFwdValue registers load u's interest in store st's value-known
// transition (wrSlotFwdValue). Registrations are never canceled — stale
// ones are filtered by allocGen at delivery, and a spurious wake only
// costs one poll.
func (c *Core) watchFwdValue(u, st *uop) {
	st.waiters = append(st.waiters, waitRef{u, u.allocGen, wrSlotFwdValue})
}

// pushReady is called exactly once, at p's completion transition, to
// deliver p.readyAt to every consumer still waiting on it. After this,
// p.completed is sticky and new consumers read the bound directly in
// watch, so the drained list never refills.
func (c *Core) pushReady(p *uop) {
	for _, wr := range p.waiters {
		w := wr.w
		if wr.slot == wrSlotStoreValue {
			// Store data-value bound: the store wakes exactly when the
			// operand it polls for becomes observable.
			if w.allocGen == wr.gen && w.dep[1] == p {
				w.memWake = p.readyAt
			}
			continue
		}
		if w.allocGen != wr.gen || w.dep[wr.slot] != p {
			continue // consumer squashed, recycled, or slot released
		}
		w.depsPending--
		if p.readyAt > w.issueWake {
			w.issueWake = p.readyAt
		}
	}
	p.waiters = p.waiters[:0]
}

// wakeFwdWaiters is called at a store's value-known transition: every
// load registered to forward from it resumes memory-stage visits this
// cycle. Registrations only happen while the value is pending, so the
// transition drains the list for good. Waking is always safe; only
// sleeping needs justification.
func (c *Core) wakeFwdWaiters(u *uop) {
	if len(u.waiters) == 0 {
		return
	}
	for _, wr := range u.waiters {
		if wr.w.allocGen == wr.gen {
			wr.w.memWake = 0
		}
	}
	u.waiters = u.waiters[:0]
}

// recycleUop returns a uop that has left the pipeline (committed or
// squashed) to the pool — immediately if no consumer still holds it in a
// dep slot, otherwise when the last consumer releases it.
func (c *Core) recycleUop(u *uop) {
	c.issueUnlink(u)
	if u.refs == 0 {
		c.freeUops = append(c.freeUops, u)
	} else {
		u.dead = true
	}
}

// issuePush appends a freshly-dispatched entry to the not-yet-issued
// list; dispatch order is program order, so the list stays sorted.
func (c *Core) issuePush(u *uop) {
	u.inIssueQ = true
	u.issuePrev = c.issueTail
	if c.issueTail != nil {
		c.issueTail.issueNext = u
	} else {
		c.issueHead = u
	}
	c.issueTail = u
}

// issueUnlink removes an entry from the not-yet-issued list (on issue, on
// completion without issue — a fast-forwarded load — or when the entry
// leaves the pipeline). Idempotent.
func (c *Core) issueUnlink(u *uop) {
	if !u.inIssueQ {
		return
	}
	u.inIssueQ = false
	if u.issuePrev != nil {
		u.issuePrev.issueNext = u.issueNext
	} else {
		c.issueHead = u.issueNext
	}
	if u.issueNext != nil {
		u.issueNext.issuePrev = u.issuePrev
	} else {
		c.issueTail = u.issuePrev
	}
	u.issueNext, u.issuePrev = nil, nil
}

// pendPush appends u to stream id's pending list. Entries are pushed in
// dispatch (= program) order; the one out-of-order arrival — a misroute
// transfer — is the youngest entry in the machine by the time it moves
// (everything younger was just squashed), so a tail append is always
// ordered.
func (c *Core) pendPush(id int, u *uop) {
	u.inPend[id] = true
	u.pendPrev[id] = c.pendTail[id]
	if c.pendTail[id] != nil {
		c.pendTail[id].pendNext[id] = u
	} else {
		c.pendHead[id] = u
	}
	c.pendTail[id] = u
}

// pendUnlink removes u from stream id's pending list. Idempotent.
func (c *Core) pendUnlink(id int, u *uop) {
	if !u.inPend[id] {
		return
	}
	u.inPend[id] = false
	if u.pendPrev[id] != nil {
		u.pendPrev[id].pendNext[id] = u.pendNext[id]
	} else {
		c.pendHead[id] = u.pendNext[id]
	}
	if u.pendNext[id] != nil {
		u.pendNext[id].pendPrev[id] = u.pendPrev[id]
	} else {
		c.pendTail[id] = u.pendPrev[id]
	}
	u.pendNext[id], u.pendPrev[id] = nil, nil
}

// pendDrop unlinks u from every stream's pending list (both copies of a
// dual-steered entry). Callers invoke it exactly when u stops being
// pending: on the completion transition, or when a still-pending entry
// is removed by a squash.
func (c *Core) pendDrop(u *uop) {
	for id := range u.inPend {
		c.pendUnlink(id, u)
	}
}

// wakeStream clears the sleep bound of every entry still pending in
// stream id. Called wherever the stream's structure generation is
// bumped: the bump invalidates the fast-forward memo a sleeping load's
// bound was justified by, so the load must resume per-cycle visits (its
// next one re-runs the scan). Bumps are recovery events — misroutes,
// dual-steering kills, squashes — so the walk is off the hot path.
func (c *Core) wakeStream(id int) {
	for u := c.pendHead[id]; u != nil; u = u.pendNext[id] {
		u.memWake = 0
	}
}

// releaseDep is called by a consumer when it drops a producer from its dep
// slots (the operand was observed ready, or the consumer was squashed).
func (c *Core) releaseDep(d *uop) {
	d.refs--
	if d.refs == 0 && d.dead {
		d.dead = false
		c.freeUops = append(c.freeUops, d)
	}
}

// New builds a core for the given program and configuration.
func New(prog *asm.Program, cfg config.Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	robCap := 16
	for robCap < cfg.ROBSize {
		robCap <<= 1
	}
	c := &Core{
		cfg:             cfg,
		emu:             emu.New(prog),
		mem:             &cache.MainMemory{Name: "mem", Latency: cfg.MemLatency},
		regionPredictor: make(map[uint32]bool),
		rob:             make([]*uop, robCap),
		replay:          make([]emu.Effect, 16),
		freeUops:        make([]*uop, 0, 3*cfg.ROBSize),
		// Wake population is bounded by a few registrations per in-flight
		// instruction plus per-stream MSHR wakes; oversize the slab so the
		// hot loop never grows it.
		sched: *sched.New(4*cfg.ROBSize + 64),
	}
	c.l2 = cache.New(cache.Config{
		Name: "L2", SizeBytes: cfg.L2.SizeBytes, LineBytes: cfg.L2.LineBytes,
		Assoc: cfg.L2.Assoc, HitLatency: cfg.L2.HitLatency, MSHRs: 64,
	}, c.mem)
	// Seed the pool from one contiguous slab: the intrusive walks
	// (issue list, pending-access lists) chase pointers across live
	// entries every cycle, and a compact arena keeps those loads inside
	// a few pages instead of scattered heap allocations. The population
	// is the ROB plus retired producers still held in dep slots; the
	// pool falls back to the heap if it ever runs dry.
	slab := make([]uop, 3*cfg.ROBSize)
	for i := len(slab) - 1; i >= 0; i-- {
		c.freeUops = append(c.freeUops, &slab[i])
	}
	if len(cfg.Streams()) > coreStreams {
		return nil, ErrTooManyStreams
	}
	for id, spec := range cfg.Streams() {
		sc := cache.New(cache.Config{
			Name: streamCacheName(spec), SizeBytes: spec.Cache.SizeBytes,
			LineBytes: spec.Cache.LineBytes, Assoc: spec.Cache.Assoc,
			HitLatency: spec.Cache.HitLatency,
		}, c.l2)
		c.streams = append(c.streams, memsys.NewStream(id, spec, sc))
		if spec.Local {
			c.localIdx = id
		} else {
			c.nonlocalIdx = id
		}
	}
	if !cfg.Decoupled() {
		// A unified memory system has a single stream; both
		// classifications route to it.
		c.localIdx = c.nonlocalIdx
	}
	if cfg.Decoupled() && cfg.TLBEntries > 0 {
		c.annotTLB = tlb.New(cfg.TLBEntries, cfg.TLBMissLatency)
	}
	if cfg.Decoupled() && cfg.Steering == config.SteerStatic {
		c.staticClass = analysis.Analyze(prog).HintTable()
	}
	if cfg.Decoupled() && cfg.Steering == config.SteerSpec {
		c.specClass = analysis.Assign(prog).SteerTable()
	}
	if cfg.Decoupled() && (cfg.ForwardStatic || cfg.CombineStatic) {
		dep := analysis.Dependences(prog, cfg.LVC.LineBytes)
		if cfg.ForwardStatic {
			c.fwdPairs = dep.ForwardTable()
		}
		if cfg.CombineStatic {
			c.combineGroups = dep.CombineTable()
		}
	}
	return c, nil
}

// streamCacheName keeps the historical cache names in the stat block.
func streamCacheName(spec config.StreamSpec) string {
	if spec.Local {
		return "LVC"
	}
	return "L1D"
}

// route returns the stream index accesses with the given classification
// are steered to.
func (c *Core) route(local bool) int {
	if local {
		return c.localIdx
	}
	return c.nonlocalIdx
}

// ErrBudget is reported (wrapped, inside a *simerr.SimError) by Run when
// the cycle safety budget is exhausted before the program halts — almost
// always a sign of a workload that does not terminate.
var ErrBudget = errors.New("core: cycle budget exhausted")

// ErrTooManyStreams: the config declares more memory streams than the
// core's fixed per-uop bookkeeping supports.
var ErrTooManyStreams = errors.New("core: config builds more streams than the core supports")

func (c *Core) done() bool {
	return c.fetchDone && c.robN == 0
}
