package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"repro/internal/core"
)

// Profiles is the resolved value of the shared profiling flag trio
// (-cpuprofile, -memprofile, -trace). Empty paths mean "off"; the flags
// cost nothing unless set.
type Profiles struct {
	CPU   string
	Mem   string
	Trace string
}

// RegisterProfiles registers the -cpuprofile/-memprofile/-trace trio on fs
// and returns the destination the parsed values land in.
func RegisterProfiles(fs *flag.FlagSet) *Profiles {
	return registerProfiles(fs, "trace")
}

// RegisterProfilesExecTrace is RegisterProfiles with the execution-trace
// flag named -exectrace, for commands where -trace already means something
// else (ddsim's pipeline trace).
func RegisterProfilesExecTrace(fs *flag.FlagSet) *Profiles {
	return registerProfiles(fs, "exectrace")
}

func registerProfiles(fs *flag.FlagSet, traceFlag string) *Profiles {
	p := &Profiles{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.Trace, traceFlag, "", "write a runtime execution trace to this file")
	return p
}

// Start begins the requested profiles and returns the function to run when
// the profiled work ends: it stops the CPU profile and the execution trace
// and writes the heap profile (after a GC, so it reflects live objects).
// Start fails fast on unwritable paths; stop is always safe to call.
func (p *Profiles) Start() (stop func(), err error) {
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if p.CPU != "" {
		f, err := os.Create(p.CPU)
		if err != nil {
			return stop, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if p.Trace != "" {
		f, err := os.Create(p.Trace)
		if err != nil {
			return stop, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return stop, fmt.Errorf("trace: %w", err)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if p.Mem != "" {
		path := p.Mem
		stops = append(stops, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		})
	}
	return stop, nil
}

// RegisterEngine registers the -engine flag shared by ddsim and ddbench and
// returns the destination string; resolve it with core.ParseEngine after
// flag parsing.
func RegisterEngine(fs *flag.FlagSet) *string {
	return fs.String("engine", core.EngineEvent.String(),
		"run-loop engine: event (next-event cycle skipping) or tick (classic per-cycle reference)")
}
