// Package cliutil holds the small pieces every simulator CLI shares: the
// -maxcycles/-timeout/-watchdog run-budget flag trio (previously duplicated
// between ddsim and ddbench, and now also the source of ddserve's per-job
// budget defaults) and the failure reporter that prints a typed simulation
// error — with its pipeline snapshot — to stderr. Snapshots always go to
// stderr so stdout stays machine-parseable (stat blocks, JSON reports).
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/simerr"
)

// Budget is the resolved value of the shared run-budget flag trio.
type Budget struct {
	// MaxCycles aborts any single simulation after this many simulated
	// cycles (0 = unbounded).
	MaxCycles uint64
	// Timeout bounds wall-clock time (0 = unbounded). ddsim and ddbench
	// apply it to the whole invocation; ddserve applies it per job.
	Timeout time.Duration
	// Watchdog is the forward-progress window in cycles (0 = the core's
	// default window).
	Watchdog uint64
}

// RegisterBudget registers the -maxcycles/-timeout/-watchdog trio on fs
// and returns the destination the parsed values land in.
func RegisterBudget(fs *flag.FlagSet) *Budget {
	b := &Budget{}
	fs.Uint64Var(&b.MaxCycles, "maxcycles",
		0, "abort any single simulation after this many cycles (0 = unbounded)")
	fs.DurationVar(&b.Timeout, "timeout",
		0, "abort after this much wall-clock time (0 = unbounded)")
	fs.Uint64Var(&b.Watchdog, "watchdog",
		0, "forward-progress watchdog window in cycles (0 = default)")
	return b
}

// RunOptions renders the budget as core run options. The wall-clock
// timeout is resolved against the current time, so call it once, when the
// bounded work starts.
func (b *Budget) RunOptions() core.RunOptions {
	opts := core.RunOptions{
		MaxCycles:      b.MaxCycles,
		WatchdogCycles: b.Watchdog,
	}
	if b.Timeout > 0 {
		opts.Deadline = time.Now().Add(b.Timeout)
	}
	return opts
}

// Shared exit codes. The split matters to CI and scripts: exit 1 means
// the run itself failed or regressed (re-running or investigating the
// change may help); exit 2 means the invocation is wrong — bad flags, an
// unreadable or schema-mismatched input — and retrying without fixing it
// cannot succeed.
const (
	ExitRunFailure = 1
	ExitUsage      = 2
)

// FatalUsage reports a usage or input-schema error and exits ExitUsage.
func FatalUsage(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(ExitUsage)
}

// ReportSim writes err prefixed by the tool name, and, when err carries a
// typed simulation failure, the full pipeline snapshot (the watchdog/abort
// state dump) after it.
func ReportSim(w io.Writer, tool string, err error) {
	fmt.Fprintf(w, "%s: %v\n", tool, err)
	var se *simerr.SimError
	if errors.As(err, &se) {
		fmt.Fprintf(w, "pipeline snapshot (%s):\n%s", se.Kind, se.Snapshot)
	}
}

// FatalSim reports err to stderr (snapshot included for typed simulation
// failures) and exits 1.
func FatalSim(tool string, err error) {
	ReportSim(os.Stderr, tool, err)
	os.Exit(1)
}
