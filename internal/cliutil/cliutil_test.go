package cliutil

import (
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/simerr"
)

func TestRegisterBudgetParsesTrio(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := RegisterBudget(fs)
	if err := fs.Parse([]string{"-maxcycles", "1234", "-timeout", "2s", "-watchdog", "77"}); err != nil {
		t.Fatal(err)
	}
	if b.MaxCycles != 1234 || b.Timeout != 2*time.Second || b.Watchdog != 77 {
		t.Fatalf("parsed budget = %+v", *b)
	}

	opts := b.RunOptions()
	if opts.MaxCycles != 1234 || opts.WatchdogCycles != 77 {
		t.Fatalf("run options = %+v", opts)
	}
	if opts.Deadline.IsZero() || time.Until(opts.Deadline) > 2*time.Second {
		t.Fatalf("deadline not resolved from timeout: %v", opts.Deadline)
	}
}

func TestZeroBudgetHasNoDeadline(t *testing.T) {
	opts := (&Budget{}).RunOptions()
	if !opts.Deadline.IsZero() || opts.MaxCycles != 0 || opts.WatchdogCycles != 0 {
		t.Fatalf("zero budget produced bounds: %+v", opts)
	}
}

func TestReportSimPrintsSnapshot(t *testing.T) {
	err := &simerr.SimError{
		Kind:     simerr.KindWatchdog,
		Reason:   "no instruction committed",
		Snapshot: simerr.Snapshot{Cycle: 42, Committed: 7},
	}
	var b strings.Builder
	ReportSim(&b, "ddtest", err)
	out := b.String()
	for _, want := range []string{"ddtest:", "watchdog", "pipeline snapshot", "cycle 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportSimPlainError(t *testing.T) {
	var b strings.Builder
	ReportSim(&b, "ddtest", flag.ErrHelp)
	if strings.Contains(b.String(), "snapshot") {
		t.Fatalf("plain error grew a snapshot:\n%s", b.String())
	}
}
