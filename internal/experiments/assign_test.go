package experiments

import (
	"os"
	"testing"

	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/workload"
)

// TestAssignAblationAcceptance pins the issue's acceptance criteria: on
// every workload with generator hints stripped, assigned-hint steering
// recovers at least 90% of the IPC gap between the unhinted $sp
// heuristic and oracle steering; and on the deliberately ambiguous
// spec1/spec2 examples, speculative steering performs at least as well
// as assigned hints while never changing architectural results.
func TestAssignAblationAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates all workloads under five steering legs")
	}
	r := NewRunner(0.02)
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			res := map[string]float64{}
			for _, leg := range assignLegs {
				lr, err := assignLegResult(r, w, leg)
				if err != nil {
					t.Fatal(err)
				}
				res[leg.name] = lr.IPC()
			}
			rec := gapRecovered(res["unhinted"], res["assigned"], res["oracle"])
			if rec < 0.90 {
				t.Errorf("assigned hints recover only %.1f%% of the unhinted→oracle gap (unhinted %.3f, assigned %.3f, oracle %.3f)",
					100*rec, res["unhinted"], res["assigned"], res["oracle"])
			}
		})
	}

	progs, err := specExamples()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			cfg := assignAblationConfig()
			cfg.Steering = config.SteerHint
			assigned, err := r.ResultProgram(prog.Name+"+assigned", analysis.Assign(prog).Apply(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Steering = config.SteerSpec
			spec, err := r.ResultProgram(prog.Name, prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if spec.IPC() < assigned.IPC() {
				t.Errorf("speculative steering (IPC %.3f) below assigned-hint steering (IPC %.3f)",
					spec.IPC(), assigned.IPC())
			}
			if spec.Committed != assigned.Committed {
				t.Errorf("instruction counts differ: spec %d vs assigned %d", spec.Committed, assigned.Committed)
			}
			for i, v := range assigned.Output {
				if spec.Output[i] != v {
					t.Fatalf("out[%d]: assigned %d vs spec %d — misspeculation changed architectural results", i, v, spec.Output[i])
				}
			}
		})
	}
}

// TestSpecExamplesMatchCheckedIn: the canonical example sources inlined
// in the experiment must stay byte-identical to the checked-in
// examples/asm/spec{1,2}.s files the docs and CLI tools reference.
func TestSpecExamplesMatchCheckedIn(t *testing.T) {
	for _, c := range []struct{ path, src string }{
		{"../../examples/asm/spec1.s", specExample1},
		{"../../examples/asm/spec2.s", specExample2},
	} {
		disk, err := os.ReadFile(c.path)
		if err != nil {
			t.Fatal(err)
		}
		if string(disk) != c.src {
			t.Errorf("%s drifted from the canonical source inlined in internal/experiments/assign.go", c.path)
		}
	}
}
