package experiments

import (
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestRunnerConcurrentSameKey(t *testing.T) {
	r := NewRunner(0.02)
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()

	const goroutines = 8
	results := make([]*core.Result, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Result(w, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent same-key requests ran separate simulations")
		}
	}
}

func TestRunnerPrefetchParallel(t *testing.T) {
	r := NewRunner(0.02)
	ws := workload.Integers()[:3]
	cfgs := []config.Config{cfgNM(2, 0), cfgNM(2, 2)}
	var pairs []Pair
	for _, w := range ws {
		for _, c := range cfgs {
			pairs = append(pairs, Pair{W: w, Cfg: c})
		}
	}
	if err := r.Prefetch(pairs, 4); err != nil {
		t.Fatal(err)
	}
	// Everything must now be served from cache (identical pointers on
	// repeat).
	for _, p := range pairs {
		a, err := r.Result(p.W, p.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := r.Result(p.W, p.Cfg)
		if a != b {
			t.Error("prefetch did not populate the cache")
		}
	}
}
