package experiments

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/simerr"
	"repro/internal/workload"
)

func TestRunnerConcurrentSameKey(t *testing.T) {
	r := NewRunner(0.02)
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()

	const goroutines = 8
	results := make([]*core.Result, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Result(w, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent same-key requests ran separate simulations")
		}
	}
}

// TestRunnerCacheHitsOnEqualConfigs verifies the cache is keyed on the
// canonical config.Key(): independently-built but equal configurations hit
// the same cached run, while any field difference forces a fresh one.
func TestRunnerCacheHitsOnEqualConfigs(t *testing.T) {
	r := NewRunner(0.02)
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Result(w, config.Default().WithPorts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Result(w, config.Default().WithPorts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equal configs missed the cache")
	}
	c, err := r.Result(w, config.Default().WithPorts(2, 2).WithOptimizations(4))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different configs collided in the cache")
	}
}

// TestPrefetchAggregatesErrors checks that Prefetch reports every failed
// run, not just an arbitrary one.
func TestPrefetchAggregatesErrors(t *testing.T) {
	r := NewRunner(0.02)
	ws := workload.Integers()[:2]
	bad := config.Default()
	bad.IssueWidth = 0 // fails validation in core.New
	err := r.Prefetch([]Pair{{W: ws[0], Cfg: bad}, {W: ws[1], Cfg: bad}}, 2)
	if err == nil {
		t.Fatal("Prefetch with invalid configs returned nil error")
	}
	for _, w := range ws {
		if !strings.Contains(err.Error(), w.Name) {
			t.Errorf("aggregated error missing failure for %s: %v", w.Name, err)
		}
	}
}

func TestRunnerPrefetchParallel(t *testing.T) {
	r := NewRunner(0.02)
	ws := workload.Integers()[:3]
	cfgs := []config.Config{cfgNM(2, 0), cfgNM(2, 2)}
	var pairs []Pair
	for _, w := range ws {
		for _, c := range cfgs {
			pairs = append(pairs, Pair{W: w, Cfg: c})
		}
	}
	if err := r.Prefetch(pairs, 4); err != nil {
		t.Fatal(err)
	}
	// Everything must now be served from cache (identical pointers on
	// repeat).
	for _, p := range pairs {
		a, err := r.Result(p.W, p.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := r.Result(p.W, p.Cfg)
		if a != b {
			t.Error("prefetch did not populate the cache")
		}
	}
}

// TestRunnerPanickingRunReleasesWaiters is the regression test for the
// in-flight leak: a run that panics must return a typed *simerr.SimError to
// every concurrent waiter on the key and release the in-flight entry, so
// later calls for the same key run again instead of deadlocking.
func TestRunnerPanickingRunReleasesWaiters(t *testing.T) {
	r := NewRunner(0.02)
	var calls atomic.Int32
	r.testRun = func(workload.Workload, config.Config) (*core.Result, error) {
		calls.Add(1)
		panic("test-injected core invariant violation")
	}
	w := workload.Integers()[0]
	cfg := config.Default()

	const goroutines = 6
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Result(w, cfg)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent callers deadlocked on a panicking run")
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d: panicking run returned nil error", i)
		}
		var se *simerr.SimError
		if !errors.As(err, &se) {
			t.Fatalf("caller %d: error %T is not a *simerr.SimError: %v", i, err, err)
		}
		if se.Kind != simerr.KindPanic {
			t.Fatalf("caller %d: kind %s, want %s", i, se.Kind, simerr.KindPanic)
		}
		if !strings.Contains(se.Reason, "test-injected") {
			t.Fatalf("caller %d: reason %q lost the panic value", i, se.Reason)
		}
		if se.Stack == "" {
			t.Fatalf("caller %d: contained panic carries no stack", i)
		}
	}
	if calls.Load() == 0 {
		t.Fatal("testRun hook never ran")
	}

	// The failed run must not poison the key: once the fault is gone, the
	// same key simulates successfully.
	want := &core.Result{}
	r.testRun = func(workload.Workload, config.Config) (*core.Result, error) {
		return want, nil
	}
	got, err := r.Result(w, cfg)
	if err != nil || got != want {
		t.Fatalf("retry after contained panic = (%v, %v), want the fresh result", got, err)
	}
}

// TestPrefetchBoundsGoroutines verifies the semaphore is taken before each
// worker is spawned: with par=3, no more than 3 simulations ever run at
// once, and every worker goroutine exits by the time Prefetch returns.
func TestPrefetchBoundsGoroutines(t *testing.T) {
	const par = 3
	r := NewRunner(0.02)
	var cur, peak atomic.Int32
	r.testRun = func(workload.Workload, config.Config) (*core.Result, error) {
		n := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		return &core.Result{}, nil
	}

	// Unique cache keys so every pair is a real run.
	var pairs []Pair
	w := workload.Integers()[0]
	for i := 0; i < 12; i++ {
		cfg := config.Default()
		cfg.MaxInsts = uint64(1000 + i)
		pairs = append(pairs, Pair{W: w, Cfg: cfg})
	}

	before := runtime.NumGoroutine()
	if err := r.Prefetch(pairs, par); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > par {
		t.Errorf("peak concurrent simulations = %d, want <= %d", got, par)
	}
	// All workers are wg.Wait()ed inside Prefetch; allow the runtime a
	// moment to reap exited goroutines before counting.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines leaked by Prefetch: %d before, %d after", before, after)
	}
}
