package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestRunnerConcurrentSameKey(t *testing.T) {
	r := NewRunner(0.02)
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()

	const goroutines = 8
	results := make([]*core.Result, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Result(w, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent same-key requests ran separate simulations")
		}
	}
}

// TestRunnerCacheHitsOnEqualConfigs verifies the cache is keyed on the
// canonical config.Key(): independently-built but equal configurations hit
// the same cached run, while any field difference forces a fresh one.
func TestRunnerCacheHitsOnEqualConfigs(t *testing.T) {
	r := NewRunner(0.02)
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Result(w, config.Default().WithPorts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Result(w, config.Default().WithPorts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equal configs missed the cache")
	}
	c, err := r.Result(w, config.Default().WithPorts(2, 2).WithOptimizations(4))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different configs collided in the cache")
	}
}

// TestPrefetchAggregatesErrors checks that Prefetch reports every failed
// run, not just an arbitrary one.
func TestPrefetchAggregatesErrors(t *testing.T) {
	r := NewRunner(0.02)
	ws := workload.Integers()[:2]
	bad := config.Default()
	bad.IssueWidth = 0 // fails validation in core.New
	err := r.Prefetch([]Pair{{W: ws[0], Cfg: bad}, {W: ws[1], Cfg: bad}}, 2)
	if err == nil {
		t.Fatal("Prefetch with invalid configs returned nil error")
	}
	for _, w := range ws {
		if !strings.Contains(err.Error(), w.Name) {
			t.Errorf("aggregated error missing failure for %s: %v", w.Name, err)
		}
	}
}

func TestRunnerPrefetchParallel(t *testing.T) {
	r := NewRunner(0.02)
	ws := workload.Integers()[:3]
	cfgs := []config.Config{cfgNM(2, 0), cfgNM(2, 2)}
	var pairs []Pair
	for _, w := range ws {
		for _, c := range cfgs {
			pairs = append(pairs, Pair{W: w, Cfg: c})
		}
	}
	if err := r.Prefetch(pairs, 4); err != nil {
		t.Fatal(err)
	}
	// Everything must now be served from cache (identical pointers on
	// repeat).
	for _, p := range pairs {
		a, err := r.Result(p.W, p.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := r.Result(p.W, p.Cfg)
		if a != b {
			t.Error("prefetch did not populate the cache")
		}
	}
}
