package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/config"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/workload"
)

func cfgNM(n, m int) config.Config { return config.Default().WithPorts(n, m) }

// relPerf returns the performance of res relative to base (ratio of
// cycles: >1 means res is faster).
func relPerf(baseCycles, cycles uint64) float64 {
	return stats.Speedup(baseCycles, cycles)
}

// prefetchAll warms the runner cache for a cross product of workloads and
// configurations.
func prefetchAll(r *Runner, ws []workload.Workload, cfgs []config.Config) error {
	var pairs []Pair
	for _, w := range ws {
		for _, c := range cfgs {
			pairs = append(pairs, Pair{W: w, Cfg: c})
		}
	}
	return r.Prefetch(pairs, runtime.NumCPU())
}

func init() {
	registerExperiment(Experiment{
		ID:    "table1",
		Title: "Table 1: base machine model",
		Description: "The simulated machine parameters, mirroring the " +
			"paper's Table 1.",
		Run: runTable1,
	})
	registerExperiment(Experiment{
		ID:    "table2",
		Title: "Table 2: benchmark programs",
		Description: "The synthetic workload suite standing in for the " +
			"paper's SPEC95 programs, with dynamic instruction counts.",
		Run: runTable2,
	})
	registerExperiment(Experiment{
		ID:    "fig2",
		Title: "Figure 2: frequency of memory access instructions",
		Description: "Loads and stores as a fraction of all instructions " +
			"and the share of each that references the run-time stack.",
		Run: runFig2,
	})
	registerExperiment(Experiment{
		ID:    "fig3",
		Title: "Figure 3: dynamic frame size distribution",
		Description: "Frame-size statistics of the integer programs " +
			"(dynamic and static), in words.",
		Run: runFig3,
	})
	registerExperiment(Experiment{
		ID:    "fig5",
		Title: "Figure 5: program bandwidth requirements",
		Description: "Performance of (N+0) configurations relative to " +
			"the (16+0) limit, N = 1..5.",
		Run: runFig5,
	})
	registerExperiment(Experiment{
		ID:    "fig6",
		Title: "Figure 6: LVC miss rates vs size",
		Description: "Miss rate of a direct-mapped LVC from 0.5 KB to " +
			"4 KB, replaying each program's local access stream.",
		Run: runFig6,
	})
	registerExperiment(Experiment{
		ID:    "fig7",
		Title: "Figure 7: (N+M) performance, no optimizations",
		Description: "Relative performance over (2+0) for N in {2,3,4} " +
			"and M in {0,1,2,3,16}, without fast forwarding or combining.",
		Run: runFig7,
	})
	registerExperiment(Experiment{
		ID:    "table3",
		Title: "Table 3: fast data forwarding speedup under (3+2)",
		Description: "Per-program speedup of offset-based LVAQ " +
			"forwarding over the same configuration without it.",
		Run: runTable3,
	})
	registerExperiment(Experiment{
		ID:    "fig8",
		Title: "Figure 8: access combining",
		Description: "Speedup of 2-way and 4-way combining over no " +
			"combining under (3+1) and (3+2).",
		Run: runFig8,
	})
	registerExperiment(Experiment{
		ID:    "fig9",
		Title: "Figure 9: (N+M) performance with optimizations",
		Description: "Figure 7 repeated with fast data forwarding and " +
			"2-way access combining enabled.",
		Run: runFig9,
	})
	registerExperiment(Experiment{
		ID:    "fig10",
		Title: "Figure 10: sensitivity to cache access latency",
		Description: "Adding a cycle to the L1 hit time vs decoupling: " +
			"(2+0), (3+0), (4+0) at 2-cycle hits, (4+0) at 3 cycles, " +
			"and the decoupled (2+2)/(3+3) with optimizations.",
		Run: runFig10,
	})
	registerExperiment(Experiment{
		ID:    "fig11",
		Title: "Figure 11: per-program (N+M) surfaces",
		Description: "126.gcc, 130.li, 147.vortex and 102.swim across " +
			"all (N+M) points with optimizations.",
		Run: runFig11,
	})
	registerExperiment(Experiment{
		ID:    "l2traffic",
		Title: "§4.2.1: L2 traffic change from adding the LVC",
		Description: "L2 accesses under (2+2) relative to (2+0); the " +
			"paper reports li -24%, vortex -7%, gcc slightly up.",
		Run: runL2Traffic,
	})
	registerExperiment(Experiment{
		ID:    "ablation-steering",
		Title: "Ablation: steering policy",
		Description: "Hint bits vs the $sp heuristic vs an oracle vs " +
			"dual insertion (§2.1 footnote 3) vs static dataflow " +
			"classification (internal/analysis) under (2+2) with " +
			"optimizations: cycles, misroutes, squashes.",
		Run: runAblationSteering,
	})
	registerExperiment(Experiment{
		ID:    "ablation-lvaq",
		Title: "Ablation: LVAQ size",
		Description: "LVAQ of 8/16/32/64 entries under (3+2) with " +
			"optimizations.",
		Run: runAblationLVAQ,
	})
	registerExperiment(Experiment{
		ID:    "ablation-lvc-assoc",
		Title: "Ablation: LVC associativity",
		Description: "2 KB LVC at associativity 1/2/4 under (3+2) " +
			"(the paper argues direct-mapped is enough).",
		Run: runAblationLVCAssoc,
	})
	registerExperiment(Experiment{
		ID:    "ext-input-sensitivity",
		Title: "§4.2.1: LVC hit rate vs input data",
		Description: "The paper notes the LVC hit rate is \"relatively " +
			"insensitive to the input data, because the function frames " +
			"are generally determined at compile time\". Re-run the 2KB " +
			"LVC miss-rate measurement on three different inputs per " +
			"program.",
		Run: runInputSensitivity,
	})
	registerExperiment(Experiment{
		ID:    "ablation-tlb",
		Title: "Ablation: annotation-TLB verification cost",
		Description: "The §2.1 verification mechanism modeled with a real " +
			"annotation TLB (vs the paper's free verification): the cost " +
			"is negligible once the TLB is warm.",
		Run: runAblationTLB,
	})
	registerExperiment(Experiment{
		ID:    "alt-portmodel",
		Title: "§1 alternatives: ideal vs banked vs replicated ports",
		Description: "The multi-porting schemes the paper argues " +
			"against — bank interleaving (conflicts) and replication " +
			"(store broadcast) — compared with ideal ports and with " +
			"data decoupling.",
		Run: runAltPortModel,
	})
	registerExperiment(Experiment{
		ID:    "alt-small-l1",
		Title: "§4.4 alternative: a small fast L1 instead of an LVC",
		Description: "Replace the 32KB/2-cycle L1 with a 2KB/1-cycle one " +
			"(keeping 2 ports) — the paper's preliminary finding is that " +
			"its higher miss rate negates the latency win unless the L2 " +
			"is faster than ~4 cycles.",
		Run: runAltSmallL1,
	})
	registerExperiment(Experiment{
		ID:    "ablation-combine",
		Title: "Ablation: combining width",
		Description: "Access combining width 1..8 on the burstiest " +
			"programs under (3+1).",
		Run: runAblationCombine,
	})
	registerExperiment(Experiment{
		ID:    "ablation-static-opt",
		Title: "Ablation: static vs dynamic forwarding/combining",
		Description: "The LVAQ optimizations restricted to the " +
			"interprocedural dependence analyzer's proven forwarding " +
			"pairs and combining groups, against the unrestricted " +
			"dynamic mechanisms and against no optimizations.",
		Run: runAblationStaticOpt,
	})
}

func runTable1(*Runner) (string, error) {
	c := config.Default()
	t := stats.NewTable("Base machine model (paper Table 1)", "parameter", "value")
	t.AddRow("issue width", c.IssueWidth)
	t.AddRow("ROB / LSQ / LVAQ", fmt.Sprintf("%d / %d / %d", c.ROBSize, c.LSQSize, c.LVAQSize))
	t.AddRow("int ALUs / FP ALUs", fmt.Sprintf("%d / %d", c.IntALUs, c.FPALUs))
	t.AddRow("int / FP mult-div", fmt.Sprintf("%d / %d", c.IntMulDiv, c.FPMulDiv))
	t.AddRow("L1 D-cache", fmt.Sprintf("%dKB %d-way, %d-cycle hit", c.L1.SizeBytes/1024, c.L1.Assoc, c.L1.HitLatency))
	t.AddRow("L2 cache", fmt.Sprintf("%dKB %d-way, %d-cycle", c.L2.SizeBytes/1024, c.L2.Assoc, c.L2.HitLatency))
	t.AddRow("LVC", fmt.Sprintf("%dKB direct-mapped, %d-cycle hit", c.LVC.SizeBytes/1024, c.LVC.HitLatency))
	t.AddRow("memory", fmt.Sprintf("%d-cycle, fully interleaved", c.MemLatency))
	t.AddRow("front end", "perfect I-cache, perfect branch prediction")
	t.AddRow("latencies", "MIPS R10000")
	return t.Render(), nil
}

func runTable2(r *Runner) (string, error) {
	t := stats.NewTable("Benchmark programs (paper Table 2)",
		"program", "stands for", "kind", "paper insts", "simulated insts")
	for _, w := range workload.All() {
		p, err := r.Profile(w)
		if err != nil {
			return "", err
		}
		t.AddRow(w.Name, w.PaperName, w.Kind.String(), w.PaperInsts, p.Insts)
	}
	return t.Render(), nil
}

func runFig2(r *Runner) (string, error) {
	t := stats.NewTable("Memory access instruction frequencies (paper Figure 2)",
		"program", "loads/inst", "stores/inst", "%loads local", "%stores local", "%refs local")
	var localLoadShares, localStoreShares []float64
	for _, w := range workload.All() {
		p, err := r.Profile(w)
		if err != nil {
			return "", err
		}
		ll := stats.Pct(p.LocalLoads, p.Loads)
		ls := stats.Pct(p.LocalStores, p.Stores)
		localLoadShares = append(localLoadShares, ll)
		localStoreShares = append(localStoreShares, ls)
		t.AddRow(w.Name, p.LoadFreq(), p.StoreFreq(),
			fmt.Sprintf("%.1f", ll), fmt.Sprintf("%.1f", ls),
			fmt.Sprintf("%.1f", 100*p.LocalFraction()))
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	out := t.Render()
	out += fmt.Sprintf("\nmean local share: loads %.1f%%, stores %.1f%% (paper: 30%% and 48%%)\n",
		mean(localLoadShares), mean(localStoreShares))
	return out, nil
}

func runFig3(r *Runner) (string, error) {
	t := stats.NewTable("Frame sizes in words (paper Figure 3)",
		"program", "dyn mean", "dyn p50", "dyn p90", "dyn p99", "static mean", "static max")
	var statMeans []float64
	for _, w := range workload.Integers() {
		p, err := r.Profile(w)
		if err != nil {
			return "", err
		}
		sf := p.StaticFrames()
		statMeans = append(statMeans, sf.Mean())
		t.AddRow(w.Name,
			p.DynFrames.Mean(),
			p.DynFrames.Percentile(0.5), p.DynFrames.Percentile(0.9), p.DynFrames.Percentile(0.99),
			sf.Mean(), sf.Max())
	}
	out := t.Render()
	var sum float64
	for _, m := range statMeans {
		sum += m
	}
	out += fmt.Sprintf("\nsuite static mean: %.1f words (paper: ~7 words over 4746 functions, max 282)\n",
		sum/float64(len(statMeans)))
	return out, nil
}

func runFig5(r *Runner) (string, error) {
	ns := []int{1, 2, 3, 4, 5, 16}
	var cfgs []config.Config
	for _, n := range ns {
		cfgs = append(cfgs, cfgNM(n, 0))
	}
	if err := prefetchAll(r, workload.All(), cfgs); err != nil {
		return "", err
	}
	t := stats.NewTable("Relative performance of (N+0) vs (16+0) (paper Figure 5)",
		"program", "(1+0)", "(2+0)", "(3+0)", "(4+0)", "(5+0)")
	perN := make([][]float64, 5)
	for _, w := range workload.All() {
		limit, err := r.Result(w, cfgNM(16, 0))
		if err != nil {
			return "", err
		}
		row := []any{w.Name}
		for i, n := range ns[:5] {
			res, err := r.Result(w, cfgNM(n, 0))
			if err != nil {
				return "", err
			}
			// Performance of (N+0) relative to (16+0): the (16+0) limit
			// is 1.0 and narrower configurations fall below it.
			v := float64(limit.Cycles) / float64(res.Cycles)
			perN[i] = append(perN[i], v)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	row := []any{"geomean"}
	for i := range perN {
		row = append(row, stats.GeoMean(perN[i]))
	}
	t.AddRow(row...)
	return t.Render(), nil
}

func runFig6(r *Runner) (string, error) {
	sizes := []int{512, 1024, 2048, 4096}
	t := stats.NewTable("LVC miss rate % by size, direct-mapped (paper Figure 6)",
		"program", "0.5KB", "1KB", "2KB", "4KB")
	for _, w := range workload.All() {
		row := []any{w.Name}
		for _, size := range sizes {
			res, err := profile.SimulateLVC(r.program(w), size, 32, 1, 0)
			if err != nil {
				return "", err
			}
			row = append(row, fmt.Sprintf("%.3f", 100*res.Stats.MissRate()))
		}
		t.AddRow(row...)
	}
	return t.Render(), nil
}

// nmTable renders the Fig 7/9 style table: relative performance over
// (2+0) for N in {2,3,4} x M in {0,1,2,3,16}.
func nmTable(r *Runner, title string, decorate func(config.Config) config.Config) (string, error) {
	ms := []int{0, 1, 2, 3, 16}
	var cfgs []config.Config
	for n := 2; n <= 4; n++ {
		for _, m := range ms {
			cfgs = append(cfgs, decorate(cfgNM(n, m)))
		}
	}
	base := cfgNM(2, 0)
	cfgs = append(cfgs, base)
	if err := prefetchAll(r, workload.All(), cfgs); err != nil {
		return "", err
	}
	var b strings.Builder
	for n := 2; n <= 4; n++ {
		t := stats.NewTable(fmt.Sprintf("%s — N=%d (relative to (2+0))", title, n),
			"program", fmt.Sprintf("(%d+0)", n), fmt.Sprintf("(%d+1)", n),
			fmt.Sprintf("(%d+2)", n), fmt.Sprintf("(%d+3)", n), fmt.Sprintf("(%d+16)", n))
		perM := make([][]float64, len(ms))
		for _, w := range workload.All() {
			baseRes, err := r.Result(w, base)
			if err != nil {
				return "", err
			}
			row := []any{w.Name}
			for i, m := range ms {
				res, err := r.Result(w, decorate(cfgNM(n, m)))
				if err != nil {
					return "", err
				}
				v := relPerf(baseRes.Cycles, res.Cycles)
				perM[i] = append(perM[i], v)
				row = append(row, v)
			}
			t.AddRow(row...)
		}
		row := []any{"geomean"}
		for i := range perM {
			row = append(row, stats.GeoMean(perM[i]))
		}
		t.AddRow(row...)
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func runFig7(r *Runner) (string, error) {
	return nmTable(r, "Figure 7: no optimizations", func(c config.Config) config.Config { return c })
}

func runFig9(r *Runner) (string, error) {
	return nmTable(r, "Figure 9: fast forwarding + 2-way combining",
		func(c config.Config) config.Config { return c.WithOptimizations(2) })
}

func runTable3(r *Runner) (string, error) {
	off := cfgNM(3, 2)
	on := off
	on.FastForward = true
	if err := prefetchAll(r, workload.All(), []config.Config{off, on}); err != nil {
		return "", err
	}
	t := stats.NewTable("Fast data forwarding speedup under (3+2) (paper Table 3)",
		"program", "speedup %", "fast fwds", "%LVAQ loads fwd")
	for _, w := range workload.All() {
		ro, err := r.Result(w, off)
		if err != nil {
			return "", err
		}
		rn, err := r.Result(w, on)
		if err != nil {
			return "", err
		}
		speedup := 100 * (float64(ro.Cycles)/float64(rn.Cycles) - 1)
		fwdShare := stats.Pct(rn.FastFwdLoads+rn.LVAQFwdLoads, rn.LVAQDispatched)
		t.AddRow(w.Name, fmt.Sprintf("%.2f", speedup), rn.FastFwdLoads,
			fmt.Sprintf("%.1f", fwdShare))
	}
	return t.Render(), nil
}

func runFig8(r *Runner) (string, error) {
	widths := []int{1, 2, 4}
	var b strings.Builder
	for _, n := range []struct{ n, m int }{{3, 1}, {3, 2}} {
		var cfgs []config.Config
		for _, wdt := range widths {
			c := cfgNM(n.n, n.m)
			c.CombineWidth = wdt
			cfgs = append(cfgs, c)
		}
		if err := prefetchAll(r, workload.All(), cfgs); err != nil {
			return "", err
		}
		t := stats.NewTable(
			fmt.Sprintf("Figure 8: combining speedup %% over no combining, (%d+%d)", n.n, n.m),
			"program", "2-way", "4-way", "combined accesses (2-way)")
		var two, four []float64
		for _, w := range workload.All() {
			res := make([]uint64, len(widths))
			var combined uint64
			for i := range widths {
				rr, err := r.Result(w, cfgs[i])
				if err != nil {
					return "", err
				}
				res[i] = rr.Cycles
				if widths[i] == 2 {
					combined = rr.CombinedAccesses
				}
			}
			s2 := 100 * (float64(res[0])/float64(res[1]) - 1)
			s4 := 100 * (float64(res[0])/float64(res[2]) - 1)
			two = append(two, 1+s2/100)
			four = append(four, 1+s4/100)
			t.AddRow(w.Name, fmt.Sprintf("%.2f", s2), fmt.Sprintf("%.2f", s4), combined)
		}
		t.AddRow("geomean", fmt.Sprintf("%.2f", 100*(stats.GeoMean(two)-1)),
			fmt.Sprintf("%.2f", 100*(stats.GeoMean(four)-1)), "")
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func runFig10(r *Runner) (string, error) {
	base := cfgNM(2, 0)
	slow40 := cfgNM(4, 0)
	slow40.L1.HitLatency = 3
	dec22 := cfgNM(2, 2).WithOptimizations(2)
	dec33 := cfgNM(3, 3).WithOptimizations(2)
	cfgs := []config.Config{base, cfgNM(3, 0), cfgNM(4, 0), slow40, dec22, dec33}
	names := []string{"(2+0)", "(3+0)", "(4+0)", "(4+0)3cy", "(2+2)opt", "(3+3)opt"}
	if err := prefetchAll(r, workload.All(), cfgs); err != nil {
		return "", err
	}
	t := stats.NewTable("Figure 10: cache latency sensitivity (relative to (2+0))",
		append([]string{"program"}, names[1:]...)...)
	per := make([][]float64, len(cfgs)-1)
	for _, w := range workload.All() {
		baseRes, err := r.Result(w, base)
		if err != nil {
			return "", err
		}
		row := []any{w.Name}
		for i, c := range cfgs[1:] {
			res, err := r.Result(w, c)
			if err != nil {
				return "", err
			}
			v := relPerf(baseRes.Cycles, res.Cycles)
			per[i] = append(per[i], v)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	row := []any{"geomean"}
	for i := range per {
		row = append(row, stats.GeoMean(per[i]))
	}
	t.AddRow(row...)
	return t.Render(), nil
}

func runFig11(r *Runner) (string, error) {
	programs := []string{"gcc", "li", "vortex", "swim"}
	base := cfgNM(2, 0)
	var b strings.Builder
	for _, name := range programs {
		w, err := workload.ByName(name)
		if err != nil {
			return "", err
		}
		baseRes, err := r.Result(w, base)
		if err != nil {
			return "", err
		}
		t := stats.NewTable(
			fmt.Sprintf("Figure 11: %s (%s), relative to (2+0), with optimizations", w.Name, w.PaperName),
			"N \\ M", "M=0", "M=1", "M=2", "M=3")
		for n := 2; n <= 4; n++ {
			row := []any{fmt.Sprintf("N=%d", n)}
			for m := 0; m <= 3; m++ {
				cfg := cfgNM(n, m)
				if m > 0 {
					cfg = cfg.WithOptimizations(2)
				}
				res, err := r.Result(w, cfg)
				if err != nil {
					return "", err
				}
				row = append(row, relPerf(baseRes.Cycles, res.Cycles))
			}
			t.AddRow(row...)
		}
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func runL2Traffic(r *Runner) (string, error) {
	base := cfgNM(2, 0)
	dec := cfgNM(2, 2).WithOptimizations(2)
	if err := prefetchAll(r, workload.All(), []config.Config{base, dec}); err != nil {
		return "", err
	}
	t := stats.NewTable("L2 accesses: (2+2) vs (2+0) (paper §4.2.1)",
		"program", "L2 acc (2+0)", "L2 acc (2+2)", "change %")
	for _, w := range workload.All() {
		b, err := r.Result(w, base)
		if err != nil {
			return "", err
		}
		d, err := r.Result(w, dec)
		if err != nil {
			return "", err
		}
		change := 100 * (float64(d.L2.Accesses())/float64(b.L2.Accesses()) - 1)
		t.AddRow(w.Name, b.L2.Accesses(), d.L2.Accesses(), fmt.Sprintf("%+.1f", change))
	}
	return t.Render(), nil
}

func runAblationSteering(r *Runner) (string, error) {
	policies := []config.SteeringPolicy{config.SteerHint, config.SteerSP, config.SteerOracle, config.SteerDual, config.SteerStatic}
	t := stats.NewTable("Steering policy ablation under (2+2) with optimizations",
		"program", "policy", "cycles", "misroutes", "squashed", "LVAQ refs")
	for _, name := range []string{"li", "vortex", "gcc", "perl"} {
		w, err := workload.ByName(name)
		if err != nil {
			return "", err
		}
		for _, pol := range policies {
			cfg := cfgNM(2, 2).WithOptimizations(2)
			cfg.Steering = pol
			res, err := r.Result(w, cfg)
			if err != nil {
				return "", err
			}
			t.AddRow(w.Name, pol.String(), res.Cycles, res.Misroutes, res.Squashed, res.LVAQDispatched)
		}
	}
	return t.Render(), nil
}

func runAblationLVAQ(r *Runner) (string, error) {
	sizes := []int{8, 16, 32, 64}
	t := stats.NewTable("LVAQ size ablation under (3+2) with optimizations",
		"program", "LVAQ=8", "LVAQ=16", "LVAQ=32", "LVAQ=64")
	for _, name := range []string{"li", "vortex", "ijpeg"} {
		w, err := workload.ByName(name)
		if err != nil {
			return "", err
		}
		var c64 uint64
		row := []any{w.Name}
		var vals []float64
		for _, size := range sizes {
			cfg := cfgNM(3, 2).WithOptimizations(2)
			cfg.LVAQSize = size
			res, err := r.Result(w, cfg)
			if err != nil {
				return "", err
			}
			vals = append(vals, float64(res.Cycles))
			if size == 64 {
				c64 = res.Cycles
			}
		}
		for _, v := range vals {
			row = append(row, float64(c64)/v)
		}
		t.AddRow(row...)
	}
	return t.Render() + "\n(values are performance relative to the 64-entry LVAQ)\n", nil
}

func runAblationLVCAssoc(r *Runner) (string, error) {
	t := stats.NewTable("LVC associativity ablation under (3+2)",
		"program", "assoc", "cycles", "LVC miss %")
	for _, name := range []string{"gcc", "li", "vortex"} {
		w, err := workload.ByName(name)
		if err != nil {
			return "", err
		}
		for _, assoc := range []int{1, 2, 4} {
			cfg := cfgNM(3, 2).WithOptimizations(2)
			cfg.LVC.Assoc = assoc
			res, err := r.Result(w, cfg)
			if err != nil {
				return "", err
			}
			t.AddRow(w.Name, assoc, res.Cycles, fmt.Sprintf("%.3f", 100*res.LVC.MissRate()))
		}
	}
	return t.Render(), nil
}

func runAblationStaticOpt(r *Runner) (string, error) {
	t := stats.NewTable("Static vs dynamic LVAQ optimizations under (3+2), 4-way combining",
		"program", "mode", "cycles", "fast fwds", "combined")
	for _, name := range []string{"li", "vortex", "gcc", "ijpeg"} {
		w, err := workload.ByName(name)
		if err != nil {
			return "", err
		}
		modes := []struct {
			name string
			cfg  config.Config
		}{
			{"off", cfgNM(3, 2)},
			{"dynamic", cfgNM(3, 2).WithOptimizations(4)},
			{"static", cfgNM(3, 2).WithStaticOptimizations(4)},
		}
		for _, m := range modes {
			res, err := r.Result(w, m.cfg)
			if err != nil {
				return "", err
			}
			t.AddRow(w.Name, m.name, res.Cycles, res.FastFwdLoads, res.CombinedAccesses)
		}
	}
	return t.Render(), nil
}

func runInputSensitivity(r *Runner) (string, error) {
	seeds := []uint64{1, 7, 23}
	t := stats.NewTable("2KB LVC miss % across input data (paper §4.2.1)",
		"program", "input A", "input B", "input C", "max spread (pp)")
	for _, w := range workload.All() {
		row := []any{w.Name}
		lo, hi := 100.0, 0.0
		for _, seed := range seeds {
			prog := w.ProgramSeeded(r.Scale, seed)
			res, err := profile.SimulateLVC(prog, 2048, 32, 1, 0)
			if err != nil {
				return "", err
			}
			mr := 100 * res.Stats.MissRate()
			if mr < lo {
				lo = mr
			}
			if mr > hi {
				hi = mr
			}
			row = append(row, fmt.Sprintf("%.3f", mr))
		}
		row = append(row, fmt.Sprintf("%.3f", hi-lo))
		t.AddRow(row...)
	}
	return t.Render(), nil
}

func runAblationTLB(r *Runner) (string, error) {
	base := cfgNM(2, 2).WithOptimizations(2)
	t := stats.NewTable("Annotation-TLB verification cost under (2+2) with optimizations",
		"program", "free verify", "64-entry TLB", "16-entry TLB", "TLB hit % (64)")
	for _, w := range workload.All() {
		free, err := r.Result(w, base)
		if err != nil {
			return "", err
		}
		big := base
		big.TLBEntries, big.TLBMissLatency = 64, 30
		rb, err := r.Result(w, big)
		if err != nil {
			return "", err
		}
		small := base
		small.TLBEntries, small.TLBMissLatency = 16, 30
		rs, err := r.Result(w, small)
		if err != nil {
			return "", err
		}
		hitPct := 100 * float64(rb.TLBHits) / float64(rb.TLBHits+rb.TLBMisses)
		t.AddRow(w.Name, 1.0,
			relPerf(free.Cycles, rb.Cycles), relPerf(free.Cycles, rs.Cycles),
			fmt.Sprintf("%.3f", hitPct))
	}
	return t.Render(), nil
}

func runAltPortModel(r *Runner) (string, error) {
	base := cfgNM(2, 0)
	banked2 := base
	banked2.DCachePortModel = config.PortsBanked
	repl2 := base
	repl2.DCachePortModel = config.PortsReplicated
	banked4 := cfgNM(4, 0)
	banked4.DCachePortModel = config.PortsBanked
	dec := cfgNM(2, 2).WithOptimizations(2)
	cfgs := []config.Config{base, banked2, repl2, cfgNM(4, 0), banked4, dec}
	names := []string{"(2+0)banked", "(2+0)repl", "(4+0)ideal", "(4+0)banked", "(2+2)opt"}
	if err := prefetchAll(r, workload.All(), cfgs); err != nil {
		return "", err
	}
	t := stats.NewTable("Multi-porting alternatives (relative to ideal (2+0))",
		append([]string{"program"}, names...)...)
	per := make([][]float64, len(cfgs)-1)
	for _, w := range workload.All() {
		b, err := r.Result(w, base)
		if err != nil {
			return "", err
		}
		row := []any{w.Name}
		for i, c := range cfgs[1:] {
			res, err := r.Result(w, c)
			if err != nil {
				return "", err
			}
			v := relPerf(b.Cycles, res.Cycles)
			per[i] = append(per[i], v)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	row := []any{"geomean"}
	for i := range per {
		row = append(row, stats.GeoMean(per[i]))
	}
	t.AddRow(row...)
	return t.Render(), nil
}

func runAltSmallL1(r *Runner) (string, error) {
	base := cfgNM(2, 0)
	tiny := cfgNM(2, 0)
	tiny.L1 = config.CacheParams{SizeBytes: 2 * 1024, LineBytes: 32, Assoc: 1, HitLatency: 1}
	tinyFastL2 := tiny
	tinyFastL2.L2.HitLatency = 3
	dec := cfgNM(2, 2).WithOptimizations(2)
	cfgs := []config.Config{base, tiny, tinyFastL2, dec}
	if err := prefetchAll(r, workload.All(), cfgs); err != nil {
		return "", err
	}
	t := stats.NewTable("Small fast L1 vs decoupling (paper §4.4, relative to (2+0))",
		"program", "2KB L1 @1cy", "2KB L1 @1cy, L2@3", "(2+2)opt", "2KB-L1 miss %")
	per := make([][]float64, 3)
	for _, w := range workload.All() {
		b, err := r.Result(w, base)
		if err != nil {
			return "", err
		}
		row := []any{w.Name}
		for i, c := range cfgs[1:] {
			res, err := r.Result(w, c)
			if err != nil {
				return "", err
			}
			v := relPerf(b.Cycles, res.Cycles)
			per[i] = append(per[i], v)
			row = append(row, v)
		}
		tinyRes, err := r.Result(w, tiny)
		if err != nil {
			return "", err
		}
		row = append(row, fmt.Sprintf("%.2f", 100*tinyRes.L1.MissRate()))
		t.AddRow(row...)
	}
	row := []any{"geomean"}
	for i := range per {
		row = append(row, stats.GeoMean(per[i]))
	}
	row = append(row, "")
	t.AddRow(row...)
	return t.Render(), nil
}

func runAblationCombine(r *Runner) (string, error) {
	widths := []int{1, 2, 4, 8}
	t := stats.NewTable("Combining width ablation under (3+1)",
		"program", "w=1", "w=2", "w=4", "w=8")
	for _, name := range []string{"vortex", "li", "ijpeg"} {
		w, err := workload.ByName(name)
		if err != nil {
			return "", err
		}
		var base uint64
		row := []any{w.Name}
		for _, wdt := range widths {
			cfg := cfgNM(3, 1)
			cfg.FastForward = true
			cfg.CombineWidth = wdt
			res, err := r.Result(w, cfg)
			if err != nil {
				return "", err
			}
			if wdt == 1 {
				base = res.Cycles
			}
			row = append(row, float64(base)/float64(res.Cycles))
		}
		t.AddRow(row...)
	}
	return t.Render() + "\n(values are performance relative to no combining)\n", nil
}
