// Simulator-performance benchmark: how fast the simulator itself runs,
// per workload, in a stable machine-readable schema. `ddbench -json`
// emits it; the committed BENCH_<n>.json snapshots give the ROADMAP's
// perf-regression tracking its baselines.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

// BenchSchema is the wire-format version tag of the -json benchmark
// report. Bump only on deliberate, documented schema changes.
const BenchSchema = "ddbench/v1"

// BenchEntry is one workload's measurement.
type BenchEntry struct {
	Workload  string  `json:"workload"`
	Cycles    uint64  `json:"cycles"`    // simulated cycles (deterministic)
	Committed uint64  `json:"committed"` // committed instructions (deterministic)
	IPC       float64 `json:"ipc"`
	// Host-dependent throughput: simulated Minst per wall-clock second
	// and heap allocations per committed instruction.
	WallSeconds float64 `json:"wall_seconds"`
	MinstPerSec float64 `json:"minst_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// BenchReport is the full -json benchmark artifact.
type BenchReport struct {
	Schema     string       `json:"schema"`
	Scale      float64      `json:"scale"`
	Config     string       `json:"config"`
	GoVersion  string       `json:"go_version"`
	GOARCH     string       `json:"goarch"`
	Workloads  []BenchEntry `json:"workloads"`
	TotalMinst float64      `json:"total_minst"`
	TotalSecs  float64      `json:"total_seconds"`
}

// Bench simulates every workload once under the paper's (3+2)×4-way
// optimized configuration and measures simulator throughput. The
// simulated counters (cycles, committed) are deterministic; the
// throughput numbers are host-dependent.
func Bench(scale float64) (*BenchReport, error) {
	cfg := config.Default().WithPorts(3, 2).WithOptimizations(2)
	rep := &BenchReport{
		Schema:    BenchSchema,
		Scale:     scale,
		Config:    cfg.Name(),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Workloads: []BenchEntry{},
	}
	var ms0, ms1 runtime.MemStats
	for _, w := range workload.All() {
		prog := w.Program(scale)
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		c, err := core.New(prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", w.Name, err)
		}
		res, err := c.Run()
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", w.Name, err)
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		allocs := float64(ms1.Mallocs - ms0.Mallocs)
		e := BenchEntry{
			Workload:    w.Name,
			Cycles:      res.Cycles,
			Committed:   res.Committed,
			IPC:         res.IPC(),
			WallSeconds: wall,
		}
		if wall > 0 {
			e.MinstPerSec = float64(res.Committed) / 1e6 / wall
		}
		if res.Committed > 0 {
			e.AllocsPerOp = allocs / float64(res.Committed)
		}
		rep.Workloads = append(rep.Workloads, e)
		rep.TotalMinst += float64(res.Committed) / 1e6
		rep.TotalSecs += wall
	}
	return rep, nil
}

// EncodeJSON writes the report in its stable wire form.
func (r *BenchReport) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
