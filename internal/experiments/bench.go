// Simulator-performance benchmark: how fast the simulator itself runs,
// per workload, in a stable machine-readable schema. `ddbench -json`
// emits it; the committed BENCH_<n>.json snapshots give the ROADMAP's
// perf-regression tracking its baselines.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

// BenchSchema is the wire-format version tag of the -json benchmark
// report. Bump only on deliberate, documented schema changes.
const BenchSchema = "ddbench/v1"

// BenchEntry is one workload's measurement.
type BenchEntry struct {
	Workload  string  `json:"workload"`
	Cycles    uint64  `json:"cycles"`    // simulated cycles (deterministic)
	Committed uint64  `json:"committed"` // committed instructions (deterministic)
	IPC       float64 `json:"ipc"`
	// Host-dependent throughput: simulated Minst per wall-clock second
	// and heap allocations per committed instruction.
	WallSeconds float64 `json:"wall_seconds"`
	MinstPerSec float64 `json:"minst_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// BenchReport is the full -json benchmark artifact.
type BenchReport struct {
	Schema    string  `json:"schema"`
	Scale     float64 `json:"scale"`
	Config    string  `json:"config"`
	GoVersion string  `json:"go_version"`
	GOARCH    string  `json:"goarch"`
	// Engine names the run loop the measurement used ("event" or "tick");
	// empty in pre-engine reports, which ran the tick loop.
	Engine string `json:"engine,omitempty"`
	// Reps is the repetitions per workload (fastest kept); 0/absent in
	// older reports means one.
	Reps       int          `json:"reps,omitempty"`
	Workloads  []BenchEntry `json:"workloads"`
	TotalMinst float64      `json:"total_minst"`
	TotalSecs  float64      `json:"total_seconds"`
}

// Bench simulates every workload once under the paper's (3+2)×4-way
// optimized configuration on the default (event) engine and measures
// simulator throughput. The simulated counters (cycles, committed) are
// deterministic and engine-independent; the throughput numbers are
// host-dependent.
func Bench(scale float64) (*BenchReport, error) {
	return BenchEngine(scale, core.EngineEvent)
}

// BenchEngine is Bench on an explicit run-loop engine.
func BenchEngine(scale float64, engine core.Engine) (*BenchReport, error) {
	return BenchEngineReps(scale, engine, 1)
}

// BenchEngineReps measures each workload reps times and keeps the
// fastest repetition — standard practice for wall-clock benchmarks,
// since scheduler noise only ever slows a run down. The simulated
// counters are deterministic across repetitions; only the throughput
// numbers differ.
func BenchEngineReps(scale float64, engine core.Engine, reps int) (*BenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	cfg := config.Default().WithPorts(3, 2).WithOptimizations(2)
	rep := &BenchReport{
		Schema:    BenchSchema,
		Scale:     scale,
		Config:    cfg.Name(),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Engine:    engine.String(),
		Reps:      reps,
		Workloads: []BenchEntry{},
	}
	var ms0, ms1 runtime.MemStats
	for _, w := range workload.All() {
		prog := w.Program(scale)
		var best BenchEntry
		for r := 0; r < reps; r++ {
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			//ddvet:allow det-time-now -- wall-clock here measures host throughput (Minst/s), never simulation state; cycle counts stay deterministic
			start := time.Now()
			c, err := core.New(prog, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench %s: %w", w.Name, err)
			}
			res, err := c.RunWith(context.Background(), core.RunOptions{Engine: engine})
			if err != nil {
				return nil, fmt.Errorf("bench %s: %w", w.Name, err)
			}
			//ddvet:allow det-time-now -- wall-clock here measures host throughput (Minst/s), never simulation state; cycle counts stay deterministic
			wall := time.Since(start).Seconds()
			runtime.ReadMemStats(&ms1)
			allocs := float64(ms1.Mallocs - ms0.Mallocs)
			e := BenchEntry{
				Workload:    w.Name,
				Cycles:      res.Cycles,
				Committed:   res.Committed,
				IPC:         res.IPC(),
				WallSeconds: wall,
			}
			if wall > 0 {
				e.MinstPerSec = float64(res.Committed) / 1e6 / wall
			}
			if res.Committed > 0 {
				e.AllocsPerOp = allocs / float64(res.Committed)
			}
			if r == 0 || e.WallSeconds < best.WallSeconds {
				best = e
			}
		}
		rep.Workloads = append(rep.Workloads, best)
		rep.TotalMinst += float64(best.Committed) / 1e6
		rep.TotalSecs += best.WallSeconds
	}
	return rep, nil
}

// EncodeJSON writes the report in its stable wire form.
func (r *BenchReport) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
