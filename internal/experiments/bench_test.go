package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/workload"
)

// TestBenchSchema runs the benchmark at a tiny scale and pins the stable
// parts of the ddbench/v1 schema: the version tag, one entry per
// workload, and deterministic simulated counters (cycles/committed must
// be reproducible run to run; throughput fields are host-dependent and
// only checked for sanity).
func TestBenchSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks all workloads")
	}
	rep, err := Bench(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Errorf("schema %q, want %q", rep.Schema, BenchSchema)
	}
	if got, want := len(rep.Workloads), len(workload.All()); got != want {
		t.Fatalf("%d entries, want %d", got, want)
	}
	seen := map[string]BenchEntry{}
	for _, e := range rep.Workloads {
		if e.Workload == "" || e.Cycles == 0 || e.Committed == 0 || e.IPC <= 0 {
			t.Errorf("degenerate entry: %+v", e)
		}
		if e.WallSeconds < 0 || e.MinstPerSec < 0 || e.AllocsPerOp < 0 {
			t.Errorf("negative throughput fields: %+v", e)
		}
		seen[e.Workload] = e
	}

	// The wire form must round-trip with the same field names.
	var buf bytes.Buffer
	if err := rep.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != rep.Schema || len(back.Workloads) != len(rep.Workloads) {
		t.Errorf("round trip changed the report")
	}

	// Simulated counters are deterministic across runs.
	rep2, err := Bench(0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, e2 := range rep2.Workloads {
		e1 := seen[e2.Workload]
		if e1.Cycles != e2.Cycles || e1.Committed != e2.Committed {
			t.Errorf("%s: non-deterministic counters: (%d, %d) vs (%d, %d)",
				e2.Workload, e1.Cycles, e1.Committed, e2.Cycles, e2.Committed)
		}
	}
}
