// Benchmark-snapshot comparison: the perf-regression gate over committed
// BENCH_<n>.json files. `ddbench -compare` reads two ddbench/v1 reports
// (or one report and a fresh run) and fails when aggregate simulator
// throughput dropped past the tolerance.
package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Comparison failures callers can classify with errors.Is.
var (
	// ErrBadReport: the file is not a ddbench/v1 report.
	ErrBadReport = errors.New("experiments: not a ddbench/v1 report")
	// ErrScaleMismatch: the two reports ran at different workload scales,
	// so their throughputs are not comparable.
	ErrScaleMismatch = errors.New("experiments: benchmark scale mismatch")
)

// ReadBenchReport loads and schema-checks one ddbench/v1 report.
func ReadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", path, err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("%w: %s: schema %q, want %q", ErrBadReport, path, rep.Schema, BenchSchema)
	}
	return &rep, nil
}

// CompareRow is one workload's old-vs-new throughput.
type CompareRow struct {
	Workload string
	// OldMinst/NewMinst are Minst/s; zero on the side that lacks the
	// workload.
	OldMinst, NewMinst float64
	// Delta is the fractional throughput change (new/old - 1).
	Delta float64
	// CyclesChanged flags a difference in the deterministic simulated
	// cycle count — a timing-model change, not a host-speed effect.
	CyclesChanged bool
}

// BenchComparison is the verdict of comparing two benchmark reports.
type BenchComparison struct {
	Rows []CompareRow
	// OldTput/NewTput are the aggregate simulated-Minst-per-second of
	// each report (total committed work over total wall time).
	OldTput, NewTput float64
	// Delta is the fractional aggregate change (NewTput/OldTput - 1);
	// the regression gate triggers on Delta < -tolerance.
	Delta float64
}

// CompareBench compares a baseline report against a candidate. The scale
// must match: throughput at different workload sizes is not comparable.
func CompareBench(old, new *BenchReport) (*BenchComparison, error) {
	if old.Scale != new.Scale {
		return nil, fmt.Errorf("%w: baseline %g vs candidate %g", ErrScaleMismatch, old.Scale, new.Scale)
	}
	c := &BenchComparison{}
	if old.TotalSecs > 0 {
		c.OldTput = old.TotalMinst / old.TotalSecs
	}
	if new.TotalSecs > 0 {
		c.NewTput = new.TotalMinst / new.TotalSecs
	}
	if c.OldTput > 0 {
		c.Delta = c.NewTput/c.OldTput - 1
	}
	newByName := make(map[string]BenchEntry, len(new.Workloads))
	for _, e := range new.Workloads {
		newByName[e.Workload] = e
	}
	for _, oe := range old.Workloads {
		row := CompareRow{Workload: oe.Workload, OldMinst: oe.MinstPerSec}
		if ne, ok := newByName[oe.Workload]; ok {
			row.NewMinst = ne.MinstPerSec
			row.CyclesChanged = ne.Cycles != oe.Cycles
			if row.OldMinst > 0 {
				row.Delta = row.NewMinst/row.OldMinst - 1
			}
			delete(newByName, oe.Workload)
		}
		c.Rows = append(c.Rows, row)
	}
	// Workloads only the candidate has, in name order — the render is part
	// of the gate's serialized output and must be byte-stable across runs.
	leftover := make([]string, 0, len(newByName))
	for name := range newByName {
		leftover = append(leftover, name)
	}
	sort.Strings(leftover)
	for _, name := range leftover {
		c.Rows = append(c.Rows, CompareRow{Workload: name, NewMinst: newByName[name].MinstPerSec})
	}
	return c, nil
}

// Regressed reports whether aggregate throughput dropped by more than
// tolerance (a fraction, e.g. 0.05 for the 5% gate).
func (c *BenchComparison) Regressed(tolerance float64) bool {
	return c.Delta < -tolerance
}

// AnyCyclesChanged reports whether any workload's deterministic simulated
// cycle count differs between the two reports. CI uses it (via ddbench
// -cyclecheck) to assert that the tick and event engines simulate the
// identical machine: between two same-commit runs, any difference is an
// engine-equivalence break, not a host-speed effect.
func (c *BenchComparison) AnyCyclesChanged() bool {
	for _, row := range c.Rows {
		if row.CyclesChanged {
			return true
		}
	}
	return false
}

// Render formats the comparison as the human report the gate prints.
func (c *BenchComparison) Render(tolerance float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %8s\n", "workload", "old Minst/s", "new Minst/s", "delta")
	for _, row := range c.Rows {
		note := ""
		if row.CyclesChanged {
			note = "  [cycles changed]"
		}
		switch {
		case row.NewMinst == 0 && row.OldMinst > 0:
			fmt.Fprintf(&b, "%-12s %12.3f %12s %8s%s\n", row.Workload, row.OldMinst, "-", "gone", note)
		case row.OldMinst == 0:
			fmt.Fprintf(&b, "%-12s %12s %12.3f %8s%s\n", row.Workload, "-", row.NewMinst, "new", note)
		default:
			fmt.Fprintf(&b, "%-12s %12.3f %12.3f %+7.1f%%%s\n",
				row.Workload, row.OldMinst, row.NewMinst, row.Delta*100, note)
		}
	}
	fmt.Fprintf(&b, "%-12s %12.3f %12.3f %+7.1f%%  (gate: -%.0f%%)\n",
		"aggregate", c.OldTput, c.NewTput, c.Delta*100, tolerance*100)
	if c.Regressed(tolerance) {
		fmt.Fprintf(&b, "REGRESSION: aggregate throughput dropped %.1f%% (> %.0f%% tolerance)\n",
			-c.Delta*100, tolerance*100)
	}
	return b.String()
}
