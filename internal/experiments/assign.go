// The ablation-assign experiment: does the analysis-driven hint
// assignment close the compiler loop? Every workload is stripped of its
// generator hints and re-hinted by analysis.Assign, then compared under
// the (3+2)×4-way optimized machine against the unhinted hardware
// heuristic (SteerSP), the generator's own hints (SteerHint), and the
// oracle upper bound; the speculative SteerSpec policy is the same
// assignment plus speculate-local steering. The two checked-in ambiguous
// examples (spec1/spec2) isolate the shapes only speculation wins on.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	registerExperiment(Experiment{
		ID:    "ablation-assign",
		Title: "Ablation: analysis-assigned hints and speculative steering",
		Description: "All workloads with generator hints stripped, " +
			"re-hinted by the analysis.Assign pass: unhinted ($sp " +
			"heuristic) vs generator hints vs assigned hints vs assigned+" +
			"speculative steering vs the oracle, plus the deliberately " +
			"ambiguous spec1/spec2 examples where only speculation wins.",
		Run: runAblationAssign,
	})
}

// assignAblationConfig is the machine every leg runs under.
func assignAblationConfig() config.Config {
	return cfgNM(3, 2).WithOptimizations(2)
}

// specExample1 and specExample2 are the canonical sources of
// examples/asm/spec{1,2}.s, inlined so the experiment does not depend on
// the repository layout at run time; TestSpecExamplesMatchCheckedIn pins
// them to the checked-in files.
const specExample1 = `# spec1 — path-dependent frame slots the dataflow cannot pin down.
#
# Each loop iteration picks one of two spill slots through a branch, so
# the slot pointer joins to a stack-derived value with a *path-dependent*
# offset: the analyzer can neither prove the access local (no exact
# offset) nor non-local (the base is still $sp-derived). ` + "`ddasm -assign`" + `
# classifies all four accesses speculate-local. Every execution stays
# inside the frame, so SteerSpec steers them to the local stream with
# zero misroutes, while hint-only steering must burn one misroute per PC
# teaching the region predictor. Used by the ablation-assign experiment.
	.text
	.global main
main:
	addi $sp, $sp, -32
	li   $s0, 0          # i
	li   $s1, 48         # iterations
	li   $v0, 0
loop:
	andi $t0, $s0, 1
	bnez $t0, odd1
	addi $t1, $sp, 0
	j    join1
odd1:
	addi $t1, $sp, 8
join1:
	sw   $s0, 0($t1)
	lw   $t2, 0($t1)
	add  $v0, $v0, $t2

	andi $t0, $s0, 2
	bnez $t0, odd2
	addi $t1, $sp, 16
	j    join2
odd2:
	addi $t1, $sp, 24
join2:
	sw   $v0, 0($t1)
	lw   $t3, 0($t1)
	add  $v0, $v0, $t3

	addi $s0, $s0, 1
	slt  $t0, $s0, $s1
	bnez $t0, loop
	addi $sp, $sp, 32
	out  $v0
	halt
`

const specExample2 = `# spec2 — a speculate-local assignment that is sometimes wrong.
#
# The slot pointer is again path-dependent (so the analyzer assigns
# speculate-local), but every eighth iteration it points *above* main's
# entry $sp — and main's entry $sp is the top of the stack region, so
# those accesses are dynamically non-local. Under SteerSpec the access
# is steered local on faith and the 1-in-8 misses pay the ordinary
# misroute squash-and-replay recovery (counted as SpecMisroutes); the
# architectural output never changes. The hint-only fallback predictor
# does worse: the local/non-local flip at each period boundary costs two
# misroutes per eight iterations. Used by the ablation-assign experiment
# and the speculation soak.
	.text
	.global main
main:
	li   $s0, 0          # i
	li   $s1, 64         # iterations
	li   $v0, 0
loop:
	andi $t0, $s0, 7
	bnez $t0, below
	addi $t1, $sp, 16    # i%8 == 0: above entry $sp -> outside the stack region
	j    join
below:
	addi $t1, $sp, -16   # otherwise: an ordinary (red-zone) frame slot
join:
	sw   $s0, 0($t1)
	lw   $t2, 0($t1)
	add  $v0, $v0, $t2

	addi $s0, $s0, 1
	slt  $t0, $s0, $s1
	bnez $t0, loop
	out  $v0
	halt
`

// specExamples assembles the two canonical ambiguous examples.
func specExamples() ([]*asm.Program, error) {
	var progs []*asm.Program
	for _, s := range []struct{ name, src string }{
		{"spec1.s", specExample1},
		{"spec2.s", specExample2},
	} {
		p, err := asm.Assemble(s.name, s.src)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		progs = append(progs, p)
	}
	return progs, nil
}

// assignLeg is one steering strategy of the ablation.
type assignLeg struct {
	name     string
	steering config.SteeringPolicy
	// rehint selects the program image: generator keeps the workload's
	// own hints, everything else runs the stripped image, and assigned
	// runs the stripped image re-hinted by analysis.Assign.
	rehint bool
	strip  bool
}

var assignLegs = []assignLeg{
	{name: "unhinted", steering: config.SteerSP, strip: true},
	{name: "generator", steering: config.SteerHint},
	{name: "assigned", steering: config.SteerHint, strip: true, rehint: true},
	{name: "spec", steering: config.SteerSpec, strip: true},
	{name: "oracle", steering: config.SteerOracle, strip: true},
}

// assignLegResult runs one workload leg through the runner's cache.
func assignLegResult(r *Runner, w workload.Workload, leg assignLeg) (*core.Result, error) {
	cfg := assignAblationConfig()
	cfg.Steering = leg.steering
	if !leg.strip {
		return r.Result(w, cfg)
	}
	prog := w.ProgramStripped(r.Scale)
	name := w.Name + "+stripped"
	if leg.rehint {
		prog = analysis.Assign(prog).Apply()
		name = w.Name + "+assigned"
	}
	return r.ResultProgram(name, prog, cfg)
}

// gapRecovered is the fraction of the unhinted→oracle IPC gap the
// assigned-hint run recovers; a closed (or inverted) gap counts as 1.
func gapRecovered(unhinted, assigned, oracle float64) float64 {
	gap := oracle - unhinted
	if gap <= 0 {
		return 1
	}
	rec := (assigned - unhinted) / gap
	if rec > 1 {
		return 1
	}
	return rec
}

func runAblationAssign(r *Runner) (string, error) {
	var b strings.Builder

	t := stats.NewTable("Hint assignment ablation under (3+2) with optimizations (cycles)",
		"program", "unhinted", "generator", "assigned", "spec", "oracle", "gap recovered")
	for _, w := range workload.All() {
		res := map[string]*core.Result{}
		for _, leg := range assignLegs {
			lr, err := assignLegResult(r, w, leg)
			if err != nil {
				return "", err
			}
			res[leg.name] = lr
		}
		rec := gapRecovered(res["unhinted"].IPC(), res["assigned"].IPC(), res["oracle"].IPC())
		t.AddRow(w.Name,
			res["unhinted"].Cycles, res["generator"].Cycles, res["assigned"].Cycles,
			res["spec"].Cycles, res["oracle"].Cycles,
			fmt.Sprintf("%.0f%%", 100*rec))
	}
	b.WriteString(t.Render())
	b.WriteString("(gap recovered: fraction of the unhinted→oracle IPC gap closed by assigned hints)\n\n")

	progs, err := specExamples()
	if err != nil {
		return "", err
	}
	t2 := stats.NewTable("Ambiguous examples: speculation vs hint fallback",
		"program", "policy", "cycles", "IPC", "misroutes", "spec misroutes")
	for _, prog := range progs {
		for _, leg := range []assignLeg{
			{name: "assigned", steering: config.SteerHint, rehint: true},
			{name: "spec", steering: config.SteerSpec},
			{name: "oracle", steering: config.SteerOracle},
		} {
			cfg := assignAblationConfig()
			cfg.Steering = leg.steering
			image, name := prog, prog.Name
			if leg.rehint {
				image = analysis.Assign(prog).Apply()
				name += "+assigned"
			}
			lr, err := r.ResultProgram(name, image, cfg)
			if err != nil {
				return "", err
			}
			t2.AddRow(prog.Name, leg.name, lr.Cycles,
				fmt.Sprintf("%.3f", lr.IPC()), lr.Misroutes, lr.SpecMisroutes)
		}
	}
	b.WriteString(t2.Render())
	b.WriteString("(spec1/spec2 carry no provable accesses: \"assigned\" degenerates to the\npredictor fallback, and only speculate-local steering closes on the oracle)\n")
	return b.String(), nil
}
