// Grid points: the canonical mapping from one declarative sweep
// coordinate (workload x port geometry x steering x engine x
// optimizations) to the machine configuration it simulates. The service
// layer (internal/serve) resolves submitted jobs through the same
// mapping the sweep coordinator (internal/sweep) expands its grid with,
// so a sweep point and the job it becomes can never drift apart.
package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
)

// GridPoint is one coordinate of a sweep grid: everything that selects a
// distinct simulation, in the vocabulary the CLIs and the service share
// (port strings like "3+2", steering policy names, engine names).
type GridPoint struct {
	// Workload names a built-in synthetic workload; empty for callers
	// that only need the configuration half of the mapping.
	Workload string
	// Ports is the paper's "(N+M)" port configuration ("" = "2+0").
	Ports string
	// Steering is the steering policy name ("" = hint).
	Steering string
	// Engine selects the run loop ("" = event).
	Engine string
	// Opt enables fast data forwarding and combining; Combine overrides
	// the combining width; StaticOpt restricts both to statically-proven
	// pairs/groups (implies Opt).
	Opt       bool
	Combine   int
	StaticOpt bool
	// MaxInsts bounds committed instructions (0 = run to halt).
	MaxInsts uint64
}

// Config maps the point to its validated machine configuration. The
// mapping is the single source of truth: serve.resolveSpec and the sweep
// expansion both call it.
func (p GridPoint) Config() (config.Config, error) {
	ports := p.Ports
	if ports == "" {
		ports = "2+0"
	}
	n, m, err := config.ParseNM(ports)
	if err != nil {
		return config.Config{}, fmt.Errorf("bad ports: %w", err)
	}
	cfg := config.Default().WithPorts(n, m)
	if p.Opt || p.StaticOpt {
		cfg = cfg.WithOptimizations(2)
	}
	if p.Combine > 0 {
		cfg.CombineWidth = p.Combine
	}
	if p.StaticOpt {
		cfg.ForwardStatic = true
		cfg.CombineStatic = cfg.CombineWidth > 1
	}
	steer, err := config.ParseSteering(p.Steering)
	if err != nil {
		return config.Config{}, fmt.Errorf("bad steer: %w", err)
	}
	cfg.Steering = steer
	cfg.MaxInsts = p.MaxInsts
	if err := cfg.Validate(); err != nil {
		return config.Config{}, fmt.Errorf("bad config: %w", err)
	}
	return cfg, nil
}

// RunEngine parses the point's engine selection.
func (p GridPoint) RunEngine() (core.Engine, error) {
	if p.Engine == "" {
		return core.EngineEvent, nil
	}
	return core.ParseEngine(p.Engine)
}

// Key is the point's stable identity within a sweep: every dimension in
// canonical form, "/"-joined. Points sort deterministically by it, and
// the sweep checkpoint and figure JSON are keyed on it.
func (p GridPoint) Key() string {
	ports := p.Ports
	if ports == "" {
		ports = "2+0"
	}
	steer := p.Steering
	if steer == "" {
		steer = "hint"
	}
	engine := p.Engine
	if engine == "" {
		engine = "event"
	}
	mode := "base"
	switch {
	case p.StaticOpt:
		mode = "static"
	case p.Opt:
		mode = "opt"
	}
	k := fmt.Sprintf("%s/%s/%s/%s/%s", p.Workload, ports, steer, engine, mode)
	if p.Combine > 0 {
		k += fmt.Sprintf("/c%d", p.Combine)
	}
	if p.MaxInsts > 0 {
		k += fmt.Sprintf("/i%d", p.MaxInsts)
	}
	return k
}
