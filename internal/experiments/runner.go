// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the synthetic workload suite: program bandwidth
// requirements (Fig 5), LVC size and port sensitivity (Figs 6, 7), the
// LVAQ optimizations (Table 3, Figs 8, 9), cache-latency sensitivity
// (Fig 10), per-program port surfaces (Fig 11), workload characterization
// (Figs 2, 3; Tables 1, 2), the §4.2.1 L2-traffic observation, and a set
// of ablations beyond the paper.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/simerr"
	"repro/internal/workload"
)

// Runner executes simulations for the experiment drivers, caching results
// so overlapping experiments (e.g. Fig 7 and Fig 11) share runs. It is
// safe for concurrent use and runs independent simulations in parallel.
// A simulation that panics or fails is contained: the error (a typed
// *simerr.SimError for panics) is returned to every waiter and the
// in-flight bookkeeping is always released, so concurrent callers of the
// same key can never deadlock on a crashed run.
type Runner struct {
	// Scale is the workload scale factor (1.0 = full experiment size).
	Scale float64
	// Progress, when non-nil, receives one line per finished simulation.
	Progress io.Writer
	// RunOpts bounds every simulation this runner starts (cycle caps,
	// deadline, watchdog, fault injection). The zero value reproduces
	// unbounded historical behaviour.
	RunOpts core.RunOptions

	mu       sync.Mutex
	programs map[string]*asm.Program
	results  map[string]*core.Result
	profiles map[string]*profile.Profile
	inflight map[string]*sync.WaitGroup

	// testRun, when non-nil, replaces the core simulation call; tests use
	// it to inject panics, failures and slow runs.
	testRun func(w workload.Workload, cfg config.Config) (*core.Result, error)
}

// NewRunner returns a Runner at the given workload scale.
func NewRunner(scale float64) *Runner {
	if scale <= 0 {
		scale = 1
	}
	return &Runner{
		Scale:    scale,
		programs: make(map[string]*asm.Program),
		results:  make(map[string]*core.Result),
		profiles: make(map[string]*profile.Profile),
		inflight: make(map[string]*sync.WaitGroup),
	}
}

func (r *Runner) program(w workload.Workload) *asm.Program {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.programs[w.Name]
	if !ok {
		p = w.Program(r.Scale)
		r.programs[w.Name] = p
	}
	return p
}

func cfgKey(name string, cfg config.Config) string {
	return name + "|" + cfg.Key()
}

// Result simulates workload w under cfg (cached), unbounded except by the
// runner's RunOpts.
func (r *Runner) Result(w workload.Workload, cfg config.Config) (*core.Result, error) {
	return r.ResultCtx(context.Background(), w, cfg)
}

// ResultCtx simulates workload w under cfg (cached), additionally bounded
// by ctx: cancellation ends the simulation with a typed *simerr.SimError.
func (r *Runner) ResultCtx(ctx context.Context, w workload.Workload, cfg config.Config) (*core.Result, error) {
	res, err := r.cachedRun(cfgKey(w.Name, cfg), w.Name, cfg, func() (*core.Result, error) {
		if r.testRun != nil {
			return r.testRun(w, cfg)
		}
		return r.runProgram(ctx, r.program(w), cfg)
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s under %s: %w", w.Name, cfg.Name(), err)
	}
	return res, nil
}

// ResultOptsCtx is ResultCtx with per-run RunOptions replacing the
// runner's RunOpts for this run only. The result cache is shared with the
// other Result variants: a completed run is deterministic regardless of
// its budget, so budget-only option differences cannot poison the cache.
// A run whose options carry a fault injector is the exception — injected
// faults perturb timing on purpose — so injector-armed runs bypass the
// cache entirely (neither hitting nor filling it) while keeping the same
// panic containment.
func (r *Runner) ResultOptsCtx(ctx context.Context, w workload.Workload, cfg config.Config, opts core.RunOptions) (*core.Result, error) {
	run := func() (*core.Result, error) {
		if r.testRun != nil {
			return r.testRun(w, cfg)
		}
		return r.runProgramOpts(ctx, r.program(w), cfg, opts)
	}
	var res *core.Result
	var err error
	if opts.Injector != nil {
		res, err = r.containedRun(run)
	} else {
		res, err = r.cachedRun(cfgKey(w.Name, cfg), w.Name, cfg, run)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %s under %s: %w", w.Name, cfg.Name(), err)
	}
	return res, nil
}

// ResultProgramOptsCtx is ResultProgramCtx with per-run RunOptions, under
// the same cache rules as ResultOptsCtx (injector-armed runs are never
// cached).
func (r *Runner) ResultProgramOptsCtx(ctx context.Context, name string, prog *asm.Program, cfg config.Config, opts core.RunOptions) (*core.Result, error) {
	run := func() (*core.Result, error) {
		return r.runProgramOpts(ctx, prog, cfg, opts)
	}
	var res *core.Result
	var err error
	if opts.Injector != nil {
		res, err = r.containedRun(run)
	} else {
		res, err = r.cachedRun(cfgKey("prog:"+name, cfg), name, cfg, run)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: program %s under %s: %w", name, cfg.Name(), err)
	}
	return res, nil
}

// CachedResults returns how many distinct simulation results the runner
// holds in memory. Long-running hosts (the ddserve service) use it to
// bound the in-memory cache by rotating to a fresh runner.
func (r *Runner) CachedResults() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.results)
}

// ResultProgram simulates an arbitrary named program under cfg, with the
// same caching, containment and progress reporting as workload runs. The
// name spans its own key space ("prog:<name>"), so derived program
// variants (hint-stripped, re-hinted) never alias the generator-hinted
// workload results. The caller must use distinct names for distinct
// program images.
func (r *Runner) ResultProgram(name string, prog *asm.Program, cfg config.Config) (*core.Result, error) {
	return r.ResultProgramCtx(context.Background(), name, prog, cfg)
}

// ResultProgramCtx is ResultProgram additionally bounded by ctx.
func (r *Runner) ResultProgramCtx(ctx context.Context, name string, prog *asm.Program, cfg config.Config) (*core.Result, error) {
	res, err := r.cachedRun(cfgKey("prog:"+name, cfg), name, cfg, func() (*core.Result, error) {
		return r.runProgram(ctx, prog, cfg)
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: program %s under %s: %w", name, cfg.Name(), err)
	}
	return res, nil
}

// cachedRun resolves key through the result cache, claiming the key (or
// waiting for the in-flight owner) and then executing run exactly once.
func (r *Runner) cachedRun(key, label string, cfg config.Config, run func() (*core.Result, error)) (*core.Result, error) {
	for {
		r.mu.Lock()
		if res, ok := r.results[key]; ok {
			r.mu.Unlock()
			return res, nil
		}
		if wg, busy := r.inflight[key]; busy {
			r.mu.Unlock()
			wg.Wait()
			continue
		}
		wg := &sync.WaitGroup{}
		wg.Add(1)
		r.inflight[key] = wg
		r.mu.Unlock()
		break
	}

	res, err := r.simulate(key, run)
	if err != nil {
		return nil, err
	}
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "  ran %-10s %-8s ipc=%.3f cycles=%d\n",
			label, cfg.Name(), res.IPC(), res.Cycles)
	}
	return res, nil
}

// simulate runs one uncached simulation for key. The deferred block is the
// in-flight release point: it runs on success, on error AND on panic
// (containedRun has already converted the panic to an error by the time it
// fires), so a crashing run can never strand concurrent waiters on the key.
func (r *Runner) simulate(key string, run func() (*core.Result, error)) (res *core.Result, err error) {
	defer func() {
		r.mu.Lock()
		if err == nil {
			r.results[key] = res
		}
		r.inflight[key].Done()
		delete(r.inflight, key)
		r.mu.Unlock()
	}()

	return r.containedRun(run)
}

// containedRun executes one simulation with the runner's panic containment
// but without touching the cache or in-flight bookkeeping: a panic anywhere
// on the path (program generation, core construction — the cycle loop
// itself is already contained by core.RunWith) is converted into the same
// typed error the core produces.
func (r *Runner) containedRun(run func() (*core.Result, error)) (res *core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &simerr.SimError{
				Kind:       simerr.KindPanic,
				Reason:     fmt.Sprint(p),
				PanicValue: p,
				Stack:      string(debug.Stack()),
			}
		}
	}()
	return run()
}

// runProgram constructs and runs one core simulation under the runner-wide
// options.
func (r *Runner) runProgram(ctx context.Context, prog *asm.Program, cfg config.Config) (*core.Result, error) {
	return r.runProgramOpts(ctx, prog, cfg, r.RunOpts)
}

// runProgramOpts constructs and runs one core simulation under opts.
func (r *Runner) runProgramOpts(ctx context.Context, prog *asm.Program, cfg config.Config, opts core.RunOptions) (*core.Result, error) {
	c, err := core.New(prog, cfg)
	if err != nil {
		return nil, err
	}
	return c.RunWith(ctx, opts)
}

// Profile returns the functional profile of workload w (cached).
func (r *Runner) Profile(w workload.Workload) (*profile.Profile, error) {
	r.mu.Lock()
	if p, ok := r.profiles[w.Name]; ok {
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()

	p, err := profile.Run(r.program(w), 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: profiling %s: %w", w.Name, err)
	}
	r.mu.Lock()
	r.profiles[w.Name] = p
	r.mu.Unlock()
	return p, nil
}

// Prefetch runs the given (workload, config) pairs concurrently to warm
// the cache, bounded by par simultaneous simulations. Every failure is
// reported: the returned error joins the errors of all failed runs.
func (r *Runner) Prefetch(pairs []Pair, par int) error {
	return r.PrefetchCtx(context.Background(), pairs, par)
}

// PrefetchCtx is Prefetch bounded by ctx: once the context is cancelled no
// further simulations start, and the context error joins the result. The
// semaphore is acquired before each worker goroutine is spawned, so at most
// par goroutines (not one per pair) ever exist at once.
func (r *Runner) PrefetchCtx(ctx context.Context, pairs []Pair, par int) error {
	if par < 1 {
		par = 1
	}
	sem := make(chan struct{}, par)
	errCh := make(chan error, len(pairs))
	var wg sync.WaitGroup
	for _, p := range pairs {
		if err := ctx.Err(); err != nil {
			errCh <- err
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(p Pair) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := r.ResultCtx(ctx, p.W, p.Cfg); err != nil {
				errCh <- err
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Pair names one simulation.
type Pair struct {
	W   workload.Workload
	Cfg config.Config
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(r *Runner) (string, error)
}

var experimentList []Experiment

func registerExperiment(e Experiment) {
	experimentList = append(experimentList, e)
}

// AllExperiments returns every registered experiment sorted by ID.
func AllExperiments() []Experiment {
	out := make([]Experiment, len(experimentList))
	copy(out, experimentList)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ErrUnknownExperiment: the requested experiment ID is not registered.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment")

// ByID looks an experiment up.
func ByID(id string) (Experiment, error) {
	for _, e := range experimentList {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
}
