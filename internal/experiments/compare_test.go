package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(scale float64, entries ...BenchEntry) *BenchReport {
	rep := &BenchReport{Schema: BenchSchema, Scale: scale, Config: "(3+2)", Workloads: entries}
	for _, e := range entries {
		rep.TotalMinst += float64(e.Committed) / 1e6
		rep.TotalSecs += e.WallSeconds
	}
	return rep
}

func entry(name string, cycles, committed uint64, secs float64) BenchEntry {
	return BenchEntry{
		Workload:    name,
		Cycles:      cycles,
		Committed:   committed,
		WallSeconds: secs,
		MinstPerSec: float64(committed) / 1e6 / secs,
	}
}

func TestReadBenchReport(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"schema":"ddbench/v1","scale":0.1,"workloads":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadBenchReport(good)
	if err != nil {
		t.Fatalf("good report: %v", err)
	}
	if rep.Scale != 0.1 {
		t.Fatalf("scale = %g", rep.Scale)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"something/v9"}`), 0o644)
	if _, err := ReadBenchReport(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema: err = %v", err)
	}
	os.WriteFile(bad, []byte(`{truncated`), 0o644)
	if _, err := ReadBenchReport(bad); err == nil {
		t.Fatal("garbage report parsed")
	}
	if _, err := ReadBenchReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file read")
	}
}

func TestCompareBenchScaleMismatch(t *testing.T) {
	if _, err := CompareBench(report(0.1), report(0.5)); err == nil {
		t.Fatal("scale mismatch accepted")
	}
}

func TestCompareBenchVerdicts(t *testing.T) {
	old := report(0.1,
		entry("li", 1000, 2_000_000, 1.0),  // 2.0 Minst/s
		entry("gcc", 4000, 4_000_000, 2.0), // 2.0 Minst/s
		entry("gone", 500, 1_000_000, 1.0),
	)
	// Candidate: li 10% slower, gcc same speed but cycles changed, "gone"
	// missing, "fresh" added.
	cand := report(0.1,
		entry("li", 1000, 2_000_000, 1.0/0.9),
		entry("gcc", 4100, 4_000_000, 2.0),
		entry("fresh", 300, 600_000, 0.5),
	)
	c, err := CompareBench(old, cand)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]CompareRow{}
	for _, r := range c.Rows {
		rows[r.Workload] = r
	}
	if r := rows["li"]; r.Delta > -0.09 || r.Delta < -0.11 || r.CyclesChanged {
		t.Fatalf("li row = %+v", r)
	}
	if r := rows["gcc"]; !r.CyclesChanged || r.Delta != 0 {
		t.Fatalf("gcc row = %+v", r)
	}
	if r := rows["gone"]; r.NewMinst != 0 || r.OldMinst == 0 {
		t.Fatalf("gone row = %+v", r)
	}
	if r := rows["fresh"]; r.OldMinst != 0 || r.NewMinst == 0 {
		t.Fatalf("fresh row = %+v", r)
	}
	if c.OldTput <= 0 || c.NewTput <= 0 {
		t.Fatalf("aggregate tput = %g / %g", c.OldTput, c.NewTput)
	}

	out := c.Render(0.05)
	for _, want := range []string{"li", "gone", "new", "[cycles changed]", "aggregate"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegressedGate(t *testing.T) {
	old := report(0.1, entry("li", 1000, 10_000_000, 1.0)) // 10 Minst/s
	within := report(0.1, entry("li", 1000, 10_000_000, 1.0/0.96))
	past := report(0.1, entry("li", 1000, 10_000_000, 1.0/0.90))

	c, err := CompareBench(old, within)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed(0.05) {
		t.Fatalf("4%% drop tripped the 5%% gate: delta = %g", c.Delta)
	}
	if c, _ = CompareBench(old, past); !c.Regressed(0.05) {
		t.Fatalf("10%% drop passed the 5%% gate: delta = %g", c.Delta)
	}
	if out := c.Render(0.05); !strings.Contains(out, "REGRESSION") {
		t.Errorf("regressed render missing REGRESSION line:\n%s", out)
	}
	// Speedups never trip the gate.
	faster := report(0.1, entry("li", 1000, 10_000_000, 0.5))
	if c, _ = CompareBench(old, faster); c.Regressed(0.05) {
		t.Fatal("speedup flagged as regression")
	}
}
