package experiments

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// testRunner is shared across tests so cached results are reused.
var testRunner = NewRunner(0.04)

func res(t *testing.T, name string, cfg config.Config) uint64 {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := testRunner.Result(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r.Cycles
}

func TestRegistryAndLookup(t *testing.T) {
	all := AllExperiments()
	if len(all) < 15 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Description == "" || e.Run == nil {
			t.Errorf("experiment %+v missing fields", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "fig2", "fig3",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "l2traffic"} {
		if !ids[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, err := ByID("fig5"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunnerCaches(t *testing.T) {
	w, _ := workload.ByName("compress")
	cfg := config.Default()
	a, err := testRunner.Result(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testRunner.Result(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs not cached")
	}
}

func TestCheapExperimentsRender(t *testing.T) {
	for _, id := range []string{"table1", "table2", "fig2", "fig3", "fig6"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Run(testRunner)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "vortex") && id != "table1" {
			t.Errorf("%s output missing program rows:\n%s", id, out)
		}
	}
}

// Shape assertions — the paper's qualitative results must hold.

func TestShapeBandwidthMonotone(t *testing.T) {
	// Fig 5: more D-cache ports never hurt; 1 port clearly limits.
	for _, name := range []string{"li", "vortex", "swim"} {
		c1 := res(t, name, cfgNM(1, 0))
		c2 := res(t, name, cfgNM(2, 0))
		c4 := res(t, name, cfgNM(4, 0))
		if c2 > c1 || c4 > c2 {
			t.Errorf("%s: cycles not monotone with ports: %d, %d, %d", name, c1, c2, c4)
		}
		if float64(c1) < 1.05*float64(c4) {
			t.Errorf("%s: 1 port (%d) not clearly slower than 4 ports (%d)", name, c1, c4)
		}
	}
}

func TestShapeDecouplingHelpsCallHeavyPrograms(t *testing.T) {
	// Fig 7/11: for the local-heavy integer programs, (2+2) beats (2+0).
	for _, name := range []string{"li", "vortex"} {
		base := res(t, name, cfgNM(2, 0))
		dec := res(t, name, cfgNM(2, 2).WithOptimizations(2))
		if dec >= base {
			t.Errorf("%s: (2+2) %d cycles not faster than (2+0) %d", name, dec, base)
		}
	}
}

func TestShapeDecouplingNeutralForFP(t *testing.T) {
	// §4.3: for poorly-interleaved FP programs (2+2) ≈ (2+0).
	for _, name := range []string{"swim", "mgrid"} {
		base := res(t, name, cfgNM(2, 0))
		dec := res(t, name, cfgNM(2, 2).WithOptimizations(2))
		ratio := float64(base) / float64(dec)
		if ratio < 0.97 || ratio > 1.10 {
			t.Errorf("%s: (2+2)/(2+0) speedup %.3f, expected near 1", name, ratio)
		}
	}
}

func TestShapeSlowCacheHurts(t *testing.T) {
	// Fig 10: a 3-cycle L1 makes (4+0) slower than (4+0)@2cy, and the
	// decoupled (2+2) beats the slow (4+0) for call-heavy programs.
	for _, name := range []string{"go", "vortex", "li"} {
		fast := res(t, name, cfgNM(4, 0))
		slow3 := cfgNM(4, 0)
		slow3.L1.HitLatency = 3
		slow := res(t, name, slow3)
		if slow <= fast {
			t.Errorf("%s: 3-cycle L1 (%d) not slower than 2-cycle (%d)", name, slow, fast)
		}
		dec := res(t, name, cfgNM(2, 2).WithOptimizations(2))
		if dec >= slow {
			t.Errorf("%s: (2+2) %d not faster than slow (4+0) %d", name, dec, slow)
		}
	}
}

func TestShapeCombiningHelpsVortexMost(t *testing.T) {
	// Fig 8: vortex gains most from combining under (3+1).
	speedup := func(name string) float64 {
		c1 := cfgNM(3, 1)
		c1.CombineWidth = 1
		c2 := cfgNM(3, 1)
		c2.CombineWidth = 2
		return float64(res(t, name, c1)) / float64(res(t, name, c2))
	}
	v := speedup("vortex")
	if v <= 1.0 {
		t.Errorf("vortex combining speedup %.3f, want > 1", v)
	}
	for _, other := range []string{"compress", "mgrid"} {
		if o := speedup(other); o > v {
			t.Errorf("%s combining speedup %.3f exceeds vortex %.3f", other, o, v)
		}
	}
}

func TestShapeFastForwardingNotHarmful(t *testing.T) {
	// Table 3: fast forwarding never slows a program down meaningfully
	// (the paper reports 0%..3.9%), and the mechanism actually fires.
	// At test scale the gains can round to zero — like the paper's many
	// 0% rows — so assert no-harm plus aggregate non-regression.
	var sumOff, sumOn uint64
	fired := false
	for _, name := range []string{"go", "li", "ijpeg", "vortex", "m88ksim"} {
		off := res(t, name, cfgNM(3, 2))
		on := cfgNM(3, 2)
		on.FastForward = true
		onC := res(t, name, on)
		if float64(onC) > 1.01*float64(off) {
			t.Errorf("%s: fast forwarding slowed run: %d -> %d", name, off, onC)
		}
		sumOff += off
		sumOn += onC

		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := testRunner.Result(w, on)
		if err != nil {
			t.Fatal(err)
		}
		if r.FastFwdLoads > 0 {
			fired = true
		}
	}
	if sumOn > sumOff {
		t.Errorf("fast forwarding regressed in aggregate: %d -> %d", sumOff, sumOn)
	}
	if !fired {
		t.Error("fast forwarding never fired on any program")
	}
}

func TestShapeLimitConfigIsFastest(t *testing.T) {
	for _, name := range []string{"li", "gcc"} {
		limit := res(t, name, cfgNM(16, 0))
		for _, n := range []int{1, 2, 4} {
			if c := res(t, name, cfgNM(n, 0)); c < limit {
				t.Errorf("%s: (%d+0) %d cycles beats (16+0) %d", name, n, c, limit)
			}
		}
	}
}

func TestExperimentTable3Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment in -short mode")
	}
	e, err := ByID("table3")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "li") {
		t.Errorf("table3 output malformed:\n%s", out)
	}
}

func TestExperimentFig10Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment in -short mode")
	}
	e, _ := ByID("fig10")
	out, err := e.Run(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(4+0)3cy") {
		t.Errorf("fig10 output malformed:\n%s", out)
	}
}

func TestExperimentAblationStaticOptRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment in -short mode")
	}
	e, err := ByID("ablation-static-opt")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"off", "dynamic", "static", "li", "vortex"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation-static-opt output missing %q:\n%s", want, out)
		}
	}
}

// TestShapeStaticOptNeverExceedsDynamic: the static tables only restrict
// the dynamic mechanisms, so the static event counts are bounded by the
// dynamic ones on every program — and the analyzer proves enough pairs on
// the call-heavy workloads that static forwarding still fires.
func TestShapeStaticOptNeverExceedsDynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment in -short mode")
	}
	for _, name := range []string{"li", "vortex"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := testRunner.Result(w, cfgNM(3, 2).WithOptimizations(4))
		if err != nil {
			t.Fatal(err)
		}
		stat, err := testRunner.Result(w, cfgNM(3, 2).WithStaticOptimizations(4))
		if err != nil {
			t.Fatal(err)
		}
		if stat.FastFwdLoads > dyn.FastFwdLoads {
			t.Errorf("%s: static forwarded %d > dynamic %d", name, stat.FastFwdLoads, dyn.FastFwdLoads)
		}
		if stat.CombinedAccesses > dyn.CombinedAccesses {
			t.Errorf("%s: static combined %d > dynamic %d", name, stat.CombinedAccesses, dyn.CombinedAccesses)
		}
		if stat.FastFwdLoads == 0 {
			t.Errorf("%s: static forwarding never fired", name)
		}
	}
}
