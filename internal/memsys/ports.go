package memsys

import (
	"math/bits"

	"repro/internal/config"
)

// Ports tracks one cache's port availability within the current cycle,
// under one of the paper's §1 multi-porting schemes.
type Ports struct {
	model     config.PortModel
	limit     int
	lineShift uint

	used     int
	bankBusy []bool
}

// NewPorts builds the per-cycle port state for a cache with the given
// model, port count and line size.
func NewPorts(model config.PortModel, limit, lineBytes int) Ports {
	p := Ports{model: model, limit: limit,
		lineShift: uint(bits.TrailingZeros(uint(lineBytes)))}
	if model == config.PortsBanked {
		p.bankBusy = make([]bool, limit)
	}
	return p
}

// Reset frees all ports; called once per cycle.
func (p *Ports) Reset() {
	p.used = 0
	for i := range p.bankBusy {
		p.bankBusy[i] = false
	}
}

// Limit returns the port count.
func (p *Ports) Limit() int { return p.limit }

// InUse returns how many ports the current cycle has consumed. Under the
// banked model it counts busy banks.
func (p *Ports) InUse() int {
	if p.model == config.PortsBanked {
		n := 0
		for _, b := range p.bankBusy {
			if b {
				n++
			}
		}
		return n
	}
	return p.used
}

// Grant tries to allocate a port for an access this cycle.
func (p *Ports) Grant(addr uint32, isStore bool) bool {
	switch p.model {
	case config.PortsBanked:
		// Line-interleaved single-ported banks: same-bank accesses
		// conflict.
		bank := int(addr>>p.lineShift) % p.limit
		if p.bankBusy[bank] {
			return false
		}
		p.bankBusy[bank] = true
		return true
	case config.PortsReplicated:
		// Stores broadcast to every replica and need all ports; loads
		// can use any single free replica.
		if isStore {
			if p.used != 0 {
				return false
			}
			p.used = p.limit
			return true
		}
		if p.used >= p.limit {
			return false
		}
		p.used++
		return true
	default: // ideal
		if p.used >= p.limit {
			return false
		}
		p.used++
		return true
	}
}
