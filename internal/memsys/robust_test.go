package memsys

import "testing"

// A GrantHook returning false must deny the port exactly like a structural
// conflict — no port consumed, no combining window opened — and a nil hook
// must change nothing.
func TestGrantHookDeniesPorts(t *testing.T) {
	s := testStream(t)
	s.Reset()
	if ok, _ := s.Grant(0, 0x100, true, GroupNone); !ok {
		t.Fatal("grant denied with no hook installed")
	}

	var denied int
	s.GrantHook = func(id int, addr uint32, isLoad bool) bool {
		if id != s.ID {
			t.Errorf("hook saw stream id %d, want %d", id, s.ID)
		}
		denied++
		return false
	}
	s.Reset()
	if ok, _ := s.Grant(0, 0x100, true, GroupNone); ok {
		t.Fatal("grant succeeded against a denying hook")
	}
	if denied != 1 {
		t.Fatalf("hook called %d times, want 1", denied)
	}
	if s.Ports.InUse() != 0 {
		t.Fatalf("denied grant consumed a port: InUse() = %d", s.Ports.InUse())
	}

	// A denying hook must also stall a commit-time store write.
	e := &testEntry{seq: 0}
	s.Dispatch(1, e)
	if status, _ := s.CommitStore(1, e, 0x100, GroupNone); status != CommitPortStall {
		t.Fatalf("CommitStore under denying hook = %v, want CommitPortStall", status)
	}

	s.GrantHook = nil
	s.Reset()
	if ok, _ := s.Grant(0, 0x100, true, GroupNone); !ok {
		t.Fatal("grant denied after hook removed")
	}
}

// A combining-window ride-along does not consume a port, so the hook (a
// port-level fault) must not see or block it.
func TestGrantHookSkipsCombiningRides(t *testing.T) {
	s := combiningStream(t, false)
	s.Reset()
	if ok, combined := s.Grant(0, 0x100, true, GroupNone); !ok || combined {
		t.Fatalf("opening grant = (%v, %v), want (true, false)", ok, combined)
	}
	// Deny everything from here: the same-line follower must still ride.
	s.GrantHook = func(int, uint32, bool) bool { return false }
	if ok, combined := s.Grant(1, 0x104, true, GroupNone); !ok || !combined {
		t.Fatalf("ride-along under denying hook = (%v, %v), want (true, true)", ok, combined)
	}
	// A different line needs a real port and must be denied.
	if ok, _ := s.Grant(2, 0x200, true, GroupNone); ok {
		t.Fatal("off-line access won a port against a denying hook")
	}
}

// The diagnostic accessors feeding failure snapshots must report the live
// port and combining-window state.
func TestDiagnosticAccessors(t *testing.T) {
	s := combiningStream(t, false)
	s.Reset()
	if got := s.Ports.Limit(); got != s.Spec.Ports {
		t.Fatalf("Ports.Limit() = %d, want %d", got, s.Spec.Ports)
	}
	if got := s.Ports.InUse(); got != 0 {
		t.Fatalf("Ports.InUse() = %d at cycle start, want 0", got)
	}
	if left, _, _ := s.CombineWindow(); left != 0 {
		t.Fatalf("CombineWindow left = %d at cycle start, want 0", left)
	}

	if ok, _ := s.Grant(0, 0x140, true, 7); !ok {
		t.Fatal("grant denied")
	}
	if got := s.Ports.InUse(); got != 1 {
		t.Fatalf("Ports.InUse() = %d after one grant, want 1", got)
	}
	left, line, group := s.CombineWindow()
	if left != s.Spec.CombineWidth-1 || line != 0x140 || group != 7 {
		t.Fatalf("CombineWindow = (%d, %#x, %d), want (%d, 0x140, 7)",
			left, line, group, s.Spec.CombineWidth-1)
	}
}
