// Package memsys is the N-stream memory subsystem of the data-decoupled
// machine. A Stream bundles everything the paper attaches to one memory
// access stream — its access queue (a ring buffer of in-flight entries),
// the cache it feeds, the per-cycle port arbitration state of that cache,
// and the stream's statistics counters — behind a small API the pipeline
// drives (Dispatch, Process, CommitStore, Retire, Drain, Occupancy).
//
// The paper's LVAQ/LVC + LSQ/L1 organization is the N = 2 instance: the
// core builds one Stream per config.StreamSpec and steers each memory
// instruction to a stream at dispatch. Nothing in this package assumes two
// streams, so sharded or multi-backend memory systems are additional specs
// rather than new pipeline plumbing.
//
// Queue entries are owned by the pipeline (the core's RUU entries) and are
// registered here through the Entry interface. Each entry embeds a Node,
// which carries per-stream position tickets: IndexOf and membership tests
// are O(1), removal at the head (the common case — commit order equals
// queue order) is O(1), and only the rare mid-queue removals of misroute
// recovery and dual-copy kills shift elements. The old slice-backed
// implementation paid an O(n) scan per committed memory instruction.
package memsys

// MaxStreams bounds how many streams one Entry can occupy simultaneously.
// Dual-steered accesses occupy two; the bound leaves room for wider
// multi-stream configurations without growing per-entry state dynamically.
const MaxStreams = 8

// Entry is one in-flight memory access as seen by a stream's queue. The
// pipeline's instruction-window entry implements it by embedding a Node.
type Entry interface {
	// QueueNode returns the entry's queue bookkeeping; one Node serves
	// every stream the entry occupies.
	QueueNode() *Node
	// OrderSeq returns the entry's program-order sequence number. Queue
	// contents are always ordered by it.
	OrderSeq() uint64
}

// Node is the per-entry bookkeeping a Queue needs: one position ticket and
// membership bit per stream. Embed a Node in the queue element type and
// return it from QueueNode.
type Node struct {
	tick [MaxStreams]uint64
	in   [MaxStreams]bool
}

// InStream reports whether the owning entry currently occupies stream id.
func (n *Node) InStream(id int) bool { return n.in[id] }
