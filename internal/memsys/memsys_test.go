package memsys

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
)

// testEntry is a minimal queue occupant.
type testEntry struct {
	seq  uint64
	node Node
}

func (e *testEntry) QueueNode() *Node { return &e.node }
func (e *testEntry) OrderSeq() uint64 { return e.seq }

func entries(n int) []*testEntry {
	es := make([]*testEntry, n)
	for i := range es {
		es[i] = &testEntry{seq: uint64(i)}
	}
	return es
}

// checkOrder asserts the queue holds exactly want, oldest first, with
// consistent O(1) position lookups.
func checkOrder(t *testing.T, q *Queue, want []*testEntry) {
	t.Helper()
	if q.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", q.Len(), len(want))
	}
	for i, e := range want {
		if q.At(i) != e {
			t.Fatalf("At(%d) = seq %d, want seq %d", i, q.At(i).OrderSeq(), e.seq)
		}
		if got := q.IndexOf(e); got != i {
			t.Fatalf("IndexOf(seq %d) = %d, want %d", e.seq, got, i)
		}
		if !q.Contains(e) {
			t.Fatalf("Contains(seq %d) = false, want true", e.seq)
		}
	}
}

func TestQueuePushPopOrder(t *testing.T) {
	q := NewQueue(0, 4)
	es := entries(6)
	for _, e := range es {
		q.Push(e)
	}
	checkOrder(t, q, es)
	if q.Head() != es[0] {
		t.Fatalf("Head() = seq %d, want 0", q.Head().OrderSeq())
	}
	for i, e := range es {
		if got := q.PopHead(); got != e {
			t.Fatalf("PopHead #%d = seq %d, want seq %d", i, got.OrderSeq(), e.seq)
		}
		if q.Contains(e) {
			t.Fatalf("popped entry seq %d still reported in queue", e.seq)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after draining, want 0", q.Len())
	}
}

// TestQueueGrowWrapped pushes through several grow cycles with the head
// wrapped around the ring, the regime where reindexing bugs would show.
func TestQueueGrowWrapped(t *testing.T) {
	q := NewQueue(0, 16)
	es := entries(200)
	live := []*testEntry{}
	for i, e := range es {
		q.Push(e)
		live = append(live, e)
		if i%3 == 0 { // rotate the ring so head != 0 when growing
			q.PopHead()
			live = live[1:]
		}
	}
	checkOrder(t, q, live)
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue(0, 8)
	es := entries(5)
	for _, e := range es {
		q.Push(e)
	}

	q.Remove(es[2]) // mid-queue: younger side shifts down
	checkOrder(t, q, []*testEntry{es[0], es[1], es[3], es[4]})

	q.Remove(es[0]) // head removal
	checkOrder(t, q, []*testEntry{es[1], es[3], es[4]})

	q.Remove(es[4]) // tail removal
	checkOrder(t, q, []*testEntry{es[1], es[3]})

	if q.IndexOf(es[2]) != -1 || q.Contains(es[2]) {
		t.Fatal("removed entry still indexed")
	}
}

func TestQueueTruncateYounger(t *testing.T) {
	q := NewQueue(0, 8)
	es := entries(6)
	for _, e := range es {
		q.Push(e)
	}
	if got := q.TruncateYounger(2); got != 3 {
		t.Fatalf("TruncateYounger(2) removed %d, want 3", got)
	}
	checkOrder(t, q, es[:3])
	for _, e := range es[3:] {
		if q.Contains(e) {
			t.Fatalf("squashed entry seq %d still in queue", e.seq)
		}
	}
	// Re-pushing after a squash (misroute replay) must work.
	q.Push(es[3])
	checkOrder(t, q, es[:4])
}

func TestQueueClear(t *testing.T) {
	q := NewQueue(0, 8)
	es := entries(4)
	for _, e := range es {
		q.Push(e)
	}
	if got := q.Clear(); got != 4 {
		t.Fatalf("Clear() = %d, want 4", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after Clear, want 0", q.Len())
	}
	for _, e := range es {
		if q.Contains(e) {
			t.Fatalf("cleared entry seq %d still in queue", e.seq)
		}
	}
}

// TestDualMembership verifies an entry can occupy two streams at once with
// independent positions — the SteerDual shadow-copy representation.
func TestDualMembership(t *testing.T) {
	q0, q1 := NewQueue(0, 8), NewQueue(1, 8)
	filler := entries(3)
	for _, e := range filler {
		q0.Push(e)
	}
	dual := &testEntry{seq: 10}
	q0.Push(dual)
	q1.Push(dual)
	if got := q0.IndexOf(dual); got != 3 {
		t.Fatalf("IndexOf in stream 0 = %d, want 3", got)
	}
	if got := q1.IndexOf(dual); got != 0 {
		t.Fatalf("IndexOf in stream 1 = %d, want 0", got)
	}
	q1.Remove(dual) // kill the shadow copy
	if q1.Contains(dual) {
		t.Fatal("shadow copy still in stream 1 after kill")
	}
	if got := q0.IndexOf(dual); got != 3 {
		t.Fatalf("primary copy moved: IndexOf = %d, want 3", got)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

func TestQueuePanics(t *testing.T) {
	q := NewQueue(0, 8)
	e := &testEntry{seq: 0}
	q.Push(e)
	mustPanic(t, "double Push", func() { q.Push(e) })
	absent := &testEntry{seq: 1}
	mustPanic(t, "Remove of absent entry", func() { q.Remove(absent) })
	mustPanic(t, "NewQueue with bad id", func() { NewQueue(MaxStreams, 8) })
}

func testStream(t *testing.T) *Stream {
	t.Helper()
	mem := &cache.MainMemory{Name: "mem", Latency: 20}
	l2 := cache.New(cache.Config{
		Name: "L2", SizeBytes: 1 << 16, LineBytes: 64, Assoc: 4,
		HitLatency: 4, MSHRs: 8,
	}, mem)
	l1 := cache.New(cache.Config{
		Name: "L1D", SizeBytes: 1 << 12, LineBytes: 32, Assoc: 2, HitLatency: 1,
	}, l2)
	spec := config.StreamSpec{
		Name: "LSQ", QueueSize: 8, Ports: 2, PortModel: config.PortsIdeal,
		Cache: config.CacheParams{
			SizeBytes: 1 << 12, LineBytes: 32, Assoc: 2, HitLatency: 1,
		},
		CombineWidth: 1,
	}
	return NewStream(0, spec, l1)
}

// TestCommitStoreRequiresHead is the regression for the old slice-based
// core, where commitStage looked the committing store up with a linear
// scan that could miss (index -1) and silently corrupt port arbitration.
// The stream API makes that state unrepresentable: committing anything but
// the stream's oldest entry panics.
func TestCommitStoreRequiresHead(t *testing.T) {
	s := testStream(t)
	older, younger := &testEntry{seq: 0}, &testEntry{seq: 1}
	s.Dispatch(1, older)
	s.Dispatch(1, younger)

	s.Reset()
	mustPanic(t, "CommitStore on non-head", func() { s.CommitStore(1, younger, 0x100, GroupNone) })
	mustPanic(t, "Retire of non-head", func() { s.Retire(1, younger) })

	notQueued := &testEntry{seq: 2}
	mustPanic(t, "CommitStore on unqueued entry", func() { s.CommitStore(1, notQueued, 0x100, GroupNone) })

	if status, _ := s.CommitStore(1, older, 0x100, GroupNone); status != CommitOK {
		t.Fatalf("CommitStore on head = %v, want CommitOK", status)
	}
	s.Retire(1, older)
	if s.Occupancy() != 1 {
		t.Fatalf("Occupancy() = %d after retiring head, want 1", s.Occupancy())
	}
}

// TestStreamCombining exercises the per-stream combining window: one port
// grant covers CombineWidth consecutive same-line accesses of one kind.
func TestStreamCombining(t *testing.T) {
	s := testStream(t)
	s.Spec.CombineWidth = 4
	s.Spec.Ports = 1
	s.Ports = NewPorts(config.PortsIdeal, 1, 32)
	s.Reset()

	if ok, combined := s.Grant(0, 0x100, true, GroupNone); !ok || combined {
		t.Fatalf("first grant = (%v,%v), want (true,false)", ok, combined)
	}
	// Same line, within the window: rides the open grant.
	if ok, combined := s.Grant(1, 0x104, true, GroupNone); !ok || !combined {
		t.Fatalf("same-line grant = (%v,%v), want (true,true)", ok, combined)
	}
	// A store cannot ride a load window, and the single port is taken.
	if ok, _ := s.Grant(2, 0x108, false, GroupNone); ok {
		t.Fatal("store rode a load combining window")
	}
	// Different line: needs its own port, none left.
	if ok, _ := s.Grant(3, 0x200, true, GroupNone); ok {
		t.Fatal("different-line access granted without a free port")
	}
	if s.Stats.Combined != 1 {
		t.Fatalf("Stats.Combined = %d, want 1", s.Stats.Combined)
	}

	s.Reset() // window must close across cycles
	if ok, combined := s.Grant(0, 0x104, true, GroupNone); !ok || combined {
		t.Fatalf("post-Reset grant = (%v,%v), want (true,false)", ok, combined)
	}
}

// combiningStream returns a 1-port stream with a 4-wide combining window.
func combiningStream(t *testing.T, static bool) *Stream {
	t.Helper()
	s := testStream(t)
	s.Spec.CombineWidth = 4
	s.Spec.Ports = 1
	s.Spec.CombineStatic = static
	s.Ports = NewPorts(config.PortsIdeal, 1, 32)
	s.Reset()
	return s
}

// TestCombineWindowWidthBoundary pins the position arithmetic: the window
// spans queue positions [anchor, anchor+CombineWidth), however many rides
// remain.
func TestCombineWindowWidthBoundary(t *testing.T) {
	s := combiningStream(t, false)
	if ok, _ := s.Grant(2, 0x100, true, GroupNone); !ok {
		t.Fatal("anchor grant refused")
	}
	// Position anchor+CombineWidth is one past the window even though
	// combineLeft rides remain.
	if _, combined := s.Grant(2+4, 0x104, true, GroupNone); combined {
		t.Fatal("access at anchor+width rode the window")
	}
	s.Reset()
	if ok, _ := s.Grant(2, 0x100, true, GroupNone); !ok {
		t.Fatal("anchor grant refused")
	}
	// Last in-window position rides.
	if ok, combined := s.Grant(2+3, 0x104, true, GroupNone); !ok || !combined {
		t.Fatalf("access at anchor+width-1 = (%v,%v), want (true,true)", ok, combined)
	}
}

// TestCombineWindowClosesOnSquash is the satellite regression: a mid-cycle
// squash shifts queue positions, so an access granted after the squash
// must not ride the stale window even if its new position and line match.
func TestCombineWindowClosesOnSquash(t *testing.T) {
	s := combiningStream(t, false)
	es := entries(4)
	for _, e := range es {
		s.Dispatch(1, e)
	}
	if ok, _ := s.Grant(1, 0x100, true, GroupNone); !ok {
		t.Fatal("anchor grant refused")
	}
	s.Squash(1, 0) // drop seqs 1..3
	// Same line, position inside the old window: must need its own port,
	// and the single port is already consumed.
	if ok, combined := s.Grant(1, 0x104, true, GroupNone); ok || combined {
		t.Fatalf("post-squash grant = (%v,%v), want (false,false)", ok, combined)
	}

	// Same for Remove and Drain.
	s.Reset()
	if ok, _ := s.Grant(0, 0x100, true, GroupNone); !ok {
		t.Fatal("anchor grant refused")
	}
	s.Remove(1, es[0])
	if _, combined := s.Grant(0, 0x104, true, GroupNone); combined {
		t.Fatal("window survived Remove")
	}
	s.Reset()
	if ok, _ := s.Grant(0, 0x100, true, GroupNone); !ok {
		t.Fatal("anchor grant refused")
	}
	s.Drain(1)
	if _, combined := s.Grant(0, 0x104, true, GroupNone); combined {
		t.Fatal("window survived Drain")
	}
}

// TestCombineStaticGating: under CombineStatic only members of one proven
// group may open or ride the combining window.
func TestCombineStaticGating(t *testing.T) {
	s := combiningStream(t, true)

	// A group-less access gets a port but opens no window.
	if ok, _ := s.Grant(0, 0x100, true, GroupNone); !ok {
		t.Fatal("group-less access refused a free port")
	}
	if _, combined := s.Grant(1, 0x104, true, GroupNone); combined {
		t.Fatal("window opened for a group-less access")
	}

	s.Reset()
	if ok, _ := s.Grant(0, 0x100, true, 7); !ok {
		t.Fatal("group member refused a free port")
	}
	// Same line, same kind, in window — but wrong group: no ride.
	if _, combined := s.Grant(1, 0x104, true, 8); combined {
		t.Fatal("member of another group rode the window")
	}
	if _, combined := s.Grant(1, 0x104, true, GroupNone); combined {
		t.Fatal("group-less access rode a static window")
	}
	// Correct group rides.
	if ok, combined := s.Grant(1, 0x108, true, 7); !ok || !combined {
		t.Fatalf("same-group grant = (%v,%v), want (true,true)", ok, combined)
	}

	// Without CombineStatic the group id is ignored.
	dyn := combiningStream(t, false)
	if ok, _ := dyn.Grant(0, 0x100, true, 7); !ok {
		t.Fatal("grant refused")
	}
	if ok, combined := dyn.Grant(1, 0x104, true, 8); !ok || !combined {
		t.Fatalf("dynamic cross-group grant = (%v,%v), want (true,true)", ok, combined)
	}
}

func TestStreamTransfer(t *testing.T) {
	mem := &cache.MainMemory{Name: "mem", Latency: 20}
	l2 := cache.New(cache.Config{
		Name: "L2", SizeBytes: 1 << 16, LineBytes: 64, Assoc: 4,
		HitLatency: 4, MSHRs: 8,
	}, mem)
	mk := func(id int, name string) *Stream {
		return NewStream(id, config.StreamSpec{
			Name: name, QueueSize: 8, Ports: 1, PortModel: config.PortsIdeal,
			Cache: config.CacheParams{
				SizeBytes: 1 << 12, LineBytes: 32, Assoc: 2, HitLatency: 1,
			},
			CombineWidth: 1,
		}, cache.New(cache.Config{
			Name: name, SizeBytes: 1 << 12, LineBytes: 32, Assoc: 2, HitLatency: 1,
		}, l2))
	}
	a, b := mk(0, "LSQ"), mk(1, "LVAQ")
	e := &testEntry{seq: 0}
	a.Dispatch(1, e)
	Transfer(1, a, b, e)
	if a.Occupancy() != 0 || b.Occupancy() != 1 {
		t.Fatalf("occupancies after Transfer = %d/%d, want 0/1", a.Occupancy(), b.Occupancy())
	}
	if a.Stats.Dispatched != 0 || b.Stats.Dispatched != 1 {
		t.Fatalf("dispatch counters after Transfer = %d/%d, want 0/1",
			a.Stats.Dispatched, b.Stats.Dispatched)
	}
}
