package memsys

import "fmt"

// Queue is a program-ordered ring buffer of in-flight memory accesses.
// Position 0 is the oldest entry. Entries carry their own position ticket
// (in their Node), so membership and index lookups are O(1); pushes and
// head pops are O(1); mid-queue removal shifts the younger side and is
// reserved for the rare recovery paths (misroutes, dual-copy kills).
type Queue struct {
	id   int
	buf  []Entry // power-of-two ring
	head int     // buf index of position 0
	n    int
	base uint64 // ticket of position 0
}

// NewQueue returns an empty queue for stream id with at least the given
// capacity. The queue grows if pushed beyond it (recovery paths may
// transiently exceed the architectural size).
func NewQueue(id, capacity int) *Queue {
	if id < 0 || id >= MaxStreams {
		panic(fmt.Sprintf("memsys: stream id %d out of range [0,%d)", id, MaxStreams))
	}
	c := 16
	for c < capacity {
		c <<= 1
	}
	return &Queue{id: id, buf: make([]Entry, c)}
}

// Len returns the number of entries in the queue.
func (q *Queue) Len() int { return q.n }

// At returns the entry at position i (0 = oldest).
func (q *Queue) At(i int) Entry {
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

// Head returns the oldest entry; the queue must be non-empty.
func (q *Queue) Head() Entry { return q.At(0) }

// Contains reports whether e currently occupies this queue.
func (q *Queue) Contains(e Entry) bool { return e.QueueNode().in[q.id] }

// IndexOf returns e's position (0 = oldest), or -1 if e is not in the
// queue. O(1): the position is derived from the entry's ticket.
func (q *Queue) IndexOf(e Entry) int {
	nd := e.QueueNode()
	if !nd.in[q.id] {
		return -1
	}
	return int(nd.tick[q.id] - q.base)
}

// Push appends e at the tail. Entries must be pushed in program order; e
// must not already be in this queue.
func (q *Queue) Push(e Entry) {
	nd := e.QueueNode()
	if nd.in[q.id] {
		panic("memsys: entry pushed twice into one stream")
	}
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = e
	nd.tick[q.id] = q.base + uint64(q.n)
	nd.in[q.id] = true
	q.n++
}

func (q *Queue) grow() {
	nb := make([]Entry, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.At(i)
	}
	q.buf, q.head = nb, 0
}

// PopHead removes and returns the oldest entry.
func (q *Queue) PopHead() Entry {
	e := q.Head()
	e.QueueNode().in[q.id] = false
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.base++
	return e
}

// Remove deletes e from the queue. Removing the head is O(1); a mid-queue
// removal shifts the younger entries down one position (their tickets are
// updated in place). Removing an entry that is not in the queue is a
// pipeline bug and panics — the slice-based predecessor silently ignored
// it, handing index -1 to port arbitration.
func (q *Queue) Remove(e Entry) {
	i := q.IndexOf(e)
	if i < 0 {
		panic("memsys: removing entry not in stream")
	}
	if i == 0 {
		q.PopHead()
		return
	}
	mask := len(q.buf) - 1
	for j := i; j < q.n-1; j++ {
		moved := q.buf[(q.head+j+1)&mask]
		q.buf[(q.head+j)&mask] = moved
		moved.QueueNode().tick[q.id]--
	}
	q.buf[(q.head+q.n-1)&mask] = nil
	q.n--
	e.QueueNode().in[q.id] = false
}

// TruncateYounger removes every entry with sequence number greater than
// maxSeq (a program-order suffix) and returns how many were removed.
func (q *Queue) TruncateYounger(maxSeq uint64) int {
	removed := 0
	mask := len(q.buf) - 1
	for q.n > 0 {
		tail := q.buf[(q.head+q.n-1)&mask]
		if tail.OrderSeq() <= maxSeq {
			break
		}
		tail.QueueNode().in[q.id] = false
		q.buf[(q.head+q.n-1)&mask] = nil
		q.n--
		removed++
	}
	return removed
}

// Clear empties the queue and returns how many entries were dropped.
func (q *Queue) Clear() int {
	dropped := q.n
	for q.n > 0 {
		q.PopHead()
	}
	return dropped
}
