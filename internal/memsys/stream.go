package memsys

import (
	"repro/internal/cache"
	"repro/internal/config"
)

// Stats are the counters one stream collects. The pipeline aggregates
// them into its legacy LSQ/LVAQ-named result fields.
type Stats struct {
	Dispatched uint64 // accesses steered here (primary copies only)

	// Speculative-steering accounting (SteerSpec): accesses steered here
	// on a speculate-local assignment rather than a proof, and the subset
	// that resolved to the other stream's region and paid the misroute
	// recovery path.
	SpecSteered   uint64
	SpecMisrouted uint64

	FwdLoads     uint64 // store→load forwards inside this queue
	FastFwdLoads uint64 // offset-based forwards before address generation
	Combined     uint64 // accesses that rode a shared port grant

	LoadPortStalls  uint64
	StorePortStalls uint64
	LoadMSHRStalls  uint64
	StoreMSHRStalls uint64

	Occupancy uint64 // integral of queue length over cycles
}

// CommitStatus is the outcome of a store's commit-time cache access.
type CommitStatus uint8

const (
	// CommitOK: port granted and the cache accepted the write.
	CommitOK CommitStatus = iota
	// CommitPortStall: no port this cycle; retry next cycle.
	CommitPortStall
	// CommitMSHRStall: port consumed but all MSHRs busy; retry next cycle.
	CommitMSHRStall
)

// Stream is one memory access stream: a program-ordered access queue in
// front of a cache, the per-cycle port state of that cache, and the
// stream's statistics. The pipeline steers each memory instruction to a
// stream at dispatch and drives all streams uniformly every cycle.
type Stream struct {
	ID    int
	Spec  config.StreamSpec
	Queue *Queue
	Cache *cache.Cache
	Ports Ports
	Stats Stats

	// GrantHook, when non-nil, is consulted before every port
	// acquisition; returning false denies the port (the access stalls and
	// retries like any port conflict). It is the fault-injection point for
	// dropped and delayed grants; nil (the default) costs nothing and
	// changes nothing. Accesses riding an open combining window do not
	// consume a port and are not subject to the hook.
	GrantHook func(id int, addr uint32, isLoad bool) bool

	// Access-combining window (§2.2.2), reset each cycle: one port grant
	// covers up to Spec.CombineWidth consecutive same-line accesses of
	// the same kind. Under Spec.CombineStatic the window additionally
	// belongs to one statically-proven group (combineGroup) and only
	// members of that group may open or ride it.
	combineLine   uint32
	combineLeft   int
	combineIsLoad bool
	combineAnchor int
	combineGroup  int

	// occSynced is the last cycle whose occupancy sample has been folded
	// into Stats.Occupancy (lazy interval accumulation: the integral is
	// advanced only when the queue length changes, not every cycle). The
	// legacy sample point is the memory stage — after the cycle's commits,
	// before its dispatches — and the sync calls in the mutators below
	// reproduce it exactly: commit-stage mutators (Retire, Drain)
	// accumulate through now-1 so the current cycle samples the shrunken
	// queue, post-sample mutators (Dispatch, Insert, Remove, Squash)
	// accumulate through now so the current cycle samples the old length.
	occSynced uint64
}

// GroupNone marks an access that belongs to no statically-proven
// combining group.
const GroupNone = -1

// NewStream builds a stream from its spec. The cache is constructed by
// the caller (it plugs into a shared lower hierarchy).
func NewStream(id int, spec config.StreamSpec, c *cache.Cache) *Stream {
	return &Stream{
		ID:    id,
		Spec:  spec,
		Queue: NewQueue(id, spec.QueueSize),
		Cache: c,
		Ports: NewPorts(spec.PortModel, spec.Ports, spec.Cache.LineBytes),
	}
}

// Reset starts a new cycle: all ports free, combining window closed.
func (s *Stream) Reset() {
	s.Ports.Reset()
	s.combineLeft = 0
}

// Occupancy returns the current number of queued accesses.
func (s *Stream) Occupancy() int { return s.Queue.Len() }

// syncOcc folds cycles (occSynced, through] into the occupancy integral at
// the current queue length. Call before any length change: the cycles
// since the last change all sampled the old length.
func (s *Stream) syncOcc(through uint64) {
	if through > s.occSynced {
		s.Stats.Occupancy += (through - s.occSynced) * uint64(s.Queue.Len())
		s.occSynced = through
	}
}

// FlushOccupancy folds the tail of the occupancy integral (cycles since
// the last queue mutation, through the given final cycle) into the stats.
// The pipeline calls it once, when building the result.
func (s *Stream) FlushOccupancy(now uint64) { s.syncOcc(now) }

// NextWake reports the earliest cycle strictly after now at which this
// stream can make progress it could not make now, or 0 when it holds no
// such future event. Today that is exactly its cache's next fill
// completion — an MSHR-rejected access can only be accepted once a fill
// frees an MSHR. Port availability and the combining window need no wake:
// both reset at the next cycle boundary, so they never block longer than
// one cycle on their own.
func (s *Stream) NextWake(now uint64) uint64 { return s.Cache.NextFillDone(now) }

// Full reports whether the queue has reached its architectural size.
func (s *Stream) Full() bool { return s.Queue.Len() >= s.Spec.QueueSize }

// Dispatch inserts a primary access at the queue tail (during cycle now's
// dispatch stage, after the cycle's occupancy sample) and counts it.
func (s *Stream) Dispatch(now uint64, e Entry) {
	s.syncOcc(now)
	s.Queue.Push(e)
	s.Stats.Dispatched++
}

// Insert inserts an access at the queue tail without counting it as
// dispatched here: the shadow copy of a dual-steered access, or an access
// re-steered into this stream by misroute recovery (the recovery path
// adjusts the dispatch counters explicitly).
func (s *Stream) Insert(now uint64, e Entry) {
	s.syncOcc(now)
	s.Queue.Push(e)
}

// Remove deletes an access from the queue (dual-copy kill, misroute
// recovery; both run after cycle now's occupancy sample). Panics if e is
// not in this stream. Removal shifts younger entries down, invalidating
// the combining window's position anchor, so the window closes.
func (s *Stream) Remove(now uint64, e Entry) {
	s.syncOcc(now)
	s.Queue.Remove(e)
	s.combineLeft = 0
}

// Process walks the queue in program order, calling fn with each entry and
// its position. fn must not add or remove entries.
//
//ddvet:hotpath
func (s *Stream) Process(fn func(pos int, e Entry)) {
	for i := 0; i < s.Queue.Len(); i++ {
		fn(i, s.Queue.At(i))
	}
}

// Grant arbitrates a cache port for one access at queue position pos this
// cycle. A granted access on a combining stream opens a combining window:
// up to CombineWidth-1 further same-kind accesses to the same line within
// the window ride along without consuming another port (combined=true).
// group is the access's static combining-group id (GroupNone if it
// belongs to none); it only gates anything under Spec.CombineStatic.
//
//ddvet:hotpath
func (s *Stream) Grant(pos int, addr uint32, isLoad bool, group int) (ok, combined bool) {
	if s.combineLeft > 0 && s.combineIsLoad == isLoad &&
		s.Cache.SameLine(s.combineLine, addr) &&
		pos >= 0 && pos-s.combineAnchor < s.Spec.CombineWidth &&
		(!s.Spec.CombineStatic || (group != GroupNone && group == s.combineGroup)) {
		s.combineLeft--
		s.Stats.Combined++
		return true, true
	}
	if s.GrantHook != nil && !s.GrantHook(s.ID, addr, isLoad) {
		return false, false
	}
	if !s.Ports.Grant(addr, !isLoad) {
		return false, false
	}
	if s.Spec.CombineWidth > 1 && (!s.Spec.CombineStatic || group != GroupNone) {
		s.combineLine = addr
		s.combineLeft = s.Spec.CombineWidth - 1
		s.combineIsLoad = isLoad
		s.combineAnchor = pos
		s.combineGroup = group
	}
	return true, false
}

// CombineWindow exposes the current combining-window state for
// diagnostics: how many ride-along slots remain (0 = closed), the line
// address the window covers, and its static group id.
func (s *Stream) CombineWindow() (left int, line uint32, group int) {
	return s.combineLeft, s.combineLine, s.combineGroup
}

// CommitStore performs a store's commit-time cache write: arbitrate a
// port (participating in combining), then access the cache. The entry
// must be the queue head — memory instructions commit in program order,
// so a store that is not its stream's oldest entry is a pipeline bug and
// panics. On CommitMSHRStall the port stays consumed, as it would in
// hardware; the caller retries next cycle.
//
//ddvet:hotpath
func (s *Stream) CommitStore(now uint64, e Entry, addr uint32, group int) (CommitStatus, bool) {
	if s.Queue.Len() == 0 || s.Queue.Head() != e {
		panic("memsys: CommitStore on an entry that is not the stream head")
	}
	ok, combined := s.Grant(0, addr, false, group)
	if !ok {
		s.Stats.StorePortStalls++
		return CommitPortStall, false
	}
	if _, accepted := s.Cache.Access(now, addr, true); !accepted {
		s.Stats.StoreMSHRStalls++
		return CommitMSHRStall, false
	}
	return CommitOK, combined
}

// Retire removes a committing access from the queue head during cycle
// now's commit stage — before the cycle's occupancy sample, so the
// integral is advanced only through now-1. Commit order is program order,
// so the access must be the oldest entry; anything else is a pipeline bug
// and panics.
//
//ddvet:hotpath
func (s *Stream) Retire(now uint64, e Entry) {
	if s.Queue.Len() == 0 || s.Queue.Head() != e {
		panic("memsys: retiring an entry that is not the stream head")
	}
	if now > 0 {
		s.syncOcc(now - 1)
	}
	s.Queue.PopHead()
}

// Squash removes every access younger than maxSeq and returns how many
// were dropped. A squash mid-cycle must also close the combining window:
// its anchor is a queue position that may now name a different (younger,
// re-dispatched) access, and a post-recovery access must not ride a grant
// won by a squashed one.
func (s *Stream) Squash(now, maxSeq uint64) int {
	s.syncOcc(now)
	s.combineLeft = 0
	return s.Queue.TruncateYounger(maxSeq)
}

// Drain empties the queue (at the commit stage of cycle now, before the
// cycle's occupancy sample) and returns how many entries were still in
// flight — 0 for a cleanly drained pipeline, which tests assert. The
// combining window cannot survive without its anchor entry.
func (s *Stream) Drain(now uint64) int {
	if now > 0 {
		s.syncOcc(now - 1)
	}
	s.combineLeft = 0
	return s.Queue.Clear()
}

// Transfer moves a wrongly-steered access from one stream to another
// (misroute recovery): it is removed from its old queue, appended to the
// new one — recovery squashed everything younger, so the tail position is
// its program-order slot — and the dispatch accounting follows it.
func Transfer(now uint64, from, to *Stream, e Entry) {
	from.Remove(now, e)
	to.Insert(now, e)
	from.Stats.Dispatched--
	to.Stats.Dispatched++
}
