package srccheck

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// ImportPath is the full path ("repro/internal/core"); RelPath the
	// module-root-relative form ("internal/core", "" for the root package).
	ImportPath string
	RelPath    string
	Dir        string
	// Files and FileNames are parallel; names are module-root-relative.
	Files     []*ast.File
	FileNames []string
	Types     *types.Package
	Info      *types.Info
	// InternalImports are the module-internal packages this one imports
	// directly, as RelPaths, sorted.
	InternalImports []string
}

// Module is the loaded target of one srccheck run.
type Module struct {
	Root string
	// Path is the module path from go.mod.
	Path string
	Fset *token.FileSet
	// Pkgs is sorted by RelPath; ByRel indexes it.
	Pkgs  []*Package
	ByRel map[string]*Package

	// hotpaths and allows are the parsed //ddvet: directives (directives.go).
	hotpaths []hotpathFunc
	allows   map[string][]allowDirective
}

// Load parses and type-checks every non-test package under root (the
// directory holding go.mod). Directories named testdata or vendor and
// hidden directories are skipped, as are _test.go files: ddvet checks the
// shipped simulator, not its tests.
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Root:  root,
		Path:  modPath,
		Fset:  token.NewFileSet(),
		ByRel: map[string]*Package{},
	}
	if err := mod.parseTree(); err != nil {
		return nil, err
	}
	if err := mod.typecheck(); err != nil {
		return nil, err
	}
	mod.scanDirectives()
	return mod, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("srccheck: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("srccheck: no module line in %s", gomod)
}

// parseTree walks the module tree and parses every package's non-test files.
func (m *Module) parseTree() error {
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		return m.parseDir(path)
	})
	if err != nil {
		return err
	}
	if len(m.Pkgs) == 0 {
		return fmt.Errorf("srccheck: no Go packages under %s", m.Root)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].RelPath < m.Pkgs[j].RelPath })
	return nil
}

func (m *Module) parseDir(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	var pkg *Package
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("srccheck: %w", err)
		}
		if pkg == nil {
			imp := m.Path
			if rel != "" {
				imp = m.Path + "/" + rel
			}
			pkg = &Package{ImportPath: imp, RelPath: rel, Dir: dir}
		}
		pkg.Files = append(pkg.Files, file)
		fileRel := name
		if rel != "" {
			fileRel = rel + "/" + name
		}
		pkg.FileNames = append(pkg.FileNames, fileRel)
		for _, spec := range file.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if r, ok := m.internalRel(p); ok && !pkgListed(r, pkg.InternalImports) {
				pkg.InternalImports = append(pkg.InternalImports, r)
			}
		}
	}
	if pkg != nil {
		sort.Strings(pkg.InternalImports)
		m.Pkgs = append(m.Pkgs, pkg)
		m.ByRel[pkg.RelPath] = pkg
	}
	return nil
}

// internalRel maps an import path to a module-root-relative path, reporting
// whether it names a package of this module.
func (m *Module) internalRel(importPath string) (string, bool) {
	if importPath == m.Path {
		return "", true
	}
	if rest, ok := strings.CutPrefix(importPath, m.Path+"/"); ok {
		return rest, true
	}
	return "", false
}

// typecheck runs go/types over every package in dependency order. Stdlib
// imports are resolved by the source importer (type-checked from $GOROOT
// source — no export data or network needed); module-internal imports
// resolve to the packages checked earlier in the order.
func (m *Module) typecheck() error {
	order, err := m.topo()
	if err != nil {
		return err
	}
	imp := &moduleImporter{
		mod:    m,
		source: importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, pkg := range order {
		conf := types.Config{Importer: imp, FakeImportC: true}
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
			Defs:  map[*ast.Ident]types.Object{},
		}
		tpkg, err := conf.Check(pkg.ImportPath, m.Fset, pkg.Files, info)
		if err != nil {
			return fmt.Errorf("srccheck: type-checking %s: %w", pkg.ImportPath, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
	}
	return nil
}

// topo orders the packages so every internal import precedes its importer.
func (m *Module) topo() ([]*Package, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var order []*Package
	var visit func(p *Package, chain []string) error
	visit = func(p *Package, chain []string) error {
		switch color[p.RelPath] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("srccheck: import cycle: %s", strings.Join(append(chain, p.ImportPath), " -> "))
		}
		color[p.RelPath] = grey
		for _, dep := range p.InternalImports {
			if d, ok := m.ByRel[dep]; ok {
				if err := visit(d, append(chain, p.ImportPath)); err != nil {
					return err
				}
			}
		}
		color[p.RelPath] = black
		order = append(order, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports to already-checked
// packages and delegates everything else to the stdlib source importer.
type moduleImporter struct {
	mod    *Module
	source types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if rel, ok := mi.mod.internalRel(path); ok {
		pkg, found := mi.mod.ByRel[rel]
		if !found || pkg.Types == nil {
			return nil, fmt.Errorf("internal package %s not loaded (import cycle?)", path)
		}
		return pkg.Types, nil
	}
	return mi.source.Import(path)
}

// position converts a token.Pos into a module-relative finding anchor.
func (m *Module) position(pos token.Pos) (file string, line, col int) {
	p := m.Fset.Position(pos)
	f := p.Filename
	if rel, err := filepath.Rel(m.Root, f); err == nil && !strings.HasPrefix(rel, "..") {
		f = filepath.ToSlash(rel)
	}
	return f, p.Line, p.Column
}

// symbolFor names the innermost function declaration enclosing pos in file
// ("(*Core).cycle", "Run"), or "" at file scope.
func symbolFor(file *ast.File, pos token.Pos) string {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		return funcSymbol(fd)
	}
	return ""
}

// funcSymbol renders a FuncDecl's receiver-qualified name.
func funcSymbol(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := typeExprString(fd.Recv.List[0].Type)
	return recv + "." + fd.Name.Name
}

func typeExprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "(*" + typeExprString(t.X) + ")"
	case *ast.IndexExpr:
		return typeExprString(t.X)
	case *ast.IndexListExpr:
		return typeExprString(t.X)
	default:
		return "?"
	}
}
