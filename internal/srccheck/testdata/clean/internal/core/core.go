// Package core is a fixture of legitimate patterns the determinism
// checker must accept.
package core

import (
	"math/rand"
	"time"
)

// Campaign draws from an explicitly seeded generator — reproducible.
func Campaign(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(16)
}

// Wall uses the clock behind a reasoned allow, both placement forms.
func Wall() int64 {
	//ddvet:allow det-time-now -- fixture: wall-clock is measurement-only here
	t := time.Now().Unix()
	u := time.Now().Unix() //ddvet:allow det-time-now -- fixture: trailing form
	return t + u
}
