// Package stats is a fixture of deterministic map-iteration idioms: every
// loop here must pass the determinism checker.
package stats

import "sort"

// Sum is an order-independent reduction.
func Sum(m map[int]uint64) uint64 {
	var total uint64
	for _, v := range m {
		total += v
	}
	return total
}

// Max is an order-independent conditional update.
func Max(m map[int]uint64) int {
	best := 0
	for v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Keys collects then sorts — the canonical deterministic iteration idiom.
func Keys(m map[int]uint64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Mirror writes into another map — order-independent.
func Mirror(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
