// Package simerr is a fixture leaf with no internal imports — the
// conforming shape.
package simerr

// Kind is a placeholder.
type Kind uint8
