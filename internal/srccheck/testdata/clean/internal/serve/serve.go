// Package serve is a fixture of taxonomy-conforming error handling.
package serve

import (
	"errors"
	"fmt"
)

// ErrQueueFull is a package-level sentinel — the conforming form.
var ErrQueueFull = errors.New("serve: queue full")

// Submit wraps causes and sentinels with %w.
func Submit(depth, cap int) error {
	if depth >= cap {
		return fmt.Errorf("%w: depth %d", ErrQueueFull, depth)
	}
	return nil
}
