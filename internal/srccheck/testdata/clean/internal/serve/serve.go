// Package serve is a fixture of taxonomy-conforming error handling.
package serve

import (
	"errors"
	"fmt"
	"sort"
)

// ErrQueueFull is a package-level sentinel — the conforming form.
var ErrQueueFull = errors.New("serve: queue full")

// Submit wraps causes and sentinels with %w.
func Submit(depth, cap int) error {
	if depth >= cap {
		return fmt.Errorf("%w: depth %d", ErrQueueFull, depth)
	}
	return nil
}

// Work is the conforming worker loop: each received index is placed by
// identity into a pre-sized slice, so arrival order never matters.
func Work(todo <-chan int, run func(int) string) []string {
	results := make([]string, 128)
	for idx := range todo {
		results[idx] = run(idx)
	}
	return results
}

// CollectSorted is the conforming accumulation: appended arrivals are
// sorted before anyone can observe their order.
func CollectSorted(done <-chan string) []string {
	var keys []string
	for k := range done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Tally reduces commutatively: counts and map writes are order-blind.
func Tally(done <-chan string) map[string]int {
	n := 0
	byKey := map[string]int{}
	for k := range done {
		n++
		byKey[k]++
	}
	byKey[""] = n
	return byKey
}
