// Package sched is a fixture of hotpath patterns that must pass: clean
// bodies, reasoned allows, panic messages, and allocation in unannotated
// functions.
package sched

// Heap is a fixture slab.
type Heap struct {
	heap []uint64
}

// Push is a declared hot path whose append carries the amortization
// argument.
//
//ddvet:hotpath
func (h *Heap) Push(cycle uint64) {
	//ddvet:allow hotpath-append -- fixture: slab amortizes to zero steady-state growth
	h.heap = append(h.heap, cycle)
}

// Pop is a clean declared hot path; its panic message may box a constant
// string (terminal path, exempt from escape findings).
//
//ddvet:hotpath
func (h *Heap) Pop() uint64 {
	if len(h.heap) == 0 {
		panic("sched: pop of empty heap")
	}
	v := h.heap[0]
	h.heap = h.heap[:len(h.heap)-1]
	return v
}

// Grow allocates freely: it is not annotated, so the hotpath checker must
// ignore it.
func Grow(n int) []uint64 {
	return make([]uint64, n)
}
