// Package cliutil is a fixture restricted to cmd/* importers.
package cliutil

// Flags is a placeholder.
func Flags() uint64 { return 0 }
