// Command tool is a fixture: cmd/* may import cliutil.
package main

import "clean/internal/cliutil"

func main() { _ = cliutil.Flags() }
