// Package sched is a fixture: a transitive layering violation (sched ->
// memsys -> core) plus every AST-level hotpath violation.
package sched

import (
	"fmt"

	"violations/internal/memsys" // layer-forbid for core (transitive), direct for memsys
)

// Wakes is a placeholder making the import load-bearing.
func Wakes() uint64 { return memsys.Occupancy() }

// Drain is a declared hot path stuffed with allocation-inducing
// constructs.
//
//ddvet:hotpath
func Drain(n int) string {
	buf := make([]uint64, n) // hotpath-alloc
	buf = append(buf, 1)     // hotpath-append
	f := func() uint64 {     // hotpath-closure
		return buf[0]
	}
	pairs := []int{int(f())}          // hotpath-alloc (slice literal)
	s := fmt.Sprintf("%d", pairs[0])  // hotpath-fmt
	s = s + "!"                       // hotpath-alloc (string concat)
	return string([]byte(s)) // hotpath-alloc x2 (conversions)
}
