// Package serve is a fixture: an output package with order-sensitive map
// iteration, and an importer of cliutil from outside cmd/.
package serve

import (
	"fmt"
	"os"

	"violations/internal/cliutil" // layer-only-from
)

// Depth returns a queue depth.
func Depth() uint64 { return cliutil.Flags() }

// Dump writes counters in map-iteration order.
func Dump(byKind map[string]uint64) {
	for k, v := range byKind { // det-map-iter (output package)
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v)
	}
}

// Collect accumulates worker results in arrival order: with concurrent
// senders that is goroutine scheduling order.
func Collect(results <-chan string) []string {
	var out []string
	for r := range results { // det-goroutine-order (conc package)
		out = append(out, r)
	}
	return out
}
