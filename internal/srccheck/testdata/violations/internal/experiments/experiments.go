// Package experiments is a fixture seeding error-taxonomy violations.
package experiments

import (
	"errors"
	"fmt"
)

// Run mints unclassifiable errors.
func Run(id string) error {
	if id == "" {
		return errors.New("experiments: empty id") // err-adhoc-new
	}
	return fmt.Errorf("experiments: unknown experiment %q", id) // err-naked-errorf
}
