// Package memsys is a fixture: the mechanism layer importing the machine
// that drives it.
package memsys

import "violations/internal/core" // layer-forbid (direct)

// Occupancy is a placeholder using the forbidden import.
func Occupancy() uint64 { return core.Tick() }
