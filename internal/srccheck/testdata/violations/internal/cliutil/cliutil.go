// Package cliutil is a fixture: flag-surface glue restricted to cmd/*.
package cliutil

// Flags is a placeholder.
func Flags() uint64 { return 0 }
