// Package stats is a fixture leaf used by the seeded layering violations.
package stats

// Mean is a placeholder.
func Mean() float64 { return 0 }
