// Package simerr is a fixture: a declared leaf that imports another
// internal package.
package simerr

import "violations/internal/stats" // layer-leaf

// Kind is a placeholder.
type Kind uint8

// Mean is a placeholder using the forbidden import.
func Mean() float64 { return stats.Mean() }
