// Package core is a fixture seeding determinism violations: every
// construct here must be flagged by ddvet's determinism checker.
package core

import (
	"math/rand"
	"time"

	"violations/internal/serve"
)

// Tick leaks wall-clock and unseeded randomness into simulation state.
func Tick() uint64 {
	t := uint64(time.Now().UnixNano()) // det-time-now
	t += uint64(rand.Intn(16))         // det-rand
	//ddvet:allow det-time-now
	t += uint64(time.Now().Unix()) // allow-malformed (no reason), so det-time-now still fires
	return t + serve.Depth()
}

// Names appends in map-iteration order without sorting afterwards.
func Names(m map[string]int) []string {
	var out []string
	for k := range m { // det-map-iter
		out = append(out, k)
	}
	return out
}
