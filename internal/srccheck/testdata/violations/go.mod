module violations

go 1.22
