package srccheck

import (
	"go/ast"
	"go/token"
	"strings"
)

// checkLayering enforces the declared package DAG. Three rule forms (see
// LayerRule), one finding id each:
//
//	layer-leaf       a declared leaf imports a module-internal package.
//	layer-forbid     a package reaches a forbidden package, directly or
//	                 transitively; the reason chain is the import path.
//	layer-only-from  a restricted package is imported from outside its
//	                 allowed importer set.
//
// Findings anchor at the offending import declaration: the first edge of
// the violating chain, which is the line a fix has to touch.
func checkLayering(m *Module, cfg *Config) []Finding {
	var out []Finding
	for _, rule := range cfg.Layering {
		switch rule.Kind {
		case "leaf":
			pkg, ok := m.ByRel[rule.Pkg]
			if !ok {
				continue
			}
			for _, dep := range pkg.InternalImports {
				file, fileName, pos := m.importSite(pkg, dep)
				out = append(out, m.finding("layer-leaf", pkg, file, fileName, pos,
					rule.Pkg+" is a declared leaf but imports "+dep,
					[]string{"leaf packages keep the shared vocabulary cycle-free",
						"move the dependency up a layer or inline what " + rule.Pkg + " needs"}))
			}
		case "forbid":
			pkg, ok := m.ByRel[rule.Pkg]
			if !ok {
				continue
			}
			for _, deny := range rule.Deny {
				chain := m.reach(rule.Pkg, deny)
				if chain == nil {
					continue
				}
				file, fileName, pos := m.importSite(pkg, chain[1])
				reason := []string{"import chain: " + strings.Join(chain, " -> ")}
				out = append(out, m.finding("layer-forbid", pkg, file, fileName, pos,
					rule.Pkg+" must not depend on "+deny, reason))
			}
		case "only-from":
			for _, importer := range m.Pkgs {
				if importer.RelPath == rule.Pkg || !pkgListed(rule.Pkg, importer.InternalImports) {
					continue
				}
				allowed := false
				for _, from := range rule.From {
					if strings.HasPrefix(importer.RelPath, from) || importer.RelPath == strings.TrimSuffix(from, "/") {
						allowed = true
					}
				}
				if allowed {
					continue
				}
				file, fileName, pos := m.importSite(importer, rule.Pkg)
				out = append(out, m.finding("layer-only-from", importer, file, fileName, pos,
					rule.Pkg+" may only be imported from "+strings.Join(rule.From, ", "),
					[]string{importer.RelPath + " is outside the allowed importer set"}))
			}
		}
	}
	return out
}

// reach returns the shortest internal-import chain from one package to
// another as RelPaths (inclusive), or nil when to is unreachable from from.
func (m *Module) reach(from, to string) []string {
	type node struct {
		rel    string
		parent int
	}
	queue := []node{{from, -1}}
	seen := map[string]bool{from: true}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if cur.rel == to {
			var chain []string
			for j := i; j >= 0; j = queue[j].parent {
				chain = append([]string{queue[j].rel}, chain...)
			}
			return chain
		}
		pkg, ok := m.ByRel[cur.rel]
		if !ok {
			continue
		}
		for _, dep := range pkg.InternalImports {
			if !seen[dep] {
				seen[dep] = true
				queue = append(queue, node{dep, i})
			}
		}
	}
	return nil
}

// importSite locates the import spec of dep (a RelPath) inside pkg,
// returning the file, its name and the spec's position. Falls back to the
// first file's package clause if the spec is not found.
func (m *Module) importSite(pkg *Package, dep string) (*ast.File, string, token.Pos) {
	want := m.Path
	if dep != "" {
		want = m.Path + "/" + dep
	}
	for i, file := range pkg.Files {
		for _, spec := range file.Imports {
			if strings.Trim(spec.Path.Value, `"`) == want {
				return file, pkg.FileNames[i], spec.Pos()
			}
		}
	}
	return pkg.Files[0], pkg.FileNames[0], pkg.Files[0].Name.Pos()
}
