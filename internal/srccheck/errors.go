package srccheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// checkErrors enforces the simerr taxonomy on the packages whose errors
// cross package boundaries: a caller of core/serve/experiments must be able
// to classify every failure with errors.Is/errors.As against the simerr
// kinds or a package-level sentinel. Two rules:
//
//	err-naked-errorf  fmt.Errorf without a %w verb mints an unclassifiable
//	                  string-only error — wrap the cause, or wrap a
//	                  sentinel/simerr value when the site originates the
//	                  failure.
//	err-adhoc-new     errors.New inside a function body creates an error
//	                  identity no caller can name; hoist it to a
//	                  package-level sentinel (var ErrX = errors.New(...)).
func checkErrors(m *Module, cfg *Config) []Finding {
	var out []Finding
	for _, pkg := range m.Pkgs {
		if !pkgListed(pkg.RelPath, cfg.ErrPackages) {
			continue
		}
		for i, file := range pkg.Files {
			fileName := pkg.FileNames[i]
			// Package-level var declarations may mint sentinels; function
			// bodies may not.
			var funcBodies []*ast.BlockStmt
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					funcBodies = append(funcBodies, fd.Body)
				}
			}
			inFunc := func(pos ast.Node) bool {
				for _, b := range funcBodies {
					if pos.Pos() >= b.Pos() && pos.End() <= b.End() {
						return true
					}
				}
				return false
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
					format, known := constFormat(pkg, call)
					if known && !strings.Contains(format, "%w") {
						out = append(out, m.finding("err-naked-errorf", pkg, file, fileName, call.Pos(),
							"fmt.Errorf without %w on a taxonomy path",
							[]string{"callers classify failures with errors.Is/As against simerr kinds and sentinels",
								"wrap the cause with %w, or wrap a package-level sentinel when this site originates the failure"}))
					}
				case fn.Pkg().Path() == "errors" && fn.Name() == "New" && inFunc(call):
					out = append(out, m.finding("err-adhoc-new", pkg, file, fileName, call.Pos(),
						"errors.New inside a function body on a taxonomy path",
						[]string{"an inline errors.New has no identity a caller can test for",
							"hoist it to a package-level sentinel (var ErrX = errors.New(...)) and wrap it with %w"}))
				}
				return true
			})
		}
	}
	return out
}

// constFormat extracts the constant format string of a fmt.Errorf call.
func constFormat(pkg *Package, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
