package srccheck

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// EscapeDiag is one heap-allocation site reported by the compiler's escape
// analysis (-gcflags=-m). Only messages that prove an allocation are kept;
// inlining chatter and "does not escape" confirmations are dropped at parse
// time.
type EscapeDiag struct {
	// File is relative to the directory the compiler ran in (the module
	// root, when produced by RunEscapeAnalysis).
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// escapeLine matches `path/file.go:12:6: message`.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// allocMessages are the -m message forms that prove a heap allocation at
// the reported site. Everything else (inlining decisions, parameter leak
// notes, "does not escape") is noise for the hotpath gate.
var allocMessages = []string{
	"escapes to heap",
	"moved to heap",
}

// ParseEscapes extracts allocation sites from raw `go build -gcflags=-m`
// output. The parser is intentionally line-based and forgiving: compiler
// output is interleaved with `# package` headers and inlining notes.
func ParseEscapes(output []byte) []EscapeDiag {
	var out []EscapeDiag
	sc := bufio.NewScanner(bytes.NewReader(output))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		alloc := false
		for _, want := range allocMessages {
			if strings.Contains(msg, want) && !strings.Contains(msg, "does not escape") {
				alloc = true
			}
		}
		if !alloc {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, EscapeDiag{
			File: filepath.ToSlash(filepath.Clean(m[1])),
			Line: ln,
			Col:  col,
			Msg:  msg,
		})
	}
	return out
}

// RunEscapeAnalysis compiles the module with -gcflags=-m and parses the
// diagnostics. The Go build cache replays compiler output on cache hits, so
// repeated runs stay fast and still see the full report.
func RunEscapeAnalysis(root string) ([]EscapeDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("srccheck: go build -gcflags=-m: %w\n%s", err, out)
	}
	return ParseEscapes(out), nil
}
