package srccheck

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReportSchema versions the ddvet -json wire format, mirroring the
// ddlint/ddbench schema discipline: consumers hard-fail on an unknown
// schema string instead of misreading moved fields.
const ReportSchema = "ddvet/v1"

// Report is the ddvet/v1 JSON document.
type Report struct {
	Schema string `json:"schema"`
	// Module is the module path that was analyzed.
	Module string `json:"module"`
	// Findings is every finding, baselined or new, sorted by position; the
	// empty slice (not null) when the tree is clean.
	Findings []Finding `json:"findings"`
	// StaleBaseline lists baseline entries matching no current finding —
	// paid-off debt whose rows should be deleted from the baseline file.
	StaleBaseline []BaselineEntry `json:"stale_baseline"`
	Summary       Summary         `json:"summary"`
}

// Summary are the counts the exit code derives from.
type Summary struct {
	Total     int `json:"total"`
	New       int `json:"new"`
	Baselined int `json:"baselined"`
	Stale     int `json:"stale_baseline_entries"`
}

// NewReport assembles the report for a finished run.
func NewReport(mod *Module, findings []Finding, stale []BaselineEntry) *Report {
	if findings == nil {
		findings = []Finding{}
	}
	if stale == nil {
		stale = []BaselineEntry{}
	}
	r := &Report{
		Schema:        ReportSchema,
		Module:        mod.Path,
		Findings:      findings,
		StaleBaseline: stale,
	}
	for _, f := range findings {
		r.Summary.Total++
		if f.Baselined {
			r.Summary.Baselined++
		} else {
			r.Summary.New++
		}
	}
	r.Summary.Stale = len(stale)
	return r
}

// WriteJSON emits the indented ddvet/v1 document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-readable report.
func (r *Report) WriteText(w io.Writer) {
	for _, f := range r.Findings {
		tag := ""
		if f.Baselined {
			tag = " (baselined)"
		}
		fmt.Fprintf(w, "%s%s\n", f, tag)
	}
	for _, e := range r.StaleBaseline {
		fmt.Fprintf(w, "stale baseline entry: %s %s %s: %s (delete it — the finding is gone)\n",
			e.Rule, e.File, e.Symbol, e.Message)
	}
	fmt.Fprintf(w, "ddvet: %d finding(s): %d new, %d baselined; %d stale baseline entr%s\n",
		r.Summary.Total, r.Summary.New, r.Summary.Baselined,
		r.Summary.Stale, plural(r.Summary.Stale, "y", "ies"))
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
