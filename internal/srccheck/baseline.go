package srccheck

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
)

// BaselineSchema versions the committed baseline file.
const BaselineSchema = "ddvet-baseline/v1"

// BaselineEntry identifies one grandfathered finding. Line numbers are
// deliberately absent: a finding keeps its baseline identity across
// unrelated edits to its file, and moves, renames or message changes
// surface it again as new.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Symbol  string `json:"symbol,omitempty"`
	Message string `json:"message"`
}

func (e BaselineEntry) key() string {
	return e.Rule + "\x00" + e.File + "\x00" + e.Symbol + "\x00" + e.Message
}

// Baseline is the committed set of grandfathered findings.
type Baseline struct {
	Schema  string          `json:"schema"`
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file; a missing file is an empty baseline,
// so a clean repo needs no file at all.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Baseline{Schema: BaselineSchema}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("srccheck: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("srccheck: baseline %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("srccheck: baseline %s: schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	return &b, nil
}

// Apply marks findings present in the baseline as Baselined and returns the
// stale entries — baseline rows matching no current finding, which means
// the debt was paid and the entry should be deleted.
func (b *Baseline) Apply(findings []Finding) (stale []BaselineEntry) {
	baselined := map[string]bool{}
	for _, e := range b.Entries {
		baselined[e.key()] = true
	}
	matched := map[string]bool{}
	for i := range findings {
		k := findings[i].key()
		if baselined[k] {
			findings[i].Baselined = true
			matched[k] = true
		}
	}
	for _, e := range b.Entries {
		if !matched[e.key()] {
			stale = append(stale, e)
		}
	}
	return stale
}

// FromFindings builds the baseline that grandfathers exactly the given
// findings (the -write-baseline path). Entries are deduplicated and sorted
// so the file diffs cleanly.
func FromFindings(findings []Finding) *Baseline {
	seen := map[string]bool{}
	b := &Baseline{Schema: BaselineSchema}
	for _, f := range findings {
		e := BaselineEntry{Rule: f.Rule, File: f.File, Symbol: f.Symbol, Message: f.Message}
		if !seen[e.key()] {
			seen[e.key()] = true
			b.Entries = append(b.Entries, e)
		}
	}
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].key() < b.Entries[j].key() })
	return b
}

// Save writes the baseline with a trailing newline, atomically enough for a
// file that is only ever rewritten by -write-baseline.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
