// Package srccheck is the repo-level static-analysis framework behind the
// ddvet tool. Where internal/analysis proves properties of the *simulated*
// programs, srccheck proves properties of the simulator's own Go source:
// the invariants the differential tests and soaks probe dynamically
// (deterministic results, the package layering DAG, the typed simerr
// failure taxonomy, the zero-allocation hot loop) are checked statically on
// every commit.
//
// The framework is dependency-free: it loads the module with the standard
// go/parser + go/types toolchain (stdlib imports are type-checked from
// $GOROOT source), runs a pluggable set of checkers, and reports findings
// with file:line anchors, rule ids and reason chains. A committed baseline
// file grandfathers pre-existing findings; anything new fails the run.
//
// Checkers ship in this package:
//
//   - determinism (determinism.go): wall-clock reads, unseeded randomness
//     and order-sensitive map iteration in simulation-state or
//     output-producing packages.
//   - layering (layering.go): the declared package DAG — leaf packages,
//     transitively-forbidden edges, restricted importers.
//   - errors (errors.go): the simerr taxonomy — no naked fmt.Errorf or
//     ad-hoc errors.New on error paths that cross package boundaries.
//   - hotpath (hotpath.go): functions annotated //ddvet:hotpath must not
//     contain allocation-inducing constructs, cross-validated against the
//     compiler's -gcflags=-m escape analysis (escapes.go).
//
// Inline suppression uses //ddvet:allow <rule> -- <reason>; an allow
// without a reason is itself a finding.
package srccheck

import (
	"fmt"
	"sort"
)

// Severity orders findings; today every rule reports at SevError and the
// field exists so informational rules can be added without a schema break.
type Severity string

const (
	SevError Severity = "error"
	SevInfo  Severity = "info"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	// File is the path relative to the module root; Line/Col are 1-based.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Package is the import path; Symbol the enclosing function or method
	// (receiver-qualified), empty at file scope.
	Package string `json:"package"`
	Symbol  string `json:"symbol,omitempty"`
	Message string `json:"message"`
	// Reason is the chain of evidence: for a layering violation the import
	// path sequence, for a determinism finding what makes the loop body
	// order-sensitive, for an escape finding the compiler's own words.
	Reason []string `json:"reason,omitempty"`
	// Baselined marks a finding grandfathered by the baseline file; it is
	// reported but does not fail the run.
	Baselined bool `json:"baselined"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
	for _, r := range f.Reason {
		s += "\n\t" + r
	}
	return s
}

// key is the baseline identity of a finding: everything except the line and
// column, so a finding survives unrelated edits to its file.
func (f Finding) key() string {
	return f.Rule + "\x00" + f.File + "\x00" + f.Symbol + "\x00" + f.Message
}

// LayerRule is one declared constraint on the package DAG. Pkg and the
// package lists are module-root-relative import paths ("internal/simerr").
type LayerRule struct {
	// Kind selects the constraint:
	//   "leaf":      Pkg must import no module-internal package at all.
	//   "forbid":    Pkg must not reach any package in Deny, transitively.
	//   "only-from": Pkg may be imported only by packages matching a From
	//                prefix ("cmd/" matches every command).
	Kind string
	Pkg  string
	Deny []string
	From []string
}

// Config selects what the checkers look at. Package lists are
// module-root-relative paths.
type Config struct {
	// DetPackages hold simulation state or produce simulation output:
	// wall-clock reads and unseeded randomness are forbidden there.
	DetPackages []string
	// OutputPackages are additionally checked for order-sensitive map
	// iteration (serialized output must be byte-stable across runs).
	OutputPackages []string
	// ConcPackages fan results in from concurrent producers: ranging over
	// a channel there must not accumulate into a slice in arrival order
	// (scheduling order would leak into output). The conforming idioms are
	// indexed writes into pre-sized slices and collect-then-sort.
	ConcPackages []string
	// ErrPackages carry the simerr taxonomy across package boundaries: no
	// naked fmt.Errorf, no ad-hoc errors.New inside function bodies.
	ErrPackages []string
	// Layering is the declared package DAG.
	Layering []LayerRule
	// Escapes is parsed -gcflags=-m compiler output for the hotpath
	// checker's cross-validation; nil skips that rule (AST rules still run).
	Escapes []EscapeDiag
	// Rules, when non-nil, enables only the named checkers
	// (determinism/layering/errors/hotpath).
	Rules map[string]bool
}

// DefaultConfig returns the rule set for this repository: the invariants
// DESIGN.md documents and the dynamic test suites probe.
func DefaultConfig() *Config {
	return &Config{
		DetPackages: []string{
			"internal/core", "internal/memsys", "internal/sched",
			"internal/emu", "internal/stats", "internal/experiments",
		},
		// serve's and sweep's wall-clock/jitter use is legitimate service
		// plumbing, but their serialized output (/statz, job results, figure
		// JSON, census) must be byte-stable.
		OutputPackages: []string{"internal/serve", "internal/sweep"},
		// The service worker pool and the sweep coordinator collect results
		// from concurrent goroutines: arrival order must never reach a slice.
		ConcPackages: []string{"internal/serve", "internal/sweep"},
		ErrPackages: []string{
			"internal/core", "internal/serve", "internal/experiments",
		},
		Layering: []LayerRule{
			// simerr is the shared error vocabulary: a leaf by design, so
			// the core, the runner and the facade can all use it without
			// cycles.
			{Kind: "leaf", Pkg: "internal/simerr"},
			// The mechanism packages must not know about the machine that
			// drives them.
			{Kind: "forbid", Pkg: "internal/memsys", Deny: []string{"internal/core"}},
			{Kind: "forbid", Pkg: "internal/sched", Deny: []string{"internal/core", "internal/memsys"}},
			// The core is below the service and experiment layers.
			{Kind: "forbid", Pkg: "internal/core", Deny: []string{"internal/serve", "internal/experiments"}},
			// The emulator is the architectural reference: it must not
			// depend on any timing machinery.
			{Kind: "forbid", Pkg: "internal/emu", Deny: []string{"internal/core", "internal/memsys", "internal/sched"}},
			// cliutil is flag-surface glue for the commands only.
			{Kind: "only-from", Pkg: "internal/cliutil", From: []string{"cmd/"}},
		},
	}
}

// checker is one analysis pass.
type checker struct {
	name string
	run  func(*Module, *Config) []Finding
}

var checkers = []checker{
	{"determinism", checkDeterminism},
	{"layering", checkLayering},
	{"errors", checkErrors},
	{"hotpath", checkHotpath},
}

// CheckerNames lists the available checkers in execution order.
func CheckerNames() []string {
	names := make([]string, len(checkers))
	for i, c := range checkers {
		names[i] = c.name
	}
	return names
}

// Run loads the module rooted at root and applies every enabled checker.
// Findings come back sorted (file, line, col, rule) with allow directives
// already applied; the baseline is the caller's concern (see Baseline).
func Run(root string, cfg *Config) (*Module, []Finding, error) {
	mod, err := Load(root)
	if err != nil {
		return nil, nil, err
	}
	return mod, RunModule(mod, cfg), nil
}

// RunModule applies every enabled checker to an already-loaded module.
func RunModule(mod *Module, cfg *Config) []Finding {
	var all []Finding
	for _, c := range checkers {
		if cfg.Rules != nil && !cfg.Rules[c.name] {
			continue
		}
		all = append(all, c.run(mod, cfg)...)
	}
	all = append(all, mod.directiveFindings()...)
	all = mod.applyAllows(all)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		// Same rule at the same position (one import spec violating two
		// layer constraints): break the tie on the message so the order
		// never depends on sort-internal pivot choices.
		return a.Message < b.Message
	})
	return all
}

// pkgListed reports whether the package's module-relative path is in list.
func pkgListed(relPath string, list []string) bool {
	for _, p := range list {
		if relPath == p {
			return true
		}
	}
	return false
}
