package srccheck

import (
	"go/ast"
	"os"
	"strings"
)

// The two source directives ddvet understands:
//
//	//ddvet:hotpath
//	    In a function's doc comment: the function is a declared hot path —
//	    the hotpath checker forbids allocation-inducing constructs in its
//	    body and cross-validates it against the compiler's escape analysis.
//
//	//ddvet:allow <rule> -- <reason>
//	    Suppresses findings of <rule> on the same line, or on the line
//	    directly below a standalone comment line. The reason is mandatory:
//	    an allow without one is itself a finding, so every suppression in
//	    the tree documents why the construct is safe.
const (
	hotpathDirective = "//ddvet:hotpath"
	allowDirective_  = "//ddvet:allow"
)

type hotpathFunc struct {
	pkg      *Package
	file     *ast.File
	fileName string
	decl     *ast.FuncDecl
}

type allowDirective struct {
	rule   string
	reason string
	line   int
	// standalone is true when the comment has a line of its own (it then
	// covers the next line rather than its own).
	standalone bool
}

// scanDirectives collects //ddvet: directives from every file's comments.
func (m *Module) scanDirectives() {
	m.allows = map[string][]allowDirective{}
	for _, pkg := range m.Pkgs {
		for i, file := range pkg.Files {
			fileName := pkg.FileNames[i]
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == hotpathDirective {
						m.hotpaths = append(m.hotpaths, hotpathFunc{pkg, file, fileName, fd})
					}
				}
			}
			var src []byte
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, allowDirective_) {
						continue
					}
					if src == nil {
						src = m.readSource(file)
					}
					pos := m.Fset.Position(c.Pos())
					rule, reason := parseAllow(text)
					m.allows[fileName] = append(m.allows[fileName], allowDirective{
						rule:       rule,
						reason:     reason,
						line:       pos.Line,
						standalone: isStandalone(src, pos.Offset),
					})
				}
			}
		}
	}
}

// readSource returns the raw bytes of the file (empty on error, which only
// degrades standalone detection, not correctness).
func (m *Module) readSource(file *ast.File) []byte {
	tf := m.Fset.File(file.Pos())
	if tf == nil {
		return nil
	}
	src, err := os.ReadFile(tf.Name())
	if err != nil {
		return nil
	}
	return src
}

// isStandalone reports whether only whitespace precedes the byte at offset
// on its line — a standalone comment covers the next line, a trailing one
// its own.
func isStandalone(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t':
			continue
		default:
			return false
		}
	}
	return true
}

// parseAllow splits "//ddvet:allow rule -- reason".
func parseAllow(text string) (rule, reason string) {
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective_))
	if i := strings.Index(rest, "--"); i >= 0 {
		rule = strings.TrimSpace(rest[:i])
		reason = strings.TrimSpace(rest[i+2:])
	} else {
		rule = strings.TrimSpace(rest)
	}
	if i := strings.IndexAny(rule, " \t"); i >= 0 {
		rule = rule[:i]
	}
	return rule, reason
}

// directiveFindings reports malformed directives: an allow with no rule or
// no reason defeats the audit trail the mechanism exists for.
func (m *Module) directiveFindings() []Finding {
	var out []Finding
	for fileName, allows := range m.allows {
		for _, a := range allows {
			if a.rule != "" && a.reason != "" {
				continue
			}
			msg := "//ddvet:allow needs a reason: //ddvet:allow <rule> -- <reason>"
			if a.rule == "" {
				msg = "//ddvet:allow needs a rule id: //ddvet:allow <rule> -- <reason>"
			}
			out = append(out, Finding{
				Rule:     "allow-malformed",
				Severity: SevError,
				File:     fileName,
				Line:     a.line,
				Col:      1,
				Package:  m.pkgOfFile(fileName),
				Message:  msg,
			})
		}
	}
	return out
}

// applyAllows drops findings covered by a well-formed allow directive.
func (m *Module) applyAllows(findings []Finding) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		if f.Rule != "allow-malformed" && m.allowed(f) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

func (m *Module) allowed(f Finding) bool {
	for _, a := range m.allows[f.File] {
		if a.rule != f.Rule || a.reason == "" {
			continue
		}
		if a.line == f.Line || (a.standalone && a.line == f.Line-1) {
			return true
		}
	}
	return false
}

func (m *Module) pkgOfFile(fileName string) string {
	for _, pkg := range m.Pkgs {
		for _, fn := range pkg.FileNames {
			if fn == fileName {
				return pkg.ImportPath
			}
		}
	}
	return ""
}
