package srccheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkHotpath gates the zero-steady-state-allocation claim of the
// event-driven engine: every function annotated //ddvet:hotpath (the cycle
// body and its stages, memsys Grant/Process, the sched heap ops) is checked
// two ways.
//
// AST rules flag constructs that allocate by construction:
//
//	hotpath-alloc    make/new, slice/map/chan composite literals,
//	                 string<->[]byte/[]rune conversions, string
//	                 concatenation.
//	hotpath-append   append may grow its backing array; amortized-growth
//	                 slabs carry an //ddvet:allow with the amortization
//	                 argument.
//	hotpath-closure  a func literal that captures variables allocates its
//	                 context.
//	hotpath-fmt      fmt formatting allocates (boxing + buffers) on every
//	                 call.
//
// Cross-validation (when Config.Escapes is populated from -gcflags=-m)
// flags what only the compiler can see:
//
//	hotpath-escape   the escape analysis proved a heap allocation inside
//	                 the annotated body — the ground truth the AST rules
//	                 approximate.
//
// The body check is shallow by design: callees are checked only if they are
// themselves annotated. The escape cross-validation closes most of that
// gap, because the compiler inlines the small leaf helpers into the
// annotated frames.
func checkHotpath(m *Module, cfg *Config) []Finding {
	var out []Finding
	for _, hp := range m.hotpaths {
		pkg, file, fileName, fd := hp.pkg, hp.file, hp.fileName, hp.decl
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if name, ok := builtinName(pkg, node); ok {
					switch name {
					case "make", "new":
						out = append(out, m.finding("hotpath-alloc", pkg, file, fileName, node.Pos(),
							name+" in a //ddvet:hotpath function",
							[]string{"allocates on every execution of this path"}))
					case "append":
						out = append(out, m.finding("hotpath-append", pkg, file, fileName, node.Pos(),
							"append in a //ddvet:hotpath function",
							[]string{"append grows its backing array when capacity runs out",
								"preallocate, or //ddvet:allow with the amortization argument"}))
					}
					return true
				}
				if isTypeConversion(pkg, node) {
					if convAllocates(pkg, node) {
						out = append(out, m.finding("hotpath-alloc", pkg, file, fileName, node.Pos(),
							"allocating conversion in a //ddvet:hotpath function",
							[]string{"string <-> byte/rune slice conversions copy through the heap"}))
					}
					return true
				}
				if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
					if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
						out = append(out, m.finding("hotpath-fmt", pkg, file, fileName, node.Pos(),
							"fmt."+fn.Name()+" in a //ddvet:hotpath function",
							[]string{"fmt formatting boxes its arguments and allocates buffers"}))
					}
				}
			case *ast.FuncLit:
				out = append(out, m.finding("hotpath-closure", pkg, file, fileName, node.Pos(),
					"func literal in a //ddvet:hotpath function",
					[]string{"a capturing closure allocates its context; hoist it or pass state explicitly"}))
				return false // its body is part of this closure, already flagged
			case *ast.CompositeLit:
				t := pkg.Info.Types[node].Type
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Chan:
					out = append(out, m.finding("hotpath-alloc", pkg, file, fileName, node.Pos(),
						"slice/map/chan literal in a //ddvet:hotpath function",
						[]string{"composite literals of reference types allocate their backing store"}))
				}
			case *ast.BinaryExpr:
				if node.Op == token.ADD {
					if t := pkg.Info.Types[node.X].Type; t != nil {
						if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
							out = append(out, m.finding("hotpath-alloc", pkg, file, fileName, node.Pos(),
								"string concatenation in a //ddvet:hotpath function",
								[]string{"string + allocates the result"}))
						}
					}
				}
			case *ast.GoStmt:
				out = append(out, m.finding("hotpath-alloc", pkg, file, fileName, node.Pos(),
					"goroutine launch in a //ddvet:hotpath function",
					[]string{"go statements allocate a stack and scheduler state"}))
			}
			return true
		})
		out = append(out, m.escapeFindings(hp, cfg.Escapes)...)
	}
	return out
}

// convAllocates reports whether a conversion call is one of the forms that
// copy through the heap: string([]byte), string([]rune), []byte(string),
// []rune(string).
func convAllocates(pkg *Package, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	dst := pkg.Info.Types[call.Fun].Type
	src := pkg.Info.Types[call.Args[0]].Type
	if dst == nil || src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
			e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}

// escapeFindings maps compiler escape diagnostics into the annotated
// function's body range. Diagnostics inside panic(...) arguments are
// exempt: a taken panic terminates the run (the core contains it into a
// SimError), so its boxing cost is never steady-state — and invariant
// panics with descriptive messages are exactly what the hot paths should
// keep.
func (m *Module) escapeFindings(hp hotpathFunc, escapes []EscapeDiag) []Finding {
	if len(escapes) == 0 {
		return nil
	}
	start := m.Fset.Position(hp.decl.Pos()).Line
	end := m.Fset.Position(hp.decl.End()).Line
	panicLines := map[int]bool{}
	ast.Inspect(hp.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, isBuiltin := builtinName(hp.pkg, call); isBuiltin && name == "panic" {
			for l := m.Fset.Position(call.Pos()).Line; l <= m.Fset.Position(call.End()).Line; l++ {
				panicLines[l] = true
			}
		}
		return true
	})
	var out []Finding
	for _, e := range escapes {
		if e.File != hp.fileName || e.Line < start || e.Line > end || panicLines[e.Line] {
			continue
		}
		out = append(out, Finding{
			Rule:     "hotpath-escape",
			Severity: SevError,
			File:     hp.fileName,
			Line:     e.Line,
			Col:      e.Col,
			Package:  hp.pkg.ImportPath,
			Symbol:   funcSymbol(hp.decl),
			Message:  "escape analysis proves a heap allocation in a //ddvet:hotpath function",
			Reason:   []string{"compiler: " + e.Msg},
		})
	}
	return out
}
