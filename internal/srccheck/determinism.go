package srccheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkDeterminism enforces the bit-identical-results invariant the
// differential engine tests probe dynamically: a simulation result (and
// every serialized form of it) must be a pure function of the config and
// the program. Three rules:
//
//	det-time-now   wall-clock reads (time.Now, time.Since) in a simulation
//	               package leak host timing into simulation state.
//	det-rand       the global math/rand source is seeded randomly since Go
//	               1.20; only explicitly-seeded rand.New(rand.NewSource(s))
//	               generators are reproducible. math/rand/v2 has no global
//	               seeding at all and is forbidden outright.
//	det-map-iter   ranging over a map in an order-sensitive way (appending,
//	               writing output, early exit) makes output byte-unstable
//	               across runs. Order-independent reductions (sums, max,
//	               set/map writes) and the collect-then-sort idiom pass.
//	det-goroutine-order   in a concurrent-collection package, ranging over
//	               a channel and appending received values to a slice bakes
//	               goroutine scheduling order into the result. Worker loops
//	               that only dispatch (calls, indexed writes into pre-sized
//	               slices) and the collect-then-sort idiom pass.
func checkDeterminism(m *Module, cfg *Config) []Finding {
	var out []Finding
	for _, pkg := range m.Pkgs {
		det := pkgListed(pkg.RelPath, cfg.DetPackages)
		mapScope := det || pkgListed(pkg.RelPath, cfg.OutputPackages)
		conc := pkgListed(pkg.RelPath, cfg.ConcPackages)
		if !det && !mapScope && !conc {
			continue
		}
		for i, file := range pkg.Files {
			fileName := pkg.FileNames[i]
			ast.Inspect(file, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.SelectorExpr:
					if !det {
						return true
					}
					obj := pkg.Info.Uses[node.Sel]
					fn, ok := obj.(*types.Func)
					if !ok || fn.Pkg() == nil {
						return true
					}
					switch fn.Pkg().Path() {
					case "time":
						if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
							out = append(out, m.finding("det-time-now", pkg, file, fileName, node.Pos(),
								"wall-clock read ("+fn.FullName()+") in a simulation package",
								[]string{"simulation state and output must be a pure function of config+program",
									"pass timestamps in from the caller or gate them behind an //ddvet:allow with a reason"}))
						}
					case "math/rand", "math/rand/v2":
						if !deterministicRandFunc(fn) {
							out = append(out, m.finding("det-rand", pkg, file, fileName, node.Pos(),
								"unseeded randomness ("+fn.FullName()+") in a simulation package",
								[]string{"the global math/rand source is randomly seeded at process start",
									"construct an explicit generator: rand.New(rand.NewSource(seed))"}))
						}
					}
				case *ast.RangeStmt:
					if node.X == nil {
						return true
					}
					t := pkg.Info.Types[node.X].Type
					if t == nil {
						return true
					}
					switch t.Underlying().(type) {
					case *types.Map:
						if !mapScope {
							return true
						}
						if reason, sensitive := orderSensitive(pkg, file, node); sensitive {
							out = append(out, m.finding("det-map-iter", pkg, file, fileName, node.Pos(),
								"order-sensitive iteration over a map",
								append([]string{"map iteration order varies between runs"}, reason...)))
						}
					case *types.Chan:
						if !conc {
							return true
						}
						if reason := chanOrderSensitive(pkg, file, node); len(reason) > 0 {
							out = append(out, m.finding("det-goroutine-order", pkg, file, fileName, node.Pos(),
								"order-sensitive accumulation from a channel",
								append([]string{"with concurrent senders, channel arrival order is scheduling order"}, reason...)))
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// deterministicRandFunc reports whether a math/rand function is safe:
// constructors taking an explicit seed/source, and methods on an
// explicitly-constructed *Rand value (only package-level functions use the
// global source).
func deterministicRandFunc(fn *types.Func) bool {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return true // a method on *rand.Rand / a Source the caller seeded
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8", "Seed":
		return true
	}
	return false
}

// orderSensitive classifies a range-over-map body. The loop is
// order-independent — and passes — when every statement is a commutative
// reduction: plain or compound assignment to scalars, writes into other
// maps, conditional max/min updates. It is order-sensitive when the body
// can observe sequence: appending to a slice (unless that slice is
// subsequently sorted in the same function), sending on a channel, writing
// through an index into a slice, early exit (break/return), or calling any
// function (a call may print, append or hash order into anything).
func orderSensitive(pkg *Package, file *ast.File, rng *ast.RangeStmt) (reasons []string, sensitive bool) {
	var appendTargets []*ast.Ident
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			name, isBuiltin := builtinName(pkg, node)
			if isBuiltin {
				if name == "append" {
					if id := assignedIdent(rng.Body, node); id != nil {
						appendTargets = append(appendTargets, id)
					} else {
						reasons = append(reasons, "appends in iteration order")
					}
					return true
				}
				if name == "delete" || name == "len" || name == "cap" || name == "min" || name == "max" {
					return true
				}
			}
			if isTypeConversion(pkg, node) {
				return true
			}
			reasons = append(reasons, "calls "+callName(node)+" inside the loop body")
		case *ast.SendStmt:
			reasons = append(reasons, "sends on a channel in iteration order")
		case *ast.BranchStmt:
			if node.Tok.String() == "break" || node.Tok.String() == "goto" {
				reasons = append(reasons, "exits the loop early (picks an arbitrary element)")
			}
		case *ast.ReturnStmt:
			reasons = append(reasons, "returns from inside the loop (picks an arbitrary element)")
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if t := pkg.Info.Types[ix.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						reasons = append(reasons, "writes through an index in iteration order")
					}
				}
			}
		}
		return true
	})
	// The collect-then-sort idiom: appended keys that a later statement of
	// the same function sorts are deterministic after the sort.
	for _, id := range appendTargets {
		if !sortedLater(pkg, file, rng, id) {
			reasons = append(reasons, "appends to "+id.Name+" in iteration order without sorting it afterwards")
		}
	}
	return reasons, len(reasons) > 0
}

// chanOrderSensitive classifies a range-over-channel body in a
// concurrent-collection package. Appending received values to a slice is
// the hazard: with more than one sender, arrival order is goroutine
// scheduling order, and the append bakes it into the result. Everything
// a worker loop legitimately does passes — calls (dispatching the work),
// indexed writes into pre-sized slices (results[i] = r is placed by
// identity, not arrival), map writes, scalar reductions — and appended
// slices that a later statement of the same function sorts are fine.
func chanOrderSensitive(pkg *Package, file *ast.File, rng *ast.RangeStmt) (reasons []string) {
	var appendTargets []*ast.Ident
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, isBuiltin := builtinName(pkg, call); isBuiltin && name == "append" {
			if id := assignedIdent(rng.Body, call); id != nil {
				appendTargets = append(appendTargets, id)
			} else {
				reasons = append(reasons, "appends received values in arrival order")
			}
		}
		return true
	})
	for _, id := range appendTargets {
		if !sortedLater(pkg, file, rng, id) {
			reasons = append(reasons,
				"appends to "+id.Name+" in channel arrival order without sorting it afterwards")
		}
	}
	return reasons
}

// assignedIdent returns the identifier an `x = append(x, ...)` statement
// assigns to when the call is the sole RHS, nil otherwise.
func assignedIdent(body *ast.BlockStmt, call *ast.CallExpr) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || as.Rhs[0] != call || len(as.Lhs) != 1 {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			found = id
		}
		return true
	})
	return found
}

// sortedLater reports whether, after the range loop, the enclosing function
// passes id to a sort/slices call — the canonical deterministic-iteration
// idiom (collect keys, sort, iterate the slice).
func sortedLater(pkg *Package, file *ast.File, rng *ast.RangeStmt, id *ast.Ident) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	var fd *ast.FuncDecl
	for _, decl := range file.Decls {
		if f, ok := decl.(*ast.FuncDecl); ok && rng.Pos() >= f.Pos() && rng.End() <= f.End() {
			fd = f
			break
		}
	}
	if fd == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(pkg, arg, obj) {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// usesObject reports whether expr mentions the given object.
func usesObject(pkg *Package, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// builtinName identifies calls to Go builtins.
func builtinName(pkg *Package, call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
		return id.Name, true
	}
	return "", false
}

// isTypeConversion reports whether the call expression is a conversion.
func isTypeConversion(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// callName renders the callee for a reason chain.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "a function value"
	}
}

// finding assembles a Finding anchored at pos.
func (m *Module) finding(rule string, pkg *Package, file *ast.File, fileName string, pos token.Pos, msg string, reason []string) Finding {
	_, line, col := m.position(pos)
	return Finding{
		Rule:     rule,
		Severity: SevError,
		File:     fileName,
		Line:     line,
		Col:      col,
		Package:  pkg.ImportPath,
		Symbol:   symbolFor(file, pos),
		Message:  msg,
		Reason:   reason,
	}
}
