package srccheck

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads a testdata module and runs the full checker set with
// its canned escape-analysis output.
func loadFixture(t *testing.T, name string) (*Module, []Finding) {
	t.Helper()
	root := filepath.Join("testdata", name)
	cfg := DefaultConfig()
	if data, err := os.ReadFile(filepath.Join(root, "escapes.txt")); err == nil {
		cfg.Escapes = ParseEscapes(data)
	}
	mod, findings, err := Run(root, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", root, err)
	}
	return mod, findings
}

// TestViolationsFixture: the seeded-violation module must produce at least
// one finding for every rule the suite ships — the self-test that no
// checker silently stops firing.
func TestViolationsFixture(t *testing.T) {
	_, findings := loadFixture(t, "violations")
	byRule := map[string][]Finding{}
	for _, f := range findings {
		byRule[f.Rule] = append(byRule[f.Rule], f)
	}
	wantRules := []string{
		"det-time-now", "det-rand", "det-map-iter", "det-goroutine-order",
		"layer-leaf", "layer-forbid", "layer-only-from",
		"err-naked-errorf", "err-adhoc-new",
		"hotpath-alloc", "hotpath-append", "hotpath-closure", "hotpath-fmt",
		"hotpath-escape",
		"allow-malformed",
	}
	for _, rule := range wantRules {
		if len(byRule[rule]) == 0 {
			t.Errorf("rule %s: no finding from the seeded fixture", rule)
		}
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Package == "" || f.Message == "" || f.Severity == "" {
			t.Errorf("finding missing required fields: %+v", f)
		}
	}
	if !sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	}) {
		t.Error("findings are not position-sorted")
	}
}

// TestViolationsDetail pins the load-bearing specifics: the malformed
// allow does not suppress, the transitive layer chain is rendered, the
// map-iter rule reaches the serve output package, and canned escape diags
// land in the annotated function.
func TestViolationsDetail(t *testing.T) {
	_, findings := loadFixture(t, "violations")
	find := func(rule, file string) []Finding {
		var out []Finding
		for _, f := range findings {
			if f.Rule == rule && f.File == file {
				out = append(out, f)
			}
		}
		return out
	}

	// The reasonless //ddvet:allow must not suppress the det-time-now on
	// its following line: two time-now findings in core.go.
	if got := find("det-time-now", "internal/core/core.go"); len(got) != 2 {
		t.Errorf("det-time-now in core.go: got %d findings, want 2 (malformed allow must not suppress)", len(got))
	}
	if got := find("allow-malformed", "internal/core/core.go"); len(got) != 1 {
		t.Errorf("allow-malformed in core.go: got %d findings, want 1", len(got))
	}

	// sched -> memsys -> core renders the transitive chain.
	var chained bool
	for _, f := range find("layer-forbid", "internal/sched/sched.go") {
		for _, r := range f.Reason {
			if strings.Contains(r, "internal/sched -> internal/memsys -> internal/core") {
				chained = true
			}
		}
	}
	if !chained {
		t.Error("layer-forbid for sched lacks the transitive import chain in its reason")
	}

	// Output packages are in det-map-iter scope even though wall-clock is
	// allowed there.
	if got := find("det-map-iter", "internal/serve/serve.go"); len(got) != 1 {
		t.Errorf("det-map-iter in serve.go: got %d, want 1", len(got))
	}
	if got := find("det-time-now", "internal/serve/serve.go"); len(got) != 0 {
		t.Errorf("det-time-now must not apply to output-only packages, got %d", len(got))
	}

	// Concurrent-collection packages are in det-goroutine-order scope: the
	// arrival-order append fires and names the slice in its reason chain.
	gor := find("det-goroutine-order", "internal/serve/serve.go")
	if len(gor) != 1 {
		t.Errorf("det-goroutine-order in serve.go: got %d, want 1", len(gor))
	} else {
		var named bool
		for _, r := range gor[0].Reason {
			if strings.Contains(r, "appends to out") {
				named = true
			}
		}
		if !named {
			t.Errorf("det-goroutine-order reason chain does not name the slice: %v", gor[0].Reason)
		}
	}

	// Canned escape diags inside the annotated Drain become findings; the
	// inline/no-escape noise does not.
	if got := find("hotpath-escape", "internal/sched/sched.go"); len(got) != 2 {
		t.Errorf("hotpath-escape: got %d, want 2 (make + func literal)", len(got))
	}

	// The string([]byte(s)) double conversion yields two alloc findings on
	// one line, plus literal/concat/make sites elsewhere.
	if got := find("hotpath-alloc", "internal/sched/sched.go"); len(got) < 4 {
		t.Errorf("hotpath-alloc: got %d, want >= 4", len(got))
	}
}

// TestCleanFixture: every conforming idiom — sorted map iteration,
// commutative reductions, seeded rand, reasoned allows, panic messages in
// hot paths, allocation outside annotated functions — must pass silently.
func TestCleanFixture(t *testing.T) {
	_, findings := loadFixture(t, "clean")
	for _, f := range findings {
		t.Errorf("clean fixture produced a finding: %s", f)
	}
}

// TestRulesSubset: disabling checkers suppresses their findings.
func TestRulesSubset(t *testing.T) {
	root := filepath.Join("testdata", "violations")
	cfg := DefaultConfig()
	cfg.Rules = map[string]bool{"layering": true}
	_, findings, err := Run(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("layering-only run found nothing")
	}
	for _, f := range findings {
		if !strings.HasPrefix(f.Rule, "layer-") && f.Rule != "allow-malformed" {
			t.Errorf("unexpected rule %s with layering-only subset", f.Rule)
		}
	}
}

// TestRepoIsClean is the dogfood gate: the repository this checker ships
// in must satisfy its own invariants (AST rules; the compiler
// cross-validation runs in CI where a go toolchain build is guaranteed).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	_, findings, err := Run("../..", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo finding: %s", f)
	}
}

// TestLoadRepo sanity-checks the loader on the real module: the known
// packages exist, file names are root-relative, and the hotpath
// annotations on the engine are seen.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	mod, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"internal/core", "internal/memsys", "internal/sched", "internal/simerr", "cmd/ddvet"} {
		if mod.ByRel[want] == nil {
			t.Errorf("loader missed package %s", want)
		}
	}
	var symbols []string
	for _, hp := range mod.hotpaths {
		symbols = append(symbols, hp.pkg.RelPath+"."+funcSymbol(hp.decl))
	}
	for _, want := range []string{
		"internal/core.(*Core).cycle",
		"internal/memsys.(*Stream).Grant",
		"internal/sched.(*Sched).Add",
	} {
		found := false
		for _, s := range symbols {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("hotpath annotation on %s not seen (have %v)", want, symbols)
		}
	}
}
