package srccheck

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Rule: "det-time-now", File: "a.go", Line: 10, Symbol: "F", Message: "m1"},
		{Rule: "det-time-now", File: "a.go", Line: 10, Symbol: "F", Message: "m1"}, // dup collapses
		{Rule: "layer-forbid", File: "b.go", Line: 3, Symbol: "", Message: "m2"},
	}
	b := FromFindings(findings)
	if len(b.Entries) != 2 {
		t.Fatalf("FromFindings: %d entries, want 2 (dedup)", len(b.Entries))
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || got.Schema != BaselineSchema {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 0 {
		t.Fatalf("missing file should be empty baseline, got %d entries", len(b.Entries))
	}
}

func TestBaselineSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte(`{"schema":"ddvet-baseline/v99","entries":[]}`), 0o644)
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

// TestBaselineApply: identity is rule+file+symbol+message, so a line move
// stays baselined, while a new site (different symbol) is new; an entry
// matching nothing is reported stale.
func TestBaselineApply(t *testing.T) {
	b := FromFindings([]Finding{
		{Rule: "det-time-now", File: "a.go", Line: 10, Symbol: "F", Message: "m1"},
		{Rule: "err-adhoc-new", File: "gone.go", Line: 1, Symbol: "Old", Message: "paid off"},
	})
	current := []Finding{
		{Rule: "det-time-now", File: "a.go", Line: 99, Symbol: "F", Message: "m1"}, // moved: still baselined
		{Rule: "det-time-now", File: "a.go", Line: 50, Symbol: "G", Message: "m1"}, // new site
	}
	stale := b.Apply(current)
	if !current[0].Baselined {
		t.Error("line move lost its baseline identity")
	}
	if current[1].Baselined {
		t.Error("a finding at a new symbol must not inherit the baseline")
	}
	if len(stale) != 1 || stale[0].Symbol != "Old" {
		t.Errorf("stale = %+v, want the paid-off entry", stale)
	}
}
