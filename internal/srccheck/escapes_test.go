package srccheck

import "testing"

// TestParseEscapes: only heap-relevant diagnostics survive; inlining
// chatter, does-not-escape lines, and non-diagnostic output are dropped.
func TestParseEscapes(t *testing.T) {
	out := []byte(`# repro/internal/sched
internal/sched/sched.go:19:13: make([]uint64, n) escapes to heap
internal/sched/sched.go:12:6: can inline Wakes
internal/sched/sched.go:18:6: n does not escape
internal/core/core.go:7:2: moved to heap: t
go: downloading something irrelevant
internal/core/core.go:9:10: func literal escapes to heap
`)
	diags := ParseEscapes(out)
	if len(diags) != 3 {
		t.Fatalf("ParseEscapes: %d diags, want 3: %+v", len(diags), diags)
	}
	want := []EscapeDiag{
		{File: "internal/sched/sched.go", Line: 19, Col: 13, Msg: "make([]uint64, n) escapes to heap"},
		{File: "internal/core/core.go", Line: 7, Col: 2, Msg: "moved to heap: t"},
		{File: "internal/core/core.go", Line: 9, Col: 10, Msg: "func literal escapes to heap"},
	}
	for i, w := range want {
		if diags[i] != w {
			t.Errorf("diag[%d] = %+v, want %+v", i, diags[i], w)
		}
	}
}
