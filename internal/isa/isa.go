// Package isa defines the simulator's 32-bit load/store RISC instruction
// set: registers, opcodes, instruction formats, access-region hints, binary
// encoding and disassembly.
//
// The ISA is deliberately MIPS-flavoured (32 general-purpose registers with
// the usual $sp/$fp/$ra conventions, 32 floating-point registers) because
// the paper's stack-frame conventions — frames addressed from $sp, callee
// register save/restore, spill slots — are what the decoupling mechanism
// keys on. Instructions occupy one 4-byte slot of the address space each;
// the binary encoding used by the assembler is a fixed 64-bit word per
// instruction (see Encode).
package isa

import "fmt"

// WordBytes is the architectural word size in bytes. Frame sizes in the
// paper are reported in words of this size.
const WordBytes = 4

// InstBytes is the amount of address space occupied by one instruction.
// PC-relative offsets and branch targets are expressed in these units.
const InstBytes = 4

// Memory-map constants shared by the assembler, emulator and timing core.
// The stack grows down from StackBase; any data address inside
// [StackLimit, StackBase) is in the stack region and therefore "local" in
// the paper's sense.
const (
	TextBase   uint32 = 0x0040_0000 // bottom of the text segment
	DataBase   uint32 = 0x1000_0000 // bottom of the static data segment
	HeapBase   uint32 = 0x2000_0000 // bottom of the (bump-allocated) heap
	StackBase  uint32 = 0x7FFF_F000 // initial $sp (exclusive top of stack)
	StackLimit uint32 = StackBase - 16*1024*1024
)

// InStackRegion reports whether a data address falls inside the run-time
// stack region. This is the ground-truth access classification used for
// misclassification detection and for profiling.
func InStackRegion(addr uint32) bool {
	return addr >= StackLimit && addr < StackBase
}

// Reg identifies an architectural register: 0..31 are the integer
// registers r0..r31 (r0 is hardwired to zero), 32..63 are the
// floating-point registers f0..f31.
type Reg uint8

// NumRegs is the total number of architectural registers (GPRs + FPRs).
const NumRegs = 64

// Integer register conventions (MIPS o32 style).
const (
	RegZero Reg = 0 // hardwired zero
	RegAT   Reg = 1 // assembler temporary
	RegV0   Reg = 2 // return value
	RegV1   Reg = 3
	RegA0   Reg = 4 // first argument
	RegA1   Reg = 5
	RegA2   Reg = 6
	RegA3   Reg = 7
	RegT0   Reg = 8  // caller-saved temporaries t0..t7 = r8..r15
	RegS0   Reg = 16 // callee-saved s0..s7 = r16..r23
	RegT8   Reg = 24
	RegT9   Reg = 25
	RegK0   Reg = 26
	RegK1   Reg = 27
	RegGP   Reg = 28 // global pointer
	RegSP   Reg = 29 // stack pointer
	RegFP   Reg = 30 // frame pointer
	RegRA   Reg = 31 // return address
	RegF0   Reg = 32 // first floating-point register
)

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= 32 }

// GPR returns the integer register with index i (0..31).
func GPR(i int) Reg { return Reg(i) }

// FPR returns the floating-point register with index i (0..31).
func FPR(i int) Reg { return Reg(32 + i) }

var intRegNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional assembly name of the register,
// e.g. "$sp" or "$f12".
func (r Reg) String() string {
	if r < 32 {
		return "$" + intRegNames[r]
	}
	if r < 64 {
		return fmt.Sprintf("$f%d", r-32)
	}
	return fmt.Sprintf("$bad%d", uint8(r))
}

// RegByName resolves an assembly register name (without the leading '$')
// to a Reg. Both conventional names ("sp", "a0") and raw numeric names
// ("r29", "f4") are accepted.
func RegByName(name string) (Reg, bool) {
	for i, n := range intRegNames {
		if n == name {
			return Reg(i), true
		}
	}
	var idx int
	if n, err := fmt.Sscanf(name, "r%d", &idx); err == nil && n == 1 && idx >= 0 && idx < 32 {
		return Reg(idx), true
	}
	if n, err := fmt.Sscanf(name, "f%d", &idx); err == nil && n == 1 && idx >= 0 && idx < 32 {
		return FPR(idx), true
	}
	return 0, false
}

// Hint is the compiler-provided access-region classification carried by
// memory instructions (paper §2.2.3): it tells the dispatch stage which
// memory access queue the instruction should be steered to.
type Hint uint8

const (
	// HintNone marks an unclassified (ambiguous) memory access; the
	// hardware must decide the stream at run time.
	HintNone Hint = iota
	// HintLocal marks an access the compiler proved to be to the stack
	// region (a local variable, spill slot, argument or save area).
	HintLocal
	// HintNonLocal marks an access the compiler proved to be to global,
	// heap or other non-stack data.
	HintNonLocal
)

func (h Hint) String() string {
	switch h {
	case HintLocal:
		return "local"
	case HintNonLocal:
		return "nonlocal"
	default:
		return "none"
	}
}

// Class groups opcodes by the kind of functional unit and queue resources
// they consume in the timing model.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPALU // FP add/sub/compare/convert/move
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional jumps, calls, returns
	ClassSys    // HALT, OUT
)

var classNames = [...]string{
	"nop", "int-alu", "int-mul", "int-div", "fp-alu", "fp-mul", "fp-div",
	"load", "store", "branch", "jump", "sys",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// Format describes the operand shape of an opcode, used by the assembler
// and the disassembler.
type Format uint8

const (
	FmtNone Format = iota // op
	FmtR                  // op rd, rs, rt
	FmtR2                 // op rd, rs
	FmtI                  // op rd, rs, imm
	FmtLUI                // op rd, imm
	FmtMem                // op rd, imm(rs)      loads: rd = dest; stores use FmtMemS
	FmtMemS               // op rt, imm(rs)      rt = value stored
	FmtBr                 // op rs, rt, label    (pc-relative imm)
	FmtBrZ                // op rs, label
	FmtJ                  // op label            (absolute imm)
	FmtJR                 // op rs
	FmtJALR               // op rd, rs
	FmtOut                // op rs
)

// Op is an opcode.
type Op uint8

const (
	NOP Op = iota

	// Integer ALU.
	ADD
	SUB
	AND
	OR
	XOR
	NOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LUI

	// Integer multiply/divide.
	MUL
	DIV
	DIVU
	REM

	// Floating point (FP registers hold float64 values).
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FABS
	FMOV
	CVTIF // rd(fp) = float64(rs(gpr))
	CVTFI // rd(gpr) = int32(rs(fp)), truncating
	FCLT  // rd(gpr) = rs(fp) <  rt(fp)
	FCLE  // rd(gpr) = rs(fp) <= rt(fp)
	FCEQ  // rd(gpr) = rs(fp) == rt(fp)

	// Loads.
	LB
	LBU
	LH
	LHU
	LW
	FLW // load float32 into an FP register
	FLD // load float64 into an FP register

	// Stores.
	SB
	SH
	SW
	FSW // store FP register as float32
	FSD // store FP register as float64

	// Control transfer.
	BEQ
	BNE
	BLT
	BGE
	BLEZ
	BGTZ
	BLTZ
	BGEZ
	J
	JAL
	JR
	JALR

	// System.
	HALT
	OUT  // append rs (GPR, as int64) to the program's output trace
	FOUT // append rs (FPR) to the program's output trace

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// OpInfo is static metadata about an opcode.
type OpInfo struct {
	Name  string
	Class Class
	Fmt   Format
	// MemBytes is the access width for loads and stores, zero otherwise.
	MemBytes uint8
	// Unsigned marks zero-extending loads and unsigned compares/divides.
	Unsigned bool
}

var opTable = [numOps]OpInfo{
	NOP: {"nop", ClassNop, FmtNone, 0, false},

	ADD:  {"add", ClassIntALU, FmtR, 0, false},
	SUB:  {"sub", ClassIntALU, FmtR, 0, false},
	AND:  {"and", ClassIntALU, FmtR, 0, false},
	OR:   {"or", ClassIntALU, FmtR, 0, false},
	XOR:  {"xor", ClassIntALU, FmtR, 0, false},
	NOR:  {"nor", ClassIntALU, FmtR, 0, false},
	SLL:  {"sll", ClassIntALU, FmtR, 0, false},
	SRL:  {"srl", ClassIntALU, FmtR, 0, false},
	SRA:  {"sra", ClassIntALU, FmtR, 0, false},
	SLT:  {"slt", ClassIntALU, FmtR, 0, false},
	SLTU: {"sltu", ClassIntALU, FmtR, 0, true},
	ADDI: {"addi", ClassIntALU, FmtI, 0, false},
	ANDI: {"andi", ClassIntALU, FmtI, 0, false},
	ORI:  {"ori", ClassIntALU, FmtI, 0, false},
	XORI: {"xori", ClassIntALU, FmtI, 0, false},
	SLLI: {"slli", ClassIntALU, FmtI, 0, false},
	SRLI: {"srli", ClassIntALU, FmtI, 0, false},
	SRAI: {"srai", ClassIntALU, FmtI, 0, false},
	SLTI: {"slti", ClassIntALU, FmtI, 0, false},
	LUI:  {"lui", ClassIntALU, FmtLUI, 0, false},

	MUL:  {"mul", ClassIntMul, FmtR, 0, false},
	DIV:  {"div", ClassIntDiv, FmtR, 0, false},
	DIVU: {"divu", ClassIntDiv, FmtR, 0, true},
	REM:  {"rem", ClassIntDiv, FmtR, 0, false},

	FADD:  {"fadd", ClassFPALU, FmtR, 0, false},
	FSUB:  {"fsub", ClassFPALU, FmtR, 0, false},
	FMUL:  {"fmul", ClassFPMul, FmtR, 0, false},
	FDIV:  {"fdiv", ClassFPDiv, FmtR, 0, false},
	FNEG:  {"fneg", ClassFPALU, FmtR2, 0, false},
	FABS:  {"fabs", ClassFPALU, FmtR2, 0, false},
	FMOV:  {"fmov", ClassFPALU, FmtR2, 0, false},
	CVTIF: {"cvtif", ClassFPALU, FmtR2, 0, false},
	CVTFI: {"cvtfi", ClassFPALU, FmtR2, 0, false},
	FCLT:  {"fclt", ClassFPALU, FmtR, 0, false},
	FCLE:  {"fcle", ClassFPALU, FmtR, 0, false},
	FCEQ:  {"fceq", ClassFPALU, FmtR, 0, false},

	LB:  {"lb", ClassLoad, FmtMem, 1, false},
	LBU: {"lbu", ClassLoad, FmtMem, 1, true},
	LH:  {"lh", ClassLoad, FmtMem, 2, false},
	LHU: {"lhu", ClassLoad, FmtMem, 2, true},
	LW:  {"lw", ClassLoad, FmtMem, 4, false},
	FLW: {"flw", ClassLoad, FmtMem, 4, false},
	FLD: {"fld", ClassLoad, FmtMem, 8, false},

	SB:  {"sb", ClassStore, FmtMemS, 1, false},
	SH:  {"sh", ClassStore, FmtMemS, 2, false},
	SW:  {"sw", ClassStore, FmtMemS, 4, false},
	FSW: {"fsw", ClassStore, FmtMemS, 4, false},
	FSD: {"fsd", ClassStore, FmtMemS, 8, false},

	BEQ:  {"beq", ClassBranch, FmtBr, 0, false},
	BNE:  {"bne", ClassBranch, FmtBr, 0, false},
	BLT:  {"blt", ClassBranch, FmtBr, 0, false},
	BGE:  {"bge", ClassBranch, FmtBr, 0, false},
	BLEZ: {"blez", ClassBranch, FmtBrZ, 0, false},
	BGTZ: {"bgtz", ClassBranch, FmtBrZ, 0, false},
	BLTZ: {"bltz", ClassBranch, FmtBrZ, 0, false},
	BGEZ: {"bgez", ClassBranch, FmtBrZ, 0, false},
	J:    {"j", ClassJump, FmtJ, 0, false},
	JAL:  {"jal", ClassJump, FmtJ, 0, false},
	JR:   {"jr", ClassJump, FmtJR, 0, false},
	JALR: {"jalr", ClassJump, FmtJALR, 0, false},

	HALT: {"halt", ClassSys, FmtNone, 0, false},
	OUT:  {"out", ClassSys, FmtOut, 0, false},
	FOUT: {"fout", ClassSys, FmtOut, 0, false},
}

// Info returns the static metadata for op.
func (op Op) Info() OpInfo {
	if int(op) < NumOps {
		return opTable[op]
	}
	return OpInfo{Name: fmt.Sprintf("op%d", uint8(op))}
}

func (op Op) String() string { return op.Info().Name }

// OpByName resolves an assembly mnemonic to its opcode.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < numOps; op++ {
		m[opTable[op].Name] = op
	}
	return m
}()

// Inst is one decoded instruction. The operand fields are interpreted
// according to the opcode's Format:
//
//	FmtR:    Rd = f(Rs, Rt)
//	FmtR2:   Rd = f(Rs)
//	FmtI:    Rd = f(Rs, Imm)
//	FmtLUI:  Rd = Imm << 16
//	FmtMem:  Rd = mem[Rs+Imm]        (loads)
//	FmtMemS: mem[Rs+Imm] = Rt        (stores)
//	FmtBr:   if f(Rs, Rt): pc += Imm*InstBytes
//	FmtBrZ:  if f(Rs):     pc += Imm*InstBytes
//	FmtJ:    pc = Imm  (absolute byte address; JAL also writes $ra)
//	FmtJR:   pc = Rs
//	FmtJALR: Rd = return address; pc = Rs
type Inst struct {
	Op   Op
	Rd   Reg
	Rs   Reg
	Rt   Reg
	Imm  int32
	Hint Hint
}

// IsLoad reports whether the instruction reads data memory.
func (in Inst) IsLoad() bool { return in.Op.Info().Class == ClassLoad }

// IsStore reports whether the instruction writes data memory.
func (in Inst) IsStore() bool { return in.Op.Info().Class == ClassStore }

// IsMem reports whether the instruction accesses data memory.
func (in Inst) IsMem() bool {
	c := in.Op.Info().Class
	return c == ClassLoad || c == ClassStore
}

// MemBytes returns the data memory access width in bytes (0 for
// non-memory instructions).
func (in Inst) MemBytes() int { return int(in.Op.Info().MemBytes) }

// IsControl reports whether the instruction can redirect the PC.
func (in Inst) IsControl() bool {
	c := in.Op.Info().Class
	return c == ClassBranch || c == ClassJump
}

// IsCall reports whether the instruction is a procedure call.
func (in Inst) IsCall() bool { return in.Op == JAL || in.Op == JALR }

// IsReturn reports whether the instruction is (conventionally) a
// procedure return: a JR through $ra.
func (in Inst) IsReturn() bool { return in.Op == JR && in.Rs == RegRA }

// Dest returns the destination register, if any. JAL implicitly writes
// $ra.
func (in Inst) Dest() (Reg, bool) {
	switch in.Op.Info().Fmt {
	case FmtR, FmtR2, FmtI, FmtLUI, FmtMem, FmtJALR:
		return in.Rd, in.Rd != RegZero || in.Rd.IsFP()
	case FmtJ:
		if in.Op == JAL {
			return RegRA, true
		}
	}
	return 0, false
}

// Srcs returns the source registers. Reads of the hardwired $zero are
// reported — consumers that care filter them out.
func (in Inst) Srcs() (a, b Reg, na int) {
	switch in.Op.Info().Fmt {
	case FmtR, FmtBr:
		return in.Rs, in.Rt, 2
	case FmtR2, FmtI, FmtMem, FmtBrZ, FmtJR, FmtJALR, FmtOut:
		return in.Rs, 0, 1
	case FmtMemS:
		return in.Rs, in.Rt, 2 // base register and stored value
	default:
		return 0, 0, 0
	}
}

// BaseReg returns the address base register of a memory instruction.
func (in Inst) BaseReg() Reg { return in.Rs }

// String disassembles the instruction.
func (in Inst) String() string {
	info := in.Op.Info()
	hint := ""
	switch in.Hint {
	case HintLocal:
		hint = " !local"
	case HintNonLocal:
		hint = " !nonlocal"
	}
	switch info.Fmt {
	case FmtNone:
		return info.Name
	case FmtR:
		return fmt.Sprintf("%s %s, %s, %s", info.Name, in.Rd, in.Rs, in.Rt)
	case FmtR2:
		return fmt.Sprintf("%s %s, %s", info.Name, in.Rd, in.Rs)
	case FmtI:
		return fmt.Sprintf("%s %s, %s, %d", info.Name, in.Rd, in.Rs, in.Imm)
	case FmtLUI:
		return fmt.Sprintf("%s %s, %d", info.Name, in.Rd, in.Imm)
	case FmtMem:
		return fmt.Sprintf("%s %s, %d(%s)%s", info.Name, in.Rd, in.Imm, in.Rs, hint)
	case FmtMemS:
		return fmt.Sprintf("%s %s, %d(%s)%s", info.Name, in.Rt, in.Imm, in.Rs, hint)
	case FmtBr:
		return fmt.Sprintf("%s %s, %s, %d", info.Name, in.Rs, in.Rt, in.Imm)
	case FmtBrZ:
		return fmt.Sprintf("%s %s, %d", info.Name, in.Rs, in.Imm)
	case FmtJ:
		return fmt.Sprintf("%s 0x%x", info.Name, uint32(in.Imm))
	case FmtJR:
		return fmt.Sprintf("%s %s", info.Name, in.Rs)
	case FmtJALR:
		return fmt.Sprintf("%s %s, %s", info.Name, in.Rd, in.Rs)
	case FmtOut:
		return fmt.Sprintf("%s %s", info.Name, in.Rs)
	default:
		return info.Name
	}
}
