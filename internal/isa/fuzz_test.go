package isa

import (
	"encoding/binary"
	"testing"
)

// FuzzDecode checks that arbitrary 64-bit words either decode into an
// instruction that re-encodes to the same word, or return an error —
// never panic, never lose information.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(Inst{Op: ADD, Rd: RegV0, Rs: RegA0, Rt: RegA1}.Encode())
	f.Add(Inst{Op: SW, Rt: GPR(8), Rs: RegSP, Imm: -4, Hint: HintLocal}.Encode())
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, w uint64) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		if got := in.Encode(); got != w&^(0x3<<36)|uint64(in.Hint)<<36 {
			// Hint occupies its own field; everything else must survive.
			if got != w {
				t.Fatalf("re-encode of %#x gave %#x", w, got)
			}
		}
		_ = in.String() // must not panic
	})
}

// FuzzDecodeText checks the segment decoder on arbitrary byte strings.
func FuzzDecodeText(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeText([]Inst{{Op: HALT}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		text, err := DecodeText(data)
		if err != nil {
			return
		}
		round := EncodeText(text)
		if len(round) != len(data) {
			t.Fatalf("roundtrip length %d != %d", len(round), len(data))
		}
		for i := range data {
			if round[i] != data[i] {
				t.Fatalf("roundtrip byte %d differs", i)
			}
		}
		_ = binary.LittleEndian // keep import honest
	})
}
