package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding: each instruction is a fixed 64-bit little-endian word.
//
//	bits 63..56  opcode
//	bits 55..50  rd
//	bits 49..44  rs
//	bits 43..38  rt
//	bits 37..36  hint
//	bits 35..32  reserved (must be zero)
//	bits 31..0   imm (two's complement)
const (
	encOpShift   = 56
	encRdShift   = 50
	encRsShift   = 44
	encRtShift   = 38
	encHintShift = 36
	encRegMask   = 0x3F
	encHintMask  = 0x3
)

// Encode packs the instruction into its 64-bit binary form.
func (in Inst) Encode() uint64 {
	return uint64(in.Op)<<encOpShift |
		uint64(in.Rd&encRegMask)<<encRdShift |
		uint64(in.Rs&encRegMask)<<encRsShift |
		uint64(in.Rt&encRegMask)<<encRtShift |
		uint64(in.Hint&encHintMask)<<encHintShift |
		uint64(uint32(in.Imm))
}

// Decode unpacks a 64-bit binary instruction word. It returns an error for
// undefined opcodes or nonzero reserved bits.
func Decode(w uint64) (Inst, error) {
	op := Op(w >> encOpShift)
	if int(op) >= NumOps {
		return Inst{}, fmt.Errorf("isa: undefined opcode %d", uint8(op))
	}
	if w>>32&0xF != 0 {
		return Inst{}, fmt.Errorf("isa: reserved bits set in %#016x", w)
	}
	return Inst{
		Op:   op,
		Rd:   Reg(w >> encRdShift & encRegMask),
		Rs:   Reg(w >> encRsShift & encRegMask),
		Rt:   Reg(w >> encRtShift & encRegMask),
		Hint: Hint(w >> encHintShift & encHintMask),
		Imm:  int32(uint32(w)),
	}, nil
}

// EncodeText serializes a text segment to bytes (8 bytes per instruction,
// little endian).
func EncodeText(text []Inst) []byte {
	buf := make([]byte, 8*len(text))
	for i, in := range text {
		binary.LittleEndian.PutUint64(buf[8*i:], in.Encode())
	}
	return buf
}

// DecodeText deserializes a text segment produced by EncodeText.
func DecodeText(buf []byte) ([]Inst, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("isa: text segment length %d is not a multiple of 8", len(buf))
	}
	text := make([]Inst, len(buf)/8)
	for i := range text {
		in, err := Decode(binary.LittleEndian.Uint64(buf[8*i:]))
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		text[i] = in
	}
	return text, nil
}
