package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		RegZero: "$zero", RegSP: "$sp", RegFP: "$fp", RegRA: "$ra",
		RegA0: "$a0", RegV0: "$v0", GPR(8): "$t0", GPR(16): "$s0",
		FPR(0): "$f0", FPR(31): "$f31",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(r), got, want)
		}
	}
}

func TestRegByNameRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		name := strings.TrimPrefix(r.String(), "$")
		got, ok := RegByName(name)
		if !ok {
			t.Fatalf("RegByName(%q) not found", name)
		}
		if got != r {
			t.Errorf("RegByName(%q) = %v, want %v", name, got, r)
		}
	}
}

func TestRegByNameNumeric(t *testing.T) {
	if r, ok := RegByName("r29"); !ok || r != RegSP {
		t.Errorf("RegByName(r29) = %v,%v, want $sp", r, ok)
	}
	if r, ok := RegByName("f4"); !ok || r != FPR(4) {
		t.Errorf("RegByName(f4) = %v,%v, want $f4", r, ok)
	}
	for _, bad := range []string{"r32", "f32", "r-1", "x7", "", "sp7"} {
		if _, ok := RegByName(bad); ok {
			t.Errorf("RegByName(%q) unexpectedly resolved", bad)
		}
	}
}

func TestIsFP(t *testing.T) {
	if RegSP.IsFP() {
		t.Error("$sp claims to be FP")
	}
	if !FPR(0).IsFP() {
		t.Error("$f0 claims not to be FP")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v, want %v", op.String(), got, ok, op)
		}
	}
}

func TestOpTableComplete(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		info := op.Info()
		if info.Name == "" {
			t.Errorf("opcode %d has no metadata", uint8(op))
		}
		isMem := info.Class == ClassLoad || info.Class == ClassStore
		if isMem && info.MemBytes == 0 {
			t.Errorf("%v: memory opcode with zero width", op)
		}
		if !isMem && info.MemBytes != 0 {
			t.Errorf("%v: non-memory opcode with width %d", op, info.MemBytes)
		}
	}
}

func TestInstClassPredicates(t *testing.T) {
	tests := []struct {
		in                          Inst
		load, store, ctl, call, ret bool
	}{
		{Inst{Op: LW, Rd: RegV0, Rs: RegSP, Imm: 4}, true, false, false, false, false},
		{Inst{Op: FSD, Rt: FPR(2), Rs: RegSP, Imm: 8}, false, true, false, false, false},
		{Inst{Op: BEQ, Rs: RegA0, Rt: RegA1, Imm: -3}, false, false, true, false, false},
		{Inst{Op: JAL, Imm: int32(TextBase)}, false, false, true, true, false},
		{Inst{Op: JALR, Rd: RegRA, Rs: RegT0}, false, false, true, true, false},
		{Inst{Op: JR, Rs: RegRA}, false, false, true, false, true},
		{Inst{Op: JR, Rs: RegT0}, false, false, true, false, false},
		{Inst{Op: ADD, Rd: RegV0, Rs: RegA0, Rt: RegA1}, false, false, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.in.IsLoad(); got != tt.load {
			t.Errorf("%v IsLoad=%v want %v", tt.in, got, tt.load)
		}
		if got := tt.in.IsStore(); got != tt.store {
			t.Errorf("%v IsStore=%v want %v", tt.in, got, tt.store)
		}
		if got := tt.in.IsControl(); got != tt.ctl {
			t.Errorf("%v IsControl=%v want %v", tt.in, got, tt.ctl)
		}
		if got := tt.in.IsCall(); got != tt.call {
			t.Errorf("%v IsCall=%v want %v", tt.in, got, tt.call)
		}
		if got := tt.in.IsReturn(); got != tt.ret {
			t.Errorf("%v IsReturn=%v want %v", tt.in, got, tt.ret)
		}
	}
}

func TestDest(t *testing.T) {
	if d, ok := (Inst{Op: ADD, Rd: RegV0}).Dest(); !ok || d != RegV0 {
		t.Errorf("add dest = %v,%v", d, ok)
	}
	if _, ok := (Inst{Op: ADD, Rd: RegZero}).Dest(); ok {
		t.Error("write to $zero reported as a destination")
	}
	if d, ok := (Inst{Op: JAL}).Dest(); !ok || d != RegRA {
		t.Errorf("jal dest = %v,%v, want $ra", d, ok)
	}
	if _, ok := (Inst{Op: SW, Rt: GPR(8), Rs: RegSP}).Dest(); ok {
		t.Error("store reported a destination")
	}
	if d, ok := (Inst{Op: FLD, Rd: FPR(0), Rs: RegSP}).Dest(); !ok || d != FPR(0) {
		t.Errorf("fld dest = %v,%v, want $f0", d, ok)
	}
}

func TestSrcs(t *testing.T) {
	a, b, n := Inst{Op: SW, Rt: GPR(9), Rs: RegSP}.Srcs()
	if n != 2 || a != RegSP || b != GPR(9) {
		t.Errorf("sw srcs = %v,%v,%d", a, b, n)
	}
	a, _, n = Inst{Op: LW, Rd: GPR(8), Rs: RegSP}.Srcs()
	if n != 1 || a != RegSP {
		t.Errorf("lw srcs = %v,%d", a, n)
	}
	_, _, n = Inst{Op: J, Imm: 0}.Srcs()
	if n != 0 {
		t.Errorf("j srcs n=%d", n)
	}
	a, b, n = Inst{Op: BNE, Rs: RegA0, Rt: RegA1}.Srcs()
	if n != 2 || a != RegA0 || b != RegA1 {
		t.Errorf("bne srcs = %v,%v,%d", a, b, n)
	}
}

func TestInStackRegion(t *testing.T) {
	if !InStackRegion(StackBase - 4) {
		t.Error("address just below stack base not in stack region")
	}
	if InStackRegion(StackBase) {
		t.Error("stack base itself should be exclusive")
	}
	if InStackRegion(DataBase) || InStackRegion(HeapBase) || InStackRegion(TextBase) {
		t.Error("non-stack segment classified as stack")
	}
	if InStackRegion(StackLimit - 1) {
		t.Error("below stack limit classified as stack")
	}
}

func TestMemBytes(t *testing.T) {
	widths := map[Op]int{LB: 1, LBU: 1, LH: 2, LHU: 2, LW: 4, FLW: 4, FLD: 8, SB: 1, SH: 2, SW: 4, FSW: 4, FSD: 8, ADD: 0}
	for op, want := range widths {
		if got := (Inst{Op: op}).MemBytes(); got != want {
			t.Errorf("%v width = %d, want %d", op, got, want)
		}
	}
}

func TestHintString(t *testing.T) {
	if HintLocal.String() != "local" || HintNonLocal.String() != "nonlocal" || HintNone.String() != "none" {
		t.Error("Hint.String mismatch")
	}
}

func TestInstStringForms(t *testing.T) {
	cases := map[string]Inst{
		"add $v0, $a0, $a1":        {Op: ADD, Rd: RegV0, Rs: RegA0, Rt: RegA1},
		"addi $sp, $sp, -32":       {Op: ADDI, Rd: RegSP, Rs: RegSP, Imm: -32},
		"lw $t0, 8($sp) !local":    {Op: LW, Rd: GPR(8), Rs: RegSP, Imm: 8, Hint: HintLocal},
		"sw $t0, 8($gp) !nonlocal": {Op: SW, Rt: GPR(8), Rs: RegGP, Imm: 8, Hint: HintNonLocal},
		"jr $ra":                   {Op: JR, Rs: RegRA},
		"nop":                      {Op: NOP},
		"fadd $f2, $f0, $f1":       {Op: FADD, Rd: FPR(2), Rs: FPR(0), Rt: FPR(1)},
		"beq $a0, $a1, -3":         {Op: BEQ, Rs: RegA0, Rt: RegA1, Imm: -3},
		"out $v0":                  {Op: OUT, Rs: RegV0},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// normalizeInst masks the random instruction fields into their legal
// ranges so Encode/Decode roundtrips are well-defined.
func normalizeInst(in Inst) Inst {
	in.Op = Op(uint8(in.Op) % uint8(NumOps))
	in.Rd &= 0x3F
	in.Rs &= 0x3F
	in.Rt &= 0x3F
	in.Hint = Hint(uint8(in.Hint) % 3)
	return in
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	prop := func(in Inst) bool {
		in = normalizeInst(in)
		dec, err := Decode(in.Encode())
		return err == nil && dec == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	if _, err := Decode(uint64(255) << 56); err == nil {
		t.Error("undefined opcode decoded without error")
	}
}

func TestDecodeRejectsReservedBits(t *testing.T) {
	w := Inst{Op: ADD}.Encode() | 1<<33
	if _, err := Decode(w); err == nil {
		t.Error("reserved bits accepted")
	}
}

func TestEncodeTextRoundTrip(t *testing.T) {
	text := []Inst{
		{Op: ADDI, Rd: RegSP, Rs: RegSP, Imm: -64},
		{Op: SW, Rt: RegRA, Rs: RegSP, Imm: 60, Hint: HintLocal},
		{Op: JAL, Imm: int32(TextBase + 40)},
		{Op: HALT},
	}
	got, err := DecodeText(EncodeText(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(text) {
		t.Fatalf("got %d instructions, want %d", len(got), len(text))
	}
	for i := range text {
		if got[i] != text[i] {
			t.Errorf("inst %d: got %v, want %v", i, got[i], text[i])
		}
	}
}

func TestDecodeTextBadLength(t *testing.T) {
	if _, err := DecodeText(make([]byte, 9)); err == nil {
		t.Error("odd-length text accepted")
	}
}
