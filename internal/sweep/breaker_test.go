package sweep

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Second)

	for i := 0; i < 2; i++ {
		b.transient(now)
		if !b.acquire(now) {
			t.Fatalf("breaker opened after %d failures (threshold 3)", i+1)
		}
	}
	b.transient(now)
	if state, opens := b.snapshot(); state != breakerOpen || opens != 1 {
		t.Fatalf("after threshold: state=%v opens=%d", state, opens)
	}
	if b.acquire(now.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker admitted a job before cooldown")
	}
	if b.admittable(now.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker reported admittable before cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, time.Second)
	b.transient(now) // threshold 1: open immediately

	after := now.Add(time.Second)
	if !b.admittable(after) {
		t.Fatal("cooldown passed but not admittable")
	}
	if !b.acquire(after) {
		t.Fatal("cooldown passed but probe denied")
	}
	if state, _ := b.snapshot(); state != breakerHalfOpen {
		t.Fatalf("state=%v, want half-open", state)
	}
	// Exactly one probe: a second acquire must be denied while it's out.
	if b.acquire(after) {
		t.Fatal("second job admitted during half-open probe")
	}

	// Probe success closes the breaker.
	b.success()
	if state, _ := b.snapshot(); state != breakerClosed {
		t.Fatalf("after probe success: state=%v", state)
	}
	if !b.acquire(after) {
		t.Fatal("closed breaker denied a job")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, time.Second)
	b.transient(now)

	probeAt := now.Add(time.Second)
	if !b.acquire(probeAt) {
		t.Fatal("probe denied")
	}
	b.transient(probeAt)
	if state, opens := b.snapshot(); state != breakerOpen || opens != 2 {
		t.Fatalf("failed probe: state=%v opens=%d", state, opens)
	}
	// A fresh cooldown applies from the probe failure.
	if b.acquire(probeAt.Add(500 * time.Millisecond)) {
		t.Fatal("reopened breaker admitted a job mid-cooldown")
	}
	if !b.acquire(probeAt.Add(time.Second)) {
		t.Fatal("reopened breaker denied the next probe after cooldown")
	}
}

// Terminal outcomes prove the backend responsive: they reset the streak
// and close the breaker rather than tripping it.
func TestBreakerTerminalResets(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(2, time.Second)
	b.transient(now)
	b.terminal()
	b.transient(now)
	if state, _ := b.snapshot(); state != breakerClosed {
		t.Fatalf("streak survived a terminal outcome: state=%v", state)
	}
}

// An abandoned acquire (cancelled hedge loser) frees the half-open probe
// slot so the backend is not wedged.
func TestBreakerAbandonFreesProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, time.Second)
	b.transient(now)

	probeAt := now.Add(time.Second)
	if !b.acquire(probeAt) {
		t.Fatal("probe denied")
	}
	b.abandon()
	if !b.admittable(probeAt) {
		t.Fatal("abandoned probe slot not freed")
	}
	if !b.acquire(probeAt) {
		t.Fatal("re-probe denied after abandon")
	}
	b.success()
	if state, _ := b.snapshot(); state != breakerClosed {
		t.Fatalf("state=%v, want closed", state)
	}
}
