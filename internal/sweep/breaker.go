package sweep

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	// breakerClosed: traffic flows; consecutive transient failures are
	// counted and trip the breaker open at the threshold.
	breakerClosed breakerState = iota
	// breakerOpen: no traffic until the cooldown passes, then the next
	// acquire becomes the half-open probe.
	breakerOpen
	// breakerHalfOpen: exactly one probe job is in flight; its outcome
	// closes the breaker or re-opens it for another cooldown.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker guards one backend. Transient failures (transport errors,
// sheds, retryable simerr kinds) feed it; terminal job failures prove
// the backend responsive and reset it instead.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool

	opens uint64 // census: closed/half-open -> open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// acquire asks to dispatch one job. Closed always admits; open admits
// nothing until the cooldown has passed, at which point the breaker
// goes half-open and admits exactly one probe; half-open admits nothing
// while the probe is out.
func (b *breaker) acquire(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// admittable mirrors acquire without side effects: dispatch uses it to
// filter candidates before committing to one with acquire.
func (b *breaker) admittable(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return now.Sub(b.openedAt) >= b.cooldown
	default: // half-open
		return !b.probing
	}
}

// abandon releases an acquire whose job never reached a verdict (a
// cancelled hedge loser): the half-open probe slot is freed so the next
// dispatch can probe instead.
func (b *breaker) abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// success records a completed job: the breaker closes and the failure
// streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
}

// transient records a transient failure at time now: a failed half-open
// probe re-opens immediately; a closed breaker opens once the streak
// reaches the threshold.
func (b *breaker) transient(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.opens++
	case breakerClosed:
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens++
		}
	}
}

// terminal records a terminal job failure: the backend answered, so the
// streak resets (and a half-open probe counts as a successful probe).
func (b *breaker) terminal() {
	b.success()
}

// snapshot returns the current state and the open-transition count.
func (b *breaker) snapshot() (breakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
