package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// stubResult is the deterministic JobResult a fake backend returns for a
// spec: a pure function of the job fields, so every stub (and every
// hedged duplicate) agrees — exactly the property real backends have.
func stubResult(spec serve.JobSpec) serve.JobResult {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%s|%v|%v|%d|%d",
		spec.Workload, spec.Ports, spec.Steer, spec.Engine,
		spec.Opt, spec.StaticOpt, spec.Combine, spec.MaxInsts)
	x := h.Sum64()
	cycles := 1000 + x%100000
	committed := 500 + x%50000
	steer := spec.Steer
	if steer == "" {
		steer = "hint"
	}
	return serve.JobResult{
		Schema:        serve.ResultSchema,
		Name:          spec.Workload,
		Config:        "(" + spec.Ports + ")",
		Scale:         spec.Scale,
		Steering:      steer,
		Cycles:        cycles,
		Committed:     committed,
		IPC:           float64(committed) / float64(cycles),
		Loads:         x % 1000,
		Stores:        x % 700,
		LocalFraction: float64(x%100) / 100,
		Misroutes:     x % 17,
	}
}

func respondJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func decodeSpec(t *testing.T, r *http.Request) serve.JobSpec {
	t.Helper()
	var spec serve.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		t.Errorf("stub got bad job body: %v", err)
	}
	return spec
}

// newStub starts a fake ddserve speaking the wire protocol: /readyz ok,
// /jobs handled by jobs (nil = always answer stubResult).
func newStub(t *testing.T, jobs http.HandlerFunc) *httptest.Server {
	t.Helper()
	if jobs == nil {
		jobs = func(w http.ResponseWriter, r *http.Request) {
			respondJSON(w, http.StatusOK, stubResult(decodeSpec(t, r)))
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/jobs", jobs)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func fastOpts(backends ...string) Options {
	return Options{
		Backends:      backends,
		MaxAttempts:   4,
		RetryBase:     time.Millisecond,
		RetryCap:      10 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
		DispatchWait:  500 * time.Millisecond,
	}
}

func testSpec() *Spec {
	return &Spec{
		Schema: SpecSchema, Name: "unit",
		Workloads: []string{"li", "go"}, Ports: []string{"2+0", "3+2"},
		Scale: 0.01,
	}
}

func runSweep(t *testing.T, spec *Spec, opts Options) (*Figure, *Census, error) {
	t.Helper()
	c, err := New(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c.Run(context.Background())
}

func figureBytes(t *testing.T, f *Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCoordinatorHappyPath(t *testing.T) {
	b0 := newStub(t, nil)
	fig, census, err := runSweep(t, testSpec(), fastOpts(b0.URL))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 4 || census.Completed != 4 || len(census.Failed) != 0 {
		t.Fatalf("points=%d completed=%d failed=%v", len(fig.Points), census.Completed, census.Failed)
	}
	if census.Outcomes["ok"] != 4 {
		t.Fatalf("outcomes: %v", census.Outcomes)
	}
	for i := 1; i < len(fig.Points); i++ {
		if fig.Points[i-1].Key >= fig.Points[i].Key {
			t.Fatalf("figure points not sorted: %q then %q", fig.Points[i-1].Key, fig.Points[i].Key)
		}
	}
	if fig.Schema != FigureSchema || fig.SpecID == "" || fig.Scale != 0.01 {
		t.Fatalf("figure header: %+v", fig)
	}
}

// The assembled figure is byte-identical regardless of backend count,
// parallelism or hedging: the defining determinism property.
func TestFigureByteIdentical(t *testing.T) {
	b0 := newStub(t, nil)
	ref, _, err := runSweep(t, testSpec(), Options{
		Backends: []string{b0.URL}, Parallel: 1,
		RetryBase: time.Millisecond, ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	refBytes := figureBytes(t, ref)

	b1, b2 := newStub(t, nil), newStub(t, nil)
	opts := fastOpts(b0.URL, b1.URL, b2.URL)
	opts.Parallel = 8
	opts.Hedge = time.Millisecond // hedge aggressively: duplicates must not change bytes
	fig, _, err := runSweep(t, testSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, figureBytes(t, fig)) {
		t.Fatalf("figure bytes differ across backend counts:\n--- 1 backend\n%s\n--- 3 backends\n%s",
			refBytes, figureBytes(t, fig))
	}
}

// Transient failures (retryable simerr kinds) are retried with backoff
// and the attempts land in the census as typed outcomes.
func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	flaky := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		spec := decodeSpec(t, r)
		if calls.Add(1) == 1 {
			respondJSON(w, http.StatusInternalServerError, serve.ErrorBody{
				Error: "livelock", Kind: "watchdog", Retryable: true,
			})
			return
		}
		respondJSON(w, http.StatusOK, stubResult(spec))
	})
	spec := &Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}}
	fig, census, err := runSweep(t, spec, fastOpts(flaky.URL))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 1 {
		t.Fatalf("point did not complete: %v", census.Failed)
	}
	if census.Outcomes["retried:watchdog"] != 1 {
		t.Fatalf("outcomes: %v", census.Outcomes)
	}
}

// A shed cools the backend for the server's Retry-After window: the
// retry waits it out and goes to the other backend.
func TestShedHonorsRetryAfter(t *testing.T) {
	shedder := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		respondJSON(w, http.StatusTooManyRequests, serve.ErrorBody{
			Error: "queue full", Kind: "queue-full", Retryable: true, RetryAfterSeconds: 1,
		})
	})
	ok := newStub(t, nil)
	spec := &Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}}

	start := time.Now()
	fig, census, err := runSweep(t, spec, fastOpts(shedder.URL, ok.URL))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 1 {
		t.Fatalf("point did not complete: %v", census.Failed)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retry ignored the 1s Retry-After hint (took %v)", elapsed)
	}
	if census.Outcomes["retried:shed:queue-full"] == 0 {
		t.Fatalf("outcomes: %v", census.Outcomes)
	}
	var shedB, okB BackendCensus
	for _, b := range census.Backends {
		switch b.URL {
		case shedder.URL:
			shedB = b
		case ok.URL:
			okB = b
		}
	}
	if shedB.Shed == 0 || okB.OK != 1 {
		t.Fatalf("backend census: shed=%+v ok=%+v", shedB, okB)
	}
}

// Terminal verdicts stop the point immediately — no retry burns a
// backend on a deterministic failure — and never trip the breaker.
func TestTerminalFailsFast(t *testing.T) {
	terminal := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		respondJSON(w, http.StatusUnprocessableEntity, serve.ErrorBody{
			Error: "cycle budget exhausted", Kind: "cycle-budget", Retryable: false,
		})
	})
	spec := &Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}}
	fig, census, err := runSweep(t, spec, fastOpts(terminal.URL))
	if !errors.Is(err, ErrPointsFailed) {
		t.Fatalf("got %v, want ErrPointsFailed", err)
	}
	if len(fig.Points) != 0 {
		t.Fatal("failed point produced figure data")
	}
	key := "li/2+0/hint/event/base"
	if reason := census.Failed[key]; !strings.Contains(reason, "cycle-budget") {
		t.Fatalf("failure not typed: %q (census %v)", reason, census.Failed)
	}
	b := census.Backends[0]
	if b.Dispatched != 1 || b.Terminal != 1 || b.BreakerState != "closed" {
		t.Fatalf("terminal retried or tripped breaker: %+v", b)
	}
	if census.Outcomes["terminal:cycle-budget"] != 1 {
		t.Fatalf("outcomes: %v", census.Outcomes)
	}
}

// A straggling backend is hedged: the duplicate on the second backend
// wins and the sweep finishes long before the straggler would have.
func TestHedgingFirstResultWins(t *testing.T) {
	slow := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		spec := decodeSpec(t, r)
		select {
		case <-r.Context().Done():
			return
		case <-time.After(10 * time.Second):
		}
		respondJSON(w, http.StatusOK, stubResult(spec))
	})
	fast := newStub(t, nil)
	spec := &Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}}
	opts := fastOpts(slow.URL, fast.URL)
	opts.Parallel = 1 // one point in flight: the primary choice is deterministic
	opts.Hedge = 50 * time.Millisecond

	start := time.Now()
	fig, census, err := runSweep(t, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 1 {
		t.Fatalf("point did not complete: %v", census.Failed)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedge did not rescue the straggler (took %v)", elapsed)
	}
	if census.Outcomes["hedge-launched"] != 1 || census.Outcomes["hedge-won"] != 1 {
		t.Fatalf("outcomes: %v", census.Outcomes)
	}
	for _, b := range census.Backends {
		if b.URL == fast.URL && b.HedgeWins != 1 {
			t.Fatalf("hedge win not credited: %+v", b)
		}
	}
}

// Consecutive transport failures open the backend's breaker and traffic
// diverts to the healthy one; the broken backend stops being hammered.
func TestBreakerDivertsTraffic(t *testing.T) {
	// Healthy /readyz but every /jobs connection is severed: the probe
	// cannot save us, only the breaker can.
	broken := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	ok := newStub(t, nil)
	opts := fastOpts(broken.URL, ok.URL)
	opts.Parallel = 1
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = time.Minute // stays open for the whole test

	fig, census, err := runSweep(t, testSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 4 {
		t.Fatalf("sweep incomplete: %v", census.Failed)
	}
	var brokenB BackendCensus
	for _, b := range census.Backends {
		if b.URL == broken.URL {
			brokenB = b
		}
	}
	if brokenB.BreakerOpens == 0 || brokenB.BreakerState != "open" {
		t.Fatalf("breaker never opened: %+v", brokenB)
	}
	// Once open, the broken backend saw at most threshold+a few dispatches,
	// not one per attempt of every point.
	if brokenB.Dispatched > 3 {
		t.Fatalf("open breaker did not divert traffic: %+v", brokenB)
	}
	if census.Outcomes["retried:transport"] == 0 {
		t.Fatalf("outcomes: %v", census.Outcomes)
	}
}

// With every backend refusing work the sweep fails typed — bounded
// attempts of bounded dispatch waits — rather than hanging.
func TestAllBackendsDownFailsTyped(t *testing.T) {
	draining := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		respondJSON(w, http.StatusServiceUnavailable, serve.ErrorBody{
			Error: "draining", Kind: "draining", Retryable: true, RetryAfterSeconds: 1,
		})
	})
	spec := &Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}}
	opts := fastOpts(draining.URL)
	opts.MaxAttempts = 2
	opts.DispatchWait = 100 * time.Millisecond

	fig, census, err := runSweep(t, spec, opts)
	if !errors.Is(err, ErrPointsFailed) {
		t.Fatalf("got %v, want ErrPointsFailed", err)
	}
	if len(fig.Points) != 0 || len(census.Failed) != 1 {
		t.Fatalf("fig=%d failed=%v", len(fig.Points), census.Failed)
	}
	if census.Outcomes["retries-exhausted"] != 1 {
		t.Fatalf("outcomes: %v", census.Outcomes)
	}
}

// A sweep killed mid-flight resumes from its checkpoint: only missing
// points re-run, and the final figure is byte-identical to an unbroken
// single-backend run.
func TestResumeByteIdentical(t *testing.T) {
	b0 := newStub(t, nil)
	ref, _, err := runSweep(t, testSpec(), fastOpts(b0.URL))
	if err != nil {
		t.Fatal(err)
	}
	refBytes := figureBytes(t, ref)

	ckPath := filepath.Join(t.TempDir(), "ck.json")

	// Phase 1: kill the sweep after 2 completed points.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	opts := fastOpts(b0.URL)
	opts.Parallel = 1
	opts.Checkpoint = ckPath
	opts.OnPoint = func(key, outcome string) {
		if outcome == "ok" && done.Add(1) == 2 {
			cancel()
		}
	}
	c, err := New(testSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Run(ctx); err == nil {
		t.Fatal("interrupted sweep reported success")
	}

	// Phase 2: resume. Only the missing points run; bytes match the
	// unbroken reference.
	var log strings.Builder
	opts2 := fastOpts(b0.URL)
	opts2.Checkpoint = ckPath
	opts2.Resume = true
	opts2.Log = &log
	c2, err := New(testSpec(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	fig, census, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if census.Resumed < 2 {
		t.Fatalf("resumed %d points, want >=2 (log: %s)", census.Resumed, log.String())
	}
	if census.Outcomes["resumed"] != census.Resumed {
		t.Fatalf("outcomes: %v", census.Outcomes)
	}
	if !bytes.Equal(refBytes, figureBytes(t, fig)) {
		t.Fatalf("resumed figure differs from reference:\n--- reference\n%s\n--- resumed\n%s",
			refBytes, figureBytes(t, fig))
	}

	// Phase 3: corrupt the checkpoint; the resume heals it (counted,
	// logged), re-runs everything, and the bytes still match.
	if err := os.WriteFile(ckPath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	var log3 strings.Builder
	opts3 := fastOpts(b0.URL)
	opts3.Checkpoint = ckPath
	opts3.Resume = true
	opts3.Log = &log3
	c3, err := New(testSpec(), opts3)
	if err != nil {
		t.Fatal(err)
	}
	fig3, census3, err := c3.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if census3.CheckpointResets != 1 || census3.Resumed != 0 {
		t.Fatalf("corrupt checkpoint not healed: resets=%d resumed=%d", census3.CheckpointResets, census3.Resumed)
	}
	if !strings.Contains(log3.String(), "treating as empty") {
		t.Fatalf("self-heal not logged: %q", log3.String())
	}
	if !bytes.Equal(refBytes, figureBytes(t, fig3)) {
		t.Fatal("healed re-run figure differs from reference")
	}
}

// New rejects unusable configurations before any job is sent.
func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(testSpec(), Options{}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("no backends: got %v", err)
	}
	bad := &Spec{Schema: SpecSchema, Workloads: []string{"nope"}, Ports: []string{"2+0"}}
	if _, err := New(bad, fastOpts("http://localhost:1")); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad spec: got %v", err)
	}
}

// Census rendering is deterministic (sorted iteration) so soak logs and
// CI artifacts diff cleanly.
func TestCensusRenderDeterministic(t *testing.T) {
	c := &Census{
		Points: 3, Completed: 2,
		Failed:   map[string]string{"b": "terminal: x", "a": "retries exhausted"},
		Outcomes: map[string]int{"ok": 2, "retried:transport": 1, "canceled": 1},
		Backends: []BackendCensus{{Name: "b0", URL: "u"}},
	}
	var r1, r2 strings.Builder
	c.Render(&r1)
	c.Render(&r2)
	if r1.String() != r2.String() {
		t.Fatal("render not deterministic")
	}
	out := r1.String()
	aIdx, bIdx := strings.Index(out, "FAILED a"), strings.Index(out, "FAILED b")
	if aIdx < 0 || bIdx < 0 || aIdx > bIdx {
		t.Fatalf("failures not sorted:\n%s", out)
	}
}
