// Package sweep is the distributed sweep coordinator behind the ddsweep
// tool: it expands a declarative sweep/v1 spec (workload x port-geometry
// x steering x engine grid with explicit exclusions) into simulation
// jobs and drives them across N ddserve backends, assembling one
// deterministic figure JSON at the end.
//
// The coordinator is fault-tolerant by construction:
//
//   - Multi-backend sharding with load-aware dispatch: each job goes to
//     a ready backend (health-probed via /readyz) with the fewest jobs
//     in flight.
//   - Bounded retries with exponential backoff that honors the server's
//     Retry-After hint on 429/503 sheds, so client backpressure follows
//     the service's own admission control.
//   - Hedged requests: a straggling job is re-issued on a second backend
//     after a hedge delay; the first result wins and the loser is
//     cancelled. Hedged duplicates are safe because a job's identity is
//     its full config key and identical in-flight jobs coalesce
//     server-side.
//   - Per-backend circuit breakers (closed/open/half-open): consecutive
//     transient failures — transport errors, sheds, retryable
//     simerr-taxonomy kinds — open the breaker and divert traffic;
//     after a cooldown one half-open probe job decides whether to close
//     it again. Terminal kinds (bad requests, deterministic budget
//     failures, contained panics) prove the backend responsive and
//     never trip the breaker: they are the point's failure, not the
//     backend's.
//   - A checkpoint file (sweepckpt/v1, atomic temp+rename after every
//     completed point) so -resume re-runs only the missing points. A
//     truncated, corrupt or stale-schema checkpoint is a counted,
//     logged, self-healing empty checkpoint — never a crash, never a
//     silent full re-run.
//
// The assembled figure JSON is deterministic: points are sorted by
// their canonical key and carry only simulation outputs (which are a
// pure function of config+program), so the bytes are identical
// regardless of backend count, hedging, retries, or the resume path.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// Schema tags of the three serialized artifacts.
const (
	SpecSchema       = "sweep/v1"
	FigureSchema     = "ddsweep-figure/v1"
	CheckpointSchema = "sweepckpt/v1"
)

// ErrBadSpec marks an unusable sweep spec (schema, dimensions,
// exclusions): a usage error, the caller's to fix.
var ErrBadSpec = errors.New("sweep: bad sweep spec")

// Spec is the declarative sweep/v1 grid. Every listed dimension is
// crossed with every other; Exclude removes individual points.
type Spec struct {
	Schema string `json:"schema"`
	// Name labels the sweep in the figure JSON and logs.
	Name string `json:"name,omitempty"`

	// Workloads and Ports are the mandatory dimensions: built-in
	// workload names and "(N+M)" port geometries.
	Workloads []string `json:"workloads"`
	Ports     []string `json:"ports"`
	// Steering, Engines and Modes default to one-element axes
	// ("hint", "event", "base"). Modes select the optimization level:
	// base (none), opt (dynamic forwarding + 2-way combining), static
	// (statically-proven pairs/groups only).
	Steering []string `json:"steering,omitempty"`
	Engines  []string `json:"engines,omitempty"`
	Modes    []string `json:"modes,omitempty"`

	// Scale is the workload scale factor (default 1.0), shared by every
	// point; per-point scale would break cross-point comparability.
	Scale float64 `json:"scale,omitempty"`
	// Combine overrides the combining width for opt/static modes.
	Combine int `json:"combine,omitempty"`
	// MaxInsts bounds committed instructions per point (0 = to halt).
	MaxInsts uint64 `json:"maxinsts,omitempty"`
	// TimeoutSeconds is the per-job attempt timeout submitted to the
	// backend (0 = the backend's default).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`

	// Exclude removes grid points: a point matching every set field of
	// any exclusion is dropped (empty field = wildcard).
	Exclude []Exclusion `json:"exclude,omitempty"`
}

// Exclusion is one point filter. Empty fields match anything.
type Exclusion struct {
	Workload string `json:"workload,omitempty"`
	Ports    string `json:"ports,omitempty"`
	Steering string `json:"steering,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Mode     string `json:"mode,omitempty"`
}

func (e Exclusion) matches(p Point) bool {
	match := func(want, got string) bool { return want == "" || want == got }
	return match(e.Workload, p.GP.Workload) &&
		match(e.Ports, p.GP.Ports) &&
		match(e.Steering, p.steering()) &&
		match(e.Engine, p.engine()) &&
		match(e.Mode, p.Mode)
}

// Point is one expanded grid coordinate: the shared GridPoint mapping
// plus the sweep-level mode name and the cached canonical key.
type Point struct {
	GP   experiments.GridPoint
	Mode string // base | opt | static
	Key  string
}

func (p Point) steering() string {
	if p.GP.Steering == "" {
		return "hint"
	}
	return p.GP.Steering
}

func (p Point) engine() string {
	if p.GP.Engine == "" {
		return "event"
	}
	return p.GP.Engine
}

// ParseSpec decodes and schema-gates a sweep/v1 spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if s.Schema != SpecSchema {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrBadSpec, s.Schema, SpecSchema)
	}
	return &s, nil
}

// normalize fills the defaulted axes in place.
func (s *Spec) normalize() {
	if len(s.Steering) == 0 {
		s.Steering = []string{"hint"}
	}
	if len(s.Engines) == 0 {
		s.Engines = []string{"event"}
	}
	if len(s.Modes) == 0 {
		s.Modes = []string{"base"}
	}
	if s.Scale == 0 {
		s.Scale = 1.0
	}
}

// Points expands the grid: every dimension crossed, exclusions applied,
// duplicates collapsed, the result sorted by canonical key. Every
// surviving point is validated through the shared GridPoint mapping, so
// a spec that expands cleanly cannot produce a 400 at submit time.
func (s *Spec) Points() ([]Point, error) {
	s.normalize()
	if len(s.Workloads) == 0 || len(s.Ports) == 0 {
		return nil, fmt.Errorf("%w: workloads and ports must be non-empty", ErrBadSpec)
	}
	if s.Scale < 0 {
		return nil, fmt.Errorf("%w: negative scale %g", ErrBadSpec, s.Scale)
	}
	seen := make(map[string]bool)
	var points []Point
	for _, w := range s.Workloads {
		if _, err := workload.ByName(w); err != nil {
			return nil, fmt.Errorf("%w: unknown workload %q", ErrBadSpec, w)
		}
		for _, ports := range s.Ports {
			for _, steer := range s.Steering {
				for _, engine := range s.Engines {
					for _, mode := range s.Modes {
						p := Point{
							GP: experiments.GridPoint{
								Workload: w,
								Ports:    ports,
								Steering: steer,
								Engine:   engine,
								Combine:  s.Combine,
								MaxInsts: s.MaxInsts,
							},
							Mode: mode,
						}
						switch mode {
						case "base":
						case "opt":
							p.GP.Opt = true
						case "static":
							p.GP.StaticOpt = true
						default:
							return nil, fmt.Errorf("%w: unknown mode %q (want base, opt or static)", ErrBadSpec, mode)
						}
						if _, err := p.GP.Config(); err != nil {
							return nil, fmt.Errorf("%w: point %s: %v", ErrBadSpec, p.GP.Key(), err)
						}
						if _, err := p.GP.RunEngine(); err != nil {
							return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
						}
						p.Key = p.GP.Key()
						excluded := false
						for _, ex := range s.Exclude {
							if ex.matches(p) {
								excluded = true
								break
							}
						}
						if excluded || seen[p.Key] {
							continue
						}
						seen[p.Key] = true
						points = append(points, p)
					}
				}
			}
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("%w: every point excluded", ErrBadSpec)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Key < points[j].Key })
	return points, nil
}

// ID is the spec's content hash, binding checkpoints and figures to the
// exact grid they belong to. It hashes the normalized spec JSON, whose
// field order is fixed by the struct, so the ID is deterministic.
func (s *Spec) ID() string {
	norm := *s
	norm.normalize()
	data, _ := json.Marshal(norm) // a struct of scalars and string slices cannot fail
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// FigurePoint is one completed point's simulation outputs: a pure
// function of config+program (no wall-clock, attempt or cache metadata),
// which is what makes the assembled figure byte-identical across
// backends, hedging, retries and resume.
type FigurePoint struct {
	Key      string `json:"key"`
	Workload string `json:"workload"`
	Ports    string `json:"ports"`
	Steering string `json:"steering"`
	Engine   string `json:"engine"`
	Mode     string `json:"mode"`

	Cycles        uint64  `json:"cycles"`
	Committed     uint64  `json:"committed"`
	IPC           float64 `json:"ipc"`
	Loads         uint64  `json:"loads"`
	Stores        uint64  `json:"stores"`
	LocalFraction float64 `json:"local_fraction"`
	Misroutes     uint64  `json:"misroutes"`
}

// Figure is the assembled sweep result: every completed point, sorted
// by key.
type Figure struct {
	Schema string        `json:"schema"`
	Name   string        `json:"name,omitempty"`
	SpecID string        `json:"spec_id"`
	Scale  float64       `json:"scale"`
	Points []FigurePoint `json:"points"`
}

// EncodeJSON writes the figure as indented JSON. The encoding is
// deterministic: struct field order is fixed and points are pre-sorted.
func (f *Figure) EncodeJSON(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encoding figure: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
