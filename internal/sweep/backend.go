package sweep

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// backend is one ddserve instance: its URL, probed readiness, in-flight
// load, Retry-After cooling window, circuit breaker and census counters.
type backend struct {
	url  string
	name string // short display label ("b0", "b1", ...)

	client *http.Client

	ready     atomic.Bool
	probed    atomic.Bool  // at least one probe completed
	inflight  atomic.Int64 // jobs currently posted
	coolUntil atomic.Int64 // unix nanos; Retry-After backpressure window

	br *breaker

	// census counters (atomics: bumped from many workers).
	dispatched, ok, transient, terminal, shed, hedgeWins atomic.Uint64
}

// dispatchable reports whether the backend may receive a job right now,
// without consuming the breaker's half-open probe slot.
func (b *backend) dispatchable(now time.Time) bool {
	if b.probed.Load() && !b.ready.Load() {
		return false
	}
	if now.UnixNano() < b.coolUntil.Load() {
		return false
	}
	return b.br.admittable(now)
}

// cool records a Retry-After hint: no dispatch to this backend until
// the window passes.
func (b *backend) cool(now time.Time, after time.Duration) {
	if after <= 0 {
		return
	}
	until := now.Add(after).UnixNano()
	for {
		cur := b.coolUntil.Load()
		if until <= cur || b.coolUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// probe checks /readyz once and updates readiness.
func (b *backend) probe(ctx context.Context) {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url+"/readyz", nil)
	if err != nil {
		b.ready.Store(false)
		b.probed.Store(true)
		return
	}
	resp, err := b.client.Do(req)
	if err != nil {
		b.ready.Store(false)
		b.probed.Store(true)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	b.ready.Store(resp.StatusCode == http.StatusOK)
	b.probed.Store(true)
}

// probeLoop re-probes readiness every interval until ctx ends.
func (b *backend) probeLoop(ctx context.Context, interval time.Duration, wg *sync.WaitGroup) {
	defer wg.Done()
	b.probe(ctx)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			b.probe(ctx)
		}
	}
}

// BackendCensus is one backend's contribution to the sweep census.
type BackendCensus struct {
	Name         string `json:"name"`
	URL          string `json:"url"`
	Dispatched   uint64 `json:"dispatched"`
	OK           uint64 `json:"ok"`
	Transient    uint64 `json:"transient"`
	Terminal     uint64 `json:"terminal"`
	Shed         uint64 `json:"shed"`
	HedgeWins    uint64 `json:"hedge_wins"`
	BreakerState string `json:"breaker_state"`
	BreakerOpens uint64 `json:"breaker_opens"`
}

func (b *backend) census() BackendCensus {
	state, opens := b.br.snapshot()
	return BackendCensus{
		Name:         b.name,
		URL:          b.url,
		Dispatched:   b.dispatched.Load(),
		OK:           b.ok.Load(),
		Transient:    b.transient.Load(),
		Terminal:     b.terminal.Load(),
		Shed:         b.shed.Load(),
		HedgeWins:    b.hedgeWins.Load(),
		BreakerState: state.String(),
		BreakerOpens: opens,
	}
}

func (c BackendCensus) String() string {
	return fmt.Sprintf("%s %s: dispatched=%d ok=%d transient=%d terminal=%d shed=%d hedge-wins=%d breaker=%s(opens=%d)",
		c.Name, c.URL, c.Dispatched, c.OK, c.Transient, c.Terminal, c.Shed, c.HedgeWins, c.BreakerState, c.BreakerOpens)
}
