package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
)

// ErrPointsFailed reports a finished sweep in which one or more points
// never produced a result: every failure is typed and in the census, and
// the assembled figure holds the points that did complete.
var ErrPointsFailed = errors.New("sweep: some points failed")

// Options configures a Coordinator. Zero values select the documented
// defaults; Backends is the only mandatory field.
type Options struct {
	// Backends are the ddserve base URLs ("http://host:port") jobs are
	// sharded across.
	Backends []string
	// Parallel is the number of concurrent points in flight across all
	// backends (default 2 x backends).
	Parallel int
	// MaxAttempts bounds the tries per point, hedges not counted
	// (default 6).
	MaxAttempts int
	// RetryBase/RetryCap shape the exponential backoff between attempts
	// (defaults 100ms / 3s). A server Retry-After hint longer than the
	// computed backoff wins.
	RetryBase time.Duration
	RetryCap  time.Duration
	// Hedge re-issues a still-running attempt on a second backend after
	// this delay; the first result wins and the loser is cancelled
	// (0 disables hedging). Hedged duplicates are idempotent: identical
	// in-flight jobs coalesce onto one simulation server-side.
	Hedge time.Duration
	// ProbeInterval is the /readyz health-probe period (default 1s).
	ProbeInterval time.Duration
	// BreakerThreshold consecutive transient failures open a backend's
	// circuit breaker (default 3); BreakerCooldown is how long it stays
	// open before the half-open probe (default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DispatchWait bounds how long one attempt waits for any backend to
	// admit the job (default 10s). Past it the attempt fails transient
	// ("no-backend") and the normal retry budget applies, so a sweep with
	// every backend down fails typed instead of hanging.
	DispatchWait time.Duration
	// Checkpoint is the sweepckpt/v1 path ("" disables); Resume loads it
	// and re-runs only the missing points.
	Checkpoint string
	Resume     bool
	// Seed seeds the backoff jitter (default 1; any fixed seed keeps
	// tests reproducible — jitter never reaches the figure bytes).
	Seed int64
	// Log receives progress and self-healing notices (default io.Discard).
	Log io.Writer
	// HTTPClient overrides the transport (default http.DefaultClient);
	// tests inject httptest clients here.
	HTTPClient *http.Client
	// OnPoint, if set, is called after every point reaches a terminal
	// state with its key and outcome ("ok", "resumed", "failed:<reason>").
	// Tests use it to kill a sweep mid-flight.
	OnPoint func(key, outcome string)
}

func (o *Options) setDefaults() error {
	if len(o.Backends) == 0 {
		return fmt.Errorf("%w: no backends", ErrBadSpec)
	}
	if o.Parallel <= 0 {
		o.Parallel = 2 * len(o.Backends)
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 6
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 3 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.DispatchWait <= 0 {
		o.DispatchWait = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	return nil
}

// Census is the sweep's accounting: where every point's every attempt
// went and how it ended. It is diagnostic output (stderr / artifact),
// deliberately separate from the deterministic figure JSON.
type Census struct {
	Points    int `json:"points"`
	Resumed   int `json:"resumed"`
	Completed int `json:"completed"`
	// Failed maps point key -> typed reason for points that never
	// produced a result.
	Failed map[string]string `json:"failed,omitempty"`
	// Outcomes counts every typed per-attempt and per-point event:
	// ok, resumed, retried:<reason>, hedge-launched, hedge-won,
	// hedge-lost, terminal:<kind>, retries-exhausted, canceled.
	Outcomes map[string]int `json:"outcomes"`
	// CheckpointResets counts defective checkpoints healed to empty;
	// CheckpointWriteErrs counts persists that failed (and were
	// swallowed: a broken disk costs resumability, not the sweep).
	CheckpointResets    int             `json:"checkpoint_resets"`
	CheckpointWriteErrs uint64          `json:"checkpoint_write_errs"`
	Backends            []BackendCensus `json:"backends"`
}

// EncodeJSON writes the census as indented JSON (encoding/json marshals
// maps in sorted key order, so the artifact is deterministic too).
func (c *Census) EncodeJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encoding census: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Render writes the census human-readably. Map iteration goes through
// sorted key slices so the rendering is deterministic.
func (c *Census) Render(w io.Writer) {
	fmt.Fprintf(w, "sweep census: %d points, %d resumed, %d completed, %d failed\n",
		c.Points, c.Resumed, c.Completed, len(c.Failed))
	outcomes := make([]string, 0, len(c.Outcomes))
	for k := range c.Outcomes {
		outcomes = append(outcomes, k)
	}
	sort.Strings(outcomes)
	for _, k := range outcomes {
		fmt.Fprintf(w, "  outcome %-20s %d\n", k, c.Outcomes[k])
	}
	failed := make([]string, 0, len(c.Failed))
	for k := range c.Failed {
		failed = append(failed, k)
	}
	sort.Strings(failed)
	for _, k := range failed {
		fmt.Fprintf(w, "  FAILED %s: %s\n", k, c.Failed[k])
	}
	for _, b := range c.Backends {
		fmt.Fprintf(w, "  backend %s\n", b)
	}
	if c.CheckpointResets > 0 || c.CheckpointWriteErrs > 0 {
		fmt.Fprintf(w, "  checkpoint: %d self-healing resets, %d write errors\n",
			c.CheckpointResets, c.CheckpointWriteErrs)
	}
}

// Coordinator drives one sweep across the configured backends.
type Coordinator struct {
	spec   *Spec
	points []Point
	opts   Options

	backends []*backend
	ck       *checkpoint

	mu       sync.Mutex // guards outcomes, failed, rng
	outcomes map[string]int
	failed   map[string]string
	rng      *rand.Rand
}

// New validates the spec and options and builds a Coordinator. Spec
// expansion happens here, so a bad grid fails before any job is sent.
func New(spec *Spec, opts Options) (*Coordinator, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	points, err := spec.Points()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		spec:     spec,
		points:   points,
		opts:     opts,
		outcomes: map[string]int{},
		failed:   map[string]string{},
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	for i, url := range opts.Backends {
		c.backends = append(c.backends, &backend{
			url:    strings.TrimRight(url, "/"),
			name:   fmt.Sprintf("b%d", i),
			client: opts.HTTPClient,
			br:     newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		})
	}
	return c, nil
}

// Run executes the sweep: resume from the checkpoint, drive the missing
// points through the backends, and assemble the figure. The figure and
// census are returned even on failure (partial figure, typed failures in
// the census); the error is ErrPointsFailed or the context's error.
func (c *Coordinator) Run(ctx context.Context) (*Figure, *Census, error) {
	specID := c.spec.ID()
	ck, resumed := openCheckpoint(c.opts.Checkpoint, specID, c.opts.Resume, c.opts.Log)
	c.ck = ck

	// Health probing runs for the whole sweep and is joined before Run
	// returns: no goroutine outlives the coordinator.
	probeCtx, stopProbes := context.WithCancel(context.Background())
	var probeWG sync.WaitGroup
	for _, b := range c.backends {
		probeWG.Add(1)
		go b.probeLoop(probeCtx, c.opts.ProbeInterval, &probeWG)
	}
	defer func() {
		stopProbes()
		probeWG.Wait()
	}()

	// results is indexed by point position: workers write disjoint slots,
	// so assembly needs no ordering from the workers at all.
	results := make([]*FigurePoint, len(c.points))
	todo := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.opts.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range todo {
				p := c.points[idx]
				fp, err := c.runPoint(ctx, p)
				if err != nil {
					c.failPoint(p.Key, err.Error())
					c.notify(p.Key, "failed:"+err.Error())
					continue
				}
				results[idx] = fp
				c.ck.record(fp)
				c.count("ok")
				c.notify(p.Key, "ok")
			}
		}()
	}

	dispatched := 0
feed:
	for idx, p := range c.points {
		if fp := c.ck.completed(p.Key); fp != nil {
			results[idx] = fp
			c.count("resumed")
			c.notify(p.Key, "resumed")
			continue
		}
		select {
		case todo <- idx:
			dispatched++
		case <-ctx.Done():
			break feed
		}
	}
	close(todo)
	wg.Wait()

	fmt.Fprintf(c.opts.Log, "ddsweep: %d points (%d resumed, %d dispatched)\n",
		len(c.points), resumed, dispatched)

	figure := &Figure{Schema: FigureSchema, Name: c.spec.Name, SpecID: specID, Scale: c.spec.Scale}
	for _, fp := range results {
		if fp != nil {
			figure.Points = append(figure.Points, *fp)
		}
	}
	census := c.buildCensus(resumed, len(figure.Points))

	switch {
	case ctx.Err() != nil:
		return figure, census, fmt.Errorf("sweep: interrupted: %w", ctx.Err())
	case len(census.Failed) > 0:
		return figure, census, fmt.Errorf("%w: %d of %d", ErrPointsFailed, len(census.Failed), len(c.points))
	default:
		return figure, census, nil
	}
}

func (c *Coordinator) buildCensus(resumed, completed int) *Census {
	c.mu.Lock()
	defer c.mu.Unlock()
	census := &Census{
		Points:              len(c.points),
		Resumed:             resumed,
		Completed:           completed,
		Outcomes:            make(map[string]int, len(c.outcomes)),
		CheckpointResets:    c.ck.resets,
		CheckpointWriteErrs: c.ck.writeErrs,
	}
	for k, v := range c.outcomes {
		census.Outcomes[k] = v
	}
	if len(c.failed) > 0 {
		census.Failed = make(map[string]string, len(c.failed))
		for k, v := range c.failed {
			census.Failed[k] = v
		}
	}
	for _, b := range c.backends {
		census.Backends = append(census.Backends, b.census())
	}
	return census
}

func (c *Coordinator) count(outcome string) {
	c.mu.Lock()
	c.outcomes[outcome]++
	c.mu.Unlock()
}

func (c *Coordinator) failPoint(key, reason string) {
	c.mu.Lock()
	c.failed[key] = reason
	c.mu.Unlock()
}

func (c *Coordinator) notify(key, outcome string) {
	if c.opts.OnPoint != nil {
		c.opts.OnPoint(key, outcome)
	}
}

// jitter returns a deterministic-seeded random duration in [0, d).
func (c *Coordinator) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(d)))
}

// backoff computes the delay before retry number attempt (1-based over
// completed attempts): exponential from RetryBase, capped at RetryCap,
// with up to 50% jitter; a longer server Retry-After hint wins.
func (c *Coordinator) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.opts.RetryBase
	for i := 1; i < attempt && d < c.opts.RetryCap; i++ {
		d *= 2
	}
	if d > c.opts.RetryCap {
		d = c.opts.RetryCap
	}
	d += c.jitter(d / 2)
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// runPoint drives one point to a terminal state: bounded attempts with
// backoff between them, each attempt possibly hedged. Terminal verdicts
// stop immediately — retrying a deterministic failure wastes a backend.
func (c *Coordinator) runPoint(ctx context.Context, p Point) (*FigurePoint, error) {
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		v := c.attempt(ctx, p)
		switch v.class {
		case verdictOK:
			return v.fp, nil
		case verdictTerminal:
			c.count("terminal:" + v.reason)
			return nil, fmt.Errorf("terminal: %s: %s", v.reason, v.detail)
		case verdictCanceled:
			c.count("canceled")
			return nil, ctx.Err()
		}
		if attempt == c.opts.MaxAttempts {
			break
		}
		c.count("retried:" + v.reason)
		delay := c.backoff(attempt, v.retryAfter)
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			c.count("canceled")
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	c.count("retries-exhausted")
	return nil, fmt.Errorf("retries exhausted after %d attempts", c.opts.MaxAttempts)
}

// verdict classes, in decreasing precedence when hedged posts disagree.
type verdictClass int

const (
	verdictOK verdictClass = iota
	verdictTerminal
	verdictTransient
	verdictCanceled
)

type verdict struct {
	class      verdictClass
	reason     string // stable discriminator for census outcome keys
	detail     string // human-readable specifics
	retryAfter time.Duration
	fp         *FigurePoint
	from       *backend
}

// attempt runs one (possibly hedged) try: the point goes to the least
// loaded admissible backend; if a hedge delay is configured and elapses
// without a result, a duplicate goes to a second backend and the first
// verdict wins. Losers are cancelled, not awaited to completion
// server-side — the runner coalesces the duplicate onto the winner's
// simulation anyway.
func (c *Coordinator) attempt(ctx context.Context, p Point) verdict {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	primary := c.waitBackend(actx, nil)
	if primary == nil {
		if ctx.Err() != nil {
			return verdict{class: verdictCanceled, reason: "canceled"}
		}
		return verdict{class: verdictTransient, reason: "no-backend",
			detail: "no ready backend admitted the job"}
	}

	verdicts := make(chan verdict, 2)
	var posts sync.WaitGroup
	posts.Add(1)
	go func() {
		defer posts.Done()
		verdicts <- c.post(actx, primary, p)
	}()
	launched := 1

	var hedgeCh <-chan time.Time
	if c.opts.Hedge > 0 {
		ht := time.NewTimer(c.opts.Hedge)
		defer ht.Stop()
		hedgeCh = ht.C
	}

	var final verdict
	decided := false
	for got := 0; got < launched; {
		select {
		case <-hedgeCh:
			hedgeCh = nil
			if decided {
				continue
			}
			// Only a different backend is worth a hedge; skip silently if
			// none will take it right now.
			if hb := c.pickBackend(time.Now(), primary); hb != nil {
				c.count("hedge-launched")
				launched++
				posts.Add(1)
				go func() {
					defer posts.Done()
					verdicts <- c.post(actx, hb, p)
				}()
			}
		case v := <-verdicts:
			got++
			switch {
			case decided:
				// The loser's verdict: our own cancel produced it unless the
				// loser finished on its own in the race window.
				if launched > 1 {
					c.count("hedge-lost")
				}
			case v.class == verdictOK || v.class == verdictTerminal:
				// First decisive answer wins; cancel the other post.
				final, decided = v, true
				if launched > 1 && v.class == verdictOK {
					c.count("hedge-won")
					v.from.hedgeWins.Add(1)
				}
				cancel()
			case got == launched && hedgeCh == nil:
				// Every post came back indecisive: the attempt fails with the
				// last transient reason (canceled only if the sweep itself is).
				final = v
			case v.class == verdictTransient:
				// One post failed transiently but another is (or may yet be)
				// in flight; remember the reason in case nothing better comes.
				final = v
			}
		case <-ctx.Done():
			cancel()
			posts.Wait()
			return verdict{class: verdictCanceled, reason: "canceled"}
		}
	}
	posts.Wait()
	if !decided && final.class == verdictCanceled && ctx.Err() == nil {
		// Both posts raced our hedge cancel; treat as transient.
		final = verdict{class: verdictTransient, reason: "hedge-race",
			detail: "both hedged posts cancelled each other"}
	}
	if !decided && final.reason == "" {
		final = verdict{class: verdictTransient, reason: "no-backend",
			detail: "no post launched"}
	}
	return final
}

// pickBackend returns the admissible backend with the fewest jobs in
// flight, excluding one (the hedge's primary), or nil. Candidates are
// filtered and ordered first; breaker acquisition — which may claim the
// single half-open probe slot — happens only in preference order.
func (c *Coordinator) pickBackend(now time.Time, exclude *backend) *backend {
	var cands []*backend
	for _, b := range c.backends {
		if b != exclude && b.dispatchable(now) {
			cands = append(cands, b)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].inflight.Load() < cands[j].inflight.Load()
	})
	for _, b := range cands {
		if b.br.acquire(now) {
			return b
		}
	}
	return nil
}

// waitBackend polls pickBackend until a backend admits the job, ctx
// ends, or DispatchWait expires. The poll period is short relative to
// probe intervals and breaker cooldowns, which are what actually gate
// admission.
func (c *Coordinator) waitBackend(ctx context.Context, exclude *backend) *backend {
	deadline := time.NewTimer(c.opts.DispatchWait)
	defer deadline.Stop()
	for {
		if b := c.pickBackend(time.Now(), exclude); b != nil {
			return b
		}
		t := time.NewTimer(25 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil
		case <-deadline.C:
			t.Stop()
			return nil
		case <-t.C:
		}
	}
}

// post submits the point to one backend and classifies the outcome. The
// classification implements the breaker contract: transport errors,
// sheds and retryable simerr kinds are transient (breaker failures);
// terminal kinds prove the backend responsive and reset the breaker —
// they are the point's failure, not the backend's.
func (c *Coordinator) post(ctx context.Context, b *backend, p Point) verdict {
	v := c.post1(ctx, b, p)
	v.from = b
	return v
}

func (c *Coordinator) post1(ctx context.Context, b *backend, p Point) verdict {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.dispatched.Add(1)

	spec := serve.JobSpec{
		Workload:       p.GP.Workload,
		Scale:          c.spec.Scale,
		Ports:          p.GP.Ports,
		Opt:            p.GP.Opt,
		Combine:        p.GP.Combine,
		StaticOpt:      p.GP.StaticOpt,
		Steer:          p.GP.Steering,
		Engine:         p.GP.Engine,
		MaxInsts:       p.GP.MaxInsts,
		TimeoutSeconds: c.spec.TimeoutSeconds,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		b.terminal.Add(1)
		b.br.terminal()
		return verdict{class: verdictTerminal, reason: "bad-spec", detail: err.Error()}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/jobs", bytes.NewReader(body))
	if err != nil {
		b.terminal.Add(1)
		b.br.terminal()
		return verdict{class: verdictTerminal, reason: "bad-url", detail: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")

	resp, err := b.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Our own cancel (hedge loser, sweep shutdown): not evidence
			// against the backend.
			b.br.abandon()
			return verdict{class: verdictCanceled, reason: "canceled"}
		}
		b.transient.Add(1)
		b.br.transient(time.Now())
		return verdict{class: verdictTransient, reason: "transport", detail: err.Error()}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	if resp.StatusCode == http.StatusOK {
		var res serve.JobResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil || res.Schema != serve.ResultSchema {
			detail := fmt.Sprintf("result schema %q", res.Schema)
			if err != nil {
				detail = err.Error()
			}
			b.transient.Add(1)
			b.br.transient(time.Now())
			return verdict{class: verdictTransient, reason: "bad-result", detail: detail}
		}
		b.ok.Add(1)
		b.br.success()
		return verdict{class: verdictOK, reason: "ok", fp: &FigurePoint{
			Key:           p.Key,
			Workload:      p.GP.Workload,
			Ports:         res.Config,
			Steering:      res.Steering,
			Engine:        p.engine(),
			Mode:          p.Mode,
			Cycles:        res.Cycles,
			Committed:     res.Committed,
			IPC:           res.IPC,
			Loads:         res.Loads,
			Stores:        res.Stores,
			LocalFraction: res.LocalFraction,
			Misroutes:     res.Misroutes,
		}}
	}

	var eb serve.ErrorBody
	decErr := json.NewDecoder(resp.Body).Decode(&eb)
	kind := eb.Kind
	if decErr != nil || kind == "" {
		kind = "http-" + strconv.Itoa(resp.StatusCode)
	}

	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// Shed or drain: the server told us when to come back. Cool this
		// backend for the window so other points avoid it too.
		after := retryAfterHint(resp, &eb)
		now := time.Now()
		b.cool(now, after)
		b.shed.Add(1)
		b.br.transient(now)
		return verdict{class: verdictTransient, reason: "shed:" + kind,
			detail: eb.Error, retryAfter: after}
	default:
		if eb.Retryable {
			b.transient.Add(1)
			b.br.transient(time.Now())
			return verdict{class: verdictTransient, reason: kind, detail: eb.Error}
		}
		b.terminal.Add(1)
		b.br.terminal()
		return verdict{class: verdictTerminal, reason: kind, detail: eb.Error}
	}
}

// retryAfterHint extracts the server's backpressure hint from the body
// field or the Retry-After header (seconds form).
func retryAfterHint(resp *http.Response, eb *serve.ErrorBody) time.Duration {
	if eb.RetryAfterSeconds > 0 {
		return time.Duration(eb.RetryAfterSeconds) * time.Second
	}
	if h := resp.Header.Get("Retry-After"); h != "" {
		if sec, err := strconv.Atoi(h); err == nil && sec > 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return 0
}
