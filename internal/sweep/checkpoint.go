package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// checkpointData is the sweepckpt/v1 on-disk form: every completed
// point's figure data, bound to the spec it belongs to.
type checkpointData struct {
	Schema string                  `json:"schema"`
	SpecID string                  `json:"spec_id"`
	Points map[string]*FigurePoint `json:"points"`
}

// checkpoint is the completed-point ledger. It follows the disk-cache
// policy proven in the service layer: a checkpoint only saves work, so
// every defect in the file — missing, truncated, corrupt JSON, stale
// schema, a different spec's ID — degrades to a counted, logged, empty
// checkpoint, never a crash and never a *silent* full re-run. Writes
// are atomic (temp file + rename), so a coordinator killed mid-write
// leaves the previous complete checkpoint, not a torn one.
type checkpoint struct {
	path string // "" disables persistence

	mu   sync.Mutex
	data checkpointData

	resets    int    // defective loads healed to empty
	writeErrs uint64 // failed persists (the sweep continues without them)
}

// openCheckpoint loads (resume) or initializes (fresh) the checkpoint at
// path. resumed is the number of completed points carried over; every
// self-healing reset and every overwrite is logged to logw.
func openCheckpoint(path, specID string, resume bool, logw io.Writer) (ck *checkpoint, resumed int) {
	ck = &checkpoint{
		path: path,
		data: checkpointData{Schema: CheckpointSchema, SpecID: specID, Points: map[string]*FigurePoint{}},
	}
	if path == "" {
		return ck, 0
	}
	data, err := os.ReadFile(path)
	if !resume {
		if err == nil {
			fmt.Fprintf(logw, "ddsweep: checkpoint %s exists and -resume is off: starting fresh (the old checkpoint will be overwritten)\n", path)
		}
		return ck, 0
	}
	switch {
	case os.IsNotExist(err):
		fmt.Fprintf(logw, "ddsweep: no checkpoint at %s: full run\n", path)
		return ck, 0
	case err != nil:
		ck.reset(logw, fmt.Sprintf("unreadable (%v)", err))
		return ck, 0
	}
	var loaded checkpointData
	switch {
	case json.Unmarshal(data, &loaded) != nil:
		ck.reset(logw, "corrupt or truncated")
	case loaded.Schema != CheckpointSchema:
		ck.reset(logw, fmt.Sprintf("stale schema %q (want %q)", loaded.Schema, CheckpointSchema))
	case loaded.SpecID != specID:
		ck.reset(logw, fmt.Sprintf("belongs to spec %s, this sweep is %s", loaded.SpecID, specID))
	case loaded.Points == nil:
		ck.reset(logw, "no point table")
	default:
		ck.data.Points = loaded.Points
		resumed = len(loaded.Points)
		fmt.Fprintf(logw, "ddsweep: resuming from %s: %d completed points carried over\n", path, resumed)
	}
	return ck, resumed
}

// reset heals a defective checkpoint to empty, counting and logging it.
func (ck *checkpoint) reset(logw io.Writer, reason string) {
	ck.resets++
	fmt.Fprintf(logw, "ddsweep: checkpoint %s is %s: treating as empty (full re-run)\n", ck.path, reason)
}

// completed returns the carried-over figure point for key, if any.
func (ck *checkpoint) completed(key string) *FigurePoint {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.data.Points[key]
}

// record persists fp as completed. The whole file is rewritten via temp
// + rename on every point: the checkpoint on disk is always a complete,
// valid snapshot. Persist failures are counted and swallowed — a broken
// disk costs resumability, not the sweep.
func (ck *checkpoint) record(fp *FigurePoint) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.data.Points[fp.Key] = fp
	if ck.path == "" {
		return
	}
	if err := ck.persistLocked(); err != nil {
		ck.writeErrs++
	}
}

func (ck *checkpoint) persistLocked() error {
	dir := filepath.Dir(ck.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(ck.path)+".tmp*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	encErr := enc.Encode(ck.data)
	closeErr := tmp.Close()
	if encErr != nil || closeErr != nil {
		os.Remove(tmp.Name())
		if encErr != nil {
			return encErr
		}
		return closeErr
	}
	if err := os.Rename(tmp.Name(), ck.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
