package sweep

import (
	"errors"
	"strings"
	"testing"
)

func TestParseSpecSchemaGate(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"schema":"sweep/v0","workloads":["li"],"ports":["2+0"]}`)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("stale schema: got %v, want ErrBadSpec", err)
	}
	if _, err := ParseSpec([]byte(`{not json`)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad JSON: got %v, want ErrBadSpec", err)
	}
	s, err := ParseSpec([]byte(`{"schema":"sweep/v1","workloads":["li"],"ports":["2+0"]}`))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if len(s.Workloads) != 1 || s.Workloads[0] != "li" {
		t.Fatalf("workloads not decoded: %+v", s)
	}
}

func TestPointsExpansionAndDefaults(t *testing.T) {
	s := &Spec{Schema: SpecSchema, Workloads: []string{"li", "go"}, Ports: []string{"2+0", "3+2"}}
	points, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i-1].Key >= points[i].Key {
			t.Fatalf("points not strictly sorted: %q then %q", points[i-1].Key, points[i].Key)
		}
	}
	for _, p := range points {
		if p.steering() != "hint" || p.engine() != "event" || p.Mode != "base" {
			t.Fatalf("defaults not applied: %+v", p)
		}
		if !strings.Contains(p.Key, p.GP.Workload) {
			t.Fatalf("key %q missing workload", p.Key)
		}
	}
	// Defaulted axes must have been filled in (the spec ID hashes them).
	if len(s.Steering) != 1 || len(s.Engines) != 1 || len(s.Modes) != 1 || s.Scale != 1.0 {
		t.Fatalf("normalize did not fill defaults: %+v", s)
	}
}

func TestPointsModesAndEngines(t *testing.T) {
	s := &Spec{
		Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"},
		Engines: []string{"event", "tick"}, Modes: []string{"base", "opt", "static"},
	}
	points, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	modes := map[string]int{}
	for _, p := range points {
		modes[p.Mode]++
		switch p.Mode {
		case "base":
			if p.GP.Opt || p.GP.StaticOpt {
				t.Fatalf("base point has optimizations on: %+v", p.GP)
			}
		case "opt":
			if !p.GP.Opt || p.GP.StaticOpt {
				t.Fatalf("opt point mismapped: %+v", p.GP)
			}
		case "static":
			if !p.GP.StaticOpt {
				t.Fatalf("static point mismapped: %+v", p.GP)
			}
		}
	}
	if modes["base"] != 2 || modes["opt"] != 2 || modes["static"] != 2 {
		t.Fatalf("mode counts wrong: %v", modes)
	}
}

func TestPointsExclusion(t *testing.T) {
	s := &Spec{
		Schema: SpecSchema, Workloads: []string{"li", "go"}, Ports: []string{"2+0", "3+2"},
		Exclude: []Exclusion{{Workload: "go", Ports: "3+2"}},
	}
	points, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3 after exclusion", len(points))
	}
	for _, p := range points {
		if p.GP.Workload == "go" && p.GP.Ports == "3+2" {
			t.Fatalf("excluded point survived: %q", p.Key)
		}
	}

	// A wildcard field matches anything: excluding workload "li" alone
	// drops every li point.
	s2 := &Spec{
		Schema: SpecSchema, Workloads: []string{"li", "go"}, Ports: []string{"2+0", "3+2"},
		Exclude: []Exclusion{{Workload: "li"}},
	}
	points2, err := s2.Points()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points2 {
		if p.GP.Workload == "li" {
			t.Fatalf("wildcard exclusion missed %q", p.Key)
		}
	}
	if len(points2) != 2 {
		t.Fatalf("got %d points, want 2", len(points2))
	}
}

func TestPointsDedup(t *testing.T) {
	s := &Spec{Schema: SpecSchema, Workloads: []string{"li", "li"}, Ports: []string{"2+0"}}
	points, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("duplicate axis entries not collapsed: %d points", len(points))
	}
}

func TestPointsErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no workloads", Spec{Schema: SpecSchema, Ports: []string{"2+0"}}},
		{"no ports", Spec{Schema: SpecSchema, Workloads: []string{"li"}}},
		{"unknown workload", Spec{Schema: SpecSchema, Workloads: []string{"nope"}, Ports: []string{"2+0"}}},
		{"bad ports", Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"banana"}}},
		{"bad steering", Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}, Steering: []string{"psychic"}}},
		{"bad engine", Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}, Engines: []string{"warp"}}},
		{"bad mode", Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}, Modes: []string{"turbo"}}},
		{"negative scale", Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}, Scale: -1}},
		{"all excluded", Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}, Exclude: []Exclusion{{}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Points(); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("got %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestSpecID(t *testing.T) {
	a := &Spec{Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"}}
	// Explicitly writing the defaults must hash identically: the ID is of
	// the normalized spec, so a checkpoint stays valid when a user later
	// spells out what was implicit.
	b := &Spec{
		Schema: SpecSchema, Workloads: []string{"li"}, Ports: []string{"2+0"},
		Steering: []string{"hint"}, Engines: []string{"event"}, Modes: []string{"base"}, Scale: 1.0,
	}
	if a.ID() != b.ID() {
		t.Fatalf("normalized IDs differ: %s vs %s", a.ID(), b.ID())
	}
	c := &Spec{Schema: SpecSchema, Workloads: []string{"go"}, Ports: []string{"2+0"}}
	if a.ID() == c.ID() {
		t.Fatal("different grids share an ID")
	}
	if a.ID() != a.ID() {
		t.Fatal("ID not stable")
	}
}
