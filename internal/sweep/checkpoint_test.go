package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The checkpoint lifecycle contract (mirroring the service disk cache):
// a checkpoint only saves work, so every defective file — truncated,
// corrupt, stale schema, another sweep's — degrades to a counted, logged,
// empty checkpoint. Never a crash, never a *silent* full re-run.

func testPoint(key string) *FigurePoint {
	return &FigurePoint{Key: key, Workload: "li", Ports: "(2+0)", Steering: "hint",
		Engine: "event", Mode: "base", Cycles: 1234, Committed: 567, IPC: 0.46}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	var log strings.Builder

	ck, resumed := openCheckpoint(path, "spec1", false, &log)
	if resumed != 0 || ck.resets != 0 {
		t.Fatalf("fresh checkpoint: resumed=%d resets=%d", resumed, ck.resets)
	}
	ck.record(testPoint("a"))
	ck.record(testPoint("b"))
	if ck.writeErrs != 0 {
		t.Fatalf("persist failed %d times", ck.writeErrs)
	}

	ck2, resumed := openCheckpoint(path, "spec1", true, &log)
	if resumed != 2 {
		t.Fatalf("resumed %d points, want 2", resumed)
	}
	if fp := ck2.completed("a"); fp == nil || fp.Cycles != 1234 {
		t.Fatalf("point a not carried over: %+v", fp)
	}
	if ck2.completed("missing") != nil {
		t.Fatal("phantom completed point")
	}
	if !strings.Contains(log.String(), "resuming from") {
		t.Fatalf("resume not logged: %q", log.String())
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	var log strings.Builder
	ck, resumed := openCheckpoint(filepath.Join(t.TempDir(), "none.json"), "s", true, &log)
	if resumed != 0 || ck.resets != 0 {
		t.Fatalf("missing file: resumed=%d resets=%d", resumed, ck.resets)
	}
	if !strings.Contains(log.String(), "full run") {
		t.Fatalf("missing checkpoint not logged: %q", log.String())
	}
}

// Every defect class heals to a counted, logged empty checkpoint.
func TestCheckpointSelfHealing(t *testing.T) {
	valid := func() []byte {
		data, _ := json.Marshal(checkpointData{
			Schema: CheckpointSchema, SpecID: "spec1",
			Points: map[string]*FigurePoint{"a": testPoint("a")},
		})
		return data
	}
	cases := []struct {
		name    string
		content []byte
		wantLog string
	}{
		{"corrupt", []byte("{{{{not json"), "corrupt or truncated"},
		{"truncated", valid()[:20], "corrupt or truncated"},
		{"empty file", nil, "corrupt or truncated"},
		{"stale schema", []byte(`{"schema":"sweepckpt/v0","spec_id":"spec1","points":{}}`), "stale schema"},
		{"wrong spec", []byte(`{"schema":"sweepckpt/v1","spec_id":"other","points":{}}`), "belongs to spec"},
		{"no point table", []byte(`{"schema":"sweepckpt/v1","spec_id":"spec1"}`), "no point table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ck.json")
			if err := os.WriteFile(path, tc.content, 0o644); err != nil {
				t.Fatal(err)
			}
			var log strings.Builder
			ck, resumed := openCheckpoint(path, "spec1", true, &log)
			if resumed != 0 {
				t.Fatalf("resumed %d from a defective checkpoint", resumed)
			}
			if ck.resets != 1 {
				t.Fatalf("resets=%d, want 1", ck.resets)
			}
			if !strings.Contains(log.String(), tc.wantLog) || !strings.Contains(log.String(), "treating as empty") {
				t.Fatalf("self-heal not logged as %q: %q", tc.wantLog, log.String())
			}
			// The healed checkpoint must still work: record and re-resume.
			ck.record(testPoint("b"))
			ck2, resumed := openCheckpoint(path, "spec1", true, &log)
			if resumed != 1 || ck2.completed("b") == nil {
				t.Fatalf("healed checkpoint unusable: resumed=%d", resumed)
			}
		})
	}
}

func TestCheckpointNoResumeOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	var log strings.Builder
	ck, _ := openCheckpoint(path, "spec1", false, &log)
	ck.record(testPoint("a"))

	// Reopening without -resume warns and starts empty.
	ck2, resumed := openCheckpoint(path, "spec1", false, &log)
	if resumed != 0 || ck2.completed("a") != nil {
		t.Fatal("resume-off checkpoint carried points over")
	}
	if !strings.Contains(log.String(), "starting fresh") {
		t.Fatalf("overwrite not warned: %q", log.String())
	}
}

// The file on disk is a complete valid snapshot after every record
// (atomic temp+rename), so a kill between points never leaves a torn
// checkpoint.
func TestCheckpointAlwaysCompleteOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	ck, _ := openCheckpoint(path, "spec1", false, os.Stderr)
	for _, key := range []string{"a", "b", "c"} {
		ck.record(testPoint(key))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var loaded checkpointData
		if err := json.Unmarshal(data, &loaded); err != nil {
			t.Fatalf("checkpoint torn after recording %q: %v", key, err)
		}
		if loaded.Schema != CheckpointSchema || loaded.SpecID != "spec1" {
			t.Fatalf("bad snapshot header: %+v", loaded)
		}
		if loaded.Points[key] == nil {
			t.Fatalf("point %q missing from snapshot", key)
		}
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestCheckpointDisabled(t *testing.T) {
	var log strings.Builder
	ck, resumed := openCheckpoint("", "spec1", true, &log)
	if resumed != 0 {
		t.Fatal("disabled checkpoint resumed points")
	}
	ck.record(testPoint("a")) // must not try to persist anywhere
	if ck.writeErrs != 0 {
		t.Fatal("disabled checkpoint counted a write error")
	}
	if ck.completed("a") == nil {
		t.Fatal("in-memory ledger should still work")
	}
}

// A persist failure costs resumability, never the sweep: record swallows
// it and counts it.
func TestCheckpointPersistFailureSwallowed(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "blocked")
	// Make the checkpoint's parent an unwritable *file* so MkdirAll and
	// CreateTemp both fail.
	if err := os.WriteFile(sub, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, _ := openCheckpoint(filepath.Join(sub, "ck.json"), "spec1", false, os.Stderr)
	ck.record(testPoint("a"))
	if ck.writeErrs != 1 {
		t.Fatalf("writeErrs=%d, want 1", ck.writeErrs)
	}
	if ck.completed("a") == nil {
		t.Fatal("in-memory ledger lost the point")
	}
}
