package serve

import (
	"os"
	"path/filepath"
	"testing"
)

func cacheFixtures(t *testing.T) (*diskCache, *resolvedJob) {
	t.Helper()
	c, err := newDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rj := &resolvedJob{
		identity: "w:li@0.1/strip=false|(3+2)",
		key:      "0123456789abcdef0123456789abcdef",
		shard:    "ab",
	}
	return c, rj
}

func sampleResult() *JobResult {
	return &JobResult{Schema: ResultSchema, Name: "li", Config: "(3+2)", Cycles: 4242, Committed: 1000}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	c, rj := cacheFixtures(t)
	if got := c.Get(rj); got != nil {
		t.Fatalf("cold get = %+v, want miss", got)
	}
	c.Put(rj, sampleResult())
	got := c.Get(rj)
	if got == nil {
		t.Fatal("get after put missed")
	}
	if !got.Cached {
		t.Fatal("hit not marked Cached")
	}
	if got.Cycles != 4242 || got.Name != "li" {
		t.Fatalf("hit payload = %+v", got)
	}
	s := c.stats()
	if s.Hits != 1 || s.Misses != 1 || s.Writes != 1 || s.Corrupt != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskCacheNilIsAlwaysMiss(t *testing.T) {
	var c *diskCache
	_, rj := cacheFixtures(t)
	if got := c.Get(rj); got != nil {
		t.Fatal("nil cache returned a hit")
	}
	c.Put(rj, sampleResult()) // must not panic
	if s := c.stats(); s != (cacheStats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
}

// corruptionCases enumerates the byte-level failure modes Get must absorb
// as counted misses: truncation, garbage, a wrong schema tag, and an
// entry aliased into the wrong slot (identity mismatch).
func TestDiskCacheCorruptEntriesAreMisses(t *testing.T) {
	cases := []struct {
		name    string
		content func(c *diskCache, rj *resolvedJob) []byte
	}{
		{"truncated", func(c *diskCache, rj *resolvedJob) []byte {
			c.Put(rj, sampleResult())
			data, err := os.ReadFile(c.path(rj))
			if err != nil {
				t.Fatal(err)
			}
			return data[:len(data)/2]
		}},
		{"garbage", func(*diskCache, *resolvedJob) []byte {
			return []byte("\x00\xffnot json at all")
		}},
		{"wrong-schema", func(*diskCache, *resolvedJob) []byte {
			return []byte(`{"schema":"ddserve-cache/v999","identity":"w:li@0.1/strip=false|(3+2)","result":{}}`)
		}},
		{"identity-mismatch", func(*diskCache, *resolvedJob) []byte {
			return []byte(`{"schema":"` + cacheSchema + `","identity":"w:other@1/strip=false|(2+0)","result":{}}`)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, rj := cacheFixtures(t)
			data := tc.content(c, rj)
			if err := os.MkdirAll(filepath.Dir(c.path(rj)), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(c.path(rj), data, 0o644); err != nil {
				t.Fatal(err)
			}
			if got := c.Get(rj); got != nil {
				t.Fatalf("corrupt entry served as hit: %+v", got)
			}
			if s := c.stats(); s.Corrupt != 1 {
				t.Fatalf("stats after corrupt read = %+v", s)
			}
			if _, err := os.Stat(c.path(rj)); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not cleared: stat err = %v", err)
			}
			// The slot heals: a fresh Put then Get round-trips.
			c.Put(rj, sampleResult())
			if got := c.Get(rj); got == nil || got.Cycles != 4242 {
				t.Fatalf("healed get = %+v", got)
			}
		})
	}
}

func TestDiskCachePutIsAtomicOnDisk(t *testing.T) {
	c, rj := cacheFixtures(t)
	c.Put(rj, sampleResult())
	// No temp droppings: exactly the final entry exists in the shard.
	entries, err := os.ReadDir(filepath.Join(c.dir, rj.shard))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != rj.key+".json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("shard contents = %v", names)
	}
}

func TestDiskCacheWriteErrorsAreSwallowed(t *testing.T) {
	c, rj := cacheFixtures(t)
	// Make the shard path unusable by planting a file where the shard
	// directory should go: MkdirAll fails, Put must degrade silently.
	if err := os.WriteFile(filepath.Join(c.dir, rj.shard), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c.Put(rj, sampleResult())
	if s := c.stats(); s.WriteErrs != 1 || s.Writes != 0 {
		t.Fatalf("stats = %+v", s)
	}
}
