package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
)

// cacheSchema versions the on-disk entry format; a mismatch is a miss, so
// old trees survive schema changes by recomputation, never by failure.
const cacheSchema = "ddserve-cache/v1"

// cacheEntry is one persisted result. Identity is the full (unhashed) job
// identity: reads verify it so a hash collision or a file renamed into
// the wrong slot degrades to a miss instead of serving a wrong result.
type cacheEntry struct {
	Schema   string    `json:"schema"`
	Identity string    `json:"identity"`
	Result   JobResult `json:"result"`
}

// diskCache is the persistent result cache, sharded by configuration key:
// entries live at <dir>/<shard>/<key>.json where shard derives from
// config.Key() and key from the full job identity. It is tolerant by
// construction — a corrupt, truncated, alien or unwritable entry is a
// miss (plus a counter and best-effort removal), never an error: the
// simulator is the source of truth and the cache only saves work. A nil
// *diskCache is a valid, always-missing cache.
type diskCache struct {
	dir string

	hits, misses, corrupt, writes, writeErrs atomic.Uint64
}

// newDiskCache opens (creating if needed) the cache rooted at dir; empty
// dir disables persistence (returns nil).
func newDiskCache(dir string) (*diskCache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskCache{dir: dir}, nil
}

func (c *diskCache) path(rj *resolvedJob) string {
	return filepath.Join(c.dir, rj.shard, rj.key+".json")
}

// Get returns the cached result for rj, or nil on any kind of miss.
func (c *diskCache) Get(rj *resolvedJob) *JobResult {
	if c == nil {
		return nil
	}
	path := c.path(rj)
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		return nil
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Schema != cacheSchema || e.Identity != rj.identity {
		// Corrupt, truncated, or aliased entry: recompute instead of
		// failing, and clear the slot so it heals on the next Put.
		c.corrupt.Add(1)
		c.misses.Add(1)
		os.Remove(path)
		return nil
	}
	c.hits.Add(1)
	res := e.Result
	res.Cached = true
	return &res
}

// Put persists res for rj. Failures are counted and swallowed: a broken
// disk degrades the service to cache-less operation, it does not take
// jobs down with it. The write is atomic (temp file + rename), so a
// crash mid-write leaves either the old entry or none — a reader can see
// a torn entry only through outside interference, and Get absorbs that.
func (c *diskCache) Put(rj *resolvedJob, res *JobResult) {
	if c == nil {
		return
	}
	stored := *res
	stored.Cached = false // a hit marks itself at read time
	shardDir := filepath.Join(c.dir, rj.shard)
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		c.writeErrs.Add(1)
		return
	}
	tmp, err := os.CreateTemp(shardDir, rj.key+".tmp*")
	if err != nil {
		c.writeErrs.Add(1)
		return
	}
	enc := json.NewEncoder(tmp)
	encErr := enc.Encode(cacheEntry{Schema: cacheSchema, Identity: rj.identity, Result: stored})
	closeErr := tmp.Close()
	if encErr != nil || closeErr != nil {
		os.Remove(tmp.Name())
		c.writeErrs.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), c.path(rj)); err != nil {
		os.Remove(tmp.Name())
		c.writeErrs.Add(1)
		return
	}
	c.writes.Add(1)
}

// cacheStats is the cache's contribution to /statz.
type cacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Corrupt   uint64 `json:"corrupt"`
	Writes    uint64 `json:"writes"`
	WriteErrs uint64 `json:"write_errors"`
}

func (c *diskCache) stats() cacheStats {
	if c == nil {
		return cacheStats{}
	}
	return cacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Corrupt:   c.corrupt.Load(),
		Writes:    c.writes.Load(),
		WriteErrs: c.writeErrs.Load(),
	}
}
