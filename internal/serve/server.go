// Package serve is the simulation-as-a-service layer: an HTTP service
// that accepts simulation jobs (config JSON + workload name or assembled
// program in, statistics JSON out) and is robust by construction.
//
// Robustness properties, each enforced structurally and proven by the
// service soak in internal/faultinject:
//
//   - Bounded everything: a fixed worker pool, an admission-controlled
//     queue with a global depth bound and per-client occupancy bound
//     (shed with 429 + Retry-After, never unbounded memory), a bounded
//     request body, and a rotation bound on the in-memory result cache.
//   - Fairness: queued work is dequeued round-robin across clients, so
//     one flooding client cannot starve the rest.
//   - Typed terminal states: every admitted job ends in a result, a
//     structured error JSON carrying the typed simerr kind (with the
//     pipeline snapshot), or a shed/drain rejection. Nothing hangs.
//   - Bounded retries: transient failures (watchdog, deadline — and
//     canceled/deadline aborts inherited from a shared in-flight run the
//     job did not own) retry with exponential backoff and jitter;
//     deterministic failures (panic, unsound config, cycle budgets) do
//     not.
//   - Cancellation: the client's request context propagates into the
//     running core, so a dropped client frees its worker within one
//     context-poll interval.
//   - Graceful drain: Shutdown stops intake (503), lets queued and
//     in-flight jobs finish inside the drain deadline, then force-cancels
//     stragglers; the persistent cache is write-through, so a drain never
//     loses completed work.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/simerr"
)

// Options configures a Server. The zero value of each field selects the
// documented default.
type Options struct {
	// Workers is the size of the simulation worker pool (default
	// min(GOMAXPROCS, 4)).
	Workers int
	// QueueDepth bounds the total number of queued jobs (default 64).
	QueueDepth int
	// MaxPerClient bounds one client's queued jobs (default 8).
	MaxPerClient int

	// MaxRetries is how many times a transiently-failed run is retried
	// beyond its first attempt (default 2). MaxRetries < 0 disables
	// retries.
	MaxRetries int
	// RetryBase is the first backoff step; step k waits
	// RetryBase·2^(k-1), ±50% jitter, capped at RetryCap (defaults 100ms
	// and 2s).
	RetryBase time.Duration
	RetryCap  time.Duration

	// JobTimeout caps one attempt's wall-clock time (default 60s); a
	// job's timeout_seconds may shorten but never exceed it.
	JobTimeout time.Duration
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxScale bounds a job's workload scale factor (default 1.0).
	MaxScale float64

	// CacheDir roots the persistent result cache; empty disables it.
	CacheDir string

	// RunOpts is the per-job run budget (MaxCycles, WatchdogCycles;
	// Deadline is ignored — wall-clock bounding is JobTimeout's job).
	RunOpts core.RunOptions
	// JobRunOpts, when non-nil, replaces RunOpts per attempt. The
	// service soak uses it to arm seeded per-run fault injectors; runs
	// whose options carry an injector bypass the result caches.
	JobRunOpts func(key string, attempt int) core.RunOptions

	// RunnerResultCap rotates the in-memory runner once it holds this
	// many distinct results (default 4096), bounding resident memory on
	// long-lived hosts; the persistent cache keeps rotation cheap.
	RunnerResultCap int
}

func (o *Options) fillDefaults() {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 4 {
			o.Workers = 4
		}
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.MaxPerClient == 0 {
		o.MaxPerClient = 8
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase == 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.RetryCap == 0 {
		o.RetryCap = 2 * time.Second
	}
	if o.JobTimeout == 0 {
		o.JobTimeout = 60 * time.Second
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxScale == 0 {
		o.MaxScale = 1.0
	}
	if o.RunnerResultCap == 0 {
		o.RunnerResultCap = 4096
	}
}

// Server is the simulation service. Create with New, expose via
// Handler, stop with Shutdown.
type Server struct {
	opts  Options
	q     *queue
	cache *diskCache

	// runner state, rotated under mu to bound in-memory growth.
	mu        sync.Mutex
	runner    *experiments.Runner
	programs  map[string]*asm.Program
	rotations uint64

	draining atomic.Bool
	// forceCtx is cancelled when the drain deadline passes: it aborts
	// in-flight runs and pending backoff sleeps.
	forceCtx    context.Context
	forceCancel context.CancelFunc

	wg    sync.WaitGroup
	start time.Time

	// counters for /statz
	submitted, completed, failed, canceledJobs  atomic.Uint64
	shedFull, shedClient, shedDraining, retries atomic.Uint64
	readyProbes                                 atomic.Uint64
	inFlight                                    atomic.Int64
	kindMu                                      sync.Mutex
	byKind                                      map[string]uint64

	// runHook, when non-nil, replaces the simulation call; serve's own
	// tests use it to model slow, failing and hanging runs determinist-
	// ically. The faultinject soak drives real runs instead.
	runHook func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error)
}

// New builds and starts a server: the worker pool is running on return.
func New(opts Options) (*Server, error) {
	opts.fillDefaults()
	cache, err := newDiskCache(opts.CacheDir)
	if err != nil {
		return nil, fmt.Errorf("serve: opening cache: %w", err)
	}
	s := &Server{
		opts:     opts,
		q:        newQueue(opts.QueueDepth, opts.MaxPerClient),
		cache:    cache,
		programs: make(map[string]*asm.Program),
		start:    time.Now(),
		byKind:   make(map[string]uint64),
	}
	s.runner = s.newRunner()
	s.forceCtx, s.forceCancel = context.WithCancel(context.Background())
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// newRunner builds a runner configured for service use. Scale is fixed at
// 1 and ignored: the service always runs jobs through the program
// keyspace with explicitly-scaled images, because one shared runner
// cannot hold per-job scale.
func (s *Server) newRunner() *experiments.Runner {
	r := experiments.NewRunner(1)
	r.RunOpts = s.opts.RunOpts
	return r
}

// currentRunner returns the live runner, rotating to a fresh one when the
// in-memory result cache has outgrown its cap. Jobs already running on
// the old runner finish on it; the persistent cache carries the results
// forward.
func (s *Server) currentRunner() *experiments.Runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runner.CachedResults() >= s.opts.RunnerResultCap {
		s.runner = s.newRunner()
		s.programs = make(map[string]*asm.Program)
		s.rotations++
	}
	return s.runner
}

// programFor memoizes workload program generation by (name, scale, strip)
// so repeated jobs do not regenerate images; the memo rotates with the
// runner.
func (s *Server) programFor(rj *resolvedJob) *asm.Program {
	if rj.isProg {
		return rj.prog
	}
	name := rj.runnerName()
	s.mu.Lock()
	prog, ok := s.programs[name]
	s.mu.Unlock()
	if ok {
		return prog
	}
	prog = rj.program() // generated outside the lock: can be slow
	s.mu.Lock()
	s.programs[name] = prog
	s.mu.Unlock()
	return prog
}

// worker is one pool member: it drains the queue until the queue closes
// and empties.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.Pop()
		if !ok {
			return
		}
		s.inFlight.Add(1)
		s.execute(j)
		s.inFlight.Add(-1)
	}
}

// execute runs one job to its typed terminal state: a result, or an
// error after bounded retries. It always closes j.done.
func (s *Server) execute(j *job) {
	defer close(j.done)
	start := time.Now()
	for attempt := 1; ; attempt++ {
		res, err := s.runAttempt(j, attempt-1)
		j.attempts = attempt
		if err == nil {
			j.res = j.rj.buildResult(res, attempt, time.Since(start))
			s.cache.Put(j.rj, j.res)
			s.completed.Add(1)
			return
		}
		retry, wait := s.retryDecision(j, err, attempt)
		if !retry {
			j.err = err
			s.noteFailure(j, err)
			return
		}
		s.retries.Add(1)
		t := time.NewTimer(wait)
		select {
		case <-j.ctx.Done():
			t.Stop()
			j.err = err
			s.noteFailure(j, err)
			return
		case <-s.forceCtx.Done():
			t.Stop()
			j.err = err
			s.noteFailure(j, err)
			return
		case <-t.C:
		}
	}
}

// runAttempt performs one bounded simulation attempt for j.
func (s *Server) runAttempt(j *job, attempt int) (*core.Result, error) {
	opts := s.opts.RunOpts
	if s.opts.JobRunOpts != nil {
		opts = s.opts.JobRunOpts(j.rj.key, attempt)
	}
	opts.Deadline = time.Time{} // wall-clock bounding belongs to the context
	opts.Engine = j.rj.engine   // the job's engine selection always wins

	ctx, cancel := context.WithTimeout(j.ctx, j.rj.timeout)
	defer cancel()
	// A forced drain must abort in-flight runs even though the client is
	// still connected.
	stop := context.AfterFunc(s.forceCtx, cancel)
	defer stop()

	if s.runHook != nil {
		return s.runHook(ctx, j.rj, opts)
	}
	r := s.currentRunner()
	return r.ResultProgramOptsCtx(ctx, j.rj.runnerName(), s.programFor(j.rj), j.rj.cfg, opts)
}

// retryDecision classifies a failed attempt: transient failures retry
// (with exponential backoff + jitter) while attempts remain, everything
// else is terminal.
//
// Retryable kinds: watchdog (livelock under transient contention —
// injected faults and shared-run interference make these genuinely
// transient), deadline, and canceled/deadline aborts a job inherited
// from a shared in-flight run it did not own (the job's own context is
// still live, so a fresh attempt can succeed). Terminal kinds: panic,
// max-cycles, cycle-budget (deterministic — a retry replays the same
// failure), the job's own cancel/timeout, and every non-simulation error
// (bad config, bad program: the client's to fix).
func (s *Server) retryDecision(j *job, err error, attempts int) (bool, time.Duration) {
	if attempts > s.opts.MaxRetries {
		return false, 0
	}
	if j.ctx.Err() != nil || s.forceCtx.Err() != nil {
		return false, 0
	}
	var se *simerr.SimError
	if !errors.As(err, &se) {
		return false, 0
	}
	switch se.Kind {
	case simerr.KindWatchdog:
	case simerr.KindDeadline, simerr.KindCanceled:
		// The job's own context is live (checked above), so this abort
		// came from the per-attempt timeout or from sharing a run with a
		// job that cancelled or timed out first — both worth a retry.
	default:
		return false, 0
	}
	wait := s.opts.RetryBase << (attempts - 1)
	if wait > s.opts.RetryCap || wait <= 0 {
		wait = s.opts.RetryCap
	}
	// ±50% jitter decorrelates retry storms.
	wait = wait/2 + time.Duration(rand.Int63n(int64(wait)))
	return true, wait
}

// noteFailure classifies a terminal failure for /statz.
func (s *Server) noteFailure(j *job, err error) {
	var se *simerr.SimError
	if errors.As(err, &se) {
		s.kindMu.Lock()
		s.byKind[se.Kind.String()]++
		s.kindMu.Unlock()
		if se.Kind == simerr.KindCanceled && j.ctx.Err() != nil {
			s.canceledJobs.Add(1)
			return
		}
	}
	s.failed.Add(1)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: intake stops immediately (new jobs are
// rejected with 503), queued and in-flight jobs run to completion, and
// when ctx expires before they finish the stragglers are force-cancelled
// (their clients get the typed canceled error) so the pool always exits.
// The persistent cache is write-through and needs no flush; Shutdown
// returns nil on a clean drain and ctx's error on a forced one.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.q.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.forceCancel()
		<-done // force-cancel aborts every run within one poll interval
	}
	s.forceCancel() // release the AfterFunc resources on the clean path too
	return err
}

// Statz is the /statz body: the service's observable health counters.
type Statz struct {
	Schema        string  `json:"schema"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	InFlight   int `json:"in_flight"`

	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`

	ShedQueueFull   uint64 `json:"shed_queue_full"`
	ShedClientLimit uint64 `json:"shed_client_limit"`
	ShedDraining    uint64 `json:"shed_draining"`
	Retries         uint64 `json:"retries"`
	// ReadyProbes counts /readyz hits: under a sweep coordinator's
	// per-backend health probing this confirms the probe loop is alive.
	ReadyProbes uint64 `json:"ready_probes"`

	FailuresByKind map[string]uint64 `json:"failures_by_kind"`

	Cache           cacheStats `json:"cache"`
	RunnerResults   int        `json:"runner_results"`
	RunnerRotations uint64     `json:"runner_rotations"`

	Goroutines int `json:"goroutines"`
}

func (s *Server) statz() Statz {
	s.kindMu.Lock()
	byKind := make(map[string]uint64, len(s.byKind))
	for k, v := range s.byKind {
		byKind[k] = v
	}
	s.kindMu.Unlock()
	s.mu.Lock()
	runnerResults := s.runner.CachedResults()
	rotations := s.rotations
	s.mu.Unlock()
	return Statz{
		Schema:          "ddserve-statz/v1",
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Draining:        s.draining.Load(),
		Workers:         s.opts.Workers,
		QueueDepth:      s.q.Depth(),
		QueueCap:        s.opts.QueueDepth,
		InFlight:        int(s.inFlight.Load()),
		Submitted:       s.submitted.Load(),
		Completed:       s.completed.Load(),
		Failed:          s.failed.Load(),
		Canceled:        s.canceledJobs.Load(),
		ShedQueueFull:   s.shedFull.Load(),
		ShedClientLimit: s.shedClient.Load(),
		ShedDraining:    s.shedDraining.Load(),
		Retries:         s.retries.Load(),
		ReadyProbes:     s.readyProbes.Load(),
		FailuresByKind:  byKind,
		Cache:           s.cache.stats(),
		RunnerResults:   runnerResults,
		RunnerRotations: rotations,
		Goroutines:      runtime.NumGoroutine(),
	}
}

// clientID identifies the submitting client for fairness accounting: the
// X-Client header when present, else the remote address.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	return r.RemoteAddr
}
