// Job schema of the simulation service: the JSON a client submits, the
// JSON it gets back, and the resolution of a submitted spec into a
// validated, cache-keyed unit of work.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// ResultSchema is the wire-format version tag of a job result. Bump only
// on deliberate, documented schema changes (the persistent cache also
// stores it and treats a mismatch as a miss).
const ResultSchema = "ddserve/v1"

// JobSpec is the JSON body of one simulation job. Exactly one of Workload
// and Program must be set.
type JobSpec struct {
	// Workload names a built-in synthetic workload (see ddsim -list).
	Workload string `json:"workload,omitempty"`
	// Program is MIPS-subset assembly source to assemble and simulate
	// instead of a workload.
	Program string `json:"program,omitempty"`
	// Scale is the workload scale factor (default 1.0; ignored with
	// Program). Clamped-checked against the server's -maxscale.
	Scale float64 `json:"scale,omitempty"`

	// Ports is the paper's "(N+M)" port configuration (default "2+0").
	Ports string `json:"ports,omitempty"`
	// Opt enables fast data forwarding and 2-way access combining;
	// Combine overrides the combining width.
	Opt     bool `json:"opt,omitempty"`
	Combine int  `json:"combine,omitempty"`
	// StaticOpt restricts the optimizations to statically-proven
	// pairs/groups (implies Opt).
	StaticOpt bool `json:"staticopt,omitempty"`
	// Steer is the steering policy name (hint, sp, oracle, dual, static,
	// spec; default hint).
	Steer string `json:"steer,omitempty"`
	// Engine selects the run loop (event, tick; default event). Both
	// engines are bit-identical by construction; the field exists so
	// sweeps can grid over engines as a standing differential check. The
	// engine is part of the job's cache identity.
	Engine string `json:"engine,omitempty"`
	// Strip removes compiler hints from the program before simulating.
	Strip bool `json:"strip,omitempty"`
	// MaxInsts bounds committed instructions (0 = run to halt).
	MaxInsts uint64 `json:"maxinsts,omitempty"`

	// TimeoutSeconds caps one attempt's wall-clock time; 0 selects the
	// server default and values above the server cap are clamped to it.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// JobResult is the JSON body of a completed job.
type JobResult struct {
	Schema   string  `json:"schema"`
	Name     string  `json:"name"`   // workload or program name
	Config   string  `json:"config"` // the "(N+M)" name
	Scale    float64 `json:"scale,omitempty"`
	Steering string  `json:"steering"`

	Cycles        uint64  `json:"cycles"`
	Committed     uint64  `json:"committed"`
	IPC           float64 `json:"ipc"`
	Loads         uint64  `json:"loads"`
	Stores        uint64  `json:"stores"`
	LocalFraction float64 `json:"local_fraction"`
	Misroutes     uint64  `json:"misroutes"`
	// StatBlock is the full human-readable statistics block (what ddsim
	// prints).
	StatBlock string `json:"stat_block"`

	// Serving metadata. Cached and Attempts describe how this response
	// was produced, not the simulation itself; the persistent cache
	// rewrites them on a hit.
	Cached      bool    `json:"cached"`
	Attempts    int     `json:"attempts"`
	WallSeconds float64 `json:"wall_seconds"`
}

// ErrorBody is the structured error JSON every non-200 response carries.
type ErrorBody struct {
	Error string `json:"error"`
	// Kind is a stable machine-readable discriminator: a simerr kind
	// (watchdog, deadline, canceled, max-cycles, cycle-budget, panic) for
	// failed runs, or a request-level kind (bad-json, bad-request,
	// oversized, queue-full, client-limit, draining).
	Kind string `json:"kind"`
	// Retryable tells the client whether resubmitting the identical job
	// later can succeed.
	Retryable bool `json:"retryable"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// Snapshot is the pipeline snapshot of a failed run (simerr kinds).
	Snapshot string `json:"snapshot,omitempty"`
	// Attempts is how many times the run was tried before giving up.
	Attempts int `json:"attempts,omitempty"`
}

// resolvedJob is a validated job: the machine configuration, the program
// source (workload or assembled image), the cache identity, and the
// per-attempt timeout.
type resolvedJob struct {
	spec   JobSpec
	cfg    config.Config
	engine core.Engine

	// Exactly one of w (workload jobs) and prog (program jobs) is live.
	w        workload.Workload
	isProg   bool
	prog     *asm.Program
	name     string // display/result name
	progName string // runner keyspace name for program jobs

	// identity is the full, collision-proof cache identity; key and shard
	// are its hashed forms (file name, config-keyed shard directory).
	identity string
	key      string
	shard    string

	timeout time.Duration
}

// badRequestError marks a request-level validation failure (HTTP 400).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// maxProgramInsts bounds the assembled text of a submitted program; far
// above any legitimate job, it exists so a pathological generator cannot
// make the service hold a giant image per queued job.
const maxProgramInsts = 1 << 20

// resolveSpec validates a submitted spec against the server limits and
// produces the runnable, cache-keyed job. All failures are
// *badRequestError: deterministic, non-retryable, the client's to fix.
func (s *Server) resolveSpec(spec JobSpec) (*resolvedJob, error) {
	rj := &resolvedJob{spec: spec}

	if (spec.Workload == "") == (spec.Program == "") {
		return nil, badRequest("exactly one of \"workload\" and \"program\" must be set")
	}

	// Machine configuration, mirroring the ddsim flag surface through the
	// shared grid-point mapping (a sweep point and the job it becomes
	// resolve identically by construction).
	point := experiments.GridPoint{
		Ports:     spec.Ports,
		Steering:  spec.Steer,
		Engine:    spec.Engine,
		Opt:       spec.Opt,
		Combine:   spec.Combine,
		StaticOpt: spec.StaticOpt,
		MaxInsts:  spec.MaxInsts,
	}
	cfg, err := point.Config()
	if err != nil {
		return nil, badRequest("%v", err)
	}
	rj.cfg = cfg
	if rj.engine, err = point.RunEngine(); err != nil {
		return nil, badRequest("bad engine: %v", err)
	}

	var srcID string
	switch {
	case spec.Workload != "":
		w, err := workload.ByName(spec.Workload)
		if err != nil {
			return nil, badRequest("unknown workload %q", spec.Workload)
		}
		scale := spec.Scale
		if scale == 0 {
			scale = 1.0
		}
		if scale < 0 || scale > s.opts.MaxScale {
			return nil, badRequest("scale %g out of range (0, %g]", scale, s.opts.MaxScale)
		}
		rj.w = w
		rj.spec.Scale = scale
		rj.name = w.Name
		srcID = fmt.Sprintf("w:%s@%g/strip=%v", w.Name, scale, spec.Strip)
	default:
		prog, err := asm.Assemble("job.s", spec.Program)
		if err != nil {
			return nil, badRequest("bad program: %v", err)
		}
		if len(prog.Text) > maxProgramInsts {
			return nil, badRequest("program too large: %d instructions (limit %d)",
				len(prog.Text), maxProgramInsts)
		}
		if spec.Strip {
			prog = prog.StripHints()
		}
		rj.isProg = true
		rj.prog = prog
		rj.name = "program"
		sum := sha256.Sum256([]byte(spec.Program))
		srcID = fmt.Sprintf("p:%s/strip=%v", hex.EncodeToString(sum[:]), spec.Strip)
		rj.progName = "serve:" + srcID
	}

	// The engine is part of the identity: both engines are bit-identical
	// by construction, but a sweep gridding over them as a differential
	// check must never have one engine's run answered from the other's
	// cache slot.
	rj.identity = srcID + "|" + cfg.Key() + "|eng=" + rj.engine.String()
	sum := sha256.Sum256([]byte(rj.identity))
	rj.key = hex.EncodeToString(sum[:16])
	shardSum := sha256.Sum256([]byte(cfg.Key()))
	rj.shard = hex.EncodeToString(shardSum[:1])

	rj.timeout = s.opts.JobTimeout
	if spec.TimeoutSeconds > 0 {
		d := time.Duration(spec.TimeoutSeconds * float64(time.Second))
		if d < rj.timeout {
			rj.timeout = d
		}
	}
	return rj, nil
}

// buildResult renders a finished run as the wire result.
func (rj *resolvedJob) buildResult(res *core.Result, attempts int, wall time.Duration) *JobResult {
	return &JobResult{
		Schema:        ResultSchema,
		Name:          rj.name,
		Config:        res.Config,
		Scale:         rj.spec.Scale,
		Steering:      rj.cfg.Steering.String(),
		Cycles:        res.Cycles,
		Committed:     res.Committed,
		IPC:           res.IPC(),
		Loads:         res.Loads,
		Stores:        res.Stores,
		LocalFraction: res.LocalFraction(),
		Misroutes:     res.Misroutes,
		StatBlock:     res.String(),
		Attempts:      attempts,
		WallSeconds:   wall.Seconds(),
	}
}

// program returns the image to simulate for a workload job, generating it
// on demand (program jobs carry theirs from assembly time).
func (rj *resolvedJob) program() *asm.Program {
	prog := rj.w.Program(rj.spec.Scale)
	if rj.spec.Strip {
		prog = prog.StripHints()
	}
	return prog
}

// runnerName is the name a workload job runs under in the runner's
// program keyspace: distinct (scale, strip) variants must never alias.
func (rj *resolvedJob) runnerName() string {
	if rj.isProg {
		return rj.progName
	}
	return fmt.Sprintf("serve:w:%s@%g/strip=%v", rj.w.Name, rj.spec.Scale, rj.spec.Strip)
}
