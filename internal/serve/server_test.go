package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simerr"
)

// tinyProgram is a complete runnable job program: pure local traffic,
// finishes in a few hundred cycles.
const tinyProgram = `	.text
	.global main
main:
	addi $sp, $sp, -8
	li   $t0, 7
	sw   $t0, 0($sp) !local
	lw   $t1, 0($sp) !local
	out  $t1
	addi $sp, $sp, 8
	halt
`

// newTestServer builds a started server + httptest front end and tears
// both down (drain first, then listener) at test end.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, client string, body string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set("X-Client", client)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

func decodeError(t *testing.T, data []byte) ErrorBody {
	t.Helper()
	var e ErrorBody
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body is not ErrorBody JSON: %v\n%s", err, data)
	}
	return e
}

func TestJobEndpointRunsProgram(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	spec, _ := json.Marshal(JobSpec{Program: tinyProgram, Ports: "2+0"})
	status, data, _ := postJob(t, ts, "c1", string(spec))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body:\n%s", status, data)
	}
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Schema != ResultSchema || res.Committed == 0 || res.Cycles == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if !strings.Contains(res.StatBlock, "committed") {
		t.Fatalf("stat block missing:\n%s", res.StatBlock)
	}
	if res.Attempts != 1 || res.Cached {
		t.Fatalf("serving metadata wrong: attempts=%d cached=%v", res.Attempts, res.Cached)
	}
}

func TestJobEndpointRunsWorkload(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	status, data, _ := postJob(t, ts, "c1", `{"workload":"li","scale":0.02,"ports":"3+2","opt":true}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body:\n%s", status, data)
	}
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Name != "li" || res.Config != "(3+2)" {
		t.Fatalf("result = %+v", res)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name   string
		body   string
		status int
		kind   string
	}{
		{"bad JSON", `{"workload":`, http.StatusBadRequest, "bad-json"},
		{"unknown field", `{"wrkld":"li"}`, http.StatusBadRequest, "bad-json"},
		{"neither source", `{}`, http.StatusBadRequest, "bad-request"},
		{"both sources", `{"workload":"li","program":"halt"}`, http.StatusBadRequest, "bad-request"},
		{"unknown workload", `{"workload":"doom"}`, http.StatusBadRequest, "bad-request"},
		{"bad ports", `{"workload":"li","ports":"many"}`, http.StatusBadRequest, "bad-request"},
		{"bad steer", `{"workload":"li","steer":"psychic"}`, http.StatusBadRequest, "bad-request"},
		{"oversized scale", `{"workload":"li","scale":64}`, http.StatusBadRequest, "bad-request"},
		{"bad program", `{"program":"not assembly at all"}`, http.StatusBadRequest, "bad-request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, data, _ := postJob(t, ts, "c1", tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d; body:\n%s", status, tc.status, data)
			}
			if e := decodeError(t, data); e.Kind != tc.kind || e.Retryable {
				t.Fatalf("error body = %+v", e)
			}
		})
	}
}

func TestOversizedProgramRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxBodyBytes: 4096})
	big := strings.Repeat("# padding line\n", 1024)
	spec, _ := json.Marshal(JobSpec{Program: big})
	status, data, _ := postJob(t, ts, "c1", string(spec))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body:\n%s", status, data)
	}
	if e := decodeError(t, data); e.Kind != "oversized" {
		t.Fatalf("error body = %+v", e)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := ts.Client().Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHealthReadyStatz(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200, "/statz": 200} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var z Statz
	if err := json.NewDecoder(resp.Body).Decode(&z); err != nil {
		t.Fatal(err)
	}
	if z.Schema != "ddserve-statz/v1" || z.Workers != 1 || z.QueueCap != s.opts.QueueDepth {
		t.Fatalf("statz = %+v", z)
	}
}

// TestMidRunCancel verifies that a client abandoning its request aborts
// the running simulation (typed canceled) and frees the worker.
func TestMidRunCancel(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	started := make(chan struct{})
	s.runHook = func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error) {
		close(started)
		<-ctx.Done()
		return nil, &simerr.SimError{Kind: simerr.KindCanceled, Reason: "run canceled", Err: ctx.Err()}
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/jobs",
		strings.NewReader(`{"workload":"li","scale":0.02}`))
	errCh := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("expected the client request to fail after cancel")
	}
	// The atomic canceled counter is the happens-before edge proving the
	// worker is done with the hook before the test swaps it out.
	waitFor(t, 2*time.Second, func() bool { return s.statz().Canceled == 1 })

	// The worker must return to the pool: a second, well-behaved job
	// must complete on the real simulator.
	s.runHook = nil
	status, data, _ := postJob(t, ts, "c2", `{"workload":"li","scale":0.02}`)
	if status != http.StatusOK {
		t.Fatalf("post-cancel job: status = %d, body:\n%s", status, data)
	}
}

// TestQueueFullSheds fills the pool and queue with blocked jobs and
// verifies load shedding (429 + Retry-After), then unblocks everything.
func TestQueueFullSheds(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, MaxPerClient: 8, MaxRetries: -1})
	release := make(chan struct{})
	s.runHook = func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, &simerr.SimError{Kind: simerr.KindCanceled, Reason: "test"}
	}

	// Fill the pool, then the queue, sequentially: posting both hogs at
	// once races the worker's dequeue — the second hog can arrive while
	// the first is still queued and be shed itself, and the expected
	// 1-in-flight + 1-queued state never forms.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // 1 in-flight + 1 queued
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJob(t, ts, "hog", fmt.Sprintf(`{"workload":"li","scale":0.0%d}`, i+1))
		}(i)
		want := func() bool { return int(s.inFlight.Load()) == 1 && s.q.Depth() == i }
		waitFor(t, 2*time.Second, want)
	}

	status, data, hdr := postJob(t, ts, "other", `{"workload":"li","scale":0.03}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body:\n%s", status, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if e := decodeError(t, data); e.Kind != "queue-full" || !e.Retryable || e.RetryAfterSeconds == 0 {
		t.Fatalf("error body = %+v", e)
	}
	close(release)
	wg.Wait()
	if z := s.statz(); z.ShedQueueFull != 1 {
		t.Fatalf("shed counter = %+v", z)
	}
}

// TestPerClientLimitSheds verifies one client cannot consume the whole
// queue: its excess jobs shed with client-limit while another client
// still gets in.
func TestPerClientLimitSheds(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 16, MaxPerClient: 1, MaxRetries: -1})
	release := make(chan struct{})
	s.runHook = func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, &simerr.SimError{Kind: simerr.KindCanceled, Reason: "test"}
	}

	// Sequential posts, as in TestQueueFullSheds: a concurrent second
	// post can be client-limit-shed while the first is still queued.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // greedy: 1 in-flight + 1 queued
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJob(t, ts, "greedy", fmt.Sprintf(`{"workload":"li","scale":0.0%d}`, i+1))
		}(i)
		want := func() bool { return int(s.inFlight.Load()) == 1 && s.q.Depth() == i }
		waitFor(t, 2*time.Second, want)
	}

	status, data, _ := postJob(t, ts, "greedy", `{"workload":"li","scale":0.03}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("greedy overflow: status = %d, body:\n%s", status, data)
	}
	if e := decodeError(t, data); e.Kind != "client-limit" {
		t.Fatalf("error body = %+v", e)
	}

	// A different client still gets a queue slot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		postJob(t, ts, "polite", `{"workload":"li","scale":0.04}`)
	}()
	waitFor(t, 2*time.Second, func() bool { return s.q.Depth() == 2 })
	close(release)
	wg.Wait()
	<-done
	if z := s.statz(); z.ShedClientLimit != 1 {
		t.Fatalf("shed counters = %+v", z)
	}
}

// TestRetriesTransientThenSucceeds: watchdog failures retry with backoff
// and the job still completes.
func TestRetriesTransientThenSucceeds(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, MaxRetries: 2, RetryBase: time.Millisecond})
	var calls int
	var mu sync.Mutex
	s.runHook = func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n < 3 {
			return nil, &simerr.SimError{Kind: simerr.KindWatchdog, Reason: "transient livelock"}
		}
		return &core.Result{Config: "(2+0)", Stats: core.Stats{Cycles: 10, Committed: 5}}, nil
	}
	status, data, _ := postJob(t, ts, "c1", `{"workload":"li","scale":0.02}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body:\n%s", status, data)
	}
	var res JobResult
	json.Unmarshal(data, &res)
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	if z := s.statz(); z.Retries != 2 {
		t.Fatalf("retry counter = %d", z.Retries)
	}
}

// TestTerminalKindsDoNotRetry: panic (and other deterministic kinds) go
// straight to a structured error carrying the snapshot.
func TestTerminalKindsDoNotRetry(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, MaxRetries: 3, RetryBase: time.Millisecond})
	var calls int
	var mu sync.Mutex
	s.runHook = func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return nil, &simerr.SimError{
			Kind:     simerr.KindPanic,
			Reason:   "invariant violated",
			Snapshot: simerr.Snapshot{Cycle: 99, Committed: 12},
		}
	}
	status, data, _ := postJob(t, ts, "c1", `{"workload":"li","scale":0.02}`)
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, body:\n%s", status, data)
	}
	e := decodeError(t, data)
	if e.Kind != "panic" || e.Retryable || e.Attempts != 1 {
		t.Fatalf("error body = %+v", e)
	}
	if !strings.Contains(e.Snapshot, "cycle 99") {
		t.Fatalf("snapshot missing pipeline state:\n%s", e.Snapshot)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("panic was retried %d times", calls)
	}
}

// TestBudgetKindMaps422: a job that exhausts its configured compute
// budget is the client's problem, reported as 422 with the snapshot.
func TestBudgetKindMaps422(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	s.runHook = func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error) {
		return nil, &simerr.SimError{Kind: simerr.KindMaxCycles, Reason: "cycle cap reached"}
	}
	status, data, _ := postJob(t, ts, "c1", `{"workload":"li","scale":0.02}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, body:\n%s", status, data)
	}
	if e := decodeError(t, data); e.Kind != "max-cycles" || e.Retryable {
		t.Fatalf("error body = %+v", e)
	}
}

// TestDiskCacheHitServesWithoutRun: the second identical job answers
// from the persistent cache, without a simulation or a queue slot.
func TestDiskCacheHitServesWithoutRun(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	body := `{"workload":"li","scale":0.02,"ports":"3+2","opt":true}`
	status, first, _ := postJob(t, ts, "c1", body)
	if status != http.StatusOK {
		t.Fatalf("first run: %d\n%s", status, first)
	}

	var runs int
	s.runHook = func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error) {
		runs++
		return nil, &simerr.SimError{Kind: simerr.KindPanic, Reason: "must not run"}
	}
	status, second, _ := postJob(t, ts, "c1", body)
	if status != http.StatusOK {
		t.Fatalf("cached run: %d\n%s", status, second)
	}
	if runs != 0 {
		t.Fatal("cache hit still simulated")
	}
	var r1, r2 JobResult
	json.Unmarshal(first, &r1)
	json.Unmarshal(second, &r2)
	if !r2.Cached || r1.Cached {
		t.Fatalf("cached flags: first=%v second=%v", r1.Cached, r2.Cached)
	}
	if r1.Cycles != r2.Cycles || r1.Committed != r2.Committed {
		t.Fatalf("cache returned different numbers: %+v vs %+v", r1, r2)
	}
	if z := s.statz(); z.Cache.Hits != 1 || z.Cache.Writes != 1 {
		t.Fatalf("cache stats = %+v", z.Cache)
	}
}

// TestGracefulDrain is the drain acceptance test: SIGTERM-equivalent
// shutdown with in-flight jobs returns their completed results, rejects
// new work with 503, and exits within the drain deadline.
func TestGracefulDrain(t *testing.T) {
	s, err := New(Options{Workers: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	s.runHook = func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error) {
		close(started)
		select {
		case <-release:
			return &core.Result{Config: "(2+0)", Stats: core.Stats{Cycles: 10, Committed: 5}}, nil
		case <-ctx.Done():
			return nil, &simerr.SimError{Kind: simerr.KindCanceled, Reason: "forced", Err: ctx.Err()}
		}
	}

	// In-flight job, mid-run when drain starts.
	type outcome struct {
		status int
		body   []byte
	}
	inflight := make(chan outcome, 1)
	go func() {
		st, data, _ := postJob(t, ts, "c1", `{"workload":"li","scale":0.02}`)
		inflight <- outcome{st, data}
	}()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Shutdown(ctx)
	}()
	waitFor(t, 2*time.Second, func() bool { return s.Draining() })

	// New work is rejected with 503 while draining.
	status, data, _ := postJob(t, ts, "c2", `{"workload":"li","scale":0.03}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status = %d, body:\n%s", status, data)
	}
	if e := decodeError(t, data); e.Kind != "draining" || !e.Retryable {
		t.Fatalf("drain error body = %+v", e)
	}

	// The in-flight job finishes and its client gets the result.
	close(release)
	got := <-inflight
	if got.status != http.StatusOK {
		t.Fatalf("in-flight job during drain: status = %d, body:\n%s", got.status, got.body)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain was forced: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return within the drain deadline")
	}
}

// TestForcedDrainCancelsStragglers: a job that never finishes cannot
// hold Shutdown past its deadline; its client gets the typed 503.
func TestForcedDrainCancelsStragglers(t *testing.T) {
	s, err := New(Options{Workers: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	started := make(chan struct{})
	s.runHook = func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error) {
		close(started)
		<-ctx.Done() // only a forced cancel ends this job
		return nil, &simerr.SimError{Kind: simerr.KindCanceled, Reason: "forced", Err: ctx.Err()}
	}
	type outcome struct {
		status int
		body   []byte
	}
	inflight := make(chan outcome, 1)
	go func() {
		st, data, _ := postJob(t, ts, "c1", `{"workload":"li","scale":0.02}`)
		inflight <- outcome{st, data}
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("forced drain reported clean")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("forced drain took %v", elapsed)
	}
	got := <-inflight
	if got.status != http.StatusServiceUnavailable {
		t.Fatalf("straggler client: status = %d, body:\n%s", got.status, got.body)
	}
	if e := decodeError(t, got.body); e.Kind != "canceled" || !e.Retryable {
		t.Fatalf("straggler error body = %+v", e)
	}
}

// TestPoolShutdownLeaksNoGoroutines brackets a full server lifecycle
// (including real runs) with a goroutine census.
func TestPoolShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := New(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec, _ := json.Marshal(JobSpec{Program: tinyProgram, Ports: "2+0", Scale: 0})
			postJob(t, ts, fmt.Sprintf("c%d", i%3), string(spec))
		}(i)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	waitFor(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2 // http idle-timer slack
	})
}

// TestRunnerRotationBoundsMemory: the in-memory runner rotates once its
// result cache passes the cap, and jobs keep completing across rotation.
func TestRunnerRotationBoundsMemory(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, RunnerResultCap: 2})
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"workload":"li","scale":0.02,"maxinsts":%d}`, 1000+i)
		status, data, _ := postJob(t, ts, "c1", body)
		if status != http.StatusOK {
			t.Fatalf("job %d: status = %d, body:\n%s", i, status, data)
		}
	}
	z := s.statz()
	if z.RunnerRotations == 0 {
		t.Fatalf("runner never rotated: %+v", z)
	}
	if z.RunnerResults > 2 {
		t.Fatalf("in-memory results (%d) exceed the cap", z.RunnerResults)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
