package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func qjob(client string) *job {
	return &job{client: client, done: make(chan struct{})}
}

func TestQueueAdmissionErrors(t *testing.T) {
	q := newQueue(3, 2)
	if err := q.Push(qjob("a")); err != nil {
		t.Fatalf("push 1: %v", err)
	}
	if err := q.Push(qjob("a")); err != nil {
		t.Fatalf("push 2: %v", err)
	}
	if err := q.Push(qjob("a")); !errors.Is(err, ErrClientLimit) {
		t.Fatalf("per-client overflow: got %v, want ErrClientLimit", err)
	}
	if err := q.Push(qjob("b")); err != nil {
		t.Fatalf("push b: %v", err)
	}
	if err := q.Push(qjob("c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("depth overflow: got %v, want ErrQueueFull", err)
	}
	q.Close()
	if err := q.Push(qjob("d")); !errors.Is(err, ErrDraining) {
		t.Fatalf("closed: got %v, want ErrDraining", err)
	}
}

func TestQueueRoundRobinFairness(t *testing.T) {
	// A greedy client queues its full allowance before a second client
	// shows up; dequeue order must still interleave, not serve the greedy
	// backlog first.
	q := newQueue(16, 8)
	for i := 0; i < 4; i++ {
		if err := q.Push(qjob("greedy")); err != nil {
			t.Fatalf("greedy push %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := q.Push(qjob("polite")); err != nil {
			t.Fatalf("polite push %d: %v", i, err)
		}
	}
	var order []string
	for i := 0; i < 6; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: queue reported closed", i)
		}
		order = append(order, j.client)
	}
	want := []string{"greedy", "polite", "greedy", "polite", "greedy", "greedy"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dequeue order = %v, want %v", order, want)
	}
	if q.Depth() != 0 {
		t.Fatalf("depth = %d after draining", q.Depth())
	}
}

func TestQueueCloseDrainsRemainingWork(t *testing.T) {
	q := newQueue(8, 8)
	q.Push(qjob("a"))
	q.Push(qjob("a"))
	q.Close()
	for i := 0; i < 2; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatalf("pop %d: admitted job dropped by Close", i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty closed queue: ok = true")
	}
}

func TestQueueCloseWakesBlockedPops(t *testing.T) {
	q := newQueue(8, 8)
	const waiters = 4
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if j, ok := q.Pop(); ok || j != nil {
				t.Errorf("blocked pop returned (%v, %v) after Close", j, ok)
			}
		}()
	}
	q.Close()
	wg.Wait()
}

// TestQueueConcurrentStress hammers Push/Pop from many goroutines; run
// under -race it is the queue's data-race check, and the accounting
// asserts no job is lost or duplicated.
func TestQueueConcurrentStress(t *testing.T) {
	q := newQueue(64, 16)
	const (
		producers = 8
		perProd   = 200
		consumers = 4
	)
	var popped sync.Map
	var consumed sync.WaitGroup
	for i := 0; i < consumers; i++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				j, ok := q.Pop()
				if !ok {
					return
				}
				if _, dup := popped.LoadOrStore(j, true); dup {
					t.Error("job popped twice")
				}
			}
		}()
	}

	var produced sync.WaitGroup
	var admitted, shed sync.Map
	for p := 0; p < producers; p++ {
		produced.Add(1)
		go func(p int) {
			defer produced.Done()
			client := fmt.Sprintf("c%d", p%3) // contend on a few client IDs
			n, s := 0, 0
			for i := 0; i < perProd; i++ {
				err := q.Push(qjob(client))
				switch {
				case err == nil:
					n++
				case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClientLimit):
					s++
				default:
					t.Errorf("unexpected push error: %v", err)
				}
			}
			admitted.Store(p, n)
			shed.Store(p, s)
		}(p)
	}
	produced.Wait()
	q.Close()
	consumed.Wait()

	total, lost := 0, 0
	admitted.Range(func(_, v any) bool { total += v.(int); return true })
	shed.Range(func(_, v any) bool { lost += v.(int); return true })
	got := 0
	popped.Range(func(_, _ any) bool { got++; return true })
	if got != total {
		t.Fatalf("popped %d jobs, admitted %d (shed %d)", got, total, lost)
	}
	if total+lost != producers*perProd {
		t.Fatalf("admitted %d + shed %d != pushed %d", total, lost, producers*perProd)
	}
}
