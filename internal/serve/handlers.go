package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/simerr"
)

// Handler returns the service's HTTP surface:
//
//	POST /jobs     submit one job, blocking until its terminal state
//	GET  /healthz  liveness (200 while the process runs)
//	GET  /readyz   readiness (200 accepting, 503 draining)
//	GET  /statz    JSON health counters (queue, shed, retry, cache)
//
// The pprof sidecar is deliberately not here: cmd/ddserve mounts
// net/http/pprof on its own listener so profiling is never exposed on
// the service port.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		s.readyProbes.Add(1)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.statz())
	})
	return mux
}

// retryAfterSeconds is the backpressure hint on 429/503: a coarse
// function of queue pressure, not a promise.
func (s *Server) retryAfterSeconds() int {
	sec := 1 + s.q.Depth()/s.opts.Workers
	if sec > 30 {
		sec = 30
	}
	return sec
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, ErrorBody{
			Error: "POST a JobSpec", Kind: "bad-request",
		})
		return
	}
	s.submitted.Add(1)

	if s.draining.Load() {
		s.shedDraining.Add(1)
		s.writeShed(w, http.StatusServiceUnavailable, "draining", ErrDraining)
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
				Error: fmt.Sprintf("request body over %d bytes", tooBig.Limit),
				Kind:  "oversized",
			})
			return
		}
		writeError(w, http.StatusBadRequest, ErrorBody{
			Error: "bad job JSON: " + err.Error(), Kind: "bad-json",
		})
		return
	}

	rj, err := s.resolveSpec(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Error: err.Error(), Kind: "bad-request",
		})
		return
	}
	// The job's cache identity, exposed so clients that submit the same
	// job twice (sweep hedging, retries on another connection) can see
	// the duplicates are the same unit of work. Identical in-flight jobs
	// coalesce onto one simulation server-side (the runner's in-flight
	// table), so hedged duplicates are idempotent by construction.
	w.Header().Set("X-Job-Key", rj.key)

	// Persistent cache: a hit answers without touching the queue, so
	// repeated sweeps cost disk reads, not simulator time or queue slots.
	if res := s.cache.Get(rj); res != nil {
		writeJSON(w, http.StatusOK, res)
		return
	}

	j := &job{rj: rj, client: clientID(r), ctx: r.Context(), done: make(chan struct{})}
	if err := s.q.Push(j); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.shedFull.Add(1)
			s.writeShed(w, http.StatusTooManyRequests, "queue-full", err)
		case errors.Is(err, ErrClientLimit):
			s.shedClient.Add(1)
			s.writeShed(w, http.StatusTooManyRequests, "client-limit", err)
		default: // ErrDraining: intake closed between the check and the push
			s.shedDraining.Add(1)
			s.writeShed(w, http.StatusServiceUnavailable, "draining", err)
		}
		return
	}

	// The worker owns the job now; wait for its terminal state. On client
	// disconnect the shared context aborts the run and the worker still
	// closes done — nothing leaks, there is just nobody left to tell.
	<-j.done
	if j.err != nil {
		status, body := errorResponse(j)
		if status == http.StatusServiceUnavailable {
			// A drain-mode 503 (the run was force-cancelled by the drain
			// deadline) carries the same backpressure hint as an admission
			// shed, so client backoff is uniform across both 503 paths.
			after := s.retryAfterSeconds()
			w.Header().Set("Retry-After", strconv.Itoa(after))
			body.RetryAfterSeconds = after
		}
		writeError(w, status, body)
		return
	}
	writeJSON(w, http.StatusOK, j.res)
}

// errorResponse maps a job's terminal error to its documented HTTP status
// and structured body.
//
//	429/503  shed or drain (handled before the job runs)
//	400      deterministic client errors (bad config/program at run time)
//	408      the job's own context was cancelled or timed out client-side
//	422      the job exhausted its configured compute budget (max-cycles,
//	         cycle-budget): well-formed, too expensive as submitted
//	504      the per-attempt wall-clock timeout expired (after retries)
//	503      the run was force-cancelled by a drain deadline
//	500      watchdog livelock (after retries) and contained panics
func errorResponse(j *job) (int, ErrorBody) {
	err := j.err
	body := ErrorBody{Error: err.Error(), Attempts: j.attempts}
	var se *simerr.SimError
	if !errors.As(err, &se) {
		body.Kind = "bad-request"
		return http.StatusBadRequest, body
	}
	body.Kind = se.Kind.String()
	body.Snapshot = se.Snapshot.String()
	switch se.Kind {
	case simerr.KindCanceled:
		if j.ctx.Err() != nil {
			// The client went away or cancelled; it likely never reads
			// this, but the state is still typed and logged.
			return http.StatusRequestTimeout, body
		}
		// Force-cancelled by the drain deadline: safe to retry elsewhere.
		body.Retryable = true
		return http.StatusServiceUnavailable, body
	case simerr.KindDeadline:
		body.Retryable = true
		return http.StatusGatewayTimeout, body
	case simerr.KindMaxCycles, simerr.KindBudget:
		return http.StatusUnprocessableEntity, body
	case simerr.KindWatchdog:
		body.Retryable = true
		return http.StatusInternalServerError, body
	default: // panic and anything unclassified
		return http.StatusInternalServerError, body
	}
}

func (s *Server) writeShed(w http.ResponseWriter, status int, kind string, err error) {
	after := s.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(after))
	writeError(w, status, ErrorBody{
		Error:             err.Error(),
		Kind:              kind,
		Retryable:         true,
		RetryAfterSeconds: after,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // a failed write means the client left; nothing to do
}

func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	writeJSON(w, status, body)
}
