// Regression tests for the wire-contract details the sweep coordinator
// depends on: uniform Retry-After on both 503 paths, the job-identity
// header, the engine field's place in the cache identity, and the
// readiness-probe counter.
package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simerr"
)

// Both 503 paths — the admission shed while draining AND the force-cancel
// of a straggler at the drain deadline — must carry the Retry-After
// backpressure hint, so client backoff is uniform.
func TestDrainShed503CarriesRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	s.draining.Store(true)

	status, data, hdr := postJob(t, ts, "c1", `{"workload":"li","scale":0.02}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body:\n%s", status, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("admission-shed 503 missing Retry-After header")
	}
	e := decodeError(t, data)
	if e.Kind != "draining" || !e.Retryable || e.RetryAfterSeconds <= 0 {
		t.Fatalf("shed body = %+v", e)
	}
}

func TestForcedDrain503CarriesRetryAfter(t *testing.T) {
	s, err := New(Options{Workers: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	started := make(chan struct{})
	s.runHook = func(ctx context.Context, rj *resolvedJob, opts core.RunOptions) (*core.Result, error) {
		close(started)
		<-ctx.Done() // only the forced drain cancel ends this job
		return nil, &simerr.SimError{Kind: simerr.KindCanceled, Reason: "forced", Err: ctx.Err()}
	}
	type outcome struct {
		status int
		body   []byte
		hdr    http.Header
	}
	inflight := make(chan outcome, 1)
	go func() {
		st, data, hdr := postJob(t, ts, "c1", `{"workload":"li","scale":0.02}`)
		inflight <- outcome{st, data, hdr}
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("forced drain reported clean")
	}
	got := <-inflight
	if got.status != http.StatusServiceUnavailable {
		t.Fatalf("straggler: status = %d, body:\n%s", got.status, got.body)
	}
	if got.hdr.Get("Retry-After") == "" {
		t.Fatal("force-cancel 503 missing Retry-After header")
	}
	e := decodeError(t, got.body)
	if e.Kind != "canceled" || !e.Retryable || e.RetryAfterSeconds <= 0 {
		t.Fatalf("force-cancel body = %+v", e)
	}
}

// Every resolved job's response carries X-Job-Key: hedged duplicates can
// see they are the same unit of work, and identical specs get identical
// keys regardless of which backend answers.
func TestJobKeyHeaderStable(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	body := `{"workload":"li","scale":0.02,"ports":"3+2"}`

	_, _, hdr1 := postJob(t, ts, "c1", body)
	_, _, hdr2 := postJob(t, ts, "c2", body)
	k1, k2 := hdr1.Get("X-Job-Key"), hdr2.Get("X-Job-Key")
	if k1 == "" || k1 != k2 {
		t.Fatalf("identical specs got keys %q and %q", k1, k2)
	}

	_, _, hdr3 := postJob(t, ts, "c1", `{"workload":"li","scale":0.02,"ports":"3+2","engine":"tick"}`)
	if k3 := hdr3.Get("X-Job-Key"); k3 == "" || k3 == k1 {
		t.Fatalf("engine not part of identity: %q vs %q", k3, k1)
	}
}

// The engine field selects the run loop and both engines produce
// bit-identical statistics — a job gridded over engines is a standing
// differential check, answered from separate cache slots.
func TestEngineFieldSelectsBitIdenticalEngines(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	run := func(engine string) JobResult {
		t.Helper()
		body := `{"workload":"li","scale":0.02`
		if engine != "" {
			body += `,"engine":"` + engine + `"`
		}
		body += `}`
		status, data, _ := postJob(t, ts, "c1", body)
		if status != http.StatusOK {
			t.Fatalf("engine %q: status = %d, body:\n%s", engine, status, data)
		}
		var res JobResult
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	event, tick := run("event"), run("tick")
	if event.Cycles == 0 || event.Cycles != tick.Cycles || event.Committed != tick.Committed ||
		event.Misroutes != tick.Misroutes {
		t.Fatalf("engines diverged: event=%+v tick=%+v", event, tick)
	}
	// Default engine is event: identical stats and identical cache slot.
	def := run("")
	if def.Cycles != event.Cycles {
		t.Fatalf("default engine diverged: %+v vs %+v", def, event)
	}

	status, data, _ := postJob(t, ts, "c1", `{"workload":"li","engine":"warp"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad engine: status = %d, body:\n%s", status, data)
	}
	if e := decodeError(t, data); e.Kind != "bad-request" {
		t.Fatalf("bad engine body = %+v", e)
	}
}

// /readyz hits are counted in statz, so an operator can see sweep
// coordinators' health probing.
func TestReadyProbesCounted(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	for i := 0; i < 3; i++ {
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if z := s.statz(); z.ReadyProbes != 3 {
		t.Fatalf("ready_probes = %d, want 3", z.ReadyProbes)
	}
}
