package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission-control errors. They are the queue's whole failure surface:
// a push either succeeds or fails with exactly one of these, so every
// rejected request maps to one documented HTTP status.
var (
	// ErrQueueFull: the global queue depth bound is reached (HTTP 429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrClientLimit: this client already has its fair share of queued
	// jobs (HTTP 429).
	ErrClientLimit = errors.New("serve: per-client queue limit reached")
	// ErrDraining: the server is shutting down and accepts no new work
	// (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting jobs")
)

// job is one admitted unit of work flowing from handler to worker. The
// handler blocks on done; the worker owns the job until it closes done,
// after which res/err/attempts are immutable.
type job struct {
	rj     *resolvedJob
	client string
	// ctx is the submitting request's context: client disconnects and
	// per-request cancels propagate through it into the running core.
	ctx context.Context

	enqueued time.Time

	res      *JobResult
	err      error
	attempts int
	done     chan struct{}
}

// queue is the admission-controlled job queue. It bounds total depth
// (load shedding, never unbounded memory) and per-client occupancy, and
// dequeues fairly: clients with pending work are served round-robin, so
// one client flooding its per-client allowance cannot starve the others.
type queue struct {
	mu   sync.Mutex
	cond *sync.Cond

	maxDepth     int
	maxPerClient int

	pending map[string][]*job
	// rr is the round-robin rotation: each client with pending work
	// appears exactly once; Pop serves rr[0] and re-appends it while it
	// still has work.
	rr     []string
	depth  int
	closed bool
}

func newQueue(maxDepth, maxPerClient int) *queue {
	q := &queue{
		maxDepth:     maxDepth,
		maxPerClient: maxPerClient,
		pending:      make(map[string][]*job),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push admits j or rejects it with one of the admission errors.
func (q *queue) Push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	switch {
	case q.closed:
		return ErrDraining
	case q.depth >= q.maxDepth:
		return ErrQueueFull
	case len(q.pending[j.client]) >= q.maxPerClient:
		return ErrClientLimit
	}
	if len(q.pending[j.client]) == 0 {
		q.rr = append(q.rr, j.client)
	}
	q.pending[j.client] = append(q.pending[j.client], j)
	q.depth++
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available and returns it, serving clients
// round-robin. After Close it keeps returning queued jobs until the
// queue is empty, then reports ok=false: drain means "finish what was
// admitted", not "drop it".
func (q *queue) Pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.depth == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.depth == 0 {
		return nil, false
	}
	client := q.rr[0]
	q.rr = q.rr[1:]
	list := q.pending[client]
	j := list[0]
	list[0] = nil // drop the queue's reference as soon as the job leaves
	if len(list) > 1 {
		q.pending[client] = list[1:]
		q.rr = append(q.rr, client)
	} else {
		delete(q.pending, client)
	}
	q.depth--
	return j, true
}

// Close stops intake (further Push fails with ErrDraining) and wakes
// every blocked Pop so idle workers can exit once the queue runs dry.
func (q *queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Depth returns the current number of queued (not yet popped) jobs.
func (q *queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}
