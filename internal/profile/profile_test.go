package profile

import (
	"testing"

	"repro/internal/asm"
)

func compile(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble("p.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const profProgram = `
        .text
main:
        la   $s0, g
        lw   $t0, 0($s0) !nonlocal
        jal  f
        jal  f
        out  $v0
        halt
f:
        addi $sp, $sp, -8
        sw   $ra, 4($sp) !local
        sw   $s0, 0($sp) !local
        lw   $s0, 0($sp) !local
        lw   $ra, 4($sp) !local
        addi $sp, $sp, 8
        jr   $ra
        .data
g:      .word 5
`

func TestProfileCounts(t *testing.T) {
	p, err := Run(compile(t, profProgram), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Loads != 5 { // 1 global + 2 calls x 2 local loads
		t.Errorf("loads = %d, want 5", p.Loads)
	}
	if p.Stores != 4 {
		t.Errorf("stores = %d, want 4", p.Stores)
	}
	if p.LocalLoads != 4 || p.LocalStores != 4 {
		t.Errorf("local = %d/%d, want 4/4", p.LocalLoads, p.LocalStores)
	}
	if p.Calls != 2 || p.Returns != 2 || p.MaxCallDepth != 1 {
		t.Errorf("calls=%d returns=%d depth=%d", p.Calls, p.Returns, p.MaxCallDepth)
	}
	if p.SPIndexedLocal != 8 {
		t.Errorf("sp-indexed = %d, want 8", p.SPIndexedLocal)
	}
}

func TestProfileFrames(t *testing.T) {
	p, err := Run(compile(t, profProgram), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two dynamic allocations of the same 2-word frame.
	if p.DynFrames.Total() != 2 {
		t.Errorf("dyn frames = %d", p.DynFrames.Total())
	}
	if p.DynFrames.Mean() != 2 {
		t.Errorf("dyn mean = %f words", p.DynFrames.Mean())
	}
	sf := p.StaticFrames()
	if sf.Total() != 1 || sf.Max() != 2 {
		t.Errorf("static frames total=%d max=%d", sf.Total(), sf.Max())
	}
}

func TestProfileFractions(t *testing.T) {
	p, err := Run(compile(t, profProgram), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.LocalFraction(); got != 8.0/9.0 {
		t.Errorf("local fraction = %f", got)
	}
	if p.LoadFreq() <= 0 || p.StoreFreq() <= 0 {
		t.Error("zero frequencies")
	}
}

func TestProfileHintTracking(t *testing.T) {
	p, err := Run(compile(t, `
        .text
main:
        la $s0, g
        lw $t0, 0($s0)
        lw $t1, 0($s0) !nonlocal
        halt
        .data
g:      .word 1
`), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.HintedMemPCs != 1 || p.UnhintedMemPCs != 1 {
		t.Errorf("hinted=%d unhinted=%d", p.HintedMemPCs, p.UnhintedMemPCs)
	}
}

func TestProfileBudget(t *testing.T) {
	p, err := Run(compile(t, "\t.text\nmain:\n\tb main\n"), 500)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts != 500 {
		t.Errorf("insts = %d", p.Insts)
	}
}

func TestSimulateLVCBasic(t *testing.T) {
	res, err := SimulateLVC(compile(t, profProgram), 2048, 32, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalRefs != 8 {
		t.Errorf("local refs = %d, want 8", res.LocalRefs)
	}
	// One cold miss (all accesses share one line), everything else hits.
	if res.Stats.Misses() != 1 {
		t.Errorf("misses = %d, want 1", res.Stats.Misses())
	}
}

func TestSimulateLVCSizeMonotone(t *testing.T) {
	// A deep-recursion program: bigger LVCs never miss more.
	src := `
        .text
main:
        li   $a0, 200
        jal  rec
        out  $v0
        halt
rec:
        addi $sp, $sp, -16
        sw   $ra, 12($sp) !local
        sw   $a0, 0($sp) !local
        li   $v0, 0
        blez $a0, done
        addi $a0, $a0, -1
        jal  rec
        lw   $t0, 0($sp) !local
        add  $v0, $v0, $t0
done:
        lw   $ra, 12($sp) !local
        addi $sp, $sp, 16
        jr   $ra
`
	prog := compile(t, src)
	var prev uint64 = 1 << 62
	for _, size := range []int{512, 1024, 2048, 4096} {
		res, err := SimulateLVC(prog, size, 32, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Misses() > prev {
			t.Errorf("%dB LVC misses %d > smaller size %d", size, res.Stats.Misses(), prev)
		}
		prev = res.Stats.Misses()
	}
}
