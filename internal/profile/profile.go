// Package profile runs programs on the functional emulator and collects
// the paper's workload-characterization measurements: instruction mix and
// local-access fractions (Figure 2), dynamic and static frame-size
// distributions (Figure 3), call-depth behaviour, and stand-alone LVC
// miss-rate simulation (Figure 6).
package profile

import (
	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/stats"
)

// Profile is the characterization of one program run.
type Profile struct {
	Insts  uint64
	Loads  uint64
	Stores uint64
	// Ground-truth local (stack-region) accesses.
	LocalLoads  uint64
	LocalStores uint64
	// SPIndexedLocal counts local accesses whose base register is $sp or
	// $fp (the paper reports >95% are).
	SPIndexedLocal uint64
	// HintedMemPCs / UnhintedMemPCs count static memory instructions by
	// whether the generator classified them (paper: <1% ambiguous).
	HintedMemPCs   int
	UnhintedMemPCs int

	// DynFrames is the dynamic frame-size distribution in words: one
	// sample per executed frame allocation (Figure 3).
	DynFrames *stats.Histogram
	// staticFrames maps each frame-allocating PC to its size in words.
	staticFrames map[uint32]int

	// Calls/Returns and call-depth tracking.
	Calls        uint64
	Returns      uint64
	MaxCallDepth int
	// DepthSamples histograms the call depth observed at each call.
	DepthSamples *stats.Histogram
}

// Run executes prog to completion (bounded by maxInsts; 0 = unbounded) and
// returns its profile.
func Run(prog *asm.Program, maxInsts uint64) (*Profile, error) {
	p := &Profile{
		DynFrames:    stats.NewHistogram(),
		DepthSamples: stats.NewHistogram(),
		staticFrames: make(map[uint32]int),
	}
	hintedPCs := make(map[uint32]bool)
	unhintedPCs := make(map[uint32]bool)
	m := emu.New(prog)
	depth := 0
	for !m.Halted {
		if maxInsts > 0 && m.InstCount >= maxInsts {
			break
		}
		ef, err := m.Step()
		if err != nil {
			return nil, err
		}
		p.Insts++
		in := ef.Inst
		switch {
		case in.IsLoad():
			p.Loads++
			if isa.InStackRegion(ef.Addr) {
				p.LocalLoads++
				if in.BaseReg() == isa.RegSP || in.BaseReg() == isa.RegFP {
					p.SPIndexedLocal++
				}
			}
		case in.IsStore():
			p.Stores++
			if isa.InStackRegion(ef.Addr) {
				p.LocalStores++
				if in.BaseReg() == isa.RegSP || in.BaseReg() == isa.RegFP {
					p.SPIndexedLocal++
				}
			}
		case in.IsCall():
			depth++
			p.Calls++
			if depth > p.MaxCallDepth {
				p.MaxCallDepth = depth
			}
			p.DepthSamples.Add(depth, 1)
		case in.IsReturn():
			if depth > 0 {
				depth--
			}
			p.Returns++
		}
		if in.IsMem() {
			if in.Hint == isa.HintNone {
				unhintedPCs[ef.PC] = true
			} else {
				hintedPCs[ef.PC] = true
			}
		}
		// Frame allocation: addi $sp, $sp, -N.
		if in.Op == isa.ADDI && in.Rd == isa.RegSP && in.Rs == isa.RegSP && in.Imm < 0 {
			words := int(-in.Imm) / isa.WordBytes
			p.DynFrames.Add(words, 1)
			p.staticFrames[ef.PC] = words
		}
	}
	p.HintedMemPCs = len(hintedPCs)
	p.UnhintedMemPCs = len(unhintedPCs)
	return p, nil
}

// MemRefs returns the total dynamic memory references.
func (p *Profile) MemRefs() uint64 { return p.Loads + p.Stores }

// LocalRefs returns the dynamic local references.
func (p *Profile) LocalRefs() uint64 { return p.LocalLoads + p.LocalStores }

// LocalFraction returns local references / all references.
func (p *Profile) LocalFraction() float64 {
	return stats.Ratio(p.LocalRefs(), p.MemRefs())
}

// LoadFreq returns loads per instruction.
func (p *Profile) LoadFreq() float64 { return stats.Ratio(p.Loads, p.Insts) }

// StoreFreq returns stores per instruction.
func (p *Profile) StoreFreq() float64 { return stats.Ratio(p.Stores, p.Insts) }

// StaticFrames returns the static frame-size histogram (one sample per
// frame-allocating instruction, Figure 3's static counterpart).
func (p *Profile) StaticFrames() *stats.Histogram {
	h := stats.NewHistogram()
	for _, words := range p.staticFrames {
		h.Add(words, 1)
	}
	return h
}

// LVCResult is the outcome of a stand-alone LVC simulation.
type LVCResult struct {
	Stats     cache.Stats
	LocalRefs uint64
}

// SimulateLVC replays the program's local accesses through a stand-alone
// LVC of the given geometry (Figure 6: miss rate vs size). Every local
// reference probes the cache in execution order; non-local references
// bypass it. maxInsts bounds the run (0 = unbounded).
func SimulateLVC(prog *asm.Program, sizeBytes, lineBytes, assoc int, maxInsts uint64) (LVCResult, error) {
	mem := &cache.MainMemory{Name: "mem", Latency: 50}
	lvc := cache.New(cache.Config{
		Name: "LVC", SizeBytes: sizeBytes, LineBytes: lineBytes,
		Assoc: assoc, HitLatency: 1, MSHRs: 1 << 20,
	}, mem)
	m := emu.New(prog)
	var res LVCResult
	now := uint64(0)
	for !m.Halted {
		if maxInsts > 0 && m.InstCount >= maxInsts {
			break
		}
		ef, err := m.Step()
		if err != nil {
			return res, err
		}
		if !ef.Inst.IsMem() || !isa.InStackRegion(ef.Addr) {
			continue
		}
		res.LocalRefs++
		now += 100 // far apart: every access sees completed fills
		lvc.Access(now, ef.Addr, ef.Inst.IsStore())
	}
	res.Stats = lvc.Stats
	return res, nil
}
