// Package sched is the discrete-event backbone of the simulator's
// event-driven run loop: a monotonic next-event scheduler holding wake
// entries keyed by cycle.
//
// The core registers a wake whenever it creates a *future* timestamp — a
// cache fill completing (load ready), address generation finishing, a
// misroute-recovery stall expiring, an MSHR freeing — and, when a cycle
// provably does nothing (see the quiescence invariant in DESIGN.md §12),
// asks Next for the earliest cycle at which anything could change and
// advances the clock straight to it.
//
// The scheduler is deliberately permissive: wakes are uncoalesced on Add
// (duplicates are cheap) and never cancelled eagerly. A stale wake — one
// registered for an instruction that was later squashed, or for a stream
// that drained — is merely *spurious*: the engine executes one real cycle
// at the woken time, observes no progress, and skips again. Spurious wakes
// cost a handful of cycles of simulation; missed wakes would cost
// correctness, so the design never requires explicit cancellation to be
// sound. Lazy cancellation happens in Next, which drops every entry at or
// below the current cycle.
//
// The heap is a preallocated slab of plain uint64 cycles; in steady state
// (once the slab has grown to the pipeline's natural wake population)
// Add/Next allocate nothing, keeping the simulator's hot loop
// allocation-free.
package sched

// Sched is a min-heap of wake cycles. The zero value is usable; New
// preallocates to avoid growth in the hot loop.
type Sched struct {
	heap []uint64
}

// New returns a scheduler with capacity for n outstanding wakes before the
// slab has to grow.
func New(n int) *Sched {
	return &Sched{heap: make([]uint64, 0, n)}
}

// Len returns the number of registered wakes, counting duplicates and
// stale entries that Next has not yet dropped.
func (s *Sched) Len() int { return len(s.heap) }

// Reset drops every registered wake (keeping the slab). Used when the
// pipeline force-drains: all outstanding wakes are stale by construction.
func (s *Sched) Reset() { s.heap = s.heap[:0] }

// Add registers a wake at the given cycle. Duplicate cycles are allowed
// and equivalent to a single wake; callers register unconditionally rather
// than deduplicating.
//
//ddvet:hotpath
func (s *Sched) Add(cycle uint64) {
	//ddvet:allow hotpath-append -- the slab grows to the pipeline's natural wake population once, then Add reuses it; steady state never reallocates
	s.heap = append(s.heap, cycle)
	// Sift up.
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent] <= s.heap[i] {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

// Next drops every wake at or below now (they are due or stale — lazy
// cancellation) and returns the earliest remaining wake cycle. ok is false
// when no future wake is registered.
//
//ddvet:hotpath
func (s *Sched) Next(now uint64) (cycle uint64, ok bool) {
	for len(s.heap) > 0 && s.heap[0] <= now {
		s.pop()
	}
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0], true
}

// pop removes the minimum wake and restores the heap invariant.
//
//ddvet:hotpath
func (s *Sched) pop() {
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.heap[l] < s.heap[smallest] {
			smallest = l
		}
		if r < n && s.heap[r] < s.heap[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}
