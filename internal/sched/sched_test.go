package sched

import (
	"math/rand"
	"sort"
	"testing"
)

func TestNextReturnsEarliestFutureWake(t *testing.T) {
	s := New(8)
	s.Add(50)
	s.Add(10)
	s.Add(30)
	if w, ok := s.Next(0); !ok || w != 10 {
		t.Fatalf("Next(0) = %d,%v; want 10,true", w, ok)
	}
	// Next does not consume a future wake: asking again gives the same one.
	if w, ok := s.Next(0); !ok || w != 10 {
		t.Fatalf("second Next(0) = %d,%v; want 10,true", w, ok)
	}
	if w, ok := s.Next(10); !ok || w != 30 {
		t.Fatalf("Next(10) = %d,%v; want 30,true", w, ok)
	}
}

func TestWakeAtCurrentCycleIsDropped(t *testing.T) {
	// A wake registered for the current cycle (or the past) is due, not
	// future: Next must not return it, or the engine would spin without
	// advancing.
	s := New(4)
	s.Add(7)
	if _, ok := s.Next(7); ok {
		t.Fatal("Next(7) returned a wake for cycle 7; wakes must be strictly future")
	}
	if s.Len() != 0 {
		t.Fatalf("due wake not dropped: Len = %d", s.Len())
	}
}

func TestDuplicateWakesCoalesce(t *testing.T) {
	// Several subsystems may register the same cycle (e.g. two loads whose
	// fills complete together). All duplicates resolve to one effective
	// wake and are all dropped once the cycle passes.
	s := New(8)
	for i := 0; i < 5; i++ {
		s.Add(42)
	}
	s.Add(99)
	if w, ok := s.Next(0); !ok || w != 42 {
		t.Fatalf("Next(0) = %d,%v; want 42,true", w, ok)
	}
	if w, ok := s.Next(42); !ok || w != 99 {
		t.Fatalf("Next(42) = %d,%v; want 99,true", w, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("duplicates of cycle 42 not all dropped: Len = %d", s.Len())
	}
}

func TestStaleWakesAreLazilyCancelled(t *testing.T) {
	// Cancellation contract: wakes for squashed instructions are never
	// removed eagerly; they become stale and Next drops them the moment the
	// clock reaches them. A stale wake may surface once as a spurious
	// (sound, merely wasteful) wake — it must never hide a later real one.
	s := New(8)
	s.Add(20) // will become stale (e.g. squashed load's fill)
	s.Add(60) // the real next event
	if w, _ := s.Next(0); w != 20 {
		t.Fatalf("expected the spurious wake first, got %d", w)
	}
	// Engine wakes at 20, finds nothing to do, asks again.
	if w, ok := s.Next(20); !ok || w != 60 {
		t.Fatalf("Next(20) = %d,%v; want 60,true", w, ok)
	}
}

func TestResetDropsEverything(t *testing.T) {
	// Drain empties every queue at once; Reset mirrors it in the
	// scheduler: all outstanding wakes are stale by construction.
	s := New(8)
	for i := uint64(1); i <= 10; i++ {
		s.Add(i * 100)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	if _, ok := s.Next(0); ok {
		t.Fatal("Next returned a wake after Reset")
	}
	// The scheduler must stay usable after Reset.
	s.Add(5)
	if w, ok := s.Next(0); !ok || w != 5 {
		t.Fatalf("Next after Reset+Add = %d,%v; want 5,true", w, ok)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Sched
	if _, ok := s.Next(0); ok {
		t.Fatal("empty zero-value scheduler returned a wake")
	}
	s.Add(3)
	if w, ok := s.Next(1); !ok || w != 3 {
		t.Fatalf("Next = %d,%v; want 3,true", w, ok)
	}
}

// TestPropertyMatchesReference drives random Add/Next sequences against a
// sorted-slice reference model: Next(now) must always equal the smallest
// registered cycle strictly greater than now, with everything at or below
// now discarded.
func TestPropertyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		s := New(0)
		var ref []uint64
		now := uint64(0)
		for op := 0; op < 300; op++ {
			if rng.Intn(3) > 0 {
				// Mostly adds, biased around the current cycle so due,
				// duplicate and far-future wakes all occur.
				c := now + uint64(rng.Intn(50))
				if rng.Intn(4) == 0 && now > 0 {
					c = now - uint64(rng.Intn(int(now)+1)) // past/stale
				}
				s.Add(c)
				ref = append(ref, c)
			} else {
				now += uint64(rng.Intn(40))
				got, ok := s.Next(now)
				// Reference: drop ≤ now, take the min of the rest.
				live := ref[:0]
				for _, c := range ref {
					if c > now {
						live = append(live, c)
					}
				}
				ref = live
				sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
				if len(ref) == 0 {
					if ok {
						t.Fatalf("trial %d: Next(%d) = %d, want none", trial, now, got)
					}
				} else if !ok || got != ref[0] {
					t.Fatalf("trial %d: Next(%d) = %d,%v; want %d", trial, now, got, ok, ref[0])
				}
				if s.Len() != len(ref) {
					t.Fatalf("trial %d: Len = %d, reference %d", trial, s.Len(), len(ref))
				}
			}
		}
	}
}

// TestMonotonicDrain checks that repeatedly advancing the clock through a
// batch of wakes yields them in nondecreasing order and drains the heap.
func TestMonotonicDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := New(64)
	for i := 0; i < 1000; i++ {
		s.Add(uint64(rng.Intn(10000)))
	}
	now, last := uint64(0), uint64(0)
	for {
		w, ok := s.Next(now)
		if !ok {
			break
		}
		if w < last {
			t.Fatalf("wakes out of order: %d after %d", w, last)
		}
		last, now = w, w
	}
	if s.Len() != 0 {
		t.Fatalf("heap not drained: Len = %d", s.Len())
	}
}

func TestSteadyStateAddAllocatesNothing(t *testing.T) {
	s := New(1024)
	allocs := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 512; i++ {
			s.Add(1000 + i)
		}
		s.Next(5000) // drain
	})
	if allocs != 0 {
		t.Fatalf("steady-state Add/Next allocated %v times per run; want 0", allocs)
	}
}
