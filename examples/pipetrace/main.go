// Pipetrace: record and render a cycle-by-cycle pipeline timeline of a
// short program under the unified and the decoupled memory systems —
// the tool for seeing *where* the LVC's 1-cycle hits and the LVAQ's
// forwarding actually shorten the critical path.
package main

import (
	"fmt"
	"log"

	"repro"
)

const source = `
        .text
        .global main
main:
        addi $sp, $sp, -16
        li   $t0, 11
        li   $t1, 22
        sw   $t0, 0($sp) !local
        sw   $t1, 4($sp) !local
        lw   $t2, 0($sp) !local
        lw   $t3, 4($sp) !local
        add  $t4, $t2, $t3
        sw   $t4, 8($sp) !local
        lw   $t5, 8($sp) !local
        addi $sp, $sp, 16
        out  $t5
        halt
`

func main() {
	prog, err := repro.Assemble("trace.s", source)
	if err != nil {
		log.Fatal(err)
	}
	for _, cfg := range []repro.Config{
		repro.DefaultConfig().WithPorts(2, 0),
		repro.DefaultConfig().WithPorts(2, 2).WithOptimizations(2),
	} {
		res, rec, err := repro.RunProgramTraced(prog, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s — %d cycles, IPC %.2f ===\n", cfg.Name(), res.Cycles, res.IPC())
		fmt.Print(repro.RenderTrace(rec.Events))
		fmt.Println()
		fmt.Print(repro.SummarizeTrace(rec.Events))
		fmt.Println()
	}
}
