// Latency: reproduces the paper's §4.3 argument — if wiring a 4-port data
// cache forces the hit time from 2 to 3 cycles, the big unified cache
// loses to a modest decoupled (2+2) machine on the integer suite.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("When more ports cost a cycle of latency (paper Figure 10):")
	fmt.Printf("%-10s %10s %12s %10s\n", "program", "(4+0)@2cy", "(4+0)@3cy", "(2+2)opt")

	for _, name := range []string{"go", "li", "vortex", "gcc"} {
		w, err := repro.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prog := w.Program(0.3)

		fast := repro.DefaultConfig().WithPorts(4, 0)
		slow := fast
		slow.L1.HitLatency = 3
		dec := repro.DefaultConfig().WithPorts(2, 2).WithOptimizations(2)

		r1, err := repro.RunProgram(prog, fast)
		if err != nil {
			log.Fatal(err)
		}
		r2, err := repro.RunProgram(prog, slow)
		if err != nil {
			log.Fatal(err)
		}
		r3, err := repro.RunProgram(prog, dec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.3f %12.3f %10.3f   (IPC)\n", name, r1.IPC(), r2.IPC(), r3.IPC())
	}
	fmt.Println("\nThe decoupled machine keeps its 2-cycle L1 and a 1-cycle LVC,")
	fmt.Println("so it beats the slowed 4-port design on call-heavy integer code.")
}
