// Spillstorm: demonstrates fast data forwarding (paper §2.2.2) on
// compiler-style spill code. The generated kernel stores register values
// to frame slots and reloads them shortly after — the LVAQ matches these
// store→load pairs by ($sp, offset) before their addresses are even
// computed.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

// buildSpillKernel emits a loop whose body spills `slots` live values to
// the frame and reloads them, mimicking a register-pressure-heavy loop
// after allocation.
func buildSpillKernel(iters, slots int) string {
	var b strings.Builder
	b.WriteString("\t.text\n\t.global main\nmain:\n")
	fmt.Fprintf(&b, "\taddi $sp, $sp, %d\n", -4*(slots+1))
	fmt.Fprintf(&b, "\tli   $s0, %d\n", iters)
	b.WriteString("loop:\n")
	for i := 0; i < slots; i++ {
		fmt.Fprintf(&b, "\tadd  $t%d, $s0, $s0\n", i%8)
		fmt.Fprintf(&b, "\tsw   $t%d, %d($sp) !local\n", i%8, 4*i)
	}
	for i := 0; i < slots; i++ {
		fmt.Fprintf(&b, "\tlw   $t%d, %d($sp) !local\n", i%8, 4*i)
		fmt.Fprintf(&b, "\tadd  $s1, $s1, $t%d\n", i%8)
	}
	b.WriteString("\taddi $s0, $s0, -1\n\tbnez $s0, loop\n")
	fmt.Fprintf(&b, "\taddi $sp, $sp, %d\n", 4*(slots+1))
	b.WriteString("\tout  $s1\n\thalt\n")
	return b.String()
}

func main() {
	prog, err := repro.Assemble("spill.s", buildSpillKernel(4000, 12))
	if err != nil {
		log.Fatal(err)
	}

	base := repro.DefaultConfig().WithPorts(3, 1)
	fast := base
	fast.FastForward = true

	off, err := repro.RunProgram(prog, base)
	if err != nil {
		log.Fatal(err)
	}
	on, err := repro.RunProgram(prog, fast)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fast data forwarding on spill code, port-constrained (3+1) configuration:")
	fmt.Printf("  without: %8d cycles  IPC %.3f  queue forwards %d\n",
		off.Cycles, off.IPC(), off.FwdLoads)
	fmt.Printf("  with:    %8d cycles  IPC %.3f  fast forwards %d\n",
		on.Cycles, on.IPC(), on.FastFwdLoads)
	fmt.Printf("  speedup: %.2f%%\n", 100*(float64(off.Cycles)/float64(on.Cycles)-1))
}
